// Extension bench (src/tier): what the compressed local cold tier buys.
//
// Three questions, each its own section:
//
//   1. Cold-miss latency — a fault on a tier-resident page costs one local
//      decompress (~0.5 us) instead of the far-memory round trip. The gap
//      widens with the fabric: modest over quiet 100 GbE RDMA, 6x+ once
//      other cores load the link, an order of magnitude over NVMe, two
//      over SATA.
//   2. Effective capacity — compressed pages held locally at a ~2x-and-up
//      compressible workload: logical bytes kept on the machine per byte of
//      DRAM the tier actually burns (size-class rounding included).
//   3. Remote traffic — write-backs and fetched bytes the tier absorbs that
//      would otherwise cross the wire.
//
// `--short` runs a reduced preset (smaller working set, fewer samples) for
// the CI smoke job; numbers are noisier but the shape — tier hits several
// times cheaper than remote misses, capacity gain >= 2x — must hold.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"

namespace dilos {
namespace {

bool g_short = false;

uint64_t WorkingSetBytes() { return g_short ? (4ULL << 20) : (32ULL << 20); }
int SampleTarget() { return g_short ? 500 : 4000; }

uint64_t Xor(uint64_t* s) {
  *s ^= *s << 13;
  *s ^= *s >> 7;
  *s ^= *s << 17;
  return *s;
}

// Fills `page_va` so that roughly `random_frac` of the page is incompressible
// and the rest zero — random_frac 0.4 compresses ~2.3x through the tier's
// codec, the "memory is about half redundancy" regime TMO/zswap report.
void FillPage(DilosRuntime& rt, uint64_t page_va, double random_frac, uint64_t* rng) {
  uint64_t random_words = static_cast<uint64_t>(random_frac * (kPageSize / 8.0));
  for (uint64_t w = 0; w < random_words; ++w) {
    rt.Write<uint64_t>(page_va + w * 8, Xor(rng));
  }
  if (random_words == 0) {
    rt.Write<uint64_t>(page_va, page_va);  // Tag so reads can verify something.
  }
}

// -- Section 1: cold-miss latency --------------------------------------------

struct MissRow {
  uint64_t tier_p50 = 0, tier_p99 = 0;
  uint64_t remote_p50 = 0, remote_p99 = 0;
  double ratio = 0;
};

// One run: populate a working set 4x the DRAM budget with compressible pages,
// then sample random cold misses, timing only faults that start from the
// wanted PTE state (kTier with the tier on, kRemote with it off) so resident
// re-hits never dilute the distribution. With `cores` > 1 the other cores run
// the same random-read load between samples: their demand fetches occupy the
// shared link, so remote misses queue behind them — tier hits never touch the
// wire and keep their latency. This is the loaded regime the tier is for.
void SampleMisses(const CostModel& cm, bool tier_on, int cores, uint64_t* p50,
                  uint64_t* p99) {
  Fabric fabric(cm, 1);
  DilosConfig cfg;
  uint64_t ws = WorkingSetBytes();
  cfg.local_mem_bytes = ws / 4;
  cfg.num_cores = cores;
  cfg.tier.enabled = tier_on;
  cfg.tier.capacity_bytes = ws;  // Roomy: every compressible victim is admitted.
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  uint64_t region = rt.AllocRegion(ws);
  uint64_t pages = ws / kPageSize;
  uint64_t rng = 0x7EE12;
  for (uint64_t p = 0; p < pages; ++p) {
    FillPage(rt, region + p * kPageSize, 0.0, &rng);  // Mostly-zero: all admit.
  }

  PteTag want = tier_on ? PteTag::kTier : PteTag::kRemote;
  std::vector<uint64_t> lat;
  lat.reserve(static_cast<size_t>(SampleTarget()));
  uint64_t attempts = 0;
  while (static_cast<int>(lat.size()) < SampleTarget() && attempts < 2'000'000) {
    ++attempts;
    for (int c = 1; c < cores; ++c) {  // Background load on the other cores.
      volatile uint64_t bg = rt.Read<uint64_t>(region + (Xor(&rng) % pages) * kPageSize, c);
      (void)bg;
    }
    uint64_t va = region + (Xor(&rng) % pages) * kPageSize;
    if (PteTagOf(rt.page_table().Get(va)) != want) {
      volatile uint64_t v = rt.Read<uint64_t>(va);  // Churn; not a sample.
      (void)v;
      continue;
    }
    uint64_t t0 = rt.clock(0).now();
    volatile uint64_t v = rt.Read<uint64_t>(va);
    (void)v;
    lat.push_back(rt.clock(0).now() - t0);
  }
  *p50 = BenchPct(lat, 0.50);
  *p99 = BenchPct(lat, 0.99);
}

MissRow MeasureMisses(const CostModel& cm, int cores = 1) {
  MissRow row;
  SampleMisses(cm, /*tier_on=*/true, cores, &row.tier_p50, &row.tier_p99);
  SampleMisses(cm, /*tier_on=*/false, cores, &row.remote_p50, &row.remote_p99);
  row.ratio = row.tier_p50 > 0
                  ? static_cast<double>(row.remote_p50) / static_cast<double>(row.tier_p50)
                  : 0;
  return row;
}

void RunMissLatency() {
  PrintHeader("Extension: compressed tier — cold-miss p50, tier hit vs far fetch\n"
              "1 node, working set 4x DRAM, compressible pages, random reads");
  std::printf("%-22s %12s %12s %12s %12s %9s\n", "far-memory fabric", "tier p50",
              "tier p99", "remote p50", "remote p99", "speedup");
  struct Preset {
    const char* name;
    CostModel cm;
    int cores;
  } presets[] = {
      {"RDMA 100GbE", CostModel::Default(), 1},
      {"RDMA 100GbE, loaded", CostModel::Default(), 12},
      {"NVMe", CostModel::Nvme(), 1},
      {"SATA SSD", CostModel::SataSsd(), 1},
  };
  for (const Preset& p : presets) {
    MissRow r = MeasureMisses(p.cm, p.cores);
    std::printf("%-22s %10llu ns %10llu ns %10llu ns %10llu ns %8.1fx\n", p.name,
                static_cast<unsigned long long>(r.tier_p50),
                static_cast<unsigned long long>(r.tier_p99),
                static_cast<unsigned long long>(r.remote_p50),
                static_cast<unsigned long long>(r.remote_p99), r.ratio);
    BenchJson& j = BenchJson::Instance();
    j.BeginRecord("ext_tier.miss_latency");
    j.Config("fabric", p.name);
    j.Config("cores", static_cast<uint64_t>(p.cores));
    j.Config("working_set_bytes", WorkingSetBytes());
    j.Metric("tier_p50_ns", r.tier_p50);
    j.Metric("tier_p99_ns", r.tier_p99);
    j.Metric("remote_p50_ns", r.remote_p50);
    j.Metric("remote_p99_ns", r.remote_p99);
    j.Metric("speedup", r.ratio);
  }
  std::printf("\n");
}

// -- Section 2: effective capacity --------------------------------------------

void RunCapacity() {
  PrintHeader("Extension: compressed tier — effective local capacity\n"
              "1 node, working set 4x DRAM; page entropy sweep (fraction of\n"
              "each page that is incompressible random bytes)");
  std::printf("%-14s %10s %12s %12s %12s %10s %10s\n", "random frac", "pages",
              "logical", "tier DRAM", "compression", "bypassed", "capacity+");
  for (double frac : {0.0, 0.4, 0.9}) {
    Fabric fabric(CostModel::Default(), 1);
    DilosConfig cfg;
    uint64_t ws = WorkingSetBytes();
    cfg.local_mem_bytes = ws / 4;
    cfg.tier.enabled = true;
    cfg.tier.capacity_bytes = ws;
    DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
    uint64_t region = rt.AllocRegion(ws);
    uint64_t pages = ws / kPageSize;
    uint64_t rng = 0xCAFE;
    for (uint64_t p = 0; p < pages; ++p) {
      FillPage(rt, region + p * kPageSize, frac, &rng);
    }
    const CompressedTier& tier = *rt.tier();
    uint64_t logical = tier.stored_pages() * kPageSize;
    uint64_t dram = tier.block_bytes();
    double comp = dram > 0 ? static_cast<double>(logical) / static_cast<double>(dram) : 0;
    // Locally-held bytes per byte of DRAM, tier included, vs frames alone.
    double gain = static_cast<double>(cfg.local_mem_bytes + logical) /
                  static_cast<double>(cfg.local_mem_bytes + dram);
    std::printf("%-14.2f %10llu %9.1f MB %9.1f MB %11.2fx %10llu %9.2fx\n", frac,
                static_cast<unsigned long long>(tier.stored_pages()),
                static_cast<double>(logical) / 1e6, static_cast<double>(dram) / 1e6, comp,
                static_cast<unsigned long long>(rt.stats().tier_bypass_incompressible),
                gain);
    BenchJson& j = BenchJson::Instance();
    j.BeginRecord("ext_tier.capacity");
    j.Config("random_frac", frac);
    j.Config("working_set_bytes", ws);
    JsonRuntimeConfig(cfg);
    j.Metric("stored_pages", tier.stored_pages());
    j.Metric("logical_bytes", logical);
    j.Metric("tier_dram_bytes", dram);
    j.Metric("compression_ratio", comp);
    j.Metric("bypassed", rt.stats().tier_bypass_incompressible);
    j.Metric("capacity_gain", gain);
  }
  std::printf("\n");
}

// -- Section 3: remote traffic ------------------------------------------------

void RunTraffic() {
  PrintHeader("Extension: compressed tier — far-memory traffic absorbed\n"
              "1 node, working set 4x DRAM, 25% writes, zipf-ish reuse");
  std::printf("%-10s %12s %14s %14s %12s %12s\n", "tier", "tier hits", "bytes fetched",
              "bytes written", "writebacks", "runtime ms");
  for (bool tier_on : {false, true}) {
    Fabric fabric(CostModel::Default(), 1);
    DilosConfig cfg;
    uint64_t ws = WorkingSetBytes();
    cfg.local_mem_bytes = ws / 4;
    cfg.tier.enabled = tier_on;
    cfg.tier.capacity_bytes = ws / 2;
    DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
    uint64_t region = rt.AllocRegion(ws);
    uint64_t pages = ws / kPageSize;
    uint64_t rng = 0xBEEF;
    for (uint64_t p = 0; p < pages; ++p) {
      FillPage(rt, region + p * kPageSize, 0.0, &rng);
    }
    uint64_t ops = g_short ? 20'000 : 200'000;
    uint64_t hot = pages / 8;  // Skewed reuse: most touches hit 1/8 of the set.
    for (uint64_t i = 0; i < ops; ++i) {
      uint64_t p = (Xor(&rng) % 10 < 7) ? Xor(&rng) % hot : Xor(&rng) % pages;
      uint64_t va = region + p * kPageSize;
      if (Xor(&rng) % 4 == 0) {
        rt.Write<uint64_t>(va, p);
      } else {
        volatile uint64_t v = rt.Read<uint64_t>(va);
        (void)v;
      }
    }
    std::printf("%-10s %12llu %11.1f MB %11.1f MB %12llu %12.2f\n",
                tier_on ? "on" : "off",
                static_cast<unsigned long long>(rt.stats().tier_hits),
                static_cast<double>(rt.stats().bytes_fetched) / 1e6,
                static_cast<double>(rt.stats().bytes_written) / 1e6,
                static_cast<unsigned long long>(rt.stats().writebacks),
                static_cast<double>(rt.MaxTimeNs()) / 1e6);
    BenchJson& j = BenchJson::Instance();
    j.BeginRecord("ext_tier.traffic");
    j.Config("ops", ops);
    JsonRuntimeConfig(cfg);
    j.Metric("tier_hits", rt.stats().tier_hits);
    j.Metric("bytes_fetched", rt.stats().bytes_fetched);
    j.Metric("bytes_written", rt.stats().bytes_written);
    j.Metric("writebacks", rt.stats().writebacks);
    j.Metric("runtime_ms", static_cast<double>(rt.MaxTimeNs()) / 1e6);
  }
  std::printf("\n");
}

void RunAll() {
  RunMissLatency();
  RunCapacity();
  RunTraffic();
}

}  // namespace
}  // namespace dilos

int main(int argc, char** argv) {
  dilos::BenchParseArgs(argc, argv, &dilos::g_short);
  dilos::RunAll();
  return dilos::BenchJson::Instance().Flush() ? 0 : 1;
}
