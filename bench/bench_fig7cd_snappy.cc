// Figures 7(c)/(d): Snappy (szip) compression and decompression completion
// time vs local memory, including AIFM and DiLOS-TCP. Paper: at 12.5% AIFM
// wins (multi-threaded streaming prefetch overlaps perfectly), DiLOS
// trails by only 7-9% (TCP: 17-23%), Fastswap by 35-40%; at >=50% AIFM's
// deref checks make it similar or slower.
#include <cstdio>

#include "bench/common.h"
#include "src/aifm/aifm_apps.h"
#include "src/apps/szip.h"
#include "src/sim/rng.h"

namespace dilos {
namespace {

constexpr uint64_t kLen = 24ULL << 20;  // Paper: 16 GB / 15 GB, scaled.
// Whole-run working set: source + compressed stream + decompressed output.
constexpr uint64_t kTotalWs = kLen * 26 / 10;

// Fills a far region with the same mildly compressible content the AIFM
// port uses.
void FillInput(FarRuntime& rt, uint64_t base) {
  Rng rng(5);
  std::vector<uint8_t> buf(64 * 1024);
  for (uint64_t off = 0; off < kLen; off += buf.size()) {
    for (size_t i = 0; i < buf.size(); ++i) {
      buf[i] = (i % 97 < 64) ? static_cast<uint8_t>('a' + (off >> 16) % 26)
                             : static_cast<uint8_t>(rng.Next());
    }
    rt.WriteBytes(base + off, buf.data(), buf.size());
  }
}

struct Pair {
  double compress_s;
  double decompress_s;
};

Pair RunPaged(FarRuntime& rt) {
  uint64_t src = rt.AllocRegion(kLen);
  FillInput(rt, src);
  uint64_t dst = rt.AllocRegion(kLen + kLen / 2);
  uint64_t back = rt.AllocRegion(kLen);
  SzipFar szip(rt);
  SzipResult c = szip.Compress(src, kLen, dst);
  SzipResult d = szip.Decompress(dst, c.out_bytes, back);
  return {ToSeconds(c.elapsed_ns), ToSeconds(d.elapsed_ns)};
}

void Run() {
  PrintHeader("Figures 7(c)/(d): szip compress/decompress time (s) vs local memory\n"
              "(paper shape at 12.5%: AIFM best; DiLOS -7..9%; DiLOS-TCP -17..23%; "
              "Fastswap -35..40%)");
  std::printf("%-22s", "system");
  for (double f : kLocalFractions) {
    std::printf("    %5.1f%% c/d  ", f * 100);
  }
  std::printf("\n");

  for (int sys = 0; sys < 4; ++sys) {
    const char* names[] = {"Fastswap", "DiLOS readahead", "DiLOS-TCP", "AIFM"};
    std::printf("%-22s", names[sys]);
    for (double f : kLocalFractions) {
      uint64_t local = static_cast<uint64_t>(static_cast<double>(kTotalWs) * f);
      Pair p{};
      Fabric fabric;
      if (sys == 0) {
        auto rt = MakeFastswap(fabric, local);
        p = RunPaged(*rt);
      } else if (sys == 1) {
        auto rt = MakeDilos(fabric, local, DilosVariant::kReadahead);
        p = RunPaged(*rt);
      } else if (sys == 2) {
        auto rt = MakeDilos(fabric, local, DilosVariant::kReadahead, /*tcp=*/true);
        p = RunPaged(*rt);
      } else {
        AifmConfig cfg;
        cfg.local_mem_bytes = local;
        AifmRuntime rt(fabric, cfg);
        AifmSzipWorkload wl(rt, kLen);
        SzipResult c = wl.Compress();
        SzipResult d = wl.Decompress();
        p = {ToSeconds(c.elapsed_ns), ToSeconds(d.elapsed_ns)};
      }
      std::printf("  %5.3f/%5.3f", p.compress_s, p.decompress_s);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
