// Figure 7(a): quicksort completion time vs local memory fraction.
// Paper: Fastswap degrades ~39% from 100% to 12.5% local; DiLOS only ~12%;
// at 12.5% DiLOS is up to 1.39x faster.
#include <cstdio>

#include "bench/common.h"
#include "src/apps/quicksort.h"

namespace dilos {
namespace {

constexpr uint64_t kElems = 1ULL << 20;  // 4 MB of int32 (paper: 8 GB, scaled).
constexpr uint64_t kBytes = kElems * sizeof(int32_t);

void Run() {
  PrintHeader("Figure 7(a): quicksort completion time (s) vs local memory\n"
              "(paper shape: DiLOS ~1.39x faster than Fastswap at 12.5%)");
  std::printf("%-22s", "system");
  for (double f : kLocalFractions) {
    std::printf(" %7.1f%%", f * 100);
  }
  std::printf("\n");

  for (int sys = 0; sys < 2; ++sys) {
    std::printf("%-22s", sys == 0 ? "Fastswap" : "DiLOS readahead");
    for (double f : kLocalFractions) {
      Fabric fabric;
      uint64_t local = static_cast<uint64_t>(static_cast<double>(kBytes) * f);
      std::unique_ptr<FarRuntime> rt;
      if (sys == 0) {
        rt = MakeFastswap(fabric, local);
      } else {
        rt = MakeDilos(fabric, local, DilosVariant::kReadahead);
      }
      QuicksortWorkload wl(*rt, kElems);
      uint64_t ns = wl.Run();
      std::printf(" %8.3f", ToSeconds(ns));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
