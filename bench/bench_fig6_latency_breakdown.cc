// Figure 6: page-fault latency breakdown of DiLOS vs Fastswap during a
// sequential read, prefetching off. Paper: DiLOS cuts handling latency
// ~49% — no swap-cache management, no allocation in the fault path, and
// reclamation entirely hidden.
#include <cstdio>

#include "bench/common.h"
#include "src/apps/seqrw.h"

namespace dilos {
namespace {

constexpr uint64_t kWorkingSet = 32ULL << 20;
constexpr uint64_t kLocal = kWorkingSet / 8;

template <typename Rt>
double RunOne(const char* name, Rt& rt) {
  SeqWorkload wl(rt, kWorkingSet);
  rt.stats().fault_breakdown.Reset();
  wl.Read();
  const LatencyBreakdown& bd = rt.stats().fault_breakdown;
  std::printf("--- %s (mean over %llu major faults) ---\n", name,
              static_cast<unsigned long long>(bd.events()));
  std::printf("%s\n", bd.ToString().c_str());
  return bd.TotalMeanNs();
}

void Run() {
  PrintHeader("Figure 6: fault-handler latency breakdown, DiLOS vs Fastswap,\n"
              "sequential read, prefetch off (paper: DiLOS ~49% lower, zero reclaim)");
  double fsw;
  double dls;
  {
    Fabric fabric;
    FastswapConfig cfg;
    cfg.local_mem_bytes = kLocal;
    cfg.readahead_enabled = false;
    FastswapRuntime rt(fabric, cfg);
    fsw = RunOne("Fastswap", rt);
  }
  {
    Fabric fabric;
    auto rt = MakeDilos(fabric, kLocal, DilosVariant::kNoPrefetch);
    dls = RunOne("DiLOS", *rt);
  }
  std::printf("DiLOS reduces fault latency by %.0f%% (paper: ~49%%)\n\n",
              100.0 * (1.0 - dls / fsw));
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
