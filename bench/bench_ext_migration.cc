// Extension bench (src/recovery/migration): what draining a live memory node
// costs the tenants still reading through it.
//
// Two tenants run independent Zipfian read storms over disjoint regions while
// one of the four memory nodes is decommissioned with DrainNode(). The drain
// migrates every granule off the victim (copy -> catch-up -> commit ->
// forwarding window) under the live load, so the interesting number is each
// tenant's p99 before / during / after the drain: forwarded reads cost one
// extra routing decision, and migration copies compete for fabric time.
//
// The bench doubles as a CI gate: it exits non-zero if the drain fails to
// retire the node, any fetch fails, a post-drain verify sweep sees a wrong
// value, or the during-drain p99 inflates beyond a generous bound over the
// healthy baseline.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/recovery/migration.h"

namespace dilos {
namespace {

constexpr int kNodes = 4;
constexpr int kVictim = 1;
// During-drain p99 must stay within this factor of the healthy p99. Demand
// reads legitimately queue behind migration bulk copies (observed ~25-40x on
// the default cost model); the gate exists to catch unbounded stalls —
// multi-millisecond head-of-line blocking — not ordinary queueing.
constexpr double kP99Bound = 64.0;

struct TenantPhase {
  uint64_t p50 = 0, p99 = 0;
};

struct Result {
  TenantPhase before[2], during[2], after[2];
  double drain_ms = 0;
  uint64_t migrated_granules = 0, migration_pages = 0, forwards = 0, reships = 0;
  uint64_t failed = 0, mismatches = 0;
  bool drained = false;
};

DilosConfig MakeCfg(uint64_t ws) {
  DilosConfig cfg;
  cfg.local_mem_bytes = ws / 4;
  cfg.replication = 2;
  cfg.recovery.enabled = true;
  return cfg;
}

Result Run(uint64_t pages_per_tenant, int samples) {
  const uint64_t ws = pages_per_tenant * kPageSize;
  Fabric fabric(CostModel::Default(), kNodes);
  DilosConfig cfg = MakeCfg(ws);
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());

  TwoTenantWorkload wl(rt, pages_per_tenant);
  auto sample = [&](int t, std::vector<uint64_t>* lat) { wl.SampleRead(t, lat); };

  Result res;
  std::vector<uint64_t> lat[2];
  for (int t = 0; t < 2; ++t) {
    lat[t].reserve(static_cast<size_t>(samples));
  }

  // Healthy baseline.
  for (int i = 0; i < samples; ++i) {
    sample(0, &lat[0]);
    sample(1, &lat[1]);
  }
  for (int t = 0; t < 2; ++t) {
    res.before[t] = {BenchPct(lat[t], 0.50), BenchPct(lat[t], 0.99)};
    lat[t].clear();
  }

  // Decommission the victim under live load: keep both tenants storming while
  // interleaved recovery ticks advance the migration state machine.
  uint64_t drain_start_ns = rt.clock(0).now();
  rt.DrainNode(kVictim, drain_start_ns);
  int rounds = 0;
  while (rt.router().state(kVictim) != NodeState::kRetired && rounds < 200'000) {
    for (int i = 0; i < 16; ++i) {
      sample(0, &lat[0]);
      sample(1, &lat[1]);
    }
    rt.DriveRecovery(100'000);
    ++rounds;
  }
  res.drain_ms = static_cast<double>(rt.clock(0).now() - drain_start_ns) / 1e6;
  res.drained = rt.router().state(kVictim) == NodeState::kRetired &&
                rt.stats().nodes_drained == 1 &&
                fabric.node(kVictim).store().page_count() == 0;
  for (int t = 0; t < 2; ++t) {
    res.during[t] = {BenchPct(lat[t], 0.50), BenchPct(lat[t], 0.99)};
    lat[t].clear();
  }

  // Let forwarding windows expire, then measure the steady state on the
  // remaining three nodes.
  for (int i = 0; i < 30; ++i) {
    rt.DriveRecovery(1'000'000);
  }
  for (int i = 0; i < samples; ++i) {
    sample(0, &lat[0]);
    sample(1, &lat[1]);
  }
  for (int t = 0; t < 2; ++t) {
    res.after[t] = {BenchPct(lat[t], 0.50), BenchPct(lat[t], 0.99)};
  }

  // Full verify sweep over both tenants: the drain must be lossless.
  res.mismatches = wl.VerifyMismatches();

  res.migrated_granules = rt.stats().migrations_committed;
  res.migration_pages = rt.stats().migration_pages;
  res.forwards = rt.stats().migration_forwards;
  res.reships = rt.stats().migration_reships;
  res.failed = rt.stats().failed_fetches;
  return res;
}

bool RunAll(bool short_run) {
  const uint64_t pages = short_run ? 1024 : 4096;
  const int samples = short_run ? 2000 : 6000;

  PrintHeader("Extension: live node drain — per-tenant tail latency through a drain\n"
              "4 nodes, replication=2, two Zipfian tenants, node 1 decommissioned");
  Result r = Run(pages, samples);

  std::printf("%-10s %12s %12s %12s %12s %12s %12s\n", "tenant", "before p50",
              "before p99", "during p50", "during p99", "after p50", "after p99");
  for (int t = 0; t < 2; ++t) {
    std::printf("%-10d %9llu ns %9llu ns %9llu ns %9llu ns %9llu ns %9llu ns\n", t,
                static_cast<unsigned long long>(r.before[t].p50),
                static_cast<unsigned long long>(r.before[t].p99),
                static_cast<unsigned long long>(r.during[t].p50),
                static_cast<unsigned long long>(r.during[t].p99),
                static_cast<unsigned long long>(r.after[t].p50),
                static_cast<unsigned long long>(r.after[t].p99));
  }
  std::printf("drain %.2f ms: %llu granules, %llu pages (%llu reships), "
              "%llu forwarded reads, %llu failed fetches, %llu mismatches\n\n",
              r.drain_ms, static_cast<unsigned long long>(r.migrated_granules),
              static_cast<unsigned long long>(r.migration_pages),
              static_cast<unsigned long long>(r.reships),
              static_cast<unsigned long long>(r.forwards),
              static_cast<unsigned long long>(r.failed),
              static_cast<unsigned long long>(r.mismatches));

  bool ok = true;
  auto gate = [&ok](bool pass, const char* what) {
    if (!pass) {
      std::printf("GATE FAILED: %s\n", what);
      ok = false;
    }
  };
  gate(r.drained, "drain retired the node and emptied its store");
  gate(r.failed == 0, "no failed fetches");
  gate(r.mismatches == 0, "post-drain verify sweep is clean");
  for (int t = 0; t < 2; ++t) {
    gate(static_cast<double>(r.during[t].p99) <=
             kP99Bound * static_cast<double>(std::max<uint64_t>(r.before[t].p99, 1)),
         "during-drain p99 within bound of healthy p99");
  }

  BenchJson& j = BenchJson::Instance();
  j.BeginRecord("ext_migration.drain");
  j.Config("pages_per_tenant", pages);
  j.Config("samples", static_cast<uint64_t>(samples));
  j.Config("p99_bound", kP99Bound);
  JsonRuntimeConfig(MakeCfg(pages * kPageSize));
  for (int t = 0; t < 2; ++t) {
    char key[64];
    std::snprintf(key, sizeof(key), "tenant%d_before_p99_ns", t);
    j.Metric(key, r.before[t].p99);
    std::snprintf(key, sizeof(key), "tenant%d_during_p99_ns", t);
    j.Metric(key, r.during[t].p99);
    std::snprintf(key, sizeof(key), "tenant%d_after_p99_ns", t);
    j.Metric(key, r.after[t].p99);
  }
  j.Metric("drain_ms", r.drain_ms);
  j.Metric("migrated_granules", r.migrated_granules);
  j.Metric("migration_pages", r.migration_pages);
  j.Metric("migration_reships", r.reships);
  j.Metric("migration_forwards", r.forwards);
  j.Metric("failed_fetches", r.failed);
  j.Metric("verify_mismatches", r.mismatches);
  j.Metric("gates_passed", static_cast<uint64_t>(ok ? 1 : 0));
  return ok;
}

}  // namespace
}  // namespace dilos

int main(int argc, char** argv) {
  bool short_run = false;
  dilos::BenchParseArgs(argc, argv, &short_run);
  bool ok = dilos::RunAll(short_run);
  if (!dilos::BenchJson::Instance().Flush()) {
    return 1;
  }
  return ok ? 0 : 1;
}
