// Figure 8: completion time of the NYC-taxi analysis on the DataFrame
// library — AIFM vs Fastswap vs DiLOS vs DiLOS-TCP across local-memory
// fractions. Paper: at 100% AIFM is 50-83% slower (deref checks); DiLOS
// beats AIFM by up to 54% with RDMA and 14% even with the TCP delay;
// Fastswap's time more than doubles as memory shrinks.
#include <cstdio>

#include "bench/common.h"
#include "src/aifm/aifm_apps.h"
#include "src/apps/dataframe.h"

namespace dilos {
namespace {

constexpr uint64_t kRows = 1'000'000;  // Paper: ~40 GB table, scaled.
// Six columns of 8/4 bytes: ~36 B/row.
constexpr uint64_t kBytes = kRows * 36;

void Run() {
  PrintHeader("Figure 8: DataFrame NYC-taxi analysis completion time (s)\n"
              "(paper shape: AIFM slowest at 100% local; Fastswap doubles as memory "
              "shrinks; DiLOS best overall)");
  std::printf("%-22s", "system");
  for (double f : kLocalFractions) {
    std::printf(" %7.1f%%", f * 100);
  }
  std::printf("\n");

  for (int sys = 0; sys < 4; ++sys) {
    const char* names[] = {"Fastswap", "DiLOS readahead", "DiLOS-TCP", "AIFM"};
    std::printf("%-22s", names[sys]);
    for (double f : kLocalFractions) {
      uint64_t local = static_cast<uint64_t>(static_cast<double>(kBytes) * f);
      double secs = 0;
      Fabric fabric;
      if (sys == 3) {
        AifmConfig cfg;
        cfg.local_mem_bytes = local;
        AifmRuntime rt(fabric, cfg);
        AifmTaxiWorkload wl(rt, kRows);
        secs = ToSeconds(wl.Run().elapsed_ns);
      } else {
        std::unique_ptr<FarRuntime> rt;
        if (sys == 0) {
          rt = MakeFastswap(fabric, local);
        } else {
          rt = MakeDilos(fabric, local, DilosVariant::kReadahead, /*tcp=*/sys == 2);
        }
        FarDataFrame df(*rt, kRows);
        TaxiColumns cols = GenerateTaxi(df);
        secs = ToSeconds(RunTaxiAnalysis(df, cols).elapsed_ns);
      }
      std::printf(" %8.3f", secs);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
