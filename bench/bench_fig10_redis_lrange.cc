// Figure 10(d): Redis LRANGE_100 throughput over many quicklists vs local
// memory. Paper shape: general-purpose prefetchers gain nothing over
// no-prefetch (pointer-chasing defeats history-based prediction); the
// app-aware quicklist guide gains ~62%; DiLOS no-prefetch already beats
// Fastswap.
#include <cstdio>

#include "bench/redis_common.h"

namespace dilos {
namespace {

constexpr uint64_t kLists = 512;
constexpr uint64_t kElems = kLists * 200;  // 200 elements per list on average.
constexpr uint32_t kElemSize = 90;
constexpr uint64_t kQueries = 1500;

void Run() {
  PrintHeader("Figure 10(d): Redis LRANGE_100 throughput (ops/s) vs local memory\n"
              "(paper shape: readahead/trend ~= no-prefetch; app-aware +62%)");
  // Rough footprint: one ziplist page per ~32 elements + nodes + dict.
  uint64_t data_bytes = (kElems / 32) * 4096 + kElems * 8;
  const double fractions[] = {0.125, 0.25, 0.5, 1.0};

  std::printf("%-22s", "system");
  for (double f : fractions) {
    std::printf(" %9.1f%%", f * 100);
  }
  std::printf("\n");
  for (RedisSystem sys : kAllRedisSystems) {
    std::printf("%-22s", RedisSystemName(sys));
    for (double f : fractions) {
      uint64_t local =
          static_cast<uint64_t>(static_cast<double>(data_bytes) * f) + (2 << 20);
      RedisEnv env(sys, local, kLists);
      RedisBench bench(*env.redis);
      bench.PopulateLists(kLists, kElems, kElemSize);
      RedisBenchResult res = bench.RunLrange(kQueries);
      std::printf(" %10.0f", res.OpsPerSec());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
