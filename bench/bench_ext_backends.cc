// Extension bench (paper Sec. 5.1 "Applying DiLOS to disk-based
// swapping"): the same paging stacks over RDMA, an NVMe drive, and a SATA
// SSD. DiLOS' software savings matter when the device is fast (RDMA, NVMe)
// and wash out when IO dominates (SATA) — the paper's argument, measured.
#include <cstdio>

#include "bench/common.h"
#include "src/apps/seqrw.h"

namespace dilos {
namespace {

constexpr uint64_t kWs = 32ULL << 20;

struct Row {
  double fsw;
  double dilos;
};

Row RunBackend(const CostModel& cost) {
  Row row{};
  {
    Fabric fabric(cost);
    FastswapConfig cfg;
    cfg.local_mem_bytes = kWs / 8;
    FastswapRuntime rt(fabric, cfg);
    SeqWorkload wl(rt, kWs);
    row.fsw = wl.Read().GBps();
  }
  {
    Fabric fabric(cost);
    DilosConfig cfg;
    cfg.local_mem_bytes = kWs / 8;
    DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
    SeqWorkload wl(rt, kWs);
    row.dilos = wl.Read().GBps();
  }
  return row;
}

void Run() {
  PrintHeader("Extension: far-memory backend sweep (Sec. 5.1)\n"
              "sequential read GB/s at 12.5% local; DiLOS gain vs Fastswap per backend");
  std::printf("%-12s %12s %12s %10s\n", "backend", "Fastswap", "DiLOS", "gain");
  struct Backend {
    const char* name;
    CostModel cost;
  } backends[] = {
      {"RDMA", CostModel::Default()},
      {"NVMe", CostModel::Nvme()},
      {"SATA SSD", CostModel::SataSsd()},
  };
  for (const Backend& b : backends) {
    Row r = RunBackend(b.cost);
    std::printf("%-12s %12.3f %12.3f %9.2fx\n", b.name, r.fsw, r.dilos, r.dilos / r.fsw);
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
