// Extension bench (paper Sec. 5.1 "Supporting multiple nodes and fault
// tolerance"): sharding across memory nodes scales aggregate fabric
// bandwidth; replication doubles write-back traffic for crash redundancy,
// and a memory-node failure costs nothing on the read path afterwards.
#include <cstdio>

#include "bench/common.h"
#include "src/apps/seqrw.h"
#include "src/rdma/verbs.h"

namespace dilos {
namespace {

constexpr uint64_t kWs = 32ULL << 20;
constexpr int kCores = 4;

// Four cores each stream a quarter of the region: enough aggregate demand
// to saturate a single 100 GbE port, so sharding across nodes (ports) pays.
double RunNodes(int nodes, int replication, bool fail_one = false) {
  Fabric fabric(CostModel::Default(), nodes);
  DilosConfig cfg;
  cfg.local_mem_bytes = kWs / 8;
  cfg.replication = replication;
  cfg.num_cores = kCores;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  uint64_t region = rt.AllocRegion(kWs);
  for (uint64_t off = 0; off < kWs; off += kPageSize) {
    rt.Write<uint64_t>(region + off, off);
  }
  if (fail_one) {
    rt.router().FailNode(0);
  }
  uint64_t t0 = rt.MaxWorkerTimeNs();
  for (int c = 0; c < kCores; ++c) {
    rt.clock(c).AdvanceTo(t0);
  }
  uint64_t quarter = kWs / kCores;
  // Interleave the cores' sweeps page by page so their traffic overlaps.
  for (uint64_t off = 0; off < quarter; off += kPageSize) {
    for (int c = 0; c < kCores; ++c) {
      volatile uint64_t v =
          rt.Read<uint64_t>(region + static_cast<uint64_t>(c) * quarter + off, c);
      (void)v;
    }
  }
  return static_cast<double>(kWs) / static_cast<double>(rt.MaxWorkerTimeNs() - t0);
}

void Run() {
  PrintHeader("Extension: memory-node scale-out and replication (Sec. 5.1)\n"
              "sequential read GB/s at 12.5% local");
  std::printf("%-34s %10s\n", "configuration", "read GB/s");
  std::printf("%-34s %10.2f\n", "1 node", RunNodes(1, 1));
  std::printf("%-34s %10.2f\n", "2 nodes, sharded", RunNodes(2, 1));
  std::printf("%-34s %10.2f\n", "4 nodes, sharded", RunNodes(4, 1));
  std::printf("%-34s %10.2f\n", "2 nodes, replication=2", RunNodes(2, 2));
  std::printf("%-34s %10.2f\n", "2 nodes, repl=2, one node DOWN", RunNodes(2, 2, true));
  std::printf("\n");
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
