// Figure 1: performance breakdown of Fastswap's page fault handler —
// "Average" (reclamation included) vs "No reclamation". Readahead is off so
// every fault is a major fault through the swap path, as in the paper's
// analysis.
#include <cstdio>

#include "bench/common.h"
#include "src/apps/seqrw.h"

namespace dilos {
namespace {

void RunOne(bool with_pressure) {
  Fabric fabric;
  const uint64_t ws = 32ULL << 20;
  // Under pressure: 12.5% local, so every fetch reclaims. Without: local
  // memory is large enough that no reclamation happens during the sweep.
  uint64_t local = with_pressure ? ws / 8 : 2 * ws;
  FastswapConfig cfg;
  cfg.local_mem_bytes = local;
  cfg.readahead_enabled = false;
  FastswapRuntime rt(fabric, cfg);

  SeqWorkload wl(rt, ws);
  if (!with_pressure) {
    // Spill everything with a filler region, then munmap the filler so the
    // sweep's fetches find free frames and never reclaim.
    uint64_t filler = rt.AllocRegion(local);
    for (uint64_t off = 0; off < local; off += kPageSize) {
      rt.Write<uint8_t>(filler + off, 1);
    }
    rt.FreeRegion(filler, local);
  }
  rt.stats().fault_breakdown.Reset();
  wl.Read();

  const LatencyBreakdown& bd = rt.stats().fault_breakdown;
  std::printf("--- %s (over %llu major faults) ---\n",
              with_pressure ? "Average (with reclamation)" : "No reclamation",
              static_cast<unsigned long long>(bd.events()));
  std::printf("%s\n", bd.ToString().c_str());
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::PrintHeader(
      "Figure 1: Fastswap page-fault handler latency breakdown\n"
      "(paper: fetch ~46%, HW exception+OS handler ~9%, reclamation ~29% on average)");
  dilos::RunOne(/*with_pressure=*/true);
  dilos::RunOne(/*with_pressure=*/false);
  return 0;
}
