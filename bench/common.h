// Shared helpers for the per-figure/table benchmark binaries.
//
// Every binary regenerates one table or figure of the paper on the
// simulated testbed and prints the same rows/series the paper reports.
// Absolute numbers come from the calibrated cost model (see
// src/sim/cost_model.h); the shapes — who wins, by what factor, where the
// crossovers sit — are the reproduction targets (see EXPERIMENTS.md).
#ifndef DILOS_BENCH_COMMON_H_
#define DILOS_BENCH_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/dilos/trend.h"
#include "src/fastswap/fastswap.h"
#include "src/redis/redis_bench.h"
#include "src/sim/rng.h"

namespace dilos {

// Machine-readable bench output (--json <path>): the printed tables stay the
// human interface, but each row is also captured as a
// {bench, config, metrics} record and written as a JSON array at exit, so CI
// can archive the run (the BENCH_*.json trajectory) and trend it across
// commits.
class BenchJson {
 public:
  static BenchJson& Instance() {
    static BenchJson j;
    return j;
  }

  void Open(std::string path) { path_ = std::move(path); }
  bool enabled() const { return !path_.empty(); }

  // Starts one record, e.g. BeginRecord("ext_tier.miss_latency").
  void BeginRecord(const std::string& bench) {
    if (!enabled()) {
      return;
    }
    records_.push_back(Record{bench, {}, {}});
  }

  void Config(const std::string& key, const std::string& value) {
    Append(&ConfigOf(), key, "\"" + value + "\"");
  }
  void Config(const std::string& key, double value) { Append(&ConfigOf(), key, Num(value)); }
  void Config(const std::string& key, uint64_t value) {
    Append(&ConfigOf(), key, std::to_string(value));
  }
  void Metric(const std::string& key, double value) { Append(&MetricsOf(), key, Num(value)); }
  void Metric(const std::string& key, uint64_t value) {
    Append(&MetricsOf(), key, std::to_string(value));
  }

  // Writes the accumulated records; returns false (with a note on stderr)
  // when the file cannot be opened. Called once from main after all rows.
  bool Flush() {
    if (!enabled()) {
      return true;
    }
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path_.c_str());
      return false;
    }
    std::fputs("[\n", f);
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f, "  {\"bench\": \"%s\", \"config\": {%s}, \"metrics\": {%s}}%s\n",
                   r.bench.c_str(), Join(r.config).c_str(), Join(r.metrics).c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    return true;
  }

 private:
  struct Record {
    std::string bench;
    std::vector<std::string> config;   // Pre-rendered "\"key\": value" pairs.
    std::vector<std::string> metrics;
  };

  std::vector<std::string>& ConfigOf() { return records_.back().config; }
  std::vector<std::string>& MetricsOf() { return records_.back().metrics; }

  void Append(std::vector<std::string>* list, const std::string& key,
              const std::string& rendered) {
    if (!enabled() || records_.empty()) {
      return;
    }
    list->push_back("\"" + key + "\": " + rendered);
  }

  static std::string Num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  static std::string Join(const std::vector<std::string>& parts) {
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
      out += parts[i];
      if (i + 1 < parts.size()) {
        out += ", ";
      }
    }
    return out;
  }

  std::string path_;
  std::vector<Record> records_;
};

// Common bench flags: --json <path> (machine-readable output, see BenchJson)
// and --short (reduced iteration counts for CI smoke runs; ignored when
// `short_flag` is null). Unknown arguments are left alone.
inline void BenchParseArgs(int argc, char** argv, bool* short_flag = nullptr) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      BenchJson::Instance().Open(argv[i + 1]);
      ++i;
    } else if (short_flag != nullptr && std::strcmp(argv[i], "--short") == 0) {
      *short_flag = true;
    }
  }
}

// Emits the runtime knobs that change what a number means — cores, fault
// pipeline, redundancy scheme, tier — into the current record's `config`
// block, so archived bench JSON is self-describing across PRs.
inline void JsonRuntimeConfig(const DilosConfig& cfg) {
  BenchJson& j = BenchJson::Instance();
  if (!j.enabled()) {
    return;
  }
  j.Config("cores", static_cast<uint64_t>(cfg.num_cores));
  j.Config("fault_pipeline_depth",
           static_cast<uint64_t>(cfg.fault_pipeline.enabled ? cfg.fault_pipeline.depth : 0));
  j.Config("replication", static_cast<uint64_t>(cfg.replication));
  j.Config("ec", cfg.ec.enabled
                     ? "(" + std::to_string(cfg.ec.k) + "," + std::to_string(cfg.ec.m) + ")"
                     : std::string("off"));
  j.Config("tier", cfg.tier.enabled ? "on" : "off");
}

enum class DilosVariant { kNoPrefetch, kReadahead, kTrend };

inline const char* VariantName(DilosVariant v) {
  switch (v) {
    case DilosVariant::kNoPrefetch:
      return "DiLOS no-prefetch";
    case DilosVariant::kReadahead:
      return "DiLOS readahead";
    case DilosVariant::kTrend:
      return "DiLOS trend-based";
  }
  return "?";
}

inline std::unique_ptr<Prefetcher> MakePrefetcher(DilosVariant v) {
  switch (v) {
    case DilosVariant::kNoPrefetch:
      return std::make_unique<NullPrefetcher>();
    case DilosVariant::kReadahead:
      return std::make_unique<ReadaheadPrefetcher>();
    case DilosVariant::kTrend:
      return std::make_unique<TrendPrefetcher>();
  }
  return nullptr;
}

// pipeline_depth 0 = blocking fault path; >= 1 enables the async fault
// pipeline with that many outstanding demand faults per core. `attribution`
// turns on per-fault critical-path attribution (src/telemetry/attribution.h)
// so benches can print phase waterfalls next to their latency columns.
inline std::unique_ptr<DilosRuntime> MakeDilos(Fabric& fabric, uint64_t local_bytes,
                                               DilosVariant v, bool tcp = false, int cores = 1,
                                               uint32_t pipeline_depth = 0,
                                               bool attribution = false) {
  DilosConfig cfg;
  cfg.local_mem_bytes = local_bytes;
  cfg.tcp_emulation = tcp;
  cfg.num_cores = cores;
  if (pipeline_depth > 0) {
    cfg.fault_pipeline.enabled = true;
    cfg.fault_pipeline.depth = pipeline_depth;
  }
  cfg.telemetry.attribution = attribution;
  return std::make_unique<DilosRuntime>(fabric, cfg, MakePrefetcher(v));
}

inline std::unique_ptr<FastswapRuntime> MakeFastswap(Fabric& fabric, uint64_t local_bytes,
                                                     int cores = 1) {
  FastswapConfig cfg;
  cfg.local_mem_bytes = local_bytes;
  cfg.num_cores = cores;
  return std::make_unique<FastswapRuntime>(fabric, cfg);
}

// ---- Shared workload generators ---------------------------------------------
//
// One home for key-index distributions and key/value synthesis, shared by
// the Redis drivers (bench/redis_common.h binaries) and the YCSB driver
// (bench_ycsb.cc), so the Zipfian and latest generators exist exactly once:
// Zipfian sampling is src/sim/rng.h's ZipfSampler (Gray et al.), "latest"
// is its mirror over the insertion frontier, and payload bytes come from
// RedisBench::MakeValue.

enum class KeyDist { kUniform, kZipfian, kLatest };

inline const char* KeyDistName(KeyDist d) {
  switch (d) {
    case KeyDist::kUniform:
      return "uniform";
    case KeyDist::kZipfian:
      return "zipfian";
    case KeyDist::kLatest:
      return "latest";
  }
  return "?";
}

// Draws key indices in [0, n) under the YCSB request distributions.
// `set_n` tracks a growing keyspace (insert-heavy mixes): uniform and
// latest follow it exactly; Zipfian keeps its precomputed rank table and
// folds into the current range.
class KeyChooser {
 public:
  KeyChooser(KeyDist dist, uint64_t n, uint64_t seed, double theta = 0.99)
      : dist_(dist), n_(n ? n : 1), rng_(seed),
        zipf_(n ? n : 1, theta, seed ^ 0x5BD1E995ULL) {}

  void set_n(uint64_t n) { n_ = n ? n : 1; }
  uint64_t n() const { return n_; }

  uint64_t Next() {
    switch (dist_) {
      case KeyDist::kUniform:
        return rng_.NextBelow(n_);
      case KeyDist::kZipfian:
        return zipf_.Next() % n_;
      case KeyDist::kLatest:
        // Rank 0 = the most recently inserted key: Zipfian distance back
        // from the insertion frontier (YCSB's "latest" distribution).
        return n_ - 1 - (zipf_.Next() % n_);
    }
    return 0;
  }

 private:
  KeyDist dist_;
  uint64_t n_;
  Rng rng_;
  ZipfSampler zipf_;
};

// Sort-based percentile over raw latency samples (p in [0, 1]). Sorts the
// vector in place; callers that still need arrival order should copy first.
inline uint64_t BenchPct(std::vector<uint64_t>& lat, double p) {
  if (lat.empty()) {
    return 0;
  }
  std::sort(lat.begin(), lat.end());
  size_t i = static_cast<size_t>(p * static_cast<double>(lat.size() - 1));
  return lat[i];
}

// ---- Two-tenant workload harness ---------------------------------------------
//
// One home for the "two tenants, disjoint regions, independent Zipfian read
// storms" setup shared by bench_ext_migration (drain under load) and
// bench_ablation_hol (fair-share isolation). Each region is seeded with
// (addr ^ 0xD15C0) sentinel values so a verify sweep can prove losslessness.
// When built on a tenancy-enabled runtime, pass real tenant ids so regions
// are bound in the registry; the default (-1, -1) allocates untenanted
// regions — identical to the pre-tenancy ad-hoc harness.
class TwoTenantWorkload {
 public:
  TwoTenantWorkload(DilosRuntime& rt, uint64_t pages_per_tenant, int tenant0 = -1,
                    int tenant1 = -1)
      : rt_(rt), pages_(pages_per_tenant ? pages_per_tenant : 1),
        chooser_{KeyChooser(KeyDist::kZipfian, pages_, 1031),
                 KeyChooser(KeyDist::kZipfian, pages_, 4057)} {
    const uint64_t ws = pages_ * kPageSize;
    const int ids[2] = {tenant0, tenant1};
    for (int t = 0; t < 2; ++t) {
      region_[t] = ids[t] >= 0 ? rt_.AllocRegion(ws, ids[t]) : rt_.AllocRegion(ws);
      for (uint64_t p = 0; p < pages_; ++p) {
        rt_.Write<uint64_t>(region_[t] + p * kPageSize, Sentinel(t, p));
      }
    }
  }

  uint64_t region(int t) const { return region_[t]; }
  uint64_t pages() const { return pages_; }

  // One timed Zipfian read for tenant t on `core`; appends the latency.
  void SampleRead(int t, std::vector<uint64_t>* lat, int core = 0) {
    uint64_t p = chooser_[t].Next();
    uint64_t t0 = rt_.clock(core).now();
    volatile uint64_t v = rt_.Read<uint64_t>(region_[t] + p * kPageSize, core);
    (void)v;
    lat->push_back(rt_.clock(core).now() - t0);
  }

  // One step of a sequential full-region scan for tenant t on `core` — the
  // aggressor pattern for head-of-line benchmarks. Each call touches the
  // next page (wrapping), maximizing demand-fetch pressure on the fabric.
  void ScanStep(int t, int core = 0) {
    volatile uint64_t v = rt_.Read<uint64_t>(region_[t] + scan_[t] * kPageSize, core);
    (void)v;
    scan_[t] = (scan_[t] + 1) % pages_;
  }

  // Full verify sweep over both tenants; returns the mismatch count.
  uint64_t VerifyMismatches() {
    uint64_t bad = 0;
    for (int t = 0; t < 2; ++t) {
      for (uint64_t p = 0; p < pages_; ++p) {
        if (rt_.Read<uint64_t>(region_[t] + p * kPageSize) != Sentinel(t, p)) {
          ++bad;
        }
      }
    }
    return bad;
  }

 private:
  uint64_t Sentinel(int t, uint64_t p) const { return (region_[t] + p) ^ 0xD15C0; }

  DilosRuntime& rt_;
  uint64_t pages_;
  uint64_t region_[2] = {0, 0};
  uint64_t scan_[2] = {0, 0};
  KeyChooser chooser_[2];
};

// Canonical key / payload synthesis (implemented once, in src/redis).
inline std::string BenchKeyName(uint64_t i) { return RedisBench::KeyName(i); }
inline std::string BenchValue(uint32_t size, uint64_t salt) {
  return RedisBench::MakeValue(size, salt);
}

inline void PrintHeader(const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("==============================================================\n");
}

inline double ToSeconds(uint64_t ns) { return static_cast<double>(ns) / 1e9; }

// Local-memory fractions the paper sweeps.
inline constexpr double kLocalFractions[] = {0.125, 0.25, 0.5, 1.0};

}  // namespace dilos

#endif  // DILOS_BENCH_COMMON_H_
