// Shared helpers for the per-figure/table benchmark binaries.
//
// Every binary regenerates one table or figure of the paper on the
// simulated testbed and prints the same rows/series the paper reports.
// Absolute numbers come from the calibrated cost model (see
// src/sim/cost_model.h); the shapes — who wins, by what factor, where the
// crossovers sit — are the reproduction targets (see EXPERIMENTS.md).
#ifndef DILOS_BENCH_COMMON_H_
#define DILOS_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/dilos/trend.h"
#include "src/fastswap/fastswap.h"

namespace dilos {

enum class DilosVariant { kNoPrefetch, kReadahead, kTrend };

inline const char* VariantName(DilosVariant v) {
  switch (v) {
    case DilosVariant::kNoPrefetch:
      return "DiLOS no-prefetch";
    case DilosVariant::kReadahead:
      return "DiLOS readahead";
    case DilosVariant::kTrend:
      return "DiLOS trend-based";
  }
  return "?";
}

inline std::unique_ptr<Prefetcher> MakePrefetcher(DilosVariant v) {
  switch (v) {
    case DilosVariant::kNoPrefetch:
      return std::make_unique<NullPrefetcher>();
    case DilosVariant::kReadahead:
      return std::make_unique<ReadaheadPrefetcher>();
    case DilosVariant::kTrend:
      return std::make_unique<TrendPrefetcher>();
  }
  return nullptr;
}

inline std::unique_ptr<DilosRuntime> MakeDilos(Fabric& fabric, uint64_t local_bytes,
                                               DilosVariant v, bool tcp = false, int cores = 1) {
  DilosConfig cfg;
  cfg.local_mem_bytes = local_bytes;
  cfg.tcp_emulation = tcp;
  cfg.num_cores = cores;
  return std::make_unique<DilosRuntime>(fabric, cfg, MakePrefetcher(v));
}

inline std::unique_ptr<FastswapRuntime> MakeFastswap(Fabric& fabric, uint64_t local_bytes,
                                                     int cores = 1) {
  FastswapConfig cfg;
  cfg.local_mem_bytes = local_bytes;
  cfg.num_cores = cores;
  return std::make_unique<FastswapRuntime>(fabric, cfg);
}

inline void PrintHeader(const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("==============================================================\n");
}

inline double ToSeconds(uint64_t ns) { return static_cast<double>(ns) / 1e9; }

// Local-memory fractions the paper sweeps.
inline constexpr double kLocalFractions[] = {0.125, 0.25, 0.5, 1.0};

}  // namespace dilos

#endif  // DILOS_BENCH_COMMON_H_
