// Host-side microbenchmarks (google-benchmark) of the simulator substrates
// themselves: page-table walks, frame pool churn, the far-heap allocator,
// and the szip codec. These measure the reproduction's own performance, not
// simulated time — useful for keeping the simulator fast enough to run the
// paper-scale sweeps.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/apps/szip.h"
#include "src/ddc_alloc/far_heap.h"
#include "src/dilos/prefetcher.h"
#include "src/dilos/runtime.h"
#include "src/pt/frame_pool.h"
#include "src/pt/page_table.h"

namespace dilos {
namespace {

void BM_PageTableWalk(benchmark::State& state) {
  PageTable pt;
  for (uint64_t i = 0; i < 4096; ++i) {
    pt.Set(kFarBase + i * kPageSize, MakeRemotePte(i));
  }
  uint64_t va = kFarBase;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.Get(va));
    va += kPageSize;
    if (va >= kFarBase + 4096 * kPageSize) {
      va = kFarBase;
    }
  }
}
BENCHMARK(BM_PageTableWalk);

void BM_FramePoolAllocFree(benchmark::State& state) {
  FramePool pool(1024);
  for (auto _ : state) {
    auto f = pool.Alloc();
    benchmark::DoNotOptimize(f);
    pool.Free(*f);
  }
}
BENCHMARK(BM_FramePoolAllocFree);

void BM_FarHeapMallocFree(benchmark::State& state) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 64ULL << 20;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  FarHeap heap(rt);
  for (auto _ : state) {
    uint64_t a = heap.Malloc(128);
    benchmark::DoNotOptimize(a);
    heap.Free(a);
  }
}
BENCHMARK(BM_FarHeapMallocFree);

void BM_DilosPinLocal(benchmark::State& state) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 16ULL << 20;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  uint64_t region = rt.AllocRegion(1 << 20);
  for (uint64_t off = 0; off < (1 << 20); off += kPageSize) {
    rt.Write<uint8_t>(region + off, 1);
  }
  uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.Pin(region + off, 8, false, 0));
    off = (off + kPageSize) & ((1 << 20) - 1);
  }
}
BENCHMARK(BM_DilosPinLocal);

void BM_SzipCompress64K(benchmark::State& state) {
  std::vector<uint8_t> src(65536);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<uint8_t>((i % 97 < 64) ? 'a' + (i >> 8) % 26 : i * 31);
  }
  std::vector<uint8_t> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(SzipCompressBlock(src.data(), src.size(), &out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_SzipCompress64K);

}  // namespace
}  // namespace dilos

BENCHMARK_MAIN();
