// YCSB-style service benchmark over the sharded KV service (src/kv).
//
// The ROADMAP's "millions of users" flagship: a hash-partitioned ordered KV
// store (far-memory B+-tree shards, local search layer) driven with the
// standard YCSB core mixes at 25% local memory:
//
//   A  50% read / 50% update, Zipfian        (session store)
//   B  95% read /  5% update, Zipfian        (photo tagging)
//   C  100% read, Zipfian + a uniform column (user-profile cache)
//   D  95% read /  5% insert, latest         (status updates)
//   E  95% scan /  5% insert, Zipfian starts (threaded conversations)
//
// Reported per mix: throughput and p50/p99/p999 op latency (LogHistogram),
// plus demand faults taken and guided-prefetched pages. Mix E runs twice —
// once demand-faulting leaf by leaf, once with the KvScanGuide issuing
// vectored prefetches over the upcoming leaf granules — and the run fails
// (exit 1) unless guidance wins on BOTH faults taken and p99, making the
// scan-guide regression visible to CI's bench-smoke job.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/guides/kv_guide.h"
#include "src/kv/kv_service.h"

namespace dilos {
namespace {

struct MixSpec {
  const char* name;
  int read_pct;
  int update_pct;
  int insert_pct;
  int scan_pct;  // Remainder; scans draw a uniform length in [1, scan_max].
  KeyDist dist;
};

constexpr MixSpec kMixes[] = {
    {"A", 50, 50, 0, 0, KeyDist::kZipfian},
    {"B", 95, 5, 0, 0, KeyDist::kZipfian},
    {"C", 100, 0, 0, 0, KeyDist::kZipfian},
    {"C", 100, 0, 0, 0, KeyDist::kUniform},
    {"D", 95, 0, 5, 0, KeyDist::kLatest},
    {"E", 0, 0, 5, 95, KeyDist::kZipfian},
};

struct MixResult {
  double ops_per_sec = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  uint64_t major_faults = 0;
  uint64_t prefetched = 0;
};

constexpr uint32_t kValueSize = 256;
constexpr uint32_t kScanMax = 100;
constexpr int kShards = 4;

// Size local DRAM to ~25% of the leaf data set so the run actually pages.
// Single home for the runtime shape: RunMix builds from this and JsonRow
// echoes it into each record's config block.
DilosConfig MixRuntimeCfg(uint64_t records) {
  uint32_t leaf_cap = (kPageSize - 16) / (8 + kValueSize);
  uint64_t data_pages = records / leaf_cap + 128;
  DilosConfig cfg;
  cfg.local_mem_bytes = data_pages * kPageSize / 4;
  return cfg;
}

MixResult RunMix(const MixSpec& m, bool guided, uint64_t records, uint64_t ops) {
  Fabric fabric(CostModel::Default(), 4);
  auto rt = MakeDilos(fabric, MixRuntimeCfg(records).local_mem_bytes,
                      DilosVariant::kNoPrefetch);

  KvConfig kcfg;
  kcfg.shards = kShards;
  kcfg.tree.value_size = kValueSize;
  KvService kv(*rt, kcfg, &rt->tracer());
  KvScanGuide guide(/*window=*/8);
  if (guided) {
    rt->set_guide(&guide);
    kv.set_scan_hooks(&guide);
  }

  // Load phase: sequential keys, so each shard's leaves pack densely into
  // sequential granules (the layout scans exploit).
  for (uint64_t i = 0; i < records; ++i) {
    kv.Put(i, BenchValue(kValueSize, i));
  }

  uint64_t faults0 = rt->stats().major_faults;
  uint64_t prefetched0 = rt->stats().kv_scan_prefetch_pages;
  uint64_t run0 = rt->clock().now();
  KeyChooser chooser(m.dist, records, /*seed=*/1031);
  Rng rng(977);
  LogHistogram lat;
  std::vector<std::pair<uint64_t, std::string>> scan_out;
  std::string value;
  uint64_t frontier = records;  // Next key for insert ops.
  for (uint64_t q = 0; q < ops; ++q) {
    int pick = static_cast<int>(rng.NextBelow(100));
    uint64_t t0 = rt->clock().now();
    if (pick < m.read_pct) {
      kv.Get(chooser.Next(), &value);
    } else if (pick < m.read_pct + m.update_pct) {
      kv.Put(chooser.Next(), BenchValue(kValueSize, q ^ 0xBEEF));
    } else if (pick < m.read_pct + m.update_pct + m.insert_pct) {
      kv.Put(frontier, BenchValue(kValueSize, frontier));
      ++frontier;
      chooser.set_n(frontier);
    } else {
      scan_out.clear();
      kv.Scan(chooser.Next(), 1 + static_cast<uint32_t>(rng.NextBelow(kScanMax)), &scan_out);
    }
    lat.Record(rt->clock().now() - t0);
  }

  MixResult r;
  uint64_t elapsed = rt->clock().now() - run0;
  r.ops_per_sec = elapsed == 0 ? 0.0
                               : static_cast<double>(ops) * 1e9 / static_cast<double>(elapsed);
  r.p50_ns = lat.Percentile(50);
  r.p99_ns = lat.Percentile(99);
  r.p999_ns = lat.Percentile(99.9);
  r.major_faults = rt->stats().major_faults - faults0;
  r.prefetched = rt->stats().kv_scan_prefetch_pages - prefetched0;
  return r;
}

void PrintRow(const MixSpec& m, const char* scan_path, const MixResult& r) {
  std::printf("%-4s %-8s %-12s %11.0f %9.1f %9.1f %9.1f %9llu %11llu\n", m.name,
              KeyDistName(m.dist), scan_path, r.ops_per_sec,
              static_cast<double>(r.p50_ns) / 1000.0, static_cast<double>(r.p99_ns) / 1000.0,
              static_cast<double>(r.p999_ns) / 1000.0,
              static_cast<unsigned long long>(r.major_faults),
              static_cast<unsigned long long>(r.prefetched));
}

void JsonRow(const MixSpec& m, const char* scan_path, uint64_t records, uint64_t ops,
             const MixResult& r) {
  BenchJson& j = BenchJson::Instance();
  j.BeginRecord("ycsb.mix");
  j.Config("mix", std::string(m.name));
  j.Config("dist", std::string(KeyDistName(m.dist)));
  j.Config("scan_path", std::string(scan_path));
  j.Config("records", records);
  j.Config("ops", ops);
  j.Config("value_size", static_cast<uint64_t>(kValueSize));
  j.Config("shards", static_cast<uint64_t>(kShards));
  JsonRuntimeConfig(MixRuntimeCfg(records));
  j.Metric("ops_per_sec", r.ops_per_sec);
  j.Metric("p50_us", static_cast<double>(r.p50_ns) / 1000.0);
  j.Metric("p99_us", static_cast<double>(r.p99_ns) / 1000.0);
  j.Metric("p999_us", static_cast<double>(r.p999_ns) / 1000.0);
  j.Metric("major_faults", r.major_faults);
  j.Metric("prefetched_pages", r.prefetched);
}

int Main(int argc, char** argv) {
  bool short_run = false;
  BenchParseArgs(argc, argv, &short_run);
  uint64_t records = short_run ? 12'000 : 40'000;
  uint64_t ops = short_run ? 4'000 : 20'000;

  PrintHeader("YCSB core mixes over the sharded far-memory KV service (25% local)");
  std::printf("records=%llu ops=%llu value=%uB shards=%d\n\n",
              static_cast<unsigned long long>(records), static_cast<unsigned long long>(ops),
              kValueSize, kShards);
  std::printf("%-4s %-8s %-12s %11s %9s %9s %9s %9s %11s\n", "mix", "dist", "scan-path",
              "ops/s", "p50us", "p99us", "p999us", "faults", "prefetched");

  MixResult e_demand, e_guided;
  for (const MixSpec& m : kMixes) {
    if (m.scan_pct == 0) {
      MixResult r = RunMix(m, /*guided=*/false, records, ops);
      PrintRow(m, "-", r);
      JsonRow(m, "-", records, ops, r);
      continue;
    }
    // Scan-heavy mix: demand-fault baseline vs guided vectored prefetch,
    // both columns in the output (the acceptance comparison).
    e_demand = RunMix(m, /*guided=*/false, records, ops);
    PrintRow(m, "demand", e_demand);
    JsonRow(m, "demand", records, ops, e_demand);
    e_guided = RunMix(m, /*guided=*/true, records, ops);
    PrintRow(m, "guided", e_guided);
    JsonRow(m, "guided", records, ops, e_guided);
  }

  std::printf("\nmix E guided vs demand: faults %llu -> %llu (%+.0f%%), p99 %.1fus -> %.1fus "
              "(%+.0f%%)\n",
              static_cast<unsigned long long>(e_demand.major_faults),
              static_cast<unsigned long long>(e_guided.major_faults),
              100.0 * (static_cast<double>(e_guided.major_faults) /
                           static_cast<double>(e_demand.major_faults ? e_demand.major_faults : 1) -
                       1.0),
              static_cast<double>(e_demand.p99_ns) / 1000.0,
              static_cast<double>(e_guided.p99_ns) / 1000.0,
              100.0 * (static_cast<double>(e_guided.p99_ns) /
                           static_cast<double>(e_demand.p99_ns ? e_demand.p99_ns : 1) -
                       1.0));

  if (!BenchJson::Instance().Flush()) {
    return 1;
  }
  if (e_guided.major_faults >= e_demand.major_faults || e_guided.p99_ns >= e_demand.p99_ns) {
    std::fprintf(stderr,
                 "FAIL: guided scans must beat the demand-fault baseline on faults and p99\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dilos

int main(int argc, char** argv) { return dilos::Main(argc, argv); }
