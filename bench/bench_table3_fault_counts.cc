// Table 3: number of page faults during sequential read for Fastswap and
// the DiLOS variants (12.5% local). Paper: DiLOS no-prefetch has only major
// faults; with prefetchers, majors match Fastswap's and minors drop ~25%
// because prefetched pages are mapped directly into the page table.
#include <cstdio>

#include "bench/common.h"
#include "src/apps/seqrw.h"

namespace dilos {
namespace {

constexpr uint64_t kWorkingSet = 64ULL << 20;

void Row(const char* name, FarRuntime& rt) {
  SeqWorkload wl(rt, kWorkingSet);
  SeqResult r = wl.Read();
  std::printf("%-22s %10llu %10llu %10llu\n", name,
              static_cast<unsigned long long>(r.major_faults),
              static_cast<unsigned long long>(r.minor_faults),
              static_cast<unsigned long long>(r.major_faults + r.minor_faults));
}

void Run() {
  PrintHeader("Table 3: fault counts, sequential read, 12.5% local\n"
              "(paper shape: DiLOS-np all-major; prefetchers -> 1/8 major, fewer minors "
              "than Fastswap)");
  std::printf("%-22s %10s %10s %10s   (%llu pages swept)\n", "system", "major", "minor",
              "total", static_cast<unsigned long long>(kWorkingSet / kPageSize));
  {
    Fabric fabric;
    auto rt = MakeFastswap(fabric, kWorkingSet / 8);
    Row("Fastswap", *rt);
  }
  for (DilosVariant v :
       {DilosVariant::kNoPrefetch, DilosVariant::kReadahead, DilosVariant::kTrend}) {
    Fabric fabric;
    auto rt = MakeDilos(fabric, kWorkingSet / 8, v);
    Row(VariantName(v), *rt);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
