// Extension bench (paper Fig. 5's motivating scenario, quantified): a
// linked list with one node per page, traversed under memory pressure.
// History-based prefetchers cannot predict pointer order; the list guide
// chases `next` pointers with subpage reads and keeps a pipeline of page
// fetches ahead of the traversal.
#include <cstdio>

#include "bench/common.h"
#include "src/apps/linked_list.h"
#include "src/guides/list_guide.h"

namespace dilos {
namespace {

constexpr uint64_t kNodes = 4096;

double RunOne(int mode, double local_fraction) {  // 0 none, 1 ra, 2 trend, 3 guide.
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes =
      static_cast<uint64_t>(static_cast<double>(kNodes * kPageSize) * local_fraction);
  std::unique_ptr<Prefetcher> pf;
  switch (mode) {
    case 1:
      pf = std::make_unique<ReadaheadPrefetcher>();
      break;
    case 2:
      pf = MakePrefetcher(DilosVariant::kTrend);
      break;
    default:
      pf = std::make_unique<NullPrefetcher>();
      break;
  }
  DilosRuntime rt(fabric, cfg, std::move(pf));
  LinkedListWorkload list(rt, kNodes);
  ListGuide guide(kListNextOffset, /*chase_depth=*/4);
  if (mode == 3) {
    rt.set_guide(&guide);
  }
  auto res = list.Traverse([&](uint64_t node) { guide.OnVisit(node); });
  return static_cast<double>(res.elapsed_ns) / static_cast<double>(res.nodes);
}

void Run() {
  PrintHeader("Extension: pointer-chasing traversal (Fig. 5 scenario)\n"
              "ns per node, one node per page, list order random");
  const char* names[] = {"no-prefetch", "readahead", "trend-based", "list guide"};
  std::printf("%-18s", "prefetcher");
  for (double f : {0.125, 0.25, 0.5}) {
    std::printf(" %9.1f%%", f * 100);
  }
  std::printf("\n");
  for (int mode = 0; mode < 4; ++mode) {
    std::printf("%-18s", names[mode]);
    for (double f : {0.125, 0.25, 0.5}) {
      std::printf(" %10.0f", RunOne(mode, f));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
