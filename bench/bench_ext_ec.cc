// Extension bench (src/recovery/ec): replication vs erasure coding.
//
// Same 6-node fabric, same random-read load, four redundancy schemes:
// replication R=2 and R=3 versus EC(2,1) and EC(4,2). For each scheme the
// bench measures the three sides of the redundancy triangle:
//
//   - remote capacity overhead: stored pages (data + copies/parity) per
//     unique data page. Replication pays Rx; EC pays (k+m)/k — 1.5x for
//     (4,2) against 2x for the cheapest replication.
//   - demand latency, healthy and after a node crash. Replication fails
//     over to a full copy (near-healthy latency); EC must fan out k reads
//     and decode (the degraded-read penalty), so its post-crash p99 is the
//     price of the capacity savings.
//   - rebuild: time and bytes to restore full redundancy. Replication
//     copies each lost granule from a surviving replica (2 pages moved per
//     page); EC decodes it from k survivors (k+1 pages moved per page).
//     EC(4,2) on 6 nodes has no off-stripe node to rebuild onto, so it
//     stays degraded — printed as "-" (reads keep being served).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"

namespace dilos {
namespace {

constexpr uint64_t kWs = 32ULL << 20;
constexpr uint64_t kPages = kWs / kPageSize;
constexpr int kSamples = 3000;

struct Scheme {
  const char* name;
  int replication;  // Ignored when ec.enabled.
  ECConfig ec;
};

struct Row {
  double overhead = 0;
  uint64_t healthy_p50 = 0, healthy_p99 = 0;
  uint64_t degraded_p50 = 0, degraded_p99 = 0;
  double rebuild_ms = -1;  // < 0: no rebuild possible (stays degraded).
  double rebuild_mb = 0;
  uint64_t failed = 0;
};

Row Run(const Scheme& s) {
  Fabric fabric(CostModel::Default(), 6);
  DilosConfig cfg;
  cfg.local_mem_bytes = kWs / 8;
  cfg.replication = s.replication;
  cfg.ec = s.ec;
  cfg.recovery.enabled = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());

  uint64_t region = rt.AllocRegion(kWs);
  for (uint64_t off = 0; off < kWs; off += kPageSize) {
    rt.Write<uint64_t>(region + off, off ^ 0xEC0DE);
  }

  uint64_t rng = 0x9E3779B9;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  auto sample = [&](std::vector<uint64_t>* lat) {
    uint64_t t0 = rt.clock(0).now();
    volatile uint64_t v = rt.Read<uint64_t>(region + (next() % kPages) * kPageSize);
    (void)v;
    lat->push_back(rt.clock(0).now() - t0);
  };

  Row row;
  std::vector<uint64_t> lat;
  lat.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    sample(&lat);
  }
  row.healthy_p50 = BenchPct(lat, 0.50);
  row.healthy_p99 = BenchPct(lat, 0.99);

  // Capacity overhead, measured from the stores themselves: total stored
  // pages (copies and parity included) per unique data page stored.
  {
    std::vector<uint64_t> data_pages;
    size_t stored = 0;
    for (int n = 0; n < fabric.num_nodes(); ++n) {
      for (const auto& [page, mem] : fabric.node(n).store().pages()) {
        (void)mem;
        ++stored;
        if ((page << kPageShift) < kEcParityBase) {
          data_pages.push_back(page);
        }
      }
    }
    std::sort(data_pages.begin(), data_pages.end());
    size_t unique =
        static_cast<size_t>(std::unique(data_pages.begin(), data_pages.end()) -
                            data_pages.begin());
    row.overhead = unique == 0 ? 0 : static_cast<double>(stored) / static_cast<double>(unique);
  }

  // Crash node 0 (no oracle) and keep reading. First ride out detection,
  // then measure the steady degraded-read latency.
  fabric.CrashNode(0);
  uint64_t crash_ns = rt.clock(0).now();
  lat.clear();
  while (rt.router().state(0) != NodeState::kDead && lat.size() < 200'000) {
    sample(&lat);
  }
  lat.clear();
  for (int i = 0; i < kSamples; ++i) {
    sample(&lat);
  }
  row.degraded_p50 = BenchPct(lat, 0.50);
  row.degraded_p99 = BenchPct(lat, 0.99);

  // Let repair finish (replication re-copies; EC(2,1) decodes onto an
  // off-stripe node; EC(4,2) on 6 nodes has nowhere to rebuild).
  for (int i = 0; i < 5'000 && !rt.RecoveryIdle(); ++i) {
    rt.DriveRecovery(1'000'000);
  }
  if (rt.stats().repairs_issued > 0 && rt.RecoveryIdle()) {
    row.rebuild_ms = static_cast<double>(rt.clock(0).now() - crash_ns) / 1e6;
    row.rebuild_mb = static_cast<double>(rt.stats().repair_bytes) / 1e6;
  }
  row.failed = rt.stats().failed_fetches;
  return row;
}

void RunAll() {
  PrintHeader(
      "Extension: replication vs erasure coding — capacity / latency / rebuild\n"
      "6 nodes, 32 MB working set, node 0 crashes under random-read load");
  std::printf("%-12s %9s %12s %12s %13s %13s %11s %10s %6s\n", "scheme", "capacity",
              "healthy p50", "healthy p99", "degraded p50", "degraded p99", "rebuild ms",
              "moved MB", "lost");
  ECConfig ec21;
  ec21.enabled = true;
  ec21.k = 2;
  ec21.m = 1;
  ECConfig ec42;
  ec42.enabled = true;
  ec42.k = 4;
  ec42.m = 2;
  const Scheme schemes[] = {
      {"repl R=2", 2, {}},
      {"repl R=3", 3, {}},
      {"EC(2,1)", 1, ec21},
      {"EC(4,2)", 1, ec42},
  };
  for (const Scheme& s : schemes) {
    Row r = Run(s);
    char rebuild[32];
    if (r.rebuild_ms < 0) {
      std::snprintf(rebuild, sizeof(rebuild), "%10s", "-");
    } else {
      std::snprintf(rebuild, sizeof(rebuild), "%10.2f", r.rebuild_ms);
    }
    std::printf("%-12s %8.2fx %9llu ns %9llu ns %10llu ns %10llu ns %s %10.1f %6llu\n",
                s.name, r.overhead, static_cast<unsigned long long>(r.healthy_p50),
                static_cast<unsigned long long>(r.healthy_p99),
                static_cast<unsigned long long>(r.degraded_p50),
                static_cast<unsigned long long>(r.degraded_p99), rebuild, r.rebuild_mb,
                static_cast<unsigned long long>(r.failed));
  }
  std::printf(
      "\nexpected shape: EC capacity (k+m)/k beats replication Rx; EC pays for it\n"
      "with a degraded-read p99 of ~k fan-out reads + decode until rebuilt.\n\n");
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::RunAll();
  return 0;
}
