// Figure 12: network bandwidth consumption during DEL and GET operations,
// vanilla paging vs allocator-guided (vectorized) paging. Paper: the guide
// cuts bandwidth by ~12% during DEL and ~29% during GET — after DELs leave
// page-internal fragmentation, only live chunks cross the wire.
#include <cstdio>

#include "bench/redis_common.h"

namespace dilos {
namespace {

constexpr uint64_t kKeys = 100'000;  // Paper: 128M keys x 128 B, scaled.
constexpr uint32_t kValueSize = 128;
constexpr double kDelFraction = 0.7;

struct PhaseBytes {
  uint64_t del_bytes = 0;
  uint64_t get_bytes = 0;
};

PhaseBytes RunOne(bool guided) {
  Fabric fabric;
  // ~25% of post-DEL usage, as in the paper.
  auto rt = MakeDilos(fabric, 8ULL << 20, DilosVariant::kNoPrefetch);
  RedisLite redis(*rt, kKeys);
  RedisGuide guide(&redis.heap());
  if (guided) {
    redis.set_hooks(&guide);
    rt->set_guide(&guide);
  }
  RedisBench bench(redis);
  bench.PopulateStrings(kKeys, {kValueSize});

  Link& link = fabric.link();
  uint64_t base = link.rx().total_bytes() + link.tx().total_bytes();
  bench.RunDel(static_cast<uint64_t>(kKeys * kDelFraction));
  uint64_t after_del = link.rx().total_bytes() + link.tx().total_bytes();
  bench.RunGet(kKeys / 2);
  uint64_t after_get = link.rx().total_bytes() + link.tx().total_bytes();
  return {after_del - base, after_get - after_del};
}

void Run() {
  PrintHeader("Figure 12: bandwidth during DEL then GET, vanilla vs guided paging\n"
              "(paper: guided paging saves ~12% on DEL, ~29% on GET)");
  PhaseBytes vanilla = RunOne(false);
  PhaseBytes guided = RunOne(true);
  std::printf("%-18s %14s %14s\n", "phase", "vanilla (MB)", "guided (MB)");
  std::printf("%-18s %14.1f %14.1f   (-%.0f%%)\n", "DEL",
              static_cast<double>(vanilla.del_bytes) / 1e6,
              static_cast<double>(guided.del_bytes) / 1e6,
              100.0 * (1.0 - static_cast<double>(guided.del_bytes) /
                                 static_cast<double>(vanilla.del_bytes)));
  std::printf("%-18s %14.1f %14.1f   (-%.0f%%)\n\n", "GET",
              static_cast<double>(vanilla.get_bytes) / 1e6,
              static_cast<double>(guided.get_bytes) / 1e6,
              100.0 * (1.0 - static_cast<double>(guided.get_bytes) /
                                 static_cast<double>(vanilla.get_bytes)));
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
