// Shared setup for the Redis-lite benchmark binaries (Fig. 10, Table 4,
// Fig. 12).
#ifndef DILOS_BENCH_REDIS_COMMON_H_
#define DILOS_BENCH_REDIS_COMMON_H_

#include <memory>

#include "bench/common.h"
#include "src/guides/redis_guide.h"
#include "src/redis/redis.h"
#include "src/redis/redis_bench.h"

namespace dilos {

enum class RedisSystem { kFastswap, kDilosNone, kDilosReadahead, kDilosTrend, kDilosAppAware };

inline const char* RedisSystemName(RedisSystem s) {
  switch (s) {
    case RedisSystem::kFastswap:
      return "Fastswap";
    case RedisSystem::kDilosNone:
      return "DiLOS no-prefetch";
    case RedisSystem::kDilosReadahead:
      return "DiLOS readahead";
    case RedisSystem::kDilosTrend:
      return "DiLOS trend-based";
    case RedisSystem::kDilosAppAware:
      return "DiLOS app-aware";
  }
  return "?";
}

inline constexpr RedisSystem kAllRedisSystems[] = {
    RedisSystem::kFastswap, RedisSystem::kDilosNone, RedisSystem::kDilosReadahead,
    RedisSystem::kDilosTrend, RedisSystem::kDilosAppAware};

// A fully wired Redis-lite instance on the requested system.
struct RedisEnv {
  Fabric fabric;
  std::unique_ptr<FarRuntime> rt;
  std::unique_ptr<RedisLite> redis;
  std::unique_ptr<RedisGuide> guide;

  // `attribution` enables per-fault critical-path attribution on the DiLOS
  // variants (ignored for Fastswap, which has no telemetry layer).
  RedisEnv(RedisSystem sys, uint64_t local_bytes, uint64_t expected_keys,
           bool attribution = false) {
    switch (sys) {
      case RedisSystem::kFastswap:
        rt = MakeFastswap(fabric, local_bytes);
        break;
      case RedisSystem::kDilosNone:
      case RedisSystem::kDilosAppAware:
        rt = MakeDilos(fabric, local_bytes, DilosVariant::kNoPrefetch, false, 1, 0, attribution);
        break;
      case RedisSystem::kDilosReadahead:
        rt = MakeDilos(fabric, local_bytes, DilosVariant::kReadahead, false, 1, 0, attribution);
        break;
      case RedisSystem::kDilosTrend:
        rt = MakeDilos(fabric, local_bytes, DilosVariant::kTrend, false, 1, 0, attribution);
        break;
    }
    redis = std::make_unique<RedisLite>(*rt, expected_keys);
    if (sys == RedisSystem::kDilosAppAware) {
      guide = std::make_unique<RedisGuide>(&redis->heap());
      redis->set_hooks(guide.get());
      static_cast<DilosRuntime*>(rt.get())->set_guide(guide.get());
    }
  }
};

}  // namespace dilos

#endif  // DILOS_BENCH_REDIS_COMMON_H_
