// Extension bench (src/recovery): what a memory-node crash costs with the
// recovery subsystem on.
//
// Three memory nodes, replication=2, failure detection + repair enabled.
// After a crash, demand reads keep being served (timeout -> strike -> dead ->
// failover to the surviving replica) while the repair manager re-replicates
// every degraded granule in the background. The repair-bandwidth throttle is
// the knob: more repair bytes per tick shortens the exposed-to-second-failure
// window but steals link time from demand fetches — this bench prints both
// sides of that trade so the knob can be picked on data.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"

namespace dilos {
namespace {

constexpr uint64_t kWs = 32ULL << 20;
constexpr uint64_t kPages = kWs / kPageSize;
constexpr int kSamples = 4000;

struct Row {
  uint64_t healthy_p50 = 0, healthy_p99 = 0;
  uint64_t repair_p50 = 0, repair_p99 = 0;
  double repair_mb_s = 0;
  double repair_ms = 0;
  uint64_t failed = 0;
};

DilosConfig MakeCfg(uint64_t bytes_per_tick, size_t pipeline_depth) {
  DilosConfig cfg;
  cfg.local_mem_bytes = kWs / 8;
  cfg.replication = 2;
  cfg.recovery.enabled = true;
  cfg.recovery.repair.bytes_per_tick = bytes_per_tick;
  cfg.recovery.repair.pipeline_depth = pipeline_depth;
  return cfg;
}

Row Run(uint64_t bytes_per_tick, size_t pipeline_depth = 8) {
  Fabric fabric(CostModel::Default(), 3);
  DilosConfig cfg = MakeCfg(bytes_per_tick, pipeline_depth);
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());

  uint64_t region = rt.AllocRegion(kWs);
  for (uint64_t off = 0; off < kWs; off += kPageSize) {
    rt.Write<uint64_t>(region + off, off);
  }

  uint64_t rng = 0x9E3779B9;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  auto sample = [&](std::vector<uint64_t>* lat) {
    uint64_t t0 = rt.clock(0).now();
    volatile uint64_t v = rt.Read<uint64_t>(region + (next() % kPages) * kPageSize);
    (void)v;
    lat->push_back(rt.clock(0).now() - t0);
  };

  Row row;
  std::vector<uint64_t> lat;
  lat.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    sample(&lat);
  }
  row.healthy_p50 = BenchPct(lat, 0.50);
  row.healthy_p99 = BenchPct(lat, 0.99);

  // Crash node 0 (no oracle call) and keep the demand load running while
  // detection and repair do their work underneath it.
  fabric.CrashNode(0);
  uint64_t crash_ns = rt.clock(0).now();
  lat.clear();
  while (!rt.RecoveryIdle() || rt.router().state(0) != NodeState::kDead ||
         rt.stats().repair_granules == 0) {
    sample(&lat);
    if (lat.size() > 200'000) {
      break;  // Safety valve; repair should finish long before this.
    }
  }
  uint64_t repair_end_ns = rt.clock(0).now();
  row.repair_p50 = BenchPct(lat, 0.50);
  row.repair_p99 = BenchPct(lat, 0.99);
  row.repair_ms = static_cast<double>(repair_end_ns - crash_ns) / 1e6;
  // Payload actually re-replicated (source read + target write both count).
  row.repair_mb_s = static_cast<double>(rt.stats().repair_bytes) / 1e6 /
                    (static_cast<double>(repair_end_ns - crash_ns) / 1e9);
  row.failed = rt.stats().failed_fetches;
  return row;
}

void RunAll() {
  PrintHeader("Extension: crash recovery — demand latency vs repair bandwidth\n"
              "3 nodes, replication=2, node 0 crashes under random-read load");
  std::printf("%-18s %12s %12s %12s %12s %10s %10s %7s\n", "repair throttle", "healthy p50",
              "healthy p99", "repair p50", "repair p99", "MB/s", "repair ms", "lost");
  const uint64_t throttles[] = {128ULL << 10, 512ULL << 10, 2ULL << 20};
  const char* names[] = {"128 KB/tick", "512 KB/tick", "2 MB/tick"};
  for (size_t i = 0; i < 3; ++i) {
    Row r = Run(throttles[i]);
    std::printf("%-18s %10llu ns %10llu ns %10llu ns %10llu ns %10.0f %10.2f %7llu\n",
                names[i], static_cast<unsigned long long>(r.healthy_p50),
                static_cast<unsigned long long>(r.healthy_p99),
                static_cast<unsigned long long>(r.repair_p50),
                static_cast<unsigned long long>(r.repair_p99), r.repair_mb_s, r.repair_ms,
                static_cast<unsigned long long>(r.failed));
    BenchJson& j = BenchJson::Instance();
    j.BeginRecord("ext_recovery.throttle");
    j.Config("repair_bytes_per_tick", throttles[i]);
    JsonRuntimeConfig(MakeCfg(throttles[i], 8));
    j.Metric("healthy_p50_ns", r.healthy_p50);
    j.Metric("healthy_p99_ns", r.healthy_p99);
    j.Metric("repair_p50_ns", r.repair_p50);
    j.Metric("repair_p99_ns", r.repair_p99);
    j.Metric("repair_mb_s", r.repair_mb_s);
    j.Metric("repair_ms", r.repair_ms);
    j.Metric("pages_lost", r.failed);
  }
  std::printf("\n");

  // Pipelined vs serial repair copies at a fixed throttle: the window of
  // in-flight source reads overlaps their fabric latencies (and the target
  // writes overlap the remaining reads), compressing the rebuild span.
  PrintHeader("Extension: repair pipelining — rebuild throughput vs window depth\n"
              "3 nodes, replication=2, 2 MB/tick throttle, node 0 crashes");
  std::printf("%-18s %12s %12s %12s %7s\n", "pipeline depth", "MB/s", "repair ms",
              "repair p99", "lost");
  const size_t depths[] = {1, 2, 8};
  const char* depth_names[] = {"1 (serial)", "2", "8"};
  double serial_mb_s = 0;
  for (size_t i = 0; i < 3; ++i) {
    Row r = Run(2ULL << 20, depths[i]);
    if (i == 0) {
      serial_mb_s = r.repair_mb_s;
    }
    std::printf("%-18s %12.0f %12.2f %9llu ns %7llu   (%.2fx serial)\n", depth_names[i],
                r.repair_mb_s, r.repair_ms, static_cast<unsigned long long>(r.repair_p99),
                static_cast<unsigned long long>(r.failed),
                serial_mb_s > 0 ? r.repair_mb_s / serial_mb_s : 0.0);
    BenchJson& j = BenchJson::Instance();
    j.BeginRecord("ext_recovery.pipelining");
    j.Config("pipeline_depth", static_cast<uint64_t>(depths[i]));
    j.Config("repair_bytes_per_tick", static_cast<uint64_t>(2ULL << 20));
    JsonRuntimeConfig(MakeCfg(2ULL << 20, depths[i]));
    j.Metric("repair_mb_s", r.repair_mb_s);
    j.Metric("repair_ms", r.repair_ms);
    j.Metric("repair_p99_ns", r.repair_p99);
    j.Metric("pages_lost", r.failed);
    j.Metric("vs_serial", serial_mb_s > 0 ? r.repair_mb_s / serial_mb_s : 0.0);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dilos

int main(int argc, char** argv) {
  dilos::BenchParseArgs(argc, argv);
  dilos::RunAll();
  return dilos::BenchJson::Instance().Flush() ? 0 : 1;
}
