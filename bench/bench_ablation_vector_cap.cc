// Ablation (Sec. 6.3): scatter/gather vector length cap for guided paging.
// The paper found vectorized RDMA slows down sharply past three segments
// and capped the guide's vectors at three; this sweep shows the tradeoff
// between bytes saved (longer vectors skip more dead chunks) and per-op
// latency (segment processing penalty).
#include <cstdio>

#include "bench/common.h"
#include "src/guides/allocator_guide.h"
#include "src/redis/redis.h"
#include "src/redis/redis_bench.h"

namespace dilos {
namespace {

void RunOne(uint32_t cap) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 4ULL << 20;
  cfg.pm.max_vector_segs = cap;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  RedisLite redis(rt, 50'000);
  AllocatorGuide guide(redis.heap(), cap);
  rt.set_guide(&guide);
  RedisBench bench(redis);
  bench.PopulateStrings(50'000, {128});
  bench.RunDel(35'000);
  uint64_t bytes0 = rt.stats().bytes_fetched;
  uint64_t t0 = rt.clock().now();
  RedisBenchResult res = bench.RunGet(25'000);
  uint64_t fetched = rt.stats().bytes_fetched - bytes0;
  (void)t0;
  std::printf("%8u %12.0f %14.1f %12llu\n", cap, res.OpsPerSec(),
              static_cast<double>(fetched) / 1e6,
              static_cast<unsigned long long>(rt.stats().vectored_ops));
}

void Run() {
  PrintHeader("Ablation: guided-paging scatter/gather segment cap\n"
              "(paper keeps vectors <= 3 segments: longer vectors pay a WQE penalty)");
  std::printf("%8s %12s %14s %12s\n", "cap", "GET ops/s", "fetched (MB)", "vector ops");
  for (uint32_t cap : {1u, 2u, 3u, 4u, 6u, 8u}) {
    RunOne(cap);
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
