// Extension: async fault pipeline saturation (DESIGN.md §12).
//
// Three sweeps over the no-prefetch sequential-read workload — all major
// faults, so throughput is a direct read on the demand-fault path:
//
//   1. Depth sweep: blocking vs depth 1..32 on one core. Throughput should
//      climb with depth until the link, not the fault path, is the bound,
//      then flatten (the Atlas claim: overlap hides fault-path latency).
//   2. Backend sweep: blocking vs depth 8 on RDMA / NVMe / SATA. The longer
//      the fetch, the more latency there is to hide — the win grows with
//      backend latency until the backend's bandwidth becomes the ceiling.
//   3. Core scaling at depth 8: aggregate throughput as cores share the
//      link. Saturation here is the point of the whole design.
//
// Gates (exit 1): depth 8 ≥ 2× blocking per core, and depth 16 does not
// regress below depth 2 (deepening the pipeline must never hurt).
#include <cstdio>
#include <cstdlib>

#include "bench/common.h"
#include "src/apps/seqrw.h"

namespace dilos {
namespace {

uint64_t g_working_set = 64ULL << 20;

struct PipeRow {
  double gbps = 0;
  double mfaults_per_s = 0;
  uint64_t parks = 0;
  uint64_t batches = 0;
  uint64_t stalls = 0;
  uint64_t peak = 0;
};

// One populate + read sweep; depth 0 = blocking mode.
PipeRow Measure(const CostModel& cost, uint32_t depth, int cores) {
  Fabric fabric(cost);
  DilosConfig cfg;
  cfg.local_mem_bytes = g_working_set / 8;
  cfg.num_cores = cores;
  if (depth > 0) {
    cfg.fault_pipeline.enabled = true;
    cfg.fault_pipeline.depth = depth;
  }
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());

  uint64_t region = rt.AllocRegion(g_working_set);
  uint64_t per_core = g_working_set / static_cast<uint64_t>(cores);
  for (int c = 0; c < cores; ++c) {
    uint64_t base = region + static_cast<uint64_t>(c) * per_core;
    for (uint64_t off = 0; off < per_core; off += kPageSize) {
      rt.Write<uint64_t>(base + off, off, c);
    }
  }
  rt.Quiesce();
  RuntimeStats& st = rt.stats();
  uint64_t major0 = st.major_faults;
  uint64_t parks0 = st.fault_parks;
  uint64_t batches0 = st.fault_batched_installs;
  uint64_t stalls0 = st.fault_pipeline_stalls;
  uint64_t t0 = rt.MaxTimeNs();
  for (int c = 0; c < cores; ++c) {
    uint64_t base = region + static_cast<uint64_t>(c) * per_core;
    for (uint64_t off = 0; off < per_core; off += kPageSize) {
      volatile uint64_t v = rt.Read<uint64_t>(base + off, c);
      (void)v;
    }
  }
  rt.Quiesce();
  uint64_t elapsed = rt.MaxTimeNs() - t0;
  PipeRow r;
  double secs = ToSeconds(elapsed);
  r.gbps = static_cast<double>(g_working_set) / 1e9 / secs;
  r.mfaults_per_s = static_cast<double>(st.major_faults - major0) / secs / 1e6;
  r.parks = st.fault_parks - parks0;
  r.batches = st.fault_batched_installs - batches0;
  r.stalls = st.fault_pipeline_stalls - stalls0;
  r.peak = st.fault_inflight_peak;

  BenchJson& j = BenchJson::Instance();
  JsonRuntimeConfig(cfg);
  j.Metric("read_gbps", r.gbps);
  j.Metric("mfaults_per_s", r.mfaults_per_s);
  j.Metric("fault_parks", r.parks);
  j.Metric("fault_batched_installs", r.batches);
  j.Metric("fault_pipeline_stalls", r.stalls);
  j.Metric("fault_inflight_peak", r.peak);
  return r;
}

int Run(bool short_mode) {
  if (short_mode) {
    g_working_set = 16ULL << 20;
  }
  BenchJson& j = BenchJson::Instance();
  int violations = 0;

  PrintHeader(
      "Fault pipeline saturation: demand-fault overlap vs depth, backend, cores\n"
      "(no-prefetch sequential read, 12.5% local: every touch is a demand fault)");

  std::printf("-- depth sweep (1 core, RDMA) --\n");
  std::printf("%-10s %8s %10s %9s %9s %8s %6s\n", "depth", "GB/s", "Mfaults/s", "parks",
              "batches", "stalls", "peak");
  double by_depth[6] = {};
  const uint32_t depths[] = {0, 1, 2, 4, 8, 16};
  for (int i = 0; i < 6; ++i) {
    j.BeginRecord("ext_fault_pipeline.depth_sweep");
    j.Config("depth", static_cast<uint64_t>(depths[i]));
    PipeRow r = Measure(CostModel::Default(), depths[i], 1);
    by_depth[i] = r.gbps;
    char label[16];
    if (depths[i] == 0) {
      std::snprintf(label, sizeof(label), "blocking");
    } else {
      std::snprintf(label, sizeof(label), "d=%u", depths[i]);
    }
    std::printf("%-10s %8.2f %10.3f %9llu %9llu %8llu %6llu\n", label, r.gbps,
                r.mfaults_per_s, static_cast<unsigned long long>(r.parks),
                static_cast<unsigned long long>(r.batches),
                static_cast<unsigned long long>(r.stalls),
                static_cast<unsigned long long>(r.peak));
  }

  std::printf("\n-- backend sweep (1 core, blocking vs d=8) --\n");
  std::printf("%-10s %10s %10s %8s\n", "backend", "blocking", "d=8", "gain");
  struct Backend {
    const char* name;
    CostModel cost;
  } backends[] = {{"rdma", CostModel::Default()},
                  {"nvme", CostModel::Nvme()},
                  {"sata", CostModel::SataSsd()}};
  for (const Backend& b : backends) {
    j.BeginRecord("ext_fault_pipeline.backend");
    j.Config("backend", b.name);
    j.Config("depth", static_cast<uint64_t>(0));
    PipeRow base = Measure(b.cost, 0, 1);
    j.BeginRecord("ext_fault_pipeline.backend");
    j.Config("backend", b.name);
    j.Config("depth", static_cast<uint64_t>(8));
    PipeRow piped = Measure(b.cost, 8, 1);
    std::printf("%-10s %10.3f %10.3f %7.2fx\n", b.name, base.gbps, piped.gbps,
                piped.gbps / base.gbps);
  }

  std::printf("\n-- core scaling (d=8, RDMA) --\n");
  std::printf("%-10s %10s %12s\n", "cores", "agg GB/s", "per-core");
  for (int cores : {1, 2, 4}) {
    j.BeginRecord("ext_fault_pipeline.core_scaling");
    j.Config("cores", static_cast<uint64_t>(cores));
    j.Config("depth", static_cast<uint64_t>(8));
    PipeRow r = Measure(CostModel::Default(), 8, cores);
    std::printf("%-10d %10.2f %12.2f\n", cores, r.gbps, r.gbps / cores);
  }
  std::printf("\n");

  double gain = by_depth[4] / by_depth[0];
  std::printf("depth-8 gain over blocking: %.2fx\n", gain);
  if (gain < 2.0) {
    std::fprintf(stderr, "GATE FAILED: depth-8 gain %.2fx < 2x\n", gain);
    ++violations;
  }
  if (by_depth[5] < by_depth[2] * 0.98) {  // 2% tolerance for batching noise.
    std::fprintf(stderr, "GATE FAILED: depth 16 (%.2f GB/s) regresses below depth 2 (%.2f)\n",
                 by_depth[5], by_depth[2]);
    ++violations;
  }
  if (violations == 0) {
    std::printf("gates: OK (>=2x at depth 8, no regression from deepening)\n");
  }
  if (!j.Flush()) {
    ++violations;
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dilos

int main(int argc, char** argv) {
  bool short_mode = false;
  dilos::BenchParseArgs(argc, argv, &short_mode);
  return dilos::Run(short_mode);
}
