// Figure 9: GAPBS PageRank and betweenness centrality processing time vs
// local memory, 4 threads. Paper: with plentiful memory DiLOS can trail
// (OSv synchronization overhead — not modeled); under the memory-constrained
// 12.5% setting DiLOS is up to 76% faster on BC.
#include <cstdio>

#include "bench/common.h"
#include "src/apps/graph.h"

namespace dilos {
namespace {

constexpr uint64_t kVertices = 1 << 16;
constexpr uint64_t kDegree = 16;
constexpr int kThreads = 4;

void Run() {
  PrintHeader("Figure 9: GAPBS PageRank / betweenness centrality time (s), 4 threads\n"
              "(paper shape: DiLOS wins under memory pressure, esp. BC)");
  auto edges = FarGraph::Rmat(kVertices, kDegree, 4);
  // CSR + two rank arrays.
  uint64_t bytes = edges.size() * 4 + kVertices * (8 + 16);

  std::printf("%-22s", "system");
  for (double f : kLocalFractions) {
    std::printf("   %5.1f%% PR/BC ", f * 100);
  }
  std::printf("\n");

  auto in_edges = FarGraph::Transpose(edges);
  auto degrees = FarGraph::OutDegrees(kVertices, edges);
  for (int sys = 0; sys < 2; ++sys) {
    std::printf("%-22s", sys == 0 ? "Fastswap" : "DiLOS readahead");
    for (double f : kLocalFractions) {
      uint64_t local = static_cast<uint64_t>(static_cast<double>(bytes) * f);
      double pr;
      double bc;
      {
        // PageRank on the in-edge CSR, fresh runtime per measurement.
        Fabric fabric;
        std::unique_ptr<FarRuntime> rt =
            sys == 0 ? std::unique_ptr<FarRuntime>(MakeFastswap(fabric, local, kThreads))
                     : MakeDilos(fabric, local, DilosVariant::kReadahead, false, kThreads);
        FarGraph g(*rt, kVertices, in_edges);
        pr = ToSeconds(RunPageRank(g, degrees, 3).elapsed_ns);
      }
      {
        Fabric fabric;
        std::unique_ptr<FarRuntime> rt =
            sys == 0 ? std::unique_ptr<FarRuntime>(MakeFastswap(fabric, local, kThreads))
                     : MakeDilos(fabric, local, DilosVariant::kReadahead, false, kThreads);
        FarGraph g(*rt, kVertices, edges);
        bc = ToSeconds(RunBetweennessCentrality(g, 4).elapsed_ns);
      }
      std::printf("  %5.2f/%5.2f ", pr, bc);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
