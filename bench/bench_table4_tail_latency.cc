// Table 4: tail latency of GET (mixed) and LRANGE with the small (12.5%)
// local cache. Paper: DiLOS cuts Fastswap's p99 substantially; prefetchers
// cut GET tails further; only the app-aware guide improves LRANGE tails.
//
// The DiLOS rows additionally run with per-fault critical-path attribution
// on (src/telemetry/attribution.h) and print a phase waterfall next to the
// latency columns — *where* the fault nanoseconds behind each tail went
// (handler / alloc / wire / overlap / map). The attribution layer's tiling
// invariant (on-path phase sums == end-to-end latency) is CI-gated here on a
// real app workload, not just the unit-test paths.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/redis_common.h"
#include "src/telemetry/attribution.h"

namespace dilos {
namespace {

// Per-phase share of one run's attributed fault time (untenanted bucket:
// the Redis benches allocate without tenants).
struct Waterfall {
  bool valid = false;
  double share[kFaultPhaseCount] = {};
  uint64_t faults = 0;
  uint64_t violations = 0;
  uint64_t worst_ppm = 0;
  FaultPhase top = FaultPhase::kWire;
};

Waterfall CollectWaterfall(FarRuntime* rt, RedisSystem sys) {
  Waterfall w;
  if (sys == RedisSystem::kFastswap) {
    return w;  // Fastswap has no telemetry layer.
  }
  auto* drt = static_cast<DilosRuntime*>(rt);
  const FaultAttribution* attr =
      drt->telemetry() != nullptr ? drt->telemetry()->attribution() : nullptr;
  if (attr == nullptr) {
    return w;
  }
  uint64_t e2e_ns = attr->e2e(-1).sum();
  if (e2e_ns == 0) {
    return w;
  }
  for (size_t i = 0; i < kFaultPhaseCount; ++i) {
    w.share[i] = static_cast<double>(attr->phase(-1, static_cast<FaultPhase>(i)).sum()) /
                 static_cast<double>(e2e_ns);
  }
  w.faults = attr->e2e(-1).count();
  w.violations = attr->sum_violations();
  w.worst_ppm = attr->worst_residual_ppm();
  w.top = attr->TopContributor(-1);
  w.valid = true;
  return w;
}

double SharePct(const Waterfall& w, FaultPhase p) {
  return 100.0 * w.share[static_cast<size_t>(p)];
}

bool Run() {
  PrintHeader("Table 4: tail latency (us) of GET(mixed) and LRANGE, 12.5% local\n"
              "(paper, ms-scale on 20 GB: Fastswap worst; app-aware best on LRANGE)");
  std::printf("%-22s %12s %12s %12s %12s\n", "system", "GET p99", "GET p99.9", "LR p99",
              "LR p99.9");
  std::vector<Waterfall> get_wf;
  std::vector<Waterfall> lr_wf;
  for (RedisSystem sys : kAllRedisSystems) {
    // GET mixed.
    uint64_t get_p99;
    uint64_t get_p999;
    {
      const auto& sizes = PhotoMixSizes();
      uint64_t nkeys = 384;
      uint64_t value_bytes = 0;
      for (uint64_t i = 0; i < nkeys; ++i) {
        value_bytes += sizes[i % sizes.size()];
      }
      RedisEnv env(sys, (value_bytes * 115 / 100 + (2 << 20)) / 8, nkeys,
                   /*attribution=*/true);
      RedisBench bench(*env.redis);
      bench.PopulateStrings(nkeys, sizes);
      RedisBenchResult res = bench.RunGet(2048);
      get_p99 = res.latency.Percentile(99);
      get_p999 = res.latency.Percentile(99.9);
      get_wf.push_back(CollectWaterfall(env.rt.get(), sys));
    }
    // LRANGE.
    uint64_t lr_p99;
    uint64_t lr_p999;
    {
      uint64_t lists = 512;
      uint64_t elems = lists * 200;
      uint64_t data_bytes = (elems / 32) * 4096 + elems * 8;
      RedisEnv env(sys, data_bytes / 8 + (1 << 20), lists, /*attribution=*/true);
      RedisBench bench(*env.redis);
      bench.PopulateLists(lists, elems, 90);
      RedisBenchResult res = bench.RunLrange(2048);
      lr_p99 = res.latency.Percentile(99);
      lr_p999 = res.latency.Percentile(99.9);
      lr_wf.push_back(CollectWaterfall(env.rt.get(), sys));
    }
    std::printf("%-22s %12.1f %12.1f %12.1f %12.1f\n", RedisSystemName(sys),
                static_cast<double>(get_p99) / 1000.0, static_cast<double>(get_p999) / 1000.0,
                static_cast<double>(lr_p99) / 1000.0, static_cast<double>(lr_p999) / 1000.0);
    std::fflush(stdout);
    BenchJson& j = BenchJson::Instance();
    j.BeginRecord("table4.tail_latency");
    j.Config("system", RedisSystemName(sys));
    j.Config("local_fraction", 0.125);
    j.Metric("get_p99_ns", get_p99);
    j.Metric("get_p999_ns", get_p999);
    j.Metric("lrange_p99_ns", lr_p99);
    j.Metric("lrange_p999_ns", lr_p999);
    const Waterfall& gw = get_wf.back();
    if (gw.valid) {
      for (size_t i = 0; i < kFaultPhaseCount; ++i) {
        auto p = static_cast<FaultPhase>(i);
        if (FaultPhaseOnPath(p) && gw.share[i] > 0.0) {
          j.Metric(std::string("get_share_") + FaultPhaseName(p), gw.share[i]);
        }
      }
      j.Metric("get_attr_faults", gw.faults);
      j.Metric("get_attr_sum_violations", gw.violations);
    }
  }

  // Phase waterfall: where the DiLOS fault nanoseconds went per workload.
  std::printf("\nGET fault-phase waterfall (share of attributed fault time)\n");
  std::printf("%-22s %8s %8s %8s %8s %8s %8s %10s\n", "system", "handler", "alloc", "wire",
              "overlap", "map", "faults", "top-phase");
  bool ok = true;
  auto waterfall_rows = [&ok](const std::vector<Waterfall>& wfs) {
    size_t idx = 0;
    for (RedisSystem sys : kAllRedisSystems) {
      const Waterfall& w = wfs[idx++];
      if (!w.valid) {
        continue;
      }
      std::printf("%-22s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8llu %10s\n",
                  RedisSystemName(sys), SharePct(w, FaultPhase::kHandler),
                  SharePct(w, FaultPhase::kAlloc), SharePct(w, FaultPhase::kWire),
                  SharePct(w, FaultPhase::kOverlap), SharePct(w, FaultPhase::kMap),
                  static_cast<unsigned long long>(w.faults), FaultPhaseName(w.top));
      if (w.violations != 0) {
        std::printf("GATE FAILED: %s attribution sum invariant (violations=%llu worst=%llupm)\n",
                    RedisSystemName(sys), static_cast<unsigned long long>(w.violations),
                    static_cast<unsigned long long>(w.worst_ppm));
        ok = false;
      }
      if (w.faults == 0) {
        std::printf("GATE FAILED: %s attributed no faults\n", RedisSystemName(sys));
        ok = false;
      }
    }
  };
  waterfall_rows(get_wf);
  std::printf("\nLRANGE fault-phase waterfall\n");
  std::printf("%-22s %8s %8s %8s %8s %8s %8s %10s\n", "system", "handler", "alloc", "wire",
              "overlap", "map", "faults", "top-phase");
  waterfall_rows(lr_wf);
  std::printf("\n");
  return ok;
}

}  // namespace
}  // namespace dilos

int main(int argc, char** argv) {
  dilos::BenchParseArgs(argc, argv);
  bool ok = dilos::Run();
  if (!dilos::BenchJson::Instance().Flush()) {
    return 1;
  }
  return ok ? 0 : 1;
}
