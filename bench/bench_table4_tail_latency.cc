// Table 4: tail latency of GET (mixed) and LRANGE with the small (12.5%)
// local cache. Paper: DiLOS cuts Fastswap's p99 substantially; prefetchers
// cut GET tails further; only the app-aware guide improves LRANGE tails.
#include <cstdio>

#include "bench/redis_common.h"

namespace dilos {
namespace {

void Run() {
  PrintHeader("Table 4: tail latency (us) of GET(mixed) and LRANGE, 12.5% local\n"
              "(paper, ms-scale on 20 GB: Fastswap worst; app-aware best on LRANGE)");
  std::printf("%-22s %12s %12s %12s %12s\n", "system", "GET p99", "GET p99.9", "LR p99",
              "LR p99.9");
  for (RedisSystem sys : kAllRedisSystems) {
    // GET mixed.
    uint64_t get_p99;
    uint64_t get_p999;
    {
      const auto& sizes = PhotoMixSizes();
      uint64_t nkeys = 384;
      uint64_t value_bytes = 0;
      for (uint64_t i = 0; i < nkeys; ++i) {
        value_bytes += sizes[i % sizes.size()];
      }
      RedisEnv env(sys, (value_bytes * 115 / 100 + (2 << 20)) / 8, nkeys);
      RedisBench bench(*env.redis);
      bench.PopulateStrings(nkeys, sizes);
      RedisBenchResult res = bench.RunGet(2048);
      get_p99 = res.latency.Percentile(99);
      get_p999 = res.latency.Percentile(99.9);
    }
    // LRANGE.
    uint64_t lr_p99;
    uint64_t lr_p999;
    {
      uint64_t lists = 512;
      uint64_t elems = lists * 200;
      uint64_t data_bytes = (elems / 32) * 4096 + elems * 8;
      RedisEnv env(sys, data_bytes / 8 + (1 << 20), lists);
      RedisBench bench(*env.redis);
      bench.PopulateLists(lists, elems, 90);
      RedisBenchResult res = bench.RunLrange(2048);
      lr_p99 = res.latency.Percentile(99);
      lr_p999 = res.latency.Percentile(99.9);
    }
    std::printf("%-22s %12.1f %12.1f %12.1f %12.1f\n", RedisSystemName(sys),
                static_cast<double>(get_p99) / 1000.0, static_cast<double>(get_p999) / 1000.0,
                static_cast<double>(lr_p99) / 1000.0, static_cast<double>(lr_p999) / 1000.0);
    std::fflush(stdout);
    BenchJson& j = BenchJson::Instance();
    j.BeginRecord("table4.tail_latency");
    j.Config("system", RedisSystemName(sys));
    j.Config("local_fraction", 0.125);
    j.Metric("get_p99_ns", get_p99);
    j.Metric("get_p999_ns", get_p999);
    j.Metric("lrange_p99_ns", lr_p99);
    j.Metric("lrange_p999_ns", lr_p999);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dilos

int main(int argc, char** argv) {
  dilos::BenchParseArgs(argc, argv);
  dilos::Run();
  return dilos::BenchJson::Instance().Flush() ? 0 : 1;
}
