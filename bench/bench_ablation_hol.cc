// Ablation (Sec. 4.5): per-module queue pairs vs one shared queue.
// With a shared queue, demand fetches serialize behind prefetcher and
// write-back traffic in software — head-of-line blocking the communication
// module's shared-nothing design avoids.
#include <cstdio>

#include "bench/common.h"
#include "src/apps/seqrw.h"

namespace dilos {
namespace {

double RunOne(bool shared) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 8ULL << 20;
  cfg.shared_queue = shared;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  SeqWorkload wl(rt, 64ULL << 20);
  SeqResult rd = wl.Read();
  SeqResult wr = wl.Write();
  std::printf("%-22s %8.2f %8.2f\n", shared ? "shared queue" : "per-module QPs", rd.GBps(),
              wr.GBps());
  return rd.GBps();
}

void Run() {
  PrintHeader("Ablation: per-module QPs vs shared queue (seq r/w GB/s, 12.5% local)");
  std::printf("%-22s %8s %8s\n", "config", "read", "write");
  double split = RunOne(false);
  double shared = RunOne(true);
  std::printf("\nper-module QPs are %.1f%% faster on reads\n\n",
              100.0 * (split / shared - 1.0));
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
