// Ablation (Sec. 4.5): head-of-line blocking on the fabric, two ways.
//
// 1. Per-module queue pairs vs one shared queue — the paper's ablation.
//    With a shared queue, demand fetches serialize behind prefetcher and
//    write-back traffic in software; per-module QPs avoid it by design.
//
// 2. Two-tenant isolation (src/tenant extension): a victim tenant's Zipfian
//    demand faults vs an aggressor tenant's sequential scan on the same
//    fabric. With the default FIFO link the victim's p99 queues behind the
//    aggressor's whole scan burst; with the fair-share wire scheduler
//    installed the victim pays at most its weighted share of the
//    contention. The CI gate: fair-share keeps the victim's demand-fault
//    p99 within kIsolationBound of its solo baseline, and turning the
//    scheduler off must be measurably worse than leaving it on.
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "src/apps/seqrw.h"
#include "src/telemetry/attribution.h"
#include "src/telemetry/slo.h"

namespace dilos {
namespace {

// Aggressor scan pages issued per victim sample. Each burst queues this
// many demand fetches ahead of the victim's next fault, so the unscheduled
// victim tail scales with the burst length while fair-share holds it near
// the solo baseline.
constexpr int kScanBurst = 16;
// Fair-share gate: duo victim p99 must stay within this factor of solo p99.
constexpr double kIsolationBound = 4.0;

double RunOne(bool shared) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 8ULL << 20;
  cfg.shared_queue = shared;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  SeqWorkload wl(rt, 64ULL << 20);
  SeqResult rd = wl.Read();
  SeqResult wr = wl.Write();
  std::printf("%-22s %8.2f %8.2f\n", shared ? "shared queue" : "per-module QPs", rd.GBps(),
              wr.GBps());
  return rd.GBps();
}

struct IsoResult {
  uint64_t p50 = 0, p99 = 0;
  uint64_t sched_fault_ops = 0;  // Band-0 ops arbitrated (0 = scheduler off).
  // SLO-scored runs only (RunIso called with an objective): victim-side SLO
  // engine + attribution state at the end of the run.
  uint64_t slo_faults = 0, slo_bad = 0, alerts = 0;
  double budget_used = 0.0, burn_fast = 0.0;
  double lane_share = 0.0;  // Victim lane-wait ns / victim e2e fault ns.
  const char* top_phase = "-";
};

// One isolation run: victim (tenant 0) samples Zipfian reads on core 0;
// when `aggressor` is set, tenant 1 interleaves kScanBurst sequential scan
// pages on core 1 before every victim sample. When `slo` is non-null the run
// is SLO-scored: attribution + the SLO engine are enabled (small windows so
// the short bench can rotate them) and the objective is installed on the
// victim via TenantSpec::slo.
IsoResult RunIso(bool aggressor, bool fair_share, uint64_t pages, int samples,
                 const SloObjective* slo = nullptr) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 2ULL << 20;
  cfg.num_cores = 2;
  cfg.tenants.enabled = true;
  cfg.tenants.fair_share = fair_share;
  if (slo != nullptr) {
    cfg.telemetry.attribution = true;
    cfg.telemetry.slo.enabled = true;
    cfg.telemetry.slo.fast_window_faults = 256;
    cfg.telemetry.slo.slow_window_faults = 1024;
  }
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  TenantSpec victim_spec{"victim", 1, 0, QuotaPolicy::kHardReject};
  if (slo != nullptr) {
    victim_spec.slo = *slo;
  }
  int victim = rt.CreateTenant(victim_spec);
  int scanner = rt.CreateTenant(TenantSpec{"aggressor", 1, 0, QuotaPolicy::kHardReject});
  TwoTenantWorkload wl(rt, pages, victim, scanner);

  std::vector<uint64_t> lat;
  lat.reserve(static_cast<size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    if (aggressor) {
      for (int k = 0; k < kScanBurst; ++k) {
        wl.ScanStep(1, /*core=*/1);
      }
    }
    wl.SampleRead(0, &lat, /*core=*/0);
  }

  IsoResult r;
  r.p50 = BenchPct(lat, 0.50);
  r.p99 = BenchPct(lat, 0.99);
  if (rt.wire_scheduler() != nullptr) {
    r.sched_fault_ops = rt.wire_scheduler()->ops(0);
  }
  if (slo != nullptr) {
    const SloEngine* eng = rt.telemetry()->slo();
    r.slo_faults = eng->faults(victim);
    r.slo_bad = eng->bad_faults(victim);
    r.alerts = eng->alerts_fired(victim);
    r.budget_used = eng->budget_used(victim);
    r.burn_fast = eng->burn_rate(victim, /*fast=*/true);
    const FaultAttribution* attr = rt.telemetry()->attribution();
    uint64_t e2e_ns = attr->e2e(victim).sum();
    if (e2e_ns > 0) {
      r.lane_share = static_cast<double>(attr->phase(victim, FaultPhase::kLaneWait).sum()) /
                     static_cast<double>(e2e_ns);
    }
    r.top_phase = FaultPhaseName(attr->TopContributor(victim));
  }
  return r;
}

bool RunIsolation(bool short_run) {
  const uint64_t pages = short_run ? 512 : 2048;
  const int samples = short_run ? 1500 : 6000;

  PrintHeader("Extension: two-tenant isolation — victim Zipfian p99 vs aggressor scan\n"
              "victim on core 0, aggressor scans 16 pages/sample on core 1");
  IsoResult solo = RunIso(/*aggressor=*/false, /*fair_share=*/false, pages, samples);
  IsoResult off = RunIso(/*aggressor=*/true, /*fair_share=*/false, pages, samples);
  IsoResult on = RunIso(/*aggressor=*/true, /*fair_share=*/true, pages, samples);

  auto ratio = [&](const IsoResult& r) {
    return static_cast<double>(r.p99) / static_cast<double>(std::max<uint64_t>(solo.p99, 1));
  };
  std::printf("%-24s %12s %12s %9s\n", "config", "victim p50", "victim p99", "vs solo");
  std::printf("%-24s %9llu ns %9llu ns %8.2fx\n", "solo (no aggressor)",
              static_cast<unsigned long long>(solo.p50),
              static_cast<unsigned long long>(solo.p99), 1.0);
  std::printf("%-24s %9llu ns %9llu ns %8.2fx\n", "duo, fair-share off",
              static_cast<unsigned long long>(off.p50),
              static_cast<unsigned long long>(off.p99), ratio(off));
  std::printf("%-24s %9llu ns %9llu ns %8.2fx\n", "duo, fair-share on",
              static_cast<unsigned long long>(on.p50),
              static_cast<unsigned long long>(on.p99), ratio(on));
  std::printf("\n");

  bool ok = true;
  auto gate = [&ok](bool pass, const char* what) {
    if (!pass) {
      std::printf("GATE FAILED: %s\n", what);
      ok = false;
    }
  };
  gate(on.sched_fault_ops > 0, "fair-share scheduler arbitrated demand faults");
  gate(ratio(on) <= kIsolationBound,
       "fair-share keeps victim p99 within bound of solo baseline");
  gate(off.p99 > on.p99, "disabling fair-share is worse than enabling it");

  // SLO-scored reruns (src/telemetry extension): the victim's objective
  // *encodes the isolation bound* — "p95 of demand faults stays under
  // kIsolationBound x the solo p99". With fair-share off nearly every victim
  // fault queues behind a full scan burst, the burn rate blows through both
  // windows, and the engine pages; with fair-share on the victim stays under
  // its weighted share and the error budget survives the run.
  SloObjective obj;
  obj.percentile = 95.0;
  obj.threshold_ns = solo.p99 * static_cast<uint64_t>(kIsolationBound);
  IsoResult slo_off = RunIso(/*aggressor=*/true, /*fair_share=*/false, pages, samples, &obj);
  IsoResult slo_on = RunIso(/*aggressor=*/true, /*fair_share=*/true, pages, samples, &obj);

  std::printf("SLO: victim objective p%.0f < %llu ns (%gx solo p99), windows 256/1024\n",
              obj.percentile, static_cast<unsigned long long>(obj.threshold_ns),
              kIsolationBound);
  std::printf("%-24s %7s %10s %10s %10s %8s %12s\n", "config", "alerts", "bad/faults",
              "budget", "burn-fast", "lane%", "top-phase");
  auto slo_row = [](const char* name, const IsoResult& r) {
    std::printf("%-24s %7llu %4llu/%-5llu %9.2fx %9.2fx %7.1f%% %12s\n", name,
                static_cast<unsigned long long>(r.alerts),
                static_cast<unsigned long long>(r.slo_bad),
                static_cast<unsigned long long>(r.slo_faults), r.budget_used, r.burn_fast,
                100.0 * r.lane_share, r.top_phase);
  };
  slo_row("duo, fair-share off", slo_off);
  slo_row("duo, fair-share on", slo_on);
  std::printf("\n");

  gate(slo_off.alerts >= 1, "fair-share off burns the victim SLO and fires an alert");
  gate(slo_on.alerts == 0, "fair-share on never crosses the burn-rate alert");
  gate(slo_on.budget_used < 1.0, "fair-share on keeps the victim error budget intact");
  gate(slo_off.budget_used > slo_on.budget_used,
       "fair-share off consumes more error budget than on");

  BenchJson& j = BenchJson::Instance();
  j.BeginRecord("ablation_hol.isolation");
  j.Config("pages_per_tenant", pages);
  j.Config("samples", static_cast<uint64_t>(samples));
  j.Config("scan_burst", static_cast<uint64_t>(kScanBurst));
  j.Config("isolation_bound", kIsolationBound);
  j.Metric("solo_p99_ns", solo.p99);
  j.Metric("fair_off_p99_ns", off.p99);
  j.Metric("fair_on_p99_ns", on.p99);
  j.Metric("fair_off_vs_solo", ratio(off));
  j.Metric("fair_on_vs_solo", ratio(on));
  j.Metric("sched_fault_ops", on.sched_fault_ops);
  j.Metric("gates_passed", static_cast<uint64_t>(ok ? 1 : 0));

  j.BeginRecord("ablation_hol.slo");
  j.Config("slo_percentile", obj.percentile);
  j.Config("slo_threshold_ns", obj.threshold_ns);
  j.Config("fast_window_faults", static_cast<uint64_t>(256));
  j.Config("slow_window_faults", static_cast<uint64_t>(1024));
  j.Metric("fair_off_alerts", slo_off.alerts);
  j.Metric("fair_on_alerts", slo_on.alerts);
  j.Metric("fair_off_budget_used", slo_off.budget_used);
  j.Metric("fair_on_budget_used", slo_on.budget_used);
  j.Metric("fair_off_burn_fast", slo_off.burn_fast);
  j.Metric("fair_on_burn_fast", slo_on.burn_fast);
  j.Metric("fair_off_bad_faults", slo_off.slo_bad);
  j.Metric("fair_on_bad_faults", slo_on.slo_bad);
  j.Metric("fair_off_lane_share", slo_off.lane_share);
  j.Metric("fair_on_lane_share", slo_on.lane_share);
  j.Config("fair_off_top_phase", std::string(slo_off.top_phase));
  j.Config("fair_on_top_phase", std::string(slo_on.top_phase));
  return ok;
}

void RunSharedQueue() {
  PrintHeader("Ablation: per-module QPs vs shared queue (seq r/w GB/s, 12.5% local)");
  std::printf("%-22s %8s %8s\n", "config", "read", "write");
  double split = RunOne(false);
  double shared = RunOne(true);
  std::printf("\nper-module QPs are %.1f%% faster on reads\n\n",
              100.0 * (split / shared - 1.0));

  BenchJson& j = BenchJson::Instance();
  j.BeginRecord("ablation_hol.shared_queue");
  j.Metric("split_read_gbps", split);
  j.Metric("shared_read_gbps", shared);
}

}  // namespace
}  // namespace dilos

int main(int argc, char** argv) {
  bool short_run = false;
  dilos::BenchParseArgs(argc, argv, &short_run);
  dilos::RunSharedQueue();
  bool ok = dilos::RunIsolation(short_run);
  if (!dilos::BenchJson::Instance().Flush()) {
    return 1;
  }
  return ok ? 0 : 1;
}
