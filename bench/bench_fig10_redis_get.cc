// Figure 10(a-c): Redis GET throughput for 4 KB, 64 KB, and mixed
// (Facebook-photo) value sizes vs local memory. Paper shape: DiLOS beats
// Fastswap everywhere (1.37-1.52x even without prefetching at 12.5%);
// prefetchers help as values grow (up to +63% on 64 KB); on 4 KB values a
// single page per object leaves prefetchers little to do; the app-aware
// prefetcher performs on par with the general-purpose ones for GET.
#include <cstdio>
#include <vector>

#include "bench/redis_common.h"

namespace dilos {
namespace {

struct Workload {
  const char* name;
  std::vector<uint32_t> sizes;
  uint64_t nkeys;
  uint64_t queries;
};

void Run() {
  PrintHeader("Figure 10(a-c): Redis GET throughput (ops/s) vs local memory");
  const Workload workloads[] = {
      {"GET 4KB", {4096}, 4096, 4096},
      {"GET 64KB", {65536}, 256, 1024},
      {"GET mixed", PhotoMixSizes(), 384, 1024},
  };
  const double fractions[] = {0.125, 0.25, 0.5, 1.0};

  for (const Workload& w : workloads) {
    uint64_t value_bytes = 0;
    for (uint64_t i = 0; i < w.nkeys; ++i) {
      value_bytes += w.sizes[i % w.sizes.size()];
    }
    std::printf("--- %s (%llu keys, %.0f MB of values) ---\n", w.name,
                static_cast<unsigned long long>(w.nkeys),
                static_cast<double>(value_bytes) / 1e6);
    std::printf("%-22s", "system");
    for (double f : fractions) {
      std::printf(" %9.1f%%", f * 100);
    }
    std::printf("\n");
    for (RedisSystem sys : kAllRedisSystems) {
      std::printf("%-22s", RedisSystemName(sys));
      for (double f : fractions) {
        // Footprint: values (rounded up to whole pages per large alloc)
        // plus keyspace metadata.
        uint64_t footprint = value_bytes * 115 / 100 + (2 << 20);
        uint64_t local = static_cast<uint64_t>(static_cast<double>(footprint) * f);
        RedisEnv env(sys, local, w.nkeys);
        RedisBench bench(*env.redis);
        bench.PopulateStrings(w.nkeys, w.sizes);
        RedisBenchResult res = bench.RunGet(w.queries);
        std::printf(" %10.0f", res.OpsPerSec());
        std::fflush(stdout);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
