// Figure 7(b): k-means clustering completion time vs local memory.
// Paper: irregular sweeps stress reclamation; at 12.5% DiLOS is up to 2.71x
// faster than Fastswap.
#include <cstdio>

#include "bench/common.h"
#include "src/apps/kmeans.h"

namespace dilos {
namespace {

constexpr uint64_t kPoints = 400'000;
constexpr uint32_t kDims = 4;
constexpr uint32_t kClusters = 10;
// Full working set: the point matrix plus the label vector (plus slack for
// metadata), so "100%" really means everything fits.
constexpr uint64_t kBytes =
    (kPoints * kDims * sizeof(float) + kPoints * sizeof(int32_t)) * 110 / 100;

void Run() {
  PrintHeader("Figure 7(b): k-means completion time (s) vs local memory\n"
              "(paper shape: DiLOS up to 2.71x faster than Fastswap at 12.5%)");
  std::printf("%-22s", "system");
  for (double f : kLocalFractions) {
    std::printf(" %7.1f%%", f * 100);
  }
  std::printf("\n");

  for (int sys = 0; sys < 2; ++sys) {
    std::printf("%-22s", sys == 0 ? "Fastswap" : "DiLOS readahead");
    for (double f : kLocalFractions) {
      Fabric fabric;
      uint64_t local = static_cast<uint64_t>(static_cast<double>(kBytes) * f);
      std::unique_ptr<FarRuntime> rt;
      if (sys == 0) {
        rt = MakeFastswap(fabric, local);
      } else {
        rt = MakeDilos(fabric, local, DilosVariant::kReadahead);
      }
      KmeansWorkload wl(*rt, kPoints, kDims, kClusters);
      KmeansResult res = wl.Run(8);
      std::printf(" %8.3f", ToSeconds(res.elapsed_ns));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
