// Table 1: number of major/minor page faults during a sequential read on
// Fastswap with 12.5% local cache. Paper: 12.5% major / 87.5% minor — one
// major per 8-page readahead cluster, every prefetched page minor-faulting
// out of the swap cache.
#include <cstdio>

#include "bench/common.h"
#include "src/apps/seqrw.h"

namespace dilos {
namespace {

void Run() {
  PrintHeader("Table 1: Fastswap fault mix, sequential read, 12.5% local\n"
              "(paper: major 12.5%, minor 87.5%)");
  Fabric fabric;
  const uint64_t ws = 64ULL << 20;
  auto rt = MakeFastswap(fabric, ws / 8);
  SeqWorkload wl(*rt, ws);
  SeqResult r = wl.Read();
  uint64_t total = r.major_faults + r.minor_faults;
  std::printf("%-18s %12s %8s\n", "", "count", "%");
  std::printf("%-18s %12llu %7.1f%%\n", "Major page fault",
              static_cast<unsigned long long>(r.major_faults),
              100.0 * static_cast<double>(r.major_faults) / static_cast<double>(total));
  std::printf("%-18s %12llu %7.1f%%\n", "Minor page fault",
              static_cast<unsigned long long>(r.minor_faults),
              100.0 * static_cast<double>(r.minor_faults) / static_cast<double>(total));
  std::printf("%-18s %12llu %7.1f%%\n\n", "Total", static_cast<unsigned long long>(total),
              100.0);
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
