// Table 2: throughput of sequential read and write (GB/s) with 12.5% local
// memory. Paper: Fastswap 0.98/0.49; DiLOS no-prefetch 1.24/1.14;
// readahead 3.74/3.49; trend-based 3.73/3.49.
//
// Extended with the async fault pipeline (DESIGN.md §12): the no-prefetch
// rows rerun with fault_pipeline.depth ∈ {1, 8}. This binary doubles as the
// pipeline's CI gate (exit 1 on violation):
//   1. depth 8 improves per-core demand-fault throughput ≥ 2× over blocking
//      on the pure-fault row (no-prefetch sequential read);
//   2. depth 1 reproduces blocking-mode major/minor fault counts exactly,
//      for every prefetcher variant.
#include <cstdio>
#include <cstdlib>

#include "bench/common.h"
#include "src/apps/seqrw.h"

namespace dilos {
namespace {

constexpr uint64_t kWorkingSet = 64ULL << 20;
constexpr uint64_t kLocal = kWorkingSet / 8;

struct RowResult {
  SeqResult rd;
  SeqResult wr;
};

RowResult Row(const char* name, FarRuntime& rt, const DilosConfig* cfg = nullptr) {
  SeqWorkload wl(rt, kWorkingSet);
  RowResult r{wl.Read(), wl.Write()};
  std::printf("%-26s %8.2f %8.2f   %7llu %7llu\n", name, r.rd.GBps(), r.wr.GBps(),
              static_cast<unsigned long long>(r.rd.major_faults),
              static_cast<unsigned long long>(r.rd.minor_faults));
  BenchJson& j = BenchJson::Instance();
  j.BeginRecord("table2.seq_throughput");
  j.Config("system", name);
  if (cfg != nullptr) {
    JsonRuntimeConfig(*cfg);
  }
  j.Metric("read_gbps", r.rd.GBps());
  j.Metric("write_gbps", r.wr.GBps());
  j.Metric("read_major_faults", r.rd.major_faults);
  j.Metric("read_minor_faults", r.rd.minor_faults);
  return r;
}

DilosConfig ConfigFor(uint32_t pipeline_depth) {
  DilosConfig cfg;
  cfg.local_mem_bytes = kLocal;
  if (pipeline_depth > 0) {
    cfg.fault_pipeline.enabled = true;
    cfg.fault_pipeline.depth = pipeline_depth;
  }
  return cfg;
}

int Run() {
  PrintHeader(
      "Table 2: sequential read/write throughput (GB/s), 12.5% local\n"
      "(paper: Fastswap 0.98/0.49 | DiLOS 1.24/1.14 | +readahead 3.74/3.49 "
      "| +trend 3.73/3.49)");
  std::printf("%-26s %8s %8s   %7s %7s\n", "system", "read", "write", "major", "minor");
  {
    Fabric fabric;
    auto rt = MakeFastswap(fabric, kLocal);
    Row("Fastswap", *rt);
  }

  RowResult blocking[3];
  RowResult depth1[3];
  int i = 0;
  for (DilosVariant v :
       {DilosVariant::kNoPrefetch, DilosVariant::kReadahead, DilosVariant::kTrend}) {
    Fabric fabric;
    DilosConfig cfg = ConfigFor(0);
    auto rt = std::make_unique<DilosRuntime>(fabric, cfg, MakePrefetcher(v));
    blocking[i++] = Row(VariantName(v), *rt, &cfg);
  }
  i = 0;
  for (DilosVariant v :
       {DilosVariant::kNoPrefetch, DilosVariant::kReadahead, DilosVariant::kTrend}) {
    Fabric fabric;
    DilosConfig cfg = ConfigFor(1);
    auto rt = std::make_unique<DilosRuntime>(fabric, cfg, MakePrefetcher(v));
    char name[64];
    std::snprintf(name, sizeof(name), "%s [pipe d=1]", VariantName(v));
    depth1[i++] = Row(name, *rt, &cfg);
  }
  RowResult piped;
  {
    Fabric fabric;
    DilosConfig cfg = ConfigFor(8);
    auto rt = std::make_unique<DilosRuntime>(fabric, cfg,
                                             MakePrefetcher(DilosVariant::kNoPrefetch));
    piped = Row("DiLOS no-prefetch [d=8]", *rt, &cfg);
  }
  std::printf("\n");

  // Gate 1: pipelining must beat blocking ≥ 2× on the demand-fault-bound
  // row. No-prefetch sequential read is all major faults, so read GB/s is a
  // direct proxy for per-core demand-fault throughput (faults/s × 4 KB).
  double gain = piped.rd.GBps() / blocking[0].rd.GBps();
  std::printf("pipeline gain (no-prefetch read, d=8 vs blocking): %.2fx\n", gain);
  int violations = 0;
  if (gain < 2.0) {
    std::fprintf(stderr, "GATE FAILED: pipeline d=8 gain %.2fx < 2x over blocking\n", gain);
    ++violations;
  }
  // Gate 2: depth 1 is the blocking path expressed through the pipeline
  // machinery — its fault counts must match blocking exactly, per variant.
  const char* names[] = {"no-prefetch", "readahead", "trend"};
  for (int v = 0; v < 3; ++v) {
    if (depth1[v].rd.major_faults != blocking[v].rd.major_faults ||
        depth1[v].rd.minor_faults != blocking[v].rd.minor_faults ||
        depth1[v].wr.major_faults != blocking[v].wr.major_faults ||
        depth1[v].wr.minor_faults != blocking[v].wr.minor_faults) {
      std::fprintf(stderr,
                   "GATE FAILED: depth-1 fault counts diverge from blocking (%s): "
                   "rd %llu/%llu vs %llu/%llu, wr %llu/%llu vs %llu/%llu\n",
                   names[v],
                   static_cast<unsigned long long>(depth1[v].rd.major_faults),
                   static_cast<unsigned long long>(depth1[v].rd.minor_faults),
                   static_cast<unsigned long long>(blocking[v].rd.major_faults),
                   static_cast<unsigned long long>(blocking[v].rd.minor_faults),
                   static_cast<unsigned long long>(depth1[v].wr.major_faults),
                   static_cast<unsigned long long>(depth1[v].wr.minor_faults),
                   static_cast<unsigned long long>(blocking[v].wr.major_faults),
                   static_cast<unsigned long long>(blocking[v].wr.minor_faults));
      ++violations;
    }
  }
  if (violations == 0) {
    std::printf("gates: OK (>=2x pipelined, depth-1 == blocking fault counts)\n");
  }
  if (!BenchJson::Instance().Flush()) {
    ++violations;
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dilos

int main(int argc, char** argv) {
  dilos::BenchParseArgs(argc, argv);
  return dilos::Run();
}
