// Table 2: throughput of sequential read and write (GB/s) with 12.5% local
// memory. Paper: Fastswap 0.98/0.49; DiLOS no-prefetch 1.24/1.14;
// readahead 3.74/3.49; trend-based 3.73/3.49.
#include <cstdio>

#include "bench/common.h"
#include "src/apps/seqrw.h"

namespace dilos {
namespace {

constexpr uint64_t kWorkingSet = 64ULL << 20;
constexpr uint64_t kLocal = kWorkingSet / 8;

void Row(const char* name, FarRuntime& rt) {
  SeqWorkload wl(rt, kWorkingSet);
  SeqResult rd = wl.Read();
  SeqResult wr = wl.Write();
  std::printf("%-22s %8.2f %8.2f\n", name, rd.GBps(), wr.GBps());
}

void Run() {
  PrintHeader(
      "Table 2: sequential read/write throughput (GB/s), 12.5% local\n"
      "(paper: Fastswap 0.98/0.49 | DiLOS 1.24/1.14 | +readahead 3.74/3.49 "
      "| +trend 3.73/3.49)");
  std::printf("%-22s %8s %8s\n", "system", "read", "write");
  {
    Fabric fabric;
    auto rt = MakeFastswap(fabric, kLocal);
    Row("Fastswap", *rt);
  }
  for (DilosVariant v :
       {DilosVariant::kNoPrefetch, DilosVariant::kReadahead, DilosVariant::kTrend}) {
    Fabric fabric;
    auto rt = MakeDilos(fabric, kLocal, v);
    Row(VariantName(v), *rt);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
