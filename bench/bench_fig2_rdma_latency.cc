// Figure 2: RDMA latency (us) for a range of object sizes, one-sided
// operations. The paper's point: a 4 KB page costs only ~0.6 us more than a
// 128 B object, so page-granular IO is not the latency problem.
#include <array>
#include <cstdio>

#include "bench/common.h"
#include "src/memnode/fabric.h"

namespace dilos {
namespace {

void Run() {
  PrintHeader("Figure 2: RDMA latency (us) vs object size (one-sided verbs)");
  Fabric fabric;
  QueuePair* qp = fabric.CreateQp();
  std::array<uint8_t, kPageSize> buf{};

  std::printf("%-10s %12s %12s\n", "size(B)", "read(us)", "write(us)");
  uint64_t t = 0;
  uint64_t small_read = 0;
  uint64_t page_read = 0;
  for (uint32_t size : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    // Idle-link latency: post each op after the wire has drained.
    t += 1'000'000;
    Completion r = qp->PostRead(1, reinterpret_cast<uint64_t>(buf.data()), kFarBase, size, t);
    uint64_t read_ns = r.completion_time_ns - t;
    t += 1'000'000;
    Completion w = qp->PostWrite(2, reinterpret_cast<uint64_t>(buf.data()), kFarBase, size, t);
    uint64_t write_ns = w.completion_time_ns - t;
    std::printf("%-10u %12.2f %12.2f\n", size, static_cast<double>(read_ns) / 1000.0,
                static_cast<double>(write_ns) / 1000.0);
    if (size == 128) {
      small_read = read_ns;
    }
    if (size == 4096) {
      page_read = read_ns;
    }
  }
  std::printf("\n4KB read costs %.2f us more than 128B read "
              "(paper: ~0.6 us)\n\n",
              static_cast<double>(page_read - small_read) / 1000.0);
}

}  // namespace
}  // namespace dilos

int main() {
  dilos::Run();
  return 0;
}
