// Scan-path hook interface between the KV service and an app-aware guide.
//
// The service side (src/kv) may not depend on src/guides, so the contract
// lives here: before walking a range scan, KvService hands the guide the
// far addresses of the leaf pages the walk will touch (known in advance
// because the B+-tree's search layer is local DRAM — see
// FarBTree::CollectLeaves). The guide implementation
// (src/guides/kv_guide.h) uses the plan at fault time to issue vectored
// prefetches over the upcoming leaves instead of letting the scan
// demand-fault page by page.
#ifndef DILOS_SRC_KV_HOOKS_H_
#define DILOS_SRC_KV_HOOKS_H_

#include <cstdint>
#include <vector>

namespace dilos {

class KvScanHooks {
 public:
  virtual ~KvScanHooks() = default;

  // A scan is starting; `leaf_addrs` are the far addresses of the leaf
  // pages it will walk, in walk order.
  virtual void OnScanBegin(const std::vector<uint64_t>& leaf_addrs) = 0;

  virtual void OnScanEnd() = 0;

  // Pages the guide prefetched on behalf of the scan since the last call;
  // drained by KvService into RuntimeStats::kv_scan_prefetch_pages.
  virtual uint64_t TakePrefetchedPages() { return 0; }
};

}  // namespace dilos

#endif  // DILOS_SRC_KV_HOOKS_H_
