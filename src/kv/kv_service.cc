#include "src/kv/kv_service.h"

#include <algorithm>
#include <cstdio>

namespace dilos {

namespace {

// splitmix64 finalizer — the same family the shard router uses for granule
// placement; keys that are sequential integers still spread evenly.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

void KvShardStats::Merge(const KvShardStats& o) {
  gets += o.gets;
  hits += o.hits;
  puts += o.puts;
  inserts += o.inserts;
  deletes += o.deletes;
  removed += o.removed;
  scans += o.scans;
  scan_items += o.scan_items;
  get_ns.Merge(o.get_ns);
  put_ns.Merge(o.put_ns);
  delete_ns.Merge(o.delete_ns);
  scan_ns.Merge(o.scan_ns);
}

KvService::KvService(FarRuntime& rt, KvConfig cfg, Tracer* tracer)
    : rt_(rt), cfg_(cfg), tracer_(tracer) {
  if (cfg_.shards < 1) {
    cfg_.shards = 1;
  }
  trees_.reserve(static_cast<size_t>(cfg_.shards));
  for (int s = 0; s < cfg_.shards; ++s) {
    trees_.push_back(std::make_unique<FarBTree>(rt_, cfg_.tree));
  }
  stats_.resize(static_cast<size_t>(cfg_.shards));
}

int KvService::ShardOf(uint64_t key) const {
  return static_cast<int>(Mix(key) % trees_.size());
}

bool KvService::Put(uint64_t key, std::string_view value, int core) {
  size_t s = static_cast<size_t>(ShardOf(key));
  uint64_t t0 = rt_.clock(core).now();
  bool inserted = trees_[s]->Put(key, value, core);
  KvShardStats& st = stats_[s];
  ++st.puts;
  if (inserted) {
    ++st.inserts;
  }
  st.put_ns.Record(rt_.clock(core).now() - t0);
  return inserted;
}

bool KvService::Get(uint64_t key, std::string* out, int core) {
  size_t s = static_cast<size_t>(ShardOf(key));
  uint64_t t0 = rt_.clock(core).now();
  bool found = trees_[s]->Get(key, out, core);
  KvShardStats& st = stats_[s];
  ++st.gets;
  if (found) {
    ++st.hits;
  }
  st.get_ns.Record(rt_.clock(core).now() - t0);
  return found;
}

bool KvService::Delete(uint64_t key, int core) {
  size_t s = static_cast<size_t>(ShardOf(key));
  uint64_t t0 = rt_.clock(core).now();
  bool found = trees_[s]->Delete(key, core);
  KvShardStats& st = stats_[s];
  ++st.deletes;
  if (found) {
    ++st.removed;
  }
  st.delete_ns.Record(rt_.clock(core).now() - t0);
  return found;
}

uint32_t KvService::Scan(uint64_t start, uint32_t count,
                         std::vector<std::pair<uint64_t, std::string>>* out, int core) {
  size_t s = static_cast<size_t>(ShardOf(start));
  FarBTree& tree = *trees_[s];
  uint64_t t0 = rt_.clock(core).now();
  if (hooks_ != nullptr) {
    // Plan the walk from the local search layer: enough leaves to cover
    // `count` records even at half-full fill, capped by config.
    uint32_t need = count / std::max(1u, tree.leaf_capacity() / 2) + 2;
    tree.CollectLeaves(start, std::min(need, cfg_.scan_plan_max_leaves), &leaf_plan_);
    hooks_->OnScanBegin(leaf_plan_);
    ++rt_.stats().kv_guided_scans;
    if (tracer_ != nullptr) {
      tracer_->Record(t0, TraceEvent::kKvScan, leaf_plan_.empty() ? 0 : leaf_plan_[0],
                      static_cast<uint32_t>(leaf_plan_.size()));
    }
  }
  uint32_t got = tree.Scan(start, count, out, core);
  if (hooks_ != nullptr) {
    hooks_->OnScanEnd();
    uint64_t prefetched = hooks_->TakePrefetchedPages();
    if (prefetched != 0) {
      rt_.stats().kv_scan_prefetch_pages += prefetched;
      if (tracer_ != nullptr) {
        tracer_->Record(rt_.clock(core).now(), TraceEvent::kKvScanPrefetch,
                        leaf_plan_.empty() ? 0 : leaf_plan_[0],
                        static_cast<uint32_t>(prefetched));
      }
    }
  }
  KvShardStats& st = stats_[s];
  ++st.scans;
  st.scan_items += got;
  st.scan_ns.Record(rt_.clock(core).now() - t0);
  return got;
}

KvShardStats KvService::TotalStats() const {
  KvShardStats total;
  for (const KvShardStats& st : stats_) {
    total.Merge(st);
  }
  return total;
}

uint64_t KvService::total_keys() const {
  uint64_t n = 0;
  for (const auto& t : trees_) {
    n += t->size();
  }
  return n;
}

std::string KvService::StatsToProm() const {
  std::string out;
  char line[160];
  auto append = [&](const char* name, int shard, const char* extra, uint64_t v) {
    std::snprintf(line, sizeof(line), "%s{shard=\"%d\"%s%s} %llu\n", name, shard,
                  extra != nullptr ? "," : "", extra != nullptr ? extra : "",
                  static_cast<unsigned long long>(v));
    out += line;
  };
  out += "# HELP dilos_kv_ops_total KV ops per shard and opcode.\n";
  out += "# TYPE dilos_kv_ops_total counter\n";
  for (int s = 0; s < shards(); ++s) {
    const KvShardStats& st = stats_[static_cast<size_t>(s)];
    if (st.gets != 0) {
      append("dilos_kv_ops_total", s, "op=\"get\"", st.gets);
    }
    if (st.puts != 0) {
      append("dilos_kv_ops_total", s, "op=\"put\"", st.puts);
    }
    if (st.deletes != 0) {
      append("dilos_kv_ops_total", s, "op=\"delete\"", st.deletes);
    }
    if (st.scans != 0) {
      append("dilos_kv_ops_total", s, "op=\"scan\"", st.scans);
    }
  }
  out += "# HELP dilos_kv_keys Keys currently stored per shard.\n";
  out += "# TYPE dilos_kv_keys gauge\n";
  for (int s = 0; s < shards(); ++s) {
    append("dilos_kv_keys", s, nullptr, trees_[static_cast<size_t>(s)]->size());
  }
  out += "# HELP dilos_kv_latency_ns Per-shard op latency quantiles.\n";
  out += "# TYPE dilos_kv_latency_ns summary\n";
  static constexpr double kQs[] = {0.5, 0.99, 0.999};
  for (int s = 0; s < shards(); ++s) {
    const KvShardStats& st = stats_[static_cast<size_t>(s)];
    struct Row {
      const char* op;
      const LogHistogram* h;
    } rows[] = {{"get", &st.get_ns}, {"put", &st.put_ns},
                {"delete", &st.delete_ns}, {"scan", &st.scan_ns}};
    for (const Row& r : rows) {
      if (r.h->empty()) {
        continue;
      }
      for (double q : kQs) {
        char extra[48];
        std::snprintf(extra, sizeof(extra), "op=\"%s\",quantile=\"%g\"", r.op, q);
        append("dilos_kv_latency_ns", s, extra, r.h->Percentile(q * 100.0));
      }
    }
  }
  return out;
}

}  // namespace dilos
