// Far-memory-aware B+-tree (DiStore-style two-layer design).
//
// The interior of the tree — the "search layer" — lives entirely in
// compute-node DRAM as plain heap objects: it is small (one fence key +
// 8-byte handle per leaf) and hot, so it never pages. Only the leaves — the
// "data layer" — live in far memory, one 4 KB page per leaf, carved from a
// granule-aligned arena so that consecutively allocated leaves are
// address-consecutive inside a 256 KB shard granule (kShardGranuleBytes).
// The payoff is the paper's service-shaped access pattern:
//
//  - a point lookup descends the local index for free and touches exactly
//    one far page (≤ 1 cold granule);
//  - a range scan walks address-sequential leaves, and because the index is
//    local the full list of upcoming leaf pages is known *before* the walk
//    starts — which is what lets the scan guide (src/guides/kv_guide.h)
//    issue vectored prefetches over them instead of demand-faulting page by
//    page (CollectLeaves below).
//
// The tree is keyed by uint64 with fixed-size values (BTreeConfig::
// value_size); leaves are kept sorted, linked by a far `next` pointer, and
// rebalanced on underflow (borrow from a sibling, else merge), so delete-
// heavy workloads do not leak far memory. Routing uses lower-bound fence
// keys: every interior slot stores a key ≤ the minimum of its subtree and
// > the maximum of its left neighbor, which stays valid when a subtree's
// true minimum is deleted.
#ifndef DILOS_SRC_KV_BTREE_H_
#define DILOS_SRC_KV_BTREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/far_runtime.h"

namespace dilos {

struct BTreeConfig {
  // Fixed record payload size. Leaf fanout is derived from it:
  // (4096 - header) / (8 + value_size) records per leaf page.
  uint32_t value_size = 100;
  // Max children per interior node (local DRAM, so fanout is a CPU/locality
  // knob, not a paging one). Underflow threshold is order/4.
  uint32_t inner_order = 64;
  // Far-arena growth unit, in 256 KB granules. Each chunk is one contiguous
  // granule-aligned region; leaves allocated within a chunk are
  // address-sequential, so a freshly loaded key range scans sequentially.
  uint32_t granules_per_chunk = 64;
};

class FarBTree {
 public:
  FarBTree(FarRuntime& rt, BTreeConfig cfg = {});
  ~FarBTree();

  FarBTree(const FarBTree&) = delete;
  FarBTree& operator=(const FarBTree&) = delete;

  // Inserts or overwrites; returns true when `key` was new. `value` is
  // truncated / zero-padded to value_size.
  bool Put(uint64_t key, std::string_view value, int core = 0);

  // Point lookup: one local index descent + one far leaf page.
  bool Get(uint64_t key, std::string* out, int core = 0);

  bool Delete(uint64_t key, int core = 0);

  // Collects up to `count` records with key >= start in key order by
  // walking the leaf chain. Returns the number appended to `out`.
  uint32_t Scan(uint64_t start, uint32_t count,
                std::vector<std::pair<uint64_t, std::string>>* out, int core = 0);

  // The scan-guide hook: the far addresses of the first `max_leaves` leaf
  // pages a Scan(start, ...) would walk, computed from the local search
  // layer alone (no far-memory touch).
  void CollectLeaves(uint64_t start, uint32_t max_leaves,
                     std::vector<uint64_t>* out) const;

  // Structural invariant check for tests; returns false and fills `err`
  // on the first violation found.
  bool Validate(std::string* err, int core = 0);

  uint64_t size() const { return size_; }
  uint32_t height() const { return height_; }
  uint64_t num_leaves() const { return num_leaves_; }
  uint32_t leaf_capacity() const { return leaf_cap_; }
  uint64_t leaf_splits() const { return leaf_splits_; }
  uint64_t leaf_merges() const { return leaf_merges_; }
  uint64_t leaf_borrows() const { return leaf_borrows_; }
  uint64_t arena_bytes() const;

 private:
  // Interior node, local DRAM. keys[i] is the lower-bound fence of child i;
  // children are either sub-interior nodes or far leaf addresses.
  struct Inner {
    bool leaf_level = false;
    std::vector<uint64_t> keys;
    std::vector<Inner*> kids;     // When !leaf_level.
    std::vector<uint64_t> leaves; // When leaf_level.
    size_t n() const { return keys.size(); }
  };

  // One leaf page materialized in host memory for mutation.
  struct LeafBlock {
    uint32_t count = 0;
    uint64_t next = 0;
    std::vector<uint64_t> keys;
    std::vector<uint8_t> values;  // count * value_size bytes.
  };

  // Child-split result propagated up the insert recursion.
  struct Split {
    bool happened = false;
    uint64_t fence = 0;   // Lower-bound fence of the new right sibling.
    Inner* node = nullptr;
    uint64_t leaf = 0;
  };

  static constexpr uint32_t kLeafHeaderBytes = 16;  // count(4) pad(4) next(8).

  uint64_t AllocLeaf();
  void FreeLeaf(uint64_t addr);

  uint32_t ReadLeafCount(uint64_t addr, int core);
  uint64_t ReadLeafNext(uint64_t addr, int core);
  void ReadLeafKeys(uint64_t addr, uint32_t count, std::vector<uint64_t>* keys, int core);
  void ReadLeaf(uint64_t addr, LeafBlock* blk, int core);
  void WriteLeaf(uint64_t addr, const LeafBlock& blk, int core);
  void WriteLeafValue(uint64_t addr, uint32_t idx, const uint8_t* val, int core);
  uint64_t ValueOffset(uint32_t idx) const {
    return kLeafHeaderBytes + static_cast<uint64_t>(leaf_cap_) * 8 +
           static_cast<uint64_t>(idx) * cfg_.value_size;
  }

  // Index of the child whose range covers `key`.
  static size_t ChildIndex(const Inner* n, uint64_t key);

  bool InsertRec(Inner* node, uint64_t key, const uint8_t* val, bool* inserted,
                 Split* split, int core);
  bool DeleteRec(Inner* node, uint64_t key, int core);
  void RebalanceLeaf(Inner* parent, size_t idx, int core);
  void RebalanceInner(Inner* parent, size_t idx);
  void FreeIndex(Inner* n);

  bool ValidateRec(const Inner* n, uint64_t lo, bool has_hi, uint64_t hi,
                   uint32_t depth, std::string* err, std::vector<uint64_t>* chain,
                   int core);

  FarRuntime& rt_;
  BTreeConfig cfg_;
  uint32_t leaf_cap_;
  uint32_t min_leaf_;   // Underflow threshold.
  uint32_t min_inner_;

  Inner* root_;
  uint32_t height_ = 1;  // Interior levels including the leaf-level node.
  uint64_t size_ = 0;
  uint64_t num_leaves_ = 0;
  uint64_t leaf_splits_ = 0;
  uint64_t leaf_merges_ = 0;
  uint64_t leaf_borrows_ = 0;

  // Granule-aligned leaf arena: contiguous chunks carved into 4 KB slots.
  struct Chunk {
    uint64_t raw_base = 0;   // As returned by AllocRegion (freed with this).
    uint64_t raw_bytes = 0;
    uint64_t base = 0;       // Granule-aligned carve base.
    uint64_t slots = 0;
  };
  std::vector<Chunk> chunks_;
  uint64_t next_slot_ = 0;          // Next unused slot in the last chunk.
  std::vector<uint64_t> free_leaves_;

  // Scratch blocks reused across ops to avoid per-op allocation churn.
  LeafBlock scratch_;
  LeafBlock scratch_right_;
};

}  // namespace dilos

#endif  // DILOS_SRC_KV_BTREE_H_
