#include "src/kv/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/dilos/shard.h"

namespace dilos {

namespace {

// First position in keys[0..count) with keys[pos] >= key.
uint32_t LowerBound(const std::vector<uint64_t>& keys, uint32_t count, uint64_t key) {
  uint32_t lo = 0, hi = count;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    if (keys[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

FarBTree::FarBTree(FarRuntime& rt, BTreeConfig cfg) : rt_(rt), cfg_(cfg) {
  if (cfg_.value_size == 0) {
    cfg_.value_size = 1;
  }
  leaf_cap_ = (kPageSize - kLeafHeaderBytes) / (8 + cfg_.value_size);
  assert(leaf_cap_ >= 4 && "value_size too large for a one-page leaf");
  min_leaf_ = std::max(1u, leaf_cap_ / 4);
  if (cfg_.inner_order < 8) {
    cfg_.inner_order = 8;
  }
  min_inner_ = std::max(2u, cfg_.inner_order / 4);
  root_ = new Inner;
  root_->leaf_level = true;
  root_->keys.push_back(0);
  root_->leaves.push_back(AllocLeaf());  // Zero-fill == empty leaf header.
  num_leaves_ = 1;
}

FarBTree::~FarBTree() {
  FreeIndex(root_);
  for (const Chunk& c : chunks_) {
    rt_.FreeRegion(c.raw_base, c.raw_bytes);
  }
}

void FarBTree::FreeIndex(Inner* n) {
  if (!n->leaf_level) {
    for (Inner* k : n->kids) {
      FreeIndex(k);
    }
  }
  delete n;
}

uint64_t FarBTree::arena_bytes() const {
  uint64_t b = 0;
  for (const Chunk& c : chunks_) {
    b += c.raw_bytes;
  }
  return b;
}

// ---- Leaf arena -------------------------------------------------------------

uint64_t FarBTree::AllocLeaf() {
  if (!free_leaves_.empty()) {
    uint64_t a = free_leaves_.back();
    free_leaves_.pop_back();
    return a;
  }
  if (chunks_.empty() || next_slot_ == chunks_.back().slots) {
    Chunk c;
    c.raw_bytes =
        static_cast<uint64_t>(cfg_.granules_per_chunk) * kShardGranuleBytes + kShardGranuleBytes;
    c.raw_base = rt_.AllocRegion(c.raw_bytes);
    c.base = (c.raw_base + kShardGranuleBytes - 1) & ~(kShardGranuleBytes - 1);
    c.slots = static_cast<uint64_t>(cfg_.granules_per_chunk) * kPagesPerGranule;
    chunks_.push_back(c);
    next_slot_ = 0;
  }
  return chunks_.back().base + (next_slot_++) * kPageSize;
}

void FarBTree::FreeLeaf(uint64_t addr) { free_leaves_.push_back(addr); }

// ---- Leaf I/O ---------------------------------------------------------------
//
// All accessors stay within the leaf's single 4 KB page, so each op below is
// at most one demand fault; repeated accesses in one call hit the same
// resident frame on the fast path.

uint32_t FarBTree::ReadLeafCount(uint64_t addr, int core) {
  return rt_.Read<uint32_t>(addr, core);
}

uint64_t FarBTree::ReadLeafNext(uint64_t addr, int core) {
  return rt_.Read<uint64_t>(addr + 8, core);
}

void FarBTree::ReadLeafKeys(uint64_t addr, uint32_t count, std::vector<uint64_t>* keys,
                            int core) {
  keys->resize(count);
  if (count != 0) {
    rt_.ReadBytes(addr + kLeafHeaderBytes, keys->data(), static_cast<uint64_t>(count) * 8, core);
  }
}

void FarBTree::ReadLeaf(uint64_t addr, LeafBlock* blk, int core) {
  struct Header {
    uint32_t count;
    uint32_t pad;
    uint64_t next;
  } h;
  rt_.ReadBytes(addr, &h, sizeof(h), core);
  blk->count = h.count;
  blk->next = h.next;
  ReadLeafKeys(addr, h.count, &blk->keys, core);
  blk->values.resize(static_cast<size_t>(h.count) * cfg_.value_size);
  if (h.count != 0) {
    rt_.ReadBytes(addr + ValueOffset(0), blk->values.data(), blk->values.size(), core);
  }
}

void FarBTree::WriteLeaf(uint64_t addr, const LeafBlock& blk, int core) {
  // Header and the used key prefix are contiguous: one write.
  std::vector<uint8_t> buf(kLeafHeaderBytes + static_cast<size_t>(blk.count) * 8);
  uint32_t count = blk.count;
  uint32_t pad = 0;
  std::memcpy(buf.data(), &count, 4);
  std::memcpy(buf.data() + 4, &pad, 4);
  std::memcpy(buf.data() + 8, &blk.next, 8);
  if (count != 0) {
    std::memcpy(buf.data() + kLeafHeaderBytes, blk.keys.data(), static_cast<size_t>(count) * 8);
  }
  rt_.WriteBytes(addr, buf.data(), buf.size(), core);
  if (count != 0) {
    rt_.WriteBytes(addr + ValueOffset(0), blk.values.data(), blk.values.size(), core);
  }
}

void FarBTree::WriteLeafValue(uint64_t addr, uint32_t idx, const uint8_t* val, int core) {
  rt_.WriteBytes(addr + ValueOffset(idx), val, cfg_.value_size, core);
}

// ---- Routing ----------------------------------------------------------------

size_t FarBTree::ChildIndex(const Inner* n, uint64_t key) {
  // Last fence <= key; keys below every fence route to child 0 (fences are
  // lower bounds, so child 0 simply comes up empty for such lookups).
  size_t lo = 0, hi = n->keys.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (n->keys[mid] <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

// ---- Point ops --------------------------------------------------------------

bool FarBTree::Get(uint64_t key, std::string* out, int core) {
  const Inner* n = root_;
  while (!n->leaf_level) {
    n = n->kids[ChildIndex(n, key)];
  }
  uint64_t leaf = n->leaves[ChildIndex(n, key)];
  uint32_t count = ReadLeafCount(leaf, core);
  ReadLeafKeys(leaf, count, &scratch_.keys, core);
  uint32_t pos = LowerBound(scratch_.keys, count, key);
  if (pos >= count || scratch_.keys[pos] != key) {
    return false;
  }
  if (out != nullptr) {
    out->resize(cfg_.value_size);
    rt_.ReadBytes(leaf + ValueOffset(pos), out->data(), cfg_.value_size, core);
  }
  return true;
}

bool FarBTree::Put(uint64_t key, std::string_view value, int core) {
  std::vector<uint8_t> val(cfg_.value_size, 0);
  std::memcpy(val.data(), value.data(), std::min<size_t>(value.size(), cfg_.value_size));
  bool inserted = false;
  Split split;
  InsertRec(root_, key, val.data(), &inserted, &split, core);
  if (split.happened) {
    Inner* nr = new Inner;
    nr->leaf_level = false;
    nr->keys = {root_->keys[0], split.fence};
    nr->kids = {root_, split.node};
    root_ = nr;
    ++height_;
  }
  if (inserted) {
    ++size_;
  }
  return inserted;
}

bool FarBTree::InsertRec(Inner* node, uint64_t key, const uint8_t* val, bool* inserted,
                         Split* split, int core) {
  size_t idx = ChildIndex(node, key);
  if (key < node->keys[0]) {
    node->keys[0] = key;  // Keep the fence a lower bound for the new minimum.
  }
  if (!node->leaf_level) {
    Split child;
    InsertRec(node->kids[idx], key, val, inserted, &child, core);
    if (child.happened) {
      node->keys.insert(node->keys.begin() + static_cast<long>(idx) + 1, child.fence);
      node->kids.insert(node->kids.begin() + static_cast<long>(idx) + 1, child.node);
    }
  } else {
    uint64_t leaf = node->leaves[idx];
    ReadLeaf(leaf, &scratch_, core);
    LeafBlock& b = scratch_;
    uint32_t pos = LowerBound(b.keys, b.count, key);
    if (pos < b.count && b.keys[pos] == key) {
      WriteLeafValue(leaf, pos, val, core);
      *inserted = false;
      return true;
    }
    *inserted = true;
    if (b.count < leaf_cap_) {
      b.keys.insert(b.keys.begin() + pos, key);
      b.values.insert(b.values.begin() + static_cast<size_t>(pos) * cfg_.value_size, val,
                      val + cfg_.value_size);
      ++b.count;
      WriteLeaf(leaf, b, core);
      return true;
    }
    // Leaf split. Appends (the bulk-load pattern) split at the end so the
    // left leaf stays 100% packed and sequential loads fill granules densely;
    // everything else splits at the middle.
    uint32_t split_at = pos == b.count ? b.count : b.count / 2;
    LeafBlock& r = scratch_right_;
    r.keys.assign(b.keys.begin() + split_at, b.keys.end());
    r.values.assign(b.values.begin() + static_cast<size_t>(split_at) * cfg_.value_size,
                    b.values.end());
    r.count = b.count - split_at;
    r.next = b.next;
    b.keys.resize(split_at);
    b.values.resize(static_cast<size_t>(split_at) * cfg_.value_size);
    b.count = split_at;
    uint64_t rleaf = AllocLeaf();
    b.next = rleaf;
    if (pos >= split_at) {
      uint32_t rp = pos - split_at;
      r.keys.insert(r.keys.begin() + rp, key);
      r.values.insert(r.values.begin() + static_cast<size_t>(rp) * cfg_.value_size, val,
                      val + cfg_.value_size);
      ++r.count;
    } else {
      b.keys.insert(b.keys.begin() + pos, key);
      b.values.insert(b.values.begin() + static_cast<size_t>(pos) * cfg_.value_size, val,
                      val + cfg_.value_size);
      ++b.count;
    }
    WriteLeaf(leaf, b, core);
    WriteLeaf(rleaf, r, core);
    ++num_leaves_;
    ++leaf_splits_;
    node->keys.insert(node->keys.begin() + static_cast<long>(idx) + 1, r.keys[0]);
    node->leaves.insert(node->leaves.begin() + static_cast<long>(idx) + 1, rleaf);
  }
  if (node->n() > cfg_.inner_order) {
    size_t half = node->n() / 2;
    Inner* rn = new Inner;
    rn->leaf_level = node->leaf_level;
    rn->keys.assign(node->keys.begin() + static_cast<long>(half), node->keys.end());
    node->keys.resize(half);
    if (node->leaf_level) {
      rn->leaves.assign(node->leaves.begin() + static_cast<long>(half), node->leaves.end());
      node->leaves.resize(half);
    } else {
      rn->kids.assign(node->kids.begin() + static_cast<long>(half), node->kids.end());
      node->kids.resize(half);
    }
    split->happened = true;
    split->fence = rn->keys[0];
    split->node = rn;
  }
  return true;
}

// ---- Delete -----------------------------------------------------------------

bool FarBTree::Delete(uint64_t key, int core) {
  bool found = DeleteRec(root_, key, core);
  if (found) {
    --size_;
  }
  while (!root_->leaf_level && root_->n() == 1) {
    Inner* child = root_->kids[0];
    root_->kids.clear();
    delete root_;
    root_ = child;
    --height_;
  }
  return found;
}

bool FarBTree::DeleteRec(Inner* node, uint64_t key, int core) {
  size_t idx = ChildIndex(node, key);
  if (node->leaf_level) {
    uint64_t leaf = node->leaves[idx];
    ReadLeaf(leaf, &scratch_, core);
    LeafBlock& b = scratch_;
    uint32_t pos = LowerBound(b.keys, b.count, key);
    if (pos >= b.count || b.keys[pos] != key) {
      return false;
    }
    b.keys.erase(b.keys.begin() + pos);
    b.values.erase(b.values.begin() + static_cast<size_t>(pos) * cfg_.value_size,
                   b.values.begin() + static_cast<size_t>(pos + 1) * cfg_.value_size);
    --b.count;
    WriteLeaf(leaf, b, core);
    if (b.count < min_leaf_ && node->n() > 1) {
      RebalanceLeaf(node, idx, core);
    }
    return true;
  }
  bool found = DeleteRec(node->kids[idx], key, core);
  if (found && node->kids[idx]->n() < min_inner_ && node->n() > 1) {
    RebalanceInner(node, idx);
  }
  return found;
}

void FarBTree::RebalanceLeaf(Inner* parent, size_t idx, int core) {
  size_t l = idx > 0 ? idx - 1 : idx;
  size_t r = l + 1;
  uint64_t lleaf = parent->leaves[l];
  uint64_t rleaf = parent->leaves[r];
  LeafBlock& lb = scratch_;
  LeafBlock& rb = scratch_right_;
  ReadLeaf(lleaf, &lb, core);
  ReadLeaf(rleaf, &rb, core);
  uint32_t total = lb.count + rb.count;
  if (total >= 2 * min_leaf_) {
    // Borrow: redistribute the two leaves evenly.
    std::vector<uint64_t> keys = lb.keys;
    keys.insert(keys.end(), rb.keys.begin(), rb.keys.end());
    std::vector<uint8_t> vals = lb.values;
    vals.insert(vals.end(), rb.values.begin(), rb.values.end());
    uint32_t half = total / 2;
    lb.keys.assign(keys.begin(), keys.begin() + half);
    lb.values.assign(vals.begin(), vals.begin() + static_cast<size_t>(half) * cfg_.value_size);
    lb.count = half;
    rb.keys.assign(keys.begin() + half, keys.end());
    rb.values.assign(vals.begin() + static_cast<size_t>(half) * cfg_.value_size, vals.end());
    rb.count = total - half;
    parent->keys[r] = rb.keys[0];
    WriteLeaf(lleaf, lb, core);
    WriteLeaf(rleaf, rb, core);
    ++leaf_borrows_;
    return;
  }
  // Merge right into left; the combined leaf fits (total < 2*min <= cap/2).
  lb.keys.insert(lb.keys.end(), rb.keys.begin(), rb.keys.end());
  lb.values.insert(lb.values.end(), rb.values.begin(), rb.values.end());
  lb.count = total;
  lb.next = rb.next;
  WriteLeaf(lleaf, lb, core);
  FreeLeaf(rleaf);
  --num_leaves_;
  ++leaf_merges_;
  parent->keys.erase(parent->keys.begin() + static_cast<long>(r));
  parent->leaves.erase(parent->leaves.begin() + static_cast<long>(r));
}

void FarBTree::RebalanceInner(Inner* parent, size_t idx) {
  size_t l = idx > 0 ? idx - 1 : idx;
  size_t r = l + 1;
  Inner* lc = parent->kids[l];
  Inner* rc = parent->kids[r];
  size_t total = lc->n() + rc->n();
  if (total >= 2 * static_cast<size_t>(min_inner_)) {
    std::vector<uint64_t> keys = lc->keys;
    keys.insert(keys.end(), rc->keys.begin(), rc->keys.end());
    size_t half = total / 2;
    lc->keys.assign(keys.begin(), keys.begin() + static_cast<long>(half));
    rc->keys.assign(keys.begin() + static_cast<long>(half), keys.end());
    if (lc->leaf_level) {
      std::vector<uint64_t> leaves = lc->leaves;
      leaves.insert(leaves.end(), rc->leaves.begin(), rc->leaves.end());
      lc->leaves.assign(leaves.begin(), leaves.begin() + static_cast<long>(half));
      rc->leaves.assign(leaves.begin() + static_cast<long>(half), leaves.end());
    } else {
      std::vector<Inner*> kids = lc->kids;
      kids.insert(kids.end(), rc->kids.begin(), rc->kids.end());
      lc->kids.assign(kids.begin(), kids.begin() + static_cast<long>(half));
      rc->kids.assign(kids.begin() + static_cast<long>(half), kids.end());
    }
    parent->keys[r] = rc->keys[0];
    return;
  }
  lc->keys.insert(lc->keys.end(), rc->keys.begin(), rc->keys.end());
  if (lc->leaf_level) {
    lc->leaves.insert(lc->leaves.end(), rc->leaves.begin(), rc->leaves.end());
  } else {
    lc->kids.insert(lc->kids.end(), rc->kids.begin(), rc->kids.end());
  }
  rc->kids.clear();
  delete rc;
  parent->keys.erase(parent->keys.begin() + static_cast<long>(r));
  parent->kids.erase(parent->kids.begin() + static_cast<long>(r));
}

// ---- Scans ------------------------------------------------------------------

uint32_t FarBTree::Scan(uint64_t start, uint32_t count,
                        std::vector<std::pair<uint64_t, std::string>>* out, int core) {
  if (count == 0) {
    return 0;
  }
  const Inner* n = root_;
  while (!n->leaf_level) {
    n = n->kids[ChildIndex(n, start)];
  }
  uint64_t leaf = n->leaves[ChildIndex(n, start)];
  uint32_t got = 0;
  bool first = true;
  while (leaf != 0 && got < count) {
    ReadLeaf(leaf, &scratch_, core);
    uint32_t i = first ? LowerBound(scratch_.keys, scratch_.count, start) : 0;
    first = false;
    for (; i < scratch_.count && got < count; ++i) {
      out->emplace_back(
          scratch_.keys[i],
          std::string(reinterpret_cast<const char*>(scratch_.values.data()) +
                          static_cast<size_t>(i) * cfg_.value_size,
                      cfg_.value_size));
      ++got;
    }
    leaf = scratch_.next;
  }
  return got;
}

void FarBTree::CollectLeaves(uint64_t start, uint32_t max_leaves,
                             std::vector<uint64_t>* out) const {
  out->clear();
  if (max_leaves == 0) {
    return;
  }
  // Iterative DFS from the child covering `start`: every later sibling only
  // holds larger keys, so the in-order walk from that child is exactly the
  // leaf sequence a Scan(start, ...) touches.
  std::vector<std::pair<const Inner*, size_t>> stack;
  stack.emplace_back(root_, ChildIndex(root_, start));
  while (!stack.empty() && out->size() < max_leaves) {
    auto& [node, i] = stack.back();
    if (i >= node->n()) {
      stack.pop_back();
      continue;
    }
    size_t cur = i++;
    if (node->leaf_level) {
      out->push_back(node->leaves[cur]);
    } else {
      const Inner* child = node->kids[cur];
      stack.emplace_back(child, ChildIndex(child, start));
      // Children after the entry point cover only keys > start, and their
      // ChildIndex(start) is 0 anyway (fences exceed start), so reusing
      // `start` for every descent is correct.
    }
  }
}

// ---- Validation (tests) -------------------------------------------------------

bool FarBTree::Validate(std::string* err, int core) {
  std::vector<uint64_t> chain;
  if (!ValidateRec(root_, 0, false, 0, height_, err, &chain, core)) {
    return false;
  }
  // The next-pointer chain must visit exactly the index-order leaves.
  uint64_t leaf = chain.empty() ? 0 : chain[0];
  for (size_t i = 0; i < chain.size(); ++i) {
    if (leaf != chain[i]) {
      *err = "leaf chain diverges from index order";
      return false;
    }
    leaf = ReadLeafNext(leaf, core);
  }
  if (leaf != 0) {
    *err = "leaf chain does not terminate";
    return false;
  }
  if (chain.size() != num_leaves_) {
    *err = "num_leaves_ out of sync";
    return false;
  }
  return true;
}

bool FarBTree::ValidateRec(const Inner* n, uint64_t lo, bool has_hi, uint64_t hi,
                           uint32_t depth, std::string* err, std::vector<uint64_t>* chain,
                           int core) {
  if (n->n() == 0) {
    *err = "empty interior node";
    return false;
  }
  if (n->leaf_level != (depth == 1)) {
    *err = "leaf level at wrong depth";
    return false;
  }
  for (size_t i = 0; i < n->n(); ++i) {
    if (i > 0 && n->keys[i] <= n->keys[i - 1]) {
      *err = "fences not strictly increasing";
      return false;
    }
    uint64_t clo = std::max(lo, n->keys[i]);
    bool chas_hi = i + 1 < n->n() ? true : has_hi;
    uint64_t chi = i + 1 < n->n() ? n->keys[i + 1] : hi;
    if (n->leaf_level) {
      LeafBlock blk;
      ReadLeaf(n->leaves[i], &blk, core);
      if (blk.count > leaf_cap_) {
        *err = "leaf overflow";
        return false;
      }
      for (uint32_t k = 0; k < blk.count; ++k) {
        if (k > 0 && blk.keys[k] <= blk.keys[k - 1]) {
          *err = "leaf keys not sorted";
          return false;
        }
        if (blk.keys[k] < clo || (chas_hi && blk.keys[k] >= chi)) {
          *err = "leaf key outside fence range";
          return false;
        }
      }
      chain->push_back(n->leaves[i]);
    } else {
      if (!ValidateRec(n->kids[i], clo, chas_hi, chi, depth - 1, err, chain, core)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace dilos
