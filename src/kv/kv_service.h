// Sharded ordered KV service: the repo's first end-to-end service-shaped
// workload on top of the paging substrate (ROADMAP "millions of users"
// bench; the datacenter serving scenario of the disaggregation surveys).
//
// N independent FarBTree shards sit over one far-memory runtime; keys are
// hash-partitioned across shards with the same splitmix-style mix the
// ShardRouter uses for granule placement, so shard load stays balanced
// under skewed (Zipfian) key popularity. Each shard's leaf arena is
// granule-aligned (see btree.h), and the runtime's ShardRouter places those
// granules across memory nodes — the service inherits scale-out placement
// without owning any of it.
//
// Semantics: GET/PUT/DELETE address a single key (routed by hash); SCAN is
// a per-shard ordered range scan starting at the shard owning `start` —
// the usual contract for hash-partitioned stores with ordered shards.
//
// Observability: per-shard op counters and LogHistogram latencies
// (Prometheus-style exposition via StatsToProm, mirroring the PR-5
// MetricsRegistry idiom), plus runtime-level counters
// (kv_guided_scans / kv_scan_prefetch_pages) and trace events
// (kKvScan / kKvScanPrefetch) when scans run guided.
#ifndef DILOS_SRC_KV_KV_SERVICE_H_
#define DILOS_SRC_KV_KV_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/kv/btree.h"
#include "src/kv/hooks.h"
#include "src/sim/far_runtime.h"
#include "src/sim/trace.h"
#include "src/telemetry/histogram.h"

namespace dilos {

struct KvConfig {
  int shards = 4;
  BTreeConfig tree;
  // Upper bound on the leaf-plan length handed to the scan guide per scan
  // (the guide prefetches a sliding window within it).
  uint32_t scan_plan_max_leaves = 64;
};

// Per-shard counters + latency distributions.
struct KvShardStats {
  uint64_t gets = 0;
  uint64_t hits = 0;       // GETs that found the key.
  uint64_t puts = 0;
  uint64_t inserts = 0;    // PUTs that created a new key.
  uint64_t deletes = 0;    // DELETE ops issued.
  uint64_t removed = 0;    // DELETEs that found the key.
  uint64_t scans = 0;
  uint64_t scan_items = 0;
  LogHistogram get_ns;
  LogHistogram put_ns;
  LogHistogram delete_ns;
  LogHistogram scan_ns;

  void Merge(const KvShardStats& o);
};

class KvService {
 public:
  // `tracer` is optional (DilosRuntime exposes one; other runtimes may not —
  // the service runs on any FarRuntime, compatibility intact).
  KvService(FarRuntime& rt, KvConfig cfg = {}, Tracer* tracer = nullptr);

  // Returns true when the key was newly inserted.
  bool Put(uint64_t key, std::string_view value, int core = 0);
  bool Get(uint64_t key, std::string* out, int core = 0);
  bool Delete(uint64_t key, int core = 0);

  // Ordered scan within the shard owning `start`: up to `count` records
  // with key >= start, appended to `out`. Returns the number found.
  uint32_t Scan(uint64_t start, uint32_t count,
                std::vector<std::pair<uint64_t, std::string>>* out, int core = 0);

  // Installs the scan guide's hook half (src/guides/kv_guide.h implements
  // both this and Guide; the Guide half goes to DilosRuntime::set_guide).
  void set_scan_hooks(KvScanHooks* hooks) { hooks_ = hooks; }

  int ShardOf(uint64_t key) const;
  int shards() const { return static_cast<int>(trees_.size()); }
  FarBTree& tree(int shard) { return *trees_[static_cast<size_t>(shard)]; }
  const KvShardStats& shard_stats(int shard) const {
    return stats_[static_cast<size_t>(shard)];
  }
  KvShardStats TotalStats() const;

  // Prometheus text exposition of the per-shard counters and latency
  // quantiles (same style as MetricsRegistry::ToProm).
  std::string StatsToProm() const;

  uint64_t total_keys() const;

 private:
  FarRuntime& rt_;
  KvConfig cfg_;
  Tracer* tracer_;
  KvScanHooks* hooks_ = nullptr;
  std::vector<std::unique_ptr<FarBTree>> trees_;
  std::vector<KvShardStats> stats_;
  std::vector<uint64_t> leaf_plan_;  // Scan-hint scratch.
};

}  // namespace dilos

#endif  // DILOS_SRC_KV_KV_SERVICE_H_
