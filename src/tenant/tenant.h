// Tenant namespaces, ownership resolution, and capacity quotas.
//
// One shared memory-node fleet serves many runtimes ("tenants" — the
// datacenter framing of the Maruf/Chowdhury survey). The registry is the
// policy subsystem's root object: it maps address ranges to tenant ids at
// granule granularity, carries per-tenant fair-share weights for the wire
// scheduler (src/tenant/wire_sched.h), salts the shard router's placement
// hash so each tenant gets its own placement namespace, and enforces
// remote-capacity quotas at the cleaner's write-back admission point
// (src/dilos/page_manager.cc).
//
// Quota semantics: a tenant's quota caps its *stored remote* pages. A page
// is charged the first time a full write-back ships it; it stays charged
// while any remote copy logically exists (crash/repair churn does not
// uncharge — the page is still stored as far as the router is concerned)
// and is uncharged when the owning region is freed or the quota reclaimer
// drops its remote copies. On breach the tenant's policy decides:
//   kHardReject       — refuse the write-back; the page stays dirty and
//                       resident (the reclaimer requeues it, the same
//                       contract as a total-partition write-back failure).
//   kReclaimOwnColdest — drop remote copies of the tenant's own coldest
//                       *resident* charged pages (re-marking them dirty, so
//                       the local copy stays authoritative: lossless),
//                       then admit. Falls back to hard-reject when no
//                       eligible victim exists.
#ifndef DILOS_SRC_TENANT_TENANT_H_
#define DILOS_SRC_TENANT_TENANT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/telemetry/invariants.h"
#include "src/telemetry/slo.h"

namespace dilos {

enum class QuotaPolicy : uint8_t {
  kHardReject = 0,
  kReclaimOwnColdest,
};

struct TenantSpec {
  std::string name;
  uint32_t weight = 1;       // Fair-share weight for the wire scheduler.
  uint64_t quota_pages = 0;  // Remote-capacity cap; 0 = unlimited.
  QuotaPolicy policy = QuotaPolicy::kHardReject;
  // Latency objective, honored when the SLO engine is on
  // (TelemetryConfig::slo.enabled); default-inactive = unscored tenant.
  SloObjective slo{};
};

// Per-runtime tenancy knobs (DilosConfig::tenants).
struct HotnessConfig {
  bool enabled = false;
  uint64_t interval_ns = 500'000;    // Load-sampling cadence.
  double ewma_alpha = 0.4;           // Weight of the newest interval.
  double imbalance_ratio = 2.0;      // Act when max/min node load exceeds this.
  uint64_t bytes_per_interval = 1 << 20;  // Migration budget per interval.
  uint64_t min_interval_bytes = 16 * 1024;  // Ignore near-idle intervals.
};

struct TenantConfig {
  bool enabled = false;     // Construct the registry; thread ids through.
  bool fair_share = false;  // Install the per-tenant wire scheduler.
  HotnessConfig hotness;    // Steady-state auto-migrator.
};

class TenantRegistry {
 public:
  // The per-(node, tenant) telemetry cells and retry buckets are sized for a
  // bounded tenant population; registrations beyond the cap are refused.
  static constexpr int kMaxTenants = 16;

  explicit TenantRegistry(uint32_t granule_shift = 18) : granule_shift_(granule_shift) {}

  // Returns the new tenant's id, or -1 when the registry is full.
  int Register(const TenantSpec& spec) {
    if (static_cast<int>(tenants_.size()) >= kMaxTenants) {
      return -1;
    }
    tenants_.push_back(Entry{spec, /*retired=*/false});
    counters_.emplace_back();
    return static_cast<int>(tenants_.size()) - 1;
  }

  // Retirement is terminal: the tenant must have freed every region first
  // (the shutdown audit fails if a retired tenant still owns pages).
  void Retire(int id) {
    if (valid(id)) {
      tenants_[static_cast<size_t>(id)].retired = true;
    }
  }
  bool retired(int id) const {
    return valid(id) && tenants_[static_cast<size_t>(id)].retired;
  }
  int num_tenants() const { return static_cast<int>(tenants_.size()); }
  const TenantSpec& spec(int id) const { return tenants_[static_cast<size_t>(id)].spec; }

  // -- Namespace: address range -> tenant, at granule granularity ------------

  // Binds [base, base+bytes) to `id`. Regions are granule-aligned by
  // construction (AllocRegion pads), so a granule never straddles tenants.
  void BindRange(uint64_t base, uint64_t bytes, int id) {
    if (!valid(id) || retired(id) || bytes == 0) {
      return;
    }
    uint64_t first = base >> granule_shift_;
    uint64_t last = (base + bytes - 1) >> granule_shift_;
    for (uint64_t g = first; g <= last; ++g) {
      granule_owner_[g] = id;
    }
  }

  int TenantOfGranule(uint64_t granule) const {
    auto it = granule_owner_.find(granule);
    return it == granule_owner_.end() ? -1 : it->second;
  }
  int TenantOfAddr(uint64_t addr) const { return TenantOfGranule(addr >> granule_shift_); }

  // Placement-namespace salt mixed into the shard router's hash: granules of
  // different tenants spread independently even when their indices collide.
  // Untenanted granules keep salt 0, preserving single-tenant placement.
  uint64_t PlacementSalt(uint64_t granule) const {
    int t = TenantOfGranule(granule);
    if (t < 0) {
      return 0;
    }
    uint64_t x = static_cast<uint64_t>(t) + 0x9E3779B97F4A7C15ULL;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    return x;
  }

  // -- Accounting: resident gauges + remote charges --------------------------

  // Resident gauge, fed from PageManager::OnMapped/OnUnmapped. `delta` is
  // +1/-1; an impossible decrement flags the shutdown audit instead of
  // wrapping.
  void OnResident(uint64_t page_va, int delta) {
    Counters& c = bucket(TenantOfAddr(page_va));
    if (delta < 0) {
      uint64_t d = static_cast<uint64_t>(-delta);
      if (c.resident < d || total_resident_ < d) {
        ++underflows_;
        return;
      }
      c.resident -= d;
      total_resident_ -= d;
    } else {
      c.resident += static_cast<uint64_t>(delta);
      total_resident_ += static_cast<uint64_t>(delta);
    }
  }

  bool IsCharged(uint64_t page_va) const { return charged_.count(page_va) != 0; }
  int ChargeOwner(uint64_t page_va) const {
    auto it = charged_.find(page_va);
    return it == charged_.end() ? -1 : it->second;
  }

  // Charges `page_va` against its owner's quota. Untenanted pages are always
  // admitted and never tracked. Returns false on quota breach.
  bool TryCharge(uint64_t page_va) {
    int t = TenantOfAddr(page_va);
    if (t < 0) {
      return true;
    }
    if (charged_.count(page_va) != 0) {
      return true;
    }
    Counters& c = bucket(t);
    const TenantSpec& s = spec(t);
    if (s.quota_pages != 0 && c.remote >= s.quota_pages) {
      return false;
    }
    charged_.emplace(page_va, t);
    ++c.remote;
    ++total_remote_;
    return true;
  }

  void Uncharge(uint64_t page_va) {
    auto it = charged_.find(page_va);
    if (it == charged_.end()) {
      return;
    }
    Counters& c = bucket(it->second);
    if (c.remote == 0 || total_remote_ == 0) {
      ++underflows_;
    } else {
      --c.remote;
      --total_remote_;
    }
    charged_.erase(it);
  }

  void NoteReject(int id) { ++bucket(id).rejects; }
  void NoteReclaim(int id) { ++bucket(id).reclaims; }

  uint64_t resident_pages(int id) const { return bucket_const(id).resident; }
  uint64_t remote_pages(int id) const { return bucket_const(id).remote; }
  uint64_t quota_rejects(int id) const { return bucket_const(id).rejects; }
  uint64_t quota_reclaims(int id) const { return bucket_const(id).reclaims; }
  uint64_t total_resident() const { return total_resident_; }
  uint64_t total_remote() const { return total_remote_; }

  // Flat snapshot for the shutdown audit (src/telemetry/invariants.h).
  TenantInvariantView InvariantView() const {
    TenantInvariantView v;
    v.rows.push_back(TenantInvariantRow{-1, false, untenanted_.resident,
                                        untenanted_.remote, 0});
    for (int id = 0; id < num_tenants(); ++id) {
      const Counters& c = counters_[static_cast<size_t>(id)];
      v.rows.push_back(TenantInvariantRow{id, retired(id), c.resident, c.remote,
                                          spec(id).quota_pages});
    }
    v.total_resident = total_resident_;
    v.total_remote = total_remote_;
    v.charged_entries = charged_.size();
    v.underflows = underflows_;
    return v;
  }

 private:
  struct Entry {
    TenantSpec spec;
    bool retired = false;
  };
  struct Counters {
    uint64_t resident = 0;  // Frame-backed pages.
    uint64_t remote = 0;    // Charged (stored-remote) pages.
    uint64_t rejects = 0;   // Write-backs refused on quota breach.
    uint64_t reclaims = 0;  // Own-coldest remote drops to make quota room.
  };

  bool valid(int id) const { return id >= 0 && id < num_tenants(); }
  Counters& bucket(int id) {
    return valid(id) ? counters_[static_cast<size_t>(id)] : untenanted_;
  }
  const Counters& bucket_const(int id) const {
    return valid(id) ? counters_[static_cast<size_t>(id)] : untenanted_;
  }

  uint32_t granule_shift_;
  std::vector<Entry> tenants_;
  std::vector<Counters> counters_;
  Counters untenanted_;  // Probes, parity ranges, unbound regions.
  std::unordered_map<uint64_t, int> granule_owner_;
  std::unordered_map<uint64_t, int> charged_;  // page va -> owning tenant.
  uint64_t total_resident_ = 0;
  uint64_t total_remote_ = 0;
  uint64_t underflows_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_TENANT_TENANT_H_
