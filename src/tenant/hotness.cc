#include "src/tenant/hotness.h"

#include <algorithm>
#include <utility>

namespace dilos {

HotnessMonitor::HotnessMonitor(ShardRouter& router, MigrationManager& migration,
                               MetricsRegistry* const* metrics, RuntimeStats& stats,
                               Tracer* tracer, const HotnessConfig& cfg, int num_nodes)
    : router_(router),
      migration_(migration),
      metrics_(metrics),
      stats_(stats),
      tracer_(tracer),
      cfg_(cfg),
      prev_bytes_(static_cast<size_t>(num_nodes), 0),
      ewma_(static_cast<size_t>(num_nodes), 0.0) {}

void HotnessMonitor::OnDemandFault(uint64_t vaddr) {
  if (!cfg_.enabled) {
    return;
  }
  heat_[vaddr >> kShardGranuleShift] += 1.0;
}

uint64_t HotnessMonitor::ServeBytes(int node) const {
  const MetricsRegistry* m = *metrics_;
  uint64_t bytes = 0;
  for (QpClass cls : {QpClass::kFault, QpClass::kPrefetch, QpClass::kGuide}) {
    const QpMetrics& c = m->at(node, cls);
    bytes += c.read_bytes + c.write_bytes;
  }
  return bytes;
}

double HotnessMonitor::NodeLoad(int node) const {
  if (node < 0 || node >= static_cast<int>(ewma_.size())) {
    return 0.0;
  }
  return ewma_[static_cast<size_t>(node)];
}

double HotnessMonitor::ImbalanceRatio() const {
  double lo = -1.0, hi = -1.0;
  for (int n = 0; n < static_cast<int>(ewma_.size()); ++n) {
    if (router_.state(n) != NodeState::kLive) {
      continue;
    }
    double v = ewma_[static_cast<size_t>(n)];
    if (lo < 0.0 || v < lo) {
      lo = v;
    }
    if (v > hi) {
      hi = v;
    }
  }
  if (lo < 0.0) {
    return 1.0;
  }
  return (hi + 1.0) / (lo + 1.0);
}

void HotnessMonitor::Tick(uint64_t now_ns) {
  if (!cfg_.enabled || metrics_ == nullptr || *metrics_ == nullptr) {
    return;
  }
  if (now_ns < last_tick_ns_ + cfg_.interval_ns) {
    return;
  }
  bool first = last_tick_ns_ == 0;
  last_tick_ns_ = now_ns;
  ++intervals_;

  uint64_t total_delta = 0;
  for (size_t n = 0; n < ewma_.size(); ++n) {
    uint64_t cur = ServeBytes(static_cast<int>(n));
    uint64_t delta = cur - prev_bytes_[n];
    prev_bytes_[n] = cur;
    total_delta += delta;
    ewma_[n] = cfg_.ewma_alpha * static_cast<double>(delta) +
               (1.0 - cfg_.ewma_alpha) * ewma_[n];
  }

  // Old heat fades so yesterday's hot spot cannot pin today's decisions.
  for (auto it = heat_.begin(); it != heat_.end();) {
    it->second *= 0.5;
    it = it->second < 0.25 ? heat_.erase(it) : std::next(it);
  }

  // The very first interval only establishes the byte baseline; acting on a
  // since-boot delta would misread cold-start fill as steady-state skew.
  if (first || total_delta < cfg_.min_interval_bytes) {
    return;
  }

  int hot = -1, cold = -1;
  for (int n = 0; n < static_cast<int>(ewma_.size()); ++n) {
    if (router_.state(n) != NodeState::kLive) {
      continue;  // Never balance onto (or off) draining/dead/rebuilding nodes.
    }
    if (hot < 0 || ewma_[static_cast<size_t>(n)] > ewma_[static_cast<size_t>(hot)]) {
      hot = n;
    }
    if (cold < 0 || ewma_[static_cast<size_t>(n)] < ewma_[static_cast<size_t>(cold)]) {
      cold = n;
    }
  }
  if (hot < 0 || cold < 0 || hot == cold) {
    return;
  }
  if ((ewma_[static_cast<size_t>(hot)] + 1.0) <=
      cfg_.imbalance_ratio * (ewma_[static_cast<size_t>(cold)] + 1.0)) {
    return;
  }

  // Rank the hot node's granules by decayed demand heat; move from the top
  // until the per-interval migration budget runs out.
  std::vector<std::pair<double, uint64_t>> candidates;
  std::vector<int> replicas;
  for (const auto& [granule, heat] : heat_) {
    router_.ReplicaNodes(granule << kShardGranuleShift, &replicas);
    if (std::find(replicas.begin(), replicas.end(), hot) != replicas.end()) {
      candidates.emplace_back(heat, granule);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  uint64_t budget = cfg_.bytes_per_interval;
  for (const auto& [heat, granule] : candidates) {
    if (budget < kShardGranuleBytes) {
      break;
    }
    // Prefer the coldest node; if it already holds a replica (or otherwise
    // refuses), let the migration manager pick a legal target itself.
    bool started = migration_.MigrateGranule(granule, hot, now_ns, cold) ||
                   migration_.MigrateGranule(granule, hot, now_ns);
    if (!started) {
      continue;
    }
    budget -= kShardGranuleBytes;
    ++stats_.hotness_migrations;
    if (tracer_ != nullptr) {
      tracer_->Record(now_ns, TraceEvent::kHotnessMigrate,
                      granule << kShardGranuleShift,
                      static_cast<uint32_t>((hot << 8) | cold));
    }
    heat_.erase(granule);
  }
}

}  // namespace dilos
