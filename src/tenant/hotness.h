// Hotness-driven auto-migrator: the policy loop PR 8's mechanism left open.
//
// MigrateGranule can move any granule between nodes, but nothing drove it in
// steady state. The HotnessMonitor closes the loop: every `interval_ns` it
// samples per-node serving load (demand + prefetch bytes from the
// MetricsRegistry — repair and migration traffic is deliberately excluded,
// so the balancer chases tenants, not its own copies), folds it into an
// EWMA, and when the max/min node ratio exceeds `imbalance_ratio` it moves
// the hottest granules — ranked by a decayed per-granule demand-fault count
// — off the hottest node toward the coldest, spending at most
// `bytes_per_interval` of migration traffic per interval.
#ifndef DILOS_SRC_TENANT_HOTNESS_H_
#define DILOS_SRC_TENANT_HOTNESS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/dilos/shard.h"
#include "src/recovery/migration.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"
#include "src/telemetry/metrics.h"
#include "src/tenant/tenant.h"

namespace dilos {

class HotnessMonitor {
 public:
  // `metrics` is the fabric's registry slot (double pointer, same pattern as
  // QueuePair): telemetry may be installed after construction or never —
  // with no registry the monitor stays inert.
  HotnessMonitor(ShardRouter& router, MigrationManager& migration,
                 MetricsRegistry* const* metrics, RuntimeStats& stats,
                 Tracer* tracer, const HotnessConfig& cfg, int num_nodes);

  // Demand-fault hook from the runtime's kRemote path: feeds the per-granule
  // heat ranking that decides *what* to move (the EWMA decides *whether*).
  void OnDemandFault(uint64_t vaddr);

  // Called from the recovery tick; samples at most once per interval.
  void Tick(uint64_t now_ns);

  // Introspection for tests/benches.
  double NodeLoad(int node) const;  // Current serving-load EWMA (bytes/interval).
  // Max/min EWMA over live nodes (+1 smoothing); 1.0 when fewer than two.
  double ImbalanceRatio() const;
  uint64_t intervals() const { return intervals_; }

 private:
  uint64_t ServeBytes(int node) const;

  ShardRouter& router_;
  MigrationManager& migration_;
  MetricsRegistry* const* metrics_;
  RuntimeStats& stats_;
  Tracer* tracer_;
  HotnessConfig cfg_;
  uint64_t last_tick_ns_ = 0;
  uint64_t intervals_ = 0;
  std::vector<uint64_t> prev_bytes_;
  std::vector<double> ewma_;
  std::unordered_map<uint64_t, double> heat_;  // granule -> decayed fault count.
};

}  // namespace dilos

#endif  // DILOS_SRC_TENANT_HOTNESS_H_
