// Weighted fair-share wire scheduling at the QueuePair::PostSend choke point.
//
// The default Link is a per-direction FIFO: whoever posts first owns the
// wire, so one tenant's bulk scan (prefetch window after prefetch window)
// pushes every later demand fault — including other tenants' — behind its
// backlog. Installed via Fabric::set_scheduler, this scheduler replaces
// Link::Occupy with a three-band, per-tenant arbitration:
//
//   band 0  demand faults            (kFault)
//   band 1  guided/readahead prefetch (kPrefetch, kGuide)
//   band 2  maintenance               (kCleaner, kRepair, kProbe, kOther)
//
// Bands are strict priority: an op in band b starts no earlier than the
// completion frontier of every higher band, so bulk traffic yields the wire
// whenever demand work is queued. Within a band each tenant owns a virtual
// lane (ops on one lane serialize; lanes of different tenants overlap), and
// an op's service time is inflated by (sum of backlogged lane weights /
// own weight) — the processor-sharing approximation of weighted
// deficit-round-robin, which keeps aggregate throughput at wire rate while
// splitting it by weight. The upshot: tenant B's fault starts at its own
// issue time plus at most its fair share of the contention, not behind
// tenant A's entire queue.
//
// The simulation assigns completion times eagerly at post time, so this is
// arbitration by construction rather than by queue reordering: the same
// reason Link can be a pair of busy-until scalars.
#ifndef DILOS_SRC_TENANT_WIRE_SCHED_H_
#define DILOS_SRC_TENANT_WIRE_SCHED_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/rdma/link.h"
#include "src/rdma/sched.h"
#include "src/tenant/tenant.h"

namespace dilos {

class FairLinkScheduler : public LinkScheduler {
 public:
  static constexpr int kBands = 3;

  FairLinkScheduler(int num_nodes, const TenantRegistry* tenants)
      : tenants_(tenants), nodes_(static_cast<size_t>(num_nodes)) {}

  static int BandOf(QpClass cls) {
    switch (cls) {
      case QpClass::kFault:
        return 0;
      case QpClass::kPrefetch:
      case QpClass::kGuide:
        return 1;
      default:
        return 2;
    }
  }

  uint64_t Occupy(Link& link, int node, QpClass cls, uint64_t remote_addr,
                  uint64_t issue_ns, uint64_t bytes, uint32_t nsegs,
                  bool is_write) override {
    if (node < 0 || node >= static_cast<int>(nodes_.size())) {
      uint64_t done = link.Occupy(issue_ns, bytes, nsegs, is_write);
      last_queue_ns_ = link.last_queue_ns();
      return done;
    }
    // Mirror Link::Occupy's wire formula exactly — with the scheduler
    // installed the link's own busy-until bookkeeping is bypassed.
    const CostModel& cost = link.cost();
    uint64_t wire =
        cost.link_per_op_ns +
        static_cast<uint64_t>(cost.link_per_byte_ns * static_cast<double>(bytes)) +
        static_cast<uint64_t>(nsegs > 1 ? (nsegs - 1) * 40 : 0);

    int band = BandOf(cls);
    int tenant = tenants_ != nullptr ? tenants_->TenantOfAddr(remote_addr) : -1;
    Dir& dir = nodes_[static_cast<size_t>(node)].dir[is_write ? 1 : 0];

    // Strict priority: start behind every higher band's frontier.
    uint64_t start = issue_ns;
    for (int b = 0; b < band; ++b) {
      start = std::max(start, dir.band[b].frontier);
    }
    Band& bs = dir.band[band];
    Lane& lane = LaneOf(bs, tenant);
    start = std::max(start, lane.busy);  // Own lane serializes.

    // Weighted processor sharing: lanes still backlogged at `start` share
    // the wire, so this op's service stretches by the weight ratio.
    uint64_t mine = Weight(tenant);
    uint64_t others = 0;
    for (const Lane& l : bs.lanes) {
      if (l.tenant != tenant && l.busy > start) {
        others += Weight(l.tenant);
      }
    }
    uint64_t svc = wire * (others + mine) / mine;

    deferred_ns_ += start - issue_ns;
    last_queue_ns_ = start - issue_ns;
    ++ops_[band];
    lane.busy = start + svc;
    bs.frontier = std::max(bs.frontier, lane.busy);
    (is_write ? link.mutable_tx() : link.mutable_rx()).Add(start, bytes);
    return lane.busy;
  }

  // Introspection for tests and benches.
  uint64_t ops(int band) const { return ops_[band]; }
  uint64_t deferred_ns() const { return deferred_ns_; }
  uint64_t last_queue_ns() const override { return last_queue_ns_; }

 private:
  struct Lane {
    int tenant = -1;
    uint64_t busy = 0;
  };
  struct Band {
    std::vector<Lane> lanes;  // One per tenant seen; linear scan, few tenants.
    uint64_t frontier = 0;    // Max completion in this band so far.
  };
  struct Dir {
    Band band[kBands];
  };
  struct Node {
    Dir dir[2];  // Full duplex: [0] RX (reads), [1] TX (writes).
  };

  uint64_t Weight(int tenant) const {
    if (tenants_ == nullptr || tenant < 0 || tenant >= tenants_->num_tenants()) {
      return 1;
    }
    uint32_t w = tenants_->spec(tenant).weight;
    return w == 0 ? 1 : w;
  }

  static Lane& LaneOf(Band& bs, int tenant) {
    for (Lane& l : bs.lanes) {
      if (l.tenant == tenant) {
        return l;
      }
    }
    bs.lanes.push_back(Lane{tenant, 0});
    return bs.lanes.back();
  }

  const TenantRegistry* tenants_;
  std::vector<Node> nodes_;
  uint64_t ops_[kBands] = {0, 0, 0};
  uint64_t deferred_ns_ = 0;
  uint64_t last_queue_ns_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_TENANT_WIRE_SCHED_H_
