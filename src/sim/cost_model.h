// Calibrated timing constants for the simulated disaggregation testbed.
//
// Every constant is traceable to a measurement reported in the DiLOS paper
// (EuroSys '23); the citations are given per field. The defaults model the
// paper's testbed: Xeon E5-2670 v3 @ 2.3 GHz compute node, ConnectX-5
// 100 GbE RoCE link, one-sided RDMA verbs.
#ifndef DILOS_SRC_SIM_COST_MODEL_H_
#define DILOS_SRC_SIM_COST_MODEL_H_

#include <cstdint>

namespace dilos {

struct CostModel {
  // --- RDMA fabric (paper Fig. 2) -----------------------------------------
  // One-sided READ latency is ~1.8 us for 128 B and ~2.4 us for 4 KB, i.e.
  // a fixed pipeline latency plus ~0.155 ns per payload byte.
  uint64_t rdma_read_base_ns = 1750;
  uint64_t rdma_write_base_ns = 1300;  // One-sided writes post cheaper.
  double rdma_per_byte_ns = 0.155;
  // Each additional scatter/gather segment beyond the first costs extra WQE
  // processing; the paper observed a "significant slowdown" beyond three
  // segments (Sec. 6.3), modeled as a superlinear step at >3.
  uint64_t rdma_per_seg_ns = 120;
  uint64_t rdma_seg_penalty_ns = 900;  // Added per segment beyond 3.
  // RC transport retry timeout: an op posted toward a crashed node occupies
  // the QP for this long before completing with WcStatus::kTimeout (the
  // simulated analogue of IBV_WC_RETRY_EXC_ERR). Real RNIC retransmit
  // timers run to milliseconds; the model compresses that to a few op
  // latencies so failure detection costs are visible but not dominant.
  uint64_t rdma_op_timeout_ns = 10'000;

  // --- Link serialization ---------------------------------------------------
  // The wire is shared by all queue pairs; each op occupies it for a per-op
  // overhead plus per-byte time. Effective payload bandwidth ~6.4 GB/s,
  // consistent with DiLOS' 3.7 GB/s end-to-end sequential read (Table 2)
  // after software costs.
  uint64_t link_per_op_ns = 200;
  double link_per_byte_ns = 0.155;

  // --- TCP emulation (paper Sec. 6.2, footnote 2) --------------------------
  // AIFM uses TCP; the paper charges 14,000 cycles @2.3 GHz = ~6087 ns per
  // completion to emulate it.
  uint64_t tcp_delay_ns = 6087;

  // --- Page fault exception path (paper Fig. 1: 0.57 us, 9%) ---------------
  uint64_t hw_exception_ns = 450;   // Hardware exception delay.
  uint64_t os_trap_entry_ns = 120;  // OS exception entry/dispatch.

  // --- Fastswap software path (paper Fig. 1 breakdown) ----------------------
  uint64_t fsw_swapcache_mgmt_ns = 550;  // Swap-cache radix tree bookkeeping.
  uint64_t fsw_page_alloc_ns = 450;      // Page allocation inside swap path.
  uint64_t fsw_swap_entry_ns = 500;      // Swap entry / frontswap bookkeeping.
  uint64_t fsw_direct_reclaim_ns = 2800;  // Direct reclamation when offload lags.
  uint64_t fsw_minor_fault_sw_ns = 600;   // Swap-cache lookup + map on minor fault.
  // Fraction of reclaiming faults whose reclamation the dedicated offload
  // thread failed to absorb (Fig. 1 "Average" vs "No reclamation": ~29% of
  // total latency is reclamation even with offloading enabled).
  double fsw_direct_reclaim_fraction = 0.65;

  // --- DiLOS software path (paper Fig. 6: ~49% lower total than Fastswap) ---
  uint64_t dilos_pte_check_ns = 60;   // Unified-page-table tag check.
  uint64_t dilos_map_ns = 60;         // Mapping a fetched frame (PTE store + TLB).
  uint64_t dilos_prefetch_issue_ns = 80;  // Issuing one async prefetch request.
  uint64_t dilos_hit_tracker_ns = 150;    // Scanning accessed bits of one window.

  // --- Common post-arrival work ---------------------------------------------
  uint64_t map_tlb_flush_ns = 90;  // Kernel-side mapping cost shared by systems.

  // --- Async fault pipeline (src/sim/fiber.h, DESIGN.md §12) -----------------
  // Atlas-style user-space swapping reports sub-µs context switches for its
  // green threads (vs multi-µs kernel thread switches): a faulting fiber
  // saves registers and yields in a few hundred ns, and resuming it costs
  // about the same. Coalesced CQ polling amortizes one poll over a whole
  // batch of completions. Charged only with fault_pipeline.depth > 1 —
  // depth == 1 degenerates to the blocking path and must cost identically.
  uint64_t fiber_park_ns = 150;    // Save continuation + switch to next fiber.
  uint64_t fiber_resume_ns = 100;  // Reschedule a ready fiber after harvest.
  uint64_t cq_poll_ns = 120;       // One coalesced completion-queue poll.

  // --- Erasure coding (src/recovery/ec.h) -----------------------------------
  // GF(2^8) decode of one 4 KB page from k survivors: table-driven XOR/mul
  // runs at several GB/s per core on this class of CPU, so a page costs well
  // under a microsecond; charged once per reconstructed page on top of the
  // k parallel survivor reads.
  uint64_t ec_decode_page_ns = 600;

  // --- Compressed local tier (src/tier) --------------------------------------
  // LZ4/Snappy-class byte-LZ on this CPU class runs ~2.5 GB/s compressing and
  // ~8 GB/s decompressing: ~1.6 us to squeeze a 4 KB page, ~0.5 us to expand
  // it. Compression runs on the background reclaim path (spare cores) except
  // under direct reclaim; decompression is charged in the fault path — it is
  // the entire miss penalty of a tier hit, vs the RDMA round trip of a cold
  // miss that goes remote.
  uint64_t tier_compress_page_ns = 1600;
  uint64_t tier_decompress_page_ns = 500;

  // --- Local (non-faulting) access path --------------------------------------
  // Cost of a pin that hits a present PTE: the amortized cache/TLB cost of a
  // local access (sequential accesses mostly hit cache lines; DRAM latency
  // on the miss fraction averages out to a few ns per touch).
  uint64_t local_pin_ns = 2;
  double local_per_byte_ns = 0.03;  // Streaming bandwidth ~33 GB/s.
  uint64_t zero_fill_ns = 350;      // Anonymous first-touch fault service.

  // --- Memory node -----------------------------------------------------------
  // With 2 MB huge pages the whole RNIC page table fits in NIC cache
  // (Sec. 5); with 4 KB pages, PCIe round-trips for page-table walks add
  // latency on a fraction of ops.
  uint64_t memnode_4k_walk_penalty_ns = 250;
  bool memnode_huge_pages = true;

  // Returns the default testbed model.
  static CostModel Default() { return CostModel{}; }

  // Far memory over a modern NVMe drive instead of RDMA (paper Sec. 5.1:
  // "Modern NVMe drives provide enough performance to be used for far
  // memory; thereby DiLOS' design would be valid for NVMe drives").
  // ~12 us 4 KB random read, ~3.2 GB/s streaming.
  static CostModel Nvme() {
    CostModel m;
    m.rdma_read_base_ns = 11'000;
    m.rdma_write_base_ns = 9'000;  // Writes land in the drive's buffer.
    m.rdma_per_byte_ns = 0.30;
    m.link_per_op_ns = 700;  // Submission/completion queue doorbells.
    m.link_per_byte_ns = 0.30;
    return m;
  }

  // Far memory over a SATA SSD — the "traditional block devices are much
  // slower" regime where IO dominates and kernel-path savings wash out.
  static CostModel SataSsd() {
    CostModel m;
    m.rdma_read_base_ns = 90'000;
    m.rdma_write_base_ns = 70'000;
    m.rdma_per_byte_ns = 1.8;  // ~550 MB/s.
    m.link_per_op_ns = 4'000;
    m.link_per_byte_ns = 1.8;
    return m;
  }

  // Fabric latency of a one-sided op carrying `bytes` across `nsegs`
  // scatter/gather segments (excludes link serialization, which rdma::Link
  // accounts for).
  uint64_t ReadLatencyNs(uint64_t bytes, uint32_t nsegs = 1) const {
    return OpLatencyNs(rdma_read_base_ns, bytes, nsegs);
  }
  uint64_t WriteLatencyNs(uint64_t bytes, uint32_t nsegs = 1) const {
    return OpLatencyNs(rdma_write_base_ns, bytes, nsegs);
  }

 private:
  uint64_t OpLatencyNs(uint64_t base, uint64_t bytes, uint32_t nsegs) const {
    uint64_t lat = base + static_cast<uint64_t>(rdma_per_byte_ns * static_cast<double>(bytes));
    if (nsegs > 1) {
      lat += rdma_per_seg_ns * (nsegs - 1);
    }
    if (nsegs > 3) {
      lat += rdma_seg_penalty_ns * (nsegs - 3);
    }
    if (!memnode_huge_pages) {
      lat += memnode_4k_walk_penalty_ns;
    }
    return lat;
  }
};

}  // namespace dilos

#endif  // DILOS_SRC_SIM_COST_MODEL_H_
