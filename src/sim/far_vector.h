// Growable typed array in far memory — the convenience layer applications
// use when they don't know their sizes up front (the std::vector of the
// far-memory world). Growth allocates a double-size region, streams the
// old contents across (far-to-far through local DRAM, like any memcpy a
// paged application performs), and munmaps the old region.
#ifndef DILOS_SRC_SIM_FAR_VECTOR_H_
#define DILOS_SRC_SIM_FAR_VECTOR_H_

#include <cstdint>

#include "src/sim/far_runtime.h"

namespace dilos {

template <typename T>
class FarVector {
 public:
  explicit FarVector(FarRuntime& rt, uint64_t initial_capacity = 64)
      : rt_(&rt), capacity_(initial_capacity < 1 ? 1 : initial_capacity) {
    base_ = rt_->AllocRegion(capacity_ * sizeof(T));
  }

  void PushBack(const T& v) {
    if (size_ == capacity_) {
      Grow(capacity_ * 2);
    }
    rt_->Write<T>(base_ + size_ * sizeof(T), v);
    ++size_;
  }

  T Get(uint64_t i) const { return rt_->Read<T>(base_ + i * sizeof(T)); }
  void Set(uint64_t i, const T& v) { rt_->Write<T>(base_ + i * sizeof(T), v); }

  void PopBack() { --size_; }

  // Shrinks or extends the logical size (new elements are zero: far pages
  // are zero-fill).
  void Resize(uint64_t n) {
    if (n > capacity_) {
      Grow(n);
    }
    size_ = n;
  }

  void Reserve(uint64_t n) {
    if (n > capacity_) {
      Grow(n);
    }
  }

  uint64_t size() const { return size_; }
  uint64_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }
  uint64_t base() const { return base_; }

  ~FarVector() { rt_->FreeRegion(base_, capacity_ * sizeof(T)); }
  FarVector(const FarVector&) = delete;
  FarVector& operator=(const FarVector&) = delete;

 private:
  void Grow(uint64_t new_capacity) {
    uint64_t new_base = rt_->AllocRegion(new_capacity * sizeof(T));
    // Stream the payload across in page-sized chunks.
    uint8_t buf[4096];
    uint64_t bytes = size_ * sizeof(T);
    for (uint64_t off = 0; off < bytes; off += sizeof(buf)) {
      uint64_t chunk = bytes - off < sizeof(buf) ? bytes - off : sizeof(buf);
      rt_->ReadBytes(base_ + off, buf, chunk);
      rt_->WriteBytes(new_base + off, buf, chunk);
    }
    rt_->FreeRegion(base_, capacity_ * sizeof(T));
    base_ = new_base;
    capacity_ = new_capacity;
  }

  FarRuntime* rt_;
  uint64_t base_;
  uint64_t size_ = 0;
  uint64_t capacity_;
};

}  // namespace dilos

#endif  // DILOS_SRC_SIM_FAR_VECTOR_H_
