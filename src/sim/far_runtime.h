// The runtime interface unmodified applications program against.
//
// DiLOS' compatibility story (Sec. 3.3, 5 "Compatibility layer") is that an
// application just mmaps disaggregated memory (ddc_mmap / patched malloc)
// and dereferences pointers; faults are transparent. In the simulation the
// MMU is software, so "dereference" is the Pin() call: it performs the page
// walk, charges the fast-path cost for local pages, and invokes the fault
// machinery for everything else. Both paged systems (DiLOS and the Fastswap
// baseline) implement this interface, so every workload in src/apps runs on
// either system without modification — the paper's compatibility claim in
// code form.
#ifndef DILOS_SRC_SIM_FAR_RUNTIME_H_
#define DILOS_SRC_SIM_FAR_RUNTIME_H_

#include <cstdint>
#include <cstring>

#include "src/sim/clock.h"
#include "src/sim/stats.h"

namespace dilos {

class FarRuntime {
 public:
  virtual ~FarRuntime() = default;

  // ddc_mmap: reserves `bytes` of far virtual address space and returns its
  // base address. Pages are zero-fill-on-first-touch.
  virtual uint64_t AllocRegion(uint64_t bytes) = 0;

  // ddc_munmap: discards [addr, addr+bytes) — local frames are freed, remote
  // copies dropped, and the pages return to zero-fill state.
  virtual void FreeRegion(uint64_t addr, uint64_t bytes) {
    (void)addr;
    (void)bytes;
  }

  // Pins [vaddr, vaddr+len) — which must lie within one page — into local
  // DRAM and returns a host pointer to it, charging simulated time for the
  // walk and any fault handling. The pointer is valid until the next Pin
  // call that may evict (treat it as immediately consumed).
  virtual uint8_t* Pin(uint64_t vaddr, uint32_t len, bool write, int core) = 0;

  // Waits until no fault is left in flight: with the async fault pipeline
  // enabled, parked demand faults may still be awaiting their batched PTE
  // install when a measurement phase ends; Quiesce advances each core's
  // clock to the last completion and commits the remaining installs.
  // Blocking runtimes resolve every fault inside Pin, so the default is a
  // no-op.
  virtual void Quiesce() {}

  virtual Clock& clock(int core) = 0;
  virtual RuntimeStats& stats() = 0;
  virtual int num_cores() const = 0;

  Clock& clock() { return clock(0); }

  // Highest clock across cores — the wall-clock of a parallel phase.
  uint64_t MaxWorkerTimeNs() {
    uint64_t t = 0;
    for (int c = 0; c < num_cores(); ++c) {
      t = clock(c).now() > t ? clock(c).now() : t;
    }
    return t;
  }

  // ---- Non-virtual convenience accessors (handle page crossings) ----------

  void ReadBytes(uint64_t vaddr, void* dst, uint64_t len, int core = 0) {
    Transfer(vaddr, dst, len, /*write=*/false, core);
  }
  void WriteBytes(uint64_t vaddr, const void* src, uint64_t len, int core = 0) {
    Transfer(vaddr, const_cast<void*>(src), len, /*write=*/true, core);
  }

  template <typename T>
  T Read(uint64_t vaddr, int core = 0) {
    T v;
    ReadBytes(vaddr, &v, sizeof(T), core);
    return v;
  }
  template <typename T>
  void Write(uint64_t vaddr, const T& v, int core = 0) {
    WriteBytes(vaddr, &v, sizeof(T), core);
  }

 private:
  void Transfer(uint64_t vaddr, void* host, uint64_t len, bool write, int core) {
    auto* p = static_cast<uint8_t*>(host);
    while (len > 0) {
      uint32_t in_page = static_cast<uint32_t>(4096 - (vaddr & 4095));
      uint32_t chunk = len < in_page ? static_cast<uint32_t>(len) : in_page;
      uint8_t* frame = Pin(vaddr, chunk, write, core);
      if (write) {
        std::memcpy(frame, p, chunk);
      } else {
        std::memcpy(p, frame, chunk);
      }
      vaddr += chunk;
      p += chunk;
      len -= chunk;
    }
  }
};

// Typed fixed-size array living in far memory.
template <typename T>
class FarArray {
 public:
  FarArray(FarRuntime& rt, uint64_t count)
      : rt_(&rt), base_(rt.AllocRegion(count * sizeof(T))), count_(count) {}
  // Adopts an existing region.
  FarArray(FarRuntime& rt, uint64_t base, uint64_t count)
      : rt_(&rt), base_(base), count_(count) {}

  T Get(uint64_t i, int core = 0) const { return rt_->Read<T>(Addr(i), core); }
  void Set(uint64_t i, const T& v, int core = 0) { rt_->Write<T>(Addr(i), v, core); }
  uint64_t Addr(uint64_t i) const { return base_ + i * sizeof(T); }

  uint64_t size() const { return count_; }
  uint64_t base() const { return base_; }
  FarRuntime& runtime() const { return *rt_; }

 private:
  FarRuntime* rt_;
  uint64_t base_;
  uint64_t count_;
};

}  // namespace dilos

#endif  // DILOS_SRC_SIM_FAR_RUNTIME_H_
