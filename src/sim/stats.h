// Simulation statistics: counters, per-component latency breakdowns, and a
// percentile recorder for tail-latency tables.
#ifndef DILOS_SRC_SIM_STATS_H_
#define DILOS_SRC_SIM_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "src/telemetry/histogram.h"

namespace dilos {

// Latency components attributed inside fault handlers. Used by the Fig. 1 /
// Fig. 6 breakdown benchmarks.
enum class LatComp : uint8_t {
  kHwException = 0,   // Hardware exception delivery.
  kOsHandler,         // Trap entry + handler dispatch.
  kSwapCacheMgmt,     // (Fastswap) swap cache bookkeeping.
  kPageAlloc,         // Page/frame allocation.
  kSwapEntry,         // (Fastswap) swap entry + frontswap bookkeeping.
  kFetch,             // Waiting for the remote page via RDMA.
  kReclaim,           // In-path (direct) reclamation.
  kMap,               // Mapping the fetched frame.
  kPrefetch,          // Prefetch issue + hit tracker work in the fault path.
  kDecompress,        // Expanding a compressed-tier page on a tier hit.
  kCount,
};

std::string_view LatCompName(LatComp c);

// Accumulates time per LatComp over many fault events. With a distribution
// array installed (TelemetryConfig::latency_distributions), each Add also
// feeds a per-component LogHistogram so tails are visible, not just means.
class LatencyBreakdown {
 public:
  using Distributions = std::array<LogHistogram, static_cast<size_t>(LatComp::kCount)>;

  void Add(LatComp c, uint64_t ns) {
    total_ns_[static_cast<size_t>(c)] += ns;
    if (dist_ != nullptr) {
      (*dist_)[static_cast<size_t>(c)].Record(ns);
    }
  }
  void CountEvent() { ++events_; }

  // Non-owning: the Telemetry object owns the array. A raw pointer keeps
  // RuntimeStats trivially copyable (Reset() is whole-struct assignment, and
  // the telemetry audit test memset-poisons an instance).
  void set_distributions(Distributions* d) { dist_ = d; }
  Distributions* distributions() const { return dist_; }

  uint64_t total_ns(LatComp c) const { return total_ns_[static_cast<size_t>(c)]; }
  uint64_t events() const { return events_; }

  // Mean nanoseconds of component `c` per recorded event (0 if no events).
  double MeanNs(LatComp c) const {
    return events_ == 0 ? 0.0
                        : static_cast<double>(total_ns(c)) / static_cast<double>(events_);
  }
  // Sum of all component means.
  double TotalMeanNs() const;

  void Reset();

  // Renders a human-readable table of mean ns and percentage per component.
  std::string ToString() const;

 private:
  std::array<uint64_t, static_cast<size_t>(LatComp::kCount)> total_ns_ = {};
  uint64_t events_ = 0;
  Distributions* dist_ = nullptr;
};

// Stores every sample; computes exact percentiles. Intended for up to a few
// million samples (Redis benchmark scale).
class PercentileRecorder {
 public:
  void Record(uint64_t ns) { samples_.push_back(ns); }
  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Exact p-th percentile (p in [0,100]) by nearest-rank; 0 when empty.
  uint64_t Percentile(double p) const;
  double MeanNs() const;
  uint64_t MaxNs() const;

  void Reset() { samples_.clear(); }

 private:
  mutable std::vector<uint64_t> samples_;
};

// Counter set shared by all far-memory runtimes.
struct RuntimeStats {
  uint64_t major_faults = 0;      // Faults that had to fetch from the memory node.
  uint64_t minor_faults = 0;      // Faults resolved locally (swap cache / in-flight page).
  uint64_t zero_fill_faults = 0;  // First-touch anonymous faults (no fetch).
  uint64_t prefetch_issued = 0;   // Pages posted by a prefetcher.
  uint64_t prefetch_mapped_early = 0;  // Prefetched pages mapped before first touch.
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t bytes_fetched = 0;   // Payload bytes read from the memory node.
  uint64_t bytes_written = 0;   // Payload bytes written to the memory node.
  uint64_t subpage_fetches = 0;  // Guide-issued subpage (partial page) reads.
  uint64_t vectored_ops = 0;     // Scatter/gather ops issued by guided paging.

  // --- Recovery subsystem (src/recovery) -----------------------------------
  uint64_t op_timeouts = 0;        // RDMA ops that timed out against a node.
  uint64_t fetch_retries = 0;      // Demand fetches retried after a timeout.
  uint64_t failed_fetches = 0;     // Fetches with no live replica (zero-filled).
  uint64_t degraded_reads = 0;     // Demand reads served by a non-primary replica.
  uint64_t probes_sent = 0;        // Failure-detector heartbeats issued.
  uint64_t probe_misses = 0;       // Heartbeats that went unanswered.
  uint64_t nodes_failed = 0;       // Nodes the failure detector declared dead.
  uint64_t repairs_issued = 0;     // Granule rebuilds scheduled.
  uint64_t repair_granules = 0;    // Granule rebuilds committed.
  uint64_t repair_pages = 0;       // Pages re-replicated by the repair manager.
  uint64_t repair_bytes = 0;       // Repair traffic (read + write payload).
  uint64_t repair_pages_lost = 0;  // Pages with no surviving readable copy.
  uint64_t nodes_readmitted = 0;   // Restored nodes re-admitted as rebuilding.

  // --- Erasure coding (src/recovery/ec.h) -----------------------------------
  uint64_t ec_degraded_reads = 0;       // Demand reads served by reconstruction.
  uint64_t ec_reconstructed_pages = 0;  // Pages decoded from k surviving members.
  uint64_t ec_parity_updates = 0;       // Parity RMW rounds on the write-back path.
  uint64_t ec_parity_bytes = 0;         // Parity traffic (read + write payload).
  uint64_t ec_decode_failures = 0;      // Reconstructions with < k readable members.

  // --- Integrity / chaos (src/recovery/integrity.h, fault_injector.h) -------
  uint64_t checksum_mismatches = 0;    // Page payloads that failed verification.
  uint64_t checksum_write_retries = 0; // Write-backs re-posted after the target-side check.
  uint64_t refetches = 0;              // Demand reads re-issued after a mismatch.
  uint64_t checksum_heals = 0;         // Corrupt stored copies rewritten from a good one.
  uint64_t scrub_pages = 0;            // Remote pages verified by the scrubber.
  uint64_t scrub_repairs = 0;          // Latent corruptions the scrubber repaired.
  uint64_t gray_suspects = 0;          // Gray-failure (latency EWMA) suspicions raised.
  uint64_t repair_no_target = 0;       // Degraded granules with no legal rebuild target.
  uint64_t stale_copies_detected = 0;  // Verified-but-stale copies caught by generation tags.

  // --- Compressed local tier (src/tier) --------------------------------------
  uint64_t tier_hits = 0;    // Faults served by local decompression.
  uint64_t tier_misses = 0;  // Faults that went remote with the tier enabled.
  uint64_t tier_stored_pages = 0;           // Pages admitted into the tier (cumulative).
  uint64_t tier_bypass_incompressible = 0;  // Evictions too dense for the tier.
  uint64_t tier_evictions = 0;              // Tier-pressure evictions pushed remote.
  uint64_t tier_compressed_bytes = 0;       // Compressed payload bytes admitted.
  uint64_t tier_corrupt_drops = 0;          // Blobs that failed decompression, dropped.

  // --- Live migration / drain (src/recovery/migration.h) ---------------------
  uint64_t migrations_started = 0;      // Granule migrations that entered the copy phase.
  uint64_t migrations_committed = 0;    // Migrations whose cutover committed.
  uint64_t migrations_rolled_back = 0;  // Migrations aborted and rolled back pre-commit.
  uint64_t migrations_inflight = 0;     // Gauge: migrations neither committed nor rolled back.
  uint64_t migration_pages = 0;         // Pages copied by the migration manager.
  uint64_t migration_bytes = 0;         // Migration traffic (read + write payload).
  uint64_t migration_reships = 0;       // Dirty pages re-shipped by the catch-up pass.
  uint64_t migration_forwards = 0;      // Reads redirected by a forwarding window.
  uint64_t migration_failbacks = 0;     // Committed cutovers undone (target died in-window).
  uint64_t nodes_drained = 0;           // Nodes fully emptied and retired by DrainNode.
  uint64_t ec_colocated_placements = 0; // EC rebuilds placed with bounded stripe co-location.
  uint64_t readmit_copies_merged = 0;   // Orphaned fresh-by-generation copies merged back.
  uint64_t readmit_orphans_dropped = 0; // Orphaned stale copies dropped on readmission.
  uint64_t fault_retries_suppressed = 0; // Demand retries skipped by the retry budget.

  // --- Multi-tenant policy layer (src/tenant) ---------------------------------
  uint64_t tenant_quota_rejects = 0;   // Write-backs refused on a quota breach.
  uint64_t tenant_quota_reclaims = 0;  // Own-coldest remote drops made for quota room.
  uint64_t hotness_migrations = 0;     // Migrations started by the hotness monitor.

  // --- KV service (src/kv) ----------------------------------------------------
  uint64_t kv_guided_scans = 0;        // Range scans that ran with a scan guide installed.
  uint64_t kv_scan_prefetch_pages = 0; // Leaf pages prefetched by scan guidance.

  // --- Async fault pipeline (src/sim/fiber.h, DESIGN.md §12) ------------------
  uint64_t fault_parks = 0;             // Demand faults that parked a fiber.
  uint64_t fault_resumes = 0;           // Parked fibers resumed by a harvest.
  uint64_t fault_batched_installs = 0;  // Harvest batches committed (1 TLB flush each).
  uint64_t fault_pipeline_stalls = 0;   // Handler waits forced by the depth limit.
  uint64_t fault_inflight = 0;          // Gauge: currently parked demand faults.
  uint64_t fault_inflight_peak = 0;     // High-water mark of fault_inflight.

  LatencyBreakdown fault_breakdown;

  uint64_t total_faults() const { return major_faults + minor_faults + zero_fill_faults; }
  void Reset();
  std::string ToString() const;
};

// Reset() is whole-struct assignment and the telemetry Reset-audit test
// compares poisoned-then-Reset instances bytewise; both need this.
static_assert(std::is_trivially_copyable_v<RuntimeStats>,
              "RuntimeStats must stay trivially copyable");

}  // namespace dilos

#endif  // DILOS_SRC_SIM_STATS_H_
