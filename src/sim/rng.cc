#include "src/sim/rng.h"

namespace dilos {

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  zetan_ = Zeta(n, theta);
  double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

uint64_t ZipfSampler::Next() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  auto v = static_cast<uint64_t>(static_cast<double>(n_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace dilos
