// Simulated per-core nanosecond clock.
//
// Every compute core in the simulation owns one Clock. Time only moves
// forward: workloads charge compute cycles with Advance() and memory-system
// components charge stall time with AdvanceTo() (e.g. waiting for an RDMA
// completion timestamp). Background machinery (cleaner, reclaimer, AIFM
// evacuator) never advances an application clock; it only occupies shared
// fabric resources (see rdma::Link).
#ifndef DILOS_SRC_SIM_CLOCK_H_
#define DILOS_SRC_SIM_CLOCK_H_

#include <algorithm>
#include <cstdint>

namespace dilos {

class Clock {
 public:
  Clock() = default;

  // Current simulated time in nanoseconds since simulation start.
  uint64_t now() const { return now_ns_; }

  // Charges `ns` of work to this core.
  void Advance(uint64_t ns) { now_ns_ += ns; }

  // Moves the clock to `t_ns` if `t_ns` is in the future; otherwise a no-op.
  // Returns the stall time actually waited.
  uint64_t AdvanceTo(uint64_t t_ns) {
    if (t_ns <= now_ns_) {
      return 0;
    }
    uint64_t waited = t_ns - now_ns_;
    now_ns_ = t_ns;
    return waited;
  }

  void Reset() { now_ns_ = 0; }

 private:
  uint64_t now_ns_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_SIM_CLOCK_H_
