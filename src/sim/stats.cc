#include "src/sim/stats.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <numeric>

namespace dilos {

std::string_view LatCompName(LatComp c) {
  switch (c) {
    case LatComp::kHwException:
      return "hw-exception";
    case LatComp::kOsHandler:
      return "os-handler";
    case LatComp::kSwapCacheMgmt:
      return "swap-cache";
    case LatComp::kPageAlloc:
      return "page-alloc";
    case LatComp::kSwapEntry:
      return "swap-entry";
    case LatComp::kFetch:
      return "fetch-remote";
    case LatComp::kReclaim:
      return "reclaim";
    case LatComp::kMap:
      return "map";
    case LatComp::kPrefetch:
      return "prefetch-work";
    case LatComp::kDecompress:
      return "decompress";
    case LatComp::kCount:
      break;
  }
  return "?";
}

double LatencyBreakdown::TotalMeanNs() const {
  double sum = 0.0;
  for (size_t i = 0; i < total_ns_.size(); ++i) {
    sum += MeanNs(static_cast<LatComp>(i));
  }
  return sum;
}

void LatencyBreakdown::Reset() {
  total_ns_.fill(0);
  events_ = 0;
}

std::string LatencyBreakdown::ToString() const {
  std::string out;
  char line[128];
  double total = TotalMeanNs();
  for (size_t i = 0; i < total_ns_.size(); ++i) {
    auto c = static_cast<LatComp>(i);
    double mean = MeanNs(c);
    if (mean == 0.0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "  %-14s %8.0f ns  (%5.1f%%)\n",
                  std::string(LatCompName(c)).c_str(), mean,
                  total > 0 ? 100.0 * mean / total : 0.0);
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-14s %8.0f ns  over %llu events\n", "TOTAL", total,
                static_cast<unsigned long long>(events_));
  out += line;
  return out;
}

uint64_t PercentileRecorder::Percentile(double p) const {
  if (samples_.empty()) {
    return 0;
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t idx = static_cast<size_t>(std::llround(rank));
  idx = std::min(idx, samples_.size() - 1);
  std::nth_element(samples_.begin(), samples_.begin() + static_cast<ptrdiff_t>(idx),
                   samples_.end());
  return samples_[idx];
}

double PercentileRecorder::MeanNs() const {
  if (samples_.empty()) {
    return 0.0;
  }
  unsigned __int128 sum = 0;
  for (uint64_t s : samples_) {
    sum += s;
  }
  return static_cast<double>(sum) / static_cast<double>(samples_.size());
}

uint64_t PercentileRecorder::MaxNs() const {
  if (samples_.empty()) {
    return 0;
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

void RuntimeStats::Reset() {
  // Whole-struct assignment covers every counter by construction — no list
  // to keep in sync as sections grow. The distribution hook survives (the
  // histograms it points at are owned by Telemetry and cleared here too).
  LatencyBreakdown::Distributions* dist = fault_breakdown.distributions();
  *this = RuntimeStats{};
  if (dist != nullptr) {
    for (LogHistogram& h : *dist) {
      h.Reset();
    }
    fault_breakdown.set_distributions(dist);
  }
}

std::string RuntimeStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "faults: major=%llu minor=%llu zerofill=%llu | prefetch: issued=%llu "
                "early-mapped=%llu | evict=%llu wb=%llu | bytes: in=%llu out=%llu | "
                "subpage=%llu vectored=%llu\n",
                static_cast<unsigned long long>(major_faults),
                static_cast<unsigned long long>(minor_faults),
                static_cast<unsigned long long>(zero_fill_faults),
                static_cast<unsigned long long>(prefetch_issued),
                static_cast<unsigned long long>(prefetch_mapped_early),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(writebacks),
                static_cast<unsigned long long>(bytes_fetched),
                static_cast<unsigned long long>(bytes_written),
                static_cast<unsigned long long>(subpage_fetches),
                static_cast<unsigned long long>(vectored_ops));
  std::string out(buf);
  if (op_timeouts != 0 || probes_sent != 0 || nodes_failed != 0 || repairs_issued != 0) {
    std::snprintf(buf, sizeof(buf),
                  "recovery: timeouts=%llu retries=%llu failed=%llu degraded=%llu | "
                  "probes=%llu/%llu missed | nodes-dead=%llu | repair: %llu/%llu granules "
                  "%llu pages %llu bytes lost=%llu\n",
                  static_cast<unsigned long long>(op_timeouts),
                  static_cast<unsigned long long>(fetch_retries),
                  static_cast<unsigned long long>(failed_fetches),
                  static_cast<unsigned long long>(degraded_reads),
                  static_cast<unsigned long long>(probe_misses),
                  static_cast<unsigned long long>(probes_sent),
                  static_cast<unsigned long long>(nodes_failed),
                  static_cast<unsigned long long>(repair_granules),
                  static_cast<unsigned long long>(repairs_issued),
                  static_cast<unsigned long long>(repair_pages),
                  static_cast<unsigned long long>(repair_bytes),
                  static_cast<unsigned long long>(repair_pages_lost));
    out += buf;
  }
  if (ec_degraded_reads != 0 || ec_parity_updates != 0 || ec_reconstructed_pages != 0 ||
      ec_decode_failures != 0 || nodes_readmitted != 0) {
    std::snprintf(buf, sizeof(buf),
                  "ec: degraded=%llu reconstructed=%llu decode-failed=%llu | parity: "
                  "%llu updates %llu bytes | nodes-readmitted=%llu\n",
                  static_cast<unsigned long long>(ec_degraded_reads),
                  static_cast<unsigned long long>(ec_reconstructed_pages),
                  static_cast<unsigned long long>(ec_decode_failures),
                  static_cast<unsigned long long>(ec_parity_updates),
                  static_cast<unsigned long long>(ec_parity_bytes),
                  static_cast<unsigned long long>(nodes_readmitted));
    out += buf;
  }
  if (checksum_mismatches != 0 || refetches != 0 || checksum_heals != 0 || scrub_pages != 0 ||
      gray_suspects != 0 || repair_no_target != 0 || stale_copies_detected != 0) {
    std::snprintf(buf, sizeof(buf),
                  "integrity: mismatches=%llu wr-retries=%llu refetches=%llu heals=%llu "
                  "stale=%llu | scrub: %llu pages %llu repairs | gray-suspects=%llu "
                  "repair-no-target=%llu\n",
                  static_cast<unsigned long long>(checksum_mismatches),
                  static_cast<unsigned long long>(checksum_write_retries),
                  static_cast<unsigned long long>(refetches),
                  static_cast<unsigned long long>(checksum_heals),
                  static_cast<unsigned long long>(stale_copies_detected),
                  static_cast<unsigned long long>(scrub_pages),
                  static_cast<unsigned long long>(scrub_repairs),
                  static_cast<unsigned long long>(gray_suspects),
                  static_cast<unsigned long long>(repair_no_target));
    out += buf;
  }
  if (tier_hits != 0 || tier_misses != 0 || tier_stored_pages != 0 ||
      tier_bypass_incompressible != 0) {
    std::snprintf(buf, sizeof(buf),
                  "tier: hits=%llu misses=%llu stored=%llu bypassed=%llu evicted=%llu "
                  "compressed-bytes=%llu corrupt-drops=%llu\n",
                  static_cast<unsigned long long>(tier_hits),
                  static_cast<unsigned long long>(tier_misses),
                  static_cast<unsigned long long>(tier_stored_pages),
                  static_cast<unsigned long long>(tier_bypass_incompressible),
                  static_cast<unsigned long long>(tier_evictions),
                  static_cast<unsigned long long>(tier_compressed_bytes),
                  static_cast<unsigned long long>(tier_corrupt_drops));
    out += buf;
  }
  if (kv_guided_scans != 0 || kv_scan_prefetch_pages != 0) {
    std::snprintf(buf, sizeof(buf), "kv: guided-scans=%llu scan-prefetched=%llu\n",
                  static_cast<unsigned long long>(kv_guided_scans),
                  static_cast<unsigned long long>(kv_scan_prefetch_pages));
    out += buf;
  }
  if (fault_parks != 0 || fault_pipeline_stalls != 0) {
    std::snprintf(buf, sizeof(buf),
                  "pipeline: parks=%llu resumes=%llu batches=%llu stalls=%llu "
                  "inflight=%llu (peak %llu)\n",
                  static_cast<unsigned long long>(fault_parks),
                  static_cast<unsigned long long>(fault_resumes),
                  static_cast<unsigned long long>(fault_batched_installs),
                  static_cast<unsigned long long>(fault_pipeline_stalls),
                  static_cast<unsigned long long>(fault_inflight),
                  static_cast<unsigned long long>(fault_inflight_peak));
    out += buf;
  }
  return out + fault_breakdown.ToString();
}

}  // namespace dilos
