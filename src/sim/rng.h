// Deterministic pseudo-random generators for workload synthesis.
#ifndef DILOS_SRC_SIM_RNG_H_
#define DILOS_SRC_SIM_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace dilos {

// xorshift64* — fast, deterministic, good enough for workload generation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed ? seed : 1) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  // Uniform in [0, n).
  uint64_t NextBelow(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform in [lo, hi].
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

 private:
  uint64_t state_;
};

// Zipfian sampler over [0, n) with parameter theta, using the Gray et al.
// rejection-free method (precomputed zeta).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta, uint64_t seed = 42);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

}  // namespace dilos

#endif  // DILOS_SRC_SIM_RNG_H_
