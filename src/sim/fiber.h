// Lightweight continuation scheduler for the async demand-fault pipeline.
//
// Atlas-style user-space swapping ("Revisiting Swapping in User-space with
// Lightweight Threading") keeps fault throughput bounded by link bandwidth
// instead of fault-path latency: the faulting fiber posts its RDMA read,
// saves a µs-scale continuation, and yields the core to the next runnable
// fiber; a coalesced CQ poll later harvests whole batches of completions
// and commits their PTEs with one TLB shootdown per batch.
//
// This header is the sim-layer half of that design. A FaultPipeline holds
// the parked continuations of one core: admission is bounded by `depth`
// (the backpressure knob), harvest returns every fiber whose completion
// timestamp has passed — ordered by (done_ns, admission seq) so resume
// order is deterministic — and external resolution (a second touch of the
// page, or region teardown) retires a fiber without a resume. The runtime
// (src/dilos/runtime.cc) owns the other half: what a park/resume costs,
// what a batched install commits, and how retry/EC/tier recovery states
// fold into the parked fiber's private timeline.
#ifndef DILOS_SRC_SIM_FIBER_H_
#define DILOS_SRC_SIM_FIBER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace dilos {

// DilosConfig::fault_pipeline. Off by default: the demand-fault path blocks
// its core until the RDMA read completes, exactly as before this subsystem
// existed. depth == 1 admits one outstanding fault per core — blocking
// semantics expressed through the pipeline machinery, and the equivalence
// the CI gate in bench_table2_seq_throughput asserts.
struct FaultPipelineConfig {
  bool enabled = false;
  uint32_t depth = 8;  // Max outstanding demand faults per core (>= 1).
};

// Lifecycle of one parked fault continuation. The sim resolves the whole
// remote timeline (retries, backoff, EC decode, failover) at issue time via
// DemandFetch, so the states a real fiber would sleep through are collapsed
// into the recorded done_ns; what remains observable is park -> ready ->
// installed, which is what the interleaving tests pin down.
enum class FiberState : uint8_t {
  kParked = 0,  // Read posted, core released, completion pending.
  kReady,       // Completion timestamp passed; harvested, install pending.
  kInstalled,   // PTE committed by a batched install; fiber retired.
};

struct FaultFiber {
  uint64_t page_va = 0;
  uint32_t frame = 0;     // Frame the in-flight read fills.
  uint64_t issue_ns = 0;  // When the fault posted its read and parked.
  uint64_t done_ns = 0;   // Completion timestamp (includes retry/EC/backoff).
  uint64_t seq = 0;       // Admission order; tie-break for deterministic resume.
  bool write = false;     // Faulting access was a write (install sets dirty).
  FiberState state = FiberState::kParked;
};

// Per-core ring of outstanding fault continuations. Deliberately tiny and
// deterministic: depth is single-digit-to-dozens, so linear scans beat any
// heap, and every ordering rule is explicit enough to unit-test.
class FaultPipeline {
 public:
  explicit FaultPipeline(uint32_t depth) : depth_(depth == 0 ? 1 : depth) {
    fibers_.reserve(depth_);
  }

  uint32_t depth() const { return depth_; }
  size_t size() const { return fibers_.size(); }
  bool empty() const { return fibers_.empty(); }
  // Admission backpressure: a full pipeline parks no further faults until
  // the oldest outstanding one is resumed.
  bool Full() const { return fibers_.size() >= depth_; }

  // Earliest completion among parked fibers — the stall target when the
  // depth limit is hit. UINT64_MAX when empty.
  uint64_t OldestDoneNs() const {
    uint64_t t = UINT64_MAX;
    for (const FaultFiber& f : fibers_) {
      t = std::min(t, f.done_ns);
    }
    return t;
  }

  // Parks one fault. Caller must check Full() first (the runtime stalls and
  // harvests before admitting; tests assert the refusal instead).
  bool Admit(uint64_t page_va, uint32_t frame, uint64_t issue_ns, uint64_t done_ns,
             bool write) {
    if (Full()) {
      return false;
    }
    FaultFiber f;
    f.page_va = page_va;
    f.frame = frame;
    f.issue_ns = issue_ns;
    f.done_ns = done_ns;
    f.seq = next_seq_++;
    f.write = write;
    f.state = FiberState::kParked;
    fibers_.push_back(f);
    return true;
  }

  // Coalesced CQ poll: moves every fiber with done_ns <= now into *out
  // (appended, marked kReady), ordered by (done_ns, seq) so the resume
  // sequence is deterministic even when the link reorders completions.
  // Returns the number harvested.
  size_t HarvestUpTo(uint64_t now, std::vector<FaultFiber>* out) {
    size_t start = out->size();
    for (size_t i = 0; i < fibers_.size();) {
      if (fibers_[i].done_ns <= now) {
        fibers_[i].state = FiberState::kReady;
        out->push_back(fibers_[i]);
        fibers_[i] = fibers_.back();
        fibers_.pop_back();
      } else {
        ++i;
      }
    }
    std::sort(out->begin() + static_cast<ptrdiff_t>(start), out->end(),
              [](const FaultFiber& a, const FaultFiber& b) {
                return a.done_ns != b.done_ns ? a.done_ns < b.done_ns : a.seq < b.seq;
              });
    return out->size() - start;
  }

  // External resolution: the page was resolved without a pipeline resume (a
  // second touch waited on it directly, or FreeRegion tore the region down).
  // True if a fiber for `page_va` was parked here and is now retired.
  bool Retire(uint64_t page_va) {
    for (size_t i = 0; i < fibers_.size(); ++i) {
      if (fibers_[i].page_va == page_va) {
        fibers_[i] = fibers_.back();
        fibers_.pop_back();
        return true;
      }
    }
    return false;
  }

  // Parked pages, unordered (tests / debugging).
  const std::vector<FaultFiber>& parked() const { return fibers_; }

 private:
  uint32_t depth_;
  uint64_t next_seq_ = 0;
  std::vector<FaultFiber> fibers_;  // Unordered; <= depth_ entries.
};

}  // namespace dilos

#endif  // DILOS_SRC_SIM_FIBER_H_
