// Lightweight paging-event tracer.
//
// A bounded ring of timestamped events the runtimes emit when tracing is
// enabled: fault handling, prefetch issue, eviction, write-back. Used to
// debug paging behavior ("why did this page refault?") and by tests to
// assert event ordering without poking at internals. Disabled by default;
// recording is a few stores.
#ifndef DILOS_SRC_SIM_TRACE_H_
#define DILOS_SRC_SIM_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dilos {

enum class TraceEvent : uint8_t {
  kMajorFault,
  kMinorFault,
  kZeroFill,
  kPrefetchIssue,
  kEvict,
  kWriteback,
  kActionFetch,
  kNodeFailover,
  // Recovery subsystem (src/recovery): detail carries the node id.
  kOpTimeout,     // An RDMA op timed out against an unreachable node.
  kProbeMiss,     // A failure-detector heartbeat went unanswered.
  kNodeSuspect,   // Detector moved a node to the suspect state.
  kNodeDead,      // Detector declared a node dead.
  kRepairStart,   // Repair of one under-replicated granule scheduled.
  kRepairDone,    // Granule restored to full replication (remap committed).
  kDegradedRead,  // Demand read served by a non-primary replica.
  // Erasure coding (src/recovery/ec.h).
  kParityUpdate,    // Cleaner RMW'd a stripe's parity members for one page.
  kEcReconstruct,   // A page was decoded from k surviving stripe members.
  kNodeReadmitted,  // Detector re-admitted a restored node as rebuilding.
  // Integrity / chaos (src/recovery/integrity.h): detail is 0 for a read-
  // side mismatch, 1 for a write-side (ICRC-analog) one, node id otherwise.
  kChecksumMismatch,  // A page payload failed checksum verification.
  kChecksumHeal,      // A corrupt stored copy was rewritten from a good one.
  kScrubRepair,       // The background scrubber repaired latent corruption.
  kGraySuspect,       // Latency EWMA marked an alive-but-slow node suspect.
  kGrayClear,         // A gray-suspected node's latency recovered.
  kRepairNoTarget,    // A degraded granule found no legal rebuild target.
  // Compressed local tier (src/tier).
  kTierHit,      // Fault served by local decompression (detail: 1 if dirty).
  kTierAdmit,    // Evicted page compressed into the tier (detail: csize).
  kTierEvict,    // Tier pressure pushed a compressed page remote.
  kTierCorrupt,  // A blob failed decompression and was dropped (content lost).
  // Write-generation staleness (src/recovery/integrity.h): a verified-but-
  // stale copy (missed write-backs behind a partition) was detected and
  // bypassed. detail carries the node id.
  kStaleCopy,
};

inline const char* TraceEventName(TraceEvent e) {
  switch (e) {
    case TraceEvent::kMajorFault:
      return "major-fault";
    case TraceEvent::kMinorFault:
      return "minor-fault";
    case TraceEvent::kZeroFill:
      return "zero-fill";
    case TraceEvent::kPrefetchIssue:
      return "prefetch";
    case TraceEvent::kEvict:
      return "evict";
    case TraceEvent::kWriteback:
      return "writeback";
    case TraceEvent::kActionFetch:
      return "action-fetch";
    case TraceEvent::kNodeFailover:
      return "failover";
    case TraceEvent::kOpTimeout:
      return "op-timeout";
    case TraceEvent::kProbeMiss:
      return "probe-miss";
    case TraceEvent::kNodeSuspect:
      return "node-suspect";
    case TraceEvent::kNodeDead:
      return "node-dead";
    case TraceEvent::kRepairStart:
      return "repair-start";
    case TraceEvent::kRepairDone:
      return "repair-done";
    case TraceEvent::kDegradedRead:
      return "degraded-read";
    case TraceEvent::kParityUpdate:
      return "parity-update";
    case TraceEvent::kEcReconstruct:
      return "ec-reconstruct";
    case TraceEvent::kNodeReadmitted:
      return "node-readmit";
    case TraceEvent::kChecksumMismatch:
      return "checksum-mismatch";
    case TraceEvent::kChecksumHeal:
      return "checksum-heal";
    case TraceEvent::kScrubRepair:
      return "scrub-repair";
    case TraceEvent::kGraySuspect:
      return "gray-suspect";
    case TraceEvent::kGrayClear:
      return "gray-clear";
    case TraceEvent::kRepairNoTarget:
      return "repair-no-target";
    case TraceEvent::kTierHit:
      return "tier-hit";
    case TraceEvent::kTierAdmit:
      return "tier-admit";
    case TraceEvent::kTierEvict:
      return "tier-evict";
    case TraceEvent::kTierCorrupt:
      return "tier-corrupt";
    case TraceEvent::kStaleCopy:
      return "stale-copy";
  }
  return "?";
}

struct TraceRecord {
  uint64_t time_ns = 0;
  TraceEvent event = TraceEvent::kMajorFault;
  uint64_t page_va = 0;
  uint32_t detail = 0;  // Event-specific: latency ns, node id, ...
};

class Tracer {
 public:
  explicit Tracer(size_t capacity = 0) : capacity_(capacity) {
    ring_.reserve(capacity);
  }

  bool enabled() const { return capacity_ != 0; }

  void Record(uint64_t time_ns, TraceEvent event, uint64_t page_va, uint32_t detail = 0) {
    if (capacity_ == 0) {
      return;
    }
    if (ring_.size() < capacity_) {
      ring_.push_back({time_ns, event, page_va, detail});
    } else {
      ring_[next_ % capacity_] = {time_ns, event, page_va, detail};
    }
    ++next_;
  }

  // Events in chronological order (oldest surviving first).
  std::vector<TraceRecord> Snapshot() const {
    std::vector<TraceRecord> out;
    if (capacity_ == 0 || ring_.empty()) {
      return out;
    }
    size_t start = next_ > capacity_ ? next_ % capacity_ : 0;
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  uint64_t total_recorded() const { return next_; }

  // Count of a given event among surviving records.
  uint64_t Count(TraceEvent e) const {
    uint64_t n = 0;
    for (const TraceRecord& r : ring_) {
      if (r.event == e) {
        ++n;
      }
    }
    return n;
  }

  std::string ToString(size_t max_lines = 50) const {
    std::string out;
    char line[96];
    auto snap = Snapshot();
    size_t start = snap.size() > max_lines ? snap.size() - max_lines : 0;
    for (size_t i = start; i < snap.size(); ++i) {
      std::snprintf(line, sizeof(line), "%12llu ns  %-12s page=0x%llx detail=%u\n",
                    static_cast<unsigned long long>(snap[i].time_ns),
                    TraceEventName(snap[i].event),
                    static_cast<unsigned long long>(snap[i].page_va), snap[i].detail);
      out += line;
    }
    return out;
  }

 private:
  size_t capacity_;
  std::vector<TraceRecord> ring_;
  uint64_t next_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_SIM_TRACE_H_
