// Lightweight paging-event tracer.
//
// A bounded ring of timestamped events the runtimes emit when tracing is
// enabled: fault handling, prefetch issue, eviction, write-back. Used to
// debug paging behavior ("why did this page refault?") and by tests to
// assert event ordering without poking at internals. Disabled by default;
// recording is a few stores.
//
// Two optional extensions, both off unless explicitly enabled:
//  - A TraceSink tee (set_sink) forwards every Record() call to a second
//    consumer — the telemetry flight recorder uses it to keep its own
//    always-on cheap ring without the sim layer depending on telemetry.
//  - Causal spans (EnableSpans): begin/end records with a fault-scoped id
//    and parent link, so a demand fault's children (fetch attempt, retry
//    backoff, failover, EC decode, tier decompress, checksum heal) nest
//    under it. ToChromeJson() exports spans + point events as Chrome
//    trace-event JSON that loads in Perfetto / chrome://tracing.
#ifndef DILOS_SRC_SIM_TRACE_H_
#define DILOS_SRC_SIM_TRACE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dilos {

enum class TraceEvent : uint8_t {
  kMajorFault,
  kMinorFault,
  kZeroFill,
  kPrefetchIssue,
  kEvict,
  kWriteback,
  kActionFetch,
  // Recovery subsystem (src/recovery): detail carries the node id.
  kOpTimeout,     // An RDMA op timed out against an unreachable node.
  kProbeMiss,     // A failure-detector heartbeat went unanswered.
  kNodeSuspect,   // Detector moved a node to the suspect state.
  kNodeDead,      // Detector declared a node dead.
  kRepairStart,   // Repair of one under-replicated granule scheduled.
  kRepairDone,    // Granule restored to full replication (remap committed).
  kDegradedRead,  // Demand read served by a non-primary replica.
  // Erasure coding (src/recovery/ec.h).
  kParityUpdate,    // Cleaner RMW'd a stripe's parity members for one page.
  kEcReconstruct,   // A page was decoded from k surviving stripe members.
  kNodeReadmitted,  // Detector re-admitted a restored node as rebuilding.
  // Integrity / chaos (src/recovery/integrity.h): detail is 0 for a read-
  // side mismatch, 1 for a write-side (ICRC-analog) one, node id otherwise.
  kChecksumMismatch,  // A page payload failed checksum verification.
  kChecksumHeal,      // A corrupt stored copy was rewritten from a good one.
  kScrubRepair,       // The background scrubber repaired latent corruption.
  kGraySuspect,       // Latency EWMA marked an alive-but-slow node suspect.
  kGrayClear,         // A gray-suspected node's latency recovered.
  kRepairNoTarget,    // A degraded granule found no legal rebuild target.
  // Compressed local tier (src/tier).
  kTierHit,      // Fault served by local decompression (detail: 1 if dirty).
  kTierAdmit,    // Evicted page compressed into the tier (detail: csize).
  kTierEvict,    // Tier pressure pushed a compressed page remote.
  kTierCorrupt,  // A blob failed decompression and was dropped (content lost).
  // Write-generation staleness (src/recovery/integrity.h): a verified-but-
  // stale copy (missed write-backs behind a partition) was detected and
  // bypassed. detail carries the node id.
  kStaleCopy,
  // KV service (src/kv): page_va is the first planned leaf page.
  kKvScan,          // A guided range scan began (detail: planned leaf count).
  kKvScanPrefetch,  // Leaves prefetched for a scan (detail: page count).
  // Live migration / drain (src/recovery/migration.h): page_va is the
  // granule base; detail carries the node id unless noted.
  kMigrateStart,    // A granule migration entered the copy phase (detail: target).
  kMigrateCommit,   // Cutover committed; the forwarding window opened (detail: target).
  kMigrateAbort,    // Migration rolled back pre-commit (detail: target).
  kMigrateForward,  // A read that raced the remap was redirected (detail: new node).
  kMigrateFailback, // Target died inside the window; source restored (detail: target).
  kNodeDraining,    // DrainNode marked a node draining (page_va unused).
  kNodeDrained,     // A drained node was emptied and retired (page_va unused).
  kReadmitMerge,    // A fresh orphaned copy rejoined the replica set on readmission.
  kReadmitOrphanDrop,  // A stale orphaned copy was dropped on readmission.
  kEcCoLocated,     // An EC rebuild target shares a node with another stripe member.
  kTenantQuotaReject,   // A write-back was refused on a tenant quota breach.
  kTenantQuotaReclaim,  // A tenant's own coldest remote page was dropped for quota room.
  kHotnessMigrate,  // The hotness monitor started a migration (detail: hot<<8|cold).
  kSloBreach,       // A tenant's SLO burn-rate alert fired (detail: tenant id).
};

inline const char* TraceEventName(TraceEvent e) {
  switch (e) {
    case TraceEvent::kMajorFault:
      return "major-fault";
    case TraceEvent::kMinorFault:
      return "minor-fault";
    case TraceEvent::kZeroFill:
      return "zero-fill";
    case TraceEvent::kPrefetchIssue:
      return "prefetch";
    case TraceEvent::kEvict:
      return "evict";
    case TraceEvent::kWriteback:
      return "writeback";
    case TraceEvent::kActionFetch:
      return "action-fetch";
    case TraceEvent::kOpTimeout:
      return "op-timeout";
    case TraceEvent::kProbeMiss:
      return "probe-miss";
    case TraceEvent::kNodeSuspect:
      return "node-suspect";
    case TraceEvent::kNodeDead:
      return "node-dead";
    case TraceEvent::kRepairStart:
      return "repair-start";
    case TraceEvent::kRepairDone:
      return "repair-done";
    case TraceEvent::kDegradedRead:
      return "degraded-read";
    case TraceEvent::kParityUpdate:
      return "parity-update";
    case TraceEvent::kEcReconstruct:
      return "ec-reconstruct";
    case TraceEvent::kNodeReadmitted:
      return "node-readmit";
    case TraceEvent::kChecksumMismatch:
      return "checksum-mismatch";
    case TraceEvent::kChecksumHeal:
      return "checksum-heal";
    case TraceEvent::kScrubRepair:
      return "scrub-repair";
    case TraceEvent::kGraySuspect:
      return "gray-suspect";
    case TraceEvent::kGrayClear:
      return "gray-clear";
    case TraceEvent::kRepairNoTarget:
      return "repair-no-target";
    case TraceEvent::kTierHit:
      return "tier-hit";
    case TraceEvent::kTierAdmit:
      return "tier-admit";
    case TraceEvent::kTierEvict:
      return "tier-evict";
    case TraceEvent::kTierCorrupt:
      return "tier-corrupt";
    case TraceEvent::kStaleCopy:
      return "stale-copy";
    case TraceEvent::kKvScan:
      return "kv-scan";
    case TraceEvent::kKvScanPrefetch:
      return "kv-scan-prefetch";
    case TraceEvent::kMigrateStart:
      return "migrate-start";
    case TraceEvent::kMigrateCommit:
      return "migrate-commit";
    case TraceEvent::kMigrateAbort:
      return "migrate-abort";
    case TraceEvent::kMigrateForward:
      return "migrate-forward";
    case TraceEvent::kMigrateFailback:
      return "migrate-failback";
    case TraceEvent::kNodeDraining:
      return "node-draining";
    case TraceEvent::kNodeDrained:
      return "node-drained";
    case TraceEvent::kReadmitMerge:
      return "readmit-merge";
    case TraceEvent::kReadmitOrphanDrop:
      return "readmit-orphan-drop";
    case TraceEvent::kEcCoLocated:
      return "ec-colocated";
    case TraceEvent::kTenantQuotaReject:
      return "tenant-quota-reject";
    case TraceEvent::kTenantQuotaReclaim:
      return "tenant-quota-reclaim";
    case TraceEvent::kHotnessMigrate:
      return "hotness-migrate";
    case TraceEvent::kSloBreach:
      return "slo-breach";
  }
  return "?";
}

struct TraceRecord {
  uint64_t time_ns = 0;
  TraceEvent event = TraceEvent::kMajorFault;
  uint64_t page_va = 0;
  uint32_t detail = 0;  // Event-specific: latency ns, node id, ...
};

// Secondary consumer of trace records (the telemetry flight recorder). A
// sink sees every Record() call even when the primary ring is disabled
// (trace_capacity == 0), so the flight recorder can stay always-on while
// the debug ring stays off.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnTrace(const TraceRecord& r) = 0;
};

// Span kinds on the fault path. A kFault span is the root; everything the
// runtime does to resolve that fault opens a child span under it.
enum class SpanKind : uint8_t {
  kFault = 0,       // Demand fault, entry to map (root).
  kFetchAttempt,    // One remote read attempt against one replica.
  kRetryBackoff,    // Exponential-backoff wait between attempts.
  kEcDecode,        // EC reconstruction from k surviving members.
  kTierDecompress,  // Local compressed-tier hit expansion.
  kHeal,            // Checksum heal rewrite of a corrupt stored copy.
  kFaultPark,       // Fiber parked: read posted, core released (pipeline).
  kFaultResume,     // Harvest batch: coalesced poll + batched PTE install.
  kMigrateGranule,  // One granule's copy -> freeze -> remap -> forward lifetime.
  kCount,
};

inline const char* SpanKindName(SpanKind k) {
  switch (k) {
    case SpanKind::kFault:
      return "fault";
    case SpanKind::kFetchAttempt:
      return "fetch-attempt";
    case SpanKind::kRetryBackoff:
      return "retry-backoff";
    case SpanKind::kEcDecode:
      return "ec-decode";
    case SpanKind::kTierDecompress:
      return "tier-decompress";
    case SpanKind::kHeal:
      return "heal";
    case SpanKind::kFaultPark:
      return "fault-park";
    case SpanKind::kFaultResume:
      return "fault-resume";
    case SpanKind::kMigrateGranule:
      return "migrate-granule";
    case SpanKind::kCount:
      break;
  }
  return "?";
}

struct SpanRecord {
  uint64_t begin_ns = 0;
  uint64_t end_ns = 0;
  uint64_t page_va = 0;
  uint32_t id = 0;      // Fault-scoped span id, 1-based; 0 is "no span".
  uint32_t parent = 0;  // Enclosing span's id; 0 for roots.
  uint32_t detail = 0;  // Kind-specific: node id, attempt #, ...
  SpanKind kind = SpanKind::kFault;
};

class Tracer {
 public:
  explicit Tracer(size_t capacity = 0) : capacity_(capacity) {
    ring_.reserve(capacity);
  }

  bool enabled() const { return capacity_ != 0; }

  void set_sink(TraceSink* sink) { sink_ = sink; }

  void Record(uint64_t time_ns, TraceEvent event, uint64_t page_va, uint32_t detail = 0) {
    if (sink_ != nullptr) {
      sink_->OnTrace({time_ns, event, page_va, detail});
    }
    if (capacity_ == 0) {
      return;
    }
    if (ring_.size() < capacity_) {
      ring_.push_back({time_ns, event, page_va, detail});
    } else {
      ring_[next_ % capacity_] = {time_ns, event, page_va, detail};
    }
    ++next_;
  }

  // Events in chronological order (oldest surviving first).
  std::vector<TraceRecord> Snapshot() const {
    std::vector<TraceRecord> out;
    if (capacity_ == 0 || ring_.empty()) {
      return out;
    }
    size_t start = next_ > capacity_ ? next_ % capacity_ : 0;
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  uint64_t total_recorded() const { return next_; }

  // Count of a given event among surviving records.
  uint64_t Count(TraceEvent e) const {
    uint64_t n = 0;
    for (const TraceRecord& r : ring_) {
      if (r.event == e) {
        ++n;
      }
    }
    return n;
  }

  std::string ToString(size_t max_lines = 50) const {
    std::string out;
    char line[96];
    auto snap = Snapshot();
    size_t start = snap.size() > max_lines ? snap.size() - max_lines : 0;
    for (size_t i = start; i < snap.size(); ++i) {
      std::snprintf(line, sizeof(line), "%12llu ns  %-12s page=0x%llx detail=%u\n",
                    static_cast<unsigned long long>(snap[i].time_ns),
                    TraceEventName(snap[i].event),
                    static_cast<unsigned long long>(snap[i].page_va), snap[i].detail);
      out += line;
    }
    return out;
  }

  // --- Causal spans ----------------------------------------------------------

  void EnableSpans(size_t capacity) {
    span_capacity_ = capacity;
    spans_.reserve(capacity);
  }
  bool spans_enabled() const { return span_capacity_ != 0; }

  // Opens a span under the innermost still-open one (the sim is single
  // threaded, so lexical nesting IS causal nesting). Returns the span id,
  // or 0 when spans are disabled — EndSpan(0, ...) is a no-op, so call
  // sites need no guards of their own.
  uint32_t BeginSpan(SpanKind kind, uint64_t now_ns, uint64_t page_va, uint32_t detail = 0) {
    if (span_capacity_ == 0) {
      return 0;
    }
    SpanRecord r;
    r.begin_ns = now_ns;
    r.page_va = page_va;
    r.id = ++span_seq_;
    r.parent = current_parent_;
    r.detail = detail;
    r.kind = kind;
    open_.push_back(r);
    current_parent_ = r.id;
    return r.id;
  }

  void EndSpan(uint32_t id, uint64_t now_ns) {
    if (id == 0) {
      return;
    }
    for (size_t i = open_.size(); i-- > 0;) {
      if (open_[i].id == id) {
        SpanRecord r = open_[i];
        r.end_ns = now_ns;
        open_.erase(open_.begin() + static_cast<ptrdiff_t>(i));
        current_parent_ = r.parent;
        PushSpan(r);
        return;
      }
    }
  }

  uint32_t current_parent() const { return current_parent_; }
  uint64_t total_spans() const { return span_next_; }
  size_t open_spans() const { return open_.size(); }

  // Closed spans in completion order (oldest surviving first).
  std::vector<SpanRecord> SpanSnapshot() const {
    std::vector<SpanRecord> out;
    if (span_capacity_ == 0 || spans_.empty()) {
      return out;
    }
    size_t start = span_next_ > span_capacity_ ? span_next_ % span_capacity_ : 0;
    for (size_t i = 0; i < spans_.size(); ++i) {
      out.push_back(spans_[(start + i) % spans_.size()]);
    }
    return out;
  }

  // Chrome trace-event JSON (the format Perfetto and chrome://tracing load):
  // closed spans become complete events (ph:"X", ts/dur in microseconds) and
  // point trace records become instants (ph:"i"). All on one pid/tid — the
  // sim is single-threaded, and Perfetto nests same-track X events by time
  // containment, which our LIFO span discipline guarantees.
  std::string ToChromeJson() const {
    std::string out = "[";
    char buf[256];
    bool first = true;
    for (const SpanRecord& s : SpanSnapshot()) {
      uint64_t dur = s.end_ns > s.begin_ns ? s.end_ns - s.begin_ns : 0;
      std::snprintf(buf, sizeof(buf),
                    "%s\n{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":0,\"tid\":0,\"args\":{\"page\":\"0x%llx\","
                    "\"id\":%u,\"parent\":%u,\"detail\":%u}}",
                    first ? "" : ",", SpanKindName(s.kind),
                    static_cast<double>(s.begin_ns) / 1000.0,
                    static_cast<double>(dur) / 1000.0,
                    static_cast<unsigned long long>(s.page_va), s.id, s.parent, s.detail);
      out += buf;
      first = false;
    }
    for (const TraceRecord& r : Snapshot()) {
      std::snprintf(buf, sizeof(buf),
                    "%s\n{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":%.3f,"
                    "\"pid\":0,\"tid\":0,\"s\":\"t\",\"args\":{\"page\":\"0x%llx\","
                    "\"detail\":%u}}",
                    first ? "" : ",", TraceEventName(r.event),
                    static_cast<double>(r.time_ns) / 1000.0,
                    static_cast<unsigned long long>(r.page_va), r.detail);
      out += buf;
      first = false;
    }
    out += "\n]\n";
    return out;
  }

 private:
  void PushSpan(const SpanRecord& r) {
    if (spans_.size() < span_capacity_) {
      spans_.push_back(r);
    } else {
      spans_[span_next_ % span_capacity_] = r;
    }
    ++span_next_;
  }

  size_t capacity_;
  std::vector<TraceRecord> ring_;
  uint64_t next_ = 0;
  TraceSink* sink_ = nullptr;

  size_t span_capacity_ = 0;
  std::vector<SpanRecord> spans_;  // Closed spans, ring ordered by completion.
  std::vector<SpanRecord> open_;   // Begun, not yet ended (small; LIFO use).
  uint64_t span_next_ = 0;
  uint32_t span_seq_ = 0;
  uint32_t current_parent_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_SIM_TRACE_H_
