// Prefetcher interface (paper Sec. 4.3).
//
// DiLOS consults the prefetcher from inside the fault handler, during the
// RDMA wait window of the demand fetch, so prefetch decision work is hidden.
// The runtime supplies fault address, fault kind, and the PTE-hit-tracker
// ratio; the prefetcher returns candidate pages to fetch.
#ifndef DILOS_SRC_DILOS_PREFETCHER_H_
#define DILOS_SRC_DILOS_PREFETCHER_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace dilos {

struct FaultInfo {
  uint64_t vaddr = 0;      // Faulting address (not page-aligned).
  bool write = false;
  bool major = true;       // false: fault on an in-flight (fetching) page.
  double hit_ratio = 1.0;  // From the PTE hit tracker.
};

class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  // Appends page-aligned virtual addresses to prefetch. Called on every
  // fault (major and minor); minor faults let window-based policies issue
  // ahead asynchronously, like Linux readahead's marker pages.
  virtual void OnFault(const FaultInfo& info, std::vector<uint64_t>* out) = 0;

  virtual std::string_view name() const = 0;

  // Fresh instance with the same configuration: prefetcher state (windows,
  // history) is per-core, so the runtime clones one per core.
  virtual std::unique_ptr<Prefetcher> Clone() const = 0;
};

// No prefetching ("no-prefetch" configurations in the paper).
class NullPrefetcher : public Prefetcher {
 public:
  void OnFault(const FaultInfo& info, std::vector<uint64_t>* out) override {
    (void)info;
    (void)out;
  }
  std::string_view name() const override { return "no-prefetch"; }
  std::unique_ptr<Prefetcher> Clone() const override { return std::make_unique<NullPrefetcher>(); }
};

}  // namespace dilos

#endif  // DILOS_SRC_DILOS_PREFETCHER_H_
