// DilosRuntime: the specialized paging subsystem (paper Sec. 4).
//
// The fault handler checks exactly one data structure — the unified page
// table — before posting the asynchronous RDMA read (Sec. 4.2). While the
// demand fetch is in flight it runs the PTE hit tracker, consults the
// prefetcher, lets the app-aware guide chase pointers with subpage reads,
// maps any prefetched pages that have arrived, and lets the page manager do
// background cleaning/eviction: all of it hidden inside the 4 KB fetch
// window (Sec. 4.3-4.4). Prefetched pages are mapped directly into the page
// table — there is no swap cache and hence no swap-cache minor faults.
#ifndef DILOS_SRC_DILOS_RUNTIME_H_
#define DILOS_SRC_DILOS_RUNTIME_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/dilos/guide.h"
#include "src/dilos/page_manager.h"
#include "src/dilos/prefetcher.h"
#include "src/dilos/shard.h"
#include "src/memnode/fabric.h"
#include "src/pt/frame_pool.h"
#include "src/pt/hit_tracker.h"
#include "src/pt/page_table.h"
#include "src/recovery/repair_manager.h"
#include "src/sim/far_runtime.h"
#include "src/sim/fiber.h"
#include "src/sim/trace.h"
#include "src/telemetry/telemetry.h"
#include "src/tenant/hotness.h"
#include "src/tenant/wire_sched.h"

namespace dilos {

struct DilosConfig {
  uint64_t local_mem_bytes = 64ULL << 20;
  int num_cores = 1;
  bool tcp_emulation = false;  // Adds the TCP delay after each demand completion.
  bool shared_queue = false;   // Ablation: one QP for all modules (HoL blocking).
  // Replicas per page (Sec. 5.1 extension); requires a Fabric with at least
  // this many memory nodes. 1 = the paper's single-node configuration.
  int replication = 1;
  // Failure detection + automatic re-replication (src/recovery). When
  // enabled, crashed nodes (Fabric::CrashNode) are detected via op timeouts
  // and missed heartbeats and their granules rebuilt on survivors/spares.
  RecoveryOptions recovery;
  // Erasure coding (src/recovery/ec.h): replaces replication (replication is
  // forced to 1) with (k, m) striping; lost pages are served by degraded
  // reads that decode k surviving stripe members. Requires k + m non-spare
  // memory nodes.
  ECConfig ec;
  // Compressed local cold tier (src/tier): clock victims are compressed into
  // an in-DRAM pool instead of written remotely; a refault decompresses
  // locally instead of paying the RDMA round trip.
  TierConfig tier;
  // Async fault pipeline (src/sim/fiber.h, DESIGN.md §12): a demand fault
  // posts its read, parks a fiber, and returns the core to the workload;
  // completions are harvested by coalesced CQ polls and committed as batched
  // PTE installs. depth bounds outstanding demand faults per core; depth 1
  // reproduces blocking-mode fault counts exactly (the CI gate).
  FaultPipelineConfig fault_pipeline;
  PageManagerConfig pm;
  // Do not start new prefetches when free frames would drop below this
  // (prevents prefetch-driven thrash of the resident set).
  size_t prefetch_free_reserve = 16;
  size_t hit_tracker_window = 256;
  // Paging-event trace ring capacity (0 = tracing off).
  size_t trace_capacity = 0;
  // Telemetry subsystem (src/telemetry): per-node fabric metrics, per-LatComp
  // latency distributions, causal fault spans, flight recorder, invariant
  // checks. The default (all off) changes nothing — same contract as
  // trace_capacity == 0.
  TelemetryConfig telemetry;
  // Multi-tenant policy layer (src/tenant): tenant namespaces + quotas,
  // per-tenant fair-share wire scheduling, and the hotness auto-migrator.
  // Disabled by default; a single-tenant runtime is byte-identical to one
  // built without the layer.
  TenantConfig tenants;
  // Chaos seed: nonzero reseeds the fabric's fault injector at construction,
  // so every probabilistic fault drawn during the run derives from this one
  // knob. Tests print it on failure; rerunning with the same seed replays
  // the exact fault schedule. Arm the plan (Fabric::set_fault_plan) before
  // constructing the runtime.
  uint64_t fault_seed = 0;
};

class DilosRuntime : public FarRuntime {
 public:
  DilosRuntime(Fabric& fabric, DilosConfig cfg, std::unique_ptr<Prefetcher> prefetcher);
  // Uninstalls telemetry hooks from the fabric and, when
  // TelemetryConfig::check_invariants is set, audits the final counters
  // (aborting on violation — telemetry-enabled tests double as accounting
  // audits).
  ~DilosRuntime() override;

  // -- FarRuntime ------------------------------------------------------------
  uint64_t AllocRegion(uint64_t bytes) override;
  // Tenant-owned region: granule-aligned (a shard granule never straddles
  // tenants) and bound to `tenant` in the registry. With tenancy off this is
  // just an aligned AllocRegion.
  uint64_t AllocRegion(uint64_t bytes, int tenant);
  void FreeRegion(uint64_t addr, uint64_t bytes) override;
  uint8_t* Pin(uint64_t vaddr, uint32_t len, bool write, int core) override;
  // Retires every parked demand fault: advances each core's clock to its
  // oldest outstanding completion and harvests until the pipelines drain.
  // No-op in blocking mode.
  void Quiesce() override;
  using FarRuntime::clock;
  Clock& clock(int core) override { return clocks_[static_cast<size_t>(core)]; }
  RuntimeStats& stats() override { return stats_; }
  int num_cores() const override { return cfg_.num_cores; }

  void set_guide(Guide* guide) {
    guide_ = guide;
    pm_.set_guide(guide);
  }

  PageTable& page_table() { return pt_; }
  PageManager& page_manager() { return pm_; }
  HitTracker& hit_tracker() { return tracker_; }
  FramePool& frame_pool() { return pool_; }
  Prefetcher& prefetcher(int core = 0) { return *prefetchers_[static_cast<size_t>(core)]; }
  ShardRouter& router() { return router_; }
  Tracer& tracer() { return tracer_; }
  const CostModel& cost() const { return cost_; }

  // Recovery subsystem (null unless cfg.recovery.enabled).
  FailureDetector* detector() { return detector_.get(); }
  RepairManager* repair() { return repair_.get(); }
  MigrationManager* migration() { return migration_.get(); }
  // Graceful decommission (null-safe): see MigrationManager::DrainNode.
  // Drives nothing itself — RecoveryTick / background progress empties the
  // node; returns false when recovery is off or the node cannot drain.
  bool DrainNode(int node, uint64_t now_ns) {
    return migration_ != nullptr && migration_->DrainNode(node, now_ns);
  }
  // Compressed tier (null unless cfg.tier.enabled).
  CompressedTier* tier() { return tier_.get(); }
  // Per-core fault pipeline (null unless cfg.fault_pipeline.enabled).
  FaultPipeline* pipeline(int core) {
    return pipelines_.empty() ? nullptr : &pipelines_[static_cast<size_t>(core)];
  }
  // -- Multi-tenant policy layer (null members unless cfg.tenants.enabled) ---
  // Registers a tenant; returns its id, or -1 (registry full / tenancy off).
  // With the SLO engine on, the spec's latency objective is installed for
  // the new tenant at the same time.
  int CreateTenant(const TenantSpec& spec) {
    int id = tenants_ != nullptr ? tenants_->Register(spec) : -1;
    if (id >= 0 && slo_ != nullptr) {
      slo_->SetObjective(id, spec.slo);
    }
    return id;
  }
  // Terminal retirement. The shutdown audit fails if the tenant still owns
  // resident or charged pages — free its regions first.
  void RetireTenant(int id) {
    if (tenants_ != nullptr) {
      tenants_->Retire(id);
    }
  }
  TenantRegistry* tenants() { return tenants_.get(); }
  FairLinkScheduler* wire_scheduler() { return wire_sched_.get(); }
  HotnessMonitor* hotness() { return hotness_.get(); }
  // Test introspection: remaining demand-retry tokens of one (core, tenant)
  // bucket (tenant -1 = the untenanted bucket; with tenancy off, the
  // per-core bucket regardless of `tenant`).
  uint64_t retry_tokens(int core, int tenant) const {
    size_t stride = tenants_ != nullptr ? TenantRegistry::kMaxTenants + 1 : 1;
    size_t bucket =
        tenants_ != nullptr && tenant >= 0 ? static_cast<size_t>(tenant) + 1 : 0;
    size_t idx = static_cast<size_t>(core) * stride + bucket;
    return idx < retry_budget_.size() ? retry_budget_[idx].tokens : 0;
  }

  // Telemetry (null unless cfg.telemetry.enabled()).
  Telemetry* telemetry() { return telemetry_.get(); }
  const Telemetry* telemetry() const { return telemetry_.get(); }
  // Per-(node, QP class) fabric metrics (null unless cfg.telemetry.metrics).
  MetricsRegistry* metrics() { return metrics_registry_; }

  // Runs detector probes and repair work at simulated time `now`. Called
  // from the same background hook as the cleaner/reclaimer; public so
  // drivers without page traffic can still make recovery progress.
  void RecoveryTick(uint64_t now);
  // Advances core 0's clock in probe-interval steps, ticking recovery —
  // lets detection and repair converge without any application traffic.
  void DriveRecovery(uint64_t duration_ns);
  bool RecoveryIdle() const {
    return (repair_ == nullptr || repair_->idle()) &&
           (migration_ == nullptr || migration_->idle());
  }

  // Highest clock across cores — the workload completion time.
  uint64_t MaxTimeNs() const;

 private:
  friend class RuntimeGuideContext;

  struct Inflight {
    uint32_t frame = 0;
    uint64_t done_ns = 0;
    bool write = false;
    bool demand = false;
  };

  uint8_t* HandleFault(uint64_t vaddr, uint32_t len, bool write, int core);
  // Demand read with replica failover: bounded retry + exponential backoff,
  // re-picking the first readable replica each attempt and reporting
  // timeouts to the failure detector. `segs == nullptr` reads the whole
  // page; otherwise a vectored read of the given segments. Advances
  // `cursor_ns` past completions and backoff waits.
  Completion DemandFetch(uint64_t page_va, uint64_t frame_addr,
                         const std::vector<PageSegment>* segs, int core, CommChannel ch,
                         uint64_t* cursor_ns);
  // EC degraded read: when the page's only copy is unreadable, decode it
  // from k surviving stripe members into the frame. Returns false if fewer
  // than k members are readable (the page is then truly lost).
  bool EcDemandReconstruct(uint64_t page_va, uint64_t frame_addr,
                           const std::vector<PageSegment>* segs, int core, CommChannel ch,
                           uint64_t* cursor_ns);
  // Rewrites the known-corrupt stored copy of `page_va` on `node` with the
  // verified bytes in `good` (read-path healing after a checksum mismatch).
  // Posted on the manager channel at `issue_ns`: healing is off the fault
  // path, so the caller's cursor does not wait on it.
  // `core` scopes the off-path kHeal attribution stamp.
  void HealCorruptReplica(uint64_t page_va, int node, const uint8_t* good, uint64_t issue_ns,
                          int core);
  // True when a readable replica of `page_va` other than `except` holds an
  // installed checksum for it. Used to distrust an *unverifiable* arrival:
  // a copy with no checksum on a page some other replica cleaned in full is
  // a copy that missed its write-back (e.g. a partitioned node), not a page
  // that was never written.
  bool ReplicaHasChecksumElsewhere(uint64_t page_va, int except);
  // Cleaner/reclaimer plus recovery, one background hook.
  void Background(uint64_t now, uint64_t pinned_va);
  // Marks `page_va` fetching and posts an async read at `issue_ns` on the
  // channel's QP toward the page's live replica. Returns false if the page
  // is not in kRemote state or no frame is spare.
  bool StartPrefetch(uint64_t page_va, uint64_t issue_ns, int core, CommChannel ch);
  void RunPrefetcher(const FaultInfo& info, int core);
  void DrainArrivals(uint64_t now);
  void MapInflight(uint64_t page_va, const Inflight& inf, bool as_write);
  // Coalesced CQ poll for `core`: harvests every parked fiber whose
  // completion has passed and commits them as one batched PTE install
  // (per-page map cost, one TLB flush per batch).
  void HarvestFaultPipeline(int core, uint64_t now);
  // Drops the parked fiber for `page_va` from whichever core's pipeline
  // holds it (direct-touch resume, region teardown). False if none does.
  bool RetireParked(uint64_t page_va);

  // -- Per-fault attribution + span scoping (src/telemetry/attribution.h) ----
  //
  // One FaultScope per core tracks the *outermost* HandleFault invocation:
  // its kFault tracer span and (with attribution on) the fault's phase
  // vector. Re-entry — the tier-corrupt fallback re-faults the same page
  // remotely via Pin — only bumps `depth`, so the retry shares the original
  // span start and phase slice instead of restarting them.
  struct FaultScope {
    uint32_t depth = 0;
    uint32_t span = 0;
    uint64_t page_va = 0;
    bool moved = false;  // Slice handed to a parked-fiber slot (pipelined path).
    FaultSlice slice;
  };
  // A parked fiber's slice between HandleFault returning and the harvest
  // that installs the page. Keyed by page_va (a fiber parked on one core can
  // be resumed from another); preallocated cores x depth, linear scan.
  struct ParkedSlice {
    bool used = false;
    uint64_t page_va = 0;
    uint64_t done_ns = 0;  // Fetch completion: park time = map start - done.
    FaultSlice slice;
  };

  // Opens (or re-enters) the core's fault scope; returns the span id.
  // `entry_ns` is the attribution start (pre-handler-advance clock);
  // `span_now` the span begin (post-advance, matching the old span start).
  uint32_t BeginFault(int core, uint64_t page_va, uint64_t entry_ns, uint64_t span_now);
  // Closes one nesting level; at the outermost level ends the span and, when
  // the slice was not handed to a parked fiber, commits it at `now`.
  void EndFault(int core, uint64_t now);
  // Adds `dt` to a phase of the core's active slice (or its parked slot once
  // moved). No-op when attribution is off or no fault scope is open.
  void AttrAdd(int core, FaultPhase p, uint64_t dt);
  // Commits a finished slice: attribution histograms, SLO scoring, and on a
  // breach alert the flight-recorder dump with the attribution snapshot.
  void CommitFaultSlice(const FaultSlice& slice, uint64_t page_va, uint64_t end_ns);
  ParkedSlice* FindParkedSlice(uint64_t page_va);
  // Moves the core's active slice into a free parked slot at fetch
  // completion time `done_ns` (pipelined park). No-op when attribution is off.
  void ParkFaultSlice(int core, uint64_t page_va, uint64_t done_ns);
  // Drops a parked slice without committing (region teardown).
  void DropParkedSlice(uint64_t page_va);

  Fabric& fabric_;
  DilosConfig cfg_;
  CostModel cost_;
  // Per-core prefetcher instances (index 0 is the one passed in; the rest
  // are clones): window/history state must not be shared across cores.
  std::vector<std::unique_ptr<Prefetcher>> prefetchers_;
  Guide* guide_ = nullptr;

  Tracer tracer_;
  PageTable pt_;
  FramePool pool_;
  RuntimeStats stats_;
  std::vector<Clock> clocks_;
  ShardRouter router_;
  PageManager pm_;
  HitTracker tracker_;
  std::unique_ptr<FailureDetector> detector_;
  std::unique_ptr<RepairManager> repair_;
  std::unique_ptr<MigrationManager> migration_;
  // Demand-retry token buckets (RecoveryOptions::retry_burst /
  // retry_refill_ns), refilled lazily from the core's cursor. One per core;
  // with tenancy enabled, one per (core, tenant bucket) — kMaxTenants + 1
  // buckets per core, index 0 untenanted — so one tenant's retry storm can
  // never drain another's budget on the same core.
  struct RetryBudget {
    uint64_t tokens = 0;
    uint64_t last_refill_ns = 0;
  };
  size_t RetryIndex(int core, uint64_t page_va) const {
    if (tenants_ == nullptr) {
      return static_cast<size_t>(core);
    }
    int t = tenants_->TenantOfAddr(page_va);
    size_t bucket = t < 0 ? 0 : static_cast<size_t>(t) + 1;
    return static_cast<size_t>(core) * (TenantRegistry::kMaxTenants + 1) + bucket;
  }
  // Per-tenant refill share: the core's refill rate splits by fair-share
  // weight, so tenant t's bucket refills every base * W / w_t ns (W = sum of
  // registered weights). Untenanted faults refill at weight 1.
  uint64_t RetryRefillNs(uint64_t page_va) const {
    uint64_t base = cfg_.recovery.retry_refill_ns;
    if (tenants_ == nullptr || base == 0 || tenants_->num_tenants() == 0) {
      return base;
    }
    uint64_t total = 0;
    for (int i = 0; i < tenants_->num_tenants(); ++i) {
      uint32_t w = tenants_->spec(i).weight;
      total += w == 0 ? 1 : w;
    }
    int t = tenants_->TenantOfAddr(page_va);
    uint64_t w = 1;
    if (t >= 0) {
      uint32_t sw = tenants_->spec(t).weight;
      w = sw == 0 ? 1 : sw;
    }
    return base * total / w;
  }
  std::vector<RetryBudget> retry_budget_;
  // Multi-tenant policy layer (all null unless cfg.tenants.enabled).
  std::unique_ptr<TenantRegistry> tenants_;
  std::unique_ptr<FairLinkScheduler> wire_sched_;
  std::unique_ptr<HotnessMonitor> hotness_;
  std::unique_ptr<CompressedTier> tier_;
  std::unique_ptr<Telemetry> telemetry_;
  // Cached raw views into telemetry_ (null when off) so hot paths pay one
  // pointer test, not a unique_ptr chain.
  MetricsRegistry* metrics_registry_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  FaultAttribution* attr_ = nullptr;
  SloEngine* slo_ = nullptr;
  // Per-core fault scopes (always sized num_cores — the span fix needs them
  // even with attribution off) and the parked-slice pool (sized cores x
  // pipeline depth when both the pipeline and attribution are on).
  std::vector<FaultScope> fault_scope_;
  std::vector<ParkedSlice> parked_slices_;
  std::vector<int> replica_scratch_;  // ReplicaHasChecksumElsewhere scratch.

  std::unordered_map<uint64_t, Inflight> inflight_;  // Key: page vaddr.
  // One pipeline per core when cfg.fault_pipeline.enabled; empty otherwise.
  std::vector<FaultPipeline> pipelines_;
  std::vector<FaultFiber> harvest_scratch_;  // HarvestFaultPipeline batch buffer.
  uint64_t next_region_ = kFarBase;
  uint64_t wr_id_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_DILOS_RUNTIME_H_
