// Linux-style readahead prefetcher (paper Sec. 4.3; Linux "VMA based swap
// readahead").
//
// On a major fault it reads ahead a cluster of pages following the fault and
// plants an async-ahead marker in the middle of the cluster; a fault (or
// in-flight hit) on the marker page triggers the next cluster, giving the
// double-buffering that lets sequential readers stream. The window grows on
// sequential hits and shrinks when the hit tracker reports waste.
#ifndef DILOS_SRC_DILOS_READAHEAD_H_
#define DILOS_SRC_DILOS_READAHEAD_H_

#include "src/dilos/prefetcher.h"

namespace dilos {

class ReadaheadPrefetcher : public Prefetcher {
 public:
  // `max_window` matches Linux's default swap readahead cluster (2^3 = 8).
  explicit ReadaheadPrefetcher(uint32_t max_window = 8) : max_window_(max_window) {}

  void OnFault(const FaultInfo& info, std::vector<uint64_t>* out) override;

  std::string_view name() const override { return "readahead"; }
  std::unique_ptr<Prefetcher> Clone() const override {
    return std::make_unique<ReadaheadPrefetcher>(max_window_);
  }

 private:
  void EmitWindow(uint64_t start_page_va, uint32_t count, std::vector<uint64_t>* out);

  uint32_t max_window_;
  uint32_t window_ = 2;
  uint64_t last_fault_page_ = UINT64_MAX;
  uint64_t marker_page_ = UINT64_MAX;   // Page that triggers async readahead.
  uint64_t ahead_page_ = UINT64_MAX;    // First page after the issued window.
};

}  // namespace dilos

#endif  // DILOS_SRC_DILOS_READAHEAD_H_
