// Leap's majority-trend prefetcher (Maruf & Chowdhury, ATC '20), the second
// general-purpose prefetcher DiLOS ships (paper Sec. 4.3, 5).
//
// Keeps a short history of fault-address deltas, finds the majority delta
// with Boyer–Moore voting, and — if a majority exists — prefetches along
// that stride. The prefetch window grows/shrinks with prefetch efficiency,
// as in Leap.
#ifndef DILOS_SRC_DILOS_TREND_H_
#define DILOS_SRC_DILOS_TREND_H_

#include <array>

#include "src/dilos/prefetcher.h"

namespace dilos {

class TrendPrefetcher : public Prefetcher {
 public:
  explicit TrendPrefetcher(uint32_t max_window = 8) : max_window_(max_window) {}

  void OnFault(const FaultInfo& info, std::vector<uint64_t>* out) override;

  std::string_view name() const override { return "trend-based"; }
  std::unique_ptr<Prefetcher> Clone() const override {
    return std::make_unique<TrendPrefetcher>(max_window_);
  }

 private:
  // Boyer–Moore majority vote over the delta history; returns 0 if no
  // majority (no detectable trend).
  int64_t MajorityDelta() const;

  static constexpr size_t kHistory = 8;

  uint32_t max_window_;
  uint32_t window_ = 2;
  std::array<int64_t, kHistory> deltas_ = {};
  size_t delta_count_ = 0;
  size_t delta_pos_ = 0;
  uint64_t last_page_ = UINT64_MAX;
  uint64_t ahead_page_ = UINT64_MAX;
  uint64_t marker_page_ = UINT64_MAX;
  int64_t ahead_delta_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_DILOS_TREND_H_
