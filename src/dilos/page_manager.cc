#include "src/dilos/page_manager.h"

namespace dilos {

PageManager::PageManager(FramePool& pool, PageTable& pt, ShardRouter& router,
                         RuntimeStats& stats, Tracer* tracer, PageManagerConfig cfg)
    : pool_(pool), pt_(pt), router_(router), stats_(stats), tracer_(tracer), cfg_(cfg) {
  if (tracer_ == nullptr) {
    static Tracer null_tracer(0);
    tracer_ = &null_tracer;
  }
}

void PageManager::OnMapped(uint64_t page_va) {
  auto it = where_.find(page_va);
  if (it != where_.end()) {
    lru_.erase(it->second);
    where_.erase(it);
  }
  lru_.push_back(page_va);
  where_[page_va] = std::prev(lru_.end());
}

void PageManager::OnUnmapped(uint64_t page_va) {
  auto it = where_.find(page_va);
  if (it != where_.end()) {
    lru_.erase(it->second);
    where_.erase(it);
  }
  vector_cleaned_.erase(page_va);
}

uint64_t PageManager::AllocActionSlot(std::vector<PageSegment> segs) {
  uint64_t idx;
  if (!action_free_.empty()) {
    idx = action_free_.back();
    action_free_.pop_back();
    action_log_[idx] = std::move(segs);
  } else {
    idx = action_log_.size();
    action_log_.push_back(std::move(segs));
  }
  return idx;
}

const std::vector<PageSegment>* PageManager::ActionSegments(uint64_t log_idx) const {
  if (log_idx >= action_log_.size()) {
    return nullptr;
  }
  return &action_log_[log_idx];
}

void PageManager::ReleaseAction(uint64_t log_idx) {
  if (log_idx < action_log_.size()) {
    action_log_[log_idx].clear();
    action_free_.push_back(log_idx);
  }
}

void PageManager::Clean(uint64_t page_va, Pte* e, uint64_t now) {
  if ((*e & kPteDirty) == 0) {
    return;
  }
  uint32_t frame = static_cast<uint32_t>(PtePayload(*e));
  uint64_t frame_addr = pool_.Addr(frame);

  std::vector<PageSegment> segs;
  bool vectored = guide_ != nullptr && guide_->LiveSegments(page_va, &segs) && !segs.empty() &&
                  segs.size() <= cfg_.max_vector_segs;
  // A whole-page segment list degenerates to a plain write.
  if (vectored && segs.size() == 1 && segs[0].offset == 0 && segs[0].length == kPageSize) {
    vectored = false;
  }

  // Fan the write-back out to every live replica of the page.
  router_.WriteQps(/*core=*/0, CommChannel::kManager, page_va, &write_qps_, &write_nodes_);
  if (vectored) {
    for (size_t i = 0; i < write_qps_.size(); ++i) {
      QueuePair* qp = write_qps_[i];
      WorkRequest wr;
      wr.wr_id = ++wr_id_;
      wr.opcode = RdmaOpcode::kWrite;
      wr.rkey = qp->remote_rkey();
      for (const PageSegment& s : segs) {
        wr.local.push_back({frame_addr + s.offset, s.length});
        wr.remote.push_back({page_va + s.offset, s.length});
      }
      Completion c = qp->PostSend(wr, now);
      if (c.status != WcStatus::kSuccess) {
        router_.ReportOpFailure(write_nodes_[i], c.completion_time_ns);
        continue;  // The surviving replicas carry the page.
      }
      stats_.vectored_ops++;
      stats_.bytes_written += wr.TotalBytes();
    }
    stats_.writebacks++;
    tracer_->Record(now, TraceEvent::kWriteback, page_va, 1);
    // Remember the valid extents so eviction produces an action PTE.
    auto old = vector_cleaned_.find(page_va);
    if (old != vector_cleaned_.end()) {
      ReleaseAction(old->second);
    }
    vector_cleaned_[page_va] = AllocActionSlot(std::move(segs));
  } else {
    for (size_t i = 0; i < write_qps_.size(); ++i) {
      Completion c = write_qps_[i]->PostWrite(++wr_id_, frame_addr, page_va, kPageSize, now);
      if (c.status != WcStatus::kSuccess) {
        router_.ReportOpFailure(write_nodes_[i], c.completion_time_ns);
        continue;
      }
      stats_.bytes_written += kPageSize;
    }
    stats_.writebacks++;
    tracer_->Record(now, TraceEvent::kWriteback, page_va, 0);
    auto old = vector_cleaned_.find(page_va);
    if (old != vector_cleaned_.end()) {
      ReleaseAction(old->second);
      vector_cleaned_.erase(old);
    }
  }
  *e &= ~kPteDirty;
}

bool PageManager::EvictOne(uint64_t now, uint64_t pinned_va) {
  size_t scanned = 0;
  size_t limit = lru_.size() * 2 + 1;
  while (!lru_.empty() && scanned < limit) {
    ++scanned;
    uint64_t page_va = lru_.front();
    lru_.pop_front();
    where_.erase(page_va);
    Pte* e = pt_.Entry(page_va, /*create=*/false);
    if (e == nullptr || PteTagOf(*e) != PteTag::kLocal) {
      continue;  // Page vanished (unmapped); drop the stale entry.
    }
    if (page_va == pinned_va) {
      lru_.push_back(page_va);
      where_[page_va] = std::prev(lru_.end());
      continue;
    }
    if (*e & kPteAccessed) {
      // Second chance: clear the accessed bit and rotate to the back.
      *e &= ~kPteAccessed;
      lru_.push_back(page_va);
      where_[page_va] = std::prev(lru_.end());
      continue;
    }
    // Victim found. Ensure the memory-node copy is current.
    if (*e & kPteDirty) {
      Clean(page_va, e, now);
    }
    uint32_t frame = static_cast<uint32_t>(PtePayload(*e));
    auto vec = vector_cleaned_.find(page_va);
    if (vec != vector_cleaned_.end()) {
      *pt_.Entry(page_va, true) = MakeActionPte(vec->second);
      vector_cleaned_.erase(vec);
    } else {
      // Even a clean page can evict to an action PTE: the memory node holds
      // the full (current) content, and the guide's live map tells the later
      // re-fetch which bytes are worth moving.
      std::vector<PageSegment> segs;
      if (guide_ != nullptr && guide_->LiveSegments(page_va, &segs) && !segs.empty() &&
          segs.size() <= cfg_.max_vector_segs &&
          !(segs.size() == 1 && segs[0].offset == 0 && segs[0].length == kPageSize)) {
        *pt_.Entry(page_va, true) = MakeActionPte(AllocActionSlot(std::move(segs)));
      } else {
        *pt_.Entry(page_va, true) = MakeRemotePte(page_va >> kPageShift);
      }
    }
    pool_.Free(frame);
    stats_.evictions++;
    tracer_->Record(now, TraceEvent::kEvict, page_va);
    return true;
  }
  return false;
}

void PageManager::BackgroundTick(uint64_t now, uint64_t pinned_va) {
  // Cleaner: sweep a batch of the oldest pages, writing back dirty ones so
  // the reclaimer always finds clean victims.
  size_t cleaned = 0;
  for (auto it = lru_.begin(); it != lru_.end() && cleaned < cfg_.clean_batch; ++it) {
    Pte* e = pt_.Entry(*it, /*create=*/false);
    if (e != nullptr && PteTagOf(*e) == PteTag::kLocal && (*e & kPteDirty) &&
        (*e & kPteAccessed) == 0) {
      Clean(*it, e, now);
      ++cleaned;
    }
  }
  // Reclaimer: eagerly evict until the free target is met.
  size_t target = cfg_.free_target;
  size_t cap = pool_.total() / 4 + 1;
  if (target > cap) {
    target = cap;  // Never hold more than a quarter of a tiny pool free.
  }
  while (pool_.free_count() < target) {
    if (!EvictOne(now, pinned_va)) {
      break;
    }
  }
}

uint32_t PageManager::AllocFrame(Clock& clk, LatencyBreakdown* bd) {
  std::optional<uint32_t> fid = pool_.Alloc();
  if (!fid.has_value()) {
    // The background thread fell behind: direct reclaim in the fault path.
    ++direct_reclaims_;
    while (!fid.has_value()) {
      if (!EvictOne(clk.now())) {
        break;  // Nothing evictable: the pool is truly exhausted.
      }
      clk.Advance(cfg_.direct_reclaim_ns);
      if (bd != nullptr) {
        bd->Add(LatComp::kReclaim, cfg_.direct_reclaim_ns);
      }
      fid = pool_.Alloc();
    }
  }
  return fid.value();
}

}  // namespace dilos
