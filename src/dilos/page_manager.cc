#include "src/dilos/page_manager.h"

#include <algorithm>
#include <cstring>

#include "src/recovery/ec_read.h"
#include "src/recovery/integrity.h"

namespace dilos {

PageManager::PageManager(FramePool& pool, PageTable& pt, ShardRouter& router,
                         RuntimeStats& stats, Tracer* tracer, PageManagerConfig cfg,
                         const CostModel* cost)
    : pool_(pool), pt_(pt), router_(router), stats_(stats), tracer_(tracer), cfg_(cfg),
      cost_(cost) {
  if (tracer_ == nullptr) {
    static Tracer null_tracer(0);
    tracer_ = &null_tracer;
  }
  if (cost_ == nullptr) {
    static const CostModel default_cost = CostModel::Default();
    cost_ = &default_cost;
  }
}

void PageManager::OnMapped(uint64_t page_va) {
  auto it = where_.find(page_va);
  if (it != where_.end()) {
    lru_.erase(it->second);
    where_.erase(it);
  } else if (tenants_ != nullptr) {
    tenants_->OnResident(page_va, +1);  // Fresh residency, not an LRU refresh.
  }
  lru_.push_back(page_va);
  where_[page_va] = std::prev(lru_.end());
}

void PageManager::OnUnmapped(uint64_t page_va) {
  auto it = where_.find(page_va);
  if (it != where_.end()) {
    lru_.erase(it->second);
    where_.erase(it);
    if (tenants_ != nullptr) {
      tenants_->OnResident(page_va, -1);
    }
  }
  vector_cleaned_.erase(page_va);
}

uint64_t PageManager::AllocActionSlot(std::vector<PageSegment> segs) {
  uint64_t idx;
  if (!action_free_.empty()) {
    idx = action_free_.back();
    action_free_.pop_back();
    action_log_[idx] = std::move(segs);
  } else {
    idx = action_log_.size();
    action_log_.push_back(std::move(segs));
  }
  return idx;
}

const std::vector<PageSegment>* PageManager::ActionSegments(uint64_t log_idx) const {
  if (log_idx >= action_log_.size()) {
    return nullptr;
  }
  return &action_log_[log_idx];
}

void PageManager::ReleaseAction(uint64_t log_idx) {
  if (log_idx < action_log_.size()) {
    action_log_[log_idx].clear();
    action_free_.push_back(log_idx);
  }
}

void PageManager::Clean(uint64_t page_va, Pte* e, uint64_t now) {
  if ((*e & kPteDirty) == 0) {
    return;
  }
  uint32_t frame = static_cast<uint32_t>(PtePayload(*e));
  uint64_t frame_addr = pool_.Addr(frame);

  std::vector<PageSegment> segs;
  // EC write-backs are always whole pages: the parity delta must cover every
  // byte the data write changes, and vectored segment lists make the
  // old-xor-new bookkeeping cover only live bytes.
  bool vectored = !router_.ec_enabled() && guide_ != nullptr &&
                  guide_->LiveSegments(page_va, &segs) && !segs.empty() &&
                  segs.size() <= cfg_.max_vector_segs;
  // A whole-page segment list degenerates to a plain write.
  if (vectored && segs.size() == 1 && segs[0].offset == 0 && segs[0].length == kPageSize) {
    vectored = false;
  }

  if (vectored) {
    // Vectored write-backs store remote content like full ones and pass the
    // same quota admission; a reject keeps the dirty bit (the reclaimer
    // requeues the page, exactly as on a total-partition write-back).
    if (tenants_ != nullptr && !TenantAdmitWriteBack(page_va, now)) {
      return;
    }
    // Fan the vectored write-back out to every live replica of the page.
    router_.WriteQps(/*core=*/0, CommChannel::kManager, page_va, &write_qps_, &write_nodes_);
    int ok = 0;
    for (size_t i = 0; i < write_qps_.size(); ++i) {
      QueuePair* qp = write_qps_[i];
      WorkRequest wr;
      wr.wr_id = ++wr_id_;
      wr.opcode = RdmaOpcode::kWrite;
      wr.rkey = qp->remote_rkey();
      for (const PageSegment& s : segs) {
        wr.local.push_back({frame_addr + s.offset, s.length});
        wr.remote.push_back({page_va + s.offset, s.length});
      }
      Completion c = qp->PostSend(wr, now);
      if (c.status != WcStatus::kSuccess) {
        router_.ReportOpFailure(write_nodes_[i], c.completion_time_ns);
        continue;  // The surviving replicas carry the page.
      }
      // A partial write leaves the store-side bytes between segments
      // indeterminate: any full-page checksum from an earlier clean is stale
      // now, so the copy reverts to unverified (DESIGN.md §9 documents this
      // guided-paging integrity gap).
      router_.fabric().node(write_nodes_[i]).store().DropChecksum(page_va >> kPageShift);
      stats_.vectored_ops++;
      stats_.bytes_written += wr.TotalBytes();
      ++ok;
    }
    stats_.writebacks++;
    tracer_->Record(now, TraceEvent::kWriteback, page_va, 1);
    // Same contract as WriteBackFull(): only a write-back some replica
    // accepted may clear the dirty bit. With every segment write dropped
    // (total partition) the frame is still the only current copy, and an
    // action PTE recorded now would refetch segments that were never
    // written — a lost update dressed up as a clean page.
    if (ok == 0) {
      return;
    }
    // Remember the valid extents so eviction produces an action PTE.
    auto old = vector_cleaned_.find(page_va);
    if (old != vector_cleaned_.end()) {
      ReleaseAction(old->second);
    }
    vector_cleaned_[page_va] = AllocActionSlot(std::move(segs));
  } else {
    // Only a write-back some replica accepted may clear the dirty bit: if
    // every node dropped it (all partitioned/down), the frame — or the tier
    // entry it is about to become — is still the only current copy, and
    // "clean" would license dropping it.
    if (!WriteBackFull(page_va, pool_.Data(frame), now)) {
      return;
    }
    auto old = vector_cleaned_.find(page_va);
    if (old != vector_cleaned_.end()) {
      ReleaseAction(old->second);
      vector_cleaned_.erase(old);
    }
  }
  *e &= ~kPteDirty;
}

bool PageManager::WriteBackFull(uint64_t page_va, const uint8_t* data, uint64_t now) {
  // Quota admission runs before any byte moves or the generation bumps: a
  // rejected write-back leaves no trace remotely and the caller keeps the
  // dirty bit, so the local copy stays the only (authoritative) one.
  if (tenants_ != nullptr && !TenantAdmitWriteBack(page_va, now)) {
    return false;
  }
  // EC: parity is maintained by read-modify-write against the page's current
  // remote content, so the old bytes must be in hand *before* the data write
  // lands. The old copy comes from the home member, or — when that copy is
  // unreadable (crashed node, uncommitted rebuild target) — from a decode of
  // the surviving stripe members; skipping that decode would write fresh data
  // under stale parity and corrupt every later reconstruction of the stripe.
  uint8_t old_page[kPageSize];
  bool ec_parity = router_.ec_enabled() && router_.ec().m > 0 && page_va < kEcParityBase;
  if (ec_parity && !EcOldContent(page_va, old_page, now)) {
    // More than m members already lost: the stripe is unrecoverable anyway;
    // fold against zeros so the write itself still lands.
    std::memset(old_page, 0, kPageSize);
  }

  // Bump-on-attempt generation: the expected generation rises once per
  // write-back round, *before* the fan-out. A replica the round never
  // reaches (partitioned: its write drops on a timeout, installing neither
  // checksum nor generation) is left verifiably behind — readers compare
  // the stored generation against the router's expected one and steer away
  // from the stale-but-checksum-valid copy.
  uint32_t gen = router_.PageGeneration(page_va) + 1;
  router_.SetPageGeneration(page_va, gen);

  // Fan the write-back out to every live replica of the page.
  router_.WriteQps(/*core=*/0, CommChannel::kManager, page_va, &write_qps_, &write_nodes_);
  int ok = 0;
  for (size_t i = 0; i < write_qps_.size(); ++i) {
    // Checked write: installs the page checksum and verifies the stored
    // bytes (the ICRC analog), so a write-path bit flip never becomes
    // durable silently on any replica.
    Completion c = WritePageChecked(write_qps_[i],
                                    router_.fabric().node(write_nodes_[i]).store(), page_va,
                                    data, now, &wr_id_, stats_, tracer_, gen);
    if (c.status != WcStatus::kSuccess) {
      router_.ReportOpFailure(write_nodes_[i], c.completion_time_ns);
      continue;
    }
    stats_.bytes_written += kPageSize;
    ++ok;
  }
  stats_.writebacks++;
  tracer_->Record(now, TraceEvent::kWriteback, page_va, 0);
  if (ec_parity) {
    EcUpdateParity(page_va, old_page, data, now);
  }
  return ok > 0;
}

bool PageManager::TenantAdmitWriteBack(uint64_t page_va, uint64_t now) {
  if (tenants_->TryCharge(page_va)) {
    return true;  // Already charged, untenanted, or within quota.
  }
  int tenant = tenants_->TenantOfAddr(page_va);
  // kReclaimOwnColdest: free one quota slot by dropping the tenant's own
  // coldest remote copy, then retry the charge. Skipped under EC — dropping
  // a data member's only copy would orphan the stripe's parity accounting.
  if (tenant >= 0 && tenants_->spec(tenant).policy == QuotaPolicy::kReclaimOwnColdest &&
      !router_.ec_enabled() && ReclaimTenantRemote(tenant, page_va, now) &&
      tenants_->TryCharge(page_va)) {
    return true;
  }
  stats_.tenant_quota_rejects++;
  tenants_->NoteReject(tenant);
  tracer_->Record(now, TraceEvent::kTenantQuotaReject, page_va,
                  tenant < 0 ? 0 : static_cast<uint32_t>(tenant));
  return false;
}

bool PageManager::ReclaimTenantRemote(int tenant, uint64_t skip_va, uint64_t now) {
  // Coldest-first over the LRU: the first charged page of this tenant whose
  // local frame is a current full copy (kLocal, clean, not action-logged) can
  // lose its remote copies losslessly — re-marking the PTE dirty makes the
  // frame authoritative again, and a later write-back re-admits it.
  for (uint64_t va : lru_) {
    if (va == skip_va || tenants_->ChargeOwner(va) != tenant ||
        vector_cleaned_.count(va) != 0) {
      continue;
    }
    Pte* e = pt_.Entry(va, /*create=*/false);
    if (e == nullptr || PteTagOf(*e) != PteTag::kLocal || (*e & kPteDirty) != 0) {
      continue;
    }
    router_.ReplicaNodes(va, &reclaim_nodes_);
    for (int node : reclaim_nodes_) {
      router_.fabric().node(node).store().Drop(va >> kPageShift);
    }
    *e |= kPteDirty;
    tenants_->Uncharge(va);
    tenants_->NoteReclaim(tenant);
    stats_.tenant_quota_reclaims++;
    tracer_->Record(now, TraceEvent::kTenantQuotaReclaim, va,
                    static_cast<uint32_t>(tenant));
    return true;
  }
  return false;
}

bool PageManager::EcOldContent(uint64_t page_va, uint8_t* out, uint64_t now) {
  uint64_t granule = ShardRouter::GranuleOf(page_va);
  uint64_t stripe = router_.EcStripeOf(granule);
  int member = router_.EcMemberOf(granule);
  if (router_.EcMemberReadable(stripe, member)) {
    int node = router_.EcNode(stripe, member);
    Completion c =
        router_.NodeQp(/*core=*/0, CommChannel::kManager, node)
            ->PostRead(++wr_id_, reinterpret_cast<uint64_t>(out), page_va, kPageSize, now);
    if (c.status == WcStatus::kSuccess) {
      const PageStore& store = router_.fabric().node(node).store();
      if (VerifyPageBytes(store, page_va, out)) {
        if (!PageIsStale(store, page_va, router_.PageGeneration(page_va))) {
          stats_.ec_parity_bytes += kPageSize;
          return true;
        }
        // Verified-but-stale home copy: the last data write never landed
        // (dropped behind a partition), so the content parity agrees on is
        // the reconstructed one, not these old bytes.
        stats_.stale_copies_detected++;
        tracer_->Record(c.completion_time_ns, TraceEvent::kStaleCopy, page_va,
                        static_cast<uint32_t>(node));
      } else {
        // A rotted home copy is not the old content parity was encoded from —
        // folding a delta against it would corrupt every parity member. Fall
        // through to reconstruction, which yields the content parity agrees
        // on.
        stats_.checksum_mismatches++;
        tracer_->Record(c.completion_time_ns, TraceEvent::kChecksumMismatch, page_va,
                        /*detail=*/0);
      }
    } else {
      router_.ReportOpFailure(node, c.completion_time_ns);
    }
  }
  uint32_t page_idx = static_cast<uint32_t>((page_va & (kShardGranuleBytes - 1)) >> kPageShift);
  uint64_t cursor = now;
  return EcReconstructPage(router_, *cost_, /*core=*/0, CommChannel::kManager, stripe, member,
                           page_idx, out, &cursor, &wr_id_, stats_, tracer_);
}

void PageManager::EcUpdateParity(uint64_t page_va, const uint8_t* old_page,
                                 const uint8_t* new_page, uint64_t now) {
  uint8_t delta[kPageSize];
  bool changed = false;
  for (size_t i = 0; i < kPageSize; ++i) {
    delta[i] = old_page[i] ^ new_page[i];
    changed = changed || delta[i] != 0;
  }
  if (!changed) {
    return;  // Re-clean of identical content: parity already matches.
  }
  uint64_t granule = ShardRouter::GranuleOf(page_va);
  uint64_t stripe = router_.EcStripeOf(granule);
  int member = router_.EcMemberOf(granule);
  uint32_t page_idx = static_cast<uint32_t>((page_va & (kShardGranuleBytes - 1)) >> kPageShift);
  const ECCodec& codec = router_.ec_codec();
  uint8_t pbuf[kPageSize];
  int updated = 0;
  for (int p = 0; p < codec.m(); ++p) {
    int pmember = codec.k() + p;
    // An unreadable parity member (dead node, or mid-rebuild) is skipped:
    // its content is regenerated wholesale by the repair manager from the
    // data members, which already include this write-back.
    if (!router_.EcMemberReadable(stripe, pmember)) {
      continue;
    }
    int node = router_.EcNode(stripe, pmember);
    uint64_t parity_va = router_.EcMemberPageVa(stripe, pmember, page_idx);
    PageStore& pstore = router_.fabric().node(node).store();
    QueuePair* qp = router_.NodeQp(/*core=*/0, CommChannel::kManager, node);
    Completion r = qp->PostRead(++wr_id_, reinterpret_cast<uint64_t>(pbuf), parity_va,
                                kPageSize, now);
    if (r.status != WcStatus::kSuccess) {
      router_.ReportOpFailure(node, r.completion_time_ns);
      continue;
    }
    bool healthy = VerifyPageBytes(pstore, parity_va, pbuf);
    bool stale =
        healthy && PageIsStale(pstore, parity_va, router_.PageGeneration(parity_va));
    // Parity generations use bump-on-attempt too: the expected generation
    // rises before every RMW write, so a parity write dropped behind a
    // partition leaves that member detectably behind for the next round.
    uint32_t pgen = router_.PageGeneration(parity_va) + 1;
    if (!healthy || stale) {
      // Rotted (or flipped-in-flight) parity — or a verified-but-stale one
      // whose last RMW write never landed: folding the delta into it and
      // writing back under a fresh checksum would *launder* the bad content
      // into verified-and-fresh state. Regenerate this parity page from the
      // current members instead — we run after the data write landed, so the
      // encode is consistent with the new content.
      if (!healthy) {
        stats_.checksum_mismatches++;
        tracer_->Record(r.completion_time_ns, TraceEvent::kChecksumMismatch, parity_va,
                        /*detail=*/0);
      } else {
        stats_.stale_copies_detected++;
        tracer_->Record(r.completion_time_ns, TraceEvent::kStaleCopy, parity_va,
                        static_cast<uint32_t>(node));
      }
      uint64_t cursor = r.completion_time_ns;
      if (!EcReconstructPage(router_, *cost_, /*core=*/0, CommChannel::kManager, stripe,
                             pmember, page_idx, pbuf, &cursor, &wr_id_, stats_, tracer_)) {
        continue;  // Too few readable members; the repair manager owns this.
      }
      router_.SetPageGeneration(parity_va, pgen);
      Completion w = WritePageChecked(qp, pstore, parity_va, pbuf, cursor, &wr_id_, stats_,
                                      tracer_, pgen);
      if (w.status != WcStatus::kSuccess) {
        router_.ReportOpFailure(node, w.completion_time_ns);
        continue;
      }
      stats_.checksum_heals++;
      tracer_->Record(w.completion_time_ns, TraceEvent::kChecksumHeal, parity_va,
                      static_cast<uint32_t>(node));
      router_.NoteWrittenGranule(ShardRouter::GranuleOf(parity_va));
      stats_.ec_parity_bytes += 2 * kPageSize;
      ++updated;
      continue;
    }
    ECCodec::XorMulInto(pbuf, delta, codec.Coef(pmember, member), kPageSize);
    router_.SetPageGeneration(parity_va, pgen);
    Completion w = WritePageChecked(qp, pstore, parity_va, pbuf, r.completion_time_ns,
                                    &wr_id_, stats_, tracer_, pgen);
    if (w.status != WcStatus::kSuccess) {
      router_.ReportOpFailure(node, w.completion_time_ns);
      continue;
    }
    router_.NoteWrittenGranule(ShardRouter::GranuleOf(parity_va));
    stats_.ec_parity_bytes += 2 * kPageSize;
    ++updated;
  }
  if (updated > 0) {
    stats_.ec_parity_updates++;
    tracer_->Record(now, TraceEvent::kParityUpdate, page_va, static_cast<uint32_t>(updated));
  }
}

void PageManager::ScrubTick(uint64_t now) {
  if (cfg_.scrub_pages_per_tick == 0 || router_.written_granules().empty()) {
    return;
  }
  if (scrub_granule_idx_ >= scrub_granules_.size()) {
    // Full pass done (or first tick): re-snapshot so granules written since
    // the last pass join the rotation. Sorted for a deterministic scan order.
    scrub_granules_.assign(router_.written_granules().begin(),
                           router_.written_granules().end());
    std::sort(scrub_granules_.begin(), scrub_granules_.end());
    scrub_granule_idx_ = 0;
    scrub_page_idx_ = 0;
  }
  for (size_t i = 0;
       i < cfg_.scrub_pages_per_tick && scrub_granule_idx_ < scrub_granules_.size(); ++i) {
    uint64_t page_va = (scrub_granules_[scrub_granule_idx_] << kShardGranuleShift) +
                       static_cast<uint64_t>(scrub_page_idx_) * kPageSize;
    ScrubPage(page_va, now);
    if (++scrub_page_idx_ >= kPagesPerGranule) {
      scrub_page_idx_ = 0;
      ++scrub_granule_idx_;
    }
  }
}

void PageManager::ScrubPage(uint64_t page_va, uint64_t now) {
  uint64_t granule = ShardRouter::GranuleOf(page_va);
  router_.ReplicaNodes(page_va, &scrub_nodes_);
  for (int node : scrub_nodes_) {
    if (!router_.Readable(node, granule)) {
      continue;  // Dead or mid-rebuild: the repair manager owns that copy.
    }
    PageStore& store = router_.fabric().node(node).store();
    if (!store.HasChecksum(page_va >> kPageShift)) {
      continue;  // Never fully written back; nothing to verify against.
    }
    stats_.scrub_pages++;
    Completion c =
        router_.NodeQp(/*core=*/0, CommChannel::kManager, node)
            ->PostRead(++wr_id_, reinterpret_cast<uint64_t>(scrub_buf_), page_va, kPageSize,
                       now);
    if (c.status != WcStatus::kSuccess) {
      router_.ReportOpFailure(node, c.completion_time_ns);
      continue;
    }
    if (VerifyPageBytes(store, page_va, scrub_buf_)) {
      if (PageIsStale(store, page_va, router_.PageGeneration(page_va))) {
        // Content-valid but generation-lagged: this copy missed a write-back
        // round behind a partition or a dropped write. Heal it from a fresh
        // replica before a failover could make it the only copy.
        stats_.stale_copies_detected++;
        tracer_->Record(c.completion_time_ns, TraceEvent::kStaleCopy, page_va,
                        static_cast<uint32_t>(node));
        ScrubRepair(page_va, node, c.completion_time_ns);
      }
      continue;  // Content-healthy copy.
    }
    stats_.checksum_mismatches++;
    tracer_->Record(c.completion_time_ns, TraceEvent::kChecksumMismatch, page_va,
                    /*detail=*/0);
    // Node-local re-hash of the *stored* bytes separates a bit flipped on
    // the scrub read itself (stored copy fine — nothing to repair) from
    // genuine at-rest rot.
    if (PageChecksum(store.PageData(page_va >> kPageShift)) ==
        store.Checksum(page_va >> kPageShift)) {
      continue;
    }
    ScrubRepair(page_va, node, c.completion_time_ns);
  }
}

void PageManager::ScrubRepair(uint64_t page_va, int node, uint64_t now) {
  uint64_t granule = ShardRouter::GranuleOf(page_va);
  uint8_t good[kPageSize];
  bool have_good = false;
  uint64_t cursor = now;
  // The generation installed with the repair write: a reconstruction yields
  // the current content (expected generation); a replica source carries its
  // own stored generation with its bytes.
  uint32_t gen = 0;
  if (router_.ec_enabled() && router_.ec().m > 0) {
    // EC holds one copy per page (data or parity member alike): the verified
    // content can only come from decoding the other stripe members.
    uint64_t stripe = router_.EcStripeOf(granule);
    int member = router_.EcMemberOf(granule);
    uint32_t page_idx =
        static_cast<uint32_t>((page_va & (kShardGranuleBytes - 1)) >> kPageShift);
    have_good = EcReconstructPage(router_, *cost_, /*core=*/0, CommChannel::kManager, stripe,
                                  member, page_idx, good, &cursor, &wr_id_, stats_, tracer_);
    if (have_good) {
      gen = router_.PageGeneration(page_va);
    }
  } else {
    // Replication: any other replica whose arrival verifies is a source.
    // The source must itself hold a checksum and a current generation — the
    // repair write installs fresh metadata, and hashing an unverifiable or
    // lagging copy would launder its stale bytes into verified-fresh state.
    for (int src : scrub_nodes_) {
      if (src == node || !router_.Readable(src, granule)) {
        continue;
      }
      const PageStore& sstore = router_.fabric().node(src).store();
      if (!sstore.HasChecksum(page_va >> kPageShift) ||
          PageIsStale(sstore, page_va, router_.PageGeneration(page_va))) {
        continue;
      }
      Completion c = router_.NodeQp(/*core=*/0, CommChannel::kManager, src)
                         ->PostRead(++wr_id_, reinterpret_cast<uint64_t>(good), page_va,
                                    kPageSize, cursor);
      if (c.status != WcStatus::kSuccess) {
        router_.ReportOpFailure(src, c.completion_time_ns);
        continue;
      }
      cursor = c.completion_time_ns;
      if (VerifyPageBytes(sstore, page_va, good)) {
        have_good = true;
        gen = sstore.Generation(page_va >> kPageShift);
        break;
      }
      stats_.checksum_mismatches++;
      tracer_->Record(cursor, TraceEvent::kChecksumMismatch, page_va, /*detail=*/0);
    }
  }
  if (!have_good) {
    return;  // No verified source left; a later demand read will report loss.
  }
  Completion w =
      WritePageChecked(router_.NodeQp(/*core=*/0, CommChannel::kManager, node),
                       router_.fabric().node(node).store(), page_va, good, cursor, &wr_id_,
                       stats_, tracer_, gen);
  if (w.status != WcStatus::kSuccess) {
    router_.ReportOpFailure(node, w.completion_time_ns);
    return;
  }
  stats_.scrub_repairs++;
  tracer_->Record(w.completion_time_ns, TraceEvent::kScrubRepair, page_va,
                  static_cast<uint32_t>(node));
}

bool PageManager::EvictOne(uint64_t now, uint64_t pinned_va) {
  size_t scanned = 0;
  size_t limit = lru_.size() * 2 + 1;
  while (!lru_.empty() && scanned < limit) {
    ++scanned;
    uint64_t page_va = lru_.front();
    lru_.pop_front();
    where_.erase(page_va);
    Pte* e = pt_.Entry(page_va, /*create=*/false);
    if (e == nullptr || PteTagOf(*e) != PteTag::kLocal) {
      // Page vanished (unmapped); drop the stale entry. It left residency
      // without OnUnmapped, so the gauge settles here.
      if (tenants_ != nullptr) {
        tenants_->OnResident(page_va, -1);
      }
      continue;
    }
    if (page_va == pinned_va) {
      lru_.push_back(page_va);
      where_[page_va] = std::prev(lru_.end());
      continue;
    }
    if (*e & kPteAccessed) {
      // Second chance: clear the accessed bit and rotate to the back.
      *e &= ~kPteAccessed;
      lru_.push_back(page_va);
      where_[page_va] = std::prev(lru_.end());
      continue;
    }
    // Victim found. Offer it to the compressed tier first — a tier-resident
    // page costs one local decompress on refault instead of an RDMA round
    // trip, and a dirty one defers its write-back to the background drain.
    if (tier_ != nullptr && TierAdmit(page_va, e, now)) {
      if (tenants_ != nullptr) {
        tenants_->OnResident(page_va, -1);  // Compressed, no longer frame-backed.
      }
      return true;
    }
    // Ensure the memory-node copy is current. Clean() deliberately keeps
    // the dirty bit when no replica accepted the write-back (total
    // partition): this frame is then the only current copy, and freeing it
    // would discard the page. Requeue such a victim and keep scanning —
    // clean pages (whose remote copy is current) remain evictable.
    if (*e & kPteDirty) {
      Clean(page_va, e, now);
      if (*e & kPteDirty) {
        lru_.push_back(page_va);
        where_[page_va] = std::prev(lru_.end());
        continue;
      }
    }
    uint32_t frame = static_cast<uint32_t>(PtePayload(*e));
    auto vec = vector_cleaned_.find(page_va);
    if (vec != vector_cleaned_.end()) {
      *pt_.Entry(page_va, true) = MakeActionPte(vec->second);
      vector_cleaned_.erase(vec);
    } else {
      // Even a clean page can evict to an action PTE: the memory node holds
      // the full (current) content, and the guide's live map tells the later
      // re-fetch which bytes are worth moving.
      std::vector<PageSegment> segs;
      if (guide_ != nullptr && guide_->LiveSegments(page_va, &segs) && !segs.empty() &&
          segs.size() <= cfg_.max_vector_segs &&
          !(segs.size() == 1 && segs[0].offset == 0 && segs[0].length == kPageSize)) {
        *pt_.Entry(page_va, true) = MakeActionPte(AllocActionSlot(std::move(segs)));
      } else {
        *pt_.Entry(page_va, true) = MakeRemotePte(page_va >> kPageShift);
      }
    }
    pool_.Free(frame);
    if (tenants_ != nullptr) {
      tenants_->OnResident(page_va, -1);
    }
    stats_.evictions++;
    tracer_->Record(now, TraceEvent::kEvict, page_va);
    return true;
  }
  return false;
}

bool PageManager::TierAdmit(uint64_t page_va, Pte* e, uint64_t now) {
  // Guided pages decline: their action-PTE eviction (live-segment encoding)
  // moves fewer bytes on the refault than whole-page compression saves.
  if (vector_cleaned_.count(page_va) != 0) {
    return false;
  }
  std::vector<PageSegment> segs;
  if (guide_ != nullptr && guide_->LiveSegments(page_va, &segs) && !segs.empty() &&
      segs.size() <= cfg_.max_vector_segs &&
      !(segs.size() == 1 && segs[0].offset == 0 && segs[0].length == kPageSize)) {
    return false;
  }
  uint32_t frame = static_cast<uint32_t>(PtePayload(*e));
  bool dirty = (*e & kPteDirty) != 0;
  uint32_t csize = 0;
  if (tier_->AdmitPage(page_va, pool_.Data(frame), dirty, &csize) !=
      CompressedTier::Admit::kStored) {
    stats_.tier_bypass_incompressible++;
    return false;  // Denser than max_ratio: take the normal remote path.
  }
  *pt_.Entry(page_va, true) = MakeTierPte(page_va >> kPageShift);
  pool_.Free(frame);
  stats_.evictions++;
  stats_.tier_stored_pages++;
  stats_.tier_compressed_bytes += csize;
  tracer_->Record(now, TraceEvent::kTierAdmit, page_va, csize);
  tracer_->Record(now, TraceEvent::kEvict, page_va);
  // One admission can push the pool at most one entry over budget; trim it
  // back right away so the DRAM budget holds between background ticks. The
  // stored_pages() > 1 guard keeps a sub-page-capacity tier from evicting
  // the entry it just admitted.
  while (tier_->OverCapacity() && tier_->stored_pages() > 1) {
    if (!TierEvictOne(now)) {
      break;
    }
  }
  return true;
}

bool PageManager::TierEvictOne(uint64_t now) {
  uint64_t va = 0;
  bool dirty = false;
  if (!tier_->Oldest(&va, &dirty)) {
    return false;
  }
  if (dirty) {
    // The tier may only drop content that has reached remote redundancy:
    // drain the deferred write-back first. A blob that no longer
    // decompresses (in-DRAM rot) can never drain — drop it rather than
    // wedge eviction behind it forever. If no replica accepts the write
    // (every node down or partitioned), keep the entry and requeue it —
    // the tier stays the only copy until a later tick succeeds.
    if (!tier_->Read(va, tier_buf_)) {
      TierDropCorrupt(va, now);
      return true;
    }
    if (!WriteBackFull(va, tier_buf_, now)) {
      tier_->Requeue(va);
      return false;
    }
    tier_->MarkClean(va);
  }
  tier_->Drop(va);
  *pt_.Entry(va, true) = MakeRemotePte(va >> kPageShift);
  stats_.tier_evictions++;
  tracer_->Record(now, TraceEvent::kTierEvict, va);
  return true;
}

void PageManager::TierDropCorrupt(uint64_t va, uint64_t now) {
  // A compressed blob that fails decompression holds nothing recoverable:
  // leaving it would leak its pool blocks against the capacity budget and
  // wedge LRU eviction on a Read() that can never succeed. Drop it and
  // fall back to the remote copy — which, for a dirty entry, misses the
  // deferred write-back: that loss is exactly what this counter makes
  // observable.
  tier_->Drop(va);
  *pt_.Entry(va, true) = MakeRemotePte(va >> kPageShift);
  stats_.tier_corrupt_drops++;
  tracer_->Record(now, TraceEvent::kTierCorrupt, va);
}

void PageManager::TierTick(uint64_t now) {
  if (tier_ == nullptr) {
    return;
  }
  // Drain deferred write-backs oldest-first, so entries nearing eviction are
  // already clean (droppable without a fault-path write) when pressure hits.
  tier_dirty_scratch_.clear();
  tier_->CollectDirty(tier_->config().clean_batch, &tier_dirty_scratch_);
  for (uint64_t va : tier_dirty_scratch_) {
    if (!tier_->Read(va, tier_buf_)) {
      TierDropCorrupt(va, now);  // Undecompressable: it can never drain.
      continue;
    }
    if (WriteBackFull(va, tier_buf_, now)) {
      tier_->MarkClean(va);
    }
  }
  while (tier_->OverCapacity() && tier_->stored_pages() > 1) {
    if (!TierEvictOne(now)) {
      break;
    }
  }
}

void PageManager::BackgroundTick(uint64_t now, uint64_t pinned_va) {
  // Cleaner: sweep a batch of the oldest pages, writing back dirty ones so
  // the reclaimer always finds clean victims.
  size_t cleaned = 0;
  for (auto it = lru_.begin(); it != lru_.end() && cleaned < cfg_.clean_batch; ++it) {
    Pte* e = pt_.Entry(*it, /*create=*/false);
    if (e != nullptr && PteTagOf(*e) == PteTag::kLocal && (*e & kPteDirty) &&
        (*e & kPteAccessed) == 0) {
      Clean(*it, e, now);
      ++cleaned;
    }
  }
  // Reclaimer: eagerly evict until the free target is met.
  size_t target = cfg_.free_target;
  size_t cap = pool_.total() / 4 + 1;
  if (target > cap) {
    target = cap;  // Never hold more than a quarter of a tiny pool free.
  }
  while (pool_.free_count() < target) {
    if (!EvictOne(now, pinned_va)) {
      break;
    }
  }
  // Compressed tier: drain deferred write-backs and trim to budget.
  TierTick(now);
  // Scrubber: opportunistic integrity sweep in the same idle loop (no-op
  // unless scrub_pages_per_tick is set).
  ScrubTick(now);
}

uint32_t PageManager::AllocFrame(Clock& clk, LatencyBreakdown* bd) {
  std::optional<uint32_t> fid = pool_.Alloc();
  if (!fid.has_value()) {
    // The background thread fell behind: direct reclaim in the fault path.
    ++direct_reclaims_;
    while (!fid.has_value()) {
      uint64_t admitted_before = stats_.tier_stored_pages;
      if (!EvictOne(clk.now())) {
        // Nothing evictable: the pool is exhausted and every resident page
        // is pinned — or dirty with no replica accepting write-backs, in
        // which case no frame can be freed without discarding a sole copy.
        // fid.value() below then fails loudly rather than corrupt silently.
        break;
      }
      uint64_t reclaim_ns = cfg_.direct_reclaim_ns;
      if (stats_.tier_stored_pages != admitted_before) {
        // Direct reclaim into the tier compresses in the fault path — the
        // one place compression is charged to an application core (the
        // background cleaner/reclaimer runs on spare cores).
        reclaim_ns += cost_->tier_compress_page_ns;
      }
      clk.Advance(reclaim_ns);
      if (bd != nullptr) {
        bd->Add(LatComp::kReclaim, reclaim_ns);
      }
      fid = pool_.Alloc();
    }
  }
  return fid.value();
}

}  // namespace dilos
