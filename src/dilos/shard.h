// Multi-node sharding and replication (paper Sec. 5.1: "Extending DiLOS to
// support multiple memory nodes for replication or sharding is a future
// research direction" — implemented here).
//
// Pages are sharded across memory nodes at kShardGranuleBytes (256 KB)
// granularity: coarse enough that a readahead window stays on one node,
// fine enough to spread strided streams. With replication R > 1, every
// granule also lives on the R-1 nodes following its home node; evictions
// and cleanings write all replicas, demand fetches read the first *live*
// replica — so a memory-node failure loses nothing (Infiniswap-style
// redundancy).
//
// Alternatively, erasure coding (ECConfig, Carbink-style) trades the Nx
// capacity of replication for a reconstruction path: consecutive granules
// form a (k, m) *stripe* — k data granules plus m parity granules, each
// member on a distinct non-spare node (home of member j of stripe s is
// (hash(s) + j) mod active). The single data copy of a page is read and
// written normally; the cleaner keeps the m parity granules consistent via
// read-modify-write deltas, and when a member's node dies, reads reconstruct
// the page from any k surviving members (src/recovery/ec.h).
//
// The router also carries the recovery subsystem's view of the cluster
// (src/recovery/): a per-node health state machine (live / suspect / dead /
// rebuilding), a per-granule remap table for granules whose replica set
// changed after a failure, and an optional pool of *spare* nodes that take
// no hashed traffic but serve as repair targets.
//
// This subsumes the communication module's shared-nothing queue layout:
// one QP per (core, module, node).
#ifndef DILOS_SRC_DILOS_SHARD_H_
#define DILOS_SRC_DILOS_SHARD_H_

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/dilos/comm.h"
#include "src/memnode/fabric.h"
#include "src/recovery/ec.h"
#include "src/tenant/tenant.h"

namespace dilos {

// Shard granule: the unit of placement, replication, and repair.
inline constexpr uint32_t kShardGranuleShift = 18;
inline constexpr uint64_t kShardGranuleBytes = 1ULL << kShardGranuleShift;  // 256 KB.
inline constexpr uint32_t kPagesPerGranule =
    static_cast<uint32_t>(kShardGranuleBytes / kPageSize);

// In EC mode parity granules live in the upper half of the far span (the
// memory region is bounded to [kFarBase, kFarBase + kFarSpan), so parity
// cannot sit above it); the data heap must stay below this line.
inline constexpr uint64_t kEcParityBase = kFarBase + kFarSpan / 2;

// Health of one memory node as tracked by the router. Transitions are driven
// by the failure detector (live -> suspect -> dead) and the repair manager
// (rebuilding -> live); FailNode()/RecoverNode() remain as oracle shims for
// tests that declare failures externally.
enum class NodeState : uint8_t {
  kLive,        // Serving reads and writes.
  kSuspect,     // Missed probes or op timeouts; still routed, under watch.
  kDead,        // Declared failed; never routed.
  kRebuilding,  // Admitted for writes (repair fills + fresh write-backs) but
                // readable only for granules whose rebuild has committed.
  kDraining,    // Being emptied by the migration manager: still serving reads
                // and writes for the granules it holds, but never picked as a
                // repair or migration target and never adopted by new data.
  kRetired,     // Drained and administratively removed: never routed, never
                // probed, never readmitted. Terminal.
};

class ShardRouter {
 public:
  // Result of read-replica selection.
  struct ReadTarget {
    QueuePair* qp = nullptr;
    int node = -1;
    bool degraded = false;     // Served by a non-primary replica.
    bool reconstruct = false;  // EC: no copy readable; decode from survivors.
    bool forwarded = false;    // Redirected by a migration forwarding window.
  };

  // A post-cutover forwarding window: reads that still select `from` (they
  // raced the remap) are redirected to `to` until the migration manager
  // closes the window at `expire_ns`. `from` stays in the replica set —
  // and keeps receiving writes — for the whole window, so a straggler the
  // redirect cannot reach (e.g. `to` dies right after commit) still reads
  // current bytes from the old holder.
  struct ForwardEntry {
    int from = -1;
    int to = -1;
    uint64_t expire_ns = 0;
  };

  // The trailing `spare_nodes` of the fabric are excluded from hash
  // placement; they only receive data when the repair manager adopts them.
  // When `ec.enabled`, erasure coding replaces replication: replication is
  // forced to 1 and k is clamped so every stripe member lands on a distinct
  // non-spare node.
  ShardRouter(Fabric& fabric, int num_cores, int replication, bool shared_queue,
              int spare_nodes = 0, const ECConfig& ec = {})
      : fabric_(&fabric),
        num_nodes_(fabric.num_nodes()),
        active_(ClampActive(num_nodes_, spare_nodes)),
        ec_(ResolveEc(ec, active_)),
        codec_(ec_.k, ec_.m),
        replication_(ec_.enabled          ? 1
                     : replication < 1    ? 1
                     : replication > active_ ? active_
                                             : replication),
        shared_(shared_queue),
        state_(static_cast<size_t>(num_nodes_), NodeState::kLive) {
    qps_.resize(static_cast<size_t>(num_cores));
    for (auto& per_core : qps_) {
      per_core.resize(static_cast<size_t>(CommChannel::kCount));
      for (size_t ch = 0; ch < per_core.size(); ++ch) {
        per_core[ch].resize(static_cast<size_t>(num_nodes_));
        for (int n = 0; n < num_nodes_; ++n) {
          per_core[ch][static_cast<size_t>(n)] =
              (shared_ && ch > 0)
                  ? per_core[0][static_cast<size_t>(n)]
                  : fabric.CreateQp(n, QpClassForChannel(static_cast<CommChannel>(ch)));
        }
      }
    }
  }

  static uint64_t GranuleOf(uint64_t vaddr) { return vaddr >> kShardGranuleShift; }

  // Home node of the page containing `vaddr` (hash-placed per granule so
  // strided or aligned access streams spread across nodes instead of
  // marching on one node in lockstep). Spares never home granules. In EC
  // mode consecutive granules are stripe members, so the member offset is
  // added to the *stripe's* hash: the k data + m parity members of one
  // stripe land on k + m distinct nodes.
  int NodeOf(uint64_t vaddr) const {
    uint64_t granule = GranuleOf(vaddr);
    if (ec_.enabled) {
      return EcHomeNode(EcStripeOf(granule), EcMemberOf(granule));
    }
    // With a tenant registry installed, each tenant's granules hash under a
    // per-tenant salt so tenants spread independently; untenanted granules
    // (salt 0) place exactly as before.
    uint64_t salt = tenants_ != nullptr ? tenants_->PlacementSalt(granule) : 0;
    return static_cast<int>(Mix(granule ^ salt) % static_cast<uint64_t>(active_));
  }

  // Threads the tenant namespace through placement. Install before any
  // granule is written: changing the salt afterwards would orphan placed
  // data (same contract as changing `replication`).
  void set_tenants(const TenantRegistry* t) { tenants_ = t; }
  const TenantRegistry* tenants() const { return tenants_; }

  // Effective replica set of the granule containing `vaddr`, primary first:
  // the remapped set if the granule was rebuilt after a failure, otherwise
  // the home node and its R-1 successors.
  void ReplicaNodes(uint64_t vaddr, std::vector<int>* out) const {
    out->clear();
    auto it = remap_.find(GranuleOf(vaddr));
    if (it != remap_.end()) {
      *out = it->second.replicas;
      return;
    }
    int home = NodeOf(vaddr);
    for (int r = 0; r < replication_; ++r) {
      out->push_back((home + r) % active_);
    }
  }

  // First readable replica of `vaddr` for reads, preferring fully-live
  // nodes: a replica on a suspect node (gray-slow, or striking out) is used
  // only when nothing healthier exists — this is the read steering of the
  // gray-failure path. `exclude` (a node whose copy failed checksum
  // verification) is never returned. qp == nullptr with reconstruct false
  // means no replica is readable at all; reconstruct true (EC) asks the
  // caller to decode from survivors first, with qp (possibly null) as the
  // suspect-copy fallback when fewer than k members remain readable.
  ReadTarget PickRead(int core, CommChannel ch, uint64_t vaddr, int exclude = -1) {
    uint64_t granule = GranuleOf(vaddr);
    auto it = remap_.find(granule);
    int count = it != remap_.end() ? static_cast<int>(it->second.replicas.size())
                                   : replication_;
    int home = it != remap_.end() ? -1 : NodeOf(vaddr);
    int rebuilding = it != remap_.end() ? it->second.rebuilding : -1;
    auto fw = forward_.find(granule);
    int suspect = -1;
    int suspect_rank = 0;
    for (int r = 0; r < count; ++r) {
      int n = it != remap_.end() ? it->second.replicas[static_cast<size_t>(r)]
                                 : (home + r) % active_;
      if (fw != forward_.end() && n == fw->second.from) {
        // This read raced a migration cutover: it selected the pre-remap
        // holder. Redirect to the new holder while the forwarding window is
        // open; if the new holder cannot serve (died right after commit),
        // fall through and serve from the old copy, which the window kept
        // receiving writes.
        int to = fw->second.to;
        if (to != exclude && Readable(to, granule) &&
            state_[static_cast<size_t>(to)] != NodeState::kSuspect) {
          return ReadTarget{Qp(core, ch, to), to, false, false, true};
        }
      }
      if (n == exclude || n == rebuilding || !Readable(n, granule)) {
        continue;  // Repair copy not landed yet, or node unusable.
      }
      if (state_[static_cast<size_t>(n)] == NodeState::kSuspect) {
        if (suspect < 0) {
          suspect = n;
          suspect_rank = r;
        }
        continue;
      }
      return ReadTarget{Qp(core, ch, n), n, r > 0};
    }
    // EC data granules have one copy; when it is unreadable — or held by a
    // suspect node — the page is better served by decoding k surviving
    // stripe members than by waiting on the slow/flaky copy.
    if (ec_.enabled && ec_.m > 0 && vaddr < kEcParityBase) {
      return ReadTarget{suspect >= 0 ? Qp(core, ch, suspect) : nullptr, suspect, true, true};
    }
    if (suspect >= 0) {
      return ReadTarget{Qp(core, ch, suspect), suspect, suspect_rank > 0};
    }
    return ReadTarget{};
  }

  QueuePair* ReadQp(int core, CommChannel ch, uint64_t vaddr) {
    return PickRead(core, ch, vaddr).qp;
  }

  // QPs toward every writable replica of `vaddr` — including a mid-rebuild
  // target, so write-backs racing a repair are not lost. `nodes`, when
  // given, receives the matching node ids (for op-failure attribution).
  void WriteQps(int core, CommChannel ch, uint64_t vaddr, std::vector<QueuePair*>* out,
                std::vector<int>* nodes = nullptr) {
    out->clear();
    if (nodes != nullptr) {
      nodes->clear();
    }
    uint64_t granule = GranuleOf(vaddr);
    bool first_write = written_granules_.insert(granule).second;
    auto it = remap_.find(granule);
    if (first_write && it == remap_.end()) {
      // A granule written for the *first* time while a replica is
      // mid-readmission (kRebuilding, re-admitted with a stale store): that
      // replica's copy of this granule is current — the write below is its
      // only content. Record a committed remap so Readable() serves it,
      // instead of waiting for the node-wide refill to finish. A retired
      // slot (the node was drained and decommissioned before this granule
      // ever held data) is substituted with a live node instead, so new
      // data never starts life under-replicated.
      int home = NodeOf(vaddr);
      bool rebuilding_member = false;
      bool retired_member = false;
      for (int r = 0; r < replication_; ++r) {
        NodeState s = state_[static_cast<size_t>((home + r) % active_)];
        rebuilding_member |= s == NodeState::kRebuilding;
        retired_member |= s == NodeState::kRetired;
      }
      if (rebuilding_member || retired_member) {
        std::vector<int> replicas;
        for (int k = 0; k < replication_; ++k) {
          int n = (home + k) % active_;
          if (state_[static_cast<size_t>(n)] != NodeState::kRetired) {
            replicas.push_back(n);
          }
        }
        while (retired_member && static_cast<int>(replicas.size()) < replication_) {
          int sub = SubstituteReplica(vaddr, replicas);
          if (sub < 0) {
            break;  // Not enough live nodes left; honest under-replication.
          }
          replicas.push_back(sub);
        }
        if (!replicas.empty()) {
          it = remap_.emplace(granule, GranuleRemap{std::move(replicas), -1}).first;
        }
      }
    }
    int count = it != remap_.end() ? static_cast<int>(it->second.replicas.size())
                                   : replication_;
    int home = it != remap_.end() ? -1 : NodeOf(vaddr);
    for (int r = 0; r < count; ++r) {
      int n = it != remap_.end() ? it->second.replicas[static_cast<size_t>(r)]
                                 : (home + r) % active_;
      NodeState s = state_[static_cast<size_t>(n)];
      if (s == NodeState::kDead || s == NodeState::kRetired) {
        continue;
      }
      out->push_back(Qp(core, ch, n));
      if (nodes != nullptr) {
        nodes->push_back(n);
      }
    }
  }

  // -- Replica-state machine --------------------------------------------------
  NodeState state(int node) const { return state_[static_cast<size_t>(node)]; }
  void MarkSuspect(int node) {
    if (state_[static_cast<size_t>(node)] == NodeState::kLive) {
      state_[static_cast<size_t>(node)] = NodeState::kSuspect;
    }
  }
  void MarkDead(int node) { state_[static_cast<size_t>(node)] = NodeState::kDead; }
  void MarkRebuilding(int node) { state_[static_cast<size_t>(node)] = NodeState::kRebuilding; }
  void MarkLive(int node) { state_[static_cast<size_t>(node)] = NodeState::kLive; }
  void MarkDraining(int node) { state_[static_cast<size_t>(node)] = NodeState::kDraining; }
  void MarkRetired(int node) { state_[static_cast<size_t>(node)] = NodeState::kRetired; }

  // Oracle shims: externally declared crash/recovery (tests, ablations).
  // RecoverNode assumes the node kept its store intact (instant re-sync);
  // detector-driven recovery instead re-admits nodes as kRebuilding.
  void FailNode(int node) { MarkDead(node); }
  void RecoverNode(int node) { MarkLive(node); }
  bool IsLive(int node) const {
    NodeState s = state_[static_cast<size_t>(node)];
    return s == NodeState::kLive || s == NodeState::kSuspect || s == NodeState::kDraining;
  }

  // -- Rebuild / remap plumbing (driven by the repair manager) ---------------
  // Installs the post-failure replica set for a granule. `target` (the new
  // replica being filled) immediately receives writes but serves no reads
  // until CommitRebuild.
  void BeginRebuild(uint64_t granule, std::vector<int> replicas, int target) {
    remap_[granule] = GranuleRemap{std::move(replicas), target};
  }
  void CommitRebuild(uint64_t granule) {
    auto it = remap_.find(granule);
    if (it != remap_.end()) {
      it->second.rebuilding = -1;
    }
  }
  // The in-flight rebuild target of a granule, or -1.
  int RebuildTarget(uint64_t granule) const {
    auto it = remap_.find(granule);
    return it == remap_.end() ? -1 : it->second.rebuilding;
  }

  // -- Live-migration plumbing (driven by the migration manager) --------------
  // Copy phase: `target` joins the granule's replica set as an uncommitted
  // rebuild target — it receives every racing write-back but serves no reads
  // — while the current holders (including the migration source) keep
  // serving. Appended *after* the existing replicas so the source stays the
  // EC primary (EcNode reads replicas[0]) until cutover.
  void BeginMigration(uint64_t granule, int source, int target) {
    std::vector<int> replicas;
    ReplicaNodes(granule << kShardGranuleShift, &replicas);
    replicas.push_back(target);
    remap_[granule] = GranuleRemap{std::move(replicas), target, source};
  }

  // Cutover: publishes the (caught-up) target for reads and opens the
  // forwarding window from the recorded source. The source stays in the
  // replica set — still written, redirect-shadowed for reads — until
  // FinishForward. Returns false when no migration is pending here.
  bool CommitMigration(uint64_t granule, uint64_t expire_ns) {
    auto it = remap_.find(granule);
    if (it == remap_.end() || it->second.rebuilding < 0 ||
        it->second.migrate_source < 0) {
      return false;
    }
    int target = it->second.rebuilding;
    int source = it->second.migrate_source;
    it->second.rebuilding = -1;
    it->second.migrate_source = -1;
    // A source that already left the set (it died mid-copy and the re-plan
    // dropped it) has no racing readers to redirect: commit without a window.
    for (int n : it->second.replicas) {
      if (n == source) {
        forward_[granule] = ForwardEntry{source, target, expire_ns};
        break;
      }
    }
    return true;
  }

  // Pre-commit abort: the uncommitted target leaves the replica set; the
  // original holders were serving all along, so nothing else changes.
  void RollbackMigration(uint64_t granule, int target) {
    auto it = remap_.find(granule);
    if (it == remap_.end() || it->second.rebuilding != target) {
      return;
    }
    it->second.rebuilding = -1;
    it->second.migrate_source = -1;
    EraseReplica(&it->second.replicas, target);
  }

  // Pending migration introspection: the replica being moved off / the one
  // being filled, or -1 when no migration is uncommitted on the granule.
  // (RebuildTarget alone cannot tell a migration from a repair fill.)
  int MigratingSource(uint64_t granule) const {
    auto it = remap_.find(granule);
    return it == remap_.end() ? -1 : it->second.migrate_source;
  }
  int MigratingTarget(uint64_t granule) const {
    auto it = remap_.find(granule);
    return it == remap_.end() || it->second.migrate_source < 0 ? -1
                                                               : it->second.rebuilding;
  }

  // Drops `node` from the granule's remapped replica set in place (re-plan
  // after its death), leaving any pending rebuild/migration state untouched —
  // used when an in-flight fill should keep running minus the dead source.
  void RemoveReplica(uint64_t granule, int node) {
    auto it = remap_.find(granule);
    if (it != remap_.end()) {
      EraseReplica(&it->second.replicas, node);
      // migrate_source is deliberately left alone even when it names `node`:
      // the migration's fill keeps running and CommitMigration notices the
      // missing source and commits without a forwarding window.
    }
  }

  // Window expiry: the redirect closes and the source finally leaves the
  // replica set. The caller owns dropping the source's stored pages.
  void FinishForward(uint64_t granule) {
    auto f = forward_.find(granule);
    if (f == forward_.end()) {
      return;
    }
    int from = f->second.from;
    forward_.erase(f);
    auto it = remap_.find(granule);
    if (it != remap_.end()) {
      EraseReplica(&it->second.replicas, from);
    }
  }

  // Post-commit failback: the cutover target died inside the forwarding
  // window, before the source copy was released. Undo the cutover — the
  // source (kept fresh by in-window writes) resumes as the replica.
  void FailbackMigration(uint64_t granule) {
    auto f = forward_.find(granule);
    if (f == forward_.end()) {
      return;
    }
    int to = f->second.to;
    forward_.erase(f);
    auto it = remap_.find(granule);
    if (it != remap_.end()) {
      EraseReplica(&it->second.replicas, to);
    }
  }

  // The forwarding window covering `granule`, or nullptr.
  const ForwardEntry* Forwarding(uint64_t granule) const {
    auto f = forward_.find(granule);
    return f == forward_.end() ? nullptr : &f->second;
  }
  const std::unordered_map<uint64_t, ForwardEntry>& forwards() const { return forward_; }

  // Readmission copy-merge: re-adds `node` to the granule's committed
  // replica set after its orphaned copy verified fresh-by-generation — the
  // copy is current, so redundancy comes back without a single page moving.
  void MergeReplica(uint64_t granule, int node) {
    auto it = remap_.find(granule);
    if (it == remap_.end()) {
      std::vector<int> replicas;
      ReplicaNodes(granule << kShardGranuleShift, &replicas);
      it = remap_.emplace(granule, GranuleRemap{std::move(replicas), -1}).first;
    }
    for (int n : it->second.replicas) {
      if (n == node) {
        return;
      }
    }
    it->second.replicas.push_back(node);
  }

  // Replicas of `vaddr` currently able to serve a read (excludes dead nodes
  // and uncommitted rebuild targets) — the redundancy actually available.
  int LiveReplicaCount(uint64_t vaddr) const {
    uint64_t granule = GranuleOf(vaddr);
    auto it = remap_.find(granule);
    int count = it != remap_.end() ? static_cast<int>(it->second.replicas.size())
                                   : replication_;
    int home = it != remap_.end() ? -1 : NodeOf(vaddr);
    int rebuilding = it != remap_.end() ? it->second.rebuilding : -1;
    int live = 0;
    for (int r = 0; r < count; ++r) {
      int n = it != remap_.end() ? it->second.replicas[static_cast<size_t>(r)]
                                 : (home + r) % active_;
      if (n != rebuilding && Readable(n, granule)) {
        ++live;
      }
    }
    return live;
  }

  // Whether `node` can serve reads for the granule containing this address.
  bool Readable(int node, uint64_t granule) const {
    NodeState s = state_[static_cast<size_t>(node)];
    if (s == NodeState::kLive || s == NodeState::kSuspect || s == NodeState::kDraining) {
      return true;
    }
    if (s == NodeState::kRebuilding) {
      // A rebuilding node holds only granules whose repair has committed.
      auto it = remap_.find(granule);
      if (it != remap_.end() && it->second.rebuilding == -1) {
        for (int n : it->second.replicas) {
          if (n == node) {
            return true;
          }
        }
      }
    }
    return false;
  }

  // Every granule that ever received a write-back: the authoritative work
  // list for repair scans (remote page content only exists via write-backs).
  const std::unordered_set<uint64_t>& written_granules() const { return written_granules_; }
  // Registers a granule written outside WriteQps (the cleaner's parity RMW
  // path posts to parity granules directly).
  void NoteWrittenGranule(uint64_t granule) { written_granules_.insert(granule); }

  // -- Write generations (freshness authority) --------------------------------
  // The expected generation of each page's remote copies: bumped by the
  // cleaner once per full-page write-back round *before* the replica fan-out
  // (bump-on-attempt), so a replica whose write was dropped — partitioned,
  // transient fault — holds a lagging generation and every read path can
  // tell its verified-but-stale bytes from fresh ones. 0 = never cleaned.
  uint32_t PageGeneration(uint64_t page_va) const {
    auto it = page_gen_.find(page_va >> kPageShift);
    return it == page_gen_.end() ? 0 : it->second;
  }
  void SetPageGeneration(uint64_t page_va, uint32_t gen) {
    page_gen_[page_va >> kPageShift] = gen;
  }

  // -- Erasure-coding layout ---------------------------------------------------
  // Stripe s = {data granules s*k .. s*k+k-1} ∪ {parity granules p=0..m-1 at
  // kEcParityBase}. Member j of stripe s homes on (Mix(s) + j) % active; a
  // rebuilt member's node comes from the remap table instead.
  bool ec_enabled() const { return ec_.enabled; }
  const ECConfig& ec() const { return ec_; }
  const ECCodec& ec_codec() const { return codec_; }

  bool EcIsParityGranule(uint64_t granule) const {
    return granule >= (kEcParityBase >> kShardGranuleShift);
  }

  // Stripe of a data *or* parity granule.
  uint64_t EcStripeOf(uint64_t granule) const {
    if (EcIsParityGranule(granule)) {
      uint64_t idx = granule - (kEcParityBase >> kShardGranuleShift);
      return idx / static_cast<uint64_t>(ec_.m) + EcStripeBase();
    }
    return granule / static_cast<uint64_t>(ec_.k);
  }

  // Member index (0..k-1 data, k..k+m-1 parity) of a granule within its stripe.
  int EcMemberOf(uint64_t granule) const {
    if (EcIsParityGranule(granule)) {
      uint64_t idx = granule - (kEcParityBase >> kShardGranuleShift);
      return ec_.k + static_cast<int>(idx % static_cast<uint64_t>(ec_.m));
    }
    return static_cast<int>(granule % static_cast<uint64_t>(ec_.k));
  }

  uint64_t EcMemberGranule(uint64_t stripe, int member) const {
    if (member < ec_.k) {
      return stripe * static_cast<uint64_t>(ec_.k) + static_cast<uint64_t>(member);
    }
    return (kEcParityBase >> kShardGranuleShift) +
           (stripe - EcStripeBase()) * static_cast<uint64_t>(ec_.m) +
           static_cast<uint64_t>(member - ec_.k);
  }

  uint64_t EcMemberPageVa(uint64_t stripe, int member, uint32_t page_idx) const {
    return (EcMemberGranule(stripe, member) << kShardGranuleShift) +
           static_cast<uint64_t>(page_idx) * kPageSize;
  }

  // Node currently holding stripe member `member` (remap-aware).
  int EcNode(uint64_t stripe, int member) const {
    auto it = remap_.find(EcMemberGranule(stripe, member));
    if (it != remap_.end() && !it->second.replicas.empty()) {
      return it->second.replicas[0];
    }
    return EcHomeNode(stripe, member);
  }

  // Whether stripe member `member` can serve reconstruction reads: its node
  // is readable for the member granule and no rebuild is mid-flight.
  bool EcMemberReadable(uint64_t stripe, int member) const {
    uint64_t g = EcMemberGranule(stripe, member);
    int n = EcNode(stripe, member);
    return n != RebuildTarget(g) && Readable(n, g);
  }

  // Members of `stripe` able to serve reconstruction reads, excluding `skip`.
  void EcReadableMembers(uint64_t stripe, int skip, std::vector<int>* out) const {
    out->clear();
    for (int j = 0; j < ec_.k + ec_.m; ++j) {
      if (j != skip && EcMemberReadable(stripe, j)) {
        out->push_back(j);
      }
    }
  }

  // Members of `stripe` whose current (remap-aware) holder is `node` — the
  // co-location accounting that small-fabric repair placement budgets
  // against: a node holding c members turns its failure into c erasures, so
  // placement keeps c within what the parity arm can absorb (c <= m).
  int EcMembersOnNode(uint64_t stripe, int node) const {
    int c = 0;
    for (int j = 0; j < ec_.k + ec_.m; ++j) {
      if (EcNode(stripe, j) == node) {
        ++c;
      }
    }
    return c;
  }

  // -- Op-failure reporting ---------------------------------------------------
  // The RDMA paths (fault handler, cleaner, prefetcher) report timed-out ops
  // here; the failure detector subscribes to turn them into health evidence.
  using OpFailureObserver = std::function<void(int node, uint64_t now_ns)>;
  void set_op_failure_observer(OpFailureObserver cb) { on_op_failure_ = std::move(cb); }
  void ReportOpFailure(int node, uint64_t now_ns) {
    if (on_op_failure_) {
      on_op_failure_(node, now_ns);
    }
  }

  // The fabric this router was built over — integrity verification reaches
  // through it for the per-node checksum metadata (the model shortcut for a
  // checksum trailer travelling with the payload).
  Fabric& fabric() const { return *fabric_; }

  int num_nodes() const { return num_nodes_; }
  int active_nodes() const { return active_; }
  int spare_nodes() const { return num_nodes_ - active_; }
  bool is_spare(int node) const { return node >= active_; }
  int replication() const { return replication_; }
  int num_cores() const { return static_cast<int>(qps_.size()); }

  // Direct QP to a specific node (EC reconstruction and parity RMW address
  // nodes by stripe membership rather than by vaddr hash).
  QueuePair* NodeQp(int core, CommChannel ch, int node) { return Qp(core, ch, node); }

 private:
  struct GranuleRemap {
    std::vector<int> replicas;  // Effective replica set, primary first.
    int rebuilding = -1;        // Target still being filled, or -1 (committed).
    // Replica being migrated *off* while `rebuilding` fills, or -1. This is
    // the durable migration intent: a migration coordinator that crashes and
    // restarts re-derives every half-done migration from (migrate_source,
    // rebuilding) pairs — the copy is idempotent, so it simply re-runs.
    int migrate_source = -1;
  };

  static int ClampActive(int num_nodes, int spare_nodes) {
    if (spare_nodes < 0) {
      spare_nodes = 0;
    }
    if (spare_nodes >= num_nodes) {
      spare_nodes = num_nodes - 1;  // At least one node must take traffic.
    }
    return num_nodes - spare_nodes;
  }

  static ECConfig ResolveEc(ECConfig ec, int active) {
    if (!ec.enabled) {
      return ec;
    }
    if (ec.m < 0) {
      ec.m = 0;
    }
    if (ec.m > active - 1) {
      ec.m = active - 1;  // Need at least one data member.
    }
    if (ec.k < 1) {
      ec.k = 1;
    }
    if (ec.k + ec.m > active) {
      ec.k = active - ec.m;  // Distinct node per stripe member.
    }
    return ec;
  }

  static uint64_t Mix(uint64_t g) {
    g *= 0x9E3779B97F4A7C15ULL;
    g ^= g >> 29;
    return g;
  }

  static void EraseReplica(std::vector<int>* replicas, int node) {
    for (size_t i = 0; i < replicas->size(); ++i) {
      if ((*replicas)[i] == node) {
        replicas->erase(replicas->begin() + static_cast<long>(i));
        return;
      }
    }
  }

  // Replacement for a retired default-placement slot: a routable non-spare
  // node outside `taken`. EC picks the node holding the fewest members of
  // the granule's stripe (same co-location accounting as repair placement);
  // replication probes forward from the home so placement stays
  // deterministic.
  int SubstituteReplica(uint64_t vaddr, const std::vector<int>& taken) const {
    auto usable = [&](int n) {
      NodeState s = state_[static_cast<size_t>(n)];
      if (s == NodeState::kRetired || s == NodeState::kDead || s == NodeState::kDraining) {
        return false;
      }
      for (int t : taken) {
        if (t == n) {
          return false;
        }
      }
      return true;
    };
    if (ec_.enabled) {
      uint64_t stripe = EcStripeOf(GranuleOf(vaddr));
      int best = -1;
      int best_members = 0;
      for (int n = 0; n < active_; ++n) {
        if (!usable(n)) {
          continue;
        }
        int c = EcMembersOnNode(stripe, n);
        if (best < 0 || c < best_members) {
          best = n;
          best_members = c;
        }
      }
      return best;
    }
    int home = NodeOf(vaddr);
    for (int off = 0; off < active_; ++off) {
      int n = (home + off) % active_;
      if (usable(n)) {
        return n;
      }
    }
    return -1;
  }

  int EcHomeNode(uint64_t stripe, int member) const {
    return static_cast<int>((Mix(stripe) + static_cast<uint64_t>(member)) %
                            static_cast<uint64_t>(active_));
  }

  // First stripe id of the far heap; parity indices are relative to it so
  // the parity region starts at kEcParityBase.
  uint64_t EcStripeBase() const {
    return (kFarBase >> kShardGranuleShift) / static_cast<uint64_t>(ec_.k);
  }

  QueuePair* Qp(int core, CommChannel ch, int node) {
    return qps_[static_cast<size_t>(core)][shared_ ? 0 : static_cast<size_t>(ch)]
               [static_cast<size_t>(node)];
  }

  Fabric* fabric_;
  const TenantRegistry* tenants_ = nullptr;  // Placement salt source; may be null.
  int num_nodes_;
  int active_;  // Nodes participating in hash placement; the rest are spares.
  ECConfig ec_;
  ECCodec codec_;
  int replication_;
  bool shared_;
  std::vector<NodeState> state_;
  std::unordered_map<uint64_t, GranuleRemap> remap_;
  std::unordered_map<uint64_t, ForwardEntry> forward_;  // Open cutover windows.
  std::unordered_set<uint64_t> written_granules_;
  std::unordered_map<uint64_t, uint32_t> page_gen_;  // page number -> expected gen.
  OpFailureObserver on_op_failure_;
  // [core][channel][node].
  std::vector<std::vector<std::vector<QueuePair*>>> qps_;
};

}  // namespace dilos

#endif  // DILOS_SRC_DILOS_SHARD_H_
