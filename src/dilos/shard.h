// Multi-node sharding and replication (paper Sec. 5.1: "Extending DiLOS to
// support multiple memory nodes for replication or sharding is a future
// research direction" — implemented here).
//
// Pages are sharded across memory nodes at kShardGranuleBytes (256 KB)
// granularity: coarse enough that a readahead window stays on one node,
// fine enough to spread strided streams. With replication R > 1, every
// granule also lives on the R-1 nodes following its home node; evictions
// and cleanings write all replicas, demand fetches read the first *live*
// replica — so a memory-node failure loses nothing (Infiniswap/Carbink-style
// redundancy, without the erasure coding).
//
// The router also carries the recovery subsystem's view of the cluster
// (src/recovery/): a per-node health state machine (live / suspect / dead /
// rebuilding), a per-granule remap table for granules whose replica set
// changed after a failure, and an optional pool of *spare* nodes that take
// no hashed traffic but serve as repair targets.
//
// This subsumes the communication module's shared-nothing queue layout:
// one QP per (core, module, node).
#ifndef DILOS_SRC_DILOS_SHARD_H_
#define DILOS_SRC_DILOS_SHARD_H_

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/dilos/comm.h"
#include "src/memnode/fabric.h"

namespace dilos {

// Shard granule: the unit of placement, replication, and repair.
inline constexpr uint32_t kShardGranuleShift = 18;
inline constexpr uint64_t kShardGranuleBytes = 1ULL << kShardGranuleShift;  // 256 KB.
inline constexpr uint32_t kPagesPerGranule =
    static_cast<uint32_t>(kShardGranuleBytes / kPageSize);

// Health of one memory node as tracked by the router. Transitions are driven
// by the failure detector (live -> suspect -> dead) and the repair manager
// (rebuilding -> live); FailNode()/RecoverNode() remain as oracle shims for
// tests that declare failures externally.
enum class NodeState : uint8_t {
  kLive,        // Serving reads and writes.
  kSuspect,     // Missed probes or op timeouts; still routed, under watch.
  kDead,        // Declared failed; never routed.
  kRebuilding,  // Admitted for writes (repair fills + fresh write-backs) but
                // readable only for granules whose rebuild has committed.
};

class ShardRouter {
 public:
  // Result of read-replica selection.
  struct ReadTarget {
    QueuePair* qp = nullptr;
    int node = -1;
    bool degraded = false;  // Served by a non-primary replica.
  };

  // The trailing `spare_nodes` of the fabric are excluded from hash
  // placement; they only receive data when the repair manager adopts them.
  ShardRouter(Fabric& fabric, int num_cores, int replication, bool shared_queue,
              int spare_nodes = 0)
      : num_nodes_(fabric.num_nodes()),
        active_(ClampActive(num_nodes_, spare_nodes)),
        replication_(replication < 1 ? 1
                     : replication > active_ ? active_
                                             : replication),
        shared_(shared_queue),
        state_(static_cast<size_t>(num_nodes_), NodeState::kLive) {
    qps_.resize(static_cast<size_t>(num_cores));
    for (auto& per_core : qps_) {
      per_core.resize(static_cast<size_t>(CommChannel::kCount));
      for (size_t ch = 0; ch < per_core.size(); ++ch) {
        per_core[ch].resize(static_cast<size_t>(num_nodes_));
        for (int n = 0; n < num_nodes_; ++n) {
          per_core[ch][static_cast<size_t>(n)] =
              (shared_ && ch > 0) ? per_core[0][static_cast<size_t>(n)] : fabric.CreateQp(n);
        }
      }
    }
  }

  static uint64_t GranuleOf(uint64_t vaddr) { return vaddr >> kShardGranuleShift; }

  // Home node of the page containing `vaddr` (hash-placed per granule so
  // strided or aligned access streams spread across nodes instead of
  // marching on one node in lockstep). Spares never home granules.
  int NodeOf(uint64_t vaddr) const {
    uint64_t granule = GranuleOf(vaddr);
    granule *= 0x9E3779B97F4A7C15ULL;
    granule ^= granule >> 29;
    return static_cast<int>(granule % static_cast<uint64_t>(active_));
  }

  // Effective replica set of the granule containing `vaddr`, primary first:
  // the remapped set if the granule was rebuilt after a failure, otherwise
  // the home node and its R-1 successors.
  void ReplicaNodes(uint64_t vaddr, std::vector<int>* out) const {
    out->clear();
    auto it = remap_.find(GranuleOf(vaddr));
    if (it != remap_.end()) {
      *out = it->second.replicas;
      return;
    }
    int home = NodeOf(vaddr);
    for (int r = 0; r < replication_; ++r) {
      out->push_back((home + r) % active_);
    }
  }

  // First readable replica of `vaddr` for reads. qp == nullptr only if no
  // replica is readable (all dead, or the sole copy is mid-rebuild).
  ReadTarget PickRead(int core, CommChannel ch, uint64_t vaddr) {
    uint64_t granule = GranuleOf(vaddr);
    auto it = remap_.find(granule);
    int count = it != remap_.end() ? static_cast<int>(it->second.replicas.size())
                                   : replication_;
    int home = it != remap_.end() ? -1 : NodeOf(vaddr);
    int rebuilding = it != remap_.end() ? it->second.rebuilding : -1;
    for (int r = 0; r < count; ++r) {
      int n = it != remap_.end() ? it->second.replicas[static_cast<size_t>(r)]
                                 : (home + r) % active_;
      if (n == rebuilding || !Readable(n, granule)) {
        continue;  // Repair copy not landed yet, or node unusable.
      }
      return ReadTarget{Qp(core, ch, n), n, r > 0};
    }
    return ReadTarget{};
  }

  QueuePair* ReadQp(int core, CommChannel ch, uint64_t vaddr) {
    return PickRead(core, ch, vaddr).qp;
  }

  // QPs toward every writable replica of `vaddr` — including a mid-rebuild
  // target, so write-backs racing a repair are not lost. `nodes`, when
  // given, receives the matching node ids (for op-failure attribution).
  void WriteQps(int core, CommChannel ch, uint64_t vaddr, std::vector<QueuePair*>* out,
                std::vector<int>* nodes = nullptr) {
    out->clear();
    if (nodes != nullptr) {
      nodes->clear();
    }
    uint64_t granule = GranuleOf(vaddr);
    written_granules_.insert(granule);
    auto it = remap_.find(granule);
    int count = it != remap_.end() ? static_cast<int>(it->second.replicas.size())
                                   : replication_;
    int home = it != remap_.end() ? -1 : NodeOf(vaddr);
    for (int r = 0; r < count; ++r) {
      int n = it != remap_.end() ? it->second.replicas[static_cast<size_t>(r)]
                                 : (home + r) % active_;
      if (state_[static_cast<size_t>(n)] == NodeState::kDead) {
        continue;
      }
      out->push_back(Qp(core, ch, n));
      if (nodes != nullptr) {
        nodes->push_back(n);
      }
    }
  }

  // -- Replica-state machine --------------------------------------------------
  NodeState state(int node) const { return state_[static_cast<size_t>(node)]; }
  void MarkSuspect(int node) {
    if (state_[static_cast<size_t>(node)] == NodeState::kLive) {
      state_[static_cast<size_t>(node)] = NodeState::kSuspect;
    }
  }
  void MarkDead(int node) { state_[static_cast<size_t>(node)] = NodeState::kDead; }
  void MarkRebuilding(int node) { state_[static_cast<size_t>(node)] = NodeState::kRebuilding; }
  void MarkLive(int node) { state_[static_cast<size_t>(node)] = NodeState::kLive; }

  // Oracle shims: externally declared crash/recovery (tests, ablations).
  // RecoverNode assumes the node kept its store intact (instant re-sync);
  // detector-driven recovery instead re-admits nodes as kRebuilding.
  void FailNode(int node) { MarkDead(node); }
  void RecoverNode(int node) { MarkLive(node); }
  bool IsLive(int node) const {
    NodeState s = state_[static_cast<size_t>(node)];
    return s == NodeState::kLive || s == NodeState::kSuspect;
  }

  // -- Rebuild / remap plumbing (driven by the repair manager) ---------------
  // Installs the post-failure replica set for a granule. `target` (the new
  // replica being filled) immediately receives writes but serves no reads
  // until CommitRebuild.
  void BeginRebuild(uint64_t granule, std::vector<int> replicas, int target) {
    remap_[granule] = GranuleRemap{std::move(replicas), target};
  }
  void CommitRebuild(uint64_t granule) {
    auto it = remap_.find(granule);
    if (it != remap_.end()) {
      it->second.rebuilding = -1;
    }
  }
  // The in-flight rebuild target of a granule, or -1.
  int RebuildTarget(uint64_t granule) const {
    auto it = remap_.find(granule);
    return it == remap_.end() ? -1 : it->second.rebuilding;
  }

  // Replicas of `vaddr` currently able to serve a read (excludes dead nodes
  // and uncommitted rebuild targets) — the redundancy actually available.
  int LiveReplicaCount(uint64_t vaddr) const {
    uint64_t granule = GranuleOf(vaddr);
    auto it = remap_.find(granule);
    int count = it != remap_.end() ? static_cast<int>(it->second.replicas.size())
                                   : replication_;
    int home = it != remap_.end() ? -1 : NodeOf(vaddr);
    int rebuilding = it != remap_.end() ? it->second.rebuilding : -1;
    int live = 0;
    for (int r = 0; r < count; ++r) {
      int n = it != remap_.end() ? it->second.replicas[static_cast<size_t>(r)]
                                 : (home + r) % active_;
      if (n != rebuilding && Readable(n, granule)) {
        ++live;
      }
    }
    return live;
  }

  // Whether `node` can serve reads for the granule containing this address.
  bool Readable(int node, uint64_t granule) const {
    NodeState s = state_[static_cast<size_t>(node)];
    if (s == NodeState::kLive || s == NodeState::kSuspect) {
      return true;
    }
    if (s == NodeState::kRebuilding) {
      // A rebuilding node holds only granules whose repair has committed.
      auto it = remap_.find(granule);
      if (it != remap_.end() && it->second.rebuilding == -1) {
        for (int n : it->second.replicas) {
          if (n == node) {
            return true;
          }
        }
      }
    }
    return false;
  }

  // Every granule that ever received a write-back: the authoritative work
  // list for repair scans (remote page content only exists via write-backs).
  const std::unordered_set<uint64_t>& written_granules() const { return written_granules_; }

  // -- Op-failure reporting ---------------------------------------------------
  // The RDMA paths (fault handler, cleaner, prefetcher) report timed-out ops
  // here; the failure detector subscribes to turn them into health evidence.
  using OpFailureObserver = std::function<void(int node, uint64_t now_ns)>;
  void set_op_failure_observer(OpFailureObserver cb) { on_op_failure_ = std::move(cb); }
  void ReportOpFailure(int node, uint64_t now_ns) {
    if (on_op_failure_) {
      on_op_failure_(node, now_ns);
    }
  }

  int num_nodes() const { return num_nodes_; }
  int active_nodes() const { return active_; }
  int spare_nodes() const { return num_nodes_ - active_; }
  bool is_spare(int node) const { return node >= active_; }
  int replication() const { return replication_; }
  int num_cores() const { return static_cast<int>(qps_.size()); }

 private:
  struct GranuleRemap {
    std::vector<int> replicas;  // Effective replica set, primary first.
    int rebuilding = -1;        // Target still being filled, or -1 (committed).
  };

  static int ClampActive(int num_nodes, int spare_nodes) {
    if (spare_nodes < 0) {
      spare_nodes = 0;
    }
    if (spare_nodes >= num_nodes) {
      spare_nodes = num_nodes - 1;  // At least one node must take traffic.
    }
    return num_nodes - spare_nodes;
  }

  QueuePair* Qp(int core, CommChannel ch, int node) {
    return qps_[static_cast<size_t>(core)][shared_ ? 0 : static_cast<size_t>(ch)]
               [static_cast<size_t>(node)];
  }

  int num_nodes_;
  int active_;  // Nodes participating in hash placement; the rest are spares.
  int replication_;
  bool shared_;
  std::vector<NodeState> state_;
  std::unordered_map<uint64_t, GranuleRemap> remap_;
  std::unordered_set<uint64_t> written_granules_;
  OpFailureObserver on_op_failure_;
  // [core][channel][node].
  std::vector<std::vector<std::vector<QueuePair*>>> qps_;
};

}  // namespace dilos

#endif  // DILOS_SRC_DILOS_SHARD_H_
