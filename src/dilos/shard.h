// Multi-node sharding and replication (paper Sec. 5.1: "Extending DiLOS to
// support multiple memory nodes for replication or sharding is a future
// research direction" — implemented here).
//
// Pages are sharded across memory nodes at 2 MB granularity (matching the
// leaf-table/huge-page unit). With replication R > 1, every page also
// lives on the R-1 nodes following its home node; evictions and cleanings
// write all replicas, demand fetches read the first *live* replica — so a
// memory-node failure loses nothing (Infiniswap/Carbink-style redundancy,
// without the erasure coding).
//
// This subsumes the communication module's shared-nothing queue layout:
// one QP per (core, module, node).
#ifndef DILOS_SRC_DILOS_SHARD_H_
#define DILOS_SRC_DILOS_SHARD_H_

#include <vector>

#include "src/dilos/comm.h"
#include "src/memnode/fabric.h"

namespace dilos {

class ShardRouter {
 public:
  ShardRouter(Fabric& fabric, int num_cores, int replication, bool shared_queue)
      : num_nodes_(fabric.num_nodes()),
        replication_(replication < 1 ? 1
                     : replication > num_nodes_ ? num_nodes_
                                                : replication),
        shared_(shared_queue),
        live_(static_cast<size_t>(num_nodes_), true) {
    qps_.resize(static_cast<size_t>(num_cores));
    for (auto& per_core : qps_) {
      per_core.resize(static_cast<size_t>(CommChannel::kCount));
      for (size_t ch = 0; ch < per_core.size(); ++ch) {
        per_core[ch].resize(static_cast<size_t>(num_nodes_));
        for (int n = 0; n < num_nodes_; ++n) {
          per_core[ch][static_cast<size_t>(n)] =
              (shared_ && ch > 0) ? per_core[0][static_cast<size_t>(n)] : fabric.CreateQp(n);
        }
      }
    }
  }

  // Home node of the page containing `vaddr` (256 KB shard granularity,
  // hash-placed so strided or aligned access streams spread across nodes
  // instead of marching on one node in lockstep).
  int NodeOf(uint64_t vaddr) const {
    uint64_t granule = vaddr >> 18;
    granule *= 0x9E3779B97F4A7C15ULL;
    granule ^= granule >> 29;
    return static_cast<int>(granule % static_cast<uint64_t>(num_nodes_));
  }

  // QP toward the first live replica of `vaddr` for reads. Returns nullptr
  // only if every replica is dead.
  QueuePair* ReadQp(int core, CommChannel ch, uint64_t vaddr) {
    int home = NodeOf(vaddr);
    for (int r = 0; r < replication_; ++r) {
      int n = (home + r) % num_nodes_;
      if (live_[static_cast<size_t>(n)]) {
        return Qp(core, ch, n);
      }
    }
    return nullptr;
  }

  // QPs toward every live replica of `vaddr` for writes.
  void WriteQps(int core, CommChannel ch, uint64_t vaddr, std::vector<QueuePair*>* out) {
    out->clear();
    int home = NodeOf(vaddr);
    for (int r = 0; r < replication_; ++r) {
      int n = (home + r) % num_nodes_;
      if (live_[static_cast<size_t>(n)]) {
        out->push_back(Qp(core, ch, n));
      }
    }
  }

  // Simulated memory-node crash / recovery.
  void FailNode(int node) { live_[static_cast<size_t>(node)] = false; }
  void RecoverNode(int node) { live_[static_cast<size_t>(node)] = true; }
  bool IsLive(int node) const { return live_[static_cast<size_t>(node)]; }

  int num_nodes() const { return num_nodes_; }
  int replication() const { return replication_; }
  int num_cores() const { return static_cast<int>(qps_.size()); }

 private:
  QueuePair* Qp(int core, CommChannel ch, int node) {
    return qps_[static_cast<size_t>(core)][shared_ ? 0 : static_cast<size_t>(ch)]
               [static_cast<size_t>(node)];
  }

  int num_nodes_;
  int replication_;
  bool shared_;
  std::vector<bool> live_;
  // [core][channel][node].
  std::vector<std::vector<std::vector<QueuePair*>>> qps_;
};

}  // namespace dilos

#endif  // DILOS_SRC_DILOS_SHARD_H_
