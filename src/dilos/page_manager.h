// DiLOS page manager (paper Sec. 4.4).
//
// The allocator hands out free frames; a background *cleaner* writes dirty
// pages back to the memory node and clears their dirty bits; a background
// *reclaimer* evicts the least-recently-used clean pages with a clock
// (second-chance) sweep over the LRU list. Both run eagerly so the fault
// handler virtually always finds a free frame — reclamation never shows up
// in the fault path (paper Fig. 6 shows zero reclaim time for DiLOS).
//
// Guided paging: when a guide supplies per-page live segments (from the
// allocator's bitmaps), the cleaner writes back only live bytes with one
// vectorized RDMA write (≤ max_vector_segs segments; the paper measured a
// sharp slowdown past three), and the reclaimer evicts the page to an
// *action* PTE holding an index into the vector log, so the later re-fetch
// also moves only live bytes.
#ifndef DILOS_SRC_DILOS_PAGE_MANAGER_H_
#define DILOS_SRC_DILOS_PAGE_MANAGER_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/dilos/guide.h"
#include "src/dilos/shard.h"
#include "src/pt/frame_pool.h"
#include "src/pt/page_table.h"
#include "src/rdma/queue_pair.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"
#include "src/tier/tier.h"

namespace dilos {

struct PageManagerConfig {
  size_t free_target = 64;       // Keep at least this many frames free.
  size_t clean_batch = 32;       // Dirty pages cleaned per background tick.
  uint32_t max_vector_segs = 3;  // Longest scatter/gather vector to use.
  uint64_t direct_reclaim_ns = 1800;  // Fault-path cost per direct-reclaim victim.
  // Background scrubber: remote pages re-read and verified per background
  // tick (0 = off). The scrubber walks every granule that ever received a
  // write-back, round-robin, re-hashing each stored replica copy against its
  // checksum and repairing latent corruption from another verified replica
  // (or by EC reconstruction) before a demand read ever meets it.
  size_t scrub_pages_per_tick = 0;
};

class PageManager {
 public:
  // Write-backs go through `router` on the manager channel — to every live
  // replica when replication is enabled, or to the single data copy plus a
  // parity read-modify-write per parity member in EC mode. `cost` prices the
  // EC decode on the degraded old-content path (defaults to the testbed
  // model when null).
  PageManager(FramePool& pool, PageTable& pt, ShardRouter& router, RuntimeStats& stats,
              Tracer* tracer = nullptr, PageManagerConfig cfg = {},
              const CostModel* cost = nullptr);

  void set_guide(Guide* guide) { guide_ = guide; }
  // Arms the compressed local tier (src/tier): clock victims are compressed
  // into it instead of leaving the machine, with write-backs deferred to
  // this manager's background loop. Null disables the tier (default).
  void set_tier(CompressedTier* tier) { tier_ = tier; }
  // Arms tenant accounting: resident gauges track OnMapped/OnUnmapped and
  // eviction, and full write-backs pass quota admission (src/tenant/tenant.h).
  // Null disables tenancy (default).
  void set_tenants(TenantRegistry* t) { tenants_ = t; }

  // Registers a page that just became resident (most recently used).
  void OnMapped(uint64_t page_va);
  // Drops tracking for a page unmapped outside reclamation.
  void OnUnmapped(uint64_t page_va);

  // Background cleaner + reclaimer work at simulated time `now`. CPU time is
  // not charged to any application core (it runs on spare cores); write-back
  // traffic occupies the shared link. `pinned_va` (the page a fault handler
  // is currently operating on) is never evicted.
  void BackgroundTick(uint64_t now, uint64_t pinned_va = UINT64_MAX);

  // Allocates a frame for the fault handler. On the eager-eviction fast path
  // this is a free-list pop; if the pool is exhausted (the background thread
  // fell behind) a direct reclaim runs in the fault path, charging `clk` and
  // recording LatComp::kReclaim in `bd`.
  uint32_t AllocFrame(Clock& clk, LatencyBreakdown* bd);

  // Action-log access for the runtime's action-PTE fault path.
  const std::vector<PageSegment>* ActionSegments(uint64_t log_idx) const;
  void ReleaseAction(uint64_t log_idx);

  size_t resident_count() const { return lru_.size(); }
  uint64_t direct_reclaims() const { return direct_reclaims_; }

 private:
  // Writes the page back if dirty (full page, or vectorized live segments if
  // the guide provides them), clearing the dirty bit. Records the vector in
  // the action log so eviction can use it.
  void Clean(uint64_t page_va, Pte* e, uint64_t now);

  // Full-page checked write-back of `data` to every writable replica (with
  // the EC parity RMW and a write-generation bump), shared by the cleaner
  // and the tier's deferred write-back drain. True if at least one replica
  // accepted the write — the durability bar for dropping local copies.
  bool WriteBackFull(uint64_t page_va, const uint8_t* data, uint64_t now);

  // One clock-algorithm step; returns true if a page was evicted.
  bool EvictOne(uint64_t now, uint64_t pinned_va = UINT64_MAX);

  // Quota admission for a full write-back of `page_va`: true when the page
  // is already charged, untenanted, within quota, or room was reclaimed
  // under kReclaimOwnColdest. False = hard reject; the caller must keep the
  // dirty bit (the same contract as a total-partition write-back failure).
  bool TenantAdmitWriteBack(uint64_t page_va, uint64_t now);
  // Drops the remote copies of `tenant`'s coldest eligible resident charged
  // page (never `skip_va`), re-marking its PTE dirty so the local frame
  // stays authoritative — a lossless way to free one quota slot.
  bool ReclaimTenantRemote(int tenant, uint64_t skip_va, uint64_t now);

  // Compressed-tier admission of the eviction victim behind `e`: returns
  // true if the page moved into the tier (frame freed, PTE -> kTier).
  // Guided pages and incompressible pages decline.
  bool TierAdmit(uint64_t page_va, Pte* e, uint64_t now);
  // Pushes the tier's oldest entry remotely (draining its deferred
  // write-back first); false when the tier is empty or the write-back
  // found no live replica (the entry is kept and requeued).
  bool TierEvictOne(uint64_t now);
  // Drops a tier entry whose blob no longer decompresses (in-DRAM rot),
  // pointing the PTE back at the remote copy and counting the loss.
  void TierDropCorrupt(uint64_t va, uint64_t now);
  // Background tier maintenance: drain a batch of deferred write-backs and
  // trim the pool back under its capacity budget.
  void TierTick(uint64_t now);

  uint64_t AllocActionSlot(std::vector<PageSegment> segs);

  // EC: fetches the page's *current* remote content (direct read, or
  // reconstruction when the home copy is unreadable) so the parity RMW
  // folds an exact old-xor-new delta. Returns false if the stripe has
  // already lost more than m members.
  bool EcOldContent(uint64_t page_va, uint8_t* out, uint64_t now);
  // EC: applies delta = old ^ new to every readable parity member of the
  // page's stripe (read parity, fold Coef(k+p, member) * delta, write back).
  void EcUpdateParity(uint64_t page_va, const uint8_t* old_page, const uint8_t* new_page,
                      uint64_t now);

  // Scrubber: verifies the next scrub_pages_per_tick stored pages, cycling
  // over a sorted snapshot of the written granules (re-snapshotted each full
  // pass so new granules join the rotation).
  void ScrubTick(uint64_t now);
  // Re-reads every readable checksummed copy of one page; a copy whose
  // *stored* bytes no longer hash to the installed checksum is rewritten
  // from a verified replica or an EC reconstruction.
  void ScrubPage(uint64_t page_va, uint64_t now);
  // Rewrites the rotted copy of `page_va` on `node` from redundancy.
  void ScrubRepair(uint64_t page_va, int node, uint64_t now);

  FramePool& pool_;
  PageTable& pt_;
  ShardRouter& router_;
  RuntimeStats& stats_;
  Tracer* tracer_;
  std::vector<QueuePair*> write_qps_;  // Scratch for replica fan-out.
  std::vector<int> write_nodes_;       // Node ids matching write_qps_.
  PageManagerConfig cfg_;
  const CostModel* cost_;
  Guide* guide_ = nullptr;
  CompressedTier* tier_ = nullptr;
  TenantRegistry* tenants_ = nullptr;  // Quota + residency accounting; may be null.
  std::vector<int> reclaim_nodes_;     // Scratch for quota-reclaim replica drops.

  // LRU order: front = oldest. The clock hand sweeps from the front.
  std::list<uint64_t> lru_;
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> where_;

  // Pages cleaned via a vectorized write: page_va -> action-log index whose
  // segments describe the valid bytes on the memory node.
  std::unordered_map<uint64_t, uint64_t> vector_cleaned_;

  std::vector<std::vector<PageSegment>> action_log_;
  std::vector<uint64_t> action_free_;

  // Scrub cursor: sorted granule snapshot + position, so the scan order is
  // deterministic regardless of hash-set iteration order.
  std::vector<uint64_t> scrub_granules_;
  size_t scrub_granule_idx_ = 0;
  uint32_t scrub_page_idx_ = 0;
  std::vector<int> scrub_nodes_;       // Scratch for replica enumeration.
  uint8_t scrub_buf_[kPageSize] = {};  // Arrival buffer for scrub reads.

  uint8_t tier_buf_[kPageSize] = {};        // Decompression buffer for tier drains.
  std::vector<uint64_t> tier_dirty_scratch_;  // Dirty-batch scratch.

  uint64_t wr_id_ = 0;
  uint64_t direct_reclaims_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_DILOS_PAGE_MANAGER_H_
