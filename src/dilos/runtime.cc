#include "src/dilos/runtime.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/recovery/ec_read.h"
#include "src/recovery/integrity.h"

namespace dilos {

namespace {

uint64_t PageOf(uint64_t vaddr) { return vaddr & ~static_cast<uint64_t>(kPageSize - 1); }

}  // namespace

// Causality-tracking context handed to app-aware guides at fault time.
class RuntimeGuideContext : public GuideContext {
 public:
  RuntimeGuideContext(DilosRuntime& rt, int core, uint64_t start_ns)
      : rt_(rt), core_(core), cursor_ns_(start_ns) {}

  uint64_t SubpageRead(uint64_t vaddr, uint32_t len, void* dst) override {
    ShardRouter::ReadTarget t = rt_.router_.PickRead(core_, CommChannel::kGuide, vaddr);
    if (t.qp == nullptr) {
      uint64_t page_va = PageOf(vaddr);
      if (t.reconstruct &&
          rt_.EcDemandReconstruct(page_va, reinterpret_cast<uint64_t>(scratch_), nullptr,
                                  core_, CommChannel::kGuide, &cursor_ns_)) {
        std::memcpy(dst, scratch_ + (vaddr - page_va), len);
        rt_.stats_.subpage_fetches++;
        rt_.stats_.bytes_fetched += len;
        return cursor_ns_;
      }
      std::memset(dst, 0, len);  // Every replica is down; the chase ends here.
      return cursor_ns_;
    }
    Completion c = t.qp->PostRead(++rt_.wr_id_, reinterpret_cast<uint64_t>(scratch_), vaddr,
                                  len, cursor_ns_);
    if (c.status != WcStatus::kSuccess) {
      rt_.router_.ReportOpFailure(t.node, c.completion_time_ns);
      std::memset(scratch_, 0, len);
    }
    std::memcpy(dst, scratch_, len);
    rt_.stats_.subpage_fetches++;
    rt_.stats_.bytes_fetched += len;
    cursor_ns_ = c.completion_time_ns;
    return cursor_ns_;
  }

  bool PrefetchPage(uint64_t vaddr) override {
    // Full-page fetches ride the prefetch queue; the guide queue is kept
    // for subpage reads so the pointer-chasing chain is never serialized
    // behind its own page fills (Sec. 4.5: guides get separate queues).
    return rt_.StartPrefetch(PageOf(vaddr), cursor_ns_, core_, CommChannel::kPrefetch);
  }

  bool IsResident(uint64_t vaddr) override {
    Pte pte = rt_.pt_.Get(vaddr);
    PteTag tag = PteTagOf(pte);
    return tag == PteTag::kLocal || tag == PteTag::kFetching;
  }

  bool ReadResident(uint64_t vaddr, uint32_t len, void* dst) override {
    Pte pte = rt_.pt_.Get(vaddr);
    if (PteTagOf(pte) != PteTag::kLocal) {
      return false;
    }
    uint32_t off = static_cast<uint32_t>(vaddr & (kPageSize - 1));
    if (off + len > kPageSize) {
      return false;
    }
    auto frame = static_cast<uint32_t>(PtePayload(pte & ~(kPteAccessed | kPteDirty)));
    std::memcpy(dst, rt_.pool_.Data(frame) + off, len);
    return true;
  }

  uint64_t now() const override { return cursor_ns_; }

 private:
  DilosRuntime& rt_;
  int core_;
  uint64_t cursor_ns_;
  uint8_t scratch_[kPageSize];
};

DilosRuntime::DilosRuntime(Fabric& fabric, DilosConfig cfg,
                           std::unique_ptr<Prefetcher> prefetcher)
    : fabric_(fabric),
      cfg_(cfg),
      cost_(fabric.cost()),
      tracer_(cfg.trace_capacity),
      pool_(cfg.local_mem_bytes / kPageSize),
      clocks_(static_cast<size_t>(cfg.num_cores)),
      router_(fabric, cfg.num_cores, cfg.replication, cfg.shared_queue,
              cfg.recovery.spare_nodes, cfg.ec),
      pm_(pool_, pt_, router_, stats_, &tracer_,
          [&cfg] {
            // Each core keeps a readahead window in flight; the eager free
            // pool must cover all of them or prefetching self-throttles.
            PageManagerConfig pm = cfg.pm;
            uint64_t per_core = 32;
            if (pm.free_target < per_core * static_cast<uint64_t>(cfg.num_cores)) {
              pm.free_target = per_core * static_cast<uint64_t>(cfg.num_cores);
            }
            return pm;
          }(),
          &cost_),
      tracker_(cfg.hit_tracker_window) {
  prefetchers_.push_back(std::move(prefetcher));
  for (int c = 1; c < cfg.num_cores; ++c) {
    prefetchers_.push_back(prefetchers_[0]->Clone());
  }
  if (cfg_.fault_seed != 0) {
    fabric_.injector().Reseed(cfg_.fault_seed);
  }
  if (cfg_.tier.enabled) {
    tier_ = std::make_unique<CompressedTier>(cfg_.tier);
    pm_.set_tier(tier_.get());
  }
  if (cfg_.tenants.enabled) {
    tenants_ = std::make_unique<TenantRegistry>(kShardGranuleShift);
    router_.set_tenants(tenants_.get());  // Per-tenant placement salt.
    pm_.set_tenants(tenants_.get());      // Residency gauges + quota admission.
    if (cfg_.tenants.fair_share) {
      wire_sched_ = std::make_unique<FairLinkScheduler>(fabric_.num_nodes(), tenants_.get());
      fabric_.set_scheduler(wire_sched_.get());
    }
  }
  if (cfg_.fault_pipeline.enabled) {
    pipelines_.reserve(static_cast<size_t>(cfg_.num_cores));
    for (int c = 0; c < cfg_.num_cores; ++c) {
      pipelines_.emplace_back(cfg_.fault_pipeline.depth);
    }
    harvest_scratch_.reserve(cfg_.fault_pipeline.depth);
  }
  if (cfg_.recovery.enabled) {
    detector_ = std::make_unique<FailureDetector>(fabric_, router_, stats_, &tracer_,
                                                  cfg_.recovery.detector);
    repair_ = std::make_unique<RepairManager>(fabric_, router_, *detector_, stats_, &tracer_,
                                              cfg_.recovery.repair);
    migration_ = std::make_unique<MigrationManager>(fabric_, router_, *detector_, stats_,
                                                    &tracer_, cfg_.recovery.migration);
    size_t stride = tenants_ != nullptr ? TenantRegistry::kMaxTenants + 1 : 1;
    retry_budget_.assign(static_cast<size_t>(cfg_.num_cores) * stride,
                         RetryBudget{cfg_.recovery.retry_burst, 0});
    // Timed-out ops anywhere in the paging paths become detector evidence.
    router_.set_op_failure_observer(
        [this](int node, uint64_t now_ns) { detector_->OnOpTimeout(node, now_ns); });
    // A restored node answering probes again re-enters through the repair
    // manager: re-admitted as rebuilding, its stale granules refilled.
    detector_->set_readmit_observer(
        [this](int node, uint64_t now_ns) { repair_->OnNodeReadmitted(node, now_ns); });
  }
  if (tenants_ != nullptr && cfg_.tenants.hotness.enabled && migration_ != nullptr) {
    // The auto-migrator drives MigrateGranule from per-node serve-load EWMAs;
    // it watches the fabric's metrics *slot* so a registry installed below
    // (telemetry) is seen without re-wiring.
    hotness_ = std::make_unique<HotnessMonitor>(router_, *migration_, fabric_.metrics_slot(),
                                                stats_, &tracer_, cfg_.tenants.hotness,
                                                fabric_.num_nodes());
  }
  fault_scope_.resize(static_cast<size_t>(cfg_.num_cores));
  if (cfg_.telemetry.enabled()) {
    telemetry_ = std::make_unique<Telemetry>(cfg_.telemetry, fabric.num_nodes());
    metrics_registry_ = telemetry_->metrics();
    flight_ = telemetry_->flight();
    attr_ = telemetry_->attribution();
    slo_ = telemetry_->slo();
    if (attr_ != nullptr && cfg_.fault_pipeline.enabled) {
      parked_slices_.resize(static_cast<size_t>(cfg_.num_cores) *
                            static_cast<size_t>(cfg_.fault_pipeline.depth));
    }
    if (metrics_registry_ != nullptr) {
      // QPs (created above, via the router/detector/repair ctors) hold a
      // pointer to the fabric's registry slot, so installing now covers them.
      fabric_.set_metrics(metrics_registry_);
      if (repair_ != nullptr) {
        // Per-node traffic becomes the rebuild-placement tiebreaker.
        repair_->set_metrics(metrics_registry_);
      }
      if (migration_ != nullptr) {
        migration_->set_metrics(metrics_registry_);
      }
      if (tenants_ != nullptr) {
        // Per-(node, tenant) serve/maint cells: the registry resolves each
        // op's remote address to its owning tenant.
        TenantRegistry* reg = tenants_.get();
        metrics_registry_->set_tenant_lookup(
            [reg](uint64_t addr) { return reg->TenantOfAddr(addr); });
      }
    }
    if (flight_ != nullptr) {
      tracer_.set_sink(flight_);
    }
    if (telemetry_->distributions() != nullptr) {
      stats_.fault_breakdown.set_distributions(telemetry_->distributions());
    }
    if (cfg_.telemetry.span_capacity != 0) {
      tracer_.EnableSpans(cfg_.telemetry.span_capacity);
    }
  }
}

DilosRuntime::~DilosRuntime() {
  if (wire_sched_ != nullptr && fabric_.scheduler() == wire_sched_.get()) {
    fabric_.set_scheduler(nullptr);  // The fabric may outlive this runtime.
  }
  if (telemetry_ == nullptr) {
    return;
  }
  if (metrics_registry_ != nullptr && fabric_.metrics() == metrics_registry_) {
    fabric_.set_metrics(nullptr);  // The fabric may outlive this runtime.
  }
  tracer_.set_sink(nullptr);
  stats_.fault_breakdown.set_distributions(nullptr);
  if (telemetry_->config().check_invariants) {
    std::vector<std::string> violations =
        CheckStatsInvariants(stats_, /*tier_enabled=*/tier_ != nullptr);
    if (tenants_ != nullptr) {
      // Tenancy shutdown audit: per-tenant gauges must sum to the global
      // totals, retired tenants must own nothing, quotas must hold.
      std::vector<std::string> tv = CheckTenantInvariants(tenants_->InvariantView());
      violations.insert(violations.end(), tv.begin(), tv.end());
    }
    if (!violations.empty()) {
      for (const std::string& v : violations) {
        std::fprintf(stderr, "RuntimeStats invariant violated: %s\n", v.c_str());
      }
      std::abort();
    }
  }
}

void DilosRuntime::RecoveryTick(uint64_t now) {
  if (detector_ != nullptr) {
    detector_->Tick(now);
  }
  if (repair_ != nullptr) {
    repair_->Tick(now);
  }
  if (migration_ != nullptr) {
    migration_->Tick(now);
  }
  if (hotness_ != nullptr) {
    hotness_->Tick(now);
  }
}

void DilosRuntime::Background(uint64_t now, uint64_t pinned_va) {
  pm_.BackgroundTick(now, pinned_va);
  RecoveryTick(now);
  if (flight_ != nullptr) {
    // Anomaly check on the background hook: the recorder dumps at (nearly)
    // the moment a loss counter first moves, not at shutdown.
    flight_->MaybeTrigger(now, stats_, metrics_registry_);
  }
}

void DilosRuntime::DriveRecovery(uint64_t duration_ns) {
  Clock& clk = clocks_[0];
  uint64_t end = clk.now() + duration_ns;
  uint64_t step = detector_ != nullptr ? detector_->config().probe_interval_ns : 10'000;
  if (step == 0) {
    step = 1'000;
  }
  while (clk.now() < end) {
    clk.Advance(step);
    RecoveryTick(clk.now());
  }
}

Completion DilosRuntime::DemandFetch(uint64_t page_va, uint64_t frame_addr,
                                     const std::vector<PageSegment>* segs, int core,
                                     CommChannel ch, uint64_t* cursor_ns) {
  uint32_t max_retries = detector_ != nullptr ? detector_->config().max_retries : 0;
  uint64_t backoff = detector_ != nullptr ? detector_->config().backoff_base_ns : 0;
  // Mismatch retries are budgeted separately from timeout retries: a wire
  // flip and a dead node are different failures and one must not starve the
  // other's recovery path. The budget is deliberately generous — wire flips
  // on successive reads are independent, so each extra re-read multiplies
  // the abandon probability down by the flip rate, while the cost of a
  // retry is one page read. Abandoning surfaces a zero-filled page, so only
  // a copy that mismatches persistently (stored rot with every partner
  // unreachable) should exhaust it.
  constexpr uint32_t kMaxMismatchRetries = 8;
  Completion c{0, WcStatus::kTimeout, *cursor_ns};
  uint32_t timeout_attempts = 0;
  uint32_t mismatch_attempts = 0;
  int exclude = -1;        // Node whose stored copy proved corrupt.
  int last_mismatch = -1;  // Node whose last arrival failed verification.
  bool poisoned = false;   // The frame currently holds unverified bytes.
  while (timeout_attempts <= max_retries && mismatch_attempts <= kMaxMismatchRetries) {
    ShardRouter::ReadTarget t = router_.PickRead(core, ch, page_va, exclude);
    if (t.reconstruct) {
      // EC steering: the single copy is unreadable, corrupt, or on a suspect
      // node — decode from survivors first; t.qp (a suspect copy, if any)
      // is the fallback when fewer than k members are readable.
      uint64_t ec_start_ns = *cursor_ns;
      bool decoded = EcDemandReconstruct(page_va, frame_addr, segs, core, ch, cursor_ns);
      // The decode delta is stamped here at the demand call site, not inside
      // EcDemandReconstruct: guide contexts reconstruct on private cursors
      // with no fault in flight.
      AttrAdd(core, FaultPhase::kEcDecode, *cursor_ns - ec_start_ns);
      if (decoded) {
        if (exclude >= 0 && segs == nullptr) {
          HealCorruptReplica(page_va, exclude, reinterpret_cast<const uint8_t*>(frame_addr),
                             *cursor_ns, core);
        }
        return Completion{wr_id_, WcStatus::kSuccess, *cursor_ns};
      }
    }
    if (t.qp == nullptr) {
      if (exclude >= 0) {
        // Excluding the corrupt copy left nothing to read (its partners are
        // dead or partitioned). A copy whose arrivals mismatched may still
        // be flips on the wire, not rot in the store — un-exclude it and
        // keep re-reading on the remaining mismatch budget rather than
        // abandoning the fetch.
        exclude = -1;
        last_mismatch = -1;
        continue;
      }
      break;  // No readable replica left at all.
    }
    uint32_t attempt_span = tracer_.BeginSpan(SpanKind::kFetchAttempt, *cursor_ns, page_va,
                                              static_cast<uint32_t>(t.node));
    uint64_t post_ns = *cursor_ns;
    if (segs == nullptr) {
      c = t.qp->PostRead(++wr_id_, frame_addr, page_va, kPageSize, *cursor_ns);
    } else {
      WorkRequest wr;
      wr.wr_id = ++wr_id_;
      wr.opcode = RdmaOpcode::kRead;
      wr.rkey = t.qp->remote_rkey();
      for (const PageSegment& s : *segs) {
        wr.local.push_back({frame_addr + s.offset, s.length});
        wr.remote.push_back({page_va + s.offset, s.length});
      }
      c = t.qp->PostSend(wr, *cursor_ns);
    }
    *cursor_ns = c.completion_time_ns;
    tracer_.EndSpan(attempt_span, *cursor_ns);
    if (attr_ != nullptr && *cursor_ns > post_ns) {
      // Split this attempt between scheduler-lane queueing and the wire
      // itself using the QP's breakdown of the post we just issued
      // (read-after-post is safe: the simulator is single-threaded).
      uint64_t total = *cursor_ns - post_ns;
      uint64_t lane = t.qp->last_wire_breakdown().lane_ns;
      lane = lane < total ? lane : total;
      AttrAdd(core, FaultPhase::kLaneWait, lane);
      AttrAdd(core, FaultPhase::kWire, total - lane);
    }
    if (c.status == WcStatus::kSuccess) {
      if (segs == nullptr &&
          !VerifyPageBytes(fabric_.node(t.node).store(), page_va,
                           reinterpret_cast<const uint8_t*>(frame_addr))) {
        // Corrupt arrival. First mismatch from a node: assume a wire flip
        // and re-read (possibly the same replica). A second mismatch from
        // the same node means its *stored* copy rotted: exclude it, fetch
        // from another replica (or EC survivors), then heal it.
        stats_.checksum_mismatches++;
        stats_.refetches++;
        ++mismatch_attempts;
        poisoned = true;
        tracer_.Record(*cursor_ns, TraceEvent::kChecksumMismatch, page_va, /*detail=*/0);
        if (t.node == last_mismatch) {
          exclude = t.node;
        }
        last_mismatch = t.node;
        continue;
      }
      if (segs == nullptr && exclude < 0 &&
          !fabric_.node(t.node).store().HasChecksum(page_va >> kPageShift) &&
          ReplicaHasChecksumElsewhere(page_va, t.node)) {
        // Unverifiable arrival from a replica that should have been cleaned:
        // some other replica holds a checksum for this page, so a full
        // write-back happened — this copy missed it (dropped by a partition
        // or a transient fault). Its bytes are stale or zero; steer to a
        // verifiable copy instead of trusting them.
        stats_.refetches++;
        ++mismatch_attempts;
        poisoned = true;
        tracer_.Record(*cursor_ns, TraceEvent::kChecksumMismatch, page_va,
                       /*detail=*/2);  // 2 = unverifiable copy bypassed.
        exclude = t.node;
        continue;
      }
      if (PageIsStale(fabric_.node(t.node).store(), page_va,
                      router_.PageGeneration(page_va))) {
        // Verified-but-stale arrival: the copy's checksum matches its bytes,
        // but its write generation lags the cleaner's expected one — it
        // missed at least one full write-back round (dropped behind a
        // partition). Steer to a fresh replica or the EC survivors; the
        // successful fetch then heals this copy with current bytes and
        // generation. Generations are pure store-side metadata, so unlike
        // the checksum checks above this applies to vectored (action-PTE)
        // refetches too — only the byte-level heal stays full-page-only.
        stats_.stale_copies_detected++;
        stats_.refetches++;
        ++mismatch_attempts;
        poisoned = true;
        tracer_.Record(*cursor_ns, TraceEvent::kStaleCopy, page_va,
                       static_cast<uint32_t>(t.node));
        exclude = t.node;
        continue;
      }
      poisoned = false;
      if (detector_ != nullptr) {
        detector_->OnOpSuccess(t.node, *cursor_ns);
      }
      if (t.degraded) {
        stats_.degraded_reads++;
        tracer_.Record(*cursor_ns, TraceEvent::kDegradedRead, page_va,
                       static_cast<uint32_t>(t.node));
      }
      if (t.forwarded) {
        // This read raced a migration cutover and was redirected by the
        // forwarding window instead of failing against the old mapping.
        stats_.migration_forwards++;
        tracer_.Record(*cursor_ns, TraceEvent::kMigrateForward, page_va,
                       static_cast<uint32_t>(t.node));
      }
      if (exclude >= 0 && segs == nullptr) {
        HealCorruptReplica(page_va, exclude, reinterpret_cast<const uint8_t*>(frame_addr),
                           *cursor_ns, core);
      }
      return c;
    }
    ++timeout_attempts;
    if (!retry_budget_.empty()) {
      // Per-core retry token bucket: a long partition degrades to failover
      // instead of a retry storm. The timeouts already burned fed the
      // detector its strikes — by the time a (generous) bucket drains, the
      // node is declared dead and PickRead steers away without retrying —
      // so suppressing the remaining retries loses no evidence.
      // With tenancy enabled the bucket is per (core, tenant) and the refill
      // period is the tenant's weight share — a partition hammered by one
      // tenant cannot drain another tenant's retry budget.
      RetryBudget& rb = retry_budget_[RetryIndex(core, page_va)];
      uint64_t refill_ns = RetryRefillNs(page_va);
      if (refill_ns > 0 && *cursor_ns > rb.last_refill_ns) {
        uint64_t earned = (*cursor_ns - rb.last_refill_ns) / refill_ns;
        if (earned > 0) {
          rb.tokens = std::min<uint64_t>(rb.tokens + earned, cfg_.recovery.retry_burst);
          rb.last_refill_ns += earned * refill_ns;
        }
      }
      if (rb.tokens == 0) {
        stats_.fault_retries_suppressed++;
        router_.ReportOpFailure(t.node, *cursor_ns);
        break;
      }
      --rb.tokens;
    }
    stats_.fetch_retries++;
    if (metrics_registry_ != nullptr) {
      // The choke point saw the individual timed-out post; the *decision* to
      // retry is runtime-level and attributed here.
      metrics_registry_->OnRetry(t.node, QpClassForChannel(ch));
    }
    router_.ReportOpFailure(t.node, *cursor_ns);
    uint32_t backoff_span =
        tracer_.BeginSpan(SpanKind::kRetryBackoff, *cursor_ns, page_va, timeout_attempts);
    uint64_t backoff_ns = backoff << (timeout_attempts - 1);  // Exponential backoff.
    *cursor_ns += backoff_ns;
    AttrAdd(core, FaultPhase::kBackoff, backoff_ns);
    tracer_.EndSpan(backoff_span, *cursor_ns);
  }
  stats_.failed_fetches++;
  if (poisoned && segs == nullptr) {
    // Bytes that failed verification are never surfaced: zero the frame and
    // report the fetch failed (the caller's !kSuccess path zeroes too).
    std::memset(reinterpret_cast<uint8_t*>(frame_addr), 0, kPageSize);
    c.status = WcStatus::kTimeout;
  }
  return c;
}

void DilosRuntime::HealCorruptReplica(uint64_t page_va, int node, const uint8_t* good,
                                      uint64_t issue_ns, int core) {
  if (node < 0) {
    return;
  }
  if (!router_.Readable(node, ShardRouter::GranuleOf(page_va))) {
    return;  // Died or went into rebuild meanwhile; the repair manager owns it.
  }
  PageStore& store = fabric_.node(node).store();
  // The healed copy carries the current expected generation: the bytes we
  // write are the ones the successful (fresh) fetch verified.
  uint32_t heal_span = tracer_.BeginSpan(SpanKind::kHeal, issue_ns, page_va,
                                         static_cast<uint32_t>(node));
  Completion c = WritePageChecked(router_.NodeQp(/*core=*/0, CommChannel::kManager, node),
                                  store, page_va, good, issue_ns, &wr_id_, stats_, &tracer_,
                                  router_.PageGeneration(page_va));
  tracer_.EndSpan(heal_span, c.completion_time_ns);
  // kHeal is off-path by construction: the heal write is posted at the
  // demand fetch's completion time without advancing the fault cursor, so
  // it never extends the faulting thread's latency.
  AttrAdd(core, FaultPhase::kHeal,
          c.completion_time_ns > issue_ns ? c.completion_time_ns - issue_ns : 0);
  if (c.status != WcStatus::kSuccess) {
    router_.ReportOpFailure(node, c.completion_time_ns);
    return;
  }
  stats_.checksum_heals++;
  tracer_.Record(c.completion_time_ns, TraceEvent::kChecksumHeal, page_va,
                 static_cast<uint32_t>(node));
}

bool DilosRuntime::ReplicaHasChecksumElsewhere(uint64_t page_va, int except) {
  router_.ReplicaNodes(page_va, &replica_scratch_);
  uint64_t granule = ShardRouter::GranuleOf(page_va);
  for (int n : replica_scratch_) {
    if (n != except && router_.Readable(n, granule) &&
        fabric_.node(n).store().HasChecksum(page_va >> kPageShift)) {
      return true;
    }
  }
  return false;
}

bool DilosRuntime::EcDemandReconstruct(uint64_t page_va, uint64_t frame_addr,
                                       const std::vector<PageSegment>* segs, int core,
                                       CommChannel ch, uint64_t* cursor_ns) {
  uint64_t granule = ShardRouter::GranuleOf(page_va);
  uint64_t stripe = router_.EcStripeOf(granule);
  int member = router_.EcMemberOf(granule);
  uint32_t page_idx = static_cast<uint32_t>((page_va & (kShardGranuleBytes - 1)) >> kPageShift);
  uint8_t page[kPageSize];
  uint32_t decode_span = tracer_.BeginSpan(SpanKind::kEcDecode, *cursor_ns, page_va,
                                           static_cast<uint32_t>(member));
  if (!EcReconstructPage(router_, cost_, core, ch, stripe, member, page_idx, page, cursor_ns,
                         &wr_id_, stats_, &tracer_)) {
    tracer_.EndSpan(decode_span, *cursor_ns);
    return false;
  }
  tracer_.EndSpan(decode_span, *cursor_ns);
  uint8_t* dst = reinterpret_cast<uint8_t*>(frame_addr);
  if (segs == nullptr) {
    std::memcpy(dst, page, kPageSize);
  } else {
    for (const PageSegment& s : *segs) {
      std::memcpy(dst + s.offset, page + s.offset, s.length);
    }
  }
  // A reconstruction reads k survivor pages where a healthy fetch reads one;
  // the caller accounts the first page, the fan-out surplus lands here.
  stats_.bytes_fetched +=
      static_cast<uint64_t>(router_.ec_codec().k() - 1) * kPageSize;
  stats_.ec_degraded_reads++;
  stats_.degraded_reads++;
  tracer_.Record(*cursor_ns, TraceEvent::kDegradedRead, page_va,
                 static_cast<uint32_t>(member));
  return true;
}

uint64_t DilosRuntime::AllocRegion(uint64_t bytes) {
  uint64_t base = next_region_;
  uint64_t pages = (bytes + kPageSize - 1) / kPageSize;
  next_region_ += (pages + 16) * kPageSize;  // Guard gap between regions.
  return base;
}

uint64_t DilosRuntime::AllocRegion(uint64_t bytes, int tenant) {
  // Granule-aligned base and span: BindRange maps whole granules to the
  // tenant, so a granule shared with a neighbor would mis-attribute pages.
  next_region_ = (next_region_ + kShardGranuleBytes - 1) & ~(kShardGranuleBytes - 1);
  uint64_t base = next_region_;
  uint64_t span = (bytes + kShardGranuleBytes - 1) & ~(kShardGranuleBytes - 1);
  next_region_ += span + 16 * kPageSize;  // Guard gap between regions.
  if (tenants_ != nullptr && tenant >= 0) {
    tenants_->BindRange(base, span, tenant);
  }
  return base;
}

void DilosRuntime::FreeRegion(uint64_t addr, uint64_t bytes) {
  uint64_t end = addr + bytes;
  for (uint64_t page_va = PageOf(addr); page_va < end; page_va += kPageSize) {
    Pte* e = pt_.Entry(page_va, /*create=*/false);
    if (e == nullptr) {
      continue;
    }
    if (tenants_ != nullptr) {
      // Freed content is no longer stored on the tenant's behalf: release
      // its quota slot (no-op for never-charged pages).
      tenants_->Uncharge(page_va);
    }
    switch (PteTagOf(*e)) {
      case PteTag::kLocal:
        pool_.Free(static_cast<uint32_t>(PtePayload(*e & ~(kPteAccessed | kPteDirty))));
        pm_.OnUnmapped(page_va);
        break;
      case PteTag::kFetching: {
        // Let the in-flight fill land in its frame, then drop it.
        auto it = inflight_.find(page_va);
        if (it != inflight_.end()) {
          pool_.Free(it->second.frame);
          if (it->second.demand && RetireParked(page_va)) {
            stats_.fault_inflight--;  // Torn down, not resumed.
            DropParkedSlice(page_va);  // Never installed; nothing to attribute.
          }
          inflight_.erase(it);
        }
        break;
      }
      case PteTag::kAction:
        pm_.ReleaseAction(PtePayload(*e));
        break;
      case PteTag::kTier:
        tier_->Drop(page_va);  // Freed content needs no write-back.
        break;
      case PteTag::kRemote:
      case PteTag::kEmpty:
        break;
    }
    *e = 0;
  }
}

uint64_t DilosRuntime::MaxTimeNs() const {
  uint64_t t = 0;
  for (const Clock& c : clocks_) {
    t = c.now() > t ? c.now() : t;
  }
  return t;
}

bool DilosRuntime::RetireParked(uint64_t page_va) {
  for (FaultPipeline& p : pipelines_) {
    if (p.Retire(page_va)) {
      return true;
    }
  }
  return false;
}

uint32_t DilosRuntime::BeginFault(int core, uint64_t page_va, uint64_t entry_ns,
                                  uint64_t span_now) {
  FaultScope& s = fault_scope_[static_cast<size_t>(core)];
  if (s.depth++ == 0) {
    s.span = tracer_.BeginSpan(SpanKind::kFault, span_now, page_va);
    s.page_va = page_va;
    s.moved = false;
    if (attr_ != nullptr) {
      s.slice.Clear();
      s.slice.start_ns = entry_ns;
    }
  }
  return s.span;
}

void DilosRuntime::EndFault(int core, uint64_t now) {
  FaultScope& s = fault_scope_[static_cast<size_t>(core)];
  if (s.depth == 0 || --s.depth != 0) {
    return;  // Inner handler of a retried fault; the outermost scope owns it.
  }
  tracer_.EndSpan(s.span, now);
  s.span = 0;
  if (attr_ != nullptr && !s.moved) {
    CommitFaultSlice(s.slice, s.page_va, now);
  }
}

void DilosRuntime::AttrAdd(int core, FaultPhase p, uint64_t dt) {
  if (attr_ == nullptr || dt == 0) {
    return;
  }
  FaultScope& s = fault_scope_[static_cast<size_t>(core)];
  if (s.depth == 0) {
    return;  // Guide-context / background work with no fault in flight.
  }
  if (s.moved) {
    // The fault already parked into the pipeline; late stamps (the
    // depth-limit stall at end of handler) chase the parked slice.
    ParkedSlice* ps = FindParkedSlice(s.page_va);
    if (ps != nullptr) {
      ps->slice.Add(p, dt);
    }
    return;
  }
  s.slice.Add(p, dt);
}

void DilosRuntime::CommitFaultSlice(const FaultSlice& slice, uint64_t page_va,
                                    uint64_t end_ns) {
  uint64_t e2e = end_ns >= slice.start_ns ? end_ns - slice.start_ns : 0;
  int tenant = tenants_ != nullptr ? tenants_->TenantOfAddr(page_va) : -1;
  attr_->Commit(tenant, slice, e2e);
  if (slo_ != nullptr && slo_->Observe(tenant, e2e, end_ns)) {
    tracer_.Record(end_ns, TraceEvent::kSloBreach, page_va,
                   tenant < 0 ? 0 : static_cast<uint32_t>(tenant));
    if (flight_ != nullptr) {
      // A burn-rate breach is exactly the moment the flight recorder exists
      // for: dump the recent window plus the attribution/SLO snapshot that
      // says *where* the latency went.
      std::string extra = attr_->Report();
      extra += slo_->Report();
      flight_->ForceDump(end_ns, stats_, metrics_registry_, "slo-breach", extra);
    }
  }
}

DilosRuntime::ParkedSlice* DilosRuntime::FindParkedSlice(uint64_t page_va) {
  for (ParkedSlice& p : parked_slices_) {
    if (p.used && p.page_va == page_va) {
      return &p;
    }
  }
  return nullptr;
}

void DilosRuntime::ParkFaultSlice(int core, uint64_t page_va, uint64_t done_ns) {
  FaultScope& s = fault_scope_[static_cast<size_t>(core)];
  if (s.depth == 0) {
    return;
  }
  // The scope hands its slice to the pipeline even when attribution is off
  // in the narrow sense (attr_ null => pool is empty and the loop is a
  // no-op); `moved` still flips so EndFault knows not to commit.
  for (ParkedSlice& p : parked_slices_) {
    if (!p.used) {
      p.used = true;
      p.page_va = page_va;
      p.done_ns = done_ns;
      p.slice = s.slice;
      s.moved = true;
      return;
    }
  }
  // Pool exhausted (cannot happen: sized cores x depth, the pipeline admits
  // at most depth fibers per core). Drop attribution rather than misattribute.
  s.moved = true;
}

void DilosRuntime::DropParkedSlice(uint64_t page_va) {
  if (attr_ == nullptr) {
    return;
  }
  ParkedSlice* p = FindParkedSlice(page_va);
  if (p != nullptr) {
    p->used = false;
  }
}

void DilosRuntime::HarvestFaultPipeline(int core, uint64_t now) {
  FaultPipeline& pipe = pipelines_[static_cast<size_t>(core)];
  harvest_scratch_.clear();
  if (pipe.HarvestUpTo(now, &harvest_scratch_) == 0) {
    return;
  }
  Clock& clk = clocks_[static_cast<size_t>(core)];
  LatencyBreakdown& bd = stats_.fault_breakdown;
  uint32_t resume_span =
      tracer_.BeginSpan(SpanKind::kFaultResume, clk.now(), harvest_scratch_.front().page_va,
                        static_cast<uint32_t>(harvest_scratch_.size()));
  if (pipe.depth() > 1) {
    clk.Advance(cost_.cq_poll_ns);  // One coalesced poll covers the batch.
  }
  size_t installed = 0;
  for (const FaultFiber& f : harvest_scratch_) {
    auto it = inflight_.find(f.page_va);
    if (it == inflight_.end()) {
      DropParkedSlice(f.page_va);
      continue;  // Resolved externally (freed region) between park and poll.
    }
    Inflight inf = it->second;
    inflight_.erase(it);
    uint64_t pre_map_ns = clk.now();
    MapInflight(f.page_va, inf, inf.write);
    clk.Advance(cost_.dilos_map_ns);
    bd.Add(LatComp::kMap, cost_.dilos_map_ns);
    if (attr_ != nullptr) {
      // Finalize this fiber at its own install point: park covers everything
      // between the fetch completion and the map (other fibers' installs,
      // the coalesced poll, whatever the core overlapped), map is this
      // fiber's own install. The batch-amortized TLB flush below lands
      // outside every harvested fiber's end-to-end window by construction.
      ParkedSlice* ps = FindParkedSlice(f.page_va);
      if (ps != nullptr) {
        ps->slice.Add(FaultPhase::kPark,
                      pre_map_ns > ps->done_ns ? pre_map_ns - ps->done_ns : 0);
        ps->slice.Add(FaultPhase::kMap, cost_.dilos_map_ns);
        CommitFaultSlice(ps->slice, f.page_va, clk.now());
        ps->used = false;
      }
    }
    stats_.fault_resumes++;
    stats_.fault_inflight--;
    ++installed;
  }
  if (installed > 0) {
    // The batch commits with a single TLB/PTE flush — the install cost the
    // pipeline amortizes over the whole harvest.
    clk.Advance(cost_.map_tlb_flush_ns);
    bd.Add(LatComp::kMap, cost_.map_tlb_flush_ns);
    if (pipe.depth() > 1) {
      clk.Advance(cost_.fiber_resume_ns);
    }
    stats_.fault_batched_installs++;
  }
  tracer_.EndSpan(resume_span, clk.now());
}

void DilosRuntime::Quiesce() {
  for (size_t c = 0; c < pipelines_.size(); ++c) {
    while (!pipelines_[c].empty()) {
      clocks_[c].AdvanceTo(pipelines_[c].OldestDoneNs());
      HarvestFaultPipeline(static_cast<int>(c), clocks_[c].now());
    }
  }
}

uint8_t* DilosRuntime::Pin(uint64_t vaddr, uint32_t len, bool write, int core) {
  Clock& clk = clocks_[static_cast<size_t>(core)];
  Pte* e = pt_.Entry(vaddr, /*create=*/true);
  if (PteTagOf(*e) == PteTag::kLocal) {
    // Fast path: the software stand-in for the MMU walk.
    *e |= kPteAccessed | (write ? kPteDirty : 0);
    clk.Advance(cost_.local_pin_ns +
                static_cast<uint64_t>(cost_.local_per_byte_ns * static_cast<double>(len)));
    return pool_.Data(static_cast<uint32_t>(PtePayload(*e))) + (vaddr & (kPageSize - 1));
  }
  return HandleFault(vaddr, len, write, core);
}

void DilosRuntime::MapInflight(uint64_t page_va, const Inflight& inf, bool as_write) {
  Pte pte = MakeLocalPte(inf.frame, /*writable=*/true) | kPteAccessed;
  if (as_write || inf.write) {
    pte |= kPteDirty;
  }
  *pt_.Entry(page_va, true) = pte;
  pm_.OnMapped(page_va);
}

void DilosRuntime::DrainArrivals(uint64_t now) {
  // The fault handler maps arrived prefetches while it waits; pages mapped
  // here are never faulted on at all (Table 3's "fewer minor faults").
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    if (!it->second.demand && it->second.done_ns <= now) {
      MapInflight(it->first, it->second, /*as_write=*/false);
      // Mapping from the handler does not set the accessed bit: the app has
      // not touched the page yet, so the hit tracker can still observe it.
      Pte* e = pt_.Entry(it->first, true);
      *e &= ~kPteAccessed;
      stats_.prefetch_mapped_early++;
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }
}

bool DilosRuntime::StartPrefetch(uint64_t page_va, uint64_t issue_ns, int core,
                                 CommChannel ch) {
  Pte* e = pt_.Entry(page_va, /*create=*/true);
  if (PteTagOf(*e) != PteTag::kRemote) {
    return false;  // Local, in flight, empty, or action-tagged: nothing to do.
  }
  ShardRouter::ReadTarget target = router_.PickRead(core, ch, page_va);
  if (target.qp == nullptr) {
    return false;  // Every replica is down; the demand path will report it.
  }
  size_t reserve = cfg_.prefetch_free_reserve;
  size_t cap = pool_.total() / 8 + 1;
  if (reserve > cap) {
    reserve = cap;  // Scale the reserve down for tiny pools.
  }
  if (pool_.free_count() <= reserve) {
    return false;  // Don't thrash the resident set for speculation.
  }
  std::optional<uint32_t> fid = pool_.Alloc();
  if (!fid.has_value()) {
    return false;
  }
  Completion c = target.qp->PostRead(++wr_id_, pool_.Addr(*fid), page_va, kPageSize, issue_ns);
  if (c.status != WcStatus::kSuccess) {
    // Speculation is not worth a retry loop: free the frame, feed the
    // detector, and leave the page remote for the demand path.
    router_.ReportOpFailure(target.node, c.completion_time_ns);
    pool_.Free(*fid);
    return false;
  }
  if (!VerifyPageBytes(fabric_.node(target.node).store(), page_va, pool_.Data(*fid))) {
    // A corrupt speculative fill is simply dropped: the page stays remote
    // and the demand path (which owns the refetch/heal machinery) serves it.
    stats_.checksum_mismatches++;
    tracer_.Record(c.completion_time_ns, TraceEvent::kChecksumMismatch, page_va,
                   /*detail=*/0);
    pool_.Free(*fid);
    return false;
  }
  if (!fabric_.node(target.node).store().HasChecksum(page_va >> kPageShift) &&
      ReplicaHasChecksumElsewhere(page_va, target.node)) {
    // Unverifiable speculative fill from a copy that missed its write-back
    // (another replica has the checksum): drop it, same as a mismatch.
    stats_.refetches++;
    tracer_.Record(c.completion_time_ns, TraceEvent::kChecksumMismatch, page_va,
                   /*detail=*/2);
    pool_.Free(*fid);
    return false;
  }
  if (PageIsStale(fabric_.node(target.node).store(), page_va,
                  router_.PageGeneration(page_va))) {
    // Generation-lagged speculative fill: verified bytes from before the
    // last write-back round. Drop it and leave the page to the demand path,
    // which steers to a fresh copy and heals this one.
    stats_.stale_copies_detected++;
    stats_.refetches++;
    tracer_.Record(c.completion_time_ns, TraceEvent::kStaleCopy, page_va,
                   static_cast<uint32_t>(target.node));
    pool_.Free(*fid);
    return false;
  }
  *e = MakeFetchingPte(*fid);
  inflight_[page_va] = Inflight{*fid, c.completion_time_ns, false, false};
  stats_.prefetch_issued++;
  stats_.bytes_fetched += kPageSize;
  tracer_.Record(issue_ns, TraceEvent::kPrefetchIssue, page_va);
  tracker_.Observe(page_va);
  return true;
}

void DilosRuntime::RunPrefetcher(const FaultInfo& info, int core) {
  std::vector<uint64_t> pages;
  prefetchers_[static_cast<size_t>(core)]->OnFault(info, &pages);
  Clock& clk = clocks_[static_cast<size_t>(core)];
  uint64_t issue_work = 0;
  for (uint64_t p : pages) {
    if (StartPrefetch(PageOf(p), clk.now() + issue_work, core, CommChannel::kPrefetch)) {
      issue_work += cost_.dilos_prefetch_issue_ns;
    }
  }
  if (issue_work > 0) {
    clk.Advance(issue_work);
    stats_.fault_breakdown.Add(LatComp::kPrefetch, issue_work);
  }
}

uint8_t* DilosRuntime::HandleFault(uint64_t vaddr, uint32_t len, bool write, int core) {
  Clock& clk = clocks_[static_cast<size_t>(core)];
  uint64_t page_va = PageOf(vaddr);
  LatencyBreakdown& bd = stats_.fault_breakdown;

  // Attribution clock zero: the fault's end-to-end window opens before the
  // handler-entry costs so the kHandler phase is on the tiled path.
  uint64_t fault_entry_ns = clk.now();
  const uint64_t handler_ns =
      cost_.hw_exception_ns + cost_.os_trap_entry_ns + cost_.dilos_pte_check_ns;
  clk.Advance(handler_ns);

  Pte* e = pt_.Entry(page_va, /*create=*/true);
  switch (PteTagOf(*e)) {
    case PteTag::kLocal:
      break;  // Raced with a concurrent map; fall through to return below.

    case PteTag::kEmpty: {
      // Anonymous first touch: allocate a zero frame, no network.
      stats_.zero_fill_faults++;
      tracer_.Record(clk.now(), TraceEvent::kZeroFill, page_va);
      uint32_t frame = pm_.AllocFrame(clk, nullptr);
      std::memset(pool_.Data(frame), 0, kPageSize);
      *pt_.Entry(page_va, true) =
          MakeLocalPte(frame, true) | kPteAccessed | kPteDirty;  // Content exists only locally.
      pm_.OnMapped(page_va);
      clk.Advance(cost_.zero_fill_ns);
      Background(clk.now(), page_va);
      break;
    }

    case PteTag::kFetching: {
      auto it = inflight_.find(page_va);
      if (it != inflight_.end() && it->second.demand && RetireParked(page_va)) {
        // Touch of a page whose own demand fault is still parked in a
        // pipeline: resume that fiber directly instead of counting a new
        // minor fault — in blocking mode this second touch would have been
        // a plain local hit, because the first fault resolved in-handler.
        stats_.fault_resumes++;
        stats_.fault_inflight--;
        uint32_t resume_span =
            tracer_.BeginSpan(SpanKind::kFaultResume, clk.now(), page_va, /*detail=*/1);
        Inflight inf = it->second;
        inflight_.erase(it);
        clk.AdvanceTo(inf.done_ns);
        uint64_t pre_map_ns = clk.now();
        MapInflight(page_va, inf, write);
        clk.Advance(cost_.dilos_map_ns + cost_.map_tlb_flush_ns);
        if (pipelines_[static_cast<size_t>(core)].depth() > 1) {
          clk.Advance(cost_.fiber_resume_ns);
        }
        if (attr_ != nullptr) {
          // Direct resume finalizes the *original* fault's parked slice:
          // park spans from its fetch completion to this install (this
          // second touch's own handler entry is wall time inside it), map
          // is the un-batched install this touch pays.
          ParkedSlice* ps = FindParkedSlice(page_va);
          if (ps != nullptr) {
            ps->slice.Add(FaultPhase::kPark,
                          pre_map_ns > ps->done_ns ? pre_map_ns - ps->done_ns : 0);
            ps->slice.Add(FaultPhase::kMap, clk.now() - pre_map_ns);
            CommitFaultSlice(ps->slice, page_va, clk.now());
            ps->used = false;
          }
        }
        tracer_.EndSpan(resume_span, clk.now());
        DrainArrivals(clk.now());
        Background(clk.now(), page_va);
        break;
      }
      // Minor fault: the page is in flight (prefetch or another core's
      // demand). Let window prefetchers stream ahead while we wait.
      stats_.minor_faults++;
      tracer_.Record(clk.now(), TraceEvent::kMinorFault, page_va);
      if (it == inflight_.end()) {
        // Another core mapped it between our check and now (model artifact);
        // retry the walk.
        return Pin(vaddr, len, write, core);
      }
      FaultInfo info{vaddr, write, /*major=*/false, tracker_.hit_ratio()};
      RunPrefetcher(info, core);
      if (guide_ != nullptr) {
        // Guides keep chasing while we wait for the in-flight page, just as
        // they do inside a major fault's fetch window.
        RuntimeGuideContext ctx(*this, core, clk.now());
        guide_->OnFault(ctx, vaddr, write);
      }
      Inflight inf = it->second;
      inflight_.erase(it);
      clk.AdvanceTo(inf.done_ns);
      MapInflight(page_va, inf, write);
      clk.Advance(cost_.dilos_map_ns + cost_.map_tlb_flush_ns);
      DrainArrivals(clk.now());
      Background(clk.now(), page_va);
      break;
    }

    case PteTag::kAction: {
      // Guided paging re-fetch: move only the live segments recorded at
      // eviction time, zero the rest (it was dead to the allocator).
      stats_.major_faults++;
      tracer_.Record(clk.now(), TraceEvent::kActionFetch, page_va);
      BeginFault(core, page_va, fault_entry_ns, clk.now());
      AttrAdd(core, FaultPhase::kHandler, handler_ns);
      bd.CountEvent();
      bd.Add(LatComp::kHwException, cost_.hw_exception_ns);
      bd.Add(LatComp::kOsHandler, cost_.os_trap_entry_ns + cost_.dilos_pte_check_ns);
      uint64_t log_idx = PtePayload(*e);
      const std::vector<PageSegment>* segs = pm_.ActionSegments(log_idx);
      uint64_t alloc_start_ns = clk.now();
      uint32_t frame = pm_.AllocFrame(clk, &bd);
      AttrAdd(core, FaultPhase::kAlloc, clk.now() - alloc_start_ns);
      std::memset(pool_.Data(frame), 0, kPageSize);
      uint64_t cursor = clk.now();
      DemandFetch(page_va, pool_.Addr(frame), segs, core, CommChannel::kFault, &cursor);
      stats_.vectored_ops++;
      for (const PageSegment& s : *segs) {
        stats_.bytes_fetched += s.length;
      }
      uint64_t done = cursor + (cfg_.tcp_emulation ? cost_.tcp_delay_ns : 0);
      AttrAdd(core, FaultPhase::kWire, done - cursor);
      uint64_t pre_fetch_ns = clk.now();
      bd.Add(LatComp::kFetch, clk.AdvanceTo(done));
      AttrAdd(core, FaultPhase::kOverlap,
              pre_fetch_ns > done ? pre_fetch_ns - done : 0);
      pm_.ReleaseAction(log_idx);
      *pt_.Entry(page_va, true) =
          MakeLocalPte(frame, true) | kPteAccessed | (write ? kPteDirty : 0);
      pm_.OnMapped(page_va);
      clk.Advance(cost_.dilos_map_ns + cost_.map_tlb_flush_ns);
      bd.Add(LatComp::kMap, cost_.dilos_map_ns + cost_.map_tlb_flush_ns);
      AttrAdd(core, FaultPhase::kMap, cost_.dilos_map_ns + cost_.map_tlb_flush_ns);
      DrainArrivals(clk.now());
      Background(clk.now(), page_va);
      EndFault(core, clk.now());
      break;
    }

    case PteTag::kTier: {
      // Tier hit: the page sits compressed in local DRAM — expand it in
      // place, no network. A cold miss costs one decompress instead of the
      // RDMA round trip; that gap is the tier's entire point.
      stats_.minor_faults++;
      stats_.tier_hits++;
      BeginFault(core, page_va, fault_entry_ns, clk.now());
      AttrAdd(core, FaultPhase::kHandler, handler_ns);
      bd.CountEvent();
      bd.Add(LatComp::kHwException, cost_.hw_exception_ns);
      bd.Add(LatComp::kOsHandler, cost_.os_trap_entry_ns + cost_.dilos_pte_check_ns);
      uint64_t alloc_start_ns = clk.now();
      uint32_t frame = pm_.AllocFrame(clk, &bd);
      AttrAdd(core, FaultPhase::kAlloc, clk.now() - alloc_start_ns);
      bool was_dirty = false;
      bool present = tier_ != nullptr && tier_->Contains(page_va);
      if (tier_ == nullptr || !tier_->Take(page_va, pool_.Data(frame), &was_dirty)) {
        if (present) {
          // The entry existed but its blob failed decompression (in-DRAM
          // rot): Take() dropped it. The remote copy serves the fault —
          // minus any deferred write-back the entry still carried; the
          // counter is what makes that loss observable.
          stats_.tier_corrupt_drops++;
          tracer_.Record(clk.now(), TraceEvent::kTierCorrupt, page_va);
        }
        // Otherwise defensive: a tier PTE without a tier entry should not
        // happen. Either way fall back to the remote copy (re-faulting
        // charges the exception again).
        pool_.Free(frame);
        stats_.tier_hits--;
        stats_.minor_faults--;
        *pt_.Entry(page_va, true) = MakeRemotePte(page_va >> kPageShift);
        // One fault, one span: the remote retry re-enters HandleFault under
        // this same fault scope (depth 2), so the kFault span — and the
        // attribution slice — covers the whole resolution, not just the
        // failed tier attempt.
        uint8_t* resolved = Pin(vaddr, len, write, core);
        EndFault(core, clk.now());
        return resolved;
      }
      uint32_t decompress_span =
          tracer_.BeginSpan(SpanKind::kTierDecompress, clk.now(), page_va);
      clk.Advance(cost_.tier_decompress_page_ns);
      bd.Add(LatComp::kDecompress, cost_.tier_decompress_page_ns);
      AttrAdd(core, FaultPhase::kDecompress, cost_.tier_decompress_page_ns);
      tracer_.EndSpan(decompress_span, clk.now());
      // A page admitted dirty whose deferred write-back has not drained yet
      // comes back dirty: its content still exists nowhere but here.
      *pt_.Entry(page_va, true) = MakeLocalPte(frame, true) | kPteAccessed |
                                  ((write || was_dirty) ? kPteDirty : 0);
      pm_.OnMapped(page_va);
      clk.Advance(cost_.dilos_map_ns + cost_.map_tlb_flush_ns);
      bd.Add(LatComp::kMap, cost_.dilos_map_ns + cost_.map_tlb_flush_ns);
      AttrAdd(core, FaultPhase::kMap, cost_.dilos_map_ns + cost_.map_tlb_flush_ns);
      tracer_.Record(clk.now(), TraceEvent::kTierHit, page_va, was_dirty ? 1 : 0);
      DrainArrivals(clk.now());
      Background(clk.now(), page_va);
      EndFault(core, clk.now());
      break;
    }

    case PteTag::kRemote: {
      // Major fault: mark fetching, post the read, then hide every other
      // piece of work inside the fetch window.
      stats_.major_faults++;
      if (tier_ != nullptr) {
        stats_.tier_misses++;  // Cold miss the tier no longer holds (or never did).
      }
      if (hotness_ != nullptr) {
        hotness_->OnDemandFault(page_va);  // Granule heat for the auto-migrator.
      }
      tracer_.Record(clk.now(), TraceEvent::kMajorFault, page_va);
      BeginFault(core, page_va, fault_entry_ns, clk.now());
      AttrAdd(core, FaultPhase::kHandler, handler_ns);
      bd.CountEvent();
      bd.Add(LatComp::kHwException, cost_.hw_exception_ns);
      bd.Add(LatComp::kOsHandler, cost_.os_trap_entry_ns + cost_.dilos_pte_check_ns);
      uint64_t alloc_start_ns = clk.now();
      uint32_t frame = pm_.AllocFrame(clk, &bd);
      AttrAdd(core, FaultPhase::kAlloc, clk.now() - alloc_start_ns);
      uint64_t cursor = clk.now();
      Completion c =
          DemandFetch(page_va, pool_.Addr(frame), nullptr, core, CommChannel::kFault, &cursor);
      stats_.bytes_fetched += kPageSize;

      if (!pipelines_.empty()) {
        // Pipelined mode: the read is posted and its whole resolution
        // timeline (retries, backoff, EC decode, failover — DemandFetch
        // advanced `cursor` past all of it) is known; instead of blocking
        // the core until then, park a fiber carrying the completion time
        // and give the core back to the workload. The data already sits in
        // the frame (the sim moves bytes synchronously; only time is
        // simulated), so the faulting access can complete — the page just
        // stays kFetching until a harvest commits its PTE.
        uint64_t done = cursor + (cfg_.tcp_emulation ? cost_.tcp_delay_ns : 0);
        AttrAdd(core, FaultPhase::kWire, done - cursor);
        if (c.status != WcStatus::kSuccess) {
          std::memset(pool_.Data(frame), 0, kPageSize);  // Unrecoverable: zero page.
        }
        *pt_.Entry(page_va, true) = MakeFetchingPte(frame);
        inflight_[page_va] = Inflight{frame, done, write, true};
        FaultPipeline& pipe = pipelines_[static_cast<size_t>(core)];
        if (pipe.Full()) {
          // Defensive: the end-of-handler stall below keeps the pipeline
          // under depth between faults, so admission normally never waits.
          stats_.fault_pipeline_stalls++;
          uint64_t stall_ns = clk.AdvanceTo(pipe.OldestDoneNs());
          bd.Add(LatComp::kFetch, stall_ns);
          // Off-path: the stall is concurrent with the oldest fiber's own
          // wire wait — counting it on-path would double-bill that time.
          AttrAdd(core, FaultPhase::kStall, stall_ns);
          HarvestFaultPipeline(core, clk.now());
        }
        pipe.Admit(page_va, frame, clk.now(), done, write);
        ParkFaultSlice(core, page_va, done);
        stats_.fault_parks++;
        stats_.fault_inflight++;
        if (stats_.fault_inflight > stats_.fault_inflight_peak) {
          stats_.fault_inflight_peak = stats_.fault_inflight;
        }
        uint32_t park_span = tracer_.BeginSpan(SpanKind::kFaultPark, clk.now(), page_va,
                                               static_cast<uint32_t>(pipe.size()));
        if (pipe.depth() > 1) {
          // Fiber switch costs exist only when there is another fiber to
          // switch to; at depth 1 the path must cost exactly what blocking
          // does, or timing shifts would perturb prefetch-arrival races
          // and break the depth-1 fault-count equivalence.
          clk.Advance(cost_.fiber_park_ns);
        }
        tracer_.EndSpan(park_span, clk.now());

        // The same work the blocking path hides in the fetch window.
        if (guide_ != nullptr) {
          RuntimeGuideContext ctx(*this, core, clk.now());
          guide_->OnFault(ctx, vaddr, write);
        }
        tracker_.Scan(pt_);
        clk.Advance(cost_.dilos_hit_tracker_ns);
        bd.Add(LatComp::kPrefetch, cost_.dilos_hit_tracker_ns);
        FaultInfo info{vaddr, write, /*major=*/true, tracker_.hit_ratio()};
        RunPrefetcher(info, core);
        Background(clk.now(), page_va);

        if (pipe.Full()) {
          // Depth limit: stall the core until the oldest completion so the
          // next fault finds an admission slot. At depth 1 this resolves
          // the fault in-handler — exactly the blocking timeline.
          stats_.fault_pipeline_stalls++;
          uint64_t stall_ns = clk.AdvanceTo(pipe.OldestDoneNs());
          bd.Add(LatComp::kFetch, stall_ns);
          AttrAdd(core, FaultPhase::kStall, stall_ns);  // Off-path, as above.
        }
        HarvestFaultPipeline(core, clk.now());
        DrainArrivals(clk.now());
        EndFault(core, clk.now());
        if (PteTagOf(*pt_.Entry(page_va, true)) == PteTag::kLocal) {
          break;  // Harvested in-handler; the common exit sets the A/D bits.
        }
        // Still parked: hand the frame to the faulting access directly. The
        // PTE stays kFetching until a later harvest installs it.
        return pool_.Data(frame) + (vaddr & (kPageSize - 1));
      }

      *pt_.Entry(page_va, true) = MakeFetchingPte(frame);
      inflight_[page_va] = Inflight{frame, cursor, write, true};

      // Work hidden in the fetch window: guide, hit tracker, prefetcher,
      // background manager.
      if (guide_ != nullptr) {
        RuntimeGuideContext ctx(*this, core, clk.now());
        guide_->OnFault(ctx, vaddr, write);
      }
      tracker_.Scan(pt_);
      clk.Advance(cost_.dilos_hit_tracker_ns);
      bd.Add(LatComp::kPrefetch, cost_.dilos_hit_tracker_ns);
      FaultInfo info{vaddr, write, /*major=*/true, tracker_.hit_ratio()};
      RunPrefetcher(info, core);
      Background(clk.now(), page_va);

      uint64_t done = cursor + (cfg_.tcp_emulation ? cost_.tcp_delay_ns : 0);
      AttrAdd(core, FaultPhase::kWire, done - cursor);
      uint64_t pre_fetch_ns = clk.now();
      bd.Add(LatComp::kFetch, clk.AdvanceTo(done));
      // Hidden work that outran the fetch window surfaces as kOverlap; when
      // the window fully hides it the phase is zero and the fetch phases
      // alone tile the wall time.
      AttrAdd(core, FaultPhase::kOverlap,
              pre_fetch_ns > done ? pre_fetch_ns - done : 0);
      inflight_.erase(page_va);
      if (c.status != WcStatus::kSuccess) {
        // Every replica is gone: the content is unrecoverable. Surface a
        // zero page (failed_fetches records the loss) rather than whatever
        // the recycled frame last held.
        std::memset(pool_.Data(frame), 0, kPageSize);
      }
      MapInflight(page_va, Inflight{frame, done, write, true}, write);
      clk.Advance(cost_.dilos_map_ns + cost_.map_tlb_flush_ns);
      bd.Add(LatComp::kMap, cost_.dilos_map_ns + cost_.map_tlb_flush_ns);
      AttrAdd(core, FaultPhase::kMap, cost_.dilos_map_ns + cost_.map_tlb_flush_ns);
      DrainArrivals(clk.now());
      EndFault(core, clk.now());
      break;
    }
  }

  e = pt_.Entry(page_va, true);
  *e |= kPteAccessed | (write ? kPteDirty : 0);
  return pool_.Data(static_cast<uint32_t>(PtePayload(*e))) + (vaddr & (kPageSize - 1));
}

}  // namespace dilos
