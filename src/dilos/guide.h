// App-aware guide API (paper Sec. 4.1, 4.3, 4.4, Fig. 5/11).
//
// A guide is a pluggable third-party module loaded next to the application.
// It can (a) refine prefetching at fault time — issuing *subpage* reads on
// its own per-core queue pair to chase pointers ahead of the full-page
// fetch, then posting page prefetches once the pointed-to addresses are
// known — and (b) implement guided paging: telling the cleaner which chunks
// of a page are live (from allocator bitmaps) so eviction and the later
// action-PTE fetch move only live bytes via vectorized RDMA.
#ifndef DILOS_SRC_DILOS_GUIDE_H_
#define DILOS_SRC_DILOS_GUIDE_H_

#include <cstdint>
#include <vector>

#include "src/rdma/verbs.h"

namespace dilos {

// A live extent within one page, offset/length in bytes.
struct PageSegment {
  uint32_t offset = 0;
  uint32_t length = 0;
};

// Handed to Guide::OnFault. Models the causality of subpage prefetching:
// each SubpageRead's result only becomes usable at its completion time, and
// prefetches the guide issues after it are posted no earlier than that.
class GuideContext {
 public:
  virtual ~GuideContext() = default;

  // Issues a subpage read of [vaddr, vaddr+len) on the guide's queue and
  // copies the bytes into `dst`. Advances the context's causality cursor to
  // the read's completion; returns that time.
  virtual uint64_t SubpageRead(uint64_t vaddr, uint32_t len, void* dst) = 0;

  // Requests an asynchronous full-page prefetch of the page containing
  // `vaddr`, posted at the current causality cursor. Returns false if the
  // page is already local/in-flight (nothing to do).
  virtual bool PrefetchPage(uint64_t vaddr) = 0;

  // True if the page containing `vaddr` is already resident or in flight —
  // lets guides stop chasing early.
  virtual bool IsResident(uint64_t vaddr) = 0;

  // Reads [vaddr, vaddr+len) from local DRAM if the page is mapped (the
  // guide runs in the LibOS' single address space, so mapped memory is one
  // load away). Returns false if the page is not local; `len` must stay
  // within one page.
  virtual bool ReadResident(uint64_t vaddr, uint32_t len, void* dst) = 0;

  // Current causality cursor (simulated ns).
  virtual uint64_t now() const = 0;
};

class Guide {
 public:
  virtual ~Guide() = default;

  // Fault-time hook: runs while the demand fetch for `vaddr`'s page is in
  // flight. Default: no guidance.
  virtual void OnFault(GuideContext& ctx, uint64_t vaddr, bool write) {
    (void)ctx;
    (void)vaddr;
    (void)write;
  }

  // Guided-paging hook used by the cleaner/reclaimer: fills `segs` with the
  // live extents of the page at `page_vaddr` and returns true to enable
  // vectorized eviction; returning false evicts the whole page.
  virtual bool LiveSegments(uint64_t page_vaddr, std::vector<PageSegment>* segs) {
    (void)page_vaddr;
    (void)segs;
    return false;
  }
};

}  // namespace dilos

#endif  // DILOS_SRC_DILOS_GUIDE_H_
