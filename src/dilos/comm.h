// DiLOS communication module (paper Sec. 4.5).
//
// Shared-nothing queue assignment: each (core, module) pair gets its own
// queue pair so a fault-handler demand fetch is never head-of-line blocked
// behind prefetcher, manager, or guide traffic in software. (All QPs still
// share the physical wire; Link arbitrates that.)
#ifndef DILOS_SRC_DILOS_COMM_H_
#define DILOS_SRC_DILOS_COMM_H_

#include <array>
#include <vector>

#include "src/memnode/fabric.h"

namespace dilos {

enum class CommChannel : uint8_t {
  kFault = 0,
  kPrefetch,
  kManager,
  kGuide,
  kCount,
};

// Telemetry label for a channel's QPs (src/telemetry/metrics.h). kManager
// maps to "cleaner" — write-back/parity/scrub traffic, named for its
// dominant producer.
inline QpClass QpClassForChannel(CommChannel ch) {
  switch (ch) {
    case CommChannel::kFault:
      return QpClass::kFault;
    case CommChannel::kPrefetch:
      return QpClass::kPrefetch;
    case CommChannel::kManager:
      return QpClass::kCleaner;
    case CommChannel::kGuide:
      return QpClass::kGuide;
    case CommChannel::kCount:
      break;
  }
  return QpClass::kOther;
}

class CommModule {
 public:
  // `shared_queue` collapses all modules onto one QP per core — the
  // head-of-line-blocking design DiLOS avoids; kept as an ablation knob.
  CommModule(Fabric& fabric, int num_cores, bool shared_queue = false)
      : shared_(shared_queue) {
    qps_.resize(static_cast<size_t>(num_cores));
    for (auto& per_core : qps_) {
      per_core[0] = fabric.CreateQp(0, QpClass::kFault);
      for (size_t ch = 1; ch < per_core.size(); ++ch) {
        per_core[ch] = shared_ ? per_core[0]
                               : fabric.CreateQp(0, QpClassForChannel(
                                                        static_cast<CommChannel>(ch)));
      }
    }
  }

  QueuePair* qp(int core, CommChannel ch) {
    return qps_[static_cast<size_t>(core)][shared_ ? 0 : static_cast<size_t>(ch)];
  }

  int num_cores() const { return static_cast<int>(qps_.size()); }

 private:
  bool shared_;
  std::vector<std::array<QueuePair*, static_cast<size_t>(CommChannel::kCount)>> qps_;
};

}  // namespace dilos

#endif  // DILOS_SRC_DILOS_COMM_H_
