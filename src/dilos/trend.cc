#include "src/dilos/trend.h"

#include "src/rdma/verbs.h"

namespace dilos {

int64_t TrendPrefetcher::MajorityDelta() const {
  int64_t candidate = 0;
  int count = 0;
  for (size_t i = 0; i < delta_count_; ++i) {
    if (count == 0) {
      candidate = deltas_[i];
      count = 1;
    } else if (deltas_[i] == candidate) {
      ++count;
    } else {
      --count;
    }
  }
  if (candidate == 0) {
    return 0;
  }
  // Verify it is a strict majority, as Leap requires.
  size_t votes = 0;
  for (size_t i = 0; i < delta_count_; ++i) {
    if (deltas_[i] == candidate) {
      ++votes;
    }
  }
  return votes * 2 > delta_count_ ? candidate : 0;
}

void TrendPrefetcher::OnFault(const FaultInfo& info, std::vector<uint64_t>* out) {
  uint64_t page = info.vaddr & ~static_cast<uint64_t>(kPageSize - 1);

  // Leap learns the trend from the full fault history (major and minor),
  // but only issues prefetch windows from the major-fault path.
  if (last_page_ != UINT64_MAX && page != last_page_) {
    int64_t d = static_cast<int64_t>(page) - static_cast<int64_t>(last_page_);
    deltas_[delta_pos_] = d;
    delta_pos_ = (delta_pos_ + 1) % kHistory;
    if (delta_count_ < kHistory) {
      ++delta_count_;
    }
  }
  last_page_ = page;
  if (!info.major) {
    return;
  }

  int64_t delta = MajorityDelta();
  if (delta == 0) {
    // No trend: fall back to a minimal forward window, as Leap does when it
    // cannot find a majority.
    window_ = 2;
    out->push_back(page + kPageSize);
    ahead_page_ = UINT64_MAX;
    return;
  }

  // Efficiency feedback: grow the window while the tracker says prefetches
  // are being used; shrink otherwise.
  if (info.hit_ratio > 0.5) {
    window_ = window_ * 2 > max_window_ ? max_window_ : window_ * 2;
  } else if (info.hit_ratio < 0.25 && window_ > 2) {
    window_ /= 2;
  }

  uint64_t next = static_cast<uint64_t>(static_cast<int64_t>(page) + delta);
  for (uint32_t i = 0; i < window_; ++i) {
    out->push_back(next);
    next = static_cast<uint64_t>(static_cast<int64_t>(next) + delta);
  }
  ahead_page_ = next;
  ahead_delta_ = delta;
  marker_page_ = page + static_cast<uint64_t>(static_cast<int64_t>(window_ / 2) * delta);
}

}  // namespace dilos
