#include "src/dilos/readahead.h"

#include "src/rdma/verbs.h"

namespace dilos {

void ReadaheadPrefetcher::EmitWindow(uint64_t start_page_va, uint32_t count,
                                     std::vector<uint64_t>* out) {
  for (uint32_t i = 0; i < count; ++i) {
    out->push_back(start_page_va + static_cast<uint64_t>(i) * kPageSize);
  }
  ahead_page_ = start_page_va + static_cast<uint64_t>(count) * kPageSize;
  marker_page_ = start_page_va + static_cast<uint64_t>(count / 2) * kPageSize;
}

void ReadaheadPrefetcher::OnFault(const FaultInfo& info, std::vector<uint64_t>* out) {
  uint64_t page = info.vaddr & ~static_cast<uint64_t>(kPageSize - 1);

  if (!info.major) {
    // Swap readahead only triggers from the major-fault path (do_swap_page
    // on a page not yet in flight); in-flight hits just update the stream
    // position.
    last_fault_page_ = page;
    return;
  }

  // The stream continues if this major fault landed within (or right at the
  // edge of) the previous window — for a steady sequential reader, majors
  // arrive exactly one window apart.
  bool stream_continues = last_fault_page_ != UINT64_MAX && page > last_fault_page_ &&
                          page <= last_fault_page_ + static_cast<uint64_t>(window_) * kPageSize;
  if (stream_continues) {
    window_ = window_ * 2 > max_window_ ? max_window_ : window_ * 2;
  } else if (info.hit_ratio < 0.25) {
    window_ = 2;
  }
  last_fault_page_ = page;
  EmitWindow(page + kPageSize, window_ - 1, out);
}

}  // namespace dilos
