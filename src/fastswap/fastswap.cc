#include "src/fastswap/fastswap.h"

#include <cstring>

namespace dilos {

namespace {

uint64_t PageOf(uint64_t vaddr) { return vaddr & ~static_cast<uint64_t>(kPageSize - 1); }

}  // namespace

FastswapRuntime::FastswapRuntime(Fabric& fabric, FastswapConfig cfg)
    : fabric_(fabric),
      cfg_(cfg),
      cost_(fabric.cost()),
      pool_(cfg.local_mem_bytes / kPageSize),
      clocks_(static_cast<size_t>(cfg.num_cores)),
      qp_(fabric.CreateQp()) {}

uint64_t FastswapRuntime::AllocRegion(uint64_t bytes) {
  uint64_t base = next_region_;
  uint64_t pages = (bytes + kPageSize - 1) / kPageSize;
  next_region_ += (pages + 16) * kPageSize;
  return base;
}

void FastswapRuntime::FreeRegion(uint64_t addr, uint64_t bytes) {
  uint64_t end = addr + bytes;
  for (uint64_t page_va = PageOf(addr); page_va < end; page_va += kPageSize) {
    auto cached = swap_cache_.find(page_va);
    if (cached != swap_cache_.end()) {
      pool_.Free(cached->second.frame);
      swap_cache_.erase(cached);
      auto w = cache_where_.find(page_va);
      if (w != cache_where_.end()) {
        cache_lru_.erase(w->second);
        cache_where_.erase(w);
      }
    }
    Pte* e = pt_.Entry(page_va, /*create=*/false);
    if (e == nullptr) {
      continue;
    }
    if (PteTagOf(*e) == PteTag::kLocal) {
      pool_.Free(static_cast<uint32_t>(PtePayload(*e & ~(kPteAccessed | kPteDirty))));
      auto it = where_.find(page_va);
      if (it != where_.end()) {
        lru_.erase(it->second);
        where_.erase(it);
      }
    }
    *e = 0;
  }
}

uint64_t FastswapRuntime::MaxTimeNs() const {
  uint64_t t = 0;
  for (const Clock& c : clocks_) {
    t = c.now() > t ? c.now() : t;
  }
  return t;
}

void FastswapRuntime::MapFrame(uint64_t page_va, uint32_t frame, bool write) {
  *pt_.Entry(page_va, true) =
      MakeLocalPte(frame, true) | kPteAccessed | (write ? kPteDirty : 0);
  auto it = where_.find(page_va);
  if (it != where_.end()) {
    lru_.erase(it->second);
    where_.erase(it);
  }
  lru_.push_back(page_va);
  where_[page_va] = std::prev(lru_.end());
}

bool FastswapRuntime::EvictOne(Clock& clk, bool charged) {
  // Sweep mapped pages with second chance (the inactive list analogue).
  size_t limit = lru_.size() * 2 + 1;
  for (size_t scanned = 0; scanned < limit && !lru_.empty(); ++scanned) {
    uint64_t page_va = lru_.front();
    lru_.pop_front();
    where_.erase(page_va);
    Pte* e = pt_.Entry(page_va, /*create=*/false);
    if (e == nullptr || PteTagOf(*e) != PteTag::kLocal) {
      continue;
    }
    if (*e & kPteAccessed) {
      *e &= ~kPteAccessed;
      lru_.push_back(page_va);
      where_[page_va] = std::prev(lru_.end());
      continue;
    }
    uint32_t frame = static_cast<uint32_t>(PtePayload(*e));
    bool dirty = (*e & kPteDirty) != 0;
    if (charged) {
      clk.Advance(cost_.fsw_direct_reclaim_ns);
      stats_.fault_breakdown.Add(LatComp::kReclaim, cost_.fsw_direct_reclaim_ns);
    }
    *pt_.Entry(page_va, true) = MakeRemotePte(page_va >> kPageShift);
    if (dirty) {
      // Frontswap stores are synchronous: direct reclaim polls the write to
      // completion in the fault path; the offload thread parks the frame
      // until its write completes.
      Completion c = qp_->PostWrite(++wr_id_, pool_.Addr(frame), page_va, kPageSize, clk.now());
      stats_.writebacks++;
      stats_.bytes_written += kPageSize;
      if (charged) {
        uint64_t waited = clk.AdvanceTo(c.completion_time_ns);
        stats_.fault_breakdown.Add(LatComp::kReclaim, waited);
        pool_.Free(frame);
      } else {
        pending_free_.emplace_back(frame, c.completion_time_ns);
      }
    } else {
      pool_.Free(frame);
    }
    stats_.evictions++;
    return true;
  }
  // Fallback: drop a clean, never-touched swap-cache fill.
  while (!cache_lru_.empty()) {
    uint64_t page_va = cache_lru_.front();
    cache_lru_.pop_front();
    cache_where_.erase(page_va);
    auto it = swap_cache_.find(page_va);
    if (it == swap_cache_.end()) {
      continue;
    }
    pool_.Free(it->second.frame);
    swap_cache_.erase(it);
    stats_.evictions++;
    ra_dropped_++;
    if (charged) {
      clk.Advance(cost_.fsw_direct_reclaim_ns / 2);  // Cache drop is cheaper.
      stats_.fault_breakdown.Add(LatComp::kReclaim, cost_.fsw_direct_reclaim_ns / 2);
    }
    return true;
  }
  return false;
}

void FastswapRuntime::DrainPendingFrees(uint64_t now) {
  while (!pending_free_.empty() && pending_free_.front().second <= now) {
    pool_.Free(pending_free_.front().first);
    pending_free_.pop_front();
  }
}

std::optional<uint32_t> FastswapRuntime::EnsureFrame(Clock& clk, bool in_fault_path) {
  // Fastswap reclaims one page per fault while under memory pressure: the
  // offload thread absorbs (1 - fraction) of those events, the rest run as
  // direct reclamation inside the fault handler (charged). Deterministic
  // rotation via a debt accumulator.
  DrainPendingFrees(clk.now());
  size_t watermark = cfg_.free_target;
  size_t cap = pool_.total() / 8 + 1;
  if (watermark > cap) {
    watermark = cap;
  }
  if (pool_.free_count() + pending_free_.size() < watermark) {
    ++reclaim_events_;
    reclaim_debt_ += cfg_.direct_reclaim_fraction;
    bool direct = in_fault_path && reclaim_debt_ >= 1.0;
    if (direct) {
      reclaim_debt_ -= 1.0;
      ++direct_reclaims_;
    }
    EvictOne(clk, /*charged=*/direct);
    DrainPendingFrees(clk.now());
  }
  std::optional<uint32_t> fid = pool_.Alloc();
  while (!fid.has_value()) {
    // Pool drained: wait for an in-flight swap-out, or reclaim synchronously.
    if (!pending_free_.empty()) {
      uint64_t waited = clk.AdvanceTo(pending_free_.front().second);
      if (in_fault_path && waited > 0) {
        stats_.fault_breakdown.Add(LatComp::kReclaim, waited);
      }
      DrainPendingFrees(clk.now());
    } else {
      ++reclaim_events_;
      ++direct_reclaims_;
      if (!EvictOne(clk, /*charged=*/in_fault_path)) {
        break;
      }
      DrainPendingFrees(clk.now());
    }
    fid = pool_.Alloc();
  }
  return fid;
}

void FastswapRuntime::Readahead(uint64_t fault_page, Clock& clk) {
  if (!cfg_.readahead_enabled) {
    return;
  }
  // Adapt the window to the recent fill hit rate (swap_vma_readahead).
  if (ra_consumed_ + ra_dropped_ >= 64) {
    double ratio = static_cast<double>(ra_consumed_) /
                   static_cast<double>(ra_consumed_ + ra_dropped_);
    ra_window_ = ratio > 0.8 ? cfg_.readahead_cluster : ratio > 0.5 ? 4 : ratio > 0.2 ? 2 : 1;
    ra_consumed_ = 0;
    ra_dropped_ = 0;
  }
  for (uint32_t i = 1; i < ra_window_; ++i) {
    uint64_t page_va = fault_page + static_cast<uint64_t>(i) * kPageSize;
    Pte pte = pt_.Get(page_va);
    if (PteTagOf(pte) != PteTag::kRemote || swap_cache_.count(page_va) != 0) {
      continue;
    }
    // Readahead pages go through the same allocation path as the demand
    // page: under memory pressure that means reclamation work, a share of
    // which runs right here in the fault context.
    std::optional<uint32_t> fid = EnsureFrame(clk, /*in_fault_path=*/true);
    if (!fid.has_value()) {
      break;
    }
    // Page allocation + swap-cache insertion for every readahead page costs
    // fault-path CPU (the Linux swap path's per-page software overhead).
    clk.Advance(cost_.fsw_page_alloc_ns + cost_.fsw_swapcache_mgmt_ns);
    Completion c = qp_->PostRead(++wr_id_, pool_.Addr(*fid), page_va, kPageSize, clk.now());
    stats_.prefetch_issued++;
    stats_.bytes_fetched += kPageSize;
    swap_cache_[page_va] = CacheEntry{*fid, c.completion_time_ns};
    cache_lru_.push_back(page_va);
    cache_where_[page_va] = std::prev(cache_lru_.end());
  }
}

uint8_t* FastswapRuntime::Pin(uint64_t vaddr, uint32_t len, bool write, int core) {
  Clock& clk = clocks_[static_cast<size_t>(core)];
  Pte* e = pt_.Entry(vaddr, /*create=*/true);
  if (PteTagOf(*e) == PteTag::kLocal) {
    *e |= kPteAccessed | (write ? kPteDirty : 0);
    clk.Advance(cost_.local_pin_ns +
                static_cast<uint64_t>(cost_.local_per_byte_ns * static_cast<double>(len)));
    return pool_.Data(static_cast<uint32_t>(PtePayload(*e))) + (vaddr & (kPageSize - 1));
  }
  return HandleFault(vaddr, len, write, core);
}

uint8_t* FastswapRuntime::HandleFault(uint64_t vaddr, uint32_t len, bool write, int core) {
  (void)len;
  Clock& clk = clocks_[static_cast<size_t>(core)];
  uint64_t page_va = PageOf(vaddr);
  LatencyBreakdown& bd = stats_.fault_breakdown;

  clk.Advance(cost_.hw_exception_ns + cost_.os_trap_entry_ns);

  // Minor fault: the page sits in the swap cache (filled or filling).
  auto cached = swap_cache_.find(page_va);
  if (cached != swap_cache_.end()) {
    stats_.minor_faults++;
    ra_consumed_++;
    clk.Advance(cost_.fsw_minor_fault_sw_ns);
    clk.AdvanceTo(cached->second.done_ns);
    uint32_t frame = cached->second.frame;
    auto w = cache_where_.find(page_va);
    if (w != cache_where_.end()) {
      cache_lru_.erase(w->second);
      cache_where_.erase(w);
    }
    swap_cache_.erase(cached);
    MapFrame(page_va, frame, write);
    clk.Advance(cost_.map_tlb_flush_ns);
    return pool_.Data(frame) + (vaddr & (kPageSize - 1));
  }

  Pte* e = pt_.Entry(page_va, /*create=*/true);
  if (PteTagOf(*e) == PteTag::kLocal) {
    // Raced with our own earlier map (page-crossing pin); just return.
    return pool_.Data(static_cast<uint32_t>(PtePayload(*e))) + (vaddr & (kPageSize - 1));
  }

  if (PteTagOf(*e) == PteTag::kEmpty) {
    // Anonymous zero-fill, no swap entry yet.
    stats_.zero_fill_faults++;
    uint32_t frame = EnsureFrame(clk, /*in_fault_path=*/true).value();
    std::memset(pool_.Data(frame), 0, kPageSize);
    clk.Advance(cost_.zero_fill_ns);
    MapFrame(page_va, frame, /*write=*/true);  // Content exists only locally.
    return pool_.Data(frame) + (vaddr & (kPageSize - 1));
  }

  // Major fault through the swap subsystem.
  stats_.major_faults++;
  bd.CountEvent();
  bd.Add(LatComp::kHwException, cost_.hw_exception_ns);
  bd.Add(LatComp::kOsHandler, cost_.os_trap_entry_ns);

  clk.Advance(cost_.fsw_swap_entry_ns);
  bd.Add(LatComp::kSwapEntry, cost_.fsw_swap_entry_ns);

  uint32_t frame = EnsureFrame(clk, /*in_fault_path=*/true).value();
  clk.Advance(cost_.fsw_page_alloc_ns);
  bd.Add(LatComp::kPageAlloc, cost_.fsw_page_alloc_ns);

  clk.Advance(cost_.fsw_swapcache_mgmt_ns);
  bd.Add(LatComp::kSwapCacheMgmt, cost_.fsw_swapcache_mgmt_ns);

  Completion c = qp_->PostRead(++wr_id_, pool_.Addr(frame), page_va, kPageSize, clk.now());
  stats_.bytes_fetched += kPageSize;

  // Readahead issues cluster fills while the demand fetch is in flight.
  Readahead(page_va, clk);

  uint64_t waited = clk.AdvanceTo(c.completion_time_ns);
  bd.Add(LatComp::kFetch, waited);

  MapFrame(page_va, frame, write);
  clk.Advance(cost_.map_tlb_flush_ns);
  bd.Add(LatComp::kMap, cost_.map_tlb_flush_ns);
  return pool_.Data(frame) + (vaddr & (kPageSize - 1));
}

}  // namespace dilos
