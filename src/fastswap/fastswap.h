// Fastswap baseline (Amaro et al., EuroSys '20), modeled as the paper
// describes it (Sec. 2, 3.1, Fig. 1):
//
//  * Linux swap path: a major fault allocates a page *into the swap cache*,
//    pays swap-entry/radix bookkeeping, fetches over RDMA (frontswap), then
//    maps. Readahead pulls a cluster of pages into the swap cache WITHOUT
//    mapping them — so first touch of a prefetched page is a *minor fault*
//    (swap-cache lookup + map), the 87.5% in Table 1.
//  * Reclamation: a dedicated offload thread evicts in the background, but
//    not all work is absorbed; the remaining fraction runs as direct
//    reclamation inside the fault handler (the 29% slice of Fig. 1), and a
//    dirty victim's write-back is waited on in-path.
//  * One shared queue pair (the kernel swap path), so demand fetches queue
//    behind readahead traffic.
//
// Implements the same FarRuntime interface as DiLOS: identical application
// code runs on both.
#ifndef DILOS_SRC_FASTSWAP_FASTSWAP_H_
#define DILOS_SRC_FASTSWAP_FASTSWAP_H_

#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/memnode/fabric.h"
#include "src/pt/frame_pool.h"
#include "src/pt/page_table.h"
#include "src/sim/far_runtime.h"

namespace dilos {

struct FastswapConfig {
  uint64_t local_mem_bytes = 64ULL << 20;
  int num_cores = 1;
  uint32_t readahead_cluster = 8;  // Linux swap readahead window (2^3).
  bool readahead_enabled = true;
  size_t free_target = 8;  // Low watermark that triggers per-fault reclaim.
  // Fraction of reclamation events the offload thread fails to absorb,
  // running as direct reclaim in the fault path (Fig. 1: reclamation is
  // ~29% of average fault latency even with offloading).
  double direct_reclaim_fraction = 0.65;
};

class FastswapRuntime : public FarRuntime {
 public:
  FastswapRuntime(Fabric& fabric, FastswapConfig cfg);

  uint64_t AllocRegion(uint64_t bytes) override;
  void FreeRegion(uint64_t addr, uint64_t bytes) override;
  uint8_t* Pin(uint64_t vaddr, uint32_t len, bool write, int core) override;
  using FarRuntime::clock;
  Clock& clock(int core) override { return clocks_[static_cast<size_t>(core)]; }
  RuntimeStats& stats() override { return stats_; }
  int num_cores() const override { return cfg_.num_cores; }

  uint64_t MaxTimeNs() const;
  PageTable& page_table() { return pt_; }
  FramePool& frame_pool() { return pool_; }
  uint64_t direct_reclaims() const { return direct_reclaims_; }

 private:
  struct CacheEntry {
    uint32_t frame = 0;
    uint64_t done_ns = 0;  // RDMA completion of the fill.
  };

  uint8_t* HandleFault(uint64_t vaddr, uint32_t len, bool write, int core);
  void Readahead(uint64_t fault_page, Clock& clk);
  // Gets a frame, reclaiming if needed. Direct reclaim charges `clk`.
  // Nullopt only if the pool is exhausted and nothing is evictable.
  std::optional<uint32_t> EnsureFrame(Clock& clk, bool in_fault_path);
  // Evicts one page (or drops one clean swap-cache entry). If `charged`,
  // the software cost lands on `clk`. A dirty victim's frame only becomes
  // reusable once its synchronous swap-out write completes (frontswap
  // store semantics): it is parked in `pending_free_` until then.
  bool EvictOne(Clock& clk, bool charged);
  // Moves pending frames whose write-back finished by `now` into the pool.
  void DrainPendingFrees(uint64_t now);
  void MapFrame(uint64_t page_va, uint32_t frame, bool write);

  Fabric& fabric_;
  FastswapConfig cfg_;
  CostModel cost_;
  PageTable pt_;
  FramePool pool_;
  RuntimeStats stats_;
  std::vector<Clock> clocks_;
  QueuePair* qp_;  // The single kernel swap queue.

  std::unordered_map<uint64_t, CacheEntry> swap_cache_;  // Unmapped, filled pages.
  std::list<uint64_t> cache_lru_;                        // Swap-cache drop order.
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> cache_where_;

  std::list<uint64_t> lru_;  // Mapped pages, front = oldest.
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> where_;

  // Evicted-but-write-in-flight frames, ordered by readiness (QP completion
  // order is monotonic, so push order is sorted).
  std::deque<std::pair<uint32_t, uint64_t>> pending_free_;  // (frame, ready_ns).

  uint64_t next_region_ = kFarBase;
  uint64_t wr_id_ = 0;
  uint64_t reclaim_events_ = 0;
  uint64_t direct_reclaims_ = 0;
  double reclaim_debt_ = 0.0;

  // Linux VMA readahead adapts its window to the recent hit rate: fills
  // consumed by minor faults grow it, fills dropped unconsumed shrink it.
  uint32_t ra_window_ = 8;
  uint64_t ra_consumed_ = 0;
  uint64_t ra_dropped_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_FASTSWAP_FASTSWAP_H_
