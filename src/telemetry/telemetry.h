// Telemetry umbrella: configuration plus the owner of the optional
// instruments.
//
// Everything here is opt-in and near-zero-cost when off, the same contract
// the tracer has had since PR 1 (trace_capacity == 0 => a compare per
// event). A default TelemetryConfig{} changes nothing: no allocation on any
// fault path, identical RuntimeStats, identical timing. The runtime
// constructs a Telemetry object only when cfg.enabled(), then installs its
// pieces: the MetricsRegistry onto the Fabric's PostSend choke point, the
// FlightRecorder as the tracer's sink, the per-LatComp histogram array onto
// the stats breakdown, and span recording onto the tracer.
#ifndef DILOS_SRC_TELEMETRY_TELEMETRY_H_
#define DILOS_SRC_TELEMETRY_TELEMETRY_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "src/sim/stats.h"
#include "src/telemetry/attribution.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/histogram.h"
#include "src/telemetry/invariants.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/slo.h"

namespace dilos {

struct TelemetryConfig {
  // Per-(node, QP class) op/byte/timeout/RTT metrics at the fabric choke
  // point, read back via rt.metrics() / MetricsRegistry::ToProm().
  bool metrics = false;
  // Per-LatComp LogHistogram distributions behind the existing mean-only
  // fault breakdown, read back via rt.telemetry()->distribution(c).
  bool latency_distributions = false;
  // Causal fault-span ring (Tracer::EnableSpans); 0 = off.
  size_t span_capacity = 0;
  // Flight-recorder ring; 0 = off. Independent of trace_capacity — the
  // recorder taps the tracer's sink hook, which fires even when the debug
  // ring is disabled.
  size_t flight_capacity = 0;
  std::string flight_path;  // Dump target; empty = stderr.
  // Minimum sim-time between dumps, so an anomaly storm yields one report.
  uint64_t flight_min_interval_ns = 1'000'000'000;
  // Check cross-counter invariants (src/telemetry/invariants.h) in the
  // runtime destructor and abort on violation. For tests: every
  // telemetry-enabled run doubles as an accounting audit.
  bool check_invariants = false;
  // Per-fault critical-path phase attribution (src/telemetry/attribution.h):
  // per-(tenant, phase) LogHistograms with a CI-enforced sum-equals-latency
  // invariant. Purely observational — never advances the simulated clock.
  bool attribution = false;
  // Per-tenant latency SLO engine (src/telemetry/slo.h). Enabling it implies
  // attribution stamping: the engine scores the attributed end-to-end fault
  // latency, and breach dumps attach the attribution snapshot.
  SloConfig slo;

  bool enabled() const {
    return metrics || latency_distributions || span_capacity != 0 ||
           flight_capacity != 0 || check_invariants || attribution || slo.enabled;
  }
};

// Owns whichever instruments the config enabled. Held by the runtime via
// unique_ptr (null when telemetry is off), so the off path costs one
// pointer test wherever telemetry is consulted.
class Telemetry {
 public:
  Telemetry(const TelemetryConfig& cfg, int num_nodes) : cfg_(cfg) {
    if (cfg.metrics) {
      metrics_ = std::make_unique<MetricsRegistry>(num_nodes);
    }
    if (cfg.flight_capacity != 0) {
      flight_ = std::make_unique<FlightRecorder>(cfg.flight_capacity, cfg.flight_path,
                                                 cfg.flight_min_interval_ns);
    }
    if (cfg.latency_distributions) {
      distributions_ =
          std::make_unique<std::array<LogHistogram, static_cast<size_t>(LatComp::kCount)>>();
    }
    if (cfg.attribution || cfg.slo.enabled) {
      attribution_ = std::make_unique<FaultAttribution>();
    }
    if (cfg.slo.enabled) {
      slo_ = std::make_unique<SloEngine>(cfg.slo);
    }
  }

  const TelemetryConfig& config() const { return cfg_; }

  MetricsRegistry* metrics() { return metrics_.get(); }
  const MetricsRegistry* metrics() const { return metrics_.get(); }
  FlightRecorder* flight() { return flight_.get(); }
  const FlightRecorder* flight() const { return flight_.get(); }
  FaultAttribution* attribution() { return attribution_.get(); }
  const FaultAttribution* attribution() const { return attribution_.get(); }
  SloEngine* slo() { return slo_.get(); }
  const SloEngine* slo() const { return slo_.get(); }

  std::array<LogHistogram, static_cast<size_t>(LatComp::kCount)>* distributions() {
    return distributions_.get();
  }
  // Distribution of one latency component (empty histogram if the view is
  // off — callers can read unconditionally).
  const LogHistogram& distribution(LatComp c) const {
    static const LogHistogram kEmpty;
    return distributions_ ? (*distributions_)[static_cast<size_t>(c)] : kEmpty;
  }

 private:
  TelemetryConfig cfg_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<FlightRecorder> flight_;
  std::unique_ptr<FaultAttribution> attribution_;
  std::unique_ptr<SloEngine> slo_;
  std::unique_ptr<std::array<LogHistogram, static_cast<size_t>(LatComp::kCount)>>
      distributions_;
};

}  // namespace dilos

#endif  // DILOS_SRC_TELEMETRY_TELEMETRY_H_
