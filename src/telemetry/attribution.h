// Per-fault critical-path attribution (opt-in, TelemetryConfig::attribution).
//
// The fair-share scheduler (DESIGN.md §14) divides wire time and the
// telemetry layer (§5 of docs/observability.md) histograms end-to-end fault
// latency — but neither answers *why* a tenant's p99 is high: was the slow
// fault queued in its scheduler lane, on the wire, decoding an EC stripe,
// decompressing a tier blob, or backing off a timed-out replica? Attribution
// stamps each choke point the fault path already crosses into a fixed-size
// per-fault phase vector, then folds the vector into per-(tenant, phase)
// LogHistograms at fault completion.
//
// The design is self-verifying: phases are defined so the *on-path* subset
// tiles the fault's wall-clock interval exactly — for every committed fault,
// sum(on-path phases) must equal the measured end-to-end latency within 1%
// (it is exact by construction in the simulator; the 1% gate catches any
// future stamping drift). `sum_violations()` counts faults that broke the
// gate and CI asserts it stays zero across the blocking, pipelined,
// EC-degraded, tier-hit, and retry-storm paths (tests/test_attribution.cc).
//
// Two phases are deliberately *off-path* and excluded from the tiling sum:
//   - kHeal: checksum heal-in-place is posted at the fault's wire cursor but
//     never advances it — the repair overlaps the remainder of the fault.
//   - kStall: a pipeline depth-limit stall waits on the *oldest* parked
//     fiber, whose own wire phases already cover that wall-clock interval;
//     charging it on-path would double-count the wire.
// Both are still recorded (they answer "how much healing / stalling is this
// tenant seeing"), just not summed against end-to-end latency.
#ifndef DILOS_SRC_TELEMETRY_ATTRIBUTION_H_
#define DILOS_SRC_TELEMETRY_ATTRIBUTION_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/telemetry/histogram.h"

namespace dilos {

// Where a demand fault spends its nanoseconds. On-path phases tile
// [fault entry, fault completion] exactly; see FaultPhaseOnPath.
enum class FaultPhase : uint8_t {
  kHandler = 0,  // HW exception + OS trap + PTE walk/check + map/install CPU work's
                 // handler-side share (charged once per handler entry; a re-entered
                 // fault — e.g. tier-corrupt fallback — charges it again).
  kAlloc,        // Frame allocation, including any reclaim/write-back it triggers.
  kLaneWait,     // Fair-share scheduler lane queueing at QueuePair::PostSend
                 // (zero under the plain FIFO link's uncontended path).
  kWire,         // Fabric propagation + link occupancy + TCP emulation delay.
  kBackoff,      // Demand-retry backoff after a timed-out fetch attempt.
  kEcDecode,     // Degraded read: k-survivor reads + Cauchy matrix solve.
  kDecompress,   // Compressed-tier hit: blob decode into the frame.
  kOverlap,      // Blocking path only: prefetch-issue / guide / tracker work that
                 // spilled past fetch completion (work the fetch could not hide).
  kPark,         // Pipelined path: fiber parked awaiting completion + harvest queue.
  kMap,          // PTE install + TLB shootdown (+ fiber resume on the pipeline).
  kStall,        // OFF-PATH: depth-limit stall waiting on the oldest parked fiber.
  kHeal,         // OFF-PATH: checksum heal-in-place posted without advancing the fault.
  kCount,
};

constexpr size_t kFaultPhaseCount = static_cast<size_t>(FaultPhase::kCount);

constexpr const char* FaultPhaseName(FaultPhase p) {
  switch (p) {
    case FaultPhase::kHandler:
      return "handler";
    case FaultPhase::kAlloc:
      return "alloc";
    case FaultPhase::kLaneWait:
      return "lane-wait";
    case FaultPhase::kWire:
      return "wire";
    case FaultPhase::kBackoff:
      return "backoff";
    case FaultPhase::kEcDecode:
      return "ec-decode";
    case FaultPhase::kDecompress:
      return "decompress";
    case FaultPhase::kOverlap:
      return "overlap";
    case FaultPhase::kPark:
      return "park";
    case FaultPhase::kMap:
      return "map";
    case FaultPhase::kStall:
      return "stall";
    case FaultPhase::kHeal:
      return "heal";
    case FaultPhase::kCount:
      break;
  }
  return "?";
}

// True for phases that participate in the sum-equals-latency invariant.
constexpr bool FaultPhaseOnPath(FaultPhase p) {
  return p != FaultPhase::kStall && p != FaultPhase::kHeal;
}

// One fault's phase vector. Owned by the runtime's per-core fault scope (or
// a parked-fiber slot on the pipelined path) — preallocated, so stamping
// never allocates on the fault path.
struct FaultSlice {
  uint64_t ns[kFaultPhaseCount] = {};
  uint64_t start_ns = 0;  // Fault entry (clk at HandleFault, pre-handler advance).

  void Clear() {
    for (uint64_t& v : ns) {
      v = 0;
    }
    start_ns = 0;
  }

  void Add(FaultPhase p, uint64_t dt) { ns[static_cast<size_t>(p)] += dt; }

  uint64_t OnPathSumNs() const {
    uint64_t s = 0;
    for (size_t i = 0; i < kFaultPhaseCount; ++i) {
      if (FaultPhaseOnPath(static_cast<FaultPhase>(i))) {
        s += ns[i];
      }
    }
    return s;
  }
};

// Aggregates committed fault slices into per-(tenant, phase) LogHistograms
// plus a per-tenant end-to-end histogram, checks the tiling invariant on
// every commit, and renders Prometheus rows / the top-contributor report.
// Tenant bucketing mirrors MetricsRegistry: bucket 0 is the untenanted /
// out-of-range bucket, buckets 1..16 are tenant ids 0..15.
class FaultAttribution {
 public:
  static constexpr int kTenantBuckets = 17;
  // Invariant tolerance: 1% == 10'000 parts-per-million.
  static constexpr uint64_t kTolerancePpm = 10'000;

  void Commit(int tenant, const FaultSlice& slice, uint64_t e2e_ns) {
    size_t b = Bucket(tenant);
    for (size_t i = 0; i < kFaultPhaseCount; ++i) {
      if (slice.ns[i] != 0) {
        phase_[b * kFaultPhaseCount + i].Record(slice.ns[i]);
      }
    }
    e2e_[b].Record(e2e_ns);
    ++commits_;
    uint64_t sum = slice.OnPathSumNs();
    uint64_t diff = sum > e2e_ns ? sum - e2e_ns : e2e_ns - sum;
    uint64_t ppm = e2e_ns == 0 ? (diff == 0 ? 0 : ~0ULL)
                               : diff * 1'000'000 / e2e_ns;
    if (ppm > worst_residual_ppm_) {
      worst_residual_ppm_ = ppm;
    }
    if (ppm > kTolerancePpm) {
      ++sum_violations_;
    }
  }

  const LogHistogram& phase(int tenant, FaultPhase p) const {
    return phase_[Bucket(tenant) * kFaultPhaseCount + static_cast<size_t>(p)];
  }
  const LogHistogram& e2e(int tenant) const { return e2e_[Bucket(tenant)]; }

  uint64_t commits() const { return commits_; }
  uint64_t sum_violations() const { return sum_violations_; }
  uint64_t worst_residual_ppm() const { return worst_residual_ppm_; }

  // Total nanoseconds attributed to `p` across all tenants.
  uint64_t TotalNs(FaultPhase p) const {
    uint64_t s = 0;
    for (int b = 0; b < kTenantBuckets; ++b) {
      s += phase_[static_cast<size_t>(b) * kFaultPhaseCount + static_cast<size_t>(p)].sum();
    }
    return s;
  }

  // The on-path phase holding the most total time for `tenant` — the answer
  // to "why is this tenant's p99 high".
  FaultPhase TopContributor(int tenant) const {
    size_t b = Bucket(tenant);
    FaultPhase top = FaultPhase::kWire;
    uint64_t best = 0;
    for (size_t i = 0; i < kFaultPhaseCount; ++i) {
      auto p = static_cast<FaultPhase>(i);
      uint64_t s = phase_[b * kFaultPhaseCount + i].sum();
      if (FaultPhaseOnPath(p) && s > best) {
        best = s;
        top = p;
      }
    }
    return top;
  }

  // Human-readable per-tenant breakdown: one line per active tenant bucket
  // with the top contributor and each on-path phase's share of total fault
  // time. Attached to flight-recorder SLO-breach dumps.
  std::string Report() const {
    std::string out = "fault attribution (per-tenant critical-path shares)\n";
    char line[256];
    for (int b = 0; b < kTenantBuckets; ++b) {
      if (e2e_[b].empty()) {
        continue;
      }
      int tenant = b - 1;  // -1 = untenanted bucket.
      uint64_t total = e2e_[b].sum();
      std::snprintf(line, sizeof(line),
                    "  tenant %2d: faults=%llu e2e-p99=%lluns top=%s\n", tenant,
                    static_cast<unsigned long long>(e2e_[b].count()),
                    static_cast<unsigned long long>(e2e_[b].Percentile(99.0)),
                    FaultPhaseName(TopContributorForBucket(static_cast<size_t>(b))));
      out += line;
      for (size_t i = 0; i < kFaultPhaseCount; ++i) {
        const LogHistogram& h = phase_[static_cast<size_t>(b) * kFaultPhaseCount + i];
        if (h.empty()) {
          continue;
        }
        std::snprintf(line, sizeof(line), "    %-10s %6.2f%%  p99=%lluns  n=%llu%s\n",
                      FaultPhaseName(static_cast<FaultPhase>(i)),
                      total == 0 ? 0.0
                                 : 100.0 * static_cast<double>(h.sum()) /
                                       static_cast<double>(total),
                      static_cast<unsigned long long>(h.Percentile(99.0)),
                      static_cast<unsigned long long>(h.count()),
                      FaultPhaseOnPath(static_cast<FaultPhase>(i)) ? "" : "  (off-path)");
        out += line;
      }
    }
    std::snprintf(line, sizeof(line),
                  "  commits=%llu sum-violations=%llu worst-residual=%llupm\n",
                  static_cast<unsigned long long>(commits_),
                  static_cast<unsigned long long>(sum_violations_),
                  static_cast<unsigned long long>(worst_residual_ppm_));
    out += line;
    return out;
  }

  // Prometheus rows: dilos_fault_phase_ns{tenant, phase, quantile} summaries
  // plus _sum/_count, and the matching dilos_fault_e2e_ns summary.
  std::string ToProm() const {
    std::string out;
    out +=
        "# HELP dilos_fault_phase_ns Demand-fault time by critical-path phase, per tenant.\n"
        "# TYPE dilos_fault_phase_ns summary\n";
    for (int b = 0; b < kTenantBuckets; ++b) {
      for (size_t i = 0; i < kFaultPhaseCount; ++i) {
        const LogHistogram& h = phase_[static_cast<size_t>(b) * kFaultPhaseCount + i];
        if (h.empty()) {
          continue;
        }
        AppendSummary(&out, "dilos_fault_phase_ns", b - 1,
                      FaultPhaseName(static_cast<FaultPhase>(i)), h);
      }
    }
    out +=
        "# HELP dilos_fault_e2e_ns End-to-end demand-fault latency, per tenant.\n"
        "# TYPE dilos_fault_e2e_ns summary\n";
    for (int b = 0; b < kTenantBuckets; ++b) {
      if (!e2e_[b].empty()) {
        AppendSummary(&out, "dilos_fault_e2e_ns", b - 1, nullptr, e2e_[b]);
      }
    }
    return out;
  }

 private:
  static size_t Bucket(int tenant) {
    return static_cast<size_t>(tenant >= 0 && tenant < kTenantBuckets - 1 ? tenant + 1 : 0);
  }

  FaultPhase TopContributorForBucket(size_t b) const {
    FaultPhase top = FaultPhase::kWire;
    uint64_t best = 0;
    for (size_t i = 0; i < kFaultPhaseCount; ++i) {
      auto p = static_cast<FaultPhase>(i);
      uint64_t s = phase_[b * kFaultPhaseCount + i].sum();
      if (FaultPhaseOnPath(p) && s > best) {
        best = s;
        top = p;
      }
    }
    return top;
  }

  static void AppendSummary(std::string* out, const char* name, int tenant,
                            const char* phase, const LogHistogram& h) {
    static constexpr double kQ[] = {50.0, 99.0, 99.9};
    char buf[192];
    char labels[96];
    if (phase != nullptr) {
      std::snprintf(labels, sizeof(labels), "tenant=\"%d\",phase=\"%s\"", tenant, phase);
    } else {
      std::snprintf(labels, sizeof(labels), "tenant=\"%d\"", tenant);
    }
    for (double q : kQ) {
      std::snprintf(buf, sizeof(buf), "%s{%s,quantile=\"%g\"} %llu\n", name, labels,
                    q / 100.0, static_cast<unsigned long long>(h.Percentile(q)));
      *out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s_sum{%s} %llu\n", name, labels,
                  static_cast<unsigned long long>(h.sum()));
    *out += buf;
    std::snprintf(buf, sizeof(buf), "%s_count{%s} %llu\n", name, labels,
                  static_cast<unsigned long long>(h.count()));
    *out += buf;
  }

  LogHistogram phase_[static_cast<size_t>(kTenantBuckets) * kFaultPhaseCount];
  LogHistogram e2e_[kTenantBuckets];
  uint64_t commits_ = 0;
  uint64_t sum_violations_ = 0;
  uint64_t worst_residual_ppm_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_TELEMETRY_ATTRIBUTION_H_
