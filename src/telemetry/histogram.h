// Constant-memory log-bucketed latency histogram (HdrHistogram-style).
//
// PercentileRecorder (src/sim/stats.h) stores every sample — exact, but a
// million-op bench run carries 8 MB of samples and a per-(node, QP-class)
// RTT distribution at that cost is a non-starter. LogHistogram instead keys
// each value into one of 64 linear sub-buckets per power-of-two octave:
// relative bucket width is <= 1/64 (~1.6%), so nearest-rank percentiles land
// within ~0.8% of the exact answer (the acceptance bound is 3%), at
// O(#buckets) memory regardless of sample count. Buckets are plain counters,
// so histograms merge by addition — per-core or per-node distributions can
// be combined after the fact, which a sorted sample vector cannot do
// without re-sorting the union.
#ifndef DILOS_SRC_TELEMETRY_HISTOGRAM_H_
#define DILOS_SRC_TELEMETRY_HISTOGRAM_H_

#include <bit>
#include <cstdint>
#include <vector>

namespace dilos {

class LogHistogram {
 public:
  // 64 sub-buckets per octave: values below kSub are recorded exactly.
  static constexpr uint32_t kSubBits = 6;
  static constexpr uint32_t kSub = 1u << kSubBits;

  void Record(uint64_t v) {
    size_t i = BucketIndex(v);
    if (i >= counts_.size()) {
      counts_.resize(i + 1, 0);
    }
    ++counts_[i];
    ++count_;
    sum_ += v;
    if (v > max_) {
      max_ = v;
    }
    if (count_ == 1 || v < min_) {
      min_ = v;
    }
  }

  // Bucket-wise addition; the merged histogram answers percentiles over the
  // union of both sample streams.
  void Merge(const LogHistogram& o) {
    if (o.counts_.size() > counts_.size()) {
      counts_.resize(o.counts_.size(), 0);
    }
    for (size_t i = 0; i < o.counts_.size(); ++i) {
      counts_[i] += o.counts_[i];
    }
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.max_ > max_) {
      max_ = o.max_;
    }
    if (o.count_ != 0 && (count_ == o.count_ || o.min_ < min_)) {
      min_ = o.min_;
    }
  }

  // Nearest-rank p-th percentile (p in [0,100]), same rank formula as
  // PercentileRecorder::Percentile; returns the matching bucket's
  // representative (midpoint) value. 0 when empty.
  uint64_t Percentile(double p) const {
    if (count_ == 0) {
      return 0;
    }
    double frac = p / 100.0;
    if (frac < 0.0) {
      frac = 0.0;
    }
    if (frac > 1.0) {
      frac = 1.0;
    }
    auto rank = static_cast<uint64_t>(frac * static_cast<double>(count_ - 1) + 0.5);
    uint64_t seen = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > rank) {
        return BucketValue(i);
      }
    }
    return max_;
  }

  double MeanNs() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  uint64_t MaxNs() const { return max_; }
  uint64_t MinNs() const { return count_ == 0 ? 0 : min_; }
  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  uint64_t sum() const { return sum_; }

  // Allocated bucket slots — the histogram's entire variable memory.
  size_t bucket_count() const { return counts_.size(); }

  void Reset() {
    counts_.clear();
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    min_ = 0;
  }

  // Bucket layout: index v for v < kSub (exact); otherwise the value's top
  // kSubBits+1 bits select a linear sub-bucket within its octave —
  // idx = e * kSub + (v >> e) with e = msb(v) - kSubBits. Octave e spans
  // indices [(e+1)*kSub, (e+2)*kSub).
  static size_t BucketIndex(uint64_t v) {
    if (v < kSub) {
      return static_cast<size_t>(v);
    }
    auto msb = static_cast<uint32_t>(std::bit_width(v) - 1);
    uint32_t e = msb - kSubBits;
    return static_cast<size_t>(e) * kSub + static_cast<size_t>(v >> e);
  }

  // Midpoint of the bucket's value range: exact below kSub, otherwise
  // lower + width/2 where width = 2^e.
  static uint64_t BucketValue(size_t i) {
    if (i < kSub) {
      return static_cast<uint64_t>(i);
    }
    auto e = static_cast<uint32_t>(i / kSub - 1);
    uint64_t mant = static_cast<uint64_t>(i) - static_cast<uint64_t>(e) * kSub;  // [kSub, 2*kSub)
    return (mant << e) + (static_cast<uint64_t>(1) << e) / 2;
  }

 private:
  std::vector<uint64_t> counts_;  // Grown to the highest recorded bucket only.
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_TELEMETRY_HISTOGRAM_H_
