// Flight recorder: an always-on secondary event ring plus an anomaly
// trigger.
//
// The debug tracer's ring is usually off (trace_capacity == 0) because
// nobody knows in advance which run will go wrong. The flight recorder
// inverts that: it tees every trace record into its own cheap ring via the
// TraceSink hook (a ring store per event, no formatting), and when one of
// the data-loss counters moves — failed_fetches, repair_pages_lost,
// checksum_mismatches, tier_corrupt_drops — it dumps the last N events, a
// RuntimeStats snapshot, and the per-node metrics to a file or stderr at
// the moment the anomaly happened, rate-limited so a corruption storm
// produces one report, not thousands.
#ifndef DILOS_SRC_TELEMETRY_FLIGHT_RECORDER_H_
#define DILOS_SRC_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/stats.h"
#include "src/sim/trace.h"
#include "src/telemetry/metrics.h"

namespace dilos {

class FlightRecorder : public TraceSink {
 public:
  // `path` empty => dump to stderr. The last dump is always kept in
  // last_dump() regardless, so tests never need to read files.
  FlightRecorder(size_t capacity, std::string path, uint64_t min_interval_ns)
      : capacity_(capacity), path_(std::move(path)), min_interval_ns_(min_interval_ns) {
    ring_.reserve(capacity_);
  }

  void OnTrace(const TraceRecord& r) override {
    if (capacity_ == 0) {
      return;
    }
    if (ring_.size() < capacity_) {
      ring_.push_back(r);
    } else {
      ring_[next_ % capacity_] = r;
    }
    ++next_;
  }

  // Checks the anomaly counters against their high-water marks and dumps if
  // any moved. Called from the runtime's background tick — cost when healthy
  // is four compares. Returns true when a dump was emitted.
  bool MaybeTrigger(uint64_t now_ns, const RuntimeStats& stats,
                    const MetricsRegistry* metrics) {
    uint64_t level = AnomalyLevel(stats);
    if (level <= watermark_) {
      return false;
    }
    if (dumps_ != 0 && now_ns < last_dump_ns_ + min_interval_ns_) {
      return false;  // Storm: stay armed, report once the window passes.
    }
    watermark_ = level;
    last_dump_ns_ = now_ns;
    ++dumps_;
    last_dump_ = BuildReport(now_ns, stats, metrics, nullptr, nullptr);
    Emit(last_dump_);
    return true;
  }

  // Unconditional dump for non-watermark triggers (SLO breaches): bypasses
  // the anomaly-counter check but keeps the rate limit, so an alert storm
  // still yields one report per window. `reason` names the trigger in the
  // header; `extra` (attribution + SLO snapshot) is appended before the end
  // marker. Returns true when a dump was emitted.
  bool ForceDump(uint64_t now_ns, const RuntimeStats& stats, const MetricsRegistry* metrics,
                 const char* reason, const std::string& extra) {
    if (dumps_ != 0 && now_ns < last_dump_ns_ + min_interval_ns_) {
      return false;
    }
    last_dump_ns_ = now_ns;
    ++dumps_;
    last_dump_ = BuildReport(now_ns, stats, metrics, reason, &extra);
    Emit(last_dump_);
    return true;
  }

  // Events in chronological order (oldest surviving first).
  std::vector<TraceRecord> Snapshot() const {
    std::vector<TraceRecord> out;
    if (ring_.empty()) {
      return out;
    }
    size_t start = next_ > capacity_ ? next_ % capacity_ : 0;
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  uint64_t total_recorded() const { return next_; }
  uint64_t dumps() const { return dumps_; }
  const std::string& last_dump() const { return last_dump_; }

  // The combined anomaly level: moves exactly when data was lost or found
  // corrupt. All four are monotone counters, so the sum is too.
  static uint64_t AnomalyLevel(const RuntimeStats& s) {
    return s.failed_fetches + s.repair_pages_lost + s.checksum_mismatches +
           s.tier_corrupt_drops;
  }

 private:
  std::string BuildReport(uint64_t now_ns, const RuntimeStats& stats,
                          const MetricsRegistry* metrics, const char* reason,
                          const std::string* extra) const {
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "=== flight recorder dump #%llu at %llu ns%s%s ===\n"
                  "anomaly counters: failed_fetches=%llu repair_pages_lost=%llu "
                  "checksum_mismatches=%llu tier_corrupt_drops=%llu\n",
                  static_cast<unsigned long long>(dumps_),
                  static_cast<unsigned long long>(now_ns),
                  reason != nullptr ? " trigger=" : "", reason != nullptr ? reason : "",
                  static_cast<unsigned long long>(stats.failed_fetches),
                  static_cast<unsigned long long>(stats.repair_pages_lost),
                  static_cast<unsigned long long>(stats.checksum_mismatches),
                  static_cast<unsigned long long>(stats.tier_corrupt_drops));
    out += line;
    auto snap = Snapshot();
    std::snprintf(line, sizeof(line), "--- last %zu events (of %llu recorded) ---\n",
                  snap.size(), static_cast<unsigned long long>(next_));
    out += line;
    for (const TraceRecord& r : snap) {
      std::snprintf(line, sizeof(line), "%12llu ns  %-18s page=0x%llx detail=%u\n",
                    static_cast<unsigned long long>(r.time_ns), TraceEventName(r.event),
                    static_cast<unsigned long long>(r.page_va), r.detail);
      out += line;
    }
    out += "--- stats snapshot ---\n";
    out += stats.ToString();
    if (metrics != nullptr) {
      out += "--- per-node fabric metrics ---\n";
      out += metrics->ToString();
    }
    if (extra != nullptr && !extra->empty()) {
      out += "--- attribution snapshot ---\n";
      out += *extra;
    }
    out += "=== end dump ===\n";
    return out;
  }

  void Emit(const std::string& report) const {
    if (path_.empty()) {
      std::fputs(report.c_str(), stderr);
      return;
    }
    std::FILE* f = std::fopen(path_.c_str(), "a");
    if (f == nullptr) {
      std::fputs(report.c_str(), stderr);
      return;
    }
    std::fputs(report.c_str(), f);
    std::fclose(f);
  }

  size_t capacity_;
  std::string path_;
  uint64_t min_interval_ns_;
  std::vector<TraceRecord> ring_;
  uint64_t next_ = 0;
  uint64_t watermark_ = 0;
  uint64_t last_dump_ns_ = 0;
  uint64_t dumps_ = 0;
  std::string last_dump_;
};

}  // namespace dilos

#endif  // DILOS_SRC_TELEMETRY_FLIGHT_RECORDER_H_
