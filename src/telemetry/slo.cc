#include "src/telemetry/slo.h"

#include <algorithm>
#include <cstdio>

namespace dilos {

void SloEngine::Window::Configure(uint64_t window_faults) {
  bucket_cap = std::max<uint64_t>(1, window_faults / kWindowBuckets);
}

void SloEngine::Window::Add(bool is_bad) {
  if (faults[cur] >= bucket_cap) {
    cur = (cur + 1) % kWindowBuckets;
    faults[cur] = 0;
    bad[cur] = 0;
    ++rotations;
  }
  ++faults[cur];
  if (is_bad) {
    ++bad[cur];
  }
}

double SloEngine::Window::BadFraction() const {
  uint64_t f = 0;
  uint64_t b = 0;
  for (int i = 0; i < kWindowBuckets; ++i) {
    f += faults[i];
    b += bad[i];
  }
  return f == 0 ? 0.0 : static_cast<double>(b) / static_cast<double>(f);
}

SloEngine::SloEngine(const SloConfig& cfg) : cfg_(cfg) {
  for (TenantState& s : state_) {
    s.fast.Configure(cfg_.fast_window_faults);
    s.slow.Configure(cfg_.slow_window_faults);
  }
  state_[0].obj = cfg_.default_objective;
}

void SloEngine::SetObjective(int tenant, const SloObjective& o) {
  state_[Bucket(tenant)].obj = o;
}

bool SloEngine::Observe(int tenant, uint64_t latency_ns, uint64_t now_ns) {
  TenantState& s = state_[Bucket(tenant)];
  if (!s.obj.active()) {
    return false;
  }
  bool is_bad = latency_ns > s.obj.threshold_ns;
  ++s.total;
  if (is_bad) {
    ++s.bad;
  }
  s.fast.Add(is_bad);
  s.slow.Add(is_bad);

  double allowed = s.obj.allowed();
  if (allowed <= 0.0) {
    return false;  // A p100 objective has no budget to burn.
  }
  double fast_burn = s.fast.BadFraction() / allowed;
  double slow_burn = s.slow.BadFraction() / allowed;
  if (!s.alert_active) {
    if (fast_burn >= cfg_.fast_burn_alert && slow_burn >= cfg_.slow_burn_alert) {
      s.alert_active = true;
      ++s.alerts;
      s.last_alert_ns = now_ns;
      return true;
    }
  } else if (fast_burn < cfg_.fast_burn_alert * cfg_.clear_ratio) {
    s.alert_active = false;
  }
  return false;
}

double SloEngine::burn_rate(int tenant, bool fast) const {
  const TenantState& s = state_[Bucket(tenant)];
  double allowed = s.obj.allowed();
  if (!s.obj.active() || allowed <= 0.0) {
    return 0.0;
  }
  return (fast ? s.fast.BadFraction() : s.slow.BadFraction()) / allowed;
}

double SloEngine::budget_used(int tenant) const {
  const TenantState& s = state_[Bucket(tenant)];
  double allowed = s.obj.allowed();
  if (!s.obj.active() || allowed <= 0.0 || s.total == 0) {
    return 0.0;
  }
  double bad_frac = static_cast<double>(s.bad) / static_cast<double>(s.total);
  return bad_frac / allowed;
}

std::string SloEngine::Report() const {
  std::string out = "slo engine (per-tenant burn rates)\n";
  char line[224];
  for (int b = 0; b < kTenantBuckets; ++b) {
    const TenantState& s = state_[b];
    if (!s.obj.active() || s.total == 0) {
      continue;
    }
    int tenant = b - 1;
    std::snprintf(line, sizeof(line),
                  "  tenant %2d: p%.4g<%lluns faults=%llu bad=%llu burn(fast=%.2f "
                  "slow=%.2f) budget-used=%.2f alerts=%llu%s\n",
                  tenant, s.obj.percentile,
                  static_cast<unsigned long long>(s.obj.threshold_ns),
                  static_cast<unsigned long long>(s.total),
                  static_cast<unsigned long long>(s.bad), burn_rate(tenant, true),
                  burn_rate(tenant, false), budget_used(tenant),
                  static_cast<unsigned long long>(s.alerts),
                  s.alert_active ? " ALERT" : "");
    out += line;
  }
  return out;
}

std::string SloEngine::ToProm() const {
  std::string out;
  auto row = [&out](const char* name, int tenant, double v, bool integer) {
    char buf[128];
    if (integer) {
      std::snprintf(buf, sizeof(buf), "%s{tenant=\"%d\"} %llu\n", name, tenant,
                    static_cast<unsigned long long>(v));
    } else {
      std::snprintf(buf, sizeof(buf), "%s{tenant=\"%d\"} %.6g\n", name, tenant, v);
    }
    out += buf;
  };
  struct Series {
    const char* name;
    const char* help;
    const char* type;
  };
  static constexpr Series kSeries[] = {
      {"dilos_slo_faults_total", "Faults scored against the tenant objective.", "counter"},
      {"dilos_slo_bad_total", "Faults over the tenant latency threshold.", "counter"},
      {"dilos_slo_alerts_total", "Burn-rate breach alerts fired.", "counter"},
      {"dilos_slo_burn_fast", "Fast-window burn rate (bad fraction / allowed).", "gauge"},
      {"dilos_slo_burn_slow", "Slow-window burn rate (bad fraction / allowed).", "gauge"},
      {"dilos_slo_budget_used", "Lifetime error-budget consumption (>=1 blown).", "gauge"},
      {"dilos_slo_threshold_ns", "Configured latency threshold.", "gauge"},
  };
  for (const Series& ser : kSeries) {
    out += std::string("# HELP ") + ser.name + " " + ser.help + "\n";
    out += std::string("# TYPE ") + ser.name + " " + ser.type + "\n";
    for (int b = 0; b < kTenantBuckets; ++b) {
      const TenantState& s = state_[b];
      if (!s.obj.active()) {
        continue;
      }
      int tenant = b - 1;
      if (ser.name == std::string("dilos_slo_faults_total")) {
        row(ser.name, tenant, static_cast<double>(s.total), true);
      } else if (ser.name == std::string("dilos_slo_bad_total")) {
        row(ser.name, tenant, static_cast<double>(s.bad), true);
      } else if (ser.name == std::string("dilos_slo_alerts_total")) {
        row(ser.name, tenant, static_cast<double>(s.alerts), true);
      } else if (ser.name == std::string("dilos_slo_burn_fast")) {
        row(ser.name, tenant, burn_rate(tenant, true), false);
      } else if (ser.name == std::string("dilos_slo_burn_slow")) {
        row(ser.name, tenant, burn_rate(tenant, false), false);
      } else if (ser.name == std::string("dilos_slo_budget_used")) {
        row(ser.name, tenant, budget_used(tenant), false);
      } else {
        row(ser.name, tenant, static_cast<double>(s.obj.threshold_ns), true);
      }
    }
  }
  return out;
}

}  // namespace dilos
