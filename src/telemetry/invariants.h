// Cross-counter invariants over RuntimeStats.
//
// The counters are incremented at ~40 independent call sites; a refactor
// that drops one increment produces numbers that are individually plausible
// but jointly impossible. Each invariant here encodes a containment
// relation that holds by construction of the code paths (a scrub repair
// implies a scrub read; an EC degraded read is a degraded read; ...).
// `TelemetryConfig::check_invariants` makes the runtime assert them at
// shutdown, so every telemetry-enabled test doubles as an accounting audit.
#ifndef DILOS_SRC_TELEMETRY_INVARIANTS_H_
#define DILOS_SRC_TELEMETRY_INVARIANTS_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/stats.h"

namespace dilos {

// Returns one message per violated invariant; empty means consistent.
// `tier_enabled` gates the relations that only hold when the compressed
// tier participates in fault handling.
inline std::vector<std::string> CheckStatsInvariants(const RuntimeStats& s,
                                                     bool tier_enabled) {
  std::vector<std::string> out;
  auto check = [&out](bool ok, const char* fmt, uint64_t a, uint64_t b) {
    if (!ok) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(a),
                    static_cast<unsigned long long>(b));
      out.emplace_back(buf);
    }
  };

  // Repair: every committed granule was first scheduled.
  check(s.repair_granules <= s.repairs_issued,
        "repair_granules (%llu) > repairs_issued (%llu)", s.repair_granules,
        s.repairs_issued);
  // Scrub: a repair implies the scrubber read (and verified) that page.
  check(s.scrub_repairs <= s.scrub_pages, "scrub_repairs (%llu) > scrub_pages (%llu)",
        s.scrub_repairs, s.scrub_pages);
  // EC degraded reads are a subset of all degraded reads.
  check(s.ec_degraded_reads <= s.degraded_reads,
        "ec_degraded_reads (%llu) > degraded_reads (%llu)", s.ec_degraded_reads,
        s.degraded_reads);
  // Probes: a miss implies a probe was sent.
  check(s.probe_misses <= s.probes_sent, "probe_misses (%llu) > probes_sent (%llu)",
        s.probe_misses, s.probes_sent);
  // Prefetch: a page mapped early was issued by a prefetcher first.
  check(s.prefetch_mapped_early <= s.prefetch_issued,
        "prefetch_mapped_early (%llu) > prefetch_issued (%llu)", s.prefetch_mapped_early,
        s.prefetch_issued);
  // Tier: every page leaving the tier (pressure eviction or corrupt drop)
  // was admitted; eviction and corrupt-drop are mutually exclusive exits.
  check(s.tier_evictions + s.tier_corrupt_drops <= s.tier_stored_pages,
        "tier exits (%llu) > tier_stored_pages (%llu)",
        s.tier_evictions + s.tier_corrupt_drops, s.tier_stored_pages);
  if (tier_enabled) {
    // A tier hit resolves the fault locally — it is counted a minor fault.
    check(s.tier_hits <= s.minor_faults, "tier_hits (%llu) > minor_faults (%llu)",
          s.tier_hits, s.minor_faults);
    // A tier miss goes remote — it is (at most) a major fault.
    check(s.tier_misses <= s.major_faults, "tier_misses (%llu) > major_faults (%llu)",
          s.tier_misses, s.major_faults);
  }
  // Migration: every started migration ends exactly one way — committed,
  // rolled back, or still in flight at shutdown (the equality is the
  // "granules migrated == committed + rolled back" shutdown audit).
  check(s.migrations_committed + s.migrations_rolled_back + s.migrations_inflight ==
            s.migrations_started,
        "migrations committed+rolled_back+inflight (%llu) != migrations_started (%llu)",
        s.migrations_committed + s.migrations_rolled_back + s.migrations_inflight,
        s.migrations_started);
  // A catch-up re-ship is one of the migration page copies.
  check(s.migration_reships <= s.migration_pages,
        "migration_reships (%llu) > migration_pages (%llu)", s.migration_reships,
        s.migration_pages);
  // Only a committed cutover can fail back.
  check(s.migration_failbacks <= s.migrations_committed,
        "migration_failbacks (%llu) > migrations_committed (%llu)", s.migration_failbacks,
        s.migrations_committed);
  // A suppressed retry abandons its fetch, so every suppression is one of
  // the failed fetches.
  check(s.fault_retries_suppressed <= s.failed_fetches,
        "fault_retries_suppressed (%llu) > failed_fetches (%llu)",
        s.fault_retries_suppressed, s.failed_fetches);
  // Fault pipeline: every resumed or still-parked fiber was first parked,
  // and a park only happens on the major-fault path.
  check(s.fault_resumes + s.fault_inflight <= s.fault_parks,
        "fault_resumes + fault_inflight (%llu) > fault_parks (%llu)",
        s.fault_resumes + s.fault_inflight, s.fault_parks);
  check(s.fault_parks <= s.major_faults, "fault_parks (%llu) > major_faults (%llu)",
        s.fault_parks, s.major_faults);
  // A harvest batch installs at least one fiber, so batches never outnumber
  // resumes.
  check(s.fault_batched_installs <= s.fault_resumes,
        "fault_batched_installs (%llu) > fault_resumes (%llu)", s.fault_batched_installs,
        s.fault_resumes);
  check(s.fault_inflight <= s.fault_inflight_peak,
        "fault_inflight (%llu) > fault_inflight_peak (%llu)", s.fault_inflight,
        s.fault_inflight_peak);
  // The fault breakdown counts one event per handled fault.
  check(s.fault_breakdown.events() <= s.total_faults(),
        "fault_breakdown events (%llu) > total_faults (%llu)", s.fault_breakdown.events(),
        s.total_faults());
  return out;
}

}  // namespace dilos

#endif  // DILOS_SRC_TELEMETRY_INVARIANTS_H_
