// Cross-counter invariants over RuntimeStats.
//
// The counters are incremented at ~40 independent call sites; a refactor
// that drops one increment produces numbers that are individually plausible
// but jointly impossible. Each invariant here encodes a containment
// relation that holds by construction of the code paths (a scrub repair
// implies a scrub read; an EC degraded read is a degraded read; ...).
// `TelemetryConfig::check_invariants` makes the runtime assert them at
// shutdown, so every telemetry-enabled test doubles as an accounting audit.
#ifndef DILOS_SRC_TELEMETRY_INVARIANTS_H_
#define DILOS_SRC_TELEMETRY_INVARIANTS_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/stats.h"

namespace dilos {

// Returns one message per violated invariant; empty means consistent.
// `tier_enabled` gates the relations that only hold when the compressed
// tier participates in fault handling.
inline std::vector<std::string> CheckStatsInvariants(const RuntimeStats& s,
                                                     bool tier_enabled) {
  std::vector<std::string> out;
  auto check = [&out](bool ok, const char* fmt, uint64_t a, uint64_t b) {
    if (!ok) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), fmt, static_cast<unsigned long long>(a),
                    static_cast<unsigned long long>(b));
      out.emplace_back(buf);
    }
  };

  // Repair: every committed granule was first scheduled.
  check(s.repair_granules <= s.repairs_issued,
        "repair_granules (%llu) > repairs_issued (%llu)", s.repair_granules,
        s.repairs_issued);
  // Scrub: a repair implies the scrubber read (and verified) that page.
  check(s.scrub_repairs <= s.scrub_pages, "scrub_repairs (%llu) > scrub_pages (%llu)",
        s.scrub_repairs, s.scrub_pages);
  // EC degraded reads are a subset of all degraded reads.
  check(s.ec_degraded_reads <= s.degraded_reads,
        "ec_degraded_reads (%llu) > degraded_reads (%llu)", s.ec_degraded_reads,
        s.degraded_reads);
  // Probes: a miss implies a probe was sent.
  check(s.probe_misses <= s.probes_sent, "probe_misses (%llu) > probes_sent (%llu)",
        s.probe_misses, s.probes_sent);
  // Prefetch: a page mapped early was issued by a prefetcher first.
  check(s.prefetch_mapped_early <= s.prefetch_issued,
        "prefetch_mapped_early (%llu) > prefetch_issued (%llu)", s.prefetch_mapped_early,
        s.prefetch_issued);
  // Tier: every page leaving the tier (pressure eviction or corrupt drop)
  // was admitted; eviction and corrupt-drop are mutually exclusive exits.
  check(s.tier_evictions + s.tier_corrupt_drops <= s.tier_stored_pages,
        "tier exits (%llu) > tier_stored_pages (%llu)",
        s.tier_evictions + s.tier_corrupt_drops, s.tier_stored_pages);
  if (tier_enabled) {
    // A tier hit resolves the fault locally — it is counted a minor fault.
    check(s.tier_hits <= s.minor_faults, "tier_hits (%llu) > minor_faults (%llu)",
          s.tier_hits, s.minor_faults);
    // A tier miss goes remote — it is (at most) a major fault.
    check(s.tier_misses <= s.major_faults, "tier_misses (%llu) > major_faults (%llu)",
          s.tier_misses, s.major_faults);
  }
  // Migration: every started migration ends exactly one way — committed,
  // rolled back, or still in flight at shutdown (the equality is the
  // "granules migrated == committed + rolled back" shutdown audit).
  check(s.migrations_committed + s.migrations_rolled_back + s.migrations_inflight ==
            s.migrations_started,
        "migrations committed+rolled_back+inflight (%llu) != migrations_started (%llu)",
        s.migrations_committed + s.migrations_rolled_back + s.migrations_inflight,
        s.migrations_started);
  // A catch-up re-ship is one of the migration page copies.
  check(s.migration_reships <= s.migration_pages,
        "migration_reships (%llu) > migration_pages (%llu)", s.migration_reships,
        s.migration_pages);
  // Only a committed cutover can fail back.
  check(s.migration_failbacks <= s.migrations_committed,
        "migration_failbacks (%llu) > migrations_committed (%llu)", s.migration_failbacks,
        s.migrations_committed);
  // A suppressed retry abandons its fetch, so every suppression is one of
  // the failed fetches.
  check(s.fault_retries_suppressed <= s.failed_fetches,
        "fault_retries_suppressed (%llu) > failed_fetches (%llu)",
        s.fault_retries_suppressed, s.failed_fetches);
  // Every hotness-driven migration went through MigrateGranule, so the
  // auto-migrator can never claim more moves than the mechanism started.
  check(s.hotness_migrations <= s.migrations_started,
        "hotness_migrations (%llu) > migrations_started (%llu)", s.hotness_migrations,
        s.migrations_started);
  // Fault pipeline: every resumed or still-parked fiber was first parked,
  // and a park only happens on the major-fault path.
  check(s.fault_resumes + s.fault_inflight <= s.fault_parks,
        "fault_resumes + fault_inflight (%llu) > fault_parks (%llu)",
        s.fault_resumes + s.fault_inflight, s.fault_parks);
  check(s.fault_parks <= s.major_faults, "fault_parks (%llu) > major_faults (%llu)",
        s.fault_parks, s.major_faults);
  // A harvest batch installs at least one fiber, so batches never outnumber
  // resumes.
  check(s.fault_batched_installs <= s.fault_resumes,
        "fault_batched_installs (%llu) > fault_resumes (%llu)", s.fault_batched_installs,
        s.fault_resumes);
  check(s.fault_inflight <= s.fault_inflight_peak,
        "fault_inflight (%llu) > fault_inflight_peak (%llu)", s.fault_inflight,
        s.fault_inflight_peak);
  // The fault breakdown counts one event per handled fault.
  check(s.fault_breakdown.events() <= s.total_faults(),
        "fault_breakdown events (%llu) > total_faults (%llu)", s.fault_breakdown.events(),
        s.total_faults());
  return out;
}

// -- Tenancy shutdown audit ---------------------------------------------------
//
// The TenantRegistry (src/tenant/tenant.h) exports this flat snapshot so the
// audit can live next to the other invariants without telemetry depending on
// the tenant subsystem. Per-tenant gauges and the global totals are updated
// through *different* variables at the same call sites, so the sums catch
// misattribution (charging tenant A, uncharging tenant B) that each counter
// individually would hide.
struct TenantInvariantRow {
  int id = -1;  // -1 is the untenanted bucket (probes, parity, unbound ranges).
  bool retired = false;
  uint64_t resident_pages = 0;
  uint64_t remote_pages = 0;
  uint64_t quota_pages = 0;  // 0 = unlimited.
};

struct TenantInvariantView {
  std::vector<TenantInvariantRow> rows;  // Tenants plus the untenanted bucket.
  uint64_t total_resident = 0;           // Global gauge, all buckets.
  uint64_t total_remote = 0;             // Global gauge, charged pages only.
  uint64_t charged_entries = 0;          // Size of the page -> owner charge map.
  uint64_t underflows = 0;               // Gauge decrements that would go negative.
};

// Returns one message per violated tenancy invariant; empty means consistent.
inline std::vector<std::string> CheckTenantInvariants(const TenantInvariantView& v) {
  std::vector<std::string> out;
  auto fail = [&out](const char* fmt, unsigned long long a, unsigned long long b) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), fmt, a, b);
    out.emplace_back(buf);
  };

  if (v.underflows != 0) {
    fail("tenant gauge underflows (%llu) != expected (%llu)", v.underflows, 0ULL);
  }
  uint64_t resident_sum = 0;
  uint64_t remote_sum = 0;
  for (const TenantInvariantRow& r : v.rows) {
    resident_sum += r.resident_pages;
    remote_sum += r.remote_pages;
    if (r.retired && (r.resident_pages != 0 || r.remote_pages != 0)) {
      fail("retired tenant %llu still owns %llu pages", static_cast<uint64_t>(r.id),
           r.resident_pages + r.remote_pages);
    }
    if (r.quota_pages != 0 && r.remote_pages > r.quota_pages) {
      fail("tenant remote_pages (%llu) > quota_pages (%llu)", r.remote_pages,
           r.quota_pages);
    }
  }
  if (resident_sum != v.total_resident) {
    fail("sum of per-tenant resident pages (%llu) != global resident total (%llu)",
         resident_sum, v.total_resident);
  }
  if (remote_sum != v.total_remote) {
    fail("sum of per-tenant remote pages (%llu) != global remote total (%llu)",
         remote_sum, v.total_remote);
  }
  if (v.charged_entries != v.total_remote) {
    fail("charge-map entries (%llu) != global remote total (%llu)", v.charged_entries,
         v.total_remote);
  }
  return out;
}

}  // namespace dilos

#endif  // DILOS_SRC_TELEMETRY_INVARIANTS_H_
