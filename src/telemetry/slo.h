// Per-tenant latency SLO engine with multi-window burn-rate alerting
// (opt-in, TelemetryConfig::slo.enabled).
//
// An objective is "percentile p of demand-fault latency stays under T ns" —
// e.g. {99.0, 20'000} reads "p99 < 20 µs". Every committed fault is scored
// good/bad against its tenant's threshold; the *error budget* is the bad
// fraction the objective tolerates (1 - p/100, so a p99 objective allows 1%
// bad). Burn rate is the classic SRE ratio: observed bad fraction divided by
// the allowed fraction — burn 1.0 consumes the budget exactly as fast as the
// objective permits, burn 14 exhausts a month-scale budget in hours.
//
// Alerting is multi-window (fast AND slow must both burn) so a brief blip
// can't page while a sustained regression pages quickly, with hysteresis: an
// active alert re-arms only after the fast burn drops below
// clear_ratio * fast threshold. Windows are measured in *fault counts*, not
// wall time — the simulator's clock rate varies wildly across cost models,
// but "the last N faults" means the same thing everywhere. Each window is a
// ring of kWindowBuckets sub-buckets (fixed memory, O(1) update); the rolling
// view spans between (K-1)/K·N and N faults as buckets rotate.
//
// The engine is observational only: it never touches the simulated clock,
// RuntimeStats, or the fault path's control flow. A breach (alert edge)
// returns true from Observe so the runtime can attach an attribution
// snapshot to a flight-recorder dump and record TraceEvent::kSloBreach.
#ifndef DILOS_SRC_TELEMETRY_SLO_H_
#define DILOS_SRC_TELEMETRY_SLO_H_

#include <cstdint>
#include <string>

namespace dilos {

// A tenant's latency objective; inert (no scoring) until both fields are set.
// Lives here — not in src/tenant — so the dependency stays tenant → telemetry.
struct SloObjective {
  double percentile = 0.0;    // Target percentile, e.g. 99.0 for p99.
  uint64_t threshold_ns = 0;  // Latency bound the percentile must stay under.

  bool active() const { return percentile > 0.0 && threshold_ns > 0; }
  // Allowed bad fraction (the error budget rate), e.g. 0.01 for p99.
  double allowed() const { return 1.0 - percentile / 100.0; }
};

struct SloConfig {
  bool enabled = false;
  // Window lengths in faults. Defaults follow the issue's sim-scale framing:
  // a fast window of 1M faults (pages quickly on a hard regression) and a
  // slow 32M-fault window (confirms it is sustained). Tests and benches
  // shrink both.
  uint64_t fast_window_faults = 1'000'000;
  uint64_t slow_window_faults = 32'000'000;
  // Burn-rate thresholds; both must be met to fire (multi-window rule).
  double fast_burn_alert = 14.0;
  double slow_burn_alert = 1.0;
  // Hysteresis: an active alert clears when the fast burn falls below
  // clear_ratio * fast_burn_alert.
  double clear_ratio = 0.5;
  // Objective applied to faults on untenanted regions (bucket "-1").
  SloObjective default_objective;
};

class SloEngine {
 public:
  // Mirrors MetricsRegistry / FaultAttribution: bucket 0 = untenanted,
  // 1..16 = tenant ids 0..15.
  static constexpr int kTenantBuckets = 17;
  static constexpr int kWindowBuckets = 8;

  explicit SloEngine(const SloConfig& cfg);

  // Installs/overwrites a tenant's objective (runtime calls this from
  // CreateTenant with TenantSpec::slo). Inactive objectives disable scoring.
  void SetObjective(int tenant, const SloObjective& o);

  // Scores one fault. Returns true exactly when this observation *fired* a
  // breach alert (edge-triggered: the alert was not already active and both
  // window burn rates crossed their thresholds).
  bool Observe(int tenant, uint64_t latency_ns, uint64_t now_ns);

  const SloObjective& objective(int tenant) const { return state_[Bucket(tenant)].obj; }
  bool alert_active(int tenant) const { return state_[Bucket(tenant)].alert_active; }
  uint64_t alerts_fired(int tenant) const { return state_[Bucket(tenant)].alerts; }
  uint64_t faults(int tenant) const { return state_[Bucket(tenant)].total; }
  uint64_t bad_faults(int tenant) const { return state_[Bucket(tenant)].bad; }

  // Burn rate over the fast or slow window: (bad fraction) / allowed.
  double burn_rate(int tenant, bool fast) const;

  // Lifetime error-budget consumption: fraction of the tolerated bad faults
  // already spent (>= 1.0 means the objective is blown over the run).
  double budget_used(int tenant) const;
  bool budget_exhausted(int tenant) const { return budget_used(tenant) >= 1.0; }

  // Text block for flight-recorder breach dumps.
  std::string Report() const;

  // Prometheus rows: dilos_slo_faults_total, dilos_slo_bad_total,
  // dilos_slo_alerts_total, dilos_slo_burn_fast, dilos_slo_burn_slow,
  // dilos_slo_budget_used, dilos_slo_threshold_ns.
  std::string ToProm() const;

 private:
  // Fault-count ring window: cur fills to cap, then rotates (evicting the
  // oldest 1/K of the view). O(1) per observation, fixed memory.
  struct Window {
    uint64_t faults[kWindowBuckets] = {};
    uint64_t bad[kWindowBuckets] = {};
    int cur = 0;
    uint64_t bucket_cap = 1;
    uint64_t rotations = 0;

    void Configure(uint64_t window_faults);
    void Add(bool is_bad);
    double BadFraction() const;
  };

  struct TenantState {
    SloObjective obj;
    Window fast;
    Window slow;
    uint64_t total = 0;
    uint64_t bad = 0;
    bool alert_active = false;
    uint64_t alerts = 0;
    uint64_t last_alert_ns = 0;
  };

  static size_t Bucket(int tenant) {
    return static_cast<size_t>(tenant >= 0 && tenant < kTenantBuckets - 1 ? tenant + 1 : 0);
  }

  SloConfig cfg_;
  TenantState state_[kTenantBuckets];
};

}  // namespace dilos

#endif  // DILOS_SRC_TELEMETRY_SLO_H_
