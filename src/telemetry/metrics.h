// Per-(node, QP-class) fabric metrics registry.
//
// Every RDMA op in this repo funnels through QueuePair::PostSend, and every
// QP is created with the node it connects to and the module it serves
// (fault handler, prefetcher, cleaner, guide, failure-detector probe,
// repair copy). Hooking that one choke point gives op counts, payload
// bytes, timeout counts, and an RTT histogram per (node x class) with zero
// per-call-site edits — the coverage the ROADMAP's load-aware-rebalancing
// item needs ("per-node traffic counters") and the operational view the
// disaggregation surveys call a production prerequisite.
//
// The registry is installed on the Fabric (Fabric::set_metrics) by a
// runtime whose TelemetryConfig enables it; a null registry (the default)
// costs one pointer test per op.
#ifndef DILOS_SRC_TELEMETRY_METRICS_H_
#define DILOS_SRC_TELEMETRY_METRICS_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/telemetry/histogram.h"

namespace dilos {

// Which module a queue pair serves. Mirrors CommChannel (src/dilos/comm.h)
// plus the recovery subsystem's dedicated QPs; kOther covers bare QPs made
// outside the router (baselines, micro-benches).
enum class QpClass : uint8_t {
  kFault = 0,  // Demand-fetch QPs (CommChannel::kFault).
  kPrefetch,   // Prefetcher QPs.
  kCleaner,    // Page-manager write-back / parity / scrub QPs (kManager).
  kGuide,      // App-aware guide subpage-read QPs.
  kProbe,      // Failure-detector heartbeat QPs.
  kRepair,     // Repair-manager copy QPs.
  kOther,      // Unclassified (Fastswap/AIFM baselines, raw bench QPs).
  kCount,
};

inline const char* QpClassName(QpClass c) {
  switch (c) {
    case QpClass::kFault:
      return "fault";
    case QpClass::kPrefetch:
      return "prefetch";
    case QpClass::kCleaner:
      return "cleaner";
    case QpClass::kGuide:
      return "guide";
    case QpClass::kProbe:
      return "probe";
    case QpClass::kRepair:
      return "repair";
    case QpClass::kOther:
      return "other";
    case QpClass::kCount:
      break;
  }
  return "?";
}

// Counters for one (node, class) cell. Bytes count successful ops only (a
// timed-out op moves no payload); the RTT histogram likewise records only
// completed ops so timeout plateaus cannot masquerade as tail latency.
struct QpMetrics {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  uint64_t timeouts = 0;  // Ops completed with kTimeout (crash, drop, partition).
  uint64_t errors = 0;    // Local/remote-access errors (malformed WRs).
  uint64_t retries = 0;   // Runtime-level retry decisions attributed to this cell.
  LogHistogram rtt;       // post -> completion, successful ops, ns.

  uint64_t ops() const { return reads + writes; }
  uint64_t bytes() const { return read_bytes + write_bytes; }

  void Merge(const QpMetrics& o) {
    reads += o.reads;
    writes += o.writes;
    read_bytes += o.read_bytes;
    write_bytes += o.write_bytes;
    timeouts += o.timeouts;
    errors += o.errors;
    retries += o.retries;
    rtt.Merge(o.rtt);
  }
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(int num_nodes)
      : num_nodes_(num_nodes),
        cells_(static_cast<size_t>(num_nodes) * static_cast<size_t>(QpClass::kCount)) {}

  // The PostSend choke-point hook. `ok` — op completed successfully;
  // `timed_out` — RC retransmit exhaustion (the crash/partition signature).
  // `remote_addr` (first remote segment, 0 if none) is only consulted when a
  // tenant lookup is installed, to attribute the op to its owning tenant.
  void OnOp(int node, QpClass cls, bool is_write, uint64_t bytes, uint64_t rtt_ns, bool ok,
            bool timed_out, uint64_t remote_addr = 0) {
    if (node < 0 || node >= num_nodes_) {
      return;
    }
    Apply(&Cell(node, cls), is_write, bytes, rtt_ns, ok, timed_out);
    if (tenant_lookup_) {
      TenantCell& t = TenantCellAt(node, tenant_lookup_(remote_addr));
      Apply(ServesTenant(cls) ? &t.serve : &t.maint, is_write, bytes, rtt_ns, ok,
            timed_out);
    }
  }

  // Runtime-level retry attribution (the choke point sees individual posts,
  // not the retry decision around them).
  void OnRetry(int node, QpClass cls) {
    if (node >= 0 && node < num_nodes_) {
      ++Cell(node, cls).retries;
    }
  }

  const QpMetrics& at(int node, QpClass cls) const {
    return cells_[Index(node, cls)];
  }

  // All classes of one node, merged.
  QpMetrics NodeTotal(int node) const {
    QpMetrics out;
    for (size_t c = 0; c < static_cast<size_t>(QpClass::kCount); ++c) {
      out.Merge(at(node, static_cast<QpClass>(c)));
    }
    return out;
  }

  QpMetrics Total() const {
    QpMetrics out;
    for (int n = 0; n < num_nodes_; ++n) {
      out.Merge(NodeTotal(n));
    }
    return out;
  }

  int num_nodes() const { return num_nodes_; }

  // -- Per-(node, tenant) attribution ----------------------------------------
  //
  // Installing a tenant lookup (address -> tenant id, -1 for untenanted)
  // adds a second cell grid keyed by (node x tenant), split into "serve"
  // (fault/prefetch/guide — what a tenant's application traffic costs each
  // node) and "maint" (cleaner/repair/probe/other). The hotness monitor
  // reads the serve split; ToProm() exposes both.
  static constexpr int kTenantBuckets = 17;  // 16 tenants + the untenanted bucket.

  struct TenantCell {
    QpMetrics serve;
    QpMetrics maint;
  };

  void set_tenant_lookup(std::function<int(uint64_t)> lookup) {
    tenant_lookup_ = std::move(lookup);
    tenant_cells_.assign(
        static_cast<size_t>(num_nodes_) * static_cast<size_t>(kTenantBuckets),
        TenantCell{});
  }
  bool tenant_aware() const { return static_cast<bool>(tenant_lookup_); }

  static bool ServesTenant(QpClass cls) {
    return cls == QpClass::kFault || cls == QpClass::kPrefetch || cls == QpClass::kGuide;
  }

  // `tenant` -1 reads the untenanted bucket. Zero-value cells if no lookup
  // was ever installed.
  const QpMetrics& TenantServe(int node, int tenant) const {
    return TenantCellConst(node, tenant).serve;
  }
  const QpMetrics& TenantMaint(int node, int tenant) const {
    return TenantCellConst(node, tenant).maint;
  }

  void Reset() {
    for (QpMetrics& m : cells_) {
      m = QpMetrics{};
    }
    for (TenantCell& t : tenant_cells_) {
      t = TenantCell{};
    }
  }

  // Prometheus text exposition (counters + RTT quantile summaries).
  // All-zero cells are skipped so small runs stay readable.
  std::string ToProm() const {
    std::string out;
    out += "# HELP dilos_qp_ops_total RDMA ops completed per node, QP class, and opcode.\n";
    out += "# TYPE dilos_qp_ops_total counter\n";
    ForEachActive([&out](int n, QpClass c, const QpMetrics& m) {
      if (m.reads != 0) {
        AppendMetric(&out, "dilos_qp_ops_total", n, c, "op=\"read\"", m.reads);
      }
      if (m.writes != 0) {
        AppendMetric(&out, "dilos_qp_ops_total", n, c, "op=\"write\"", m.writes);
      }
    });
    out += "# HELP dilos_qp_bytes_total Payload bytes moved per node, QP class, and direction.\n";
    out += "# TYPE dilos_qp_bytes_total counter\n";
    ForEachActive([&out](int n, QpClass c, const QpMetrics& m) {
      if (m.read_bytes != 0) {
        AppendMetric(&out, "dilos_qp_bytes_total", n, c, "dir=\"read\"", m.read_bytes);
      }
      if (m.write_bytes != 0) {
        AppendMetric(&out, "dilos_qp_bytes_total", n, c, "dir=\"write\"", m.write_bytes);
      }
    });
    out += "# HELP dilos_qp_timeouts_total Ops that exhausted RC retransmission.\n";
    out += "# TYPE dilos_qp_timeouts_total counter\n";
    ForEachActive([&out](int n, QpClass c, const QpMetrics& m) {
      if (m.timeouts != 0) {
        AppendMetric(&out, "dilos_qp_timeouts_total", n, c, nullptr, m.timeouts);
      }
    });
    out += "# HELP dilos_qp_retries_total Runtime retry decisions per node and QP class.\n";
    out += "# TYPE dilos_qp_retries_total counter\n";
    ForEachActive([&out](int n, QpClass c, const QpMetrics& m) {
      if (m.retries != 0) {
        AppendMetric(&out, "dilos_qp_retries_total", n, c, nullptr, m.retries);
      }
    });
    out += "# HELP dilos_qp_rtt_ns RTT of successful ops, post to completion.\n";
    out += "# TYPE dilos_qp_rtt_ns summary\n";
    ForEachActive([&out](int n, QpClass c, const QpMetrics& m) {
      if (m.rtt.empty()) {
        return;
      }
      static constexpr double kQs[] = {0.5, 0.9, 0.99, 0.999};
      char label[64];
      for (double q : kQs) {
        std::snprintf(label, sizeof(label), "quantile=\"%g\"", q);
        AppendMetric(&out, "dilos_qp_rtt_ns", n, c, label, m.rtt.Percentile(q * 100.0));
      }
      AppendMetric(&out, "dilos_qp_rtt_ns_sum", n, c, nullptr, m.rtt.sum());
      AppendMetric(&out, "dilos_qp_rtt_ns_count", n, c, nullptr, m.rtt.count());
    });
    if (!tenant_cells_.empty()) {
      out += "# HELP dilos_tenant_ops_total Ops per node and tenant (serve vs maint).\n";
      out += "# TYPE dilos_tenant_ops_total counter\n";
      ForEachActiveTenant([&out](int n, int t, const char* path, const QpMetrics& m) {
        AppendTenantMetric(&out, "dilos_tenant_ops_total", n, t, path, m.ops());
      });
      out += "# HELP dilos_tenant_bytes_total Payload bytes per node and tenant.\n";
      out += "# TYPE dilos_tenant_bytes_total counter\n";
      ForEachActiveTenant([&out](int n, int t, const char* path, const QpMetrics& m) {
        AppendTenantMetric(&out, "dilos_tenant_bytes_total", n, t, path, m.bytes());
      });
      out += "# HELP dilos_tenant_timeouts_total Timed-out ops per node and tenant.\n";
      out += "# TYPE dilos_tenant_timeouts_total counter\n";
      ForEachActiveTenant([&out](int n, int t, const char* path, const QpMetrics& m) {
        if (m.timeouts != 0) {
          AppendTenantMetric(&out, "dilos_tenant_timeouts_total", n, t, path, m.timeouts);
        }
      });
    }
    return out;
  }

  // Compact human-readable dump (flight-recorder format): one line per
  // active cell.
  std::string ToString() const {
    std::string out;
    char line[192];
    ForEachActive([&out, &line](int n, QpClass c, const QpMetrics& m) {
      std::snprintf(line, sizeof(line),
                    "  node %d %-8s ops=%llu (r=%llu w=%llu) bytes=%llu timeouts=%llu "
                    "retries=%llu rtt p50=%llu p99=%llu\n",
                    n, QpClassName(c), static_cast<unsigned long long>(m.ops()),
                    static_cast<unsigned long long>(m.reads),
                    static_cast<unsigned long long>(m.writes),
                    static_cast<unsigned long long>(m.bytes()),
                    static_cast<unsigned long long>(m.timeouts),
                    static_cast<unsigned long long>(m.retries),
                    static_cast<unsigned long long>(m.rtt.Percentile(50)),
                    static_cast<unsigned long long>(m.rtt.Percentile(99)));
      out += line;
    });
    return out;
  }

 private:
  size_t Index(int node, QpClass cls) const {
    return static_cast<size_t>(node) * static_cast<size_t>(QpClass::kCount) +
           static_cast<size_t>(cls);
  }
  QpMetrics& Cell(int node, QpClass cls) { return cells_[Index(node, cls)]; }

  static void Apply(QpMetrics* m, bool is_write, uint64_t bytes, uint64_t rtt_ns, bool ok,
                    bool timed_out) {
    if (!ok) {
      if (timed_out) {
        ++m->timeouts;
      } else {
        ++m->errors;
      }
      return;
    }
    if (is_write) {
      ++m->writes;
      m->write_bytes += bytes;
    } else {
      ++m->reads;
      m->read_bytes += bytes;
    }
    m->rtt.Record(rtt_ns);
  }

  // Tenant ids outside [0, kTenantBuckets-2] (unbound addresses, overflow
  // registrations) collapse into bucket 0.
  size_t TenantIndex(int node, int tenant) const {
    int b = tenant >= 0 && tenant < kTenantBuckets - 1 ? tenant + 1 : 0;
    return static_cast<size_t>(node) * static_cast<size_t>(kTenantBuckets) +
           static_cast<size_t>(b);
  }
  TenantCell& TenantCellAt(int node, int tenant) {
    return tenant_cells_[TenantIndex(node, tenant)];
  }
  const TenantCell& TenantCellConst(int node, int tenant) const {
    static const TenantCell kEmpty{};
    if (tenant_cells_.empty() || node < 0 || node >= num_nodes_) {
      return kEmpty;
    }
    return tenant_cells_[TenantIndex(node, tenant)];
  }

  template <typename Fn>
  void ForEachActiveTenant(Fn&& fn) const {
    for (int n = 0; n < num_nodes_; ++n) {
      for (int b = 0; b < kTenantBuckets; ++b) {
        const TenantCell& t = TenantCellConst(n, b - 1);
        if (t.serve.ops() != 0 || t.serve.timeouts != 0) {
          fn(n, b - 1, "serve", t.serve);
        }
        if (t.maint.ops() != 0 || t.maint.timeouts != 0) {
          fn(n, b - 1, "maint", t.maint);
        }
      }
    }
  }

  static void AppendTenantMetric(std::string* out, const char* name, int node, int tenant,
                                 const char* path, uint64_t value) {
    char line[160];
    std::snprintf(line, sizeof(line), "%s{node=\"%d\",tenant=\"%d\",path=\"%s\"} %llu\n",
                  name, node, tenant, path, static_cast<unsigned long long>(value));
    *out += line;
  }

  template <typename Fn>
  void ForEachActive(Fn&& fn) const {
    for (int n = 0; n < num_nodes_; ++n) {
      for (size_t c = 0; c < static_cast<size_t>(QpClass::kCount); ++c) {
        const QpMetrics& m = at(n, static_cast<QpClass>(c));
        if (m.ops() != 0 || m.timeouts != 0 || m.errors != 0 || m.retries != 0) {
          fn(n, static_cast<QpClass>(c), m);
        }
      }
    }
  }

  static void AppendMetric(std::string* out, const char* name, int node, QpClass cls,
                           const char* extra_label, uint64_t value) {
    char line[160];
    std::snprintf(line, sizeof(line), "%s{node=\"%d\",qp=\"%s\"%s%s} %llu\n", name, node,
                  QpClassName(cls), extra_label != nullptr ? "," : "",
                  extra_label != nullptr ? extra_label : "",
                  static_cast<unsigned long long>(value));
    *out += line;
  }

  int num_nodes_;
  std::vector<QpMetrics> cells_;  // [node][class], row-major.
  std::function<int(uint64_t)> tenant_lookup_;  // addr -> tenant; empty = off.
  std::vector<TenantCell> tenant_cells_;        // [node][tenant bucket], row-major.
};

}  // namespace dilos

#endif  // DILOS_SRC_TELEMETRY_METRICS_H_
