// Per-(node, QP-class) fabric metrics registry.
//
// Every RDMA op in this repo funnels through QueuePair::PostSend, and every
// QP is created with the node it connects to and the module it serves
// (fault handler, prefetcher, cleaner, guide, failure-detector probe,
// repair copy). Hooking that one choke point gives op counts, payload
// bytes, timeout counts, and an RTT histogram per (node x class) with zero
// per-call-site edits — the coverage the ROADMAP's load-aware-rebalancing
// item needs ("per-node traffic counters") and the operational view the
// disaggregation surveys call a production prerequisite.
//
// The registry is installed on the Fabric (Fabric::set_metrics) by a
// runtime whose TelemetryConfig enables it; a null registry (the default)
// costs one pointer test per op.
#ifndef DILOS_SRC_TELEMETRY_METRICS_H_
#define DILOS_SRC_TELEMETRY_METRICS_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/telemetry/histogram.h"

namespace dilos {

// Which module a queue pair serves. Mirrors CommChannel (src/dilos/comm.h)
// plus the recovery subsystem's dedicated QPs; kOther covers bare QPs made
// outside the router (baselines, micro-benches).
enum class QpClass : uint8_t {
  kFault = 0,  // Demand-fetch QPs (CommChannel::kFault).
  kPrefetch,   // Prefetcher QPs.
  kCleaner,    // Page-manager write-back / parity / scrub QPs (kManager).
  kGuide,      // App-aware guide subpage-read QPs.
  kProbe,      // Failure-detector heartbeat QPs.
  kRepair,     // Repair-manager copy QPs.
  kOther,      // Unclassified (Fastswap/AIFM baselines, raw bench QPs).
  kCount,
};

inline const char* QpClassName(QpClass c) {
  switch (c) {
    case QpClass::kFault:
      return "fault";
    case QpClass::kPrefetch:
      return "prefetch";
    case QpClass::kCleaner:
      return "cleaner";
    case QpClass::kGuide:
      return "guide";
    case QpClass::kProbe:
      return "probe";
    case QpClass::kRepair:
      return "repair";
    case QpClass::kOther:
      return "other";
    case QpClass::kCount:
      break;
  }
  return "?";
}

// Counters for one (node, class) cell. Bytes count successful ops only (a
// timed-out op moves no payload); the RTT histogram likewise records only
// completed ops so timeout plateaus cannot masquerade as tail latency.
struct QpMetrics {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  uint64_t timeouts = 0;  // Ops completed with kTimeout (crash, drop, partition).
  uint64_t errors = 0;    // Local/remote-access errors (malformed WRs).
  uint64_t retries = 0;   // Runtime-level retry decisions attributed to this cell.
  LogHistogram rtt;       // post -> completion, successful ops, ns.

  uint64_t ops() const { return reads + writes; }
  uint64_t bytes() const { return read_bytes + write_bytes; }

  void Merge(const QpMetrics& o) {
    reads += o.reads;
    writes += o.writes;
    read_bytes += o.read_bytes;
    write_bytes += o.write_bytes;
    timeouts += o.timeouts;
    errors += o.errors;
    retries += o.retries;
    rtt.Merge(o.rtt);
  }
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(int num_nodes)
      : num_nodes_(num_nodes),
        cells_(static_cast<size_t>(num_nodes) * static_cast<size_t>(QpClass::kCount)) {}

  // The PostSend choke-point hook. `ok` — op completed successfully;
  // `timed_out` — RC retransmit exhaustion (the crash/partition signature).
  void OnOp(int node, QpClass cls, bool is_write, uint64_t bytes, uint64_t rtt_ns, bool ok,
            bool timed_out) {
    if (node < 0 || node >= num_nodes_) {
      return;
    }
    QpMetrics& m = Cell(node, cls);
    if (!ok) {
      if (timed_out) {
        ++m.timeouts;
      } else {
        ++m.errors;
      }
      return;
    }
    if (is_write) {
      ++m.writes;
      m.write_bytes += bytes;
    } else {
      ++m.reads;
      m.read_bytes += bytes;
    }
    m.rtt.Record(rtt_ns);
  }

  // Runtime-level retry attribution (the choke point sees individual posts,
  // not the retry decision around them).
  void OnRetry(int node, QpClass cls) {
    if (node >= 0 && node < num_nodes_) {
      ++Cell(node, cls).retries;
    }
  }

  const QpMetrics& at(int node, QpClass cls) const {
    return cells_[Index(node, cls)];
  }

  // All classes of one node, merged.
  QpMetrics NodeTotal(int node) const {
    QpMetrics out;
    for (size_t c = 0; c < static_cast<size_t>(QpClass::kCount); ++c) {
      out.Merge(at(node, static_cast<QpClass>(c)));
    }
    return out;
  }

  QpMetrics Total() const {
    QpMetrics out;
    for (int n = 0; n < num_nodes_; ++n) {
      out.Merge(NodeTotal(n));
    }
    return out;
  }

  int num_nodes() const { return num_nodes_; }

  void Reset() {
    for (QpMetrics& m : cells_) {
      m = QpMetrics{};
    }
  }

  // Prometheus text exposition (counters + RTT quantile summaries).
  // All-zero cells are skipped so small runs stay readable.
  std::string ToProm() const {
    std::string out;
    out += "# HELP dilos_qp_ops_total RDMA ops completed per node, QP class, and opcode.\n";
    out += "# TYPE dilos_qp_ops_total counter\n";
    ForEachActive([&out](int n, QpClass c, const QpMetrics& m) {
      if (m.reads != 0) {
        AppendMetric(&out, "dilos_qp_ops_total", n, c, "op=\"read\"", m.reads);
      }
      if (m.writes != 0) {
        AppendMetric(&out, "dilos_qp_ops_total", n, c, "op=\"write\"", m.writes);
      }
    });
    out += "# HELP dilos_qp_bytes_total Payload bytes moved per node, QP class, and direction.\n";
    out += "# TYPE dilos_qp_bytes_total counter\n";
    ForEachActive([&out](int n, QpClass c, const QpMetrics& m) {
      if (m.read_bytes != 0) {
        AppendMetric(&out, "dilos_qp_bytes_total", n, c, "dir=\"read\"", m.read_bytes);
      }
      if (m.write_bytes != 0) {
        AppendMetric(&out, "dilos_qp_bytes_total", n, c, "dir=\"write\"", m.write_bytes);
      }
    });
    out += "# HELP dilos_qp_timeouts_total Ops that exhausted RC retransmission.\n";
    out += "# TYPE dilos_qp_timeouts_total counter\n";
    ForEachActive([&out](int n, QpClass c, const QpMetrics& m) {
      if (m.timeouts != 0) {
        AppendMetric(&out, "dilos_qp_timeouts_total", n, c, nullptr, m.timeouts);
      }
    });
    out += "# HELP dilos_qp_retries_total Runtime retry decisions per node and QP class.\n";
    out += "# TYPE dilos_qp_retries_total counter\n";
    ForEachActive([&out](int n, QpClass c, const QpMetrics& m) {
      if (m.retries != 0) {
        AppendMetric(&out, "dilos_qp_retries_total", n, c, nullptr, m.retries);
      }
    });
    out += "# HELP dilos_qp_rtt_ns RTT of successful ops, post to completion.\n";
    out += "# TYPE dilos_qp_rtt_ns summary\n";
    ForEachActive([&out](int n, QpClass c, const QpMetrics& m) {
      if (m.rtt.empty()) {
        return;
      }
      static constexpr double kQs[] = {0.5, 0.9, 0.99, 0.999};
      char label[64];
      for (double q : kQs) {
        std::snprintf(label, sizeof(label), "quantile=\"%g\"", q);
        AppendMetric(&out, "dilos_qp_rtt_ns", n, c, label, m.rtt.Percentile(q * 100.0));
      }
      AppendMetric(&out, "dilos_qp_rtt_ns_sum", n, c, nullptr, m.rtt.sum());
      AppendMetric(&out, "dilos_qp_rtt_ns_count", n, c, nullptr, m.rtt.count());
    });
    return out;
  }

  // Compact human-readable dump (flight-recorder format): one line per
  // active cell.
  std::string ToString() const {
    std::string out;
    char line[192];
    ForEachActive([&out, &line](int n, QpClass c, const QpMetrics& m) {
      std::snprintf(line, sizeof(line),
                    "  node %d %-8s ops=%llu (r=%llu w=%llu) bytes=%llu timeouts=%llu "
                    "retries=%llu rtt p50=%llu p99=%llu\n",
                    n, QpClassName(c), static_cast<unsigned long long>(m.ops()),
                    static_cast<unsigned long long>(m.reads),
                    static_cast<unsigned long long>(m.writes),
                    static_cast<unsigned long long>(m.bytes()),
                    static_cast<unsigned long long>(m.timeouts),
                    static_cast<unsigned long long>(m.retries),
                    static_cast<unsigned long long>(m.rtt.Percentile(50)),
                    static_cast<unsigned long long>(m.rtt.Percentile(99)));
      out += line;
    });
    return out;
  }

 private:
  size_t Index(int node, QpClass cls) const {
    return static_cast<size_t>(node) * static_cast<size_t>(QpClass::kCount) +
           static_cast<size_t>(cls);
  }
  QpMetrics& Cell(int node, QpClass cls) { return cells_[Index(node, cls)]; }

  template <typename Fn>
  void ForEachActive(Fn&& fn) const {
    for (int n = 0; n < num_nodes_; ++n) {
      for (size_t c = 0; c < static_cast<size_t>(QpClass::kCount); ++c) {
        const QpMetrics& m = at(n, static_cast<QpClass>(c));
        if (m.ops() != 0 || m.timeouts != 0 || m.errors != 0 || m.retries != 0) {
          fn(n, static_cast<QpClass>(c), m);
        }
      }
    }
  }

  static void AppendMetric(std::string* out, const char* name, int node, QpClass cls,
                           const char* extra_label, uint64_t value) {
    char line[160];
    std::snprintf(line, sizeof(line), "%s{node=\"%d\",qp=\"%s\"%s%s} %llu\n", name, node,
                  QpClassName(cls), extra_label != nullptr ? "," : "",
                  extra_label != nullptr ? extra_label : "",
                  static_cast<unsigned long long>(value));
    *out += line;
  }

  int num_nodes_;
  std::vector<QpMetrics> cells_;  // [node][class], row-major.
};

}  // namespace dilos

#endif  // DILOS_SRC_TELEMETRY_METRICS_H_
