// Generic linked-list prefetch guide — the paper's motivating example
// (Sec. 4.3, Fig. 5): while Page #1 is being fetched, subpage-read just the
// node's `next` pointer (which arrives ahead of the full page) and start
// fetching Page #2 immediately, repeating a few hops ahead of the
// traversal.
//
// Works for any intrusive list: the guide only needs the byte offset of
// the `next` field within a node. The traversal position comes from a hook
// (`OnVisit`), standing in for the ELF-loader function hook of Sec. 5.
#ifndef DILOS_SRC_GUIDES_LIST_GUIDE_H_
#define DILOS_SRC_GUIDES_LIST_GUIDE_H_

#include "src/dilos/guide.h"

namespace dilos {

class ListGuide : public Guide {
 public:
  // `next_offset`: offset of the 8-byte far-address `next` field within a
  // node; `chase_depth`: how many hops to run ahead of the application.
  explicit ListGuide(uint32_t next_offset = 0, uint32_t chase_depth = 4)
      : next_offset_(next_offset), chase_depth_(chase_depth) {}

  // Hook: the application is about to dereference the node at `node_addr`
  // (0 ends the traversal).
  void OnVisit(uint64_t node_addr) {
    current_node_ = node_addr;
    if (ahead_ > 0) {
      --ahead_;  // The traversal consumed one node of the chased window.
    }
  }

  void OnFault(GuideContext& ctx, uint64_t vaddr, bool write) override {
    (void)vaddr;
    (void)write;
    // Resume from the furthest chased node (keeping a pipeline of
    // chase_depth_ nodes in flight ahead of the traversal), or start at the
    // node being visited.
    uint64_t node = ahead_ > 0 ? chase_cursor_ : current_node_;
    if (node == 0) {
      return;
    }
    for (uint32_t hop = ahead_; hop < chase_depth_ && node != 0; ++hop) {
      uint64_t next = 0;
      uint64_t ptr_addr = node + next_offset_;
      // The pointer field must not straddle a page for a single subpage
      // read; split if it does.
      if ((ptr_addr & (kPageSize - 1)) + sizeof(next) <= kPageSize) {
        if (!ctx.ReadResident(ptr_addr, sizeof(next), &next)) {
          ctx.SubpageRead(ptr_addr, sizeof(next), &next);
        }
      } else {
        uint32_t first = static_cast<uint32_t>(kPageSize - (ptr_addr & (kPageSize - 1)));
        uint8_t* raw = reinterpret_cast<uint8_t*>(&next);
        if (!ctx.ReadResident(ptr_addr, first, raw)) {
          ctx.SubpageRead(ptr_addr, first, raw);
        }
        if (!ctx.ReadResident(ptr_addr + first, static_cast<uint32_t>(sizeof(next)) - first,
                              raw + first)) {
          ctx.SubpageRead(ptr_addr + first, static_cast<uint32_t>(sizeof(next)) - first,
                          raw + first);
        }
      }
      if (next == 0) {
        node = 0;
        break;
      }
      ctx.PrefetchPage(next);
      node = next;
      ++hops_;
      ++ahead_;
    }
    chase_cursor_ = node;
  }

  uint64_t hops() const { return hops_; }

 private:
  uint32_t next_offset_;
  uint32_t chase_depth_;
  uint64_t current_node_ = 0;
  uint64_t chase_cursor_ = 0;  // Furthest node reached by the chase.
  uint32_t ahead_ = 0;         // Chased nodes not yet visited.
  uint64_t hops_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_GUIDES_LIST_GUIDE_H_
