// KV scan guide: guided vectored prefetch over B+-tree leaf granules.
//
// The KV service's range scans walk address-sequential leaf pages, and the
// whole walk is known in advance because the tree's search layer is local
// (FarBTree::CollectLeaves). This guide receives that plan via the
// KvScanHooks half, and on each fault during an active scan issues a window
// of page prefetches over the *upcoming* leaves — a vectored batch posted
// while the demand fetch is already in flight, so by the time the scan
// reaches them they are resident or in flight (minor faults) instead of
// fresh demand faults. Same structure as the Redis LRANGE guide (paper
// Sec. 4.1): app-level knowledge of "what comes next" turned into prefetch
// at fault time.
#ifndef DILOS_SRC_GUIDES_KV_GUIDE_H_
#define DILOS_SRC_GUIDES_KV_GUIDE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/dilos/guide.h"
#include "src/kv/hooks.h"

namespace dilos {

class KvScanGuide : public Guide, public KvScanHooks {
 public:
  // `window` — leaves prefetched ahead of the walk position per fault.
  explicit KvScanGuide(uint32_t window = 8) : window_(window) {}

  // KvScanHooks half (installed via KvService::set_scan_hooks).
  void OnScanBegin(const std::vector<uint64_t>& leaf_addrs) override;
  void OnScanEnd() override;
  uint64_t TakePrefetchedPages() override;

  // Guide half (installed via DilosRuntime::set_guide).
  void OnFault(GuideContext& ctx, uint64_t vaddr, bool write) override;

  uint64_t scans_guided() const { return scans_guided_; }
  uint64_t pages_prefetched() const { return pages_prefetched_; }

 private:
  uint32_t window_;
  bool active_ = false;
  std::vector<uint64_t> plan_;  // Leaf pages of the current scan, walk order.
  size_t pos_ = 0;              // Walk progress within plan_.
  uint64_t pending_ = 0;        // Prefetches since the last Take.
  uint64_t scans_guided_ = 0;
  uint64_t pages_prefetched_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_GUIDES_KV_GUIDE_H_
