#include "src/guides/redis_guide.h"

#include "src/rdma/verbs.h"
#include "src/redis/sds.h"
#include "src/redis/ziplist.h"

namespace dilos {

namespace {

uint64_t PageOf(uint64_t vaddr) { return vaddr & ~static_cast<uint64_t>(kPageSize - 1); }

// Prefetches every page overlapping [begin, end).
void PrefetchSpan(GuideContext& ctx, uint64_t begin, uint64_t end, uint32_t max_pages) {
  uint64_t page = PageOf(begin);
  for (uint32_t n = 0; page < end && n < max_pages; page += kPageSize, ++n) {
    ctx.PrefetchPage(page);
  }
}

// Splits a read at page boundaries (guide reads are small; 2 pieces max in
// practice for a 32 B struct straddling pages).
struct NodeStruct {
  uint64_t prev;
  uint64_t next;
  uint64_t zl;
  uint32_t count;
  uint32_t pad;
};

}  // namespace

void RedisGuide::GuideRead(GuideContext& ctx, uint64_t vaddr, uint32_t len, void* dst) {
  if (ctx.ReadResident(vaddr, len, dst)) {
    return;
  }
  ctx.SubpageRead(vaddr, len, dst);
}

void RedisGuide::PrefetchValue(GuideContext& ctx, uint64_t fault_vaddr) {
  // Header first: its subpage arrives ahead of the faulted full page, so
  // the exact page count is known almost immediately (paper Sec. 6.3).
  uint32_t len = 0;
  GuideRead(ctx, current_sds_, sizeof(uint32_t), &len);
  uint64_t value_end = current_sds_ + kSdsHeader + len + 1;
  if (fault_vaddr >= value_end) {
    return;  // Fault past this value (stale hint).
  }
  PrefetchSpan(ctx, PageOf(fault_vaddr) + kPageSize, value_end, max_value_pages_);
  value_prefetches_++;
}

void RedisGuide::ChaseQuicklist(GuideContext& ctx) {
  uint64_t node = current_node_;
  if (node == last_chase_start_ || elems_covered_ >= elems_needed_) {
    return;  // Already chased from here, or the range is fully covered.
  }
  last_chase_start_ = node;
  for (uint32_t depth = 0; depth < chase_depth_ && node != 0; ++depth) {
    // The 32 B node struct may straddle a page boundary; read both halves.
    NodeStruct ns{};
    uint32_t first = static_cast<uint32_t>(
        std::min<uint64_t>(sizeof(NodeStruct), kPageSize - (node & (kPageSize - 1))));
    GuideRead(ctx, node, first, &ns);
    if (first < sizeof(NodeStruct)) {
      GuideRead(ctx, node + first, static_cast<uint32_t>(sizeof(NodeStruct)) - first,
                reinterpret_cast<uint8_t*>(&ns) + first);
    }
    if (ns.zl != 0) {
      // A ziplist (capacity + header) fits one page, so its page can be
      // prefetched the moment the node struct arrives — no extra subpage
      // round trip in the chain.
      PrefetchSpan(ctx, ns.zl, ns.zl + kZiplistHeader + kZiplistCapBytes, 2);
    }
    elems_covered_ += ns.count;
    chases_++;
    if (elems_covered_ >= elems_needed_) {
      break;  // Enough nodes for the requested range; don't waste the wire.
    }
    if (ns.next != 0) {
      ctx.PrefetchPage(ns.next);
    }
    node = ns.next;
  }
}

void RedisGuide::OnFault(GuideContext& ctx, uint64_t vaddr, bool write) {
  (void)write;
  if (traversing_ && current_node_ != 0) {
    ChaseQuicklist(ctx);
    return;
  }
  if (current_sds_ != 0 && vaddr >= current_sds_) {
    PrefetchValue(ctx, vaddr);
  }
}

}  // namespace dilos
