// Guided paging from allocator semantics (paper Sec. 4.4, Fig. 12).
//
// Uses the FarHeap's per-page live-chunk bitmaps to tell the page manager
// which bytes are worth moving. Applicable to any application using the
// ddc allocator — no application semantics needed, only allocator state.
#ifndef DILOS_SRC_GUIDES_ALLOCATOR_GUIDE_H_
#define DILOS_SRC_GUIDES_ALLOCATOR_GUIDE_H_

#include "src/ddc_alloc/far_heap.h"
#include "src/dilos/guide.h"

namespace dilos {

class AllocatorGuide : public Guide {
 public:
  // `max_segs` caps the scatter/gather vector; the paper measured a sharp
  // slowdown past three segments.
  explicit AllocatorGuide(FarHeap& heap, uint32_t max_segs = 3)
      : heap_(&heap), max_segs_(max_segs) {}

  bool LiveSegments(uint64_t page_vaddr, std::vector<PageSegment>* segs) override {
    return heap_->LiveSegments(page_vaddr, segs, max_segs_);
  }

 private:
  FarHeap* heap_;
  uint32_t max_segs_;
};

}  // namespace dilos

#endif  // DILOS_SRC_GUIDES_ALLOCATOR_GUIDE_H_
