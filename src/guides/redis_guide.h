// App-aware Redis guide (paper Sec. 6.3, Figs. 5 and 11).
//
// A single pluggable module providing:
//  * GET prefetching: at the first fault of a value sds, subpage-read the
//    8-byte SDS header (which arrives ahead of the full page), learn the
//    value length, and prefetch exactly the remaining pages.
//  * LRANGE prefetching: chase the quicklist from the node being traversed —
//    subpage-read the 32 B node struct, prefetch its ziplist's pages, hop to
//    the next node, and repeat a few hops ahead of the application.
//  * Optionally, guided paging through the allocator's bitmaps (composes
//    the AllocatorGuide behavior so one guide object serves both roles).
//
// It learns where the application is from RedisHooks — the stand-in for the
// ELF-loader function hooks of Sec. 5 ("no modification of the Redis main
// code").
#ifndef DILOS_SRC_GUIDES_REDIS_GUIDE_H_
#define DILOS_SRC_GUIDES_REDIS_GUIDE_H_

#include "src/ddc_alloc/far_heap.h"
#include "src/dilos/guide.h"
#include "src/redis/hooks.h"

namespace dilos {

class RedisGuide : public Guide, public RedisHooks {
 public:
  // `heap` (optional) additionally enables allocator-guided paging.
  explicit RedisGuide(FarHeap* heap = nullptr, uint32_t chase_depth = 3,
                      uint32_t max_value_pages = 40)
      : heap_(heap), chase_depth_(chase_depth), max_value_pages_(max_value_pages) {}

  // -- RedisHooks ------------------------------------------------------------
  void OnCommandBegin() override {
    current_sds_ = 0;
    current_node_ = 0;
    traversing_ = false;
    last_chase_start_ = 0;
  }
  void OnValueAccessBegin(uint64_t sds_addr) override {
    current_sds_ = sds_addr;
    traversing_ = false;
  }
  void OnListTraverseBegin(uint64_t node_addr, uint32_t count) override {
    current_node_ = node_addr;
    traversing_ = true;
    current_sds_ = 0;
    elems_needed_ = count;
    elems_covered_ = 0;
  }
  void OnListTraverseNode(uint64_t node_addr) override { current_node_ = node_addr; }

  // -- Guide ------------------------------------------------------------------
  void OnFault(GuideContext& ctx, uint64_t vaddr, bool write) override;
  bool LiveSegments(uint64_t page_vaddr, std::vector<PageSegment>* segs) override {
    return heap_ != nullptr && heap_->LiveSegments(page_vaddr, segs, 3);
  }

  uint64_t chases() const { return chases_; }
  uint64_t value_prefetches() const { return value_prefetches_; }

 private:
  void ChaseQuicklist(GuideContext& ctx);
  void PrefetchValue(GuideContext& ctx, uint64_t fault_vaddr);
  // Reads [vaddr, vaddr+len) preferring resident memory, else subpage RDMA.
  // `len` must not cross a page boundary.
  void GuideRead(GuideContext& ctx, uint64_t vaddr, uint32_t len, void* dst);

  FarHeap* heap_;
  uint32_t chase_depth_;
  uint32_t max_value_pages_;

  uint64_t current_sds_ = 0;
  uint64_t current_node_ = 0;
  bool traversing_ = false;
  uint64_t last_chase_start_ = 0;  // Avoid re-chasing the same node.
  uint32_t elems_needed_ = 0;      // Stop chasing once the range is covered.
  uint32_t elems_covered_ = 0;

  uint64_t chases_ = 0;
  uint64_t value_prefetches_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_GUIDES_REDIS_GUIDE_H_
