#include "src/guides/kv_guide.h"

#include <cstddef>

namespace dilos {

namespace {
constexpr uint64_t kPageMask = ~4095ULL;
}

void KvScanGuide::OnScanBegin(const std::vector<uint64_t>& leaf_addrs) {
  plan_ = leaf_addrs;
  pos_ = 0;
  active_ = true;
  ++scans_guided_;
}

void KvScanGuide::OnScanEnd() {
  active_ = false;
  plan_.clear();
  pos_ = 0;
}

uint64_t KvScanGuide::TakePrefetchedPages() {
  uint64_t p = pending_;
  pending_ = 0;
  return p;
}

void KvScanGuide::OnFault(GuideContext& ctx, uint64_t vaddr, bool write) {
  (void)write;
  if (!active_) {
    return;
  }
  // Locate the faulting page in the remaining plan; faults on pages outside
  // the plan (index pages never fault — they are local — but unrelated
  // traffic can interleave) leave the cursor alone.
  uint64_t page = vaddr & kPageMask;
  size_t i = pos_;
  while (i < plan_.size() && (plan_[i] & kPageMask) != page) {
    ++i;
  }
  if (i == plan_.size()) {
    return;
  }
  pos_ = i + 1;
  // Vectored batch: post the next `window_` upcoming leaves while this
  // fault's demand fetch is in flight.
  for (size_t j = pos_; j < plan_.size() && j < pos_ + window_; ++j) {
    if (!ctx.IsResident(plan_[j]) && ctx.PrefetchPage(plan_[j])) {
      ++pending_;
      ++pages_prefetched_;
    }
  }
}

}  // namespace dilos
