// PTE encoding for the unified page table (paper Sec. 4.1, Fig. 4).
//
// PTEs follow the x86-64 hardware layout. DiLOS distinguishes its tags
// with the low ignored/software bits (present, write, user, plus a
// software bit for the compressed tier):
//
//   present=1           -> kLocal    (bits 12.. hold the local frame number)
//   P=0, W=1, U=0       -> kRemote   (bits 12.. hold the remote page number)
//   P=0, W=0, U=1       -> kFetching (bits 12.. hold an in-flight slot id)
//   P=0, W=1, U=1       -> kAction   (bits 12.. hold guide-defined data)
//   P=0, SW3=1          -> kTier     (page lives in the compressed local
//                                     tier; bits 12.. hold the page number)
//   all zero            -> kEmpty    (never-materialized page: zero-fill)
#ifndef DILOS_SRC_PT_PTE_H_
#define DILOS_SRC_PT_PTE_H_

#include <cstdint>

namespace dilos {

using Pte = uint64_t;

inline constexpr Pte kPtePresent = 1ULL << 0;
inline constexpr Pte kPteWrite = 1ULL << 1;
inline constexpr Pte kPteUser = 1ULL << 2;
// Software bit (PWT in hardware, ignored for non-present PTEs): the page's
// content sits compressed in the local tier (src/tier), not remotely.
inline constexpr Pte kPteTier = 1ULL << 3;
inline constexpr Pte kPteAccessed = 1ULL << 5;
inline constexpr Pte kPteDirty = 1ULL << 6;
inline constexpr uint32_t kPtePayloadShift = 12;

enum class PteTag : uint8_t {
  kEmpty,
  kLocal,
  kRemote,
  kFetching,
  kAction,
  kTier,
};

inline PteTag PteTagOf(Pte pte) {
  if (pte & kPtePresent) {
    return PteTag::kLocal;
  }
  if (pte & kPteTier) {
    return PteTag::kTier;
  }
  bool w = (pte & kPteWrite) != 0;
  bool u = (pte & kPteUser) != 0;
  if (w && u) {
    return PteTag::kAction;
  }
  if (w) {
    return PteTag::kRemote;
  }
  if (u) {
    return PteTag::kFetching;
  }
  return PteTag::kEmpty;
}

inline uint64_t PtePayload(Pte pte) { return pte >> kPtePayloadShift; }

inline Pte MakeLocalPte(uint64_t frame, bool writable) {
  return (frame << kPtePayloadShift) | kPtePresent | kPteUser | (writable ? kPteWrite : 0);
}
inline Pte MakeRemotePte(uint64_t remote_page) {
  return (remote_page << kPtePayloadShift) | kPteWrite;
}
inline Pte MakeFetchingPte(uint64_t slot) {
  return (slot << kPtePayloadShift) | kPteUser;
}
inline Pte MakeActionPte(uint64_t data) {
  return (data << kPtePayloadShift) | kPteWrite | kPteUser;
}
inline Pte MakeTierPte(uint64_t remote_page) {
  return (remote_page << kPtePayloadShift) | kPteTier;
}

}  // namespace dilos

#endif  // DILOS_SRC_PT_PTE_H_
