// Software 4-level radix page table with the x86 walk structure
// (9+9+9+9 index bits over VA bits [47:12]). The MMU's role — walking the
// table, setting accessed/dirty bits — is performed in software by the
// runtimes' pin path.
#ifndef DILOS_SRC_PT_PAGE_TABLE_H_
#define DILOS_SRC_PT_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <memory>

#include "src/pt/pte.h"

namespace dilos {

class PageTable {
 public:
  PageTable() = default;
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // Returns the PTE for the page containing `vaddr` (0 if no leaf exists).
  Pte Get(uint64_t vaddr) const;

  // Returns a pointer to the leaf PTE slot, materializing intermediate
  // levels when `create` is true; nullptr if absent and !create.
  Pte* Entry(uint64_t vaddr, bool create);

  void Set(uint64_t vaddr, Pte pte) { *Entry(vaddr, /*create=*/true) = pte; }

  // Number of leaf tables allocated (for memory-footprint assertions).
  size_t leaf_count() const { return leaf_count_; }

 private:
  static constexpr uint32_t kIndexBits = 9;
  static constexpr uint32_t kFanout = 1u << kIndexBits;

  struct L1 {
    std::array<Pte, kFanout> pte{};
  };
  struct L2 {
    std::array<std::unique_ptr<L1>, kFanout> e;
  };
  struct L3 {
    std::array<std::unique_ptr<L2>, kFanout> e;
  };
  struct L4 {
    std::array<std::unique_ptr<L3>, kFanout> e;
  };

  static uint32_t Idx(uint64_t vaddr, uint32_t level) {
    return static_cast<uint32_t>((vaddr >> (12 + kIndexBits * level)) & (kFanout - 1));
  }

  L4 root_;
  size_t leaf_count_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_PT_PAGE_TABLE_H_
