// Local DRAM frame pool of the compute node. The pool's size *is* the local
// cache size knob of every experiment (12.5% / 25% / 50% / 100% of the
// working set).
#ifndef DILOS_SRC_PT_FRAME_POOL_H_
#define DILOS_SRC_PT_FRAME_POOL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/rdma/verbs.h"

namespace dilos {

class FramePool {
 public:
  explicit FramePool(size_t nframes) : mem_(nframes * kPageSize), total_(nframes) {
    free_.reserve(nframes);
    for (size_t i = 0; i < nframes; ++i) {
      free_.push_back(static_cast<uint32_t>(nframes - 1 - i));
    }
  }

  std::optional<uint32_t> Alloc() {
    if (free_.empty()) {
      return std::nullopt;
    }
    uint32_t fid = free_.back();
    free_.pop_back();
    return fid;
  }

  void Free(uint32_t fid) { free_.push_back(fid); }

  uint8_t* Data(uint32_t fid) { return mem_.data() + static_cast<size_t>(fid) * kPageSize; }
  const uint8_t* Data(uint32_t fid) const {
    return mem_.data() + static_cast<size_t>(fid) * kPageSize;
  }
  // Host address of the frame, usable as the local side of an RDMA op.
  uint64_t Addr(uint32_t fid) { return reinterpret_cast<uint64_t>(Data(fid)); }

  size_t free_count() const { return free_.size(); }
  size_t total() const { return total_; }
  size_t used() const { return total_ - free_.size(); }

 private:
  std::vector<uint8_t> mem_;
  size_t total_;
  std::vector<uint32_t> free_;
};

}  // namespace dilos

#endif  // DILOS_SRC_PT_FRAME_POOL_H_
