// PTE hit tracker (paper Sec. 4.3).
//
// DiLOS maps prefetched pages directly into the page table, so the swap
// cache's minor-fault statistics are gone. The hit tracker recovers the
// prefetch hit ratio by scanning the accessed bits of recently prefetched
// PTEs — work that runs inside the fault handler's RDMA wait window.
#ifndef DILOS_SRC_PT_HIT_TRACKER_H_
#define DILOS_SRC_PT_HIT_TRACKER_H_

#include <cstdint>
#include <deque>

#include "src/pt/page_table.h"

namespace dilos {

class HitTracker {
 public:
  explicit HitTracker(size_t window = 256) : window_(window) {}

  // Registers a page that a prefetcher just requested.
  void Observe(uint64_t vaddr) {
    tracked_.push_back(vaddr);
    if (tracked_.size() > window_) {
      tracked_.pop_front();
    }
  }

  // Scans accessed bits of tracked PTEs, folds the result into the moving
  // hit ratio, and clears both the accessed bits and the window.
  void Scan(PageTable& pt) {
    if (tracked_.empty()) {
      return;
    }
    size_t hits = 0;
    for (uint64_t va : tracked_) {
      Pte* e = pt.Entry(va, /*create=*/false);
      if (e != nullptr && (*e & kPtePresent) && (*e & kPteAccessed)) {
        ++hits;
        *e &= ~kPteAccessed;
      }
    }
    double sample = static_cast<double>(hits) / static_cast<double>(tracked_.size());
    hit_ratio_ = hit_ratio_ * (1.0 - kAlpha) + sample * kAlpha;
    ++scans_;
    tracked_.clear();
  }

  double hit_ratio() const { return hit_ratio_; }
  uint64_t scans() const { return scans_; }
  size_t tracked_count() const { return tracked_.size(); }

 private:
  static constexpr double kAlpha = 0.3;

  size_t window_;
  std::deque<uint64_t> tracked_;
  double hit_ratio_ = 1.0;
  uint64_t scans_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_PT_HIT_TRACKER_H_
