#include "src/pt/page_table.h"

namespace dilos {

Pte PageTable::Get(uint64_t vaddr) const {
  const auto& l3 = root_.e[Idx(vaddr, 3)];
  if (!l3) {
    return 0;
  }
  const auto& l2 = l3->e[Idx(vaddr, 2)];
  if (!l2) {
    return 0;
  }
  const auto& l1 = l2->e[Idx(vaddr, 1)];
  if (!l1) {
    return 0;
  }
  return l1->pte[Idx(vaddr, 0)];
}

Pte* PageTable::Entry(uint64_t vaddr, bool create) {
  auto& l3 = root_.e[Idx(vaddr, 3)];
  if (!l3) {
    if (!create) {
      return nullptr;
    }
    l3 = std::make_unique<L3>();
  }
  auto& l2 = l3->e[Idx(vaddr, 2)];
  if (!l2) {
    if (!create) {
      return nullptr;
    }
    l2 = std::make_unique<L2>();
  }
  auto& l1 = l2->e[Idx(vaddr, 1)];
  if (!l1) {
    if (!create) {
      return nullptr;
    }
    l1 = std::make_unique<L1>();
    ++leaf_count_;
  }
  return &l1->pte[Idx(vaddr, 0)];
}

}  // namespace dilos
