#include "src/tier/tier.h"

#include "src/rdma/verbs.h"
#include "src/tier/compress.h"

namespace dilos {

CompressedTier::Admit CompressedTier::AdmitPage(uint64_t page_va, const uint8_t* page,
                                                bool dirty, uint32_t* csize) {
  size_t cap = static_cast<size_t>(cfg_.max_ratio * static_cast<double>(kPageSize));
  if (cap > kPageSize) {
    cap = kPageSize;
  }
  if (scratch_.size() < cap) {
    scratch_.resize(cap);
  }
  size_t n = TierCompress(page, kPageSize, scratch_.data(), cap);
  if (n == 0) {
    return Admit::kIncompressible;
  }
  Drop(page_va);  // Replace any stale entry for the same page.
  Entry e;
  e.h = pool_.Alloc(scratch_.data(), static_cast<uint32_t>(n));
  e.csize = static_cast<uint32_t>(n);
  e.dirty = dirty;
  lru_.push_back(page_va);
  e.lru_it = std::prev(lru_.end());
  entries_.emplace(page_va, e);
  if (csize != nullptr) {
    *csize = e.csize;
  }
  return Admit::kStored;
}

bool CompressedTier::Take(uint64_t page_va, uint8_t* out, bool* was_dirty) {
  auto it = entries_.find(page_va);
  if (it == entries_.end()) {
    return false;
  }
  const Entry& e = it->second;
  if (TierDecompress(pool_.Data(e.h), e.csize, out, kPageSize) != kPageSize) {
    // Corrupt blob: the content is unrecoverable, so keeping the entry
    // would only leak its pool blocks against the capacity budget and fail
    // every later Take()/Read() the same way. Drop it; the caller falls
    // back to the remote copy and accounts the loss.
    pool_.Free(e.h, e.csize);
    lru_.erase(e.lru_it);
    entries_.erase(it);
    return false;
  }
  if (was_dirty != nullptr) {
    *was_dirty = e.dirty;
  }
  pool_.Free(e.h, e.csize);
  lru_.erase(e.lru_it);
  entries_.erase(it);
  return true;
}

bool CompressedTier::Read(uint64_t page_va, uint8_t* out) const {
  auto it = entries_.find(page_va);
  if (it == entries_.end()) {
    return false;
  }
  const Entry& e = it->second;
  return TierDecompress(pool_.Data(e.h), e.csize, out, kPageSize) == kPageSize;
}

void CompressedTier::MarkClean(uint64_t page_va) {
  auto it = entries_.find(page_va);
  if (it != entries_.end()) {
    it->second.dirty = false;
  }
}

void CompressedTier::Drop(uint64_t page_va) {
  auto it = entries_.find(page_va);
  if (it == entries_.end()) {
    return;
  }
  pool_.Free(it->second.h, it->second.csize);
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

bool CompressedTier::Oldest(uint64_t* page_va, bool* dirty) const {
  if (lru_.empty()) {
    return false;
  }
  uint64_t va = lru_.front();
  const Entry& e = entries_.at(va);
  *page_va = va;
  *dirty = e.dirty;
  return true;
}

void CompressedTier::CollectDirty(size_t max, std::vector<uint64_t>* out) const {
  for (uint64_t va : lru_) {
    if (out->size() >= max) {
      return;
    }
    if (entries_.at(va).dirty) {
      out->push_back(va);
    }
  }
}

void CompressedTier::Requeue(uint64_t page_va) {
  auto it = entries_.find(page_va);
  if (it == entries_.end()) {
    return;
  }
  lru_.erase(it->second.lru_it);
  lru_.push_back(page_va);
  it->second.lru_it = std::prev(lru_.end());
}

}  // namespace dilos
