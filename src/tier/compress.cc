#include "src/tier/compress.h"

#include <cstring>

namespace dilos {

namespace {

// Hash of the 4 bytes at `p` into the match table. 8 bits of table is
// plenty for a 4 KB window and keeps the table cache-resident.
inline uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 24;
}

}  // namespace

size_t TierCompress(const uint8_t* src, size_t n, uint8_t* dst, size_t cap) {
  // Match-candidate table: last position whose 4-byte prefix hashed here.
  // n is page-bounded, so 16-bit positions suffice; 0xFFFF marks empty.
  uint16_t table[256];
  std::memset(table, 0xFF, sizeof(table));

  size_t out = 0;
  size_t pos = 0;
  size_t lit_start = 0;  // First byte of the pending literal run.

  auto flush_literals = [&](size_t end) -> bool {
    size_t i = lit_start;
    while (i < end) {
      size_t run = end - i;
      if (run > 128) {
        run = 128;
      }
      if (out + 1 + run > cap) {
        return false;
      }
      dst[out++] = static_cast<uint8_t>(run - 1);
      std::memcpy(dst + out, src + i, run);
      out += run;
      i += run;
    }
    return true;
  };

  while (pos + kTierMinMatch <= n) {
    uint32_t h = Hash4(src + pos);
    size_t cand = table[h];
    table[h] = static_cast<uint16_t>(pos);
    if (cand != 0xFFFF && cand < pos &&
        std::memcmp(src + cand, src + pos, kTierMinMatch) == 0) {
      size_t len = kTierMinMatch;
      size_t max_len = n - pos;
      if (max_len > kTierMaxMatch) {
        max_len = kTierMaxMatch;
      }
      while (len < max_len && src[cand + len] == src[pos + len]) {
        ++len;
      }
      if (!flush_literals(pos)) {
        return 0;
      }
      if (out + 3 > cap) {
        return 0;
      }
      size_t dist = pos - cand;
      dst[out++] = static_cast<uint8_t>(0x80 | (len - kTierMinMatch));
      dst[out++] = static_cast<uint8_t>(dist & 0xFF);
      dst[out++] = static_cast<uint8_t>(dist >> 8);
      // Seed the table inside the match so later runs find nearer sources.
      size_t stop = pos + len;
      for (size_t p = pos + 1; p + kTierMinMatch <= stop && p + kTierMinMatch <= n; ++p) {
        table[Hash4(src + p)] = static_cast<uint16_t>(p);
      }
      pos = stop;
      lit_start = pos;
    } else {
      ++pos;
    }
  }
  if (!flush_literals(n)) {
    return 0;
  }
  return out;
}

size_t TierDecompress(const uint8_t* src, size_t n, uint8_t* dst, size_t dst_cap) {
  size_t in = 0;
  size_t out = 0;
  while (in < n) {
    uint8_t tag = src[in++];
    if ((tag & 0x80) == 0) {
      size_t run = static_cast<size_t>(tag) + 1;
      if (in + run > n || out + run > dst_cap) {
        return 0;
      }
      std::memcpy(dst + out, src + in, run);
      in += run;
      out += run;
    } else {
      if (in + 2 > n) {
        return 0;
      }
      size_t len = static_cast<size_t>(tag & 0x7F) + kTierMinMatch;
      size_t dist = static_cast<size_t>(src[in]) | (static_cast<size_t>(src[in + 1]) << 8);
      in += 2;
      if (dist == 0 || dist > out || out + len > dst_cap) {
        return 0;
      }
      // Byte copy: overlapping matches (dist < len) replicate runs.
      const uint8_t* from = dst + out - dist;
      for (size_t i = 0; i < len; ++i) {
        dst[out + i] = from[i];
      }
      out += len;
    }
  }
  return out;
}

}  // namespace dilos
