// Compressed local cold tier between DRAM and remote memory (zswap/TMO
// style; see the Maruf & Chowdhury and Yelam disaggregation surveys).
//
// Pages the reclaimer's clock evicts are compressed into this in-DRAM pool
// instead of leaving the machine; a later fault on such a page decompresses
// it locally in well under a microsecond instead of paying the RDMA round
// trip. The tier is strictly a *cache* of the local/remote hierarchy:
//
//   * Admission: only full-content pages (guided/action evictions bypass —
//     their live-segment encoding already beats compression) whose
//     compressed size stays at or under max_ratio * kPageSize; pages that
//     don't compress bypass straight to the remote write-back path.
//   * Dirty entries carry a deferred write-back: the page manager's
//     background loop drains them through the same checked write-back
//     (checksums, EC parity RMW, generation tags) the cleaner uses, so
//     redundancy invariants are untouched by the tier.
//   * Eviction: when block_bytes() exceeds the capacity budget, the oldest
//     entry (insertion-order LRU — a fault *removes* its entry, so order is
//     recency of admission) is pushed remotely by the page manager. A dirty
//     entry must complete its write-back before it may be dropped — the
//     tier is never the only copy of durable content.
//
// CompressedTier owns storage and policy only; PTE transitions, write-backs,
// and fault-path decompression charging live in PageManager/DilosRuntime.
#ifndef DILOS_SRC_TIER_TIER_H_
#define DILOS_SRC_TIER_TIER_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/tier/comp_pool.h"

namespace dilos {

struct TierConfig {
  bool enabled = false;
  // Budget for compressed blocks (class-rounded bytes); the page manager
  // trims back under it after each admission.
  uint64_t capacity_bytes = 32ULL << 20;
  // Admission ratio: a page is tier-worthy only if its compressed size is
  // <= max_ratio * kPageSize; anything denser bypasses to RDMA write-back
  // (storing near-incompressible pages would burn DRAM for no capacity win).
  double max_ratio = 0.7;
  // Dirty tier entries drained (written back remotely) per background tick.
  size_t clean_batch = 8;
};

class CompressedTier {
 public:
  enum class Admit : uint8_t {
    kStored,          // Compressed and admitted.
    kIncompressible,  // Over the max_ratio budget; caller writes back remotely.
  };

  explicit CompressedTier(const TierConfig& cfg) : cfg_(cfg) {}

  const TierConfig& config() const { return cfg_; }

  // Compresses `page` (kPageSize bytes) and stores it keyed by `page_va`.
  // `dirty` marks a deferred write-back. On kStored, *csize receives the
  // compressed size. Admitting an already-present page replaces it.
  Admit AdmitPage(uint64_t page_va, const uint8_t* page, bool dirty, uint32_t* csize);

  bool Contains(uint64_t page_va) const { return entries_.count(page_va) != 0; }

  // Decompresses the entry into `out` (kPageSize bytes) and removes it —
  // the fault path's exclusive promotion back to DRAM. `*was_dirty` reports
  // the deferred-write-back flag. False if absent, or if the blob fails to
  // decompress (in-DRAM rot) — in that case the entry is dropped too, so a
  // corrupt blob neither leaks pool blocks nor fails every later call.
  bool Take(uint64_t page_va, uint8_t* out, bool* was_dirty);

  // Decompresses without removing (write-back drains read through this).
  // False on a corrupt blob; the entry is left for the caller to drop.
  bool Read(uint64_t page_va, uint8_t* out) const;

  // Read-only view of the stored compressed blob (debug/introspection);
  // null when absent. Valid until the entry is removed.
  const uint8_t* BlobData(uint64_t page_va, uint32_t* csize) const {
    auto it = entries_.find(page_va);
    if (it == entries_.end()) {
      return nullptr;
    }
    if (csize != nullptr) {
      *csize = it->second.csize;
    }
    return pool_.Data(it->second.h);
  }

  void MarkClean(uint64_t page_va);

  // Invalidates without content recovery (FreeRegion).
  void Drop(uint64_t page_va);

  // Oldest entry by admission order; false when empty.
  bool Oldest(uint64_t* page_va, bool* dirty) const;

  // Appends up to `max` dirty page VAs, oldest first (cleaner batch).
  void CollectDirty(size_t max, std::vector<uint64_t>* out) const;

  bool OverCapacity() const { return pool_.block_bytes() > cfg_.capacity_bytes; }

  // Moves an entry to the back of the eviction order (a failed write-back
  // defers its eviction rather than spinning on it).
  void Requeue(uint64_t page_va);

  size_t stored_pages() const { return entries_.size(); }
  uint64_t payload_bytes() const { return pool_.payload_bytes(); }
  uint64_t block_bytes() const { return pool_.block_bytes(); }

 private:
  struct Entry {
    CompHandle h;
    uint32_t csize = 0;
    bool dirty = false;
    std::list<uint64_t>::iterator lru_it;
  };

  TierConfig cfg_;
  CompPool pool_;
  std::list<uint64_t> lru_;  // Front = oldest admission.
  std::unordered_map<uint64_t, Entry> entries_;
  std::vector<uint8_t> scratch_;  // Compression output buffer.
};

}  // namespace dilos

#endif  // DILOS_SRC_TIER_TIER_H_
