// Slab-style frame pool for variable-size compressed pages (zbud/zsmalloc
// analog).
//
// Compressed blobs are rounded up to a size class (multiples of
// kTierClassStep) and stored in fixed-size slabs dedicated to one class
// each, so the pool never external-fragments: freeing a blob returns its
// block to the slab's free list, and a fully-free slab is recycled for any
// class. The capacity knob is *soft* — Alloc always succeeds — because the
// eviction machinery that makes room lives a layer up (the tier must write
// dirty victims back remotely before dropping them); callers watch
// block_bytes() against their budget and trim.
#ifndef DILOS_SRC_TIER_COMP_POOL_H_
#define DILOS_SRC_TIER_COMP_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace dilos {

inline constexpr uint32_t kTierClassStep = 256;       // Size-class granularity.
inline constexpr uint32_t kTierSlabBytes = 64 << 10;  // One slab = 64 KB.

// Handle to a stored blob: slab index + block index within it. Valid until
// Free().
struct CompHandle {
  uint32_t slab = UINT32_MAX;
  uint32_t block = 0;

  bool valid() const { return slab != UINT32_MAX; }
};

class CompPool {
 public:
  // Rounds a payload size up to its size class (>= 1 byte, <= kTierSlabBytes).
  static uint32_t ClassOf(uint32_t bytes) {
    uint32_t cls = (bytes + kTierClassStep - 1) / kTierClassStep * kTierClassStep;
    return cls == 0 ? kTierClassStep : cls;
  }

  // Stores `bytes` of `data`, growing a new slab if no block of the class is
  // free. Never fails for payloads <= kTierSlabBytes.
  CompHandle Alloc(const uint8_t* data, uint32_t bytes);

  const uint8_t* Data(CompHandle h) const {
    const Slab& s = slabs_[h.slab];
    return s.mem.get() + static_cast<size_t>(h.block) * s.block_bytes;
  }

  void Free(CompHandle h, uint32_t bytes);

  size_t blob_count() const { return blob_count_; }
  // Payload bytes stored (exact compressed sizes).
  uint64_t payload_bytes() const { return payload_bytes_; }
  // Block bytes committed (class-rounded) — what capacity budgeting sees;
  // the gap to payload_bytes() is internal fragmentation.
  uint64_t block_bytes() const { return block_bytes_; }
  // Slab bytes ever allocated (recycled slabs still count until reused).
  uint64_t slab_bytes() const { return slabs_.size() * uint64_t{kTierSlabBytes}; }

 private:
  struct Slab {
    std::unique_ptr<uint8_t[]> mem;
    uint32_t block_bytes = 0;  // Size class this slab currently serves.
    uint32_t used = 0;         // Live blocks.
    std::vector<uint32_t> free_blocks;
  };

  // slabs with a free block, per class id (class / kTierClassStep - 1).
  std::vector<std::vector<uint32_t>> avail_;
  std::vector<uint32_t> free_slabs_;  // Fully-empty slabs, any class.
  std::vector<Slab> slabs_;
  size_t blob_count_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t block_bytes_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_TIER_COMP_POOL_H_
