#include "src/tier/comp_pool.h"

#include <cstring>

namespace dilos {

CompHandle CompPool::Alloc(const uint8_t* data, uint32_t bytes) {
  uint32_t cls = ClassOf(bytes);
  size_t cid = cls / kTierClassStep - 1;
  if (avail_.size() <= cid) {
    avail_.resize(cid + 1);
  }
  uint32_t slab_idx;
  if (!avail_[cid].empty()) {
    slab_idx = avail_[cid].back();
  } else {
    // Repurpose an empty slab, or grow a new one, for this class.
    if (!free_slabs_.empty()) {
      slab_idx = free_slabs_.back();
      free_slabs_.pop_back();
    } else {
      slab_idx = static_cast<uint32_t>(slabs_.size());
      slabs_.emplace_back();
      slabs_.back().mem = std::make_unique<uint8_t[]>(kTierSlabBytes);
    }
    Slab& s = slabs_[slab_idx];
    s.block_bytes = cls;
    s.used = 0;
    s.free_blocks.clear();
    for (uint32_t b = kTierSlabBytes / cls; b-- > 0;) {
      s.free_blocks.push_back(b);
    }
    avail_[cid].push_back(slab_idx);
  }
  Slab& s = slabs_[slab_idx];
  uint32_t block = s.free_blocks.back();
  s.free_blocks.pop_back();
  ++s.used;
  if (s.free_blocks.empty()) {
    avail_[cid].pop_back();  // Slab full; it re-registers on the next Free.
  }
  std::memcpy(s.mem.get() + static_cast<size_t>(block) * cls, data, bytes);
  ++blob_count_;
  payload_bytes_ += bytes;
  block_bytes_ += cls;
  return CompHandle{slab_idx, block};
}

void CompPool::Free(CompHandle h, uint32_t bytes) {
  Slab& s = slabs_[h.slab];
  uint32_t cls = s.block_bytes;
  size_t cid = cls / kTierClassStep - 1;
  bool was_full = s.free_blocks.empty();
  s.free_blocks.push_back(h.block);
  --s.used;
  --blob_count_;
  payload_bytes_ -= bytes;
  block_bytes_ -= cls;
  if (s.used == 0) {
    // Whole slab drained: recycle it for any class.
    if (!was_full) {
      auto& v = avail_[cid];
      for (size_t i = 0; i < v.size(); ++i) {
        if (v[i] == h.slab) {
          v[i] = v.back();
          v.pop_back();
          break;
        }
      }
    }
    s.free_blocks.clear();
    free_slabs_.push_back(h.slab);
  } else if (was_full) {
    avail_[cid].push_back(h.slab);
  }
}

}  // namespace dilos
