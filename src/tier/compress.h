// Page-oriented LZ-class codec for the compressed local tier.
//
// The tier trades CPU for capacity the way zswap/zbud does: a page evicted
// from DRAM is squeezed through a byte-level LZ77 compressor (greedy
// hash-chain match finder, Snappy/LZ4-class speed under the sim cost model)
// before it is allowed to stay local. The format is self-contained and
// page-bounded — matches never reference bytes outside the page being
// encoded — so a compressed blob decodes with no external state:
//
//   tag byte t:
//     t & 0x80 == 0 -> literal run of (t & 0x7f) + 1 bytes (1..128), the
//                      bytes follow verbatim.
//     t & 0x80 != 0 -> match of (t & 0x7f) + kTierMinMatch bytes (4..131)
//                      at distance d back from the output cursor, d given
//                      by the following 2-byte little-endian offset (>= 1).
//
// Overlapping matches (d < length) are legal and decode byte-by-byte,
// which is what makes runs compress: a zero page encodes to ~100 bytes.
#ifndef DILOS_SRC_TIER_COMPRESS_H_
#define DILOS_SRC_TIER_COMPRESS_H_

#include <cstddef>
#include <cstdint>

namespace dilos {

inline constexpr size_t kTierMinMatch = 4;
inline constexpr size_t kTierMaxMatch = 131;  // 7-bit length field + kTierMinMatch.

// Worst case: every byte a literal costs 1 tag per 128 bytes of payload.
inline constexpr size_t TierCompressBound(size_t n) { return n + n / 128 + 2; }

// Compresses `src[0..n)` into `dst`, returning the compressed size, or 0 if
// the output would exceed `cap` (the caller's admission budget — an
// incompressible page is rejected, not truncated).
size_t TierCompress(const uint8_t* src, size_t n, uint8_t* dst, size_t cap);

// Decompresses `src[0..n)` into `dst[0..dst_cap)`, returning the number of
// bytes produced, or 0 on malformed input (truncated stream, match before
// the start of output, or output overrun). A valid tier blob for a page
// always decodes to exactly kPageSize bytes.
size_t TierDecompress(const uint8_t* src, size_t n, uint8_t* dst, size_t dst_cap);

}  // namespace dilos

#endif  // DILOS_SRC_TIER_COMPRESS_H_
