#include "src/apps/graph.h"

#include <algorithm>
#include <deque>

#include "src/sim/rng.h"

namespace dilos {

namespace {
constexpr uint64_t kEdgeComputeNs = 1;  // Per-edge arithmetic.
}  // namespace

std::vector<std::pair<uint32_t, uint32_t>> FarGraph::Rmat(uint64_t n, uint64_t avg_degree,
                                                          uint64_t seed) {
  // Round n up to a power of two for the recursive quadrant walk.
  uint32_t bits = 0;
  while ((1ULL << bits) < n) {
    ++bits;
  }
  Rng rng(seed);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  uint64_t m = n * avg_degree;
  edges.reserve(m);
  for (uint64_t e = 0; e < m; ++e) {
    uint64_t u = 0;
    uint64_t v = 0;
    for (uint32_t b = 0; b < bits; ++b) {
      double r = rng.NextDouble();
      // Quadrant probabilities a=.57, b=.19, c=.19, d=.05.
      if (r < 0.57) {
        // Top-left: no bits set.
      } else if (r < 0.76) {
        v |= 1ULL << b;
      } else if (r < 0.95) {
        u |= 1ULL << b;
      } else {
        u |= 1ULL << b;
        v |= 1ULL << b;
      }
    }
    if (u < n && v < n && u != v) {
      edges.emplace_back(static_cast<uint32_t>(u), static_cast<uint32_t>(v));
    }
  }
  return edges;
}

FarGraph::FarGraph(FarRuntime& rt, uint64_t n,
                   const std::vector<std::pair<uint32_t, uint32_t>>& edges)
    : rt_(&rt), n_(n), m_(edges.size()) {
  // Build CSR host-side (the loader), then store it in far memory.
  std::vector<uint64_t> degree(n + 1, 0);
  for (const auto& [u, v] : edges) {
    (void)v;
    degree[u + 1]++;
  }
  for (uint64_t i = 1; i <= n; ++i) {
    degree[i] += degree[i - 1];
  }
  std::vector<uint32_t> targets(m_);
  std::vector<uint64_t> cursor(degree.begin(), degree.end() - 1);
  for (const auto& [u, v] : edges) {
    targets[cursor[u]++] = v;
  }

  offsets_ = std::make_unique<FarArray<uint64_t>>(rt, n + 1);
  edges_ = std::make_unique<FarArray<uint32_t>>(rt, m_ == 0 ? 1 : m_);
  for (uint64_t i = 0; i <= n; ++i) {
    offsets_->Set(i, degree[i]);
  }
  for (uint64_t i = 0; i < m_; ++i) {
    edges_->Set(i, targets[i]);
  }
}

uint64_t FarGraph::OutDegree(uint32_t v, int core) {
  return offsets_->Get(v + 1, core) - offsets_->Get(v, core);
}

void FarGraph::Neighbors(uint32_t v, std::vector<uint32_t>* out, int core) {
  uint64_t begin = offsets_->Get(v, core);
  uint64_t end = offsets_->Get(v + 1, core);
  out->clear();
  out->reserve(end - begin);
  for (uint64_t i = begin; i < end; ++i) {
    out->push_back(edges_->Get(i, core));
  }
}

std::vector<std::pair<uint32_t, uint32_t>> FarGraph::Transpose(
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  std::vector<std::pair<uint32_t, uint32_t>> rev;
  rev.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    rev.emplace_back(v, u);
  }
  return rev;
}

std::vector<uint64_t> FarGraph::OutDegrees(
    uint64_t n, const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  std::vector<uint64_t> deg(n, 0);
  for (const auto& [u, v] : edges) {
    (void)v;
    deg[u]++;
  }
  return deg;
}

PageRankResult RunPageRank(FarGraph& in_csr, const std::vector<uint64_t>& out_degree,
                           uint32_t iters, double damping) {
  FarRuntime& rt = in_csr.runtime();
  int cores = rt.num_cores();
  uint64_t n = in_csr.num_vertices();
  uint64_t t0 = rt.clock(0).now();

  FarArray<double> rank(rt, n);
  FarArray<double> next(rt, n);
  std::vector<double> out_deg_inv(n, 0.0);
  for (uint64_t v = 0; v < n; ++v) {
    rank.Set(v, 1.0 / static_cast<double>(n));
    out_deg_inv[v] = out_degree[v] == 0 ? 0.0 : 1.0 / static_cast<double>(out_degree[v]);
  }

  std::vector<uint32_t> nbrs;
  PageRankResult res;
  for (uint32_t it = 0; it < iters; ++it) {
    // Pull phase: each core owns a contiguous vertex range and gathers its
    // in-neighbors' ranks — random reads into the far rank array. Dangling
    // mass is redistributed uniformly (GAPBS semantics).
    double dangling = 0.0;
    for (uint64_t v = 0; v < n; ++v) {
      if (out_deg_inv[v] == 0.0) {
        dangling += rank.Get(v, static_cast<int>(v % static_cast<uint64_t>(cores)));
      }
    }
    double base = (1.0 - damping) / static_cast<double>(n) +
                  damping * dangling / static_cast<double>(n);
    for (int c = 0; c < cores; ++c) {
      uint64_t lo = n * static_cast<uint64_t>(c) / static_cast<uint64_t>(cores);
      uint64_t hi = n * static_cast<uint64_t>(c + 1) / static_cast<uint64_t>(cores);
      Clock& clk = rt.clock(c);
      for (uint64_t v = lo; v < hi; ++v) {
        in_csr.Neighbors(static_cast<uint32_t>(v), &nbrs, c);
        double sum = 0.0;
        for (uint32_t u : nbrs) {
          sum += rank.Get(u, c) * out_deg_inv[u];
        }
        clk.Advance(kEdgeComputeNs * nbrs.size());
        next.Set(v, base + damping * sum, c);
      }
    }
    // Barrier before the rank arrays swap roles.
    uint64_t bar = rt.MaxWorkerTimeNs();
    for (int c = 0; c < cores; ++c) {
      rt.clock(c).AdvanceTo(bar);
    }
    std::swap(rank, next);
    res.iterations = it + 1;
  }

  res.sum = 0.0;
  std::vector<double> all(n);
  for (uint64_t v = 0; v < n; ++v) {
    all[v] = rank.Get(v);
    res.sum += all[v];
  }
  std::partial_sort(all.begin(), all.begin() + static_cast<int64_t>(std::min<uint64_t>(5, n)),
                    all.end(), std::greater<>());
  all.resize(std::min<uint64_t>(5, n));
  res.top_ranks = all;
  res.elapsed_ns = rt.MaxWorkerTimeNs() - t0;
  return res;
}

BcResult RunBetweennessCentrality(FarGraph& g, uint32_t num_sources) {
  FarRuntime& rt = g.runtime();
  int cores = rt.num_cores();
  uint64_t n = g.num_vertices();
  uint64_t t0 = rt.clock(0).now();

  std::vector<double> centrality(n, 0.0);
  Rng rng(99);
  std::vector<uint32_t> nbrs;

  for (uint32_t s_idx = 0; s_idx < num_sources; ++s_idx) {
    int core = static_cast<int>(s_idx % static_cast<uint32_t>(cores));
    Clock& clk = rt.clock(core);
    auto source = static_cast<uint32_t>(rng.NextBelow(n));

    // Brandes: BFS phase.
    std::vector<int64_t> dist(n, -1);
    std::vector<double> sigma(n, 0.0);
    std::vector<uint32_t> order;
    order.reserve(n);
    std::deque<uint32_t> queue;
    dist[source] = 0;
    sigma[source] = 1.0;
    queue.push_back(source);
    while (!queue.empty()) {
      uint32_t v = queue.front();
      queue.pop_front();
      order.push_back(v);
      g.Neighbors(v, &nbrs, core);
      clk.Advance(kEdgeComputeNs * nbrs.size());
      for (uint32_t u : nbrs) {
        if (dist[u] < 0) {
          dist[u] = dist[v] + 1;
          queue.push_back(u);
        }
        if (dist[u] == dist[v] + 1) {
          sigma[u] += sigma[v];
        }
      }
    }
    // Dependency accumulation (reverse order) — the extra indirection layer
    // that makes BC's access pattern more random than PR's.
    std::vector<double> delta(n, 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      uint32_t v = *it;
      g.Neighbors(v, &nbrs, core);
      clk.Advance(kEdgeComputeNs * nbrs.size());
      for (uint32_t u : nbrs) {
        if (dist[u] == dist[v] + 1 && sigma[u] > 0) {
          delta[v] += sigma[v] / sigma[u] * (1.0 + delta[u]);
        }
      }
      if (v != source) {
        centrality[v] += delta[v];
      }
    }
  }

  BcResult res;
  res.sources = num_sources;
  res.max_centrality = n == 0 ? 0.0 : *std::max_element(centrality.begin(), centrality.end());
  res.elapsed_ns = rt.MaxWorkerTimeNs() - t0;
  return res;
}

}  // namespace dilos
