#include "src/apps/dataframe.h"

#include <algorithm>
#include <cmath>

#include "src/sim/rng.h"

namespace dilos {

size_t FarDataFrame::AddF64(const std::string& name) {
  f64_.push_back(std::make_unique<FarArray<double>>(*rt_, rows_));
  meta_.push_back({name, true, f64_.size() - 1});
  return f64_.size() - 1;
}

size_t FarDataFrame::AddI32(const std::string& name) {
  i32_.push_back(std::make_unique<FarArray<int32_t>>(*rt_, rows_));
  meta_.push_back({name, false, i32_.size() - 1});
  return i32_.size() - 1;
}

size_t FarDataFrame::ColumnIndex(const std::string& name) const {
  for (const Meta& m : meta_) {
    if (m.name == name) {
      return m.idx;
    }
  }
  return SIZE_MAX;
}

double FarDataFrame::MeanF64(size_t col) {
  Clock& clk = rt_->clock();
  double sum = 0.0;
  for (uint64_t r = 0; r < rows_; ++r) {
    sum += f64_[col]->Get(r);
  }
  clk.Advance(rows_ * kRowComputeNs);
  return rows_ == 0 ? 0.0 : sum / static_cast<double>(rows_);
}

uint64_t FarDataFrame::CountIfGreater(size_t col, double threshold) {
  Clock& clk = rt_->clock();
  uint64_t count = 0;
  for (uint64_t r = 0; r < rows_; ++r) {
    if (f64_[col]->Get(r) > threshold) {
      ++count;
    }
  }
  clk.Advance(rows_ * kRowComputeNs);
  return count;
}

std::vector<double> FarDataFrame::GroupMean(size_t key_i32, size_t val_f64, uint32_t groups) {
  Clock& clk = rt_->clock();
  std::vector<double> sums(groups, 0.0);
  std::vector<uint64_t> counts(groups, 0);
  for (uint64_t r = 0; r < rows_; ++r) {
    auto k = static_cast<uint32_t>(i32_[key_i32]->Get(r));
    if (k < groups) {
      sums[k] += f64_[val_f64]->Get(r);
      counts[k]++;
    }
  }
  clk.Advance(rows_ * 2 * kRowComputeNs);  // Two column reads per row.
  for (uint32_t g = 0; g < groups; ++g) {
    sums[g] = counts[g] == 0 ? 0.0 : sums[g] / static_cast<double>(counts[g]);
  }
  return sums;
}

double FarDataFrame::Correlation(size_t col_a, size_t col_b) {
  Clock& clk = rt_->clock();
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  for (uint64_t r = 0; r < rows_; ++r) {
    double a = f64_[col_a]->Get(r);
    double b = f64_[col_b]->Get(r);
    sa += a;
    sb += b;
    saa += a * a;
    sbb += b * b;
    sab += a * b;
  }
  clk.Advance(rows_ * 3 * kRowComputeNs);
  auto n = static_cast<double>(rows_);
  double cov = sab - sa * sb / n;
  double va = saa - sa * sa / n;
  double vb = sbb - sb * sb / n;
  return (va <= 0 || vb <= 0) ? 0.0 : cov / std::sqrt(va * vb);
}

void FarDataFrame::DeriveColumn(size_t dst_f64, size_t src_a, size_t src_b) {
  Clock& clk = rt_->clock();
  for (uint64_t r = 0; r < rows_; ++r) {
    double a = f64_[src_a]->Get(r);
    double b = f64_[src_b]->Get(r);
    // Haversine-flavored kernel: trig-heavy per-row math.
    double v = 2.0 * std::asin(std::sqrt(std::abs(std::sin(a / 120.0) * std::sin(b / 90.0))));
    f64_[dst_f64]->Set(r, v);
  }
  clk.Advance(rows_ * 8 * kRowComputeNs);  // Trig is pricier than arithmetic.
}

std::vector<double> FarDataFrame::TopK(size_t col, uint32_t k) {
  Clock& clk = rt_->clock();
  std::vector<double> heap;  // Min-heap of the K largest.
  heap.reserve(k);
  for (uint64_t r = 0; r < rows_; ++r) {
    double v = f64_[col]->Get(r);
    if (heap.size() < k) {
      heap.push_back(v);
      std::push_heap(heap.begin(), heap.end(), std::greater<>());
    } else if (v > heap.front()) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>());
      heap.back() = v;
      std::push_heap(heap.begin(), heap.end(), std::greater<>());
    }
  }
  clk.Advance(rows_ * kRowComputeNs);
  std::sort(heap.begin(), heap.end(), std::greater<>());
  return heap;
}

TaxiColumns GenerateTaxi(FarDataFrame& df, uint64_t seed) {
  TaxiColumns cols;
  cols.hour = df.AddI32("pickup_hour");
  cols.passengers = df.AddI32("passenger_count");
  cols.distance = df.AddF64("trip_distance");
  cols.fare = df.AddF64("fare_amount");
  cols.duration = df.AddF64("trip_duration_min");
  cols.derived = df.AddF64("derived");

  Rng rng(seed);
  for (uint64_t r = 0; r < df.rows(); ++r) {
    // Rush-hour-skewed pickup times.
    int32_t hour = static_cast<int32_t>(rng.NextBelow(24));
    if (rng.NextDouble() < 0.35) {
      hour = static_cast<int32_t>(8 + rng.NextBelow(3) + (rng.NextDouble() < 0.5 ? 9 : 0));
    }
    auto passengers = static_cast<int32_t>(1 + rng.NextBelow(6));
    // Log-normal-ish trip distance, mostly short.
    double u = rng.NextDouble();
    double dist = std::exp(u * 2.7) - 0.9;  // ~0.1 .. ~14 miles.
    double fare = 2.5 + 2.8 * dist + rng.NextDouble() * 3.0;
    double speed = (hour >= 8 && hour <= 18) ? 9.0 : 16.0;  // mph, traffic.
    double duration = dist / speed * 60.0 + rng.NextDouble() * 4.0;

    df.SetI32(cols.hour, r, hour % 24);
    df.SetI32(cols.passengers, r, passengers);
    df.SetF64(cols.distance, r, dist);
    df.SetF64(cols.fare, r, fare);
    df.SetF64(cols.duration, r, duration);
    df.SetF64(cols.derived, r, 0.0);
  }
  return cols;
}

TaxiAnalysisResult RunTaxiAnalysis(FarDataFrame& df, const TaxiColumns& cols) {
  Clock& clk = df.runtime().clock();
  uint64_t t0 = clk.now();
  TaxiAnalysisResult res;
  res.long_trips = df.CountIfGreater(cols.distance, 10.0);
  res.mean_fare = df.MeanF64(cols.fare);
  res.fare_by_passengers = df.GroupMean(cols.passengers, cols.fare, 7);
  res.duration_by_hour = df.GroupMean(cols.hour, cols.duration, 24);
  res.fare_distance_corr = df.Correlation(cols.distance, cols.fare);
  df.DeriveColumn(cols.derived, cols.distance, cols.duration);
  res.top_fares = df.TopK(cols.fare, 10);
  res.elapsed_ns = clk.now() - t0;
  return res;
}

}  // namespace dilos
