#include "src/apps/szip.h"

#include <cstring>

namespace dilos {

namespace {

// Tags: low bit 0 = literal run, 1 = match. Remaining bits via varint.
void PutVarint(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint(const uint8_t*& p, const uint8_t* end, uint32_t* v) {
  uint32_t result = 0;
  int shift = 0;
  while (p < end && shift <= 28) {
    uint8_t b = *p++;
    result |= static_cast<uint32_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 0x9E3779B1u) >> 18;  // 14-bit table.
}

constexpr size_t kHashSize = 1u << 14;
constexpr size_t kMinMatch = 4;

}  // namespace

size_t SzipCompressBlock(const uint8_t* src, size_t n, std::vector<uint8_t>* out) {
  size_t start = out->size();
  // 32-bit positions so inputs of any size work; matches are still limited
  // to a 64 KB back-window (classic LZ77 distance cap).
  std::vector<uint32_t> table(kHashSize, UINT32_MAX);

  size_t i = 0;
  size_t lit_start = 0;
  auto flush_literals = [&](size_t upto) {
    if (upto > lit_start) {
      uint32_t len = static_cast<uint32_t>(upto - lit_start);
      PutVarint(out, len << 1);  // Tag bit 0: literal run.
      out->insert(out->end(), src + lit_start, src + upto);
    }
  };

  while (i + kMinMatch <= n) {
    uint32_t h = Hash4(src + i);
    uint32_t cand32 = table[h];
    table[h] = static_cast<uint32_t>(i);
    size_t cand = cand32;
    if (cand32 != UINT32_MAX && cand < i && i - cand <= 0xFFFF &&
        std::memcmp(src + cand, src + i, kMinMatch) == 0) {
      size_t len = kMinMatch;
      while (i + len < n && src[cand + len] == src[i + len] && len < 0x7FFF) {
        ++len;
      }
      flush_literals(i);
      uint32_t offset = static_cast<uint32_t>(i - cand);
      PutVarint(out, (static_cast<uint32_t>(len) << 1) | 1);  // Tag bit 1: match.
      PutVarint(out, offset);
      i += len;
      lit_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(n);
  return out->size() - start;
}

size_t SzipDecompressBlock(const uint8_t* src, size_t n, std::vector<uint8_t>* out) {
  size_t start = out->size();
  const uint8_t* p = src;
  const uint8_t* end = src + n;
  while (p < end) {
    uint32_t tag;
    if (!GetVarint(p, end, &tag)) {
      return 0;
    }
    if (tag & 1) {  // Match.
      uint32_t len = tag >> 1;
      uint32_t offset;
      if (!GetVarint(p, end, &offset) || offset == 0 || offset > out->size() - start) {
        return 0;
      }
      size_t from = out->size() - offset;
      for (uint32_t k = 0; k < len; ++k) {
        out->push_back((*out)[from + k]);  // Overlapping copies are legal.
      }
    } else {  // Literal run.
      uint32_t len = tag >> 1;
      if (p + len > end) {
        return 0;
      }
      out->insert(out->end(), p, p + len);
      p += len;
    }
  }
  return out->size() - start;
}

SzipResult SzipFar::Compress(uint64_t src, uint64_t len, uint64_t dst) {
  Clock& clk = rt_->clock();
  uint64_t t0 = clk.now();
  SzipResult res;
  res.in_bytes = len;
  std::vector<uint8_t> in_buf(kSzipBlock);
  std::vector<uint8_t> out_buf;
  uint64_t dst_cursor = dst;
  for (uint64_t off = 0; off < len; off += kSzipBlock) {
    uint32_t block = static_cast<uint32_t>(std::min<uint64_t>(kSzipBlock, len - off));
    rt_->ReadBytes(src + off, in_buf.data(), block);
    out_buf.clear();
    SzipCompressBlock(in_buf.data(), block, &out_buf);
    clk.Advance(static_cast<uint64_t>(costs_.compress_ns_per_byte * block));
    uint32_t csize = static_cast<uint32_t>(out_buf.size());
    rt_->Write<uint32_t>(dst_cursor, block);
    rt_->Write<uint32_t>(dst_cursor + 4, csize);
    rt_->WriteBytes(dst_cursor + 8, out_buf.data(), csize);
    dst_cursor += 8 + csize;
  }
  res.out_bytes = dst_cursor - dst;
  res.elapsed_ns = clk.now() - t0;
  return res;
}

SzipResult SzipFar::Decompress(uint64_t src, uint64_t clen, uint64_t dst) {
  Clock& clk = rt_->clock();
  uint64_t t0 = clk.now();
  SzipResult res;
  res.in_bytes = clen;
  std::vector<uint8_t> in_buf;
  std::vector<uint8_t> out_buf;
  uint64_t cursor = src;
  uint64_t dst_cursor = dst;
  while (cursor < src + clen) {
    uint32_t usize = rt_->Read<uint32_t>(cursor);
    uint32_t csize = rt_->Read<uint32_t>(cursor + 4);
    in_buf.resize(csize);
    rt_->ReadBytes(cursor + 8, in_buf.data(), csize);
    out_buf.clear();
    size_t got = SzipDecompressBlock(in_buf.data(), csize, &out_buf);
    if (got != usize) {
      break;  // Corrupt stream; stop (callers verify sizes).
    }
    clk.Advance(static_cast<uint64_t>(costs_.decompress_ns_per_byte * usize));
    rt_->WriteBytes(dst_cursor, out_buf.data(), usize);
    cursor += 8 + csize;
    dst_cursor += usize;
  }
  res.out_bytes = dst_cursor - dst;
  res.elapsed_ns = clk.now() - t0;
  return res;
}

}  // namespace dilos
