// Quicksort over a far-memory integer array (paper Fig. 7(a): std::sort of
// 2048M random ints). Median-of-three partitioning with an explicit stack
// and insertion sort for small ranges — the access pattern (partition scans
// from both ends, recursion localizes) is what the memory system sees from
// std::sort's introsort.
#ifndef DILOS_SRC_APPS_QUICKSORT_H_
#define DILOS_SRC_APPS_QUICKSORT_H_

#include <cstdint>

#include "src/sim/far_runtime.h"

namespace dilos {

// Per-element compute costs charged to the core (documented model: ~1.2 ns
// per comparison, ~2 ns per swap on the paper's 2.3 GHz Xeon).
struct QuicksortCosts {
  uint64_t compare_ns = 1;
  uint64_t swap_ns = 2;
};

class QuicksortWorkload {
 public:
  QuicksortWorkload(FarRuntime& rt, uint64_t count, uint64_t seed = 1);

  // Sorts in place; returns elapsed simulated ns.
  uint64_t Run();

  // Verification helper: true if the array is non-decreasing.
  bool IsSorted();

  FarArray<int32_t>& data() { return data_; }

 private:
  void Sort(int64_t lo, int64_t hi);
  void InsertionSort(int64_t lo, int64_t hi);

  FarRuntime& rt_;
  FarArray<int32_t> data_;
  QuicksortCosts costs_;
};

}  // namespace dilos

#endif  // DILOS_SRC_APPS_QUICKSORT_H_
