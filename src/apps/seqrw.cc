#include "src/apps/seqrw.h"

#include "src/rdma/verbs.h"

namespace dilos {

SeqWorkload::SeqWorkload(FarRuntime& rt, uint64_t bytes) : rt_(rt), bytes_(bytes) {
  region_ = rt_.AllocRegion(bytes_);
  // Populate: the paper's workload first writes the full region.
  for (uint64_t off = 0; off < bytes_; off += kPageSize) {
    rt_.Write<uint64_t>(region_ + off, off);
  }
  rt_.Quiesce();  // Measured sweeps must not inherit parked populate faults.
}

SeqResult SeqWorkload::Sweep(bool write) {
  RuntimeStats& st = rt_.stats();
  uint64_t major0 = st.major_faults;
  uint64_t minor0 = st.minor_faults;
  uint64_t t0 = rt_.clock().now();
  for (uint64_t off = 0; off < bytes_; off += kPageSize) {
    if (write) {
      rt_.Write<uint64_t>(region_ + off, off ^ 0x5A5A);
    } else {
      volatile uint64_t v = rt_.Read<uint64_t>(region_ + off);
      (void)v;
    }
  }
  // Retire in-flight faults before reading the clock: with the pipeline
  // enabled the last few pages may still be awaiting their batched install,
  // and their wire time belongs to this sweep.
  rt_.Quiesce();
  SeqResult r;
  r.elapsed_ns = rt_.clock().now() - t0;
  r.bytes = bytes_;
  r.major_faults = st.major_faults - major0;
  r.minor_faults = st.minor_faults - minor0;
  return r;
}

SeqResult SeqWorkload::Read() { return Sweep(false); }
SeqResult SeqWorkload::Write() { return Sweep(true); }

}  // namespace dilos
