// Pointer-chasing microworkload — the paper's Fig. 5 scenario: a linked
// list whose nodes each sit on a different page, traversed in pointer
// order. History-based prefetchers see noise; the list guide sees the
// future.
#ifndef DILOS_SRC_APPS_LINKED_LIST_H_
#define DILOS_SRC_APPS_LINKED_LIST_H_

#include <cstdint>

#include "src/sim/far_runtime.h"

namespace dilos {

// Node layout in far memory:
//   0:  uint64_t next (far address, 0 = end)
//   8:  uint64_t payload
inline constexpr uint32_t kListNextOffset = 0;
inline constexpr uint32_t kListPayloadOffset = 8;

class LinkedListWorkload {
 public:
  // Builds a list of `n` nodes, one per page, in a pseudo-random page order
  // so consecutive nodes are never on adjacent pages.
  LinkedListWorkload(FarRuntime& rt, uint64_t n, uint64_t seed = 6);

  struct Result {
    uint64_t sum = 0;
    uint64_t nodes = 0;
    uint64_t elapsed_ns = 0;
  };

  // Walks the list, summing payloads. `visit_hook` (if non-null) is called
  // with each node's address before dereferencing it — the attachment point
  // for a ListGuide.
  template <typename VisitHook>
  Result Traverse(VisitHook&& visit_hook) {
    Clock& clk = rt_.clock();
    uint64_t t0 = clk.now();
    Result res;
    uint64_t node = head_;
    while (node != 0) {
      visit_hook(node);
      res.sum += rt_.Read<uint64_t>(node + kListPayloadOffset);
      res.nodes++;
      node = rt_.Read<uint64_t>(node + kListNextOffset);
      clk.Advance(2);  // Loop arithmetic.
    }
    res.elapsed_ns = clk.now() - t0;
    return res;
  }

  Result Traverse() {
    return Traverse([](uint64_t) {});
  }

  uint64_t head() const { return head_; }
  uint64_t expected_sum() const { return expected_sum_; }

 private:
  FarRuntime& rt_;
  uint64_t head_ = 0;
  uint64_t expected_sum_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_APPS_LINKED_LIST_H_
