// Columnar dataframe over far memory (paper Fig. 8: the C++ DataFrame
// library running the NYC taxi trip analysis, ~40 GB working set).
//
// Columns are typed far arrays; operations stream or gather over them,
// charging per-row compute. GenerateTaxi() synthesizes a table with the
// statistical shape of the NYC yellow-cab data (hour-of-day, passenger
// count, distance, fare, duration), and RunTaxiAnalysis() performs the
// notebook's pipeline: filters, group-by aggregations, correlation, a
// derived column, and a top-K selection.
#ifndef DILOS_SRC_APPS_DATAFRAME_H_
#define DILOS_SRC_APPS_DATAFRAME_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/far_runtime.h"

namespace dilos {

class FarDataFrame {
 public:
  FarDataFrame(FarRuntime& rt, uint64_t rows) : rt_(&rt), rows_(rows) {}

  // Column creation (allocates far memory immediately).
  size_t AddF64(const std::string& name);
  size_t AddI32(const std::string& name);
  size_t ColumnIndex(const std::string& name) const;

  void SetF64(size_t col, uint64_t row, double v) { f64_[col]->Set(row, v); }
  double GetF64(size_t col, uint64_t row) const { return f64_[col]->Get(row); }
  void SetI32(size_t col, uint64_t row, int32_t v) { i32_[col]->Set(row, v); }
  int32_t GetI32(size_t col, uint64_t row) const { return i32_[col]->Get(row); }

  uint64_t rows() const { return rows_; }
  FarRuntime& runtime() { return *rt_; }

  // --- Analytics (all charge kRowComputeNs per touched row) ----------------
  double MeanF64(size_t col);
  uint64_t CountIfGreater(size_t col, double threshold);
  // Mean of `val` grouped by the (small-domain, non-negative) int key.
  std::vector<double> GroupMean(size_t key_i32, size_t val_f64, uint32_t groups);
  double Correlation(size_t col_a, size_t col_b);
  // dst[i] = f-like transform of two sources (a haversine-style kernel).
  void DeriveColumn(size_t dst_f64, size_t src_a, size_t src_b);
  // Values of the K largest entries of `col`, descending.
  std::vector<double> TopK(size_t col, uint32_t k);

  static constexpr uint64_t kRowComputeNs = 2;

 private:
  // Parallel name/type bookkeeping; indices into the per-type vectors.
  struct Meta {
    std::string name;
    bool is_f64;
    size_t idx;
  };

  FarRuntime* rt_;
  uint64_t rows_;
  std::vector<Meta> meta_;
  std::vector<std::unique_ptr<FarArray<double>>> f64_;
  std::vector<std::unique_ptr<FarArray<int32_t>>> i32_;
};

// Column indices of the synthetic taxi table.
struct TaxiColumns {
  size_t hour;        // i32 [0, 24)
  size_t passengers;  // i32 [1, 6]
  size_t distance;    // f64 miles
  size_t fare;        // f64 dollars
  size_t duration;    // f64 minutes
  size_t derived;     // f64 scratch output column
};

TaxiColumns GenerateTaxi(FarDataFrame& df, uint64_t seed = 3);

struct TaxiAnalysisResult {
  uint64_t elapsed_ns = 0;
  uint64_t long_trips = 0;
  double mean_fare = 0.0;
  double fare_distance_corr = 0.0;
  std::vector<double> fare_by_passengers;
  std::vector<double> duration_by_hour;
  std::vector<double> top_fares;
};

TaxiAnalysisResult RunTaxiAnalysis(FarDataFrame& df, const TaxiColumns& cols);

}  // namespace dilos

#endif  // DILOS_SRC_APPS_DATAFRAME_H_
