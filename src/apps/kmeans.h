// K-means clustering over far memory (paper Fig. 7(b): scikit-learn k-means
// of 15M integers into 10 clusters). Lloyd's algorithm: the point array
// lives in far memory and is streamed every iteration; centroids are small
// and local. The per-iteration full-sweep with per-point random-ish
// reassignment stresses reclamation exactly as the paper describes.
#ifndef DILOS_SRC_APPS_KMEANS_H_
#define DILOS_SRC_APPS_KMEANS_H_

#include <cstdint>
#include <vector>

#include "src/sim/far_runtime.h"

namespace dilos {

struct KmeansResult {
  uint64_t elapsed_ns = 0;
  uint32_t iterations = 0;
  double inertia = 0.0;  // Sum of squared distances to assigned centroids.
};

class KmeansWorkload {
 public:
  // `n` points of `dims` float32 features, `k` clusters.
  KmeansWorkload(FarRuntime& rt, uint64_t n, uint32_t dims, uint32_t k, uint64_t seed = 2);

  KmeansResult Run(uint32_t max_iters = 10);

  const std::vector<float>& centroids() const { return centroids_; }

 private:
  FarRuntime& rt_;
  uint64_t n_;
  uint32_t dims_;
  uint32_t k_;
  FarArray<float> points_;           // n * dims, row-major.
  FarArray<int32_t> assignments_;    // n labels, also in far memory.
  std::vector<float> centroids_;     // k * dims, local.
  uint64_t flop_ns_ = 1;             // Cost per multiply-add (model).
};

}  // namespace dilos

#endif  // DILOS_SRC_APPS_KMEANS_H_
