#include "src/apps/quicksort.h"

#include <utility>
#include <vector>

#include "src/sim/rng.h"

namespace dilos {

namespace {
constexpr int64_t kInsertionThreshold = 16;
}  // namespace

QuicksortWorkload::QuicksortWorkload(FarRuntime& rt, uint64_t count, uint64_t seed)
    : rt_(rt), data_(rt, count) {
  Rng rng(seed);
  for (uint64_t i = 0; i < count; ++i) {
    data_.Set(i, static_cast<int32_t>(rng.Next()));
  }
}

void QuicksortWorkload::InsertionSort(int64_t lo, int64_t hi) {
  Clock& clk = rt_.clock();
  for (int64_t i = lo + 1; i <= hi; ++i) {
    int32_t key = data_.Get(static_cast<uint64_t>(i));
    int64_t j = i - 1;
    while (j >= lo) {
      int32_t v = data_.Get(static_cast<uint64_t>(j));
      clk.Advance(costs_.compare_ns);
      if (v <= key) {
        break;
      }
      data_.Set(static_cast<uint64_t>(j + 1), v);
      clk.Advance(costs_.swap_ns);
      --j;
    }
    data_.Set(static_cast<uint64_t>(j + 1), key);
  }
}

void QuicksortWorkload::Sort(int64_t lo_in, int64_t hi_in) {
  Clock& clk = rt_.clock();
  std::vector<std::pair<int64_t, int64_t>> stack;
  stack.emplace_back(lo_in, hi_in);
  while (!stack.empty()) {
    auto [lo, hi] = stack.back();
    stack.pop_back();
    while (hi - lo > kInsertionThreshold) {
      // Median-of-three pivot.
      int64_t mid = lo + (hi - lo) / 2;
      int32_t a = data_.Get(static_cast<uint64_t>(lo));
      int32_t b = data_.Get(static_cast<uint64_t>(mid));
      int32_t c = data_.Get(static_cast<uint64_t>(hi));
      clk.Advance(3 * costs_.compare_ns);
      int32_t pivot = std::max(std::min(a, b), std::min(std::max(a, b), c));

      int64_t i = lo;
      int64_t j = hi;
      while (i <= j) {
        int32_t vi;
        while (vi = data_.Get(static_cast<uint64_t>(i)), clk.Advance(costs_.compare_ns),
               vi < pivot) {
          ++i;
        }
        int32_t vj;
        while (vj = data_.Get(static_cast<uint64_t>(j)), clk.Advance(costs_.compare_ns),
               vj > pivot) {
          --j;
        }
        if (i <= j) {
          data_.Set(static_cast<uint64_t>(i), vj);
          data_.Set(static_cast<uint64_t>(j), vi);
          clk.Advance(costs_.swap_ns);
          ++i;
          --j;
        }
      }
      // Recurse into the smaller side; loop on the larger (bounded stack).
      if (j - lo < hi - i) {
        if (lo < j) {
          stack.emplace_back(lo, j);
        }
        lo = i;
      } else {
        if (i < hi) {
          stack.emplace_back(i, hi);
        }
        hi = j;
      }
    }
    if (lo < hi) {
      InsertionSort(lo, hi);
    }
  }
}

uint64_t QuicksortWorkload::Run() {
  uint64_t t0 = rt_.clock().now();
  if (data_.size() > 1) {
    Sort(0, static_cast<int64_t>(data_.size()) - 1);
  }
  return rt_.clock().now() - t0;
}

bool QuicksortWorkload::IsSorted() {
  for (uint64_t i = 1; i < data_.size(); ++i) {
    if (data_.Get(i - 1) > data_.Get(i)) {
      return false;
    }
  }
  return true;
}

}  // namespace dilos
