#include "src/apps/kmeans.h"

#include "src/sim/rng.h"

namespace dilos {

KmeansWorkload::KmeansWorkload(FarRuntime& rt, uint64_t n, uint32_t dims, uint32_t k,
                               uint64_t seed)
    : rt_(rt), n_(n), dims_(dims), k_(k), points_(rt, n * dims), assignments_(rt, n) {
  Rng rng(seed);
  // Points drawn around k latent centers so clustering is meaningful.
  std::vector<float> centers(static_cast<size_t>(k) * dims);
  for (float& c : centers) {
    c = static_cast<float>(rng.NextDouble() * 100.0);
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t c = static_cast<uint32_t>(rng.NextBelow(k));
    for (uint32_t d = 0; d < dims; ++d) {
      float v = centers[static_cast<size_t>(c) * dims + d] +
                static_cast<float>(rng.NextDouble() * 8.0 - 4.0);
      points_.Set(i * dims + d, v);
    }
    assignments_.Set(i, -1);
  }
  // Initialize centroids from the first k points.
  centroids_.resize(static_cast<size_t>(k) * dims);
  for (uint32_t c = 0; c < k; ++c) {
    for (uint32_t d = 0; d < dims; ++d) {
      centroids_[static_cast<size_t>(c) * dims + d] = points_.Get(static_cast<uint64_t>(c) * dims + d);
    }
  }
}

KmeansResult KmeansWorkload::Run(uint32_t max_iters) {
  Clock& clk = rt_.clock();
  uint64_t t0 = clk.now();
  KmeansResult res;
  std::vector<double> sums(static_cast<size_t>(k_) * dims_);
  std::vector<uint64_t> counts(k_);
  std::vector<float> row(dims_);

  for (uint32_t iter = 0; iter < max_iters; ++iter) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    double inertia = 0.0;
    bool changed = false;

    for (uint64_t i = 0; i < n_; ++i) {
      for (uint32_t d = 0; d < dims_; ++d) {
        row[d] = points_.Get(i * dims_ + d);
      }
      double best = 1e300;
      int32_t best_c = 0;
      for (uint32_t c = 0; c < k_; ++c) {
        double dist = 0.0;
        for (uint32_t d = 0; d < dims_; ++d) {
          double diff = static_cast<double>(row[d]) -
                        static_cast<double>(centroids_[static_cast<size_t>(c) * dims_ + d]);
          dist += diff * diff;
        }
        if (dist < best) {
          best = dist;
          best_c = static_cast<int32_t>(c);
        }
      }
      // Distance computation: ~4 multiply-adds per ns with SIMD/BLAS, as in
      // scikit-learn's kernels.
      clk.Advance(flop_ns_ * k_ * dims_ / 4);
      inertia += best;
      if (assignments_.Get(i) != best_c) {
        assignments_.Set(i, best_c);
        changed = true;
      }
      counts[static_cast<size_t>(best_c)]++;
      for (uint32_t d = 0; d < dims_; ++d) {
        sums[static_cast<size_t>(best_c) * dims_ + d] += row[d];
      }
    }

    for (uint32_t c = 0; c < k_; ++c) {
      if (counts[c] == 0) {
        continue;
      }
      for (uint32_t d = 0; d < dims_; ++d) {
        centroids_[static_cast<size_t>(c) * dims_ + d] =
            static_cast<float>(sums[static_cast<size_t>(c) * dims_ + d] /
                               static_cast<double>(counts[c]));
      }
    }
    res.iterations = iter + 1;
    res.inertia = inertia;
    if (!changed) {
      break;
    }
  }
  res.elapsed_ns = clk.now() - t0;
  return res;
}

}  // namespace dilos
