#include "src/apps/linked_list.h"

#include <numeric>
#include <vector>

#include "src/rdma/verbs.h"
#include "src/sim/rng.h"

namespace dilos {

LinkedListWorkload::LinkedListWorkload(FarRuntime& rt, uint64_t n, uint64_t seed) : rt_(rt) {
  uint64_t region = rt_.AllocRegion(n * kPageSize);
  // Fisher-Yates shuffle of page slots: node i lives on page perm[i].
  std::vector<uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(seed);
  for (uint64_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBelow(i)]);
  }
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t node = region + perm[i] * kPageSize;
    uint64_t next = i + 1 < n ? region + perm[i + 1] * kPageSize : 0;
    uint64_t payload = i * 2654435761ULL + 17;
    rt_.Write<uint64_t>(node + kListNextOffset, next);
    rt_.Write<uint64_t>(node + kListPayloadOffset, payload);
    expected_sum_ += payload;
  }
  head_ = n > 0 ? region + perm[0] * kPageSize : 0;
}

}  // namespace dilos
