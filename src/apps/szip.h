// szip: an LZ77 block compressor in the style of Snappy (paper Fig. 7(c/d)
// compresses sixteen 1 GB files and decompresses thirty 0.5 GB files with
// Snappy 1.1.8). Greedy hash-chain matching inside 64 KB blocks, byte-
// oriented tag/varint encoding, no entropy stage — the same design point as
// Snappy: speed over ratio.
//
// The core codec is pure (host buffers); SzipFar streams blocks through a
// FarRuntime, which is where the far-memory traffic comes from.
#ifndef DILOS_SRC_APPS_SZIP_H_
#define DILOS_SRC_APPS_SZIP_H_

#include <cstdint>
#include <vector>

#include "src/sim/far_runtime.h"

namespace dilos {

inline constexpr uint32_t kSzipBlock = 64 * 1024;

// Compresses `n` bytes of `src`, appending to `out`. Returns bytes appended.
size_t SzipCompressBlock(const uint8_t* src, size_t n, std::vector<uint8_t>* out);

// Decompresses a block produced by SzipCompressBlock, appending to `out`.
// Returns bytes appended; 0 on malformed input.
size_t SzipDecompressBlock(const uint8_t* src, size_t n, std::vector<uint8_t>* out);

// Modeled codec speeds (Snappy-era: ~1 GB/s compress, ~2 GB/s decompress
// per core on the paper's Xeon).
struct SzipCosts {
  double compress_ns_per_byte = 1.0;
  double decompress_ns_per_byte = 0.5;
};

struct SzipResult {
  uint64_t in_bytes = 0;
  uint64_t out_bytes = 0;
  uint64_t elapsed_ns = 0;
};

// Streams far-memory data through the codec block by block. The framed
// stream layout is [u32 usize][u32 csize][csize bytes]*.
class SzipFar {
 public:
  explicit SzipFar(FarRuntime& rt, SzipCosts costs = {}) : rt_(&rt), costs_(costs) {}

  // Compresses [src, src+len) into dst; returns sizes and simulated time.
  SzipResult Compress(uint64_t src, uint64_t len, uint64_t dst);
  // Decompresses a framed stream at src (clen bytes) into dst.
  SzipResult Decompress(uint64_t src, uint64_t clen, uint64_t dst);

 private:
  FarRuntime* rt_;
  SzipCosts costs_;
};

}  // namespace dilos

#endif  // DILOS_SRC_APPS_SZIP_H_
