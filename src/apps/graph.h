// Graph processing over far memory (paper Fig. 9: GAPBS PageRank and
// betweenness centrality on the Twitter graph, 4 threads, 17 GB).
//
// The graph is CSR in far memory (offsets + edge targets); rank/score
// arrays are far too. PageRank is the pull variant; BC is Brandes' with
// sampled sources. Multi-threading follows the simulator's model: vertex
// ranges (PR) or sources (BC) are assigned to cores, each charging its own
// clock against the shared fabric; a barrier aligns clocks per iteration.
#ifndef DILOS_SRC_APPS_GRAPH_H_
#define DILOS_SRC_APPS_GRAPH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/far_runtime.h"

namespace dilos {

class FarGraph {
 public:
  // Builds CSR in far memory from an edge list (u -> v), n vertices.
  FarGraph(FarRuntime& rt, uint64_t n, const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  // Synthesizes an R-MAT graph (a=.57 b=.19 c=.19) with ~`avg_degree` * n
  // edges — the standard stand-in for Twitter-like power-law graphs.
  static std::vector<std::pair<uint32_t, uint32_t>> Rmat(uint64_t n, uint64_t avg_degree,
                                                         uint64_t seed = 4);

  // Reverses every edge (for building the in-edge CSR pull PageRank needs).
  static std::vector<std::pair<uint32_t, uint32_t>> Transpose(
      const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  // Out-degree histogram of the *source* endpoints of `edges` (host-side
  // preprocessing, as GAPBS does at load time).
  static std::vector<uint64_t> OutDegrees(
      uint64_t n, const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  uint64_t num_vertices() const { return n_; }
  uint64_t num_edges() const { return m_; }
  uint64_t OutDegree(uint32_t v, int core = 0);
  // Neighbors of v copied into `out` (reads the far edge array).
  void Neighbors(uint32_t v, std::vector<uint32_t>* out, int core = 0);

  FarRuntime& runtime() { return *rt_; }

 private:
  friend struct PageRank;
  FarRuntime* rt_;
  uint64_t n_;
  uint64_t m_;
  std::unique_ptr<FarArray<uint64_t>> offsets_;  // n+1.
  std::unique_ptr<FarArray<uint32_t>> edges_;    // m (in-edges for pull PR).
};

struct PageRankResult {
  uint64_t elapsed_ns = 0;
  uint32_t iterations = 0;
  double sum = 0.0;  // Should stay ~1.0.
  std::vector<double> top_ranks;
};

// Pull-based PageRank: `in_csr` is the in-edge CSR (build from
// Transpose(edges)); `out_degree` the per-vertex out-degrees. Each vertex
// gathers its in-neighbors' ranks — random reads of the far rank array,
// the access pattern that stresses the paging system.
PageRankResult RunPageRank(FarGraph& in_csr, const std::vector<uint64_t>& out_degree,
                           uint32_t iters = 5, double damping = 0.85);

struct BcResult {
  uint64_t elapsed_ns = 0;
  uint32_t sources = 0;
  double max_centrality = 0.0;
};

// Brandes betweenness centrality from `num_sources` sampled sources,
// distributed round-robin across cores.
BcResult RunBetweennessCentrality(FarGraph& g, uint32_t num_sources = 4);

}  // namespace dilos

#endif  // DILOS_SRC_APPS_GRAPH_H_
