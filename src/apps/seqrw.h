// Sequential read/write kernel (paper Sec. 6.1): populate a region, then
// stream over it with 4 KB strides. Drives Table 1, Table 2, Table 3, and
// the Fig. 1/6 latency-breakdown experiments.
#ifndef DILOS_SRC_APPS_SEQRW_H_
#define DILOS_SRC_APPS_SEQRW_H_

#include <cstdint>

#include "src/sim/far_runtime.h"

namespace dilos {

struct SeqResult {
  uint64_t elapsed_ns = 0;
  uint64_t bytes = 0;
  uint64_t major_faults = 0;
  uint64_t minor_faults = 0;

  double GBps() const {
    return elapsed_ns == 0 ? 0.0
                           : static_cast<double>(bytes) / static_cast<double>(elapsed_ns);
  }
};

class SeqWorkload {
 public:
  // Allocates and populates `bytes` of far memory (the working set). With a
  // local cache smaller than the working set, population alone leaves the
  // head of the region evicted, so the measured sweep starts cold.
  SeqWorkload(FarRuntime& rt, uint64_t bytes);

  // Streams the region with 4 KB strides; fault counters are measured over
  // the sweep only.
  SeqResult Read();
  SeqResult Write();

  uint64_t region() const { return region_; }

 private:
  SeqResult Sweep(bool write);

  FarRuntime& rt_;
  uint64_t bytes_;
  uint64_t region_;
};

}  // namespace dilos

#endif  // DILOS_SRC_APPS_SEQRW_H_
