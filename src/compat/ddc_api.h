// The ddc_* compatibility layer (paper Sec. 5 "Compatibility layer").
//
// In DiLOS, applications call ddc_malloc/ddc_free (or have their malloc
// patched to these by the ELF loader) and dereference the returned pointers
// like any heap memory. The simulator has no MMU, so "dereference" is the
// pin/read/write family below — but the lifecycle API is the paper's:
// one process-global LibOS instance, mmap-style regions, and a heap whose
// allocations are transparently disaggregated.
//
// Everything here forwards to a global DilosRuntime configured once by
// ddc_init(). C++ callers wanting multiple runtimes should use DilosRuntime
// directly; this layer exists for the single-instance, drop-in usage the
// paper targets.
#ifndef DILOS_SRC_COMPAT_DDC_API_H_
#define DILOS_SRC_COMPAT_DDC_API_H_

#include <cstddef>
#include <cstdint>

#include "src/ddc_alloc/far_heap.h"
#include "src/dilos/runtime.h"

namespace dilos {

struct DdcOptions {
  uint64_t local_mem_bytes = 64ULL << 20;
  // "readahead" (default), "trend", or "none".
  const char* prefetcher = "readahead";
  int num_cores = 1;
  int memory_nodes = 1;
  int replication = 1;
};

// Boots the global LibOS instance (idempotent: returns false if already
// initialized).
bool ddc_init(const DdcOptions& options = {});
// Tears the instance down (all far addresses become invalid).
void ddc_shutdown();
bool ddc_initialized();

// mmap/munmap of disaggregated regions (MAP_DDC in the paper).
uint64_t ddc_mmap(uint64_t bytes);
void ddc_munmap(uint64_t addr, uint64_t bytes);

// Heap API — the calls the ELF loader patches malloc/free to.
uint64_t ddc_malloc(size_t size);
void ddc_free(uint64_t addr);
size_t ddc_usable_size(uint64_t addr);

// Access (the simulator's stand-in for pointer dereference).
void ddc_read(uint64_t addr, void* dst, size_t len);
void ddc_write(uint64_t addr, const void* src, size_t len);

// Introspection.
DilosRuntime& ddc_runtime();  // Aborts if not initialized.
FarHeap& ddc_heap();
const RuntimeStats& ddc_stats();
uint64_t ddc_now_ns();

}  // namespace dilos

#endif  // DILOS_SRC_COMPAT_DDC_API_H_
