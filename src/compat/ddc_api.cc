#include "src/compat/ddc_api.h"

#include <cstdlib>
#include <cstring>
#include <memory>

#include "src/ddc_alloc/far_heap.h"
#include "src/dilos/readahead.h"
#include "src/dilos/trend.h"

namespace dilos {

namespace {

struct GlobalInstance {
  std::unique_ptr<Fabric> fabric;
  std::unique_ptr<DilosRuntime> runtime;
  std::unique_ptr<FarHeap> heap;
};

GlobalInstance* g_instance = nullptr;

std::unique_ptr<Prefetcher> MakeNamedPrefetcher(const char* name) {
  if (name != nullptr && std::strcmp(name, "none") == 0) {
    return std::make_unique<NullPrefetcher>();
  }
  if (name != nullptr && std::strcmp(name, "trend") == 0) {
    return std::make_unique<TrendPrefetcher>();
  }
  return std::make_unique<ReadaheadPrefetcher>();
}

}  // namespace

bool ddc_init(const DdcOptions& options) {
  if (g_instance != nullptr) {
    return false;
  }
  auto inst = std::make_unique<GlobalInstance>();
  inst->fabric = std::make_unique<Fabric>(CostModel::Default(), options.memory_nodes);
  DilosConfig cfg;
  cfg.local_mem_bytes = options.local_mem_bytes;
  cfg.num_cores = options.num_cores;
  cfg.replication = options.replication;
  inst->runtime = std::make_unique<DilosRuntime>(*inst->fabric, cfg,
                                                 MakeNamedPrefetcher(options.prefetcher));
  inst->heap = std::make_unique<FarHeap>(*inst->runtime);
  g_instance = inst.release();
  return true;
}

void ddc_shutdown() {
  delete g_instance;
  g_instance = nullptr;
}

bool ddc_initialized() { return g_instance != nullptr; }

DilosRuntime& ddc_runtime() {
  if (g_instance == nullptr) {
    std::abort();  // Programming error: ddc_init() was never called.
  }
  return *g_instance->runtime;
}

FarHeap& ddc_heap() {
  if (g_instance == nullptr) {
    std::abort();
  }
  return *g_instance->heap;
}

uint64_t ddc_mmap(uint64_t bytes) { return ddc_runtime().AllocRegion(bytes); }

void ddc_munmap(uint64_t addr, uint64_t bytes) { ddc_runtime().FreeRegion(addr, bytes); }

uint64_t ddc_malloc(size_t size) { return ddc_heap().Malloc(size); }

void ddc_free(uint64_t addr) { ddc_heap().Free(addr); }

size_t ddc_usable_size(uint64_t addr) { return ddc_heap().UsableSize(addr); }

void ddc_read(uint64_t addr, void* dst, size_t len) { ddc_runtime().ReadBytes(addr, dst, len); }

void ddc_write(uint64_t addr, const void* src, size_t len) {
  ddc_runtime().WriteBytes(addr, src, len);
}

const RuntimeStats& ddc_stats() { return ddc_runtime().stats(); }

uint64_t ddc_now_ns() { return ddc_runtime().clock().now(); }

}  // namespace dilos
