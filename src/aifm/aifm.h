// AIFM baseline (Ruan et al., OSDI '20), modeled with the three properties
// the paper's comparison hinges on (Sec. 2, 6.2):
//
//  1. Object granularity: a remote miss fetches exactly the object's bytes
//     (no 4 KB amplification), over TCP (the emulation delay of Sec. 6.2's
//     footnote 2 applies to every fetch).
//  2. Dereference checks: every access to a remoteable pointer runs extra
//     instructions to test local/remote — cheap, but it never goes away, so
//     AIFM trails paging systems when everything fits in local memory.
//  3. Pauseless, multi-threaded runtime: its streaming prefetcher and
//     evacuator run on background threads, giving near-perfect overlap of
//     compute and network for sequential scans; the application core is
//     never charged for evacuation.
//
// Unlike DiLOS/Fastswap, this is a *library* interface: applications must be
// ported to allocate and dereference AifmObject handles — exactly the
// compatibility cost the paper argues against.
#ifndef DILOS_SRC_AIFM_AIFM_H_
#define DILOS_SRC_AIFM_AIFM_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/memnode/fabric.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/stats.h"

namespace dilos {

using ObjId = uint64_t;

struct AifmConfig {
  uint64_t local_mem_bytes = 64ULL << 20;
  uint64_t deref_check_ns = 4;   // Per-dereference local/remote test.
  size_t prefetch_depth = 16;    // Streaming prefetcher look-ahead (objects).
  bool tcp = true;               // AIFM's data path is TCP-based.
};

class AifmRuntime {
 public:
  AifmRuntime(Fabric& fabric, AifmConfig cfg);

  // Allocates a remoteable object of `size` bytes (zeroed).
  ObjId Allocate(uint64_t size);
  void FreeObj(ObjId id);

  // Dereferences the object: charges the check, fetches if remote (waiting
  // for arrival), marks hot, returns host bytes valid until the next call.
  uint8_t* Deref(ObjId id, bool write);

  // Typed helpers.
  template <typename T>
  T Read(ObjId id, uint64_t offset = 0) {
    return *reinterpret_cast<T*>(Deref(id, false) + offset);
  }
  template <typename T>
  void Write(ObjId id, const T& v, uint64_t offset = 0) {
    *reinterpret_cast<T*>(Deref(id, true) + offset) = v;
  }

  uint64_t ObjSize(ObjId id) const { return objects_[id].size; }

  Clock& clock() { return clock_; }
  RuntimeStats& stats() { return stats_; }
  uint64_t local_bytes() const { return local_bytes_; }

 private:
  struct Object {
    uint64_t far_addr = 0;
    uint32_t size = 0;
    bool local = false;
    bool hot = false;
    bool dirty = false;
    bool freed = false;
    bool prefetched = false;  // In the stream window, not yet consumed.
    uint64_t arrival_ns = 0;  // When in-flight bytes land (0 = settled).
    std::unique_ptr<uint8_t[]> data;
  };

  // Posts a (possibly page-spanning) read/write of the object's far bytes.
  uint64_t PostObjectIo(Object& obj, bool is_write, uint64_t issue_ns);
  void FetchObject(ObjId id);
  void MaybeStreamPrefetch(ObjId id);
  // Evacuates cold objects until under budget; never evicts `pinned` (the
  // object the application is currently dereferencing).
  void EvacuateIfNeeded(ObjId pinned);

  Fabric& fabric_;
  AifmConfig cfg_;
  CostModel cost_;
  QueuePair* qp_;
  Clock clock_;
  RuntimeStats stats_;

  std::vector<Object> objects_;
  std::deque<ObjId> resident_;  // Evacuation clock order.
  uint64_t local_bytes_ = 0;
  uint64_t far_cursor_ = kFarBase;
  uint64_t wr_id_ = 0;

  // Streaming detector state.
  ObjId last_id_ = UINT64_MAX;
  uint32_t streak_ = 0;
  uint64_t prefetch_window_bytes_ = 0;  // Unconsumed prefetched bytes.
};

}  // namespace dilos

#endif  // DILOS_SRC_AIFM_AIFM_H_
