// AIFM ports of the two workloads the paper compares against AIFM
// (Sec. 6.2): Snappy compression/decompression (Fig. 7c/d) and the
// DataFrame taxi analysis (Fig. 8).
//
// These are "ported" applications in the AIFM sense: the data lives in
// remoteable objects and every access goes through Deref() — the code
// had to change, which is exactly the compatibility cost DiLOS avoids.
#ifndef DILOS_SRC_AIFM_AIFM_APPS_H_
#define DILOS_SRC_AIFM_AIFM_APPS_H_

#include <cstdint>
#include <vector>

#include "src/aifm/aifm.h"
#include "src/apps/szip.h"

namespace dilos {

// --- Snappy (szip) on AIFM ---------------------------------------------------

class AifmSzipWorkload {
 public:
  // Input of `len` bytes, stored as 64 KB chunk objects with mildly
  // compressible content.
  AifmSzipWorkload(AifmRuntime& rt, uint64_t len, uint64_t seed = 5, SzipCosts costs = {});

  SzipResult Compress();
  // Decompresses what Compress() produced; verifies sizes match.
  SzipResult Decompress();

 private:
  AifmRuntime& rt_;
  uint64_t len_;
  SzipCosts costs_;
  std::vector<ObjId> input_;        // 64 KB chunks.
  std::vector<ObjId> compressed_;   // One object per compressed block.
  std::vector<uint32_t> block_usize_;
};

// --- DataFrame taxi analysis on AIFM ------------------------------------------

// A typed column chunked into 4 KB objects.
template <typename T>
class AifmColumn {
 public:
  static constexpr uint64_t kChunkBytes = 4096;
  static constexpr uint64_t kPerChunk = kChunkBytes / sizeof(T);

  AifmColumn(AifmRuntime& rt, uint64_t rows) : rt_(&rt), rows_(rows) {
    uint64_t chunks = (rows + kPerChunk - 1) / kPerChunk;
    chunks_.reserve(chunks);
    for (uint64_t c = 0; c < chunks; ++c) {
      chunks_.push_back(rt.Allocate(kChunkBytes));
    }
  }

  T Get(uint64_t row) {
    return rt_->Read<T>(chunks_[row / kPerChunk], (row % kPerChunk) * sizeof(T));
  }
  void Set(uint64_t row, T v) {
    rt_->Write<T>(chunks_[row / kPerChunk], v, (row % kPerChunk) * sizeof(T));
  }
  uint64_t rows() const { return rows_; }

 private:
  AifmRuntime* rt_;
  uint64_t rows_;
  std::vector<ObjId> chunks_;
};

struct AifmTaxiResult {
  uint64_t elapsed_ns = 0;
  uint64_t long_trips = 0;
  double mean_fare = 0.0;
  double fare_distance_corr = 0.0;
};

class AifmTaxiWorkload {
 public:
  AifmTaxiWorkload(AifmRuntime& rt, uint64_t rows, uint64_t seed = 3);
  AifmTaxiResult Run();

 private:
  AifmRuntime& rt_;
  uint64_t rows_;
  AifmColumn<int32_t> hour_;
  AifmColumn<int32_t> passengers_;
  AifmColumn<double> distance_;
  AifmColumn<double> fare_;
  AifmColumn<double> duration_;
  AifmColumn<double> derived_;
};

}  // namespace dilos

#endif  // DILOS_SRC_AIFM_AIFM_APPS_H_
