#include "src/aifm/aifm.h"

#include <cstring>

namespace dilos {

AifmRuntime::AifmRuntime(Fabric& fabric, AifmConfig cfg)
    : fabric_(fabric), cfg_(cfg), cost_(fabric.cost()), qp_(fabric.CreateQp()) {}

ObjId AifmRuntime::Allocate(uint64_t size) {
  // Zeroing a fresh object costs the same first-touch work the paged
  // systems pay in their zero-fill fault path.
  clock_.Advance(((size + kPageSize - 1) / kPageSize) *
                 (cost_.hw_exception_ns + cost_.zero_fill_ns) / 2);
  Object obj;
  obj.size = static_cast<uint32_t>(size);
  // Far backing is page-aligned per object so remote segments are simple.
  uint64_t npages = (size + kPageSize - 1) / kPageSize;
  obj.far_addr = far_cursor_;
  far_cursor_ += npages * kPageSize;
  obj.local = true;
  obj.dirty = true;  // Content exists only locally until first evacuation.
  obj.data = std::make_unique<uint8_t[]>(size);
  std::memset(obj.data.get(), 0, size);
  local_bytes_ += size;
  objects_.push_back(std::move(obj));
  ObjId id = objects_.size() - 1;
  resident_.push_back(id);
  EvacuateIfNeeded(id);
  return id;
}

void AifmRuntime::FreeObj(ObjId id) {
  Object& obj = objects_[id];
  if (obj.freed) {
    return;
  }
  if (obj.local) {
    local_bytes_ -= obj.size;
    obj.data.reset();
    obj.local = false;
  }
  obj.freed = true;
}

uint64_t AifmRuntime::PostObjectIo(Object& obj, bool is_write, uint64_t issue_ns) {
  WorkRequest wr;
  wr.wr_id = ++wr_id_;
  wr.opcode = is_write ? RdmaOpcode::kWrite : RdmaOpcode::kRead;
  wr.rkey = qp_->remote_rkey();
  uint64_t local = reinterpret_cast<uint64_t>(obj.data.get());
  uint64_t remote = obj.far_addr;
  uint64_t left = obj.size;
  while (left > 0) {
    uint32_t in_page = static_cast<uint32_t>(kPageSize - (remote & (kPageSize - 1)));
    uint32_t chunk = left < in_page ? static_cast<uint32_t>(left) : in_page;
    wr.local.push_back({local, chunk});
    wr.remote.push_back({remote, chunk});
    local += chunk;
    remote += chunk;
    left -= chunk;
  }
  Completion c = qp_->PostSend(wr, issue_ns);
  uint64_t done = c.completion_time_ns;
  if (cfg_.tcp) {
    done += cost_.tcp_delay_ns;
  }
  if (is_write) {
    stats_.bytes_written += obj.size;
  } else {
    stats_.bytes_fetched += obj.size;
  }
  return done;
}

void AifmRuntime::EvacuateIfNeeded(ObjId pinned) {
  // The evacuator runs pauselessly on background threads: the app core pays
  // nothing; write-back traffic still occupies the link.
  size_t guard = resident_.size() * 2 + 1;
  while (local_bytes_ > cfg_.local_mem_bytes && guard-- > 0 && !resident_.empty()) {
    ObjId victim = resident_.front();
    resident_.pop_front();
    Object& obj = objects_[victim];
    if (!obj.local || obj.freed) {
      continue;
    }
    if (victim == pinned) {
      resident_.push_back(victim);
      continue;
    }
    if (obj.hot) {
      obj.hot = false;  // Second chance for recently dereferenced objects.
      resident_.push_back(victim);
      continue;
    }
    if (obj.dirty) {
      PostObjectIo(obj, /*is_write=*/true, clock_.now());
      stats_.writebacks++;
      obj.dirty = false;
    }
    obj.data.reset();
    obj.local = false;
    obj.arrival_ns = 0;
    if (obj.prefetched) {
      obj.prefetched = false;
      prefetch_window_bytes_ -= obj.size;
    }
    local_bytes_ -= obj.size;
    stats_.evictions++;
  }
}

void AifmRuntime::FetchObject(ObjId id) {
  Object& obj = objects_[id];
  obj.data = std::make_unique<uint8_t[]>(obj.size);
  obj.local = true;
  local_bytes_ += obj.size;
  resident_.push_back(id);
  obj.arrival_ns = PostObjectIo(obj, /*is_write=*/false, clock_.now());
  EvacuateIfNeeded(id);
}

void AifmRuntime::MaybeStreamPrefetch(ObjId id) {
  if (last_id_ != UINT64_MAX && id == last_id_ + 1) {
    ++streak_;
  } else if (id != last_id_) {
    streak_ = 0;
  }
  last_id_ = id;
  if (streak_ < 2) {
    return;
  }
  // Background prefetch threads pull the next objects of the stream; issue
  // time is now, arrival is wire-paced. The app core is not charged.
  for (size_t k = 1; k <= cfg_.prefetch_depth; ++k) {
    ObjId next = id + k;
    if (next >= objects_.size()) {
      break;
    }
    Object& obj = objects_[next];
    if (obj.local || obj.freed) {
      continue;
    }
    // Keep the unconsumed stream window bounded to half the local budget so
    // the evacuator never has to eat the window's own tail.
    if (prefetch_window_bytes_ + obj.size > cfg_.local_mem_bytes / 2) {
      break;
    }
    obj.data = std::make_unique<uint8_t[]>(obj.size);
    obj.local = true;
    obj.hot = true;  // Shield the in-flight window from the evacuator.
    obj.prefetched = true;
    prefetch_window_bytes_ += obj.size;
    local_bytes_ += obj.size;
    resident_.push_back(next);
    obj.arrival_ns = PostObjectIo(obj, /*is_write=*/false, clock_.now());
    stats_.prefetch_issued++;
  }
  EvacuateIfNeeded(id);
}

uint8_t* AifmRuntime::Deref(ObjId id, bool write) {
  Object& obj = objects_[id];
  clock_.Advance(cfg_.deref_check_ns + cost_.local_pin_ns);
  obj.hot = true;  // Mark before any evacuation can run.
  MaybeStreamPrefetch(id);
  if (!obj.local) {
    stats_.major_faults++;  // "Miss" in AIFM terms.
    FetchObject(id);
    clock_.AdvanceTo(obj.arrival_ns);
    obj.arrival_ns = 0;
  } else if (obj.arrival_ns != 0) {
    // Prefetched and still in flight.
    stats_.minor_faults++;
    clock_.AdvanceTo(obj.arrival_ns);
    obj.arrival_ns = 0;
  }
  obj.hot = true;
  if (obj.prefetched) {
    obj.prefetched = false;
    prefetch_window_bytes_ -= obj.size;
  }
  if (write) {
    obj.dirty = true;
  }
  return obj.data.get();
}

}  // namespace dilos
