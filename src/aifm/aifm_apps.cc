#include "src/aifm/aifm_apps.h"

#include <cmath>
#include <cstring>

#include "src/sim/rng.h"

namespace dilos {

namespace {
constexpr uint64_t kChunk = 64 * 1024;
}  // namespace

AifmSzipWorkload::AifmSzipWorkload(AifmRuntime& rt, uint64_t len, uint64_t seed,
                                   SzipCosts costs)
    : rt_(rt), len_(len), costs_(costs) {
  Rng rng(seed);
  std::vector<uint8_t> buf(kChunk);
  for (uint64_t off = 0; off < len; off += kChunk) {
    auto n = static_cast<uint32_t>(std::min<uint64_t>(kChunk, len - off));
    for (uint32_t i = 0; i < n; ++i) {
      // Mildly compressible: long runs with occasional noise.
      buf[i] = (i % 97 < 64) ? static_cast<uint8_t>('a' + (off >> 16) % 26)
                             : static_cast<uint8_t>(rng.Next());
    }
    ObjId id = rt_.Allocate(n);
    std::memcpy(rt_.Deref(id, /*write=*/true), buf.data(), n);
    input_.push_back(id);
  }
}

SzipResult AifmSzipWorkload::Compress() {
  Clock& clk = rt_.clock();
  uint64_t t0 = clk.now();
  SzipResult res;
  res.in_bytes = len_;
  compressed_.clear();
  block_usize_.clear();
  std::vector<uint8_t> out;
  const double per_byte = CostModel::Default().local_per_byte_ns;
  for (ObjId id : input_) {
    uint32_t n = static_cast<uint32_t>(rt_.ObjSize(id));
    const uint8_t* src = rt_.Deref(id, /*write=*/false);
    out.clear();
    SzipCompressBlock(src, n, &out);
    // Codec cost plus local memory bandwidth for reading the chunk and
    // writing the output (the paged systems pay this inside Pin).
    clk.Advance(static_cast<uint64_t>((costs_.compress_ns_per_byte + per_byte) * n +
                                      per_byte * static_cast<double>(out.size())));
    ObjId cid = rt_.Allocate(out.size());
    std::memcpy(rt_.Deref(cid, /*write=*/true), out.data(), out.size());
    compressed_.push_back(cid);
    block_usize_.push_back(n);
    res.out_bytes += out.size();
  }
  res.elapsed_ns = clk.now() - t0;
  return res;
}

SzipResult AifmSzipWorkload::Decompress() {
  Clock& clk = rt_.clock();
  uint64_t t0 = clk.now();
  SzipResult res;
  std::vector<uint8_t> out;
  const double per_byte = CostModel::Default().local_per_byte_ns;
  for (size_t b = 0; b < compressed_.size(); ++b) {
    ObjId cid = compressed_[b];
    uint32_t csize = static_cast<uint32_t>(rt_.ObjSize(cid));
    const uint8_t* src = rt_.Deref(cid, /*write=*/false);
    out.clear();
    size_t got = SzipDecompressBlock(src, csize, &out);
    clk.Advance(static_cast<uint64_t>((costs_.decompress_ns_per_byte + per_byte) *
                                          static_cast<double>(got) +
                                      per_byte * csize));
    res.in_bytes += csize;
    res.out_bytes += got;
    if (got != block_usize_[b]) {
      break;  // Corruption; callers check out_bytes.
    }
  }
  res.elapsed_ns = clk.now() - t0;
  return res;
}

AifmTaxiWorkload::AifmTaxiWorkload(AifmRuntime& rt, uint64_t rows, uint64_t seed)
    : rt_(rt),
      rows_(rows),
      hour_(rt, rows),
      passengers_(rt, rows),
      distance_(rt, rows),
      fare_(rt, rows),
      duration_(rt, rows),
      derived_(rt, rows) {
  // Same generator as GenerateTaxi() so results are comparable.
  Rng rng(seed);
  for (uint64_t r = 0; r < rows; ++r) {
    int32_t hour = static_cast<int32_t>(rng.NextBelow(24));
    if (rng.NextDouble() < 0.35) {
      hour = static_cast<int32_t>(8 + rng.NextBelow(3) + (rng.NextDouble() < 0.5 ? 9 : 0));
    }
    auto passengers = static_cast<int32_t>(1 + rng.NextBelow(6));
    double u = rng.NextDouble();
    double dist = std::exp(u * 2.7) - 0.9;
    double fare = 2.5 + 2.8 * dist + rng.NextDouble() * 3.0;
    double speed = (hour >= 8 && hour <= 18) ? 9.0 : 16.0;
    double duration = dist / speed * 60.0 + rng.NextDouble() * 4.0;
    hour_.Set(r, hour % 24);
    passengers_.Set(r, passengers);
    distance_.Set(r, dist);
    fare_.Set(r, fare);
    duration_.Set(r, duration);
    derived_.Set(r, 0.0);
  }
}

AifmTaxiResult AifmTaxiWorkload::Run() {
  Clock& clk = rt_.clock();
  uint64_t t0 = clk.now();
  AifmTaxiResult res;
  constexpr uint64_t kRowComputeNs = 2;

  // CountIfGreater(distance, 10).
  for (uint64_t r = 0; r < rows_; ++r) {
    if (distance_.Get(r) > 10.0) {
      res.long_trips++;
    }
  }
  clk.Advance(rows_ * kRowComputeNs);

  // MeanF64(fare).
  double sum = 0.0;
  for (uint64_t r = 0; r < rows_; ++r) {
    sum += fare_.Get(r);
  }
  clk.Advance(rows_ * kRowComputeNs);
  res.mean_fare = sum / static_cast<double>(rows_);

  // GroupMean(passengers, fare) and GroupMean(hour, duration).
  {
    double sums[7] = {};
    uint64_t counts[7] = {};
    for (uint64_t r = 0; r < rows_; ++r) {
      auto k = static_cast<uint32_t>(passengers_.Get(r));
      if (k < 7) {
        sums[k] += fare_.Get(r);
        counts[k]++;
      }
    }
    clk.Advance(rows_ * 2 * kRowComputeNs);
    (void)sums;
    (void)counts;
  }
  {
    double sums[24] = {};
    uint64_t counts[24] = {};
    for (uint64_t r = 0; r < rows_; ++r) {
      auto k = static_cast<uint32_t>(hour_.Get(r));
      if (k < 24) {
        sums[k] += duration_.Get(r);
        counts[k]++;
      }
    }
    clk.Advance(rows_ * 2 * kRowComputeNs);
    (void)sums;
    (void)counts;
  }

  // Correlation(distance, fare).
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  for (uint64_t r = 0; r < rows_; ++r) {
    double a = distance_.Get(r);
    double b = fare_.Get(r);
    sa += a;
    sb += b;
    saa += a * a;
    sbb += b * b;
    sab += a * b;
  }
  clk.Advance(rows_ * 3 * kRowComputeNs);
  auto n = static_cast<double>(rows_);
  double cov = sab - sa * sb / n;
  double va = saa - sa * sa / n;
  double vb = sbb - sb * sb / n;
  res.fare_distance_corr = (va <= 0 || vb <= 0) ? 0.0 : cov / std::sqrt(va * vb);

  // DeriveColumn + TopK-equivalent pass.
  for (uint64_t r = 0; r < rows_; ++r) {
    double a = distance_.Get(r);
    double b = duration_.Get(r);
    derived_.Set(r, 2.0 * std::asin(std::sqrt(std::abs(std::sin(a / 120.0) * std::sin(b / 90.0)))));
  }
  clk.Advance(rows_ * 8 * kRowComputeNs);
  double best = -1.0;
  for (uint64_t r = 0; r < rows_; ++r) {
    best = std::max(best, fare_.Get(r));
  }
  clk.Advance(rows_ * kRowComputeNs);

  res.elapsed_ns = clk.now() - t0;
  return res;
}

}  // namespace dilos
