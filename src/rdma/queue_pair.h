// Reliable-connected queue pair + completion queue.
//
// DiLOS' communication module creates one QP per (core, module) so that
// fault-handler traffic is never head-of-line blocked behind prefetcher or
// reclaimer traffic (Sec. 4.5). In the model each QP issues ops onto the
// shared Link; data movement happens eagerly but the completion carries the
// simulated arrival timestamp.
#ifndef DILOS_SRC_RDMA_QUEUE_PAIR_H_
#define DILOS_SRC_RDMA_QUEUE_PAIR_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "src/rdma/link.h"
#include "src/rdma/memory_region.h"
#include "src/rdma/verbs.h"
#include "src/sim/clock.h"
#include "src/telemetry/metrics.h"

namespace dilos {

class FaultInjector;   // src/memnode/fault_injector.h
class LinkScheduler;   // src/rdma/sched.h

class CompletionQueue {
 public:
  void Push(Completion c) {
    // RC QPs complete in order; clamp to enforce monotonicity.
    if (!queue_.empty() && c.completion_time_ns < queue_.back().completion_time_ns) {
      c.completion_time_ns = queue_.back().completion_time_ns;
    }
    queue_.push_back(c);
  }

  // Non-blocking poll: returns the next completion if it has arrived by
  // `now_ns`.
  std::optional<Completion> Poll(uint64_t now_ns) {
    if (queue_.empty() || queue_.front().completion_time_ns > now_ns) {
      return std::nullopt;
    }
    Completion c = queue_.front();
    queue_.pop_front();
    return c;
  }

  // Blocking poll: waits (advancing `clock`) for the next completion.
  std::optional<Completion> BlockingPoll(Clock& clock) {
    if (queue_.empty()) {
      return std::nullopt;
    }
    Completion c = queue_.front();
    queue_.pop_front();
    clock.AdvanceTo(c.completion_time_ns);
    return c;
  }

  size_t outstanding() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

 private:
  std::deque<Completion> queue_;
};

class QueuePair {
 public:
  // `local` resolves compute-node buffer addresses; `remote_mr` is the
  // memory-node region this QP is connected to. `injector`/`node` connect
  // the QP to the fabric's fault plan (src/memnode/fault_injector.h); bare
  // QPs built outside a Fabric run fault-free. `cls` names the module this
  // QP serves and `metrics` points at the fabric's registry slot — a
  // double pointer, so a registry installed on the fabric after QP creation
  // (Fabric::set_metrics) is still seen; both default to "unmetered".
  // `sched` is the fabric's wire-scheduler slot (same double-pointer
  // pattern): when a scheduler is installed it arbitrates the wire in place
  // of Link::Occupy (src/rdma/sched.h).
  QueuePair(Link* link, AddressResolver* local, const MemoryRegion* remote_mr,
            FaultInjector* injector = nullptr, int node = -1,
            QpClass cls = QpClass::kOther, MetricsRegistry* const* metrics = nullptr,
            LinkScheduler* const* sched = nullptr)
      : link_(link),
        local_(local),
        remote_mr_(remote_mr),
        injector_(injector),
        node_(node),
        cls_(cls),
        metrics_(metrics),
        sched_(sched) {}

  // Posts a one-sided work request at simulated time `now_ns`. Data movement
  // is performed immediately; the completion time reflects fabric latency
  // plus wire serialization. Returns the completion (also pushed to cq()).
  // This is the one choke point every RDMA op in the repo passes through:
  // per-(node, QP class) telemetry hangs off it (src/telemetry/metrics.h).
  Completion PostSend(const WorkRequest& wr, uint64_t now_ns);

  // How the most recent PostSend's latency split between waiting for the
  // wire (scheduler lane / FIFO queueing) and everything else (fabric
  // propagation + serialization). Valid until the next post on this QP;
  // read-after-post is safe in the single-threaded simulator. Fault
  // attribution splits its kLaneWait / kWire phases on this.
  struct WireBreakdown {
    uint64_t lane_ns = 0;  // Queueing before the op's wire slot started.
    uint64_t wire_ns = 0;  // Remaining post-to-completion time.
  };
  const WireBreakdown& last_wire_breakdown() const { return last_wire_; }

  int node() const { return node_; }
  QpClass qp_class() const { return cls_; }

  CompletionQueue& cq() { return cq_; }
  Link* link() { return link_; }
  // rkey of the connected remote region (the connection handshake result).
  uint32_t remote_rkey() const { return remote_mr_->key; }

  // Convenience: single-segment page-sized or subpage ops.
  Completion PostRead(uint64_t wr_id, uint64_t local_addr, uint64_t remote_addr, uint32_t len,
                      uint64_t now_ns);
  Completion PostWrite(uint64_t wr_id, uint64_t local_addr, uint64_t remote_addr, uint32_t len,
                       uint64_t now_ns);

 private:
  Completion Fail(uint64_t wr_id, WcStatus status, uint64_t now_ns);
  // RC retransmit-exhausted path, shared by crashes and injected drops.
  Completion Timeout(uint64_t wr_id, uint64_t now_ns);
  Completion PostSendImpl(const WorkRequest& wr, uint64_t now_ns);

  Link* link_;
  AddressResolver* local_;
  const MemoryRegion* remote_mr_;
  FaultInjector* injector_;
  int node_;
  QpClass cls_ = QpClass::kOther;
  MetricsRegistry* const* metrics_ = nullptr;  // Fabric's registry slot.
  LinkScheduler* const* sched_ = nullptr;      // Fabric's wire-scheduler slot.
  WireBreakdown last_wire_;
  CompletionQueue cq_;
  // RC QPs complete strictly in post order: a READ posted after a WRITE on
  // the same QP cannot complete before it. This is the head-of-line
  // blocking a single shared (kernel swap) queue suffers, and why DiLOS
  // gives each module its own QP (Sec. 4.5).
  uint64_t last_completion_ns_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_RDMA_QUEUE_PAIR_H_
