// Wire-arbitration hook: an installable replacement for Link::Occupy.
//
// By default every op posted on a QP serializes FIFO on its node's link
// (src/rdma/link.h). A LinkScheduler installed on the fabric
// (Fabric::set_scheduler) is consulted instead at the QueuePair::PostSend
// choke point, with enough context — node, QP class, remote address — to
// arbitrate the wire by traffic class and by tenant. The policy
// implementation lives in src/tenant/wire_sched.h; this header only breaks
// the rdma -> tenant dependency that would otherwise cycle.
#ifndef DILOS_SRC_RDMA_SCHED_H_
#define DILOS_SRC_RDMA_SCHED_H_

#include <cstdint>

#include "src/telemetry/metrics.h"

namespace dilos {

class Link;

class LinkScheduler {
 public:
  virtual ~LinkScheduler() = default;

  // Arbitrates one op of `bytes` payload across `nsegs` segments issued at
  // `issue_ns` toward `node`; returns the wire-completion time (the value
  // Link::Occupy would have returned). Implementations are responsible for
  // metering bandwidth into the link's BandwidthMeters, since the link's own
  // Occupy is bypassed while a scheduler is installed. `remote_addr` is the
  // op's first remote segment address (0 if none) — the key a tenant-aware
  // scheduler resolves ownership from.
  virtual uint64_t Occupy(Link& link, int node, QpClass cls, uint64_t remote_addr,
                          uint64_t issue_ns, uint64_t bytes, uint32_t nsegs,
                          bool is_write) = 0;

  // Queueing delay (start - issue) of the most recent Occupy, for fault
  // attribution's lane-wait phase. Schedulers that don't track it report 0.
  virtual uint64_t last_queue_ns() const { return 0; }
};

}  // namespace dilos

#endif  // DILOS_SRC_RDMA_SCHED_H_
