// The shared 100 GbE link between the compute node and the memory node.
//
// Ops from every queue pair serialize on the wire: each op occupies the link
// for a per-op overhead plus per-byte time (CostModel). The link also meters
// bandwidth into time buckets for the Fig. 12 bandwidth plots.
#ifndef DILOS_SRC_RDMA_LINK_H_
#define DILOS_SRC_RDMA_LINK_H_

#include <cstdint>
#include <vector>

#include "src/sim/cost_model.h"

namespace dilos {

// Per-direction bandwidth meter: bytes transferred per fixed time bucket.
class BandwidthMeter {
 public:
  explicit BandwidthMeter(uint64_t bucket_ns = 100'000'000) : bucket_ns_(bucket_ns) {}

  void Add(uint64_t time_ns, uint64_t bytes) {
    size_t idx = time_ns / bucket_ns_;
    if (idx >= buckets_.size()) {
      buckets_.resize(idx + 1, 0);
    }
    buckets_[idx] += bytes;
    total_ += bytes;
  }

  uint64_t total_bytes() const { return total_; }
  uint64_t bucket_ns() const { return bucket_ns_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  // Mean bandwidth in bytes/s over the metered interval (0 if empty).
  double MeanBytesPerSec() const {
    if (buckets_.empty()) {
      return 0.0;
    }
    double secs = static_cast<double>(buckets_.size()) * static_cast<double>(bucket_ns_) / 1e9;
    return static_cast<double>(total_) / secs;
  }

  void Reset() {
    buckets_.clear();
    total_ = 0;
  }

 private:
  uint64_t bucket_ns_;
  std::vector<uint64_t> buckets_;
  uint64_t total_ = 0;
};

class Link {
 public:
  explicit Link(const CostModel& cost) : cost_(cost) {}

  // Serializes an op of `bytes` payload across `nsegs` segments issued at
  // `issue_ns`; returns the wire-completion time. The link is full duplex:
  // reads (memory node -> compute, RX) and writes (TX) occupy independent
  // directions, as on the paper's 100 GbE RoCE link.
  uint64_t Occupy(uint64_t issue_ns, uint64_t bytes, uint32_t nsegs, bool is_write) {
    uint64_t& busy = is_write ? tx_busy_until_ns_ : rx_busy_until_ns_;
    uint64_t start = issue_ns > busy ? issue_ns : busy;
    uint64_t wire = cost_.link_per_op_ns +
                    static_cast<uint64_t>(cost_.link_per_byte_ns * static_cast<double>(bytes)) +
                    static_cast<uint64_t>(nsegs > 1 ? (nsegs - 1) * 40 : 0);
    busy = start + wire;
    (is_write ? tx_ : rx_).Add(start, bytes);
    last_queue_ns_ = start - issue_ns;
    return busy;
  }

  // FIFO queueing delay of the most recent Occupy (start - issue). Read by
  // attribution right after a post; safe in the single-threaded simulator.
  uint64_t last_queue_ns() const { return last_queue_ns_; }

  uint64_t busy_until() const {
    return rx_busy_until_ns_ > tx_busy_until_ns_ ? rx_busy_until_ns_ : tx_busy_until_ns_;
  }
  const BandwidthMeter& rx() const { return rx_; }
  const BandwidthMeter& tx() const { return tx_; }
  BandwidthMeter& mutable_rx() { return rx_; }
  BandwidthMeter& mutable_tx() { return tx_; }
  const CostModel& cost() const { return cost_; }

  void Reset() {
    rx_busy_until_ns_ = 0;
    tx_busy_until_ns_ = 0;
    rx_.Reset();
    tx_.Reset();
  }

 private:
  CostModel cost_;
  uint64_t rx_busy_until_ns_ = 0;
  uint64_t tx_busy_until_ns_ = 0;
  uint64_t last_queue_ns_ = 0;
  BandwidthMeter rx_;
  BandwidthMeter tx_;
};

}  // namespace dilos

#endif  // DILOS_SRC_RDMA_LINK_H_
