// Registered memory regions with protection keys.
//
// A memory region maps a contiguous [base, base+length) address range to
// backing bytes through an AddressResolver. The NIC refuses any access whose
// rkey does not match or whose range escapes the region — modeling the
// isolation property the paper relies on for sharing one RNIC among
// LibOSes (Sec. 5).
#ifndef DILOS_SRC_RDMA_MEMORY_REGION_H_
#define DILOS_SRC_RDMA_MEMORY_REGION_H_

#include <cstdint>

namespace dilos {

// Resolves simulated addresses to host memory. Implementations: the memory
// node's page store (far addresses) and the compute node's identity resolver
// (host pointers used as addresses).
class AddressResolver {
 public:
  virtual ~AddressResolver() = default;

  // Returns a pointer to `len` contiguous bytes backing [addr, addr+len),
  // or nullptr if the range is unmapped or crosses a backing boundary.
  // `for_write` lets stores materialize pages on demand.
  virtual uint8_t* Resolve(uint64_t addr, uint32_t len, bool for_write) = 0;
};

// Identity resolver: the address *is* a host pointer. Used for compute-node
// local buffers (DRAM frames).
class IdentityResolver : public AddressResolver {
 public:
  uint8_t* Resolve(uint64_t addr, uint32_t len, bool for_write) override {
    (void)len;
    (void)for_write;
    return reinterpret_cast<uint8_t*>(addr);
  }
};

struct MemoryRegion {
  uint32_t key = 0;
  uint64_t base = 0;
  uint64_t length = 0;
  AddressResolver* resolver = nullptr;
  // Set while the owning memory node is crashed: connected QPs complete
  // every op with WcStatus::kTimeout instead of moving data.
  bool crashed = false;

  bool Contains(uint64_t addr, uint32_t len) const {
    return addr >= base && addr + len <= base + length;
  }
};

}  // namespace dilos

#endif  // DILOS_SRC_RDMA_MEMORY_REGION_H_
