// Simulated one-sided RDMA verbs: the request/completion vocabulary shared by
// queue pairs, completion queues, and memory regions.
//
// The model follows the subset of ibverbs the paper's systems use: reliable
// connected QPs, one-sided READ/WRITE, scatter/gather lists, rkey-protected
// memory regions (Sec. 5 "Low-latency RDMA driver" / "Memory node").
#ifndef DILOS_SRC_RDMA_VERBS_H_
#define DILOS_SRC_RDMA_VERBS_H_

#include <cstdint>
#include <vector>

namespace dilos {

inline constexpr uint32_t kPageSize = 4096;
inline constexpr uint32_t kPageShift = 12;

enum class RdmaOpcode : uint8_t {
  kRead,   // Remote -> local (fetch).
  kWrite,  // Local -> remote (evict / write-back).
};

enum class WcStatus : uint8_t {
  kSuccess,
  kRemoteAccessError,  // rkey mismatch or out-of-region access.
  kLocalError,
  kTimeout,  // RC transport retries exhausted (remote node unreachable).
};

// One scatter/gather element. On the remote side a segment must not cross a
// 4 KB page boundary (the memory node registers page-granular backing).
struct Sge {
  uint64_t addr = 0;
  uint32_t length = 0;
};

struct WorkRequest {
  uint64_t wr_id = 0;
  RdmaOpcode opcode = RdmaOpcode::kRead;
  // Local segments (compute-node buffers) and matching remote segments.
  // Segment i on the local side pairs with segment i on the remote side;
  // lengths must match element-wise.
  std::vector<Sge> local;
  std::vector<Sge> remote;
  uint32_t rkey = 0;

  uint64_t TotalBytes() const {
    uint64_t n = 0;
    for (const Sge& s : local) {
      n += s.length;
    }
    return n;
  }
};

struct Completion {
  uint64_t wr_id = 0;
  WcStatus status = WcStatus::kSuccess;
  uint64_t completion_time_ns = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_RDMA_VERBS_H_
