#include "src/rdma/queue_pair.h"

#include <cstring>

namespace dilos {

Completion QueuePair::Fail(uint64_t wr_id, WcStatus status, uint64_t now_ns) {
  Completion c{wr_id, status, now_ns};
  cq_.Push(c);
  return c;
}

Completion QueuePair::PostSend(const WorkRequest& wr, uint64_t now_ns) {
  if (remote_mr_->crashed) {
    // The RC transport retransmits until its timer expires, then completes
    // the WQE in error; no data moves. Subsequent ops on this QP still
    // complete in order behind the timed-out one.
    uint64_t done = now_ns + link_->cost().rdma_op_timeout_ns;
    if (done < last_completion_ns_) {
      done = last_completion_ns_;
    }
    last_completion_ns_ = done;
    Completion c{wr.wr_id, WcStatus::kTimeout, done};
    cq_.Push(c);
    return c;
  }
  if (wr.local.size() != wr.remote.size() || wr.local.empty()) {
    return Fail(wr.wr_id, WcStatus::kLocalError, now_ns);
  }
  if (wr.rkey != remote_mr_->key) {
    return Fail(wr.wr_id, WcStatus::kRemoteAccessError, now_ns);
  }
  // Validate and move the payload segment by segment.
  for (size_t i = 0; i < wr.local.size(); ++i) {
    const Sge& l = wr.local[i];
    const Sge& r = wr.remote[i];
    if (l.length != r.length || l.length == 0) {
      return Fail(wr.wr_id, WcStatus::kLocalError, now_ns);
    }
    if (!remote_mr_->Contains(r.addr, r.length)) {
      return Fail(wr.wr_id, WcStatus::kRemoteAccessError, now_ns);
    }
    bool is_write = wr.opcode == RdmaOpcode::kWrite;
    uint8_t* lp = local_->Resolve(l.addr, l.length, /*for_write=*/!is_write);
    uint8_t* rp = remote_mr_->resolver->Resolve(r.addr, r.length, /*for_write=*/is_write);
    if (lp == nullptr || rp == nullptr) {
      return Fail(wr.wr_id, WcStatus::kRemoteAccessError, now_ns);
    }
    if (is_write) {
      std::memcpy(rp, lp, l.length);
    } else {
      std::memcpy(lp, rp, l.length);
    }
  }

  uint64_t bytes = wr.TotalBytes();
  auto nsegs = static_cast<uint32_t>(wr.local.size());
  bool is_write = wr.opcode == RdmaOpcode::kWrite;
  uint64_t fabric = is_write ? link_->cost().WriteLatencyNs(bytes, nsegs)
                             : link_->cost().ReadLatencyNs(bytes, nsegs);
  uint64_t wire_done = link_->Occupy(now_ns, bytes, nsegs, is_write);
  uint64_t done = now_ns + fabric;
  if (wire_done > done) {
    done = wire_done;
  }
  if (done < last_completion_ns_) {
    done = last_completion_ns_;  // RC in-order completion.
  }
  last_completion_ns_ = done;
  Completion c{wr.wr_id, WcStatus::kSuccess, done};
  cq_.Push(c);
  return c;
}

Completion QueuePair::PostRead(uint64_t wr_id, uint64_t local_addr, uint64_t remote_addr,
                               uint32_t len, uint64_t now_ns) {
  WorkRequest wr;
  wr.wr_id = wr_id;
  wr.opcode = RdmaOpcode::kRead;
  wr.local.push_back({local_addr, len});
  wr.remote.push_back({remote_addr, len});
  wr.rkey = remote_mr_->key;
  return PostSend(wr, now_ns);
}

Completion QueuePair::PostWrite(uint64_t wr_id, uint64_t local_addr, uint64_t remote_addr,
                                uint32_t len, uint64_t now_ns) {
  WorkRequest wr;
  wr.wr_id = wr_id;
  wr.opcode = RdmaOpcode::kWrite;
  wr.local.push_back({local_addr, len});
  wr.remote.push_back({remote_addr, len});
  wr.rkey = remote_mr_->key;
  return PostSend(wr, now_ns);
}

}  // namespace dilos
