#include "src/rdma/queue_pair.h"

#include <cstring>

#include "src/memnode/fault_injector.h"
#include "src/rdma/sched.h"

namespace dilos {

Completion QueuePair::Fail(uint64_t wr_id, WcStatus status, uint64_t now_ns) {
  last_wire_ = WireBreakdown{};
  Completion c{wr_id, status, now_ns};
  cq_.Push(c);
  return c;
}

Completion QueuePair::Timeout(uint64_t wr_id, uint64_t now_ns) {
  // The RC transport retransmits until its timer expires, then completes
  // the WQE in error; no data moves. Subsequent ops on this QP still
  // complete in order behind the timed-out one.
  uint64_t done = now_ns + link_->cost().rdma_op_timeout_ns;
  if (done < last_completion_ns_) {
    done = last_completion_ns_;
  }
  last_completion_ns_ = done;
  // All timeout latency is "wire" for attribution: the RC retransmit timer
  // ran on the wire, not in a scheduler lane.
  last_wire_ = WireBreakdown{0, done - now_ns};
  Completion c{wr_id, WcStatus::kTimeout, done};
  cq_.Push(c);
  return c;
}

Completion QueuePair::PostSend(const WorkRequest& wr, uint64_t now_ns) {
  Completion c = PostSendImpl(wr, now_ns);
  // The telemetry choke point: one registry hook covers every op from every
  // subsystem. metrics_ points at the fabric's slot, so a registry installed
  // after this QP was created is still observed; unmetered QPs pay one test.
  if (metrics_ != nullptr && *metrics_ != nullptr) {
    bool ok = c.status == WcStatus::kSuccess;
    (*metrics_)->OnOp(node_, cls_, wr.opcode == RdmaOpcode::kWrite, wr.TotalBytes(),
                      ok ? c.completion_time_ns - now_ns : 0, ok,
                      c.status == WcStatus::kTimeout,
                      wr.remote.empty() ? 0 : wr.remote[0].addr);
  }
  return c;
}

Completion QueuePair::PostSendImpl(const WorkRequest& wr, uint64_t now_ns) {
  bool is_write = wr.opcode == RdmaOpcode::kWrite;
  OpFault fault;
  if (injector_ != nullptr && node_ >= 0) {
    fault = injector_->Decide(node_, is_write, now_ns, wr.TotalBytes());
  }
  if (remote_mr_->crashed || fault.drop) {
    return Timeout(wr.wr_id, now_ns);
  }
  if (wr.local.size() != wr.remote.size() || wr.local.empty()) {
    return Fail(wr.wr_id, WcStatus::kLocalError, now_ns);
  }
  if (wr.rkey != remote_mr_->key) {
    return Fail(wr.wr_id, WcStatus::kRemoteAccessError, now_ns);
  }
  // Validate and move the payload segment by segment.
  uint64_t payload_off = 0;
  for (size_t i = 0; i < wr.local.size(); ++i) {
    const Sge& l = wr.local[i];
    const Sge& r = wr.remote[i];
    if (l.length != r.length || l.length == 0) {
      return Fail(wr.wr_id, WcStatus::kLocalError, now_ns);
    }
    if (!remote_mr_->Contains(r.addr, r.length)) {
      return Fail(wr.wr_id, WcStatus::kRemoteAccessError, now_ns);
    }
    uint8_t* lp = local_->Resolve(l.addr, l.length, /*for_write=*/!is_write);
    uint8_t* rp = remote_mr_->resolver->Resolve(r.addr, r.length, /*for_write=*/is_write);
    if (lp == nullptr || rp == nullptr) {
      return Fail(wr.wr_id, WcStatus::kRemoteAccessError, now_ns);
    }
    if (is_write) {
      std::memcpy(rp, lp, l.length);
    } else {
      std::memcpy(lp, rp, l.length);
    }
    if (fault.corrupt && fault.corrupt_offset >= payload_off &&
        fault.corrupt_offset < payload_off + l.length) {
      // Injected wire corruption lands on the destination side: the stored
      // bytes for a write, the local buffer for a read.
      uint8_t* victim = (is_write ? rp : lp) + (fault.corrupt_offset - payload_off);
      *victim ^= fault.corrupt_mask;
    }
    payload_off += l.length;
  }

  uint64_t bytes = wr.TotalBytes();
  auto nsegs = static_cast<uint32_t>(wr.local.size());
  uint64_t fabric = is_write ? link_->cost().WriteLatencyNs(bytes, nsegs)
                             : link_->cost().ReadLatencyNs(bytes, nsegs);
  if (fault.delay_factor > 1.0) {
    // Gray failure: the node answers, just slowly — stretch the fabric
    // latency, not the wire serialization (the link itself is healthy).
    fabric = static_cast<uint64_t>(static_cast<double>(fabric) * fault.delay_factor);
  }
  // Wire arbitration: FIFO through Link::Occupy by default; with a fabric
  // scheduler installed (multi-tenant fair share), the scheduler decides when
  // this op's serialization slot starts. Same double-pointer pattern as
  // metrics_, so a scheduler installed after QP creation is still honored.
  uint64_t wire_done;
  uint64_t queue_ns;
  if (sched_ != nullptr && *sched_ != nullptr) {
    wire_done = (*sched_)->Occupy(*link_, node_, cls_,
                                  wr.remote.empty() ? 0 : wr.remote[0].addr, now_ns,
                                  bytes, nsegs, is_write);
    queue_ns = (*sched_)->last_queue_ns();
  } else {
    wire_done = link_->Occupy(now_ns, bytes, nsegs, is_write);
    queue_ns = link_->last_queue_ns();
  }
  uint64_t done = now_ns + fabric;
  if (wire_done > done) {
    done = wire_done;
  }
  if (done < last_completion_ns_) {
    done = last_completion_ns_;  // RC in-order completion.
  }
  last_completion_ns_ = done;
  // Lane wait is capped at the op's total latency: when fabric propagation
  // exceeds wire availability the queueing was hidden, not on the path.
  uint64_t total = done - now_ns;
  uint64_t lane = queue_ns < total ? queue_ns : total;
  last_wire_ = WireBreakdown{lane, total - lane};
  Completion c{wr.wr_id, WcStatus::kSuccess, done};
  cq_.Push(c);
  return c;
}

Completion QueuePair::PostRead(uint64_t wr_id, uint64_t local_addr, uint64_t remote_addr,
                               uint32_t len, uint64_t now_ns) {
  WorkRequest wr;
  wr.wr_id = wr_id;
  wr.opcode = RdmaOpcode::kRead;
  wr.local.push_back({local_addr, len});
  wr.remote.push_back({remote_addr, len});
  wr.rkey = remote_mr_->key;
  return PostSend(wr, now_ns);
}

Completion QueuePair::PostWrite(uint64_t wr_id, uint64_t local_addr, uint64_t remote_addr,
                                uint32_t len, uint64_t now_ns) {
  WorkRequest wr;
  wr.wr_id = wr_id;
  wr.opcode = RdmaOpcode::kWrite;
  wr.local.push_back({local_addr, len});
  wr.remote.push_back({remote_addr, len});
  wr.rkey = remote_mr_->key;
  return PostSend(wr, now_ns);
}

}  // namespace dilos
