// Deterministic fault injection for the fabric ("chaos fabric").
//
// Real disaggregated fabrics fail partially: transient completion errors,
// latency spikes from overloaded memory nodes, corrupted payloads, and
// asymmetric partitions — not just the binary crash that Fabric::CrashNode
// models. A FaultPlan is a list of FaultSpecs, each scoping one fault kind
// to a node (or all nodes) and a simulated-time window; the injector draws
// every probabilistic decision from one seeded xorshift64* stream, so a
// given (plan, seed, workload) triple replays the exact same fault
// schedule. CrashNode itself is expressible as an open-ended kCrash entry.
//
// The injector sits on the only choke point every op crosses —
// QueuePair::PostSend — and decides per op: drop it (complete kTimeout),
// stretch its completion latency (gray failure), or flip one payload bit in
// flight. kStorageRot is the exception: it corrupts a bit of a page already
// *stored* on the node (latent corruption the scrubber exists to find),
// rather than a payload in flight.
#ifndef DILOS_SRC_MEMNODE_FAULT_INJECTOR_H_
#define DILOS_SRC_MEMNODE_FAULT_INJECTOR_H_

#include <cstdint>
#include <iterator>
#include <vector>

#include "src/memnode/memory_node.h"
#include "src/sim/rng.h"

namespace dilos {

enum class FaultKind : uint8_t {
  kCrash,        // Every op to the node times out during the window.
  kTransient,    // Each op independently times out with `probability`.
  kDelay,        // Completion latency is multiplied by `factor` (gray failure).
  kBitFlip,      // With `probability`, one payload bit flips in flight.
  kPartitionIn,  // One-way partition: payload *toward* the node (writes) drops.
  kPartitionOut, // One-way partition: payload *from* the node (reads) drops.
  kStorageRot,   // With `probability` per op, one stored checksummed page rots.
};

struct FaultSpec {
  int node = -1;  // Target node, or -1 for every node.
  FaultKind kind = FaultKind::kTransient;
  double probability = 1.0;      // Per-op chance (kTransient/kBitFlip/kStorageRot).
  double factor = 1.0;           // Latency multiplier (kDelay).
  uint64_t start_ns = 0;         // Window start, inclusive.
  uint64_t end_ns = UINT64_MAX;  // Window end, exclusive.
};

struct FaultPlan {
  // 0 keeps the injector's current seed (so DilosConfig::fault_seed, applied
  // at runtime construction, stays authoritative over per-plan seeds).
  uint64_t seed = 0;
  std::vector<FaultSpec> specs;
};

// The per-op verdict applied by QueuePair::PostSend.
struct OpFault {
  bool drop = false;
  bool corrupt = false;
  uint64_t corrupt_offset = 0;  // Payload byte index of the flipped bit.
  uint8_t corrupt_mask = 1;
  double delay_factor = 1.0;
};

class FaultInjector {
 public:
  void Arm(const FaultPlan& plan) {
    specs_ = plan.specs;
    if (plan.seed != 0) {
      Reseed(plan.seed);
    }
  }
  void Reseed(uint64_t seed) {
    seed_ = seed;
    rng_ = Rng(seed);
  }
  bool armed() const { return !specs_.empty(); }
  uint64_t seed() const { return seed_; }

  // Fabric registers its nodes so kStorageRot can reach their stores.
  void RegisterNode(MemoryNode* node) { nodes_.push_back(node); }

  // Per-op decision, consulted by PostSend in op order (single-threaded
  // simulation), which is what makes the schedule deterministic per seed.
  //
  // Window checks use a monotonic horizon, not the raw caller timestamp: the
  // simulator runs several time cursors (per-core clocks, the demand-fetch
  // cursor, the repair stream), and during a timeout storm the demand cursor
  // races milliseconds ahead of the core clock that drives background work.
  // An op posted on a lagging cursor must not slip *behind* a fault window
  // the simulation has already entered — a probe posted "in the past" would
  // reach a node that is currently crashed. Fault time only moves forward.
  OpFault Decide(int node, bool is_write, uint64_t now_ns, uint64_t bytes) {
    OpFault f;
    if (now_ns > horizon_ns_) {
      horizon_ns_ = now_ns;
    } else {
      now_ns = horizon_ns_;
    }
    if (specs_.empty()) {
      return f;
    }
    for (const FaultSpec& s : specs_) {
      if (s.node != -1 && s.node != node) {
        continue;
      }
      if (now_ns < s.start_ns || now_ns >= s.end_ns) {
        continue;
      }
      switch (s.kind) {
        case FaultKind::kCrash:
          f.drop = true;
          ++injected_timeouts_;
          break;
        case FaultKind::kTransient:
          if (rng_.NextDouble() < s.probability) {
            f.drop = true;
            ++injected_timeouts_;
          }
          break;
        case FaultKind::kPartitionIn:
          if (is_write) {
            f.drop = true;
            ++injected_partition_drops_;
          }
          break;
        case FaultKind::kPartitionOut:
          if (!is_write) {
            f.drop = true;
            ++injected_partition_drops_;
          }
          break;
        case FaultKind::kDelay:
          if (s.factor > f.delay_factor) {
            f.delay_factor = s.factor;
            ++injected_delays_;
          }
          break;
        case FaultKind::kBitFlip:
          if (bytes > 0 && rng_.NextDouble() < s.probability) {
            f.corrupt = true;
            f.corrupt_offset = rng_.NextBelow(bytes);
            f.corrupt_mask = static_cast<uint8_t>(1u << rng_.NextBelow(8));
            ++injected_bit_flips_;
          }
          break;
        case FaultKind::kStorageRot:
          if (rng_.NextDouble() < s.probability) {
            RotStoredPage(s.node == -1 ? node : s.node);
          }
          break;
      }
    }
    if (f.drop) {
      // A dropped op moves no payload: nothing to corrupt or delay.
      f.corrupt = false;
      f.delay_factor = 1.0;
    }
    return f;
  }

  // Total injected faults plus the per-kind breakdown (for the soak tests'
  // determinism assertions and for printing alongside the seed on failure).
  uint64_t injected_faults() const {
    return injected_timeouts_ + injected_delays_ + injected_bit_flips_ +
           injected_partition_drops_ + injected_rots_;
  }
  uint64_t injected_timeouts() const { return injected_timeouts_; }
  uint64_t injected_delays() const { return injected_delays_; }
  uint64_t injected_bit_flips() const { return injected_bit_flips_; }
  uint64_t injected_partition_drops() const { return injected_partition_drops_; }
  uint64_t injected_rots() const { return injected_rots_; }

 private:
  // Flips one bit of one materialized, checksummed page on `node` — the
  // checksum stays stale, modeling DRAM rot under the node's CRC metadata.
  // Only checksummed pages are eligible: a page without a checksum has
  // indeterminate content by contract (vectored write-backs) and rotting it
  // would be undetectable by design, not by bug.
  void RotStoredPage(int node) {
    if (node < 0 || node >= static_cast<int>(nodes_.size())) {
      return;
    }
    PageStore& store = nodes_[static_cast<size_t>(node)]->store();
    const auto& sums = store.checksums();
    if (sums.empty()) {
      return;
    }
    auto it = sums.begin();
    std::advance(it, static_cast<long>(rng_.NextBelow(sums.size())));
    uint64_t page = it->first;
    if (!store.Materialized(page)) {
      return;
    }
    uint8_t* data = store.PageData(page);
    data[rng_.NextBelow(kPageSize)] ^=
        static_cast<uint8_t>(1u << rng_.NextBelow(8));
    ++injected_rots_;
  }

  std::vector<FaultSpec> specs_;
  std::vector<MemoryNode*> nodes_;
  uint64_t horizon_ns_ = 0;  // Latest op time seen; window checks never rewind.
  uint64_t seed_ = 0xD15C0DE;
  Rng rng_{0xD15C0DE};
  uint64_t injected_timeouts_ = 0;
  uint64_t injected_delays_ = 0;
  uint64_t injected_bit_flips_ = 0;
  uint64_t injected_partition_drops_ = 0;
  uint64_t injected_rots_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_MEMNODE_FAULT_INJECTOR_H_
