// The memory node: a page store registered as one rkey-protected region.
#ifndef DILOS_SRC_MEMNODE_MEMORY_NODE_H_
#define DILOS_SRC_MEMNODE_MEMORY_NODE_H_

#include <cstdint>

#include "src/memnode/page_store.h"
#include "src/rdma/memory_region.h"

namespace dilos {

// Base of the far virtual address space served by the memory node. Compute
// nodes use far addresses directly as remote addresses, so the single
// registered region spans the whole far heap.
inline constexpr uint64_t kFarBase = 1ULL << 40;
inline constexpr uint64_t kFarSpan = 1ULL << 38;  // 256 GB of far address space.

class MemoryNode {
 public:
  explicit MemoryNode(uint32_t rkey = 0x5EED) {
    mr_.key = rkey;
    mr_.base = kFarBase;
    mr_.length = kFarSpan;
    mr_.resolver = &store_;
  }

  const MemoryRegion& mr() const { return mr_; }
  PageStore& store() { return store_; }
  const PageStore& store() const { return store_; }

  // Simulated node crash: connected QPs time out instead of moving data.
  // The store's contents are retained but unreachable (a restarted node
  // would come back empty or stale; the recovery subsystem re-replicates
  // from surviving copies rather than trusting them).
  void Crash() { mr_.crashed = true; }
  void Restore() { mr_.crashed = false; }
  bool crashed() const { return mr_.crashed; }

 private:
  PageStore store_;
  MemoryRegion mr_;
};

}  // namespace dilos

#endif  // DILOS_SRC_MEMNODE_MEMORY_NODE_H_
