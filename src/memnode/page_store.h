// Backing page store of the memory node.
//
// The memory node registers one large region with its RNIC and then serves
// all one-sided READ/WRITE traffic without CPU involvement (Sec. 5 "Memory
// node"). Pages materialize lazily, zero-filled, mirroring a freshly
// registered (and zeroed) hugepage region.
#ifndef DILOS_SRC_MEMNODE_PAGE_STORE_H_
#define DILOS_SRC_MEMNODE_PAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/rdma/memory_region.h"
#include "src/rdma/verbs.h"

namespace dilos {

class PageStore : public AddressResolver {
 public:
  PageStore() = default;

  // A segment must lie within one 4 KB page: the store's registration is
  // page-granular, matching how the RNIC DMA-scatters into host pages.
  uint8_t* Resolve(uint64_t addr, uint32_t len, bool for_write) override {
    if (len == 0 || len > kPageSize) {
      return nullptr;
    }
    uint64_t page = addr >> kPageShift;
    uint32_t off = static_cast<uint32_t>(addr & (kPageSize - 1));
    if (off + len > kPageSize) {
      return nullptr;  // Crosses a page boundary.
    }
    if (!for_write && pages_.count(page) == 0) {
      // Reads of never-written pages serve zeros without materializing, so
      // page_count() measures stored capacity (what redundancy benchmarks
      // compare), not read traffic like probes or EC survivor fan-outs.
      static const uint8_t kZeroPage[kPageSize] = {};
      return const_cast<uint8_t*>(kZeroPage) + off;
    }
    return PageData(page) + off;
  }

  // Returns the backing bytes of `page`, materializing zeros on first use.
  uint8_t* PageData(uint64_t page) {
    auto it = pages_.find(page);
    if (it == pages_.end()) {
      auto mem = std::make_unique<uint8_t[]>(kPageSize);
      uint8_t* raw = mem.get();
      pages_.emplace(page, std::move(mem));
      return raw;
    }
    return it->second.get();
  }

  bool Materialized(uint64_t page) const { return pages_.count(page) != 0; }
  size_t page_count() const { return pages_.size(); }
  // Stored page numbers, for capacity accounting in the redundancy benches
  // (splitting data pages from parity pages by address).
  const std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>>& pages() const {
    return pages_;
  }

  void Drop(uint64_t page) {
    pages_.erase(page);
    sums_.erase(page);
    gens_.erase(page);
  }

  // -- Per-page integrity metadata (src/recovery/integrity.h) ----------------
  // The cleaner installs a 64-bit checksum with each full-page write-back; a
  // page written partially (vectored live segments) carries none, because the
  // store-side content between segments is indeterminate. Checksums live next
  // to the pages the way a real memory node would keep per-block CRCs in a
  // metadata region of the same registration.
  void SetChecksum(uint64_t page, uint64_t sum) { sums_[page] = sum; }
  void DropChecksum(uint64_t page) { sums_.erase(page); }
  bool HasChecksum(uint64_t page) const { return sums_.count(page) != 0; }
  uint64_t Checksum(uint64_t page) const {
    auto it = sums_.find(page);
    return it == sums_.end() ? 0 : it->second;
  }
  const std::unordered_map<uint64_t, uint64_t>& checksums() const { return sums_; }

  // -- Write-generation tags (freshness metadata) -----------------------------
  // A checksum authenticates *content*, not *currency*: a replica that missed
  // write-backs behind a partition still verifies against its old checksum.
  // The cleaner therefore installs a monotonically increasing generation with
  // every checked full-page write-back; readers compare it against the
  // router's expected generation and treat a lagging copy as stale
  // (src/recovery/integrity.h::PageIsStale). 0 means "never tagged".
  void SetGeneration(uint64_t page, uint32_t gen) { gens_[page] = gen; }
  uint32_t Generation(uint64_t page) const {
    auto it = gens_.find(page);
    return it == gens_.end() ? 0 : it->second;
  }

 private:
  std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> pages_;
  std::unordered_map<uint64_t, uint64_t> sums_;
  std::unordered_map<uint64_t, uint32_t> gens_;
};

}  // namespace dilos

#endif  // DILOS_SRC_MEMNODE_PAGE_STORE_H_
