// Fabric: the two-node testbed in one object — a compute-node local resolver,
// a memory node, and the 100 GbE link connecting them. Queue pairs created
// here model DiLOS' per-core, per-module QPs (Sec. 4.5): each CreateQp()
// returns an independent QP whose ops never queue behind another QP's
// software path, though all share the physical wire.
#ifndef DILOS_SRC_MEMNODE_FABRIC_H_
#define DILOS_SRC_MEMNODE_FABRIC_H_

#include <memory>
#include <vector>

#include "src/memnode/fault_injector.h"
#include "src/memnode/memory_node.h"
#include "src/rdma/link.h"
#include "src/rdma/queue_pair.h"
#include "src/sim/cost_model.h"

namespace dilos {

class Fabric {
 public:
  // `num_nodes` memory nodes, each on its own 100 GbE port (the Sec. 5.1
  // multi-node extension; the default single node matches the paper's
  // testbed).
  explicit Fabric(const CostModel& cost = CostModel::Default(), int num_nodes = 1)
      : cost_(cost) {
    for (int i = 0; i < num_nodes; ++i) {
      links_.push_back(std::make_unique<Link>(cost));
      nodes_.push_back(std::make_unique<MemoryNode>(static_cast<uint32_t>(0x5EED + i)));
      injector_.RegisterNode(nodes_.back().get());
    }
  }

  // `cls` labels the module the QP will serve so the telemetry registry can
  // key its counters by (node x class); callers that predate telemetry (and
  // bare bench QPs) default to kOther.
  QueuePair* CreateQp(int node = 0, QpClass cls = QpClass::kOther) {
    qps_.push_back(std::make_unique<QueuePair>(links_[static_cast<size_t>(node)].get(),
                                               &local_, &nodes_[static_cast<size_t>(node)]->mr(),
                                               &injector_, node, cls, &metrics_, &sched_));
    return qps_.back().get();
  }

  // Installs (or, with nullptr, removes) the per-node metrics registry every
  // QP reports into. QPs hold a pointer to this slot, so installation after
  // QP creation — the normal order: runtime construction wires the router's
  // QPs first, then enables telemetry — takes effect immediately.
  void set_metrics(MetricsRegistry* m) { metrics_ = m; }
  MetricsRegistry* metrics() { return metrics_; }
  // The fabric's metrics slot itself — QPs and background monitors
  // (src/tenant/hotness.h) watch this address, not a snapshot of it.
  MetricsRegistry* const* metrics_slot() const { return &metrics_; }

  // Installs (or removes) a wire scheduler (src/rdma/sched.h) that replaces
  // per-link FIFO arbitration for every QP, existing and future. Used by the
  // multi-tenant fair-share layer (src/tenant/wire_sched.h).
  void set_scheduler(LinkScheduler* s) { sched_ = s; }
  LinkScheduler* scheduler() { return sched_; }

  // Crashes memory node `i`: every QP connected to it times out from now on.
  // Unlike ShardRouter::FailNode this is not an oracle declaration — the
  // compute side only learns of the crash through op timeouts and missed
  // heartbeats (src/recovery/failure_detector.h). A scheduled, window-bounded
  // crash is the same thing as a plan: set_fault_plan with a kCrash spec.
  void CrashNode(int i) { nodes_[static_cast<size_t>(i)]->Crash(); }
  void RestoreNode(int i) { nodes_[static_cast<size_t>(i)]->Restore(); }

  // Installs a deterministic chaos schedule (src/memnode/fault_injector.h).
  // Arm the plan *before* constructing a runtime whose DilosConfig::
  // fault_seed should govern it: the runtime reseeds the injector at
  // construction, and a plan with seed == 0 keeps that seed.
  void set_fault_plan(const FaultPlan& plan) { injector_.Arm(plan); }
  FaultInjector& injector() { return injector_; }

  Link& link(int node = 0) { return *links_[static_cast<size_t>(node)]; }
  MemoryNode& node(int i = 0) { return *nodes_[static_cast<size_t>(i)]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const CostModel& cost() const { return cost_; }

 private:
  CostModel cost_;
  FaultInjector injector_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<MemoryNode>> nodes_;
  IdentityResolver local_;
  MetricsRegistry* metrics_ = nullptr;  // Telemetry registry; see set_metrics.
  LinkScheduler* sched_ = nullptr;      // Wire scheduler; see set_scheduler.
  std::vector<std::unique_ptr<QueuePair>> qps_;
};

}  // namespace dilos

#endif  // DILOS_SRC_MEMNODE_FABRIC_H_
