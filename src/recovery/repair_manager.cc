#include "src/recovery/repair_manager.h"

#include "src/recovery/ec_read.h"

namespace dilos {

RepairManager::RepairManager(Fabric& fabric, ShardRouter& router, FailureDetector& detector,
                             RuntimeStats& stats, Tracer* tracer, RepairConfig cfg)
    : fabric_(fabric),
      router_(router),
      detector_(detector),
      stats_(stats),
      tracer_(tracer),
      cfg_(cfg) {
  if (tracer_ == nullptr) {
    static Tracer null_tracer(0);
    tracer_ = &null_tracer;
  }
  int n = fabric.num_nodes();
  dead_handled_.assign(static_cast<size_t>(n), 0);
  target_refs_.assign(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    qps_.push_back(fabric.CreateQp(i));
  }
}

void RepairManager::Tick(uint64_t now_ns) {
  if (now_ns < last_tick_ns_ + cfg_.min_interval_ns) {
    return;
  }
  last_tick_ns_ = now_ns;
  ScanForFailures(now_ns);
  uint64_t budget = cfg_.bytes_per_tick;
  while (budget > 0 && !jobs_.empty()) {
    uint64_t moved = DrainFront(now_ns, budget);
    if (moved == 0 && !jobs_.empty()) {
      break;  // Front job finished without moving bytes; avoid spinning.
    }
    budget = moved >= budget ? 0 : budget - moved;
  }
}

int RepairManager::PickTarget(const std::vector<int>& replicas) {
  int best = -1;
  bool best_spare = false;
  for (int n = 0; n < fabric_.num_nodes(); ++n) {
    NodeState s = router_.state(n);
    if (s != NodeState::kLive && s != NodeState::kRebuilding) {
      continue;  // Dead is out; suspect is too risky to adopt as a target.
    }
    bool in_set = false;
    for (int r : replicas) {
      if (r == n) {
        in_set = true;
        break;
      }
    }
    if (in_set) {
      continue;
    }
    bool spare = router_.is_spare(n);
    if (best < 0 || (spare && !best_spare) ||
        (spare == best_spare &&
         target_refs_[static_cast<size_t>(n)] < target_refs_[static_cast<size_t>(best)])) {
      best = n;
      best_spare = spare;
    }
  }
  return best;
}

void RepairManager::ScanForFailures(uint64_t now_ns) {
  for (int dead = 0; dead < fabric_.num_nodes(); ++dead) {
    if (router_.state(dead) != NodeState::kDead || dead_handled_[static_cast<size_t>(dead)]) {
      continue;
    }
    dead_handled_[static_cast<size_t>(dead)] = 1;
    for (uint64_t granule : router_.written_granules()) {
      uint64_t va = granule << kShardGranuleShift;
      router_.ReplicaNodes(va, &replica_scratch_);
      bool degraded = false;
      for (int n : replica_scratch_) {
        if (n == dead) {
          degraded = true;
          break;
        }
      }
      if (!degraded) {
        continue;
      }
      int target;
      if (router_.ec_enabled()) {
        // An EC rebuild target must stay off every node of the stripe —
        // co-locating two members would make one node failure a double
        // erasure — so exclude all k + m member nodes, not just this
        // granule's replica set.
        uint64_t stripe = router_.EcStripeOf(granule);
        ec_scratch_.clear();
        for (int j = 0; j < router_.ec().k + router_.ec().m; ++j) {
          ec_scratch_.push_back(router_.EcNode(stripe, j));
        }
        target = PickTarget(ec_scratch_);
      } else {
        target = PickTarget(replica_scratch_);
      }
      if (target < 0) {
        // No healthy node outside the replica set: the granule stays at
        // reduced redundancy until capacity returns.
        continue;
      }
      std::vector<int> replicas = replica_scratch_;
      for (int& n : replicas) {
        if (n == dead) {
          n = target;
        }
      }
      router_.BeginRebuild(granule, std::move(replicas), target);
      if (router_.is_spare(target) && router_.state(target) == NodeState::kLive) {
        router_.MarkRebuilding(target);  // Spare adopted: fills before serving.
      }
      ++target_refs_[static_cast<size_t>(target)];
      jobs_.push_back(Job{granule, target, 0});
      stats_.repairs_issued++;
      tracer_->Record(now_ns, TraceEvent::kRepairStart, va, static_cast<uint32_t>(target));
    }
  }
}

void RepairManager::OnNodeReadmitted(int node, uint64_t now_ns) {
  // Re-arm the death scan: the node may crash again after this readmission.
  dead_handled_[static_cast<size_t>(node)] = 0;
  size_t created = 0;
  for (uint64_t granule : router_.written_granules()) {
    uint64_t va = granule << kShardGranuleShift;
    router_.ReplicaNodes(va, &replica_scratch_);
    bool holds = false;
    for (int n : replica_scratch_) {
      if (n == node) {
        holds = true;
        break;
      }
    }
    if (!holds) {
      continue;  // The death scan remapped this granule off the node.
    }
    if (router_.RebuildTarget(granule) != -1) {
      continue;  // A crash-repair job already owns this granule.
    }
    // In-place rebuild: replica set unchanged, target is the node itself —
    // BeginRebuild's uncommitted target blocks reads from the stale copy
    // while surviving replicas (or EC decode) refill it. With R = 1 and no
    // EC there is no other holder: DrainFront finds no source, and the
    // commit amounts to trusting the stale store, same as the RecoverNode
    // oracle shim.
    router_.BeginRebuild(granule, replica_scratch_, node);
    ++target_refs_[static_cast<size_t>(node)];
    jobs_.push_back(Job{granule, node, 0});
    stats_.repairs_issued++;
    tracer_->Record(now_ns, TraceEvent::kRepairStart, va, static_cast<uint32_t>(node));
    ++created;
  }
  if (created == 0 && target_refs_[static_cast<size_t>(node)] == 0 &&
      router_.state(node) == NodeState::kRebuilding) {
    // Nothing it holds was ever written remotely: nothing can be stale.
    router_.MarkLive(node);
  }
}

uint64_t RepairManager::DrainFront(uint64_t now_ns, uint64_t budget) {
  Job& job = jobs_.front();
  uint64_t granule_base = job.granule << kShardGranuleShift;
  if (cursor_ns_ < now_ns) {
    cursor_ns_ = now_ns;
  }

  auto retire = [&](bool committed) {
    int target = job.target;
    if (committed) {
      router_.CommitRebuild(job.granule);
      stats_.repair_granules++;
      tracer_->Record(cursor_ns_, TraceEvent::kRepairDone, granule_base,
                      static_cast<uint32_t>(target));
    }
    if (target_refs_[static_cast<size_t>(target)] > 0 &&
        --target_refs_[static_cast<size_t>(target)] == 0 &&
        router_.state(target) == NodeState::kRebuilding) {
      router_.MarkLive(target);  // Spare fully adopted.
    }
    jobs_.pop_front();
  };

  // The target itself died, or this job was superseded by a re-plan after a
  // second failure: drop it, the new job carries the work.
  if (router_.state(job.target) == NodeState::kDead ||
      router_.RebuildTarget(job.granule) != job.target) {
    retire(/*committed=*/false);
    return 0;
  }

  uint64_t moved = 0;
  while (job.next_page < kPagesPerGranule && moved < budget) {
    uint64_t page_va = granule_base + static_cast<uint64_t>(job.next_page) * kPageSize;
    ++job.next_page;
    router_.ReplicaNodes(page_va, &replica_scratch_);
    // Source: a readable replica that actually holds the page. A page no
    // surviving replica materialized was never cleaned anywhere remote
    // (its content is local or all-zero) — nothing to copy.
    int src = -1;
    for (int n : replica_scratch_) {
      if (n == job.target || !router_.Readable(n, job.granule)) {
        continue;
      }
      if (fabric_.node(n).store().Materialized(page_va >> kPageShift)) {
        src = n;
        break;
      }
    }
    uint64_t page_bytes = 0;
    if (src >= 0) {
      Completion rc = detector_.ReadWithRetry(qps_[static_cast<size_t>(src)], src,
                                              reinterpret_cast<uint64_t>(buf_), page_va,
                                              kPageSize, &cursor_ns_);
      if (rc.status != WcStatus::kSuccess) {
        stats_.repair_pages_lost++;  // Source died mid-copy; no other holder.
        continue;
      }
      page_bytes = 2ULL * kPageSize;  // Source read + target write.
    } else if (router_.ec_enabled() && router_.ec().m > 0) {
      // EC: the lost member's single copy is gone — regenerate the page by
      // decoding k surviving stripe members (rebuild-from-parity). Pages no
      // survivor materialized decode to zeros; skip them so the target's
      // store stays a capacity-honest image of what was actually written.
      uint64_t stripe = router_.EcStripeOf(job.granule);
      int member = router_.EcMemberOf(job.granule);
      uint32_t page_idx = job.next_page - 1;
      bool any = false;
      for (int j = 0; j < router_.ec().k + router_.ec().m && !any; ++j) {
        if (j == member || !router_.EcMemberReadable(stripe, j)) {
          continue;
        }
        uint64_t member_page = router_.EcMemberPageVa(stripe, j, page_idx) >> kPageShift;
        any = fabric_.node(router_.EcNode(stripe, j)).store().Materialized(member_page);
      }
      if (!any) {
        continue;
      }
      if (!EcReconstructPage(router_, fabric_.cost(), /*core=*/0, CommChannel::kManager,
                             stripe, member, page_idx, buf_, &cursor_ns_, &wr_id_, stats_,
                             tracer_)) {
        stats_.repair_pages_lost++;  // Fewer than k survivors remain.
        continue;
      }
      page_bytes = static_cast<uint64_t>(router_.ec().k + 1) * kPageSize;
    } else {
      continue;
    }
    Completion wc = qps_[static_cast<size_t>(job.target)]->PostWrite(
        0, reinterpret_cast<uint64_t>(buf_), page_va, kPageSize, cursor_ns_);
    cursor_ns_ = wc.completion_time_ns;
    if (wc.status != WcStatus::kSuccess) {
      detector_.OnOpTimeout(job.target, cursor_ns_);
      return moved;  // Target is failing; its death retires the job above.
    }
    stats_.repair_pages++;
    stats_.repair_bytes += page_bytes;
    moved += page_bytes;
  }
  if (job.next_page >= kPagesPerGranule) {
    retire(/*committed=*/true);
  }
  return moved;
}

}  // namespace dilos
