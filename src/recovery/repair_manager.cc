#include "src/recovery/repair_manager.h"

namespace dilos {

RepairManager::RepairManager(Fabric& fabric, ShardRouter& router, FailureDetector& detector,
                             RuntimeStats& stats, Tracer* tracer, RepairConfig cfg)
    : fabric_(fabric),
      router_(router),
      detector_(detector),
      stats_(stats),
      tracer_(tracer),
      cfg_(cfg) {
  if (tracer_ == nullptr) {
    static Tracer null_tracer(0);
    tracer_ = &null_tracer;
  }
  int n = fabric.num_nodes();
  dead_handled_.assign(static_cast<size_t>(n), 0);
  target_refs_.assign(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    qps_.push_back(fabric.CreateQp(i));
  }
}

void RepairManager::Tick(uint64_t now_ns) {
  if (now_ns < last_tick_ns_ + cfg_.min_interval_ns) {
    return;
  }
  last_tick_ns_ = now_ns;
  ScanForFailures(now_ns);
  uint64_t budget = cfg_.bytes_per_tick;
  while (budget > 0 && !jobs_.empty()) {
    uint64_t moved = DrainFront(now_ns, budget);
    if (moved == 0 && !jobs_.empty()) {
      break;  // Front job finished without moving bytes; avoid spinning.
    }
    budget = moved >= budget ? 0 : budget - moved;
  }
}

int RepairManager::PickTarget(const std::vector<int>& replicas) {
  int best = -1;
  bool best_spare = false;
  for (int n = 0; n < fabric_.num_nodes(); ++n) {
    NodeState s = router_.state(n);
    if (s != NodeState::kLive && s != NodeState::kRebuilding) {
      continue;  // Dead is out; suspect is too risky to adopt as a target.
    }
    bool in_set = false;
    for (int r : replicas) {
      if (r == n) {
        in_set = true;
        break;
      }
    }
    if (in_set) {
      continue;
    }
    bool spare = router_.is_spare(n);
    if (best < 0 || (spare && !best_spare) ||
        (spare == best_spare &&
         target_refs_[static_cast<size_t>(n)] < target_refs_[static_cast<size_t>(best)])) {
      best = n;
      best_spare = spare;
    }
  }
  return best;
}

void RepairManager::ScanForFailures(uint64_t now_ns) {
  for (int dead = 0; dead < fabric_.num_nodes(); ++dead) {
    if (router_.state(dead) != NodeState::kDead || dead_handled_[static_cast<size_t>(dead)]) {
      continue;
    }
    dead_handled_[static_cast<size_t>(dead)] = 1;
    for (uint64_t granule : router_.written_granules()) {
      uint64_t va = granule << kShardGranuleShift;
      router_.ReplicaNodes(va, &replica_scratch_);
      bool degraded = false;
      for (int n : replica_scratch_) {
        if (n == dead) {
          degraded = true;
          break;
        }
      }
      if (!degraded) {
        continue;
      }
      int target = PickTarget(replica_scratch_);
      if (target < 0) {
        // No healthy node outside the replica set: the granule stays at
        // reduced redundancy until capacity returns.
        continue;
      }
      std::vector<int> replicas = replica_scratch_;
      for (int& n : replicas) {
        if (n == dead) {
          n = target;
        }
      }
      router_.BeginRebuild(granule, std::move(replicas), target);
      if (router_.is_spare(target) && router_.state(target) == NodeState::kLive) {
        router_.MarkRebuilding(target);  // Spare adopted: fills before serving.
      }
      ++target_refs_[static_cast<size_t>(target)];
      jobs_.push_back(Job{granule, target, 0});
      stats_.repairs_issued++;
      tracer_->Record(now_ns, TraceEvent::kRepairStart, va, static_cast<uint32_t>(target));
    }
  }
}

uint64_t RepairManager::DrainFront(uint64_t now_ns, uint64_t budget) {
  Job& job = jobs_.front();
  uint64_t granule_base = job.granule << kShardGranuleShift;
  if (cursor_ns_ < now_ns) {
    cursor_ns_ = now_ns;
  }

  auto retire = [&](bool committed) {
    int target = job.target;
    if (committed) {
      router_.CommitRebuild(job.granule);
      stats_.repair_granules++;
      tracer_->Record(cursor_ns_, TraceEvent::kRepairDone, granule_base,
                      static_cast<uint32_t>(target));
    }
    if (target_refs_[static_cast<size_t>(target)] > 0 &&
        --target_refs_[static_cast<size_t>(target)] == 0 &&
        router_.state(target) == NodeState::kRebuilding) {
      router_.MarkLive(target);  // Spare fully adopted.
    }
    jobs_.pop_front();
  };

  // The target itself died, or this job was superseded by a re-plan after a
  // second failure: drop it, the new job carries the work.
  if (router_.state(job.target) == NodeState::kDead ||
      router_.RebuildTarget(job.granule) != job.target) {
    retire(/*committed=*/false);
    return 0;
  }

  uint64_t moved = 0;
  while (job.next_page < kPagesPerGranule && moved < budget) {
    uint64_t page_va = granule_base + static_cast<uint64_t>(job.next_page) * kPageSize;
    ++job.next_page;
    router_.ReplicaNodes(page_va, &replica_scratch_);
    // Source: a readable replica that actually holds the page. A page no
    // surviving replica materialized was never cleaned anywhere remote
    // (its content is local or all-zero) — nothing to copy.
    int src = -1;
    for (int n : replica_scratch_) {
      if (n == job.target || !router_.Readable(n, job.granule)) {
        continue;
      }
      if (fabric_.node(n).store().Materialized(page_va >> kPageShift)) {
        src = n;
        break;
      }
    }
    if (src < 0) {
      continue;
    }
    Completion rc = detector_.ReadWithRetry(qps_[static_cast<size_t>(src)], src,
                                            reinterpret_cast<uint64_t>(buf_), page_va,
                                            kPageSize, &cursor_ns_);
    if (rc.status != WcStatus::kSuccess) {
      stats_.repair_pages_lost++;  // Source died mid-copy; no other holder.
      continue;
    }
    Completion wc = qps_[static_cast<size_t>(job.target)]->PostWrite(
        0, reinterpret_cast<uint64_t>(buf_), page_va, kPageSize, cursor_ns_);
    cursor_ns_ = wc.completion_time_ns;
    if (wc.status != WcStatus::kSuccess) {
      detector_.OnOpTimeout(job.target, cursor_ns_);
      return moved;  // Target is failing; its death retires the job above.
    }
    stats_.repair_pages++;
    stats_.repair_bytes += 2ULL * kPageSize;
    moved += 2ULL * kPageSize;
  }
  if (job.next_page >= kPagesPerGranule) {
    retire(/*committed=*/true);
  }
  return moved;
}

}  // namespace dilos
