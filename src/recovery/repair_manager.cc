#include "src/recovery/repair_manager.h"

#include "src/recovery/ec_read.h"
#include "src/recovery/integrity.h"

namespace dilos {

RepairManager::RepairManager(Fabric& fabric, ShardRouter& router, FailureDetector& detector,
                             RuntimeStats& stats, Tracer* tracer, RepairConfig cfg)
    : fabric_(fabric),
      router_(router),
      detector_(detector),
      stats_(stats),
      tracer_(tracer),
      cfg_(cfg) {
  if (tracer_ == nullptr) {
    static Tracer null_tracer(0);
    tracer_ = &null_tracer;
  }
  int n = fabric.num_nodes();
  dead_handled_.assign(static_cast<size_t>(n), 0);
  target_refs_.assign(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    qps_.push_back(fabric.CreateQp(i, QpClass::kRepair));
  }
}

void RepairManager::Tick(uint64_t now_ns) {
  // Repair acts on deaths the detector may have witnessed on a cursor that
  // runs ahead of the clock driving this tick (a demand-path timeout storm):
  // clamp to the detector's horizon so copy reads are never posted at a time
  // *before* the failure they react to — a read posted "in the past" would
  // slip behind the fault window and fetch from a node that is down now.
  if (detector_.latest_ns() > now_ns) {
    now_ns = detector_.latest_ns();
  }
  if (now_ns < last_tick_ns_ + cfg_.min_interval_ns) {
    return;
  }
  last_tick_ns_ = now_ns;
  ScanForFailures(now_ns);
  ProcessDeferred(now_ns);
  uint64_t budget = cfg_.bytes_per_tick;
  while (budget > 0 && !jobs_.empty()) {
    uint64_t moved = DrainFront(now_ns, budget);
    if (moved == 0 && !jobs_.empty()) {
      break;  // Front job finished without moving bytes; avoid spinning.
    }
    budget = moved >= budget ? 0 : budget - moved;
  }
}

int RepairManager::PickTarget(const std::vector<int>& replicas) {
  int best = -1;
  bool best_spare = false;
  for (int n = 0; n < fabric_.num_nodes(); ++n) {
    NodeState s = router_.state(n);
    if (s != NodeState::kLive && s != NodeState::kRebuilding) {
      continue;  // Dead is out; suspect is too risky to adopt as a target.
    }
    bool in_set = false;
    for (int r : replicas) {
      if (r == n) {
        in_set = true;
        break;
      }
    }
    if (in_set) {
      continue;
    }
    bool spare = router_.is_spare(n);
    // Ordering: spares first, then fewest in-flight rebuilds, then (with a
    // metrics registry installed) the least-loaded node by observed fabric
    // traffic — so back-to-back failures don't pile every rebuild onto the
    // same already-hot node.
    bool better = best < 0 || (spare && !best_spare);
    if (!better && spare == best_spare) {
      uint32_t rn = target_refs_[static_cast<size_t>(n)];
      uint32_t rb = target_refs_[static_cast<size_t>(best)];
      better = rn != rb ? rn < rb : LessLoaded(n, best);
    }
    if (better) {
      best = n;
      best_spare = spare;
    }
  }
  return best;
}

bool RepairManager::LessLoaded(int a, int b) const {
  if (metrics_ == nullptr) {
    return false;  // No signal: keep the incumbent (lowest node id wins).
  }
  QpMetrics ma = metrics_->NodeTotal(a);
  QpMetrics mb = metrics_->NodeTotal(b);
  if (ma.bytes() != mb.bytes()) {
    return ma.bytes() < mb.bytes();
  }
  return ma.rtt.Percentile(99) < mb.rtt.Percentile(99);
}

void RepairManager::ScanForFailures(uint64_t now_ns) {
  for (int dead = 0; dead < fabric_.num_nodes(); ++dead) {
    if (router_.state(dead) != NodeState::kDead || dead_handled_[static_cast<size_t>(dead)]) {
      continue;
    }
    dead_handled_[static_cast<size_t>(dead)] = 1;
    for (uint64_t granule : router_.written_granules()) {
      uint64_t va = granule << kShardGranuleShift;
      router_.ReplicaNodes(va, &replica_scratch_);
      bool degraded = false;
      for (int n : replica_scratch_) {
        if (n == dead) {
          degraded = true;
          break;
        }
      }
      if (!degraded) {
        continue;
      }
      int pending = router_.RebuildTarget(granule);
      if (pending != -1 && pending != dead &&
          router_.state(pending) != NodeState::kDead) {
        // A fill (repair or migration) is already running toward a live
        // target. Re-planning with a fresh target here would retire that
        // job via its superseded check and leave the hollow old target in
        // the replica set as a *readable* replica — data loss despite a
        // fresh survivor. Drop the dead node from the set instead and let
        // the in-flight fill finish; the granule is re-checked for lost
        // redundancy once it settles (ProcessDeferred).
        router_.RemoveReplica(granule, dead);
        deferred_.push_back(granule);
        continue;
      }
      int target;
      if (router_.ec_enabled()) {
        // An EC rebuild target must stay off every node of the stripe —
        // co-locating two members would make one node failure a double
        // erasure — so exclude all k + m member nodes, not just this
        // granule's replica set.
        uint64_t stripe = router_.EcStripeOf(granule);
        ec_scratch_.clear();
        for (int j = 0; j < router_.ec().k + router_.ec().m; ++j) {
          ec_scratch_.push_back(router_.EcNode(stripe, j));
        }
        target = PickTarget(ec_scratch_);
        if (target < 0) {
          // Small-fabric fallback: every healthy node already holds a member
          // of this stripe (e.g. a (4,2) stripe over 6 nodes — strict spread
          // is pigeonhole-impossible after one death). Allow bounded
          // co-location: place on the node holding the fewest members, as
          // long as losing that node afterwards (colocated + 1 erasures)
          // stays within the parity arm's budget of m. Without this the
          // stripe stays degraded forever.
          int best = -1;
          int best_c = 0;
          for (int n = 0; n < fabric_.num_nodes(); ++n) {
            NodeState s = router_.state(n);
            if (s != NodeState::kLive && s != NodeState::kRebuilding) {
              continue;
            }
            int c = router_.EcMembersOnNode(stripe, n);
            if (c + 1 > router_.ec().m) {
              continue;
            }
            if (best < 0 || c < best_c ||
                (c == best_c && target_refs_[static_cast<size_t>(n)] <
                                    target_refs_[static_cast<size_t>(best)])) {
              best = n;
              best_c = c;
            }
          }
          if (best >= 0) {
            target = best;
            stats_.ec_colocated_placements++;
            tracer_->Record(now_ns, TraceEvent::kEcCoLocated, va,
                            static_cast<uint32_t>(target));
          }
        }
      } else {
        target = PickTarget(replica_scratch_);
      }
      if (target < 0) {
        // No healthy node outside the replica set: the granule stays at
        // reduced redundancy until capacity returns. Counted and traced so
        // operators can see redundancy that silently failed to recover.
        stats_.repair_no_target++;
        tracer_->Record(now_ns, TraceEvent::kRepairNoTarget, va,
                        static_cast<uint32_t>(dead));
        continue;
      }
      std::vector<int> replicas = replica_scratch_;
      for (int& n : replicas) {
        if (n == dead) {
          n = target;
        }
      }
      router_.BeginRebuild(granule, std::move(replicas), target);
      if (router_.is_spare(target) && router_.state(target) == NodeState::kLive) {
        router_.MarkRebuilding(target);  // Spare adopted: fills before serving.
      }
      ++target_refs_[static_cast<size_t>(target)];
      jobs_.push_back(Job{granule, target, 0});
      stats_.repairs_issued++;
      tracer_->Record(now_ns, TraceEvent::kRepairStart, va, static_cast<uint32_t>(target));
    }
  }
}

void RepairManager::ProcessDeferred(uint64_t now_ns) {
  for (size_t i = 0; i < deferred_.size();) {
    uint64_t granule = deferred_[i];
    if (router_.RebuildTarget(granule) != -1 || router_.Forwarding(granule) != nullptr) {
      ++i;  // The fill (or its forwarding window) is still in flight.
      continue;
    }
    uint64_t va = granule << kShardGranuleShift;
    router_.ReplicaNodes(va, &replica_scratch_);
    // EC granules carry a single copy, so the settled fill already restored
    // them; only replication-mode granules can come out short a replica.
    if (!router_.ec_enabled() &&
        static_cast<int>(replica_scratch_.size()) < router_.replication()) {
      int target = PickTarget(replica_scratch_);
      if (target < 0) {
        stats_.repair_no_target++;
        tracer_->Record(now_ns, TraceEvent::kRepairNoTarget, va, /*detail=*/0);
      } else {
        std::vector<int> replicas = replica_scratch_;
        replicas.push_back(target);
        router_.BeginRebuild(granule, std::move(replicas), target);
        if (router_.is_spare(target) && router_.state(target) == NodeState::kLive) {
          router_.MarkRebuilding(target);
        }
        ++target_refs_[static_cast<size_t>(target)];
        jobs_.push_back(Job{granule, target, 0});
        stats_.repairs_issued++;
        tracer_->Record(now_ns, TraceEvent::kRepairStart, va,
                        static_cast<uint32_t>(target));
      }
    }
    deferred_.erase(deferred_.begin() + static_cast<ptrdiff_t>(i));
  }
}

void RepairManager::OnNodeReadmitted(int node, uint64_t now_ns) {
  // Re-arm the death scan: the node may crash again after this readmission.
  dead_handled_[static_cast<size_t>(node)] = 0;
  size_t created = 0;
  for (uint64_t granule : router_.written_granules()) {
    uint64_t va = granule << kShardGranuleShift;
    router_.ReplicaNodes(va, &replica_scratch_);
    bool holds = false;
    for (int n : replica_scratch_) {
      if (n == node) {
        holds = true;
        break;
      }
    }
    if (!holds) {
      // The death scan remapped this granule off the node, but its store may
      // still hold the orphaned copy. Reconcile it against the live replica
      // set: a copy where every cleaned page is present, checksum-verified,
      // and generation-fresh is merged back as a replica — redundancy
      // returns without a single page moving — while anything less is
      // dropped so a stale orphan can never serve reads later. (EC granules
      // have exactly one placement slot, EcNode = replicas[0]; a merged
      // extra copy would never be read, so EC orphans are always dropped.)
      PageStore& store = fabric_.node(node).store();
      bool any = false;
      bool fresh = true;
      for (uint32_t p = 0; p < kPagesPerGranule; ++p) {
        uint64_t page_va = va + static_cast<uint64_t>(p) * kPageSize;
        uint64_t page = page_va >> kPageShift;
        if (store.Materialized(page)) {
          any = true;
          if (!store.HasChecksum(page) ||
              !VerifyPageBytes(store, page_va, store.PageData(page)) ||
              PageIsStale(store, page_va, router_.PageGeneration(page_va))) {
            fresh = false;
          }
        } else if (router_.PageGeneration(page_va) != 0) {
          fresh = false;  // A cleaned page the orphan never received.
        }
      }
      if (!any) {
        continue;
      }
      if (fresh && !router_.ec_enabled() &&
          router_.LiveReplicaCount(va) < router_.replication()) {
        router_.MergeReplica(granule, node);
        stats_.readmit_copies_merged++;
        tracer_->Record(now_ns, TraceEvent::kReadmitMerge, va,
                        static_cast<uint32_t>(node));
      } else {
        for (uint32_t p = 0; p < kPagesPerGranule; ++p) {
          store.Drop((va + static_cast<uint64_t>(p) * kPageSize) >> kPageShift);
        }
        stats_.readmit_orphans_dropped++;
        tracer_->Record(now_ns, TraceEvent::kReadmitOrphanDrop, va,
                        static_cast<uint32_t>(node));
      }
      continue;
    }
    int pending = router_.RebuildTarget(granule);
    if (pending != -1) {
      if (router_.MigratingSource(granule) != -1) {
        // A migration fill owns this granule: its coordinator re-adopts it
        // (MigrationManager::Restart / its live job) — repair re-queueing
        // the same target would double-drive the copy and double-commit.
        continue;
      }
      // A rebuild of this granule is already tracked in the router. If a
      // queued job still drives it, leave it alone. Otherwise the job was
      // retired while its target was (briefly) dead — the death and the
      // readmission both landed between two repair ticks, so the death scan
      // never saw the episode — and the granule would be orphaned
      // mid-rebuild: target never committed, hence never readable, with no
      // job left to finish the fill. Re-queue the fill for the pending
      // target; a target that is dead right now re-owns it at its own
      // readmission instead.
      if (HasJob(granule) || router_.state(pending) == NodeState::kDead) {
        continue;
      }
      jobs_.push_back(Job{granule, pending, 0});
      ++target_refs_[static_cast<size_t>(pending)];
      stats_.repairs_issued++;
      tracer_->Record(now_ns, TraceEvent::kRepairStart, va,
                      static_cast<uint32_t>(pending));
      ++created;
      continue;
    }
    // In-place rebuild: replica set unchanged, target is the node itself —
    // BeginRebuild's uncommitted target blocks reads from the stale copy
    // while surviving replicas (or EC decode) refill it. With R = 1 and no
    // EC there is no other holder: DrainFront finds no source, and the
    // commit amounts to trusting the stale store, same as the RecoverNode
    // oracle shim.
    router_.BeginRebuild(granule, replica_scratch_, node);
    ++target_refs_[static_cast<size_t>(node)];
    jobs_.push_back(Job{granule, node, 0});
    stats_.repairs_issued++;
    tracer_->Record(now_ns, TraceEvent::kRepairStart, va, static_cast<uint32_t>(node));
    ++created;
  }
  if (created == 0 && target_refs_[static_cast<size_t>(node)] == 0 &&
      router_.state(node) == NodeState::kRebuilding) {
    // Nothing it holds was ever written remotely: nothing can be stale.
    router_.MarkLive(node);
  }
}

uint64_t RepairManager::DrainFront(uint64_t now_ns, uint64_t budget) {
  Job& job = jobs_.front();
  uint64_t granule_base = job.granule << kShardGranuleShift;
  if (cursor_ns_ < now_ns) {
    cursor_ns_ = now_ns;
  }

  auto retire = [&](bool committed) {
    int target = job.target;
    if (committed) {
      router_.CommitRebuild(job.granule);
      stats_.repair_granules++;
      tracer_->Record(cursor_ns_, TraceEvent::kRepairDone, granule_base,
                      static_cast<uint32_t>(target));
    }
    if (target_refs_[static_cast<size_t>(target)] > 0 &&
        --target_refs_[static_cast<size_t>(target)] == 0 &&
        router_.state(target) == NodeState::kRebuilding) {
      router_.MarkLive(target);  // Spare fully adopted.
    }
    jobs_.pop_front();
  };

  // The target itself died, or this job was superseded by a re-plan after a
  // second failure: drop it, the new job carries the work.
  if (router_.state(job.target) == NodeState::kDead ||
      router_.RebuildTarget(job.granule) != job.target) {
    retire(/*committed=*/false);
    return 0;
  }

  size_t depth = cfg_.pipeline_depth == 0 ? 1 : cfg_.pipeline_depth;
  uint64_t moved = 0;
  bool stalled = false;
  while (!stalled && job.next_page < kPagesPerGranule && moved < budget) {
    // Fill a window of up to `depth` source reads, all issued at the same
    // cursor: their fabric latencies overlap, and the target writes below
    // overlap the rest of the window's reads — with depth == 1 this
    // degenerates to the serial read-then-write copy loop.
    flights_.clear();
    uint64_t issue = cursor_ns_;
    uint64_t window_done = cursor_ns_;
    uint64_t window_bytes = 0;
    while (job.next_page < kPagesPerGranule && flights_.size() < depth &&
           moved + window_bytes < budget) {
      uint64_t page_va = granule_base + static_cast<uint64_t>(job.next_page) * kPageSize;
      uint32_t page_idx = job.next_page;
      ++job.next_page;
      router_.ReplicaNodes(page_va, &replica_scratch_);
      Flight f;
      f.page_va = page_va;
      f.buf.resize(kPageSize);
      bool have = false;
      bool had_source = false;
      uint64_t fcursor = issue;
      // Source: a readable replica that actually holds the page, whose
      // arrival verifies against its stored checksum (one re-read covers a
      // wire flip; a second mismatch moves on to the next replica). A page
      // no surviving replica materialized was never cleaned anywhere remote
      // (its content is local or all-zero) — nothing to copy. Sources rank
      // by trustworthiness — pass 0: checksummed and generation-fresh;
      // pass 1: checksummed but generation-lagged (missed a write-back
      // round); pass 2: unverifiable. The copy that lands on the target
      // gets fresh metadata, so preferring a fresh source keeps a laggard
      // replica's stale bytes from being laundered into verified-current
      // state — while a stale copy still beats losing the page outright
      // when it is the last one standing (its lagging generation travels
      // with it, so readers keep seeing it for what it is).
      for (int pass = 0; pass < 3 && !have; ++pass) {
        for (int n : replica_scratch_) {
          if (have) {
            break;
          }
          if (n == job.target || !router_.Readable(n, job.granule)) {
            continue;
          }
          const PageStore& nstore = fabric_.node(n).store();
          if (!nstore.Materialized(page_va >> kPageShift)) {
            continue;
          }
          int rank = 2;
          if (nstore.HasChecksum(page_va >> kPageShift)) {
            rank = PageIsStale(nstore, page_va, router_.PageGeneration(page_va)) ? 1 : 0;
          }
          if (rank != pass) {
            continue;
          }
          had_source = true;
          for (int attempt = 0; attempt < 2 && !have; ++attempt) {
            Completion rc = qps_[static_cast<size_t>(n)]->PostRead(
                ++wr_id_, reinterpret_cast<uint64_t>(f.buf.data()), page_va, kPageSize,
                fcursor);
            if (rc.status != WcStatus::kSuccess) {
              detector_.OnOpTimeout(n, rc.completion_time_ns);
              fcursor = rc.completion_time_ns;
              break;  // Next replica.
            }
            if (VerifyPageBytes(fabric_.node(n).store(), page_va, f.buf.data())) {
              have = true;
              f.ready_ns = rc.completion_time_ns;
              f.bytes = 2ULL * kPageSize;  // Source read + target write.
              f.gen = nstore.Generation(page_va >> kPageShift);
            } else {
              stats_.checksum_mismatches++;
              stats_.refetches++;
              tracer_->Record(rc.completion_time_ns, TraceEvent::kChecksumMismatch, page_va,
                              /*detail=*/0);
              fcursor = rc.completion_time_ns;
            }
          }
        }
      }
      if (!have && router_.ec_enabled() && router_.ec().m > 0) {
        // EC: the lost member's single copy is gone — regenerate the page by
        // decoding k surviving stripe members (rebuild-from-parity). Pages no
        // survivor materialized decode to zeros; skip them so the target's
        // store stays a capacity-honest image of what was actually written.
        uint64_t stripe = router_.EcStripeOf(job.granule);
        int member = router_.EcMemberOf(job.granule);
        bool any = false;
        for (int j = 0; j < router_.ec().k + router_.ec().m && !any; ++j) {
          if (j == member || !router_.EcMemberReadable(stripe, j)) {
            continue;
          }
          uint64_t member_page = router_.EcMemberPageVa(stripe, j, page_idx) >> kPageShift;
          any = fabric_.node(router_.EcNode(stripe, j)).store().Materialized(member_page);
        }
        if (any) {
          had_source = true;
          if (EcReconstructPage(router_, fabric_.cost(), /*core=*/0, CommChannel::kManager,
                                stripe, member, page_idx, f.buf.data(), &fcursor, &wr_id_,
                                stats_, tracer_)) {
            have = true;
            f.ready_ns = fcursor;
            f.bytes = static_cast<uint64_t>(router_.ec().k + 1) * kPageSize;
            // A decode of fresh survivors yields the current content.
            f.gen = router_.PageGeneration(page_va);
          }
        }
      }
      if (fcursor > window_done) {
        window_done = fcursor;
      }
      if (!have) {
        if (had_source) {
          // A holder exists but no read yielded verified bytes — a source
          // timeout or repeated wire flips, both transient. Skipping here
          // would *commit the rebuild with this page missing*: if the holder
          // later dies, a sole-copy page becomes permanently unreachable
          // even though no two faults ever overlapped. Stall instead: rewind
          // to this page and retry on a later tick, bounded so persistent
          // rot on every readable holder cannot wedge the job.
          if (job.stalls < cfg_.max_page_stalls) {
            ++job.stalls;
            job.next_page = page_idx;
            stalled = true;
            break;
          }
          stats_.repair_pages_lost++;  // Stall budget spent: bytes are gone.
        }
        continue;
      }
      window_bytes += f.bytes;
      flights_.push_back(std::move(f));
    }
    // Drain: checked write of each verified page to the target, issued as
    // its source read completes (not after the whole window returns).
    for (Flight& f : flights_) {
      Completion wc = WritePageChecked(qps_[static_cast<size_t>(job.target)],
                                       fabric_.node(job.target).store(), f.page_va,
                                       f.buf.data(), f.ready_ns, &wr_id_, stats_, tracer_,
                                       f.gen);
      if (wc.completion_time_ns > window_done) {
        window_done = wc.completion_time_ns;
      }
      if (wc.status != WcStatus::kSuccess) {
        detector_.OnOpTimeout(job.target, wc.completion_time_ns);
        cursor_ns_ = window_done;
        // Rewind past the failed write: `next_page` already advanced over
        // this whole window, and returning without rewinding would commit
        // the rebuild with every unwritten page of the window missing once
        // the target blip clears. A genuinely dead target still retires the
        // job via the state check above.
        job.next_page = static_cast<uint32_t>((f.page_va - granule_base) >> kPageShift);
        return moved;
      }
      job.stalls = 0;  // Progress refills the stall budget.
      stats_.repair_pages++;
      stats_.repair_bytes += f.bytes;
      moved += f.bytes;
    }
    cursor_ns_ = window_done;
  }
  if (stalled) {
    // Rotate the stalled job to the back so one unreadable source doesn't
    // head-of-line block every other granule's rebuild.
    Job j = job;
    jobs_.pop_front();
    jobs_.push_back(j);
    return moved;
  }
  if (job.next_page >= kPagesPerGranule) {
    retire(/*committed=*/true);
  }
  return moved;
}

}  // namespace dilos
