#include "src/recovery/failure_detector.h"

namespace dilos {

FailureDetector::FailureDetector(Fabric& fabric, ShardRouter& router, RuntimeStats& stats,
                                 Tracer* tracer, FailureDetectorConfig cfg)
    : fabric_(fabric), router_(router), stats_(stats), tracer_(tracer), cfg_(cfg) {
  if (tracer_ == nullptr) {
    static Tracer null_tracer(0);
    tracer_ = &null_tracer;
  }
  int n = fabric.num_nodes();
  strikes_.assign(static_cast<size_t>(n), 0);
  lease_expiry_.assign(static_cast<size_t>(n), 0);
  rtt_ewma_.assign(static_cast<size_t>(n), 0.0);
  rtt_samples_.assign(static_cast<size_t>(n), 0);
  gray_.assign(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    probe_qps_.push_back(fabric.CreateQp(i, QpClass::kProbe));
  }
}

void FailureDetector::Tick(uint64_t now_ns) {
  now_ns = Witness(now_ns);
  if (now_ns >= next_probe_ns_) {
    ProbeAll(now_ns);
    next_probe_ns_ = now_ns + cfg_.probe_interval_ns;
  }
  // Lease check: a node whose lease lapsed without renewal is dead even if
  // no probe round happens to be due right now.
  for (int n = 0; n < fabric_.num_nodes(); ++n) {
    if (router_.state(n) == NodeState::kDead || router_.state(n) == NodeState::kRetired) {
      continue;
    }
    uint64_t expiry = lease_expiry_[static_cast<size_t>(n)];
    if (expiry != 0 && now_ns > expiry) {
      DeclareDead(n, now_ns);
    }
  }
}

void FailureDetector::ProbeAll(uint64_t now_ns) {
  for (int n = 0; n < fabric_.num_nodes(); ++n) {
    if (router_.state(n) == NodeState::kRetired) {
      continue;  // Administratively decommissioned: never probed or readmitted.
    }
    if (router_.state(n) == NodeState::kDead) {
      if (!cfg_.readmit) {
        continue;
      }
      // Dead nodes keep getting probed so a restarted node (Fabric::
      // RestoreNode) is noticed. One answered probe re-admits it; a missed
      // probe changes nothing (dead stays dead, no extra strikes).
      stats_.probes_sent++;
      Completion c = probe_qps_[static_cast<size_t>(n)]->PostRead(
          ++wr_id_, reinterpret_cast<uint64_t>(scratch_), kFarBase, 8, now_ns);
      if (c.status == WcStatus::kSuccess) {
        Readmit(n, c.completion_time_ns);
      }
      continue;
    }
    stats_.probes_sent++;
    Completion c = probe_qps_[static_cast<size_t>(n)]->PostRead(
        ++wr_id_, reinterpret_cast<uint64_t>(scratch_), kFarBase, 8, now_ns);
    if (c.status == WcStatus::kSuccess) {
      RenewLease(n, c.completion_time_ns);
      ObserveRtt(n, c.completion_time_ns - now_ns, c.completion_time_ns);
    } else {
      stats_.probe_misses++;
      tracer_->Record(c.completion_time_ns, TraceEvent::kProbeMiss, 0,
                      static_cast<uint32_t>(n));
      Strike(n, c.completion_time_ns);
    }
  }
}

void FailureDetector::OnOpTimeout(int node, uint64_t now_ns) {
  now_ns = Witness(now_ns);
  stats_.op_timeouts++;
  tracer_->Record(now_ns, TraceEvent::kOpTimeout, 0, static_cast<uint32_t>(node));
  Strike(node, now_ns);
}

void FailureDetector::OnOpSuccess(int node, uint64_t now_ns) {
  // Any completed op is as good as a heartbeat.
  RenewLease(node, Witness(now_ns));
}

void FailureDetector::RenewLease(int node, uint64_t now_ns) {
  if (router_.state(node) == NodeState::kDead) {
    return;  // Only an answered *probe* re-admits a dead node (Readmit).
  }
  lease_expiry_[static_cast<size_t>(node)] = now_ns + cfg_.lease_ns;
  strikes_[static_cast<size_t>(node)] = 0;
  if (router_.state(node) == NodeState::kSuspect && !gray(node)) {
    // False alarm (e.g. one lost op) — but a *gray* suspicion is about
    // latency, not reachability, and only the EWMA recovering clears it;
    // otherwise every slow-but-answered probe would undo the read steering.
    router_.MarkLive(node);
  }
}

void FailureDetector::ObserveRtt(int node, uint64_t rtt_ns, uint64_t now_ns) {
  if (!cfg_.gray_detection) {
    return;
  }
  size_t i = static_cast<size_t>(node);
  double& ewma = rtt_ewma_[i];
  ewma = rtt_samples_[i]++ == 0
             ? static_cast<double>(rtt_ns)
             : (1.0 - cfg_.gray_ewma_alpha) * ewma +
                   cfg_.gray_ewma_alpha * static_cast<double>(rtt_ns);
  if (baseline_rtt_ns_ == 0 || rtt_ns < baseline_rtt_ns_) {
    baseline_rtt_ns_ = rtt_ns;  // Fleet-wide healthy floor.
  }
  if (rtt_samples_[i] < cfg_.gray_min_samples) {
    return;
  }
  double base = static_cast<double>(baseline_rtt_ns_ < 1 ? 1 : baseline_rtt_ns_);
  if (gray_[i] == 0 && ewma > cfg_.gray_trip_factor * base) {
    gray_[i] = 1;
    stats_.gray_suspects++;
    router_.MarkSuspect(node);
    tracer_->Record(now_ns, TraceEvent::kGraySuspect, 0, static_cast<uint32_t>(node));
  } else if (gray_[i] != 0 && ewma < cfg_.gray_clear_factor * base) {
    gray_[i] = 0;
    if (router_.state(node) == NodeState::kSuspect && strikes_[i] == 0) {
      router_.MarkLive(node);
    }
    tracer_->Record(now_ns, TraceEvent::kGrayClear, 0, static_cast<uint32_t>(node));
  }
}

void FailureDetector::Strike(int node, uint64_t now_ns) {
  if (router_.state(node) == NodeState::kDead || router_.state(node) == NodeState::kRetired) {
    return;
  }
  uint32_t s = ++strikes_[static_cast<size_t>(node)];
  if (s >= cfg_.dead_after) {
    DeclareDead(node, now_ns);
  } else if (s >= cfg_.suspect_after && router_.state(node) == NodeState::kLive) {
    router_.MarkSuspect(node);
    tracer_->Record(now_ns, TraceEvent::kNodeSuspect, 0, static_cast<uint32_t>(node));
  }
}

void FailureDetector::DeclareDead(int node, uint64_t now_ns) {
  router_.MarkDead(node);
  stats_.nodes_failed++;
  tracer_->Record(now_ns, TraceEvent::kNodeDead, 0, static_cast<uint32_t>(node));
}

void FailureDetector::Readmit(int node, uint64_t now_ns) {
  // The node is reachable again but its store may have missed every
  // write-back since the crash: admit it for writes only (kRebuilding) and
  // let the repair manager decide per granule when it may serve reads again.
  router_.MarkRebuilding(node);
  strikes_[static_cast<size_t>(node)] = 0;
  lease_expiry_[static_cast<size_t>(node)] = now_ns + cfg_.lease_ns;
  stats_.nodes_readmitted++;
  tracer_->Record(now_ns, TraceEvent::kNodeReadmitted, 0, static_cast<uint32_t>(node));
  if (on_readmit_) {
    on_readmit_(node, now_ns);
  }
}

Completion FailureDetector::ReadWithRetry(QueuePair* qp, int node, uint64_t local_addr,
                                          uint64_t remote_addr, uint32_t len,
                                          uint64_t* cursor_ns) {
  Completion c{};
  for (uint32_t attempt = 0;; ++attempt) {
    c = qp->PostRead(++wr_id_, local_addr, remote_addr, len, *cursor_ns);
    *cursor_ns = c.completion_time_ns;
    if (c.status == WcStatus::kSuccess) {
      OnOpSuccess(node, c.completion_time_ns);
      return c;
    }
    OnOpTimeout(node, c.completion_time_ns);
    if (attempt >= cfg_.max_retries) {
      return c;
    }
    *cursor_ns += cfg_.backoff_base_ns << attempt;
  }
}

}  // namespace dilos
