// Failure detector for the multi-memory-node fabric (paper Sec. 5.1's
// replication extension, completed with the piece the paper leaves open:
// *detecting* node death instead of having a test declare it).
//
// Two evidence streams feed one per-node strike counter:
//
//  1. Lease/heartbeat probes. Each node gets a dedicated probe QP (never
//     head-of-line blocked behind app traffic, mirroring the per-module QP
//     design of Sec. 4.5). A successful 8-byte probe read renews the node's
//     lease; a timed-out probe is a strike. An expired lease is conclusive.
//  2. Per-operation timeouts. The fault handler, cleaner, and prefetcher
//     report ops that completed with WcStatus::kTimeout via
//     ShardRouter::ReportOpFailure; each report is a strike.
//
// Strikes move a node live -> suspect -> dead in the ShardRouter; a single
// successful probe or op resets them (suspect -> live). The detector also
// provides the bounded-retry-with-exponential-backoff read used by the
// repair manager's copy loop.
#ifndef DILOS_SRC_RECOVERY_FAILURE_DETECTOR_H_
#define DILOS_SRC_RECOVERY_FAILURE_DETECTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/dilos/shard.h"
#include "src/memnode/fabric.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace dilos {

struct FailureDetectorConfig {
  uint64_t probe_interval_ns = 20'000;  // Heartbeat period per node.
  uint64_t lease_ns = 120'000;          // Liveness lease renewed by each probe.
  uint32_t suspect_after = 1;           // Strikes before live -> suspect.
  uint32_t dead_after = 3;              // Strikes before -> dead.
  uint32_t max_retries = 3;             // Bounded retry for wrapped reads.
  uint64_t backoff_base_ns = 2'000;     // Exponential backoff: base << attempt.
  // Keep probing dead nodes; one answered probe re-admits the node as
  // kRebuilding (its store is stale until the repair manager refills it).
  bool readmit = true;
};

class FailureDetector {
 public:
  FailureDetector(Fabric& fabric, ShardRouter& router, RuntimeStats& stats, Tracer* tracer,
                  FailureDetectorConfig cfg = {});

  // Clock hook: runs a probe round when one is due and checks leases.
  // Driven from the same background hooks as the cleaner/reclaimer.
  void Tick(uint64_t now_ns);

  // Evidence from the data path (demand fetch, write-back, prefetch).
  void OnOpTimeout(int node, uint64_t now_ns);
  void OnOpSuccess(int node, uint64_t now_ns);

  // Bounded-retry read with exponential backoff on `qp` (connected to
  // `node`). `cursor_ns` is the caller's simulated-time cursor; it advances
  // past each completion and backoff wait. Returns the final completion.
  Completion ReadWithRetry(QueuePair* qp, int node, uint64_t local_addr, uint64_t remote_addr,
                           uint32_t len, uint64_t* cursor_ns);

  const FailureDetectorConfig& config() const { return cfg_; }

  // Called when a dead node answers a probe and is re-admitted as
  // kRebuilding — the repair manager subscribes to schedule the refill of
  // its (stale) granules.
  using ReadmitObserver = std::function<void(int node, uint64_t now_ns)>;
  void set_readmit_observer(ReadmitObserver cb) { on_readmit_ = std::move(cb); }

 private:
  void ProbeAll(uint64_t now_ns);
  void Strike(int node, uint64_t now_ns);
  void RenewLease(int node, uint64_t now_ns);
  void DeclareDead(int node, uint64_t now_ns);
  void Readmit(int node, uint64_t now_ns);

  Fabric& fabric_;
  ShardRouter& router_;
  RuntimeStats& stats_;
  Tracer* tracer_;
  FailureDetectorConfig cfg_;

  ReadmitObserver on_readmit_;
  std::vector<QueuePair*> probe_qps_;   // One dedicated QP per node.
  std::vector<uint32_t> strikes_;
  std::vector<uint64_t> lease_expiry_;  // 0 = no lease granted yet.
  uint64_t next_probe_ns_ = 0;
  uint64_t wr_id_ = 0;
  uint8_t scratch_[64] = {};
};

}  // namespace dilos

#endif  // DILOS_SRC_RECOVERY_FAILURE_DETECTOR_H_
