// Failure detector for the multi-memory-node fabric (paper Sec. 5.1's
// replication extension, completed with the piece the paper leaves open:
// *detecting* node death instead of having a test declare it).
//
// Two evidence streams feed one per-node strike counter:
//
//  1. Lease/heartbeat probes. Each node gets a dedicated probe QP (never
//     head-of-line blocked behind app traffic, mirroring the per-module QP
//     design of Sec. 4.5). A successful 8-byte probe read renews the node's
//     lease; a timed-out probe is a strike. An expired lease is conclusive.
//  2. Per-operation timeouts. The fault handler, cleaner, and prefetcher
//     report ops that completed with WcStatus::kTimeout via
//     ShardRouter::ReportOpFailure; each report is a strike.
//
// Strikes move a node live -> suspect -> dead in the ShardRouter; a single
// successful probe or op resets them (suspect -> live). The detector also
// provides the bounded-retry-with-exponential-backoff read used by the
// repair manager's copy loop.
#ifndef DILOS_SRC_RECOVERY_FAILURE_DETECTOR_H_
#define DILOS_SRC_RECOVERY_FAILURE_DETECTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/dilos/shard.h"
#include "src/memnode/fabric.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace dilos {

struct FailureDetectorConfig {
  uint64_t probe_interval_ns = 20'000;  // Heartbeat period per node.
  uint64_t lease_ns = 120'000;          // Liveness lease renewed by each probe.
  uint32_t suspect_after = 1;           // Strikes before live -> suspect.
  uint32_t dead_after = 3;              // Strikes before -> dead.
  uint32_t max_retries = 3;             // Bounded retry for wrapped reads.
  uint64_t backoff_base_ns = 2'000;     // Exponential backoff: base << attempt.
  // Keep probing dead nodes; one answered probe re-admits the node as
  // kRebuilding (its store is stale until the repair manager refills it).
  bool readmit = true;

  // -- Gray-failure (alive-but-slow) detection --------------------------------
  // Each answered probe's RTT feeds a per-node EWMA; the fleet-wide minimum
  // RTT ever observed is the healthy baseline (fleet-relative, so a node
  // that is slow from boot is still caught). A node whose EWMA exceeds
  // baseline * gray_trip_factor is marked suspect — demand reads steer to
  // replicas/EC survivors — but its answered probes keep renewing the lease,
  // so it is never declared dead. It returns to live only when the EWMA
  // drops back under baseline * gray_clear_factor (hysteresis).
  bool gray_detection = true;
  double gray_ewma_alpha = 0.3;    // Weight of the newest probe RTT.
  double gray_trip_factor = 4.0;   // EWMA > baseline * this => suspect.
  double gray_clear_factor = 2.0;  // EWMA < baseline * this => live again.
  uint32_t gray_min_samples = 3;   // Probe RTTs before the EWMA is trusted.
};

class FailureDetector {
 public:
  FailureDetector(Fabric& fabric, ShardRouter& router, RuntimeStats& stats, Tracer* tracer,
                  FailureDetectorConfig cfg = {});

  // Clock hook: runs a probe round when one is due and checks leases.
  // Driven from the same background hooks as the cleaner/reclaimer.
  void Tick(uint64_t now_ns);

  // Evidence from the data path (demand fetch, write-back, prefetch).
  void OnOpTimeout(int node, uint64_t now_ns);
  void OnOpSuccess(int node, uint64_t now_ns);

  // The detector's monotonic notion of now: the latest timestamp it has
  // witnessed from any stream (ticks, op evidence). The simulator runs
  // several time cursors, and during a timeout storm the demand cursor that
  // feeds OnOpTimeout races ahead of the core clock that drives Tick; all
  // liveness bookkeeping (probes, strikes, leases) uses this horizon so a
  // node declared dead at cursor time T is never probed "before" T.
  uint64_t latest_ns() const { return latest_ns_; }

  // Bounded-retry read with exponential backoff on `qp` (connected to
  // `node`). `cursor_ns` is the caller's simulated-time cursor; it advances
  // past each completion and backoff wait. Returns the final completion.
  Completion ReadWithRetry(QueuePair* qp, int node, uint64_t local_addr, uint64_t remote_addr,
                           uint32_t len, uint64_t* cursor_ns);

  const FailureDetectorConfig& config() const { return cfg_; }

  // Called when a dead node answers a probe and is re-admitted as
  // kRebuilding — the repair manager subscribes to schedule the refill of
  // its (stale) granules.
  using ReadmitObserver = std::function<void(int node, uint64_t now_ns)>;
  void set_readmit_observer(ReadmitObserver cb) { on_readmit_ = std::move(cb); }

  // Whether `node` is currently suspected for latency (gray), as opposed to
  // strikes. Gray suspicion is not cleared by successful ops — only by the
  // EWMA recovering.
  bool gray(int node) const { return gray_[static_cast<size_t>(node)] != 0; }
  double rtt_ewma_ns(int node) const { return rtt_ewma_[static_cast<size_t>(node)]; }

 private:
  // Folds a witnessed timestamp into the horizon and returns the clamped
  // (never-rewinding) time every liveness decision is made at.
  uint64_t Witness(uint64_t now_ns) {
    if (now_ns > latest_ns_) {
      latest_ns_ = now_ns;
    }
    return latest_ns_;
  }
  void ProbeAll(uint64_t now_ns);
  void Strike(int node, uint64_t now_ns);
  void RenewLease(int node, uint64_t now_ns);
  void DeclareDead(int node, uint64_t now_ns);
  void Readmit(int node, uint64_t now_ns);
  // Feeds one answered probe's RTT into the gray-failure EWMA.
  void ObserveRtt(int node, uint64_t rtt_ns, uint64_t now_ns);

  Fabric& fabric_;
  ShardRouter& router_;
  RuntimeStats& stats_;
  Tracer* tracer_;
  FailureDetectorConfig cfg_;

  ReadmitObserver on_readmit_;
  std::vector<QueuePair*> probe_qps_;   // One dedicated QP per node.
  std::vector<uint32_t> strikes_;
  std::vector<uint64_t> lease_expiry_;  // 0 = no lease granted yet.
  std::vector<double> rtt_ewma_;        // Per-node probe-RTT EWMA (gray path).
  std::vector<uint32_t> rtt_samples_;
  std::vector<char> gray_;              // Suspect *for latency*, not strikes.
  uint64_t baseline_rtt_ns_ = 0;        // Fleet-wide healthy RTT floor (min seen).
  uint64_t latest_ns_ = 0;              // Monotonic horizon (see latest_ns()).
  uint64_t next_probe_ns_ = 0;
  uint64_t wr_id_ = 0;
  uint8_t scratch_[64] = {};
};

}  // namespace dilos

#endif  // DILOS_SRC_RECOVERY_FAILURE_DETECTOR_H_
