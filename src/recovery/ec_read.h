// Degraded-read reconstruction: decode one page of a lost stripe member from
// k surviving members.
//
// The k survivor reads are posted at the same simulated issue time on the
// per-node QPs of the caller's channel — distinct nodes, distinct QPs, so the
// fetch window is the *max* of the k read latencies, not the sum (this is the
// EC read penalty Carbink reports: one fan-out round trip plus decode, versus
// replication's single read). A survivor that times out mid-reconstruction is
// reported to the detector and replaced by the next readable member, with the
// replacement read issued after the timeout (the failure had to be observed
// before failing over).
//
// Shared by the runtime's demand path, the cleaner's parity read-modify-write
// (old content of an unreadable member), and the repair manager's
// rebuild-from-parity loop.
#ifndef DILOS_SRC_RECOVERY_EC_READ_H_
#define DILOS_SRC_RECOVERY_EC_READ_H_

#include <cstring>
#include <vector>

#include "src/dilos/shard.h"
#include "src/recovery/integrity.h"
#include "src/sim/cost_model.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace dilos {

// Reconstructs page `page_idx` of stripe member `lost` into `out` (kPageSize
// bytes). Advances *cursor_ns to completion (max survivor read + decode) and
// *wr_id per posted op. Returns false — and bumps ec_decode_failures — when
// fewer than k members end up readable. Survivor payload bytes are added to
// stats.bytes_fetched by the caller (accounting differs per call site).
inline bool EcReconstructPage(ShardRouter& router, const CostModel& cost, int core,
                              CommChannel ch, uint64_t stripe, int lost, uint32_t page_idx,
                              uint8_t* out, uint64_t* cursor_ns, uint64_t* wr_id,
                              RuntimeStats& stats, Tracer* tracer) {
  const ECCodec& codec = router.ec_codec();
  int k = codec.k();
  std::vector<int> avail;
  router.EcReadableMembers(stripe, lost, &avail);
  if (static_cast<int>(avail.size()) < k) {
    stats.ec_decode_failures++;
    return false;
  }
  std::vector<std::vector<uint8_t>> bufs;
  std::vector<int> members;
  uint64_t issue = *cursor_ns;
  uint64_t done = issue;
  size_t next = 0;
  while (static_cast<int>(members.size()) < k && next < avail.size()) {
    int j = avail[next++];
    int node = router.EcNode(stripe, j);
    uint64_t member_va = router.EcMemberPageVa(stripe, j, page_idx);
    bufs.emplace_back(kPageSize);
    bool good = false;
    for (int attempt = 0; attempt < 2 && !good; ++attempt) {
      Completion c = router.NodeQp(core, ch, node)
                         ->PostRead(++*wr_id, reinterpret_cast<uint64_t>(bufs.back().data()),
                                    member_va, kPageSize, issue);
      if (c.status != WcStatus::kSuccess) {
        router.ReportOpFailure(node, c.completion_time_ns);
        issue = c.completion_time_ns;  // Failover read starts after the timeout.
        break;
      }
      if (VerifyPageBytes(router.fabric().node(node).store(), member_va,
                          bufs.back().data())) {
        if (PageIsStale(router.fabric().node(node).store(), member_va,
                        router.PageGeneration(member_va))) {
          // Verified-but-stale survivor: its write generation lags the
          // cleaner's expected one, so decoding it would mix old and new
          // stripe content. Re-reading cannot freshen a stored copy — skip
          // straight to the next member (the scrubber heals it later).
          stats.stale_copies_detected++;
          if (tracer != nullptr) {
            tracer->Record(c.completion_time_ns, TraceEvent::kStaleCopy, member_va,
                           static_cast<uint32_t>(node));
          }
          issue = c.completion_time_ns;
          break;
        }
        good = true;
        if (c.completion_time_ns > done) {
          done = c.completion_time_ns;
        }
        break;
      }
      // A corrupt survivor decoded as-is would poison `out`. One re-read
      // covers a wire flip; a second mismatch means the stored copy itself
      // rotted, so the member is skipped (the scrubber repairs it later).
      stats.checksum_mismatches++;
      if (tracer != nullptr) {
        tracer->Record(c.completion_time_ns, TraceEvent::kChecksumMismatch, member_va,
                       /*detail=*/0);
      }
      issue = c.completion_time_ns;
    }
    if (!good) {
      bufs.pop_back();
      continue;
    }
    members.push_back(j);
  }
  if (static_cast<int>(members.size()) < k) {
    stats.ec_decode_failures++;
    return false;
  }
  std::vector<const uint8_t*> blocks;
  blocks.reserve(bufs.size());
  for (const std::vector<uint8_t>& b : bufs) {
    blocks.push_back(b.data());
  }
  if (!codec.Reconstruct(lost, members.data(), blocks.data(), k, out, kPageSize)) {
    stats.ec_decode_failures++;
    return false;
  }
  done += cost.ec_decode_page_ns;
  stats.ec_reconstructed_pages++;
  if (tracer != nullptr) {
    tracer->Record(done, TraceEvent::kEcReconstruct,
                   router.EcMemberPageVa(stripe, lost, page_idx),
                   static_cast<uint32_t>(lost));
  }
  *cursor_ns = done;
  return true;
}

}  // namespace dilos

#endif  // DILOS_SRC_RECOVERY_EC_READ_H_
