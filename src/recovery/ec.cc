#include "src/recovery/ec.h"

#include <array>
#include <vector>

namespace dilos {

namespace {

// GF(2^8) log/antilog tables over the 0x11D polynomial, generator 2.
struct GfTables {
  std::array<uint8_t, 256> log{};
  std::array<uint8_t, 512> exp{};  // Doubled so exp[log a + log b] needs no mod.

  GfTables() {
    uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<size_t>(i)] = static_cast<uint8_t>(x);
      log[static_cast<size_t>(x)] = static_cast<uint8_t>(i);
      x <<= 1;
      if (x & 0x100) {
        x ^= 0x11D;
      }
    }
    for (int i = 255; i < 512; ++i) {
      exp[static_cast<size_t>(i)] = exp[static_cast<size_t>(i - 255)];
    }
  }
};

const GfTables& Tables() {
  static const GfTables t;
  return t;
}

}  // namespace

uint8_t ECCodec::GfMul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  const GfTables& t = Tables();
  return t.exp[static_cast<size_t>(t.log[a]) + static_cast<size_t>(t.log[b])];
}

uint8_t ECCodec::GfInv(uint8_t a) {
  const GfTables& t = Tables();
  return t.exp[static_cast<size_t>(255 - t.log[a])];
}

uint8_t ECCodec::GfPow(uint8_t base, unsigned e) {
  if (base == 0) {
    return 0;
  }
  const GfTables& t = Tables();
  return t.exp[(static_cast<size_t>(t.log[base]) * e) % 255];
}

ECCodec::ECCodec(int k, int m) : k_(k < 1 ? 1 : k), m_(m < 0 ? 0 : m) {}

uint8_t ECCodec::Coef(int member, int j) const {
  if (member < k_) {
    return member == j ? 1 : 0;  // Data rows: identity.
  }
  // Cauchy rows: coef(k+p, j) = 1 / (x_p ^ y_j) with x_p = k+p, y_j = j.
  // The x's and y's are distinct and disjoint (j < k <= member), so the
  // denominator is never zero and every square submatrix of the Cauchy
  // block is nonsingular — the code is MDS for any (k, m) with k+m <= 256,
  // unlike the identity-plus-Vandermonde construction it replaces (MDS only
  // for m <= 2).
  return GfInv(static_cast<uint8_t>(member ^ j));
}

void ECCodec::XorMulInto(uint8_t* dst, const uint8_t* src, uint8_t coef, size_t n) {
  if (coef == 0) {
    return;
  }
  if (coef == 1) {
    for (size_t i = 0; i < n; ++i) {
      dst[i] ^= src[i];
    }
    return;
  }
  const GfTables& t = Tables();
  size_t lc = t.log[coef];
  for (size_t i = 0; i < n; ++i) {
    uint8_t s = src[i];
    if (s != 0) {
      dst[i] ^= t.exp[lc + static_cast<size_t>(t.log[s])];
    }
  }
}

bool ECCodec::Reconstruct(int lost, const int* members, const uint8_t* const* blocks,
                          int count, uint8_t* out, size_t n) const {
  if (count < k_) {
    return false;
  }
  int k = k_;
  // A (k x k) system from the first k survivor rows of the generator matrix;
  // Gauss-Jordan gives A^-1, then c = row(lost) * A^-1 are the combination
  // coefficients of the survivor *values* that equal the lost member.
  std::vector<uint8_t> a(static_cast<size_t>(k * k));
  std::vector<uint8_t> inv(static_cast<size_t>(k * k), 0);
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < k; ++c) {
      a[static_cast<size_t>(r * k + c)] = Coef(members[r], c);
    }
    inv[static_cast<size_t>(r * k + r)] = 1;
  }
  for (int col = 0; col < k; ++col) {
    int pivot = -1;
    for (int r = col; r < k; ++r) {
      if (a[static_cast<size_t>(r * k + col)] != 0) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) {
      return false;  // Singular survivor combination (possible only for m > 2).
    }
    if (pivot != col) {
      for (int c = 0; c < k; ++c) {
        std::swap(a[static_cast<size_t>(pivot * k + c)], a[static_cast<size_t>(col * k + c)]);
        std::swap(inv[static_cast<size_t>(pivot * k + c)],
                  inv[static_cast<size_t>(col * k + c)]);
      }
    }
    uint8_t d = GfInv(a[static_cast<size_t>(col * k + col)]);
    for (int c = 0; c < k; ++c) {
      a[static_cast<size_t>(col * k + c)] = GfMul(a[static_cast<size_t>(col * k + c)], d);
      inv[static_cast<size_t>(col * k + c)] = GfMul(inv[static_cast<size_t>(col * k + c)], d);
    }
    for (int r = 0; r < k; ++r) {
      if (r == col) {
        continue;
      }
      uint8_t f = a[static_cast<size_t>(r * k + col)];
      if (f == 0) {
        continue;
      }
      for (int c = 0; c < k; ++c) {
        a[static_cast<size_t>(r * k + c)] ^=
            GfMul(f, a[static_cast<size_t>(col * k + c)]);
        inv[static_cast<size_t>(r * k + c)] ^=
            GfMul(f, inv[static_cast<size_t>(col * k + c)]);
      }
    }
  }
  // c_i = sum_j Coef(lost, j) * inv[j][i].
  std::vector<uint8_t> comb(static_cast<size_t>(k), 0);
  for (int i = 0; i < k; ++i) {
    uint8_t acc = 0;
    for (int j = 0; j < k; ++j) {
      acc ^= GfMul(Coef(lost, j), inv[static_cast<size_t>(j * k + i)]);
    }
    comb[static_cast<size_t>(i)] = acc;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = 0;
  }
  for (int i = 0; i < k; ++i) {
    XorMulInto(out, blocks[i], comb[static_cast<size_t>(i)], n);
  }
  return true;
}

}  // namespace dilos
