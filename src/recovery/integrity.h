// End-to-end page integrity: per-page checksums, arrival verification, and
// the checked write-back primitive.
//
// The cleaner computes a 64-bit checksum for every full page it writes back
// and installs it next to the page on the memory node (PageStore keeps the
// checksum map the way a real node keeps per-block CRCs in a metadata region
// of the same registration). Three properties follow:
//
//  * Write-side ("ICRC analog"): WritePageChecked verifies the *stored*
//    bytes against the checksum right after the write lands — the way an
//    RNIC validates the ICRC trailer before committing a packet — and
//    re-posts the write on mismatch. A payload bit flipped in flight on the
//    write path therefore never becomes durable silently.
//  * Read-side: every full-page arrival (demand fetch, prefetch, EC survivor
//    read, repair source read, scrub read) re-hashes the received bytes and
//    compares against the stored checksum. Computing the hash costs zero
//    simulated time: NICs do CRC at line rate, so verification adds no
//    latency and no wire ops on healthy runs.
//  * Pages without a checksum verify trivially. Only full-page write-backs
//    install one; a vectored (guided) write-back drops it, because the bytes
//    between live segments are indeterminate by design. That gap is
//    documented in DESIGN.md §9 — guided paging trades it for bandwidth.
#ifndef DILOS_SRC_RECOVERY_INTEGRITY_H_
#define DILOS_SRC_RECOVERY_INTEGRITY_H_

#include <cstdint>
#include <cstring>

#include "src/memnode/page_store.h"
#include "src/rdma/queue_pair.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace dilos {

// 64-bit FNV-1a-style mix over the page, hashed a word at a time — the
// stand-in for the CRC an RNIC computes at line rate.
inline uint64_t PageChecksum(const uint8_t* data) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (uint32_t i = 0; i < kPageSize; i += 8) {
    uint64_t w;
    std::memcpy(&w, data + i, 8);
    h ^= w;
    h *= 0x100000001B3ULL;
    h ^= h >> 29;
  }
  return h;
}

// Verifies `bytes` (a full page received for `page_va`) against the checksum
// installed on `store`. True when no checksum exists — nothing to verify
// against (the page was never fully written back).
inline bool VerifyPageBytes(const PageStore& store, uint64_t page_va, const uint8_t* bytes) {
  uint64_t page = page_va >> kPageShift;
  if (!store.HasChecksum(page)) {
    return true;
  }
  return store.Checksum(page) == PageChecksum(bytes);
}

// Freshness check beside the content check: true when the copy on `store`
// lags the expected write generation — it verified against its (old)
// checksum but missed at least one later full-page write-back (the
// partitioned-replica gap: stale-but-verified bytes). expected_gen == 0
// (page never generation-tagged by a cleaner) verifies trivially.
inline bool PageIsStale(const PageStore& store, uint64_t page_va, uint32_t expected_gen) {
  if (expected_gen == 0) {
    return false;
  }
  return store.Generation(page_va >> kPageShift) < expected_gen;
}

// Full-page write with target-side integrity: posts the write at `issue_ns`,
// installs the checksum (and, when `generation` is nonzero, the write
// generation — freshness metadata travelling with the payload), and
// verifies the bytes that actually landed — re-posting on mismatch (a wire
// flip on the write path), up to `max_retries` times. Returns the final
// completion; liveness failures (kTimeout etc.) are returned untouched for
// the caller's failover logic — a dropped write installs neither checksum
// nor generation, which is exactly what lets readers detect the laggard.
// If retries exhaust with the stored copy still corrupt, the (correct)
// checksum stays installed, so every later read detects the rot and heals
// from redundancy — metadata is never made to agree with bad bytes.
inline Completion WritePageChecked(QueuePair* qp, PageStore& store, uint64_t page_va,
                                   const uint8_t* data, uint64_t issue_ns, uint64_t* wr_id,
                                   RuntimeStats& stats, Tracer* tracer,
                                   uint32_t generation = 0, int max_retries = 3) {
  uint64_t page = page_va >> kPageShift;
  uint64_t sum = PageChecksum(data);
  Completion c{};
  for (int attempt = 0;; ++attempt) {
    c = qp->PostWrite(++*wr_id, reinterpret_cast<uint64_t>(data), page_va, kPageSize, issue_ns);
    if (c.status != WcStatus::kSuccess) {
      return c;
    }
    store.SetChecksum(page, sum);
    if (generation != 0) {
      store.SetGeneration(page, generation);
    }
    if (PageChecksum(store.PageData(page)) == sum) {
      return c;
    }
    stats.checksum_mismatches++;
    stats.checksum_write_retries++;
    if (tracer != nullptr) {
      tracer->Record(c.completion_time_ns, TraceEvent::kChecksumMismatch, page_va,
                     /*detail=*/1);  // 1 = write side.
    }
    if (attempt >= max_retries) {
      return c;
    }
    issue_ns = c.completion_time_ns;
  }
}

}  // namespace dilos

#endif  // DILOS_SRC_RECOVERY_INTEGRITY_H_
