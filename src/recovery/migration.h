// Live granule migration and graceful memory-node drain.
//
// Moves granules between memory nodes while demand faults, the cleaner, EC
// parity updates, and prefetch keep running — the planned-change counterpart
// to the repair manager's crash response. Each migration is a per-granule
// state machine:
//
//   copy      The target joins the replica set as an uncommitted rebuild
//             target (ShardRouter::BeginMigration): every write-back racing
//             the copy fans out to it too, but it serves no reads. The copy
//             itself reuses the repair engine's shape — pipelined windows of
//             verified source reads, trust-ranked sources, EC reconstruct
//             fallback, stall/rewind on transient source faults.
//   catch-up  The "freeze" a real cluster would need is zero-length here:
//             concurrent writes already land on the target, so freezing
//             reduces to *verifying* the target caught up. Pages whose
//             stored write-generation lags the router's expected generation
//             (their racing write-back was dropped by a fault) are
//             re-shipped from a fresh source; passes repeat until a pass
//             re-ships nothing, bounded by `max_catchup_passes`.
//   remap     After a clean catch-up pass a commit handshake (one live round
//             trip to the target) guards the cutover: a target that crashed
//             after its last copied byte still has caught-up-looking store
//             metadata, and publishing it would hand reads to a corpse.
//             CommitMigration then publishes the target for reads and opens a
//             forwarding window: reads that raced the remap and still
//             selected the source are redirected to the target instead of
//             failed. The source stays in the replica set — and keeps
//             receiving writes — for the whole window, so a target crash
//             right after commit fails back to the source losslessly.
//   forward   At window expiry the source leaves the replica set and its
//             stored pages are dropped (the capacity the drain reclaims).
//
// Crash safety: migration intent lives in the router's remap table
// (GranuleRemap::migrate_source + rebuilding), not in this object — a
// coordinator that crashes with half-committed state calls Restart(), which
// re-derives every in-flight migration from the router and re-runs the
// idempotent copy. Source death mid-copy degrades to a plain rebuild from
// the surviving replicas; target death pre-commit rolls back; target death
// inside the window fails back to the still-fresh source.
//
// DrainNode() composes this into decommissioning: mark the node kDraining
// (it keeps serving, but is never a placement target), migrate every written
// granule it holds, then retire it (kRetired: never routed, probed, or
// readmitted again).
#ifndef DILOS_SRC_RECOVERY_MIGRATION_H_
#define DILOS_SRC_RECOVERY_MIGRATION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/dilos/shard.h"
#include "src/memnode/fabric.h"
#include "src/recovery/failure_detector.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"
#include "src/telemetry/metrics.h"

namespace dilos {

struct MigrationConfig {
  // Migration-bandwidth throttle, same contract as RepairConfig: payload
  // bytes (source read + target write) moved per tick.
  uint64_t bytes_per_tick = 512 * 1024;
  uint64_t min_interval_ns = 20'000;  // Spacing between migration ticks.
  size_t pipeline_depth = 8;          // Copy reads kept in flight at once.
  // Transient-source stall budget per job (see RepairConfig::max_page_stalls
  // for the mechanism). A migration that exhausts it rolls back instead of
  // committing with a hole: unlike repair, the source copy still exists, so
  // aborting loses nothing and the drain scan retries later.
  uint32_t max_page_stalls = 16;
  // How long the post-cutover forwarding window stays open (simulated ns):
  // an upper bound on how stale a racing read's routing decision can be.
  uint64_t forward_window_ns = 200'000;
  // Catch-up passes before the migration gives up and rolls back (each pass
  // only re-ships pages whose target generation still lags).
  uint32_t max_catchup_passes = 8;
};

class MigrationManager {
 public:
  enum class Phase : uint8_t {
    kCopy = 0,  // Bulk copy onto the uncommitted target.
    kCatchUp,   // Generation-verify + re-ship pages the copy window missed.
    kForward,   // Committed; forwarding window open until expiry.
  };

  MigrationManager(Fabric& fabric, ShardRouter& router, FailureDetector& detector,
                   RuntimeStats& stats, Tracer* tracer, MigrationConfig cfg = {});

  // Queues one granule's migration off `source`. `target` < 0 lets the
  // manager pick (spares first, then fewest in-flight fills, then least
  // observed load — EC-aware: bounded stripe co-location only). Returns
  // false when the granule has no remote data, a fill is already in flight,
  // a forwarding window is still open, `source` holds no replica, or no
  // legal target exists.
  bool MigrateGranule(uint64_t granule, int source, uint64_t now_ns, int target = -1);

  // Graceful decommission: marks `node` draining (it keeps serving but
  // receives no new placements), then migrates every written granule it
  // holds and retires it once nothing — replica sets, fills, forwarding
  // windows — references it. Returns false for nodes already dead/retired.
  bool DrainNode(int node, uint64_t now_ns);

  // Clock hook: scans draining nodes for granules still to move, drains up
  // to `bytes_per_tick` of copy work, and closes expired forward windows.
  void Tick(uint64_t now_ns);

  // Coordinator crash + restart: in-memory jobs are lost; everything is
  // re-derived from the router — draining node states re-enter the drain
  // set, uncommitted migrations (MigratingTarget) are re-adopted from page 0
  // (the copy is idempotent), open forwarding windows are re-owned so they
  // still close on time, and migrations whose target died while the
  // coordinator was down are rolled back.
  void Restart(uint64_t now_ns);

  // Same load signal as RepairManager::set_metrics.
  void set_metrics(const MetricsRegistry* metrics) { metrics_ = metrics; }

  // Test hook: observes every phase transition of every job (crash-injection
  // tests kill nodes at exact state-machine boundaries through this).
  using PhaseObserver = std::function<void(uint64_t granule, Phase phase, uint64_t now_ns)>;
  void set_phase_observer(PhaseObserver cb) { on_phase_ = std::move(cb); }

  bool idle() const {
    return jobs_.empty() && draining_.empty() && router_.forwards().empty();
  }
  size_t pending_granules() const { return jobs_.size(); }
  bool draining(int node) const { return draining_.count(node) != 0; }
  // Completion frontier of the serialized migration copy stream (see
  // RepairManager::stream_cursor_ns).
  uint64_t stream_cursor_ns() const { return cursor_ns_; }

 private:
  struct Job {
    uint64_t granule = 0;
    int source = -1;
    int target = -1;
    Phase phase = Phase::kCopy;
    uint32_t next_page = 0;   // Index within the granule.
    uint32_t stalls = 0;      // Transient-source retries burned.
    uint32_t passes = 0;      // Catch-up passes completed.
    uint32_t reshipped = 0;   // Pages re-shipped in the current pass.
    uint64_t start_ns = 0;    // For the migrate-granule span.
  };

  // One pipelined copy in flight (same shape as RepairManager::Flight).
  struct Flight {
    uint64_t page_va = 0;
    uint64_t ready_ns = 0;
    uint64_t bytes = 0;
    uint32_t gen = 0;
    std::vector<uint8_t> buf;
  };

  // Queues migration jobs for draining nodes' granules; retires nodes with
  // nothing left referencing them.
  void ScanDrains(uint64_t now_ns);
  // Closes expired forwarding windows (dropping the source copy) and fails
  // back committed cutovers whose target died inside the window.
  void SweepWindows(uint64_t now_ns);
  // Target for migrating `granule` off `exclude` nodes, or -1. EC-aware:
  // prefers nodes holding no member of the granule's stripe, falls back to
  // bounded co-location (resulting member count <= m).
  int PickTarget(uint64_t granule, const std::vector<int>& exclude);
  bool LessLoaded(int a, int b) const;
  // Advances the front job; returns bytes moved.
  uint64_t DrainFront(uint64_t now_ns, uint64_t budget);
  // Emits the retroactive migrate-granule span for a finished job (recorded
  // at retire time so a long-lived open span never becomes the accidental
  // parent of unrelated fault spans).
  void EmitSpan(const Job& job, uint64_t end_ns);
  void NotifyPhase(const Job& job, uint64_t now_ns) {
    if (on_phase_) {
      on_phase_(job.granule, job.phase, now_ns);
    }
  }
  bool HasJob(uint64_t granule) const { return active_.count(granule) != 0; }

  Fabric& fabric_;
  ShardRouter& router_;
  FailureDetector& detector_;
  RuntimeStats& stats_;
  Tracer* tracer_;
  MigrationConfig cfg_;
  const MetricsRegistry* metrics_ = nullptr;
  PhaseObserver on_phase_;

  std::vector<QueuePair*> qps_;  // One dedicated migration QP per node.
  std::deque<Job> jobs_;
  std::vector<Job> windows_;  // Committed cutovers with an open window.
  std::unordered_set<uint64_t> active_;  // Granules with a queued job.
  std::unordered_set<int> draining_;     // Nodes being emptied.
  std::vector<uint32_t> target_refs_;    // In-flight fills per target node.
  std::vector<int> replica_scratch_;
  std::vector<Flight> flights_;
  uint64_t wr_id_ = 0;
  uint64_t last_tick_ns_ = 0;
  uint64_t cursor_ns_ = 0;  // Issue-time cursor serializing the copy stream.
};

}  // namespace dilos

#endif  // DILOS_SRC_RECOVERY_MIGRATION_H_
