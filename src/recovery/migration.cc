#include "src/recovery/migration.h"

#include <algorithm>

#include "src/recovery/ec_read.h"
#include "src/recovery/integrity.h"

namespace dilos {

namespace {
bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}
}  // namespace

MigrationManager::MigrationManager(Fabric& fabric, ShardRouter& router,
                                   FailureDetector& detector, RuntimeStats& stats,
                                   Tracer* tracer, MigrationConfig cfg)
    : fabric_(fabric),
      router_(router),
      detector_(detector),
      stats_(stats),
      tracer_(tracer),
      cfg_(cfg) {
  if (tracer_ == nullptr) {
    static Tracer null_tracer(0);
    tracer_ = &null_tracer;
  }
  int n = fabric.num_nodes();
  target_refs_.assign(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    qps_.push_back(fabric.CreateQp(i, QpClass::kRepair));
  }
}

void MigrationManager::EmitSpan(const Job& job, uint64_t end_ns) {
  // Recorded retroactively over the job's whole lifetime: a span left open
  // across ticks would become the accidental parent of every unrelated span
  // begun meanwhile (the tracer nests by open order).
  uint32_t id = tracer_->BeginSpan(SpanKind::kMigrateGranule, job.start_ns,
                                   job.granule << kShardGranuleShift,
                                   static_cast<uint32_t>(job.target));
  tracer_->EndSpan(id, end_ns < job.start_ns ? job.start_ns : end_ns);
}

bool MigrationManager::MigrateGranule(uint64_t granule, int source, uint64_t now_ns,
                                      int target) {
  if (HasJob(granule) || router_.Forwarding(granule) != nullptr ||
      router_.RebuildTarget(granule) != -1 ||
      router_.written_granules().count(granule) == 0) {
    return false;
  }
  uint64_t va = granule << kShardGranuleShift;
  router_.ReplicaNodes(va, &replica_scratch_);
  if (!Contains(replica_scratch_, source)) {
    return false;
  }
  if (target < 0) {
    target = PickTarget(granule, replica_scratch_);
  } else {
    NodeState s = router_.state(target);
    if ((s != NodeState::kLive && s != NodeState::kRebuilding) ||
        Contains(replica_scratch_, target)) {
      return false;
    }
  }
  if (target < 0) {
    return false;
  }
  router_.BeginMigration(granule, source, target);
  ++target_refs_[static_cast<size_t>(target)];
  Job job;
  job.granule = granule;
  job.source = source;
  job.target = target;
  job.start_ns = now_ns;
  jobs_.push_back(job);
  active_.insert(granule);
  stats_.migrations_started++;
  stats_.migrations_inflight++;
  tracer_->Record(now_ns, TraceEvent::kMigrateStart, va, static_cast<uint32_t>(target));
  NotifyPhase(job, now_ns);
  return true;
}

bool MigrationManager::DrainNode(int node, uint64_t now_ns) {
  NodeState s = router_.state(node);
  if (s == NodeState::kDead || s == NodeState::kRetired) {
    return false;
  }
  router_.MarkDraining(node);
  draining_.insert(node);
  tracer_->Record(now_ns, TraceEvent::kNodeDraining, 0, static_cast<uint32_t>(node));
  return true;
}

void MigrationManager::Tick(uint64_t now_ns) {
  // Same horizon clamp as the repair manager: never post copies at a time
  // before a failure the detector already witnessed.
  if (detector_.latest_ns() > now_ns) {
    now_ns = detector_.latest_ns();
  }
  if (now_ns < last_tick_ns_ + cfg_.min_interval_ns) {
    return;
  }
  last_tick_ns_ = now_ns;
  SweepWindows(now_ns);
  ScanDrains(now_ns);
  uint64_t budget = cfg_.bytes_per_tick;
  while (budget > 0 && !jobs_.empty()) {
    uint64_t moved = DrainFront(now_ns, budget);
    if (moved == 0 && !jobs_.empty()) {
      break;  // Front job made no byte progress; avoid spinning.
    }
    budget = moved >= budget ? 0 : budget - moved;
  }
}

void MigrationManager::SweepWindows(uint64_t now_ns) {
  for (size_t i = 0; i < windows_.size();) {
    Job& job = windows_[i];
    uint64_t granule_base = job.granule << kShardGranuleShift;
    const ShardRouter::ForwardEntry* fw = router_.Forwarding(job.granule);
    if (fw != nullptr && router_.state(job.target) == NodeState::kDead) {
      // The cutover target died inside the window, before the source copy
      // was released: undo the cutover. The source received every in-window
      // write, so nothing acked is lost; the drain scan re-queues the move.
      router_.FailbackMigration(job.granule);
      stats_.migration_failbacks++;
      tracer_->Record(now_ns, TraceEvent::kMigrateFailback, granule_base,
                      static_cast<uint32_t>(job.target));
    } else if (fw != nullptr && now_ns < fw->expire_ns) {
      ++i;
      continue;
    } else if (fw != nullptr) {
      // Window expired: the source leaves the replica set and its stored
      // pages are dropped — the capacity this migration reclaims. A dead
      // source's store is left alone for readmission reconciliation.
      int from = fw->from;
      router_.FinishForward(job.granule);
      if (router_.state(from) != NodeState::kDead) {
        PageStore& store = fabric_.node(from).store();
        for (uint32_t p = 0; p < kPagesPerGranule; ++p) {
          store.Drop((granule_base + static_cast<uint64_t>(p) * kPageSize) >> kPageShift);
        }
      }
    }
    EmitSpan(job, now_ns);
    active_.erase(job.granule);
    windows_.erase(windows_.begin() + static_cast<ptrdiff_t>(i));
  }
}

void MigrationManager::ScanDrains(uint64_t now_ns) {
  if (draining_.empty()) {
    return;
  }
  std::vector<int> nodes(draining_.begin(), draining_.end());
  for (int node : nodes) {
    if (router_.state(node) != NodeState::kDraining) {
      // Died (or was externally revived) mid-drain: the failure path owns
      // its granules now; the drain intent is dropped.
      draining_.erase(node);
      continue;
    }
    bool pending = false;
    for (uint64_t granule : router_.written_granules()) {
      uint64_t va = granule << kShardGranuleShift;
      router_.ReplicaNodes(va, &replica_scratch_);
      if (!Contains(replica_scratch_, node)) {
        continue;
      }
      pending = true;
      if (HasJob(granule) || router_.Forwarding(granule) != nullptr ||
          router_.RebuildTarget(granule) != -1) {
        continue;  // A fill or window is in flight; migrate after it settles.
      }
      // May fail (no legal target yet): the granule stays pending and the
      // next scan retries once capacity or state changes.
      MigrateGranule(granule, node, now_ns);
    }
    if (!pending) {
      router_.MarkRetired(node);
      draining_.erase(node);
      stats_.nodes_drained++;
      tracer_->Record(now_ns, TraceEvent::kNodeDrained, 0, static_cast<uint32_t>(node));
    }
  }
}

int MigrationManager::PickTarget(uint64_t granule, const std::vector<int>& exclude) {
  bool ec = router_.ec_enabled();
  uint64_t stripe = ec ? router_.EcStripeOf(granule) : 0;
  int best = -1;
  int best_colocated = 0;
  bool best_spare = false;
  for (int n = 0; n < fabric_.num_nodes(); ++n) {
    NodeState s = router_.state(n);
    if (s != NodeState::kLive && s != NodeState::kRebuilding) {
      continue;  // Draining/retired nodes never adopt data; suspect is risky.
    }
    if (Contains(exclude, n)) {
      continue;
    }
    int colocated = 0;
    if (ec) {
      // Strict spread (no other member of this stripe) preferred; bounded
      // co-location allowed as the small-fabric fallback — after placement
      // the node holds colocated+1 members, and losing it must stay within
      // the parity arm's budget (<= m erasures).
      colocated = router_.EcMembersOnNode(stripe, n);
      if (colocated > 0 && colocated + 1 > router_.ec().m) {
        continue;
      }
    }
    bool spare = router_.is_spare(n);
    bool better;
    if (best < 0) {
      better = true;
    } else if (colocated != best_colocated) {
      better = colocated < best_colocated;
    } else if (spare != best_spare) {
      better = spare;
    } else {
      uint32_t rn = target_refs_[static_cast<size_t>(n)];
      uint32_t rb = target_refs_[static_cast<size_t>(best)];
      better = rn != rb ? rn < rb : LessLoaded(n, best);
    }
    if (better) {
      best = n;
      best_colocated = colocated;
      best_spare = spare;
    }
  }
  return best;
}

bool MigrationManager::LessLoaded(int a, int b) const {
  if (metrics_ == nullptr) {
    return false;
  }
  QpMetrics ma = metrics_->NodeTotal(a);
  QpMetrics mb = metrics_->NodeTotal(b);
  if (ma.bytes() != mb.bytes()) {
    return ma.bytes() < mb.bytes();
  }
  return ma.rtt.Percentile(99) < mb.rtt.Percentile(99);
}

void MigrationManager::Restart(uint64_t now_ns) {
  // The coordinator's memory is gone; everything below is re-derived from
  // the router's remap/forward/state tables (the durable metadata in this
  // model). Ending the lost jobs' spans is tracer bookkeeping, not state.
  jobs_.clear();
  windows_.clear();
  active_.clear();
  std::fill(target_refs_.begin(), target_refs_.end(), 0u);
  draining_.clear();
  for (int n = 0; n < fabric_.num_nodes(); ++n) {
    if (router_.state(n) == NodeState::kDraining) {
      draining_.insert(n);
    }
  }
  // Re-own open forwarding windows so they still close (or fail back) on time.
  for (const auto& [granule, fw] : router_.forwards()) {
    Job job;
    job.granule = granule;
    job.source = fw.from;
    job.target = fw.to;
    job.phase = Phase::kForward;
    job.start_ns = now_ns;
    windows_.push_back(job);
    active_.insert(granule);
  }
  // Re-adopt half-done migrations: the copy restarts from page 0 — already
  // landed pages are generation-fresh on the target and skipped, so the
  // re-run converges instead of duplicating work.
  for (uint64_t granule : router_.written_granules()) {
    int target = router_.MigratingTarget(granule);
    if (target < 0 || active_.count(granule) != 0) {
      continue;
    }
    if (router_.state(target) == NodeState::kDead) {
      router_.RollbackMigration(granule, target);
      stats_.migrations_rolled_back++;
      if (stats_.migrations_inflight > 0) {
        stats_.migrations_inflight--;
      }
      tracer_->Record(now_ns, TraceEvent::kMigrateAbort, granule << kShardGranuleShift,
                      static_cast<uint32_t>(target));
      continue;
    }
    Job job;
    job.granule = granule;
    job.source = router_.MigratingSource(granule);
    job.target = target;
    job.start_ns = now_ns;
    jobs_.push_back(job);
    active_.insert(granule);
    ++target_refs_[static_cast<size_t>(target)];
  }
}

uint64_t MigrationManager::DrainFront(uint64_t now_ns, uint64_t budget) {
  Job& job = jobs_.front();
  uint64_t granule_base = job.granule << kShardGranuleShift;
  if (cursor_ns_ < now_ns) {
    cursor_ns_ = now_ns;
  }

  auto abort_job = [&]() {
    // RollbackMigration is a no-op when a re-plan already replaced the
    // pending target; either way this migration is over.
    router_.RollbackMigration(job.granule, job.target);
    stats_.migrations_rolled_back++;
    if (stats_.migrations_inflight > 0) {
      stats_.migrations_inflight--;
    }
    tracer_->Record(cursor_ns_, TraceEvent::kMigrateAbort, granule_base,
                    static_cast<uint32_t>(job.target));
    EmitSpan(job, cursor_ns_);
    if (target_refs_[static_cast<size_t>(job.target)] > 0) {
      --target_refs_[static_cast<size_t>(job.target)];
    }
    active_.erase(job.granule);
    jobs_.pop_front();
  };

  // Target died pre-commit, or the fill was re-planned away (the repair
  // manager replaced a dead pending target): abort. The source keeps
  // serving; the drain scan re-queues the move with a fresh target.
  if (router_.state(job.target) == NodeState::kDead ||
      router_.RebuildTarget(job.granule) != job.target) {
    abort_job();
    return 0;
  }

  const PageStore& tstore = fabric_.node(job.target).store();
  size_t depth = cfg_.pipeline_depth == 0 ? 1 : cfg_.pipeline_depth;
  uint64_t moved = 0;
  bool stalled = false;
  while (!stalled && job.next_page < kPagesPerGranule && moved < budget) {
    // Pipelined copy window, same shape as the repair engine: overlapping
    // source reads, each target write issued as its read completes.
    flights_.clear();
    uint64_t issue = cursor_ns_;
    uint64_t window_done = cursor_ns_;
    uint64_t window_bytes = 0;
    while (job.next_page < kPagesPerGranule && flights_.size() < depth &&
           moved + window_bytes < budget) {
      uint64_t page_va = granule_base + static_cast<uint64_t>(job.next_page) * kPageSize;
      uint32_t page_idx = job.next_page;
      ++job.next_page;
      uint32_t expected = router_.PageGeneration(page_va);
      // Already landed on the target at the current generation — by this
      // copy, an earlier (pre-crash) copy attempt, or a racing write-back
      // that fanned out to the uncommitted target. Nothing to move.
      if (tstore.Materialized(page_va >> kPageShift) &&
          tstore.HasChecksum(page_va >> kPageShift) &&
          !PageIsStale(tstore, page_va, expected)) {
        continue;
      }
      router_.ReplicaNodes(page_va, &replica_scratch_);
      Flight f;
      f.page_va = page_va;
      f.buf.resize(kPageSize);
      bool have = false;
      bool had_source = false;
      uint64_t fcursor = issue;
      // Trust-ranked sources (see RepairManager::DrainFront): generation-
      // fresh checksummed copies first, then stale-but-checksummed, then
      // unverifiable — a laggard replica's bytes are never laundered into
      // fresh state while a fresh holder exists.
      for (int pass = 0; pass < 3 && !have; ++pass) {
        for (int n : replica_scratch_) {
          if (have) {
            break;
          }
          if (n == job.target || !router_.Readable(n, job.granule)) {
            continue;
          }
          const PageStore& nstore = fabric_.node(n).store();
          if (!nstore.Materialized(page_va >> kPageShift)) {
            continue;
          }
          int rank = 2;
          if (nstore.HasChecksum(page_va >> kPageShift)) {
            rank = PageIsStale(nstore, page_va, expected) ? 1 : 0;
          }
          if (rank != pass) {
            continue;
          }
          had_source = true;
          for (int attempt = 0; attempt < 2 && !have; ++attempt) {
            Completion rc = qps_[static_cast<size_t>(n)]->PostRead(
                ++wr_id_, reinterpret_cast<uint64_t>(f.buf.data()), page_va, kPageSize,
                fcursor);
            if (rc.status != WcStatus::kSuccess) {
              detector_.OnOpTimeout(n, rc.completion_time_ns);
              fcursor = rc.completion_time_ns;
              break;  // Next replica.
            }
            if (VerifyPageBytes(nstore, page_va, f.buf.data())) {
              have = true;
              f.ready_ns = rc.completion_time_ns;
              f.bytes = 2ULL * kPageSize;
              f.gen = nstore.Generation(page_va >> kPageShift);
            } else {
              stats_.checksum_mismatches++;
              stats_.refetches++;
              tracer_->Record(rc.completion_time_ns, TraceEvent::kChecksumMismatch,
                              page_va, /*detail=*/0);
              fcursor = rc.completion_time_ns;
            }
          }
        }
      }
      if (!have && router_.ec_enabled() && router_.ec().m > 0) {
        // EC: regenerate the member's page from k surviving stripe members.
        uint64_t stripe = router_.EcStripeOf(job.granule);
        int member = router_.EcMemberOf(job.granule);
        bool any = false;
        for (int j = 0; j < router_.ec().k + router_.ec().m && !any; ++j) {
          if (j == member || !router_.EcMemberReadable(stripe, j)) {
            continue;
          }
          uint64_t member_page = router_.EcMemberPageVa(stripe, j, page_idx) >> kPageShift;
          any = fabric_.node(router_.EcNode(stripe, j)).store().Materialized(member_page);
        }
        if (any) {
          had_source = true;
          if (EcReconstructPage(router_, fabric_.cost(), /*core=*/0, CommChannel::kManager,
                                stripe, member, page_idx, f.buf.data(), &fcursor, &wr_id_,
                                stats_, tracer_)) {
            have = true;
            f.ready_ns = fcursor;
            f.bytes = static_cast<uint64_t>(router_.ec().k + 1) * kPageSize;
            f.gen = expected;
          }
        }
      }
      if (fcursor > window_done) {
        window_done = fcursor;
      }
      if (!have) {
        if (had_source) {
          // A holder exists but yielded no verified bytes (transient source
          // fault). Stall and retry later; if the budget runs out, abort the
          // whole migration — unlike repair, the source copy still exists,
          // so rolling back loses nothing, while committing would cut over
          // to a target with a hole.
          if (job.stalls < cfg_.max_page_stalls) {
            ++job.stalls;
            job.next_page = page_idx;
            stalled = true;
            break;
          }
          cursor_ns_ = window_done;
          abort_job();
          return moved;
        }
        continue;  // No surviving holder anywhere: nothing remote to move.
      }
      // Catch-up pass: only lagging pages reach this point (the freshness
      // skip above filtered caught-up ones); count the re-ship.
      if (job.phase == Phase::kCatchUp) {
        ++job.reshipped;
        stats_.migration_reships++;
      }
      window_bytes += f.bytes;
      flights_.push_back(std::move(f));
    }
    for (Flight& f : flights_) {
      Completion wc = WritePageChecked(qps_[static_cast<size_t>(job.target)],
                                       fabric_.node(job.target).store(), f.page_va,
                                       f.buf.data(), f.ready_ns, &wr_id_, stats_, tracer_,
                                       f.gen);
      if (wc.completion_time_ns > window_done) {
        window_done = wc.completion_time_ns;
      }
      if (wc.status != WcStatus::kSuccess) {
        detector_.OnOpTimeout(job.target, wc.completion_time_ns);
        cursor_ns_ = window_done;
        // Rewind past the failed write (see the repair engine's rationale);
        // a genuinely dead target aborts via the state check next call.
        job.next_page = static_cast<uint32_t>((f.page_va - granule_base) >> kPageShift);
        return moved;
      }
      job.stalls = 0;
      stats_.migration_pages++;
      stats_.migration_bytes += f.bytes;
      moved += f.bytes;
    }
    cursor_ns_ = window_done;
  }
  if (stalled) {
    // Rotate to the back so one flaky source doesn't head-of-line block
    // every other migration.
    Job j = job;
    jobs_.pop_front();
    jobs_.push_back(j);
    return moved;
  }
  if (job.next_page < kPagesPerGranule) {
    return moved;  // Budget exhausted mid-granule.
  }

  // End of a sweep over the granule.
  if (job.phase == Phase::kCopy) {
    job.phase = Phase::kCatchUp;
    job.next_page = 0;
    job.reshipped = 0;
    NotifyPhase(job, cursor_ns_);
    return moved;
  }
  if (job.reshipped != 0) {
    // Writes raced this catch-up pass and some landed only on the source
    // side; verify again. Bounded: a workload dirtying pages faster than a
    // pass completes would otherwise never converge.
    ++job.passes;
    if (job.passes >= cfg_.max_catchup_passes) {
      abort_job();
      return moved;
    }
    job.next_page = 0;
    job.reshipped = 0;
    return moved;
  }

  // Clean catch-up pass: every page the source holds is on the target at the
  // current generation. Commit handshake before publishing: a target that
  // crashed after its last copied byte still has caught-up-looking store
  // metadata, so only a live round trip proves the cutover is safe. On
  // timeout the detector gets its strike and the pass is re-verified next
  // tick; a genuinely dead target then aborts via the state check.
  uint8_t ack[64];
  Completion hs = qps_[static_cast<size_t>(job.target)]->PostRead(
      ++wr_id_, reinterpret_cast<uint64_t>(ack), granule_base, sizeof(ack), cursor_ns_);
  cursor_ns_ = hs.completion_time_ns;
  if (hs.status != WcStatus::kSuccess) {
    detector_.OnOpTimeout(job.target, hs.completion_time_ns);
    job.next_page = 0;  // Re-verify freshness before the next commit attempt.
    return moved;
  }

  // Cut over.
  uint64_t expire_ns = cursor_ns_ + cfg_.forward_window_ns;
  if (!router_.CommitMigration(job.granule, expire_ns)) {
    abort_job();  // Lost the race to a re-plan between checks; retry later.
    return moved;
  }
  stats_.migrations_committed++;
  if (stats_.migrations_inflight > 0) {
    stats_.migrations_inflight--;
  }
  if (target_refs_[static_cast<size_t>(job.target)] > 0) {
    --target_refs_[static_cast<size_t>(job.target)];
  }
  tracer_->Record(cursor_ns_, TraceEvent::kMigrateCommit, granule_base,
                  static_cast<uint32_t>(job.target));
  job.phase = Phase::kForward;
  NotifyPhase(job, cursor_ns_);
  if (router_.Forwarding(job.granule) != nullptr) {
    windows_.push_back(job);  // Stays in active_ until the window closes.
  } else {
    // Source already left the set (died mid-copy): no window to keep open.
    EmitSpan(job, cursor_ns_);
    active_.erase(job.granule);
  }
  jobs_.pop_front();
  return moved;
}

}  // namespace dilos
