// Repair manager: restores replication after a memory-node failure.
//
// When the failure detector declares a node dead, every granule whose
// replica set contained it is left at reduced redundancy — a second failure
// would lose data. The repair manager scans the router's written-granule
// set, picks a replacement node for each degraded granule (a spare if the
// fabric has one, otherwise the least-loaded surviving node outside the
// replica set), and copies the granule's materialized pages from a
// surviving replica over dedicated repair QPs.
//
// Repair runs from the same simulated-clock background hooks as the
// cleaner/reclaimer: its CPU time is free (spare cores) but its RDMA
// traffic occupies the shared links, so it *does* contend with demand
// fetches — which is why `bytes_per_tick` throttles it. Write-backs racing
// a rebuild are routed to the target too (ShardRouter::WriteQps includes
// uncommitted targets), so no window loses updates; reads are only allowed
// once CommitRebuild publishes the copy.
#ifndef DILOS_SRC_RECOVERY_REPAIR_MANAGER_H_
#define DILOS_SRC_RECOVERY_REPAIR_MANAGER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/dilos/shard.h"
#include "src/memnode/fabric.h"
#include "src/recovery/failure_detector.h"
#include "src/recovery/migration.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"
#include "src/telemetry/metrics.h"

namespace dilos {

struct RepairConfig {
  // Repair-bandwidth throttle: payload bytes (source read + target write)
  // moved per tick. Raising it shortens rebuild time but steals link time
  // from demand fetches (measured by bench_ext_recovery).
  uint64_t bytes_per_tick = 512 * 1024;
  uint64_t min_interval_ns = 20'000;  // Spacing between repair ticks.
  // Repair copies kept in flight at once: a window of source reads is posted
  // at the same issue time (their fabric latencies overlap) and each target
  // write overlaps the remaining reads. 1 = fully serial copy loop;
  // bench_ext_recovery measures the rebuild-throughput gain.
  size_t pipeline_depth = 8;
  // How many times a job may stall on a page whose holders exist but yielded
  // no verified bytes (source timeout or repeated wire flips) before the
  // page is abandoned as lost. Each stall re-tries on a later tick — a
  // transient fault clears by then — so only persistent rot on every
  // readable holder exhausts it.
  uint32_t max_page_stalls = 16;
};

// Aggregate knob block consumed by DilosConfig.
struct RecoveryOptions {
  bool enabled = false;
  // Trailing fabric nodes held out of hash placement as repair targets.
  int spare_nodes = 0;
  FailureDetectorConfig detector;
  RepairConfig repair;
  MigrationConfig migration;
  // Demand-fetch retry budget: a per-core token bucket caps how many
  // timeout retries the fault path may burn, so a long partition degrades
  // to failover (the detector has already collected its strikes) instead of
  // a retry storm. Generous by default — healthy runs never hit it; a
  // suppressed retry counts `fault_retries_suppressed`.
  uint32_t retry_burst = 64;          // Bucket depth per core.
  uint64_t retry_refill_ns = 5'000;   // One token back per this much sim time.
};

class RepairManager {
 public:
  RepairManager(Fabric& fabric, ShardRouter& router, FailureDetector& detector,
                RuntimeStats& stats, Tracer* tracer, RepairConfig cfg = {});

  // Clock hook: picks up newly declared-dead nodes and drains up to
  // `bytes_per_tick` of queued page copies.
  void Tick(uint64_t now_ns);

  // Detector callback: a dead node answered a probe and was re-admitted as
  // kRebuilding with a stale store (it missed every write-back while dead).
  // Queues an *in-place* rebuild job — target is the node itself, replica
  // sets unchanged — for every written granule it still holds, so the node
  // serves no reads until each granule's refill commits.
  void OnNodeReadmitted(int node, uint64_t now_ns);

  // Optional per-node load signal (installed by the runtime when telemetry
  // metrics are on): PickTarget breaks in-flight-rebuild-count ties toward
  // the node with the least observed traffic (bytes, then RTT tail), per the
  // ROADMAP load-aware-rebalancing item. Null keeps the old behavior.
  void set_metrics(const MetricsRegistry* metrics) { metrics_ = metrics; }

  bool idle() const { return jobs_.empty() && deferred_.empty(); }
  size_t pending_granules() const { return jobs_.size(); }
  // Completion frontier of the serialized repair copy stream: issue-time of
  // the next copy, i.e. when the work drained so far is done in simulated
  // time. (span = cursor at idle − time repair began) measures rebuild
  // throughput independent of how often ticks fire.
  uint64_t stream_cursor_ns() const { return cursor_ns_; }

 private:
  struct Job {
    uint64_t granule = 0;
    int target = -1;
    uint32_t next_page = 0;  // Index within the granule.
    uint32_t stalls = 0;     // Source-failure retries burned (max_page_stalls).
  };

  // One pipelined repair copy: a verified source page waiting for (or in)
  // its target write.
  struct Flight {
    uint64_t page_va = 0;
    uint64_t ready_ns = 0;  // Source read (or EC decode) completion.
    uint64_t bytes = 0;     // Payload accounting for the budget/stats.
    uint32_t gen = 0;       // Write generation travelling with the bytes.
    std::vector<uint8_t> buf;
  };

  void ScanForFailures(uint64_t now_ns);
  // Granules whose dead replica was dropped while another fill (repair or
  // migration) was mid-flight toward a live target: re-checked once the fill
  // settles, and re-replicated if they came out under-replicated.
  void ProcessDeferred(uint64_t now_ns);
  // Whether a queued job still drives this granule's rebuild.
  bool HasJob(uint64_t granule) const {
    for (const Job& j : jobs_) {
      if (j.granule == granule) {
        return true;
      }
    }
    return false;
  }
  // Replacement node for a degraded replica set, or -1 if none exists.
  int PickTarget(const std::vector<int>& replicas);
  // True when node `a` carries strictly less observed fabric load than `b`.
  bool LessLoaded(int a, int b) const;
  // Copies the next pages of the front job; returns bytes moved.
  uint64_t DrainFront(uint64_t now_ns, uint64_t budget);

  Fabric& fabric_;
  ShardRouter& router_;
  FailureDetector& detector_;
  RuntimeStats& stats_;
  Tracer* tracer_;
  RepairConfig cfg_;
  const MetricsRegistry* metrics_ = nullptr;

  std::vector<QueuePair*> qps_;  // One dedicated repair QP per node.
  std::deque<Job> jobs_;
  std::vector<char> dead_handled_;    // Dead nodes already scanned.
  std::vector<uint32_t> target_refs_;  // Granule rebuilds in flight per target.
  std::vector<int> replica_scratch_;
  std::vector<int> ec_scratch_;  // Stripe member nodes (EC target exclusion).
  std::vector<uint64_t> deferred_;  // Granules awaiting a post-fill re-plan.
  std::vector<Flight> flights_;  // In-flight window scratch (DrainFront).
  uint64_t wr_id_ = 0;           // For reconstruction reads posted directly.
  uint64_t last_tick_ns_ = 0;
  uint64_t cursor_ns_ = 0;  // Issue-time cursor serializing the repair stream.
};

}  // namespace dilos

#endif  // DILOS_SRC_RECOVERY_REPAIR_MANAGER_H_
