// Erasure coding for remote-memory redundancy (Carbink-style, the ROADMAP's
// "recover the capacity replication burns" item).
//
// Replication stores R full copies of every granule: R× remote capacity for
// tolerance of R-1 failures. A (k, m) code stripes k *data* granules across
// k distinct memory nodes and adds m *parity* granules on m further nodes;
// any m members may be lost and every lost member is recoverable from the
// surviving k — at (k+m)/k capacity instead of Nx.
//
// The code itself is Reed-Solomon over GF(2^8) with an identity-plus-Cauchy
// generator: parity p is
//     P_p[i] = XOR_j gmul(1 / ((k+p) ^ j), D_j[i]),   j = 0..k-1
// i.e. the parity block is the Cauchy matrix C[p][j] = (x_p ^ y_j)^-1 with
// x_p = k+p and y_j = j. Every square submatrix of a Cauchy matrix is
// nonsingular, so the code is MDS for *arbitrary* (k, m) with k+m <= 256:
// any m lost members are recoverable from any k survivors. (The previous
// identity-plus-Vandermonde rows were MDS only for m <= 2; Reconstruct()'s
// singularity check remains as a defense-in-depth guard.)
//
// ECCodec is pure arithmetic: no fabric, no router, no clock. Layout
// (which granule belongs to which stripe, which node holds which member)
// lives in ShardRouter; orchestration (who reads what when) lives in the
// runtime's degraded-read path, the cleaner's parity update, and the repair
// manager's rebuild loop.
#ifndef DILOS_SRC_RECOVERY_EC_H_
#define DILOS_SRC_RECOVERY_EC_H_

#include <cstddef>
#include <cstdint>

namespace dilos {

// Erasure-coding knob block consumed by DilosConfig / ShardRouter. When
// enabled it *replaces* replication: each granule has one data copy plus a
// share of m parity granules, instead of R full copies. Requires a fabric
// with at least k + m non-spare nodes (the router clamps k down if not).
struct ECConfig {
  bool enabled = false;
  int k = 4;  // Data granules per stripe.
  int m = 2;  // Parity granules per stripe (failures tolerated).
};

class ECCodec {
 public:
  ECCodec(int k, int m);

  int k() const { return k_; }
  int m() const { return m_; }

  // Generator-matrix coefficient of data member `j` (0..k-1) in stripe
  // member `member` (0..k+m-1). Data rows are the identity; parity row
  // k+p is the Cauchy row ((k+p) ^ j)^-1.
  uint8_t Coef(int member, int j) const;

  // dst[i] ^= gmul(coef, src[i]) for n bytes — the parity-update primitive:
  // with coef = Coef(k+p, j), folding (old ^ new) of data member j into
  // parity p keeps the stripe consistent without touching other members.
  static void XorMulInto(uint8_t* dst, const uint8_t* src, uint8_t coef, size_t n);

  // Reconstructs stripe member `lost` (data or parity) from `count` >= k
  // surviving members: members[i] names the member index of blocks[i].
  // Returns false if the survivor set cannot determine the lost member
  // (fewer than k survivors, or a singular combination for m > 2).
  bool Reconstruct(int lost, const int* members, const uint8_t* const* blocks, int count,
                   uint8_t* out, size_t n) const;

  // GF(2^8) arithmetic (AES polynomial 0x11D), exposed for tests.
  static uint8_t GfMul(uint8_t a, uint8_t b);
  static uint8_t GfInv(uint8_t a);
  static uint8_t GfPow(uint8_t base, unsigned e);

 private:
  int k_;
  int m_;
};

}  // namespace dilos

#endif  // DILOS_SRC_RECOVERY_EC_H_
