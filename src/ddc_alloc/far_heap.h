// mimalloc-style user-level allocator over far memory (paper Sec. 4.4, 5,
// 6.3 "Guided paging").
//
// The allocator is size-class segregated: each 4 KB heap page serves one
// size class and carries a *live-chunk bitmap*. The paper modified mimalloc
// to track freed chunks in bitmaps instead of free lists precisely so the
// paging guide can ask "which bytes of this page are live?" and move only
// those over the wire. LiveSegments() answers that question, merging chunks
// into at most `max_segs` extents (the paper found vectors longer than
// three slow down RDMA, so it caps the vector and pads with dead bytes).
//
// Metadata (page tables of the heap, bitmaps) lives on the compute node, as
// allocator state does in the real system.
#ifndef DILOS_SRC_DDC_ALLOC_FAR_HEAP_H_
#define DILOS_SRC_DDC_ALLOC_FAR_HEAP_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/dilos/guide.h"
#include "src/sim/far_runtime.h"

namespace dilos {

class FarHeap {
 public:
  // Chunk sizes served from dedicated pages; larger allocations get whole
  // pages. All multiples of 16 (the allocator's alignment).
  static constexpr std::array<uint32_t, 14> kSizeClasses = {
      16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1360, 2048};
  static constexpr uint32_t kMaxSmall = 2048;

  explicit FarHeap(FarRuntime& rt) : rt_(&rt) {}

  // ddc_malloc: returns a far address of at least `size` bytes.
  uint64_t Malloc(uint64_t size);
  // ddc_free: releases the chunk at `addr` (must come from Malloc).
  void Free(uint64_t addr);

  // Guided-paging query: live extents of the heap page at `page_va`,
  // merged to at most `max_segs` segments. Returns false when the page is
  // unknown to the heap, fully live, or fully dead (caller should then move
  // the whole page).
  bool LiveSegments(uint64_t page_va, std::vector<PageSegment>* segs,
                    uint32_t max_segs = 3) const;

  // Size of the chunk at `addr` (0 if unknown).
  uint64_t UsableSize(uint64_t addr) const;

  uint64_t live_bytes() const { return live_bytes_; }
  uint64_t live_chunks() const { return live_chunks_; }
  FarRuntime& runtime() { return *rt_; }

 private:
  static constexpr uint32_t kBitmapWords = 4;  // 256 chunks max per page.

  struct PageMeta {
    uint16_t class_idx = 0;
    uint16_t used = 0;
    std::array<uint64_t, kBitmapWords> bitmap = {};
  };

  static size_t ClassFor(uint64_t size);
  uint64_t CarvePage();

  static bool BitGet(const std::array<uint64_t, kBitmapWords>& bm, uint32_t i) {
    return (bm[i / 64] >> (i % 64)) & 1;
  }
  static void BitSet(std::array<uint64_t, kBitmapWords>& bm, uint32_t i) {
    bm[i / 64] |= 1ULL << (i % 64);
  }
  static void BitClear(std::array<uint64_t, kBitmapWords>& bm, uint32_t i) {
    bm[i / 64] &= ~(1ULL << (i % 64));
  }

  FarRuntime* rt_;
  std::unordered_map<uint64_t, PageMeta> pages_;  // Key: page vaddr.
  // Pages per class with at least one free chunk.
  std::array<std::vector<uint64_t>, kSizeClasses.size()> partial_;
  std::vector<uint64_t> empty_pages_;                 // Fully-freed, reusable.
  std::unordered_map<uint64_t, uint64_t> large_;      // Base va -> page count.
  uint64_t slab_cursor_ = 0;
  uint64_t slab_end_ = 0;
  uint64_t live_bytes_ = 0;
  uint64_t live_chunks_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_DDC_ALLOC_FAR_HEAP_H_
