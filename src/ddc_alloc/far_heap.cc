#include "src/ddc_alloc/far_heap.h"

#include <cstddef>

namespace dilos {

namespace {
constexpr uint64_t kSlabPages = 1024;  // Far-region carve granularity.
}  // namespace

size_t FarHeap::ClassFor(uint64_t size) {
  for (size_t i = 0; i < kSizeClasses.size(); ++i) {
    if (size <= kSizeClasses[i]) {
      return i;
    }
  }
  return kSizeClasses.size();  // Large.
}

uint64_t FarHeap::CarvePage() {
  if (!empty_pages_.empty()) {
    uint64_t va = empty_pages_.back();
    empty_pages_.pop_back();
    return va;
  }
  if (slab_cursor_ >= slab_end_) {
    slab_cursor_ = rt_->AllocRegion(kSlabPages * kPageSize);
    slab_end_ = slab_cursor_ + kSlabPages * kPageSize;
  }
  uint64_t va = slab_cursor_;
  slab_cursor_ += kPageSize;
  return va;
}

uint64_t FarHeap::Malloc(uint64_t size) {
  if (size == 0) {
    size = 1;
  }
  size_t cls = ClassFor(size);
  if (cls == kSizeClasses.size()) {
    // Large allocation: whole pages, never from bitmap pages.
    uint64_t npages = (size + kPageSize - 1) / kPageSize;
    uint64_t base = rt_->AllocRegion(npages * kPageSize);
    large_[base] = npages;
    live_bytes_ += npages * kPageSize;
    live_chunks_++;
    return base;
  }

  uint32_t chunk = kSizeClasses[cls];
  uint32_t per_page = kPageSize / chunk;
  std::vector<uint64_t>& avail = partial_[cls];
  while (!avail.empty()) {
    uint64_t page_va = avail.back();
    auto it = pages_.find(page_va);
    if (it == pages_.end() || it->second.class_idx != cls || it->second.used >= per_page) {
      avail.pop_back();  // Stale entry.
      continue;
    }
    PageMeta& meta = it->second;
    for (uint32_t i = 0; i < per_page; ++i) {
      if (!BitGet(meta.bitmap, i)) {
        BitSet(meta.bitmap, i);
        meta.used++;
        if (meta.used >= per_page) {
          avail.pop_back();
        }
        live_bytes_ += chunk;
        live_chunks_++;
        return page_va + static_cast<uint64_t>(i) * chunk;
      }
    }
    avail.pop_back();  // Shouldn't happen; defensive.
  }

  uint64_t page_va = CarvePage();
  PageMeta meta;
  meta.class_idx = static_cast<uint16_t>(cls);
  meta.used = 1;
  BitSet(meta.bitmap, 0);
  pages_[page_va] = meta;
  if (per_page > 1) {
    avail.push_back(page_va);
  }
  live_bytes_ += chunk;
  live_chunks_++;
  return page_va;
}

void FarHeap::Free(uint64_t addr) {
  uint64_t page_va = addr & ~static_cast<uint64_t>(kPageSize - 1);
  auto it = pages_.find(page_va);
  if (it != pages_.end()) {
    PageMeta& meta = it->second;
    uint32_t chunk = kSizeClasses[meta.class_idx];
    uint32_t idx = static_cast<uint32_t>((addr - page_va) / chunk);
    if (!BitGet(meta.bitmap, idx)) {
      return;  // Double free: ignore (mimalloc would assert in debug).
    }
    BitClear(meta.bitmap, idx);
    uint32_t per_page = kPageSize / chunk;
    bool was_full = meta.used >= per_page;
    meta.used--;
    live_bytes_ -= chunk;
    live_chunks_--;
    if (meta.used == 0) {
      pages_.erase(it);
      empty_pages_.push_back(page_va);
    } else if (was_full) {
      partial_[meta.class_idx].push_back(page_va);
    }
    return;
  }
  auto lg = large_.find(addr);
  if (lg != large_.end()) {
    live_bytes_ -= lg->second * kPageSize;
    live_chunks_--;
    large_.erase(lg);
  }
}

uint64_t FarHeap::UsableSize(uint64_t addr) const {
  uint64_t page_va = addr & ~static_cast<uint64_t>(kPageSize - 1);
  auto it = pages_.find(page_va);
  if (it != pages_.end()) {
    return kSizeClasses[it->second.class_idx];
  }
  auto lg = large_.find(addr);
  if (lg != large_.end()) {
    return lg->second * kPageSize;
  }
  return 0;
}

bool FarHeap::LiveSegments(uint64_t page_va, std::vector<PageSegment>* segs,
                           uint32_t max_segs) const {
  auto it = pages_.find(page_va);
  if (it == pages_.end()) {
    return false;  // Large allocation or foreign page: whole-page semantics.
  }
  const PageMeta& meta = it->second;
  uint32_t chunk = kSizeClasses[meta.class_idx];
  uint32_t per_page = kPageSize / chunk;
  if (meta.used == 0 || meta.used >= per_page) {
    return false;  // Fully dead or fully live: no savings from a vector.
  }

  // Collect maximal runs of live chunks.
  std::vector<PageSegment> runs;
  uint32_t run_start = UINT32_MAX;
  for (uint32_t i = 0; i <= per_page; ++i) {
    bool live = i < per_page && BitGet(meta.bitmap, i);
    if (live && run_start == UINT32_MAX) {
      run_start = i;
    } else if (!live && run_start != UINT32_MAX) {
      runs.push_back({run_start * chunk, (i - run_start) * chunk});
      run_start = UINT32_MAX;
    }
  }

  // Merge nearest runs until the vector fits (paying dead bytes for fewer
  // segments, as the guide does for RDMA efficiency).
  while (runs.size() > max_segs) {
    size_t best = 0;
    uint32_t best_gap = UINT32_MAX;
    for (size_t i = 0; i + 1 < runs.size(); ++i) {
      uint32_t gap = runs[i + 1].offset - (runs[i].offset + runs[i].length);
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    runs[best].length = runs[best + 1].offset + runs[best + 1].length - runs[best].offset;
    runs.erase(runs.begin() + static_cast<ptrdiff_t>(best) + 1);
  }

  *segs = std::move(runs);
  return true;
}

}  // namespace dilos
