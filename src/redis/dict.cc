#include "src/redis/dict.h"

namespace dilos {

namespace {
constexpr uint32_t kEntrySize = 32;
constexpr uint64_t kRehashStepBuckets = 2;  // Buckets migrated per operation.
}  // namespace

FarDict::FarDict(FarHeap& heap, uint64_t buckets) : heap_(heap) {
  uint64_t cap = 1;
  while (cap < buckets) {
    cap <<= 1;
  }
  mask_ = cap - 1;
  table_ = std::make_unique<FarArray<uint64_t>>(heap.runtime(), cap);
  // Bucket pages are zero-filled on first touch; no explicit init needed.
}

uint64_t FarDict::Hash(const std::string& key) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a.
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

void FarDict::MaybeStartRehash() {
  if (new_table_ != nullptr || count_ <= mask_ + 1) {
    return;  // Already rehashing, or load factor still <= 1.
  }
  uint64_t new_cap = (mask_ + 1) * 2;
  new_mask_ = new_cap - 1;
  new_table_ = std::make_unique<FarArray<uint64_t>>(rt(), new_cap);
  rehash_pos_ = 0;
}

void FarDict::RehashStep(uint64_t buckets) {
  if (new_table_ == nullptr) {
    return;
  }
  for (uint64_t b = 0; b < buckets && rehash_pos_ <= mask_; ++b, ++rehash_pos_) {
    uint64_t entry = table_->Get(rehash_pos_);
    table_->Set(rehash_pos_, 0);
    while (entry != 0) {
      uint64_t next = rt().Read<uint64_t>(entry + 16);
      uint64_t key_sds = rt().Read<uint64_t>(entry);
      // Re-read the key bytes to recompute its hash, as Redis does (the
      // entry does not cache the hash).
      std::string key;
      SdsRead(rt(), key_sds, &key);
      uint64_t bucket = Hash(key) & new_mask_;
      rt().Write<uint64_t>(entry + 16, new_table_->Get(bucket));
      new_table_->Set(bucket, entry);
      entry = next;
      ++rehash_steps_;
    }
  }
  if (rehash_pos_ > mask_) {
    // Migration finished: the new table becomes the table.
    table_ = std::move(new_table_);
    mask_ = new_mask_;
    new_table_.reset();
  }
}

FarArray<uint64_t>* FarDict::TableFor(uint64_t hash, uint64_t* index) {
  if (new_table_ != nullptr) {
    uint64_t old_bucket = hash & mask_;
    if (old_bucket < rehash_pos_) {
      *index = hash & new_mask_;
      return new_table_.get();
    }
    *index = old_bucket;
    return table_.get();
  }
  *index = hash & mask_;
  return table_.get();
}

uint64_t FarDict::Find(const std::string& key) {
  RehashStep(kRehashStepBuckets);
  uint64_t index;
  FarArray<uint64_t>* table = TableFor(Hash(key), &index);
  uint64_t entry = table->Get(index);
  while (entry != 0) {
    uint64_t key_sds = rt().Read<uint64_t>(entry);
    if (SdsEquals(rt(), key_sds, key.data(), static_cast<uint32_t>(key.size()))) {
      return entry;
    }
    entry = rt().Read<uint64_t>(entry + 16);
  }
  return 0;
}

uint64_t FarDict::Insert(const std::string& key, uint64_t val, uint32_t flags) {
  MaybeStartRehash();
  RehashStep(kRehashStepBuckets);
  uint64_t index;
  FarArray<uint64_t>* table = TableFor(Hash(key), &index);
  uint64_t head = table->Get(index);
  uint64_t key_sds = SdsNew(heap_, key.data(), static_cast<uint32_t>(key.size()));
  uint64_t entry = heap_.Malloc(kEntrySize);
  rt().Write<uint64_t>(entry, key_sds);
  rt().Write<uint64_t>(entry + 8, val);
  rt().Write<uint64_t>(entry + 16, head);
  rt().Write<uint32_t>(entry + 24, flags);
  rt().Write<uint32_t>(entry + 28, 0);
  table->Set(index, entry);
  ++count_;
  return entry;
}

bool FarDict::Remove(const std::string& key, uint64_t* old_val, uint32_t* old_flags) {
  RehashStep(kRehashStepBuckets);
  uint64_t index;
  FarArray<uint64_t>* table = TableFor(Hash(key), &index);
  uint64_t entry = table->Get(index);
  uint64_t prev = 0;
  while (entry != 0) {
    uint64_t key_sds = rt().Read<uint64_t>(entry);
    uint64_t next = rt().Read<uint64_t>(entry + 16);
    if (SdsEquals(rt(), key_sds, key.data(), static_cast<uint32_t>(key.size()))) {
      if (prev == 0) {
        table->Set(index, next);
      } else {
        rt().Write<uint64_t>(prev + 16, next);
      }
      *old_val = rt().Read<uint64_t>(entry + 8);
      *old_flags = rt().Read<uint32_t>(entry + 24);
      SdsFree(heap_, key_sds);
      heap_.Free(entry);
      --count_;
      return true;
    }
    prev = entry;
    entry = next;
  }
  return false;
}

}  // namespace dilos
