// Simple Dynamic Strings on the far heap (Redis' string representation;
// paper Sec. 6.3 "App-aware prefetcher for Redis").
//
// Layout, kept deliberately close to real SDS so the GET guide can read the
// header with one subpage fetch and learn the exact value length:
//
//   offset 0: uint32_t len     (bytes of payload)
//   offset 4: uint32_t alloc   (capacity)
//   offset 8: payload bytes
//
// An "sds address" is the far address of the header.
#ifndef DILOS_SRC_REDIS_SDS_H_
#define DILOS_SRC_REDIS_SDS_H_

#include <cstdint>
#include <string>

#include "src/ddc_alloc/far_heap.h"

namespace dilos {

inline constexpr uint32_t kSdsHeader = 8;

// Allocates an sds holding `len` bytes of `data`. Returns its far address.
uint64_t SdsNew(FarHeap& heap, const void* data, uint32_t len);

// Frees an sds.
void SdsFree(FarHeap& heap, uint64_t sds);

// Payload length (reads the header from far memory).
uint32_t SdsLen(FarRuntime& rt, uint64_t sds);

// Copies the payload into `out` (replaces contents).
void SdsRead(FarRuntime& rt, uint64_t sds, std::string* out);

// True if the payload equals [data, data+len). Short-circuits on length.
bool SdsEquals(FarRuntime& rt, uint64_t sds, const void* data, uint32_t len);

}  // namespace dilos

#endif  // DILOS_SRC_REDIS_SDS_H_
