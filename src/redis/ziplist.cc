#include "src/redis/ziplist.h"

namespace dilos {

uint64_t ZiplistNew(FarHeap& heap) {
  uint64_t zl = heap.Malloc(kZiplistHeader + kZiplistCapBytes);
  FarRuntime& rt = heap.runtime();
  rt.Write<uint32_t>(zl, 0);
  rt.Write<uint32_t>(zl + 4, 0);
  return zl;
}

void ZiplistFree(FarHeap& heap, uint64_t zl) { heap.Free(zl); }

uint32_t ZiplistCount(FarRuntime& rt, uint64_t zl) { return rt.Read<uint32_t>(zl + 4); }
uint32_t ZiplistUsed(FarRuntime& rt, uint64_t zl) { return rt.Read<uint32_t>(zl); }

bool ZiplistAppend(FarRuntime& rt, uint64_t zl, const void* data, uint16_t len) {
  uint32_t used = rt.Read<uint32_t>(zl);
  uint32_t count = rt.Read<uint32_t>(zl + 4);
  if (count >= kZiplistMaxEntries || used + 2u + len > kZiplistCapBytes) {
    return false;
  }
  uint64_t at = zl + kZiplistHeader + used;
  rt.Write<uint16_t>(at, len);
  rt.WriteBytes(at + 2, data, len);
  rt.Write<uint32_t>(zl, used + 2 + len);
  rt.Write<uint32_t>(zl + 4, count + 1);
  return true;
}

uint32_t ZiplistRange(FarRuntime& rt, uint64_t zl, uint32_t start, uint32_t max_entries,
                      std::vector<std::string>* out) {
  uint32_t used = rt.Read<uint32_t>(zl);
  uint32_t count = rt.Read<uint32_t>(zl + 4);
  uint64_t p = zl + kZiplistHeader;
  uint64_t end = p + used;
  uint32_t idx = 0;
  uint32_t emitted = 0;
  while (p < end && idx < count && emitted < max_entries) {
    uint16_t len = rt.Read<uint16_t>(p);
    if (idx >= start) {
      std::string s;
      s.resize(len);
      if (len > 0) {
        rt.ReadBytes(p + 2, s.data(), len);
      }
      out->push_back(std::move(s));
      ++emitted;
    }
    p += 2u + len;
    ++idx;
  }
  return emitted;
}

}  // namespace dilos
