#include "src/redis/redis.h"

namespace dilos {

namespace {
constexpr uint32_t kRootSize = 32;
constexpr uint32_t kNodeSize = 32;
}  // namespace

RedisLite::RedisLite(FarRuntime& rt, uint64_t expected_keys)
    : rt_(rt), heap_(rt), dict_(heap_, expected_keys + expected_keys / 2) {}

void RedisLite::FreeValue(uint64_t val, uint32_t flags) {
  if (flags == kValString) {
    SdsFree(heap_, val);
    return;
  }
  // List: free every node's ziplist, the nodes, and the root.
  uint64_t node = rt_.Read<uint64_t>(val);  // root.head
  while (node != 0) {
    uint64_t next = rt_.Read<uint64_t>(node + 8);
    uint64_t zl = rt_.Read<uint64_t>(node + 16);
    ZiplistFree(heap_, zl);
    heap_.Free(node);
    node = next;
  }
  heap_.Free(val);
}

void RedisLite::Set(const std::string& key, const std::string& value) {
  rt_.clock().Advance(costs_.cmd_overhead_ns);
  if (hooks_ != nullptr) {
    hooks_->OnCommandBegin();
  }
  uint64_t entry = dict_.Find(key);
  uint64_t sds = SdsNew(heap_, value.data(), static_cast<uint32_t>(value.size()));
  if (entry != 0) {
    FreeValue(dict_.EntryVal(entry), dict_.EntryFlags(entry));
    dict_.SetEntryVal(entry, sds);
  } else {
    dict_.Insert(key, sds, kValString);
  }
}

bool RedisLite::Get(const std::string& key, std::string* out) {
  rt_.clock().Advance(costs_.cmd_overhead_ns);
  if (hooks_ != nullptr) {
    hooks_->OnCommandBegin();
  }
  uint64_t entry = dict_.Find(key);
  if (entry == 0 || dict_.EntryFlags(entry) != kValString) {
    return false;
  }
  uint64_t sds = dict_.EntryVal(entry);
  if (hooks_ != nullptr) {
    hooks_->OnValueAccessBegin(sds);
  }
  SdsRead(rt_, sds, out);
  return true;
}

bool RedisLite::Del(const std::string& key) {
  rt_.clock().Advance(costs_.cmd_overhead_ns);
  if (hooks_ != nullptr) {
    hooks_->OnCommandBegin();
  }
  uint64_t val = 0;
  uint32_t flags = 0;
  if (!dict_.Remove(key, &val, &flags)) {
    return false;
  }
  FreeValue(val, flags);
  return true;
}

uint64_t RedisLite::NewListNode(uint64_t prev) {
  uint64_t node = heap_.Malloc(kNodeSize);
  uint64_t zl = ZiplistNew(heap_);
  rt_.Write<uint64_t>(node, prev);
  rt_.Write<uint64_t>(node + 8, 0);
  rt_.Write<uint64_t>(node + 16, zl);
  rt_.Write<uint32_t>(node + 24, 0);
  rt_.Write<uint32_t>(node + 28, 0);
  return node;
}

void RedisLite::Rpush(const std::string& key, const std::string& value) {
  rt_.clock().Advance(costs_.cmd_overhead_ns);
  if (hooks_ != nullptr) {
    hooks_->OnCommandBegin();
  }
  uint64_t entry = dict_.Find(key);
  uint64_t root;
  if (entry == 0) {
    root = heap_.Malloc(kRootSize);
    uint64_t node = NewListNode(0);
    rt_.Write<uint64_t>(root, node);       // head
    rt_.Write<uint64_t>(root + 8, node);   // tail
    rt_.Write<uint64_t>(root + 16, 0);     // count
    rt_.Write<uint32_t>(root + 24, 1);     // nnodes
    rt_.Write<uint32_t>(root + 28, 0);
    dict_.Insert(key, root, kValList);
  } else {
    root = dict_.EntryVal(entry);
  }

  uint64_t tail = rt_.Read<uint64_t>(root + 8);
  uint64_t zl = rt_.Read<uint64_t>(tail + 16);
  if (!ZiplistAppend(rt_, zl, value.data(), static_cast<uint16_t>(value.size()))) {
    uint64_t node = NewListNode(tail);
    rt_.Write<uint64_t>(tail + 8, node);  // tail.next
    rt_.Write<uint64_t>(root + 8, node);  // root.tail
    rt_.Write<uint32_t>(root + 24, rt_.Read<uint32_t>(root + 24) + 1);
    tail = node;
    zl = rt_.Read<uint64_t>(tail + 16);
    ZiplistAppend(rt_, zl, value.data(), static_cast<uint16_t>(value.size()));
  }
  rt_.Write<uint32_t>(tail + 24, rt_.Read<uint32_t>(tail + 24) + 1);
  rt_.Write<uint64_t>(root + 16, rt_.Read<uint64_t>(root + 16) + 1);
}

uint32_t RedisLite::Lrange(const std::string& key, uint32_t start, uint32_t count,
                           std::vector<std::string>* out) {
  rt_.clock().Advance(costs_.cmd_overhead_ns);
  if (hooks_ != nullptr) {
    hooks_->OnCommandBegin();
  }
  uint64_t entry = dict_.Find(key);
  if (entry == 0 || dict_.EntryFlags(entry) != kValList) {
    return 0;
  }
  uint64_t root = dict_.EntryVal(entry);
  uint64_t node = rt_.Read<uint64_t>(root);  // head
  if (hooks_ != nullptr && node != 0) {
    hooks_->OnListTraverseBegin(node, start + count);
  }
  uint32_t skipped = 0;
  uint32_t emitted = 0;
  while (node != 0 && emitted < count) {
    if (hooks_ != nullptr) {
      hooks_->OnListTraverseNode(node);
    }
    uint64_t zl = rt_.Read<uint64_t>(node + 16);
    uint32_t node_count = rt_.Read<uint32_t>(node + 24);
    if (skipped + node_count > start) {
      uint32_t local_start = start > skipped ? start - skipped : 0;
      emitted += ZiplistRange(rt_, zl, local_start, count - emitted, out);
    }
    skipped += node_count;
    node = rt_.Read<uint64_t>(node + 8);
  }
  return emitted;
}

}  // namespace dilos
