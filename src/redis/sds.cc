#include "src/redis/sds.h"

#include <cstring>
#include <vector>

namespace dilos {

uint64_t SdsNew(FarHeap& heap, const void* data, uint32_t len) {
  uint64_t addr = heap.Malloc(kSdsHeader + len + 1);
  FarRuntime& rt = heap.runtime();
  rt.Write<uint32_t>(addr, len);
  rt.Write<uint32_t>(addr + 4, len + 1);
  if (len > 0) {
    rt.WriteBytes(addr + kSdsHeader, data, len);
  }
  rt.Write<uint8_t>(addr + kSdsHeader + len, 0);  // Terminator, as in Redis.
  return addr;
}

void SdsFree(FarHeap& heap, uint64_t sds) { heap.Free(sds); }

uint32_t SdsLen(FarRuntime& rt, uint64_t sds) { return rt.Read<uint32_t>(sds); }

void SdsRead(FarRuntime& rt, uint64_t sds, std::string* out) {
  uint32_t len = SdsLen(rt, sds);
  out->resize(len);
  if (len > 0) {
    rt.ReadBytes(sds + kSdsHeader, out->data(), len);
  }
}

bool SdsEquals(FarRuntime& rt, uint64_t sds, const void* data, uint32_t len) {
  if (SdsLen(rt, sds) != len) {
    return false;
  }
  std::vector<uint8_t> buf(len);
  if (len > 0) {
    rt.ReadBytes(sds + kSdsHeader, buf.data(), len);
  }
  return len == 0 || std::memcmp(buf.data(), data, len) == 0;
}

}  // namespace dilos
