// Chained hash table on the far heap — Redis' main keyspace dict.
//
// Bucket array and entries live in far memory; a GET therefore walks
// bucket -> entry -> key-sds -> value-sds, each hop a potential remote page
// (the pointer-chasing the paper's Sec. 6.2 calls "highly irregular").
//
// Entry layout (32 B, one size-class chunk):
//   0:  uint64_t key_sds
//   8:  uint64_t val      (sds addr or quicklist root addr)
//   16: uint64_t next     (0 = end of chain)
//   24: uint32_t flags    (kValString / kValList)
//   28: uint32_t pad
#ifndef DILOS_SRC_REDIS_DICT_H_
#define DILOS_SRC_REDIS_DICT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/ddc_alloc/far_heap.h"
#include "src/redis/sds.h"

namespace dilos {

inline constexpr uint32_t kValString = 0;
inline constexpr uint32_t kValList = 1;

class FarDict {
 public:
  // `buckets` is rounded up to a power of two. The table grows by
  // incremental rehashing, Redis-style: when the load factor exceeds 1, a
  // double-size table is allocated and every subsequent operation migrates
  // a few buckets, so no single command pays the full rehash.
  FarDict(FarHeap& heap, uint64_t buckets);

  // Far address of the entry for `key`, or 0.
  uint64_t Find(const std::string& key);

  // Inserts `key` (must not exist) with `val`/`flags`; returns entry addr.
  uint64_t Insert(const std::string& key, uint64_t val, uint32_t flags);

  // Unlinks `key`; outputs its value and flags. Frees the entry and key sds
  // (the caller owns freeing the value). False if absent.
  bool Remove(const std::string& key, uint64_t* old_val, uint32_t* old_flags);

  uint64_t EntryVal(uint64_t entry) { return rt().Read<uint64_t>(entry + 8); }
  uint32_t EntryFlags(uint64_t entry) { return rt().Read<uint32_t>(entry + 24); }
  void SetEntryVal(uint64_t entry, uint64_t val) { rt().Write<uint64_t>(entry + 8, val); }

  size_t size() const { return count_; }
  uint64_t buckets() const { return mask_ + 1; }
  bool rehashing() const { return new_table_ != nullptr; }
  uint64_t rehash_steps() const { return rehash_steps_; }

 private:
  FarRuntime& rt() { return heap_.runtime(); }
  static uint64_t Hash(const std::string& key);

  // Bucket that `hash` lives in *now* (old table until its bucket has been
  // migrated, new table afterwards). Returns the table and index.
  FarArray<uint64_t>* TableFor(uint64_t hash, uint64_t* index);
  void MaybeStartRehash();
  // Migrates up to `buckets` old-table buckets into the new table.
  void RehashStep(uint64_t buckets);

  FarHeap& heap_;
  std::unique_ptr<FarArray<uint64_t>> table_;
  uint64_t mask_;
  std::unique_ptr<FarArray<uint64_t>> new_table_;  // Non-null while rehashing.
  uint64_t new_mask_ = 0;
  uint64_t rehash_pos_ = 0;  // Next old bucket to migrate.
  uint64_t rehash_steps_ = 0;
  size_t count_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_REDIS_DICT_H_
