#include "src/redis/redis_bench.h"

#include <cstdio>

namespace dilos {

std::string RedisBench::KeyName(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key:%010llu", static_cast<unsigned long long>(i));
  return buf;
}

std::string RedisBench::MakeValue(uint32_t size, uint64_t salt) {
  std::string v(size, '\0');
  uint64_t x = salt * 0x9E3779B97F4A7C15ULL + 1;
  for (uint32_t i = 0; i < size; ++i) {
    v[i] = static_cast<char>('A' + ((x >> (i % 48)) + i) % 26);
  }
  return v;
}

void RedisBench::PopulateStrings(uint64_t nkeys, const std::vector<uint32_t>& sizes) {
  live_.clear();
  live_.reserve(nkeys);
  for (uint64_t i = 0; i < nkeys; ++i) {
    uint32_t size = sizes[i % sizes.size()];
    redis_.Set(KeyName(i), MakeValue(size, i));
    live_.push_back(i);
  }
}

RedisBenchResult RedisBench::RunGet(uint64_t queries) {
  RedisBenchResult res;
  Clock& clk = redis_.runtime().clock();
  uint64_t t0 = clk.now();
  std::string value;
  for (uint64_t q = 0; q < queries; ++q) {
    uint64_t idx = live_[rng_.NextBelow(live_.size())];
    uint64_t op0 = clk.now();
    bool ok = redis_.Get(KeyName(idx), &value);
    res.latency.Record(clk.now() - op0);
    res.ops += ok ? 1 : 0;
  }
  res.elapsed_ns = clk.now() - t0;
  return res;
}

RedisBenchResult RedisBench::RunGetZipf(uint64_t queries, double theta) {
  RedisBenchResult res;
  Clock& clk = redis_.runtime().clock();
  ZipfSampler zipf(live_.size(), theta, 123);
  uint64_t t0 = clk.now();
  std::string value;
  for (uint64_t q = 0; q < queries; ++q) {
    uint64_t idx = live_[zipf.Next()];
    uint64_t op0 = clk.now();
    bool ok = redis_.Get(KeyName(idx), &value);
    res.latency.Record(clk.now() - op0);
    res.ops += ok ? 1 : 0;
  }
  res.elapsed_ns = clk.now() - t0;
  return res;
}

RedisBenchResult RedisBench::RunDel(uint64_t ndel) {
  RedisBenchResult res;
  Clock& clk = redis_.runtime().clock();
  uint64_t t0 = clk.now();
  for (uint64_t q = 0; q < ndel && !live_.empty(); ++q) {
    uint64_t pos = rng_.NextBelow(live_.size());
    uint64_t idx = live_[pos];
    live_[pos] = live_.back();
    live_.pop_back();
    uint64_t op0 = clk.now();
    bool ok = redis_.Del(KeyName(idx));
    res.latency.Record(clk.now() - op0);
    res.ops += ok ? 1 : 0;
  }
  res.elapsed_ns = clk.now() - t0;
  return res;
}

void RedisBench::PopulateLists(uint64_t nlists, uint64_t total_elems, uint32_t elem_size) {
  nlists_ = nlists;
  for (uint64_t e = 0; e < total_elems; ++e) {
    uint64_t list = rng_.NextBelow(nlists);
    redis_.Rpush("list:" + KeyName(list), MakeValue(elem_size, e));
  }
}

RedisBenchResult RedisBench::RunLrange(uint64_t queries, uint32_t count) {
  RedisBenchResult res;
  Clock& clk = redis_.runtime().clock();
  uint64_t t0 = clk.now();
  std::vector<std::string> out;
  for (uint64_t q = 0; q < queries; ++q) {
    uint64_t list = rng_.NextBelow(nlists_);
    out.clear();
    uint64_t op0 = clk.now();
    redis_.Lrange("list:" + KeyName(list), 0, count, &out);
    res.latency.Record(clk.now() - op0);
    res.ops++;
  }
  res.elapsed_ns = clk.now() - t0;
  return res;
}

}  // namespace dilos
