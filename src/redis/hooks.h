// Hook points the app-aware guides attach to.
//
// In the paper, DiLOS' ELF loader patches application functions so a guide
// (a third-party shared object) observes the data structures the app is
// about to traverse — "we need not modify the Redis main code" (Sec. 6.3).
// The simulator models those patched call sites as explicit hook
// invocations from Redis-lite; the guide implements this interface.
#ifndef DILOS_SRC_REDIS_HOOKS_H_
#define DILOS_SRC_REDIS_HOOKS_H_

#include <cstdint>

namespace dilos {

class RedisHooks {
 public:
  virtual ~RedisHooks() = default;

  // A new command is being dispatched; prior traversal state is stale.
  virtual void OnCommandBegin() {}

  // A GET is about to read the value sds at `sds_addr`.
  virtual void OnValueAccessBegin(uint64_t sds_addr) { (void)sds_addr; }

  // An LRANGE traversal is starting at quicklist node `node_addr`, needing
  // `count` elements (hooked from the command's arguments).
  virtual void OnListTraverseBegin(uint64_t node_addr, uint32_t count) {
    (void)node_addr;
    (void)count;
  }

  // The traversal moved to `node_addr`.
  virtual void OnListTraverseNode(uint64_t node_addr) { (void)node_addr; }
};

}  // namespace dilos

#endif  // DILOS_SRC_REDIS_HOOKS_H_
