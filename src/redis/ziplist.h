// Ziplist: Redis' compact list encoding — a contiguous byte buffer of
// length-prefixed entries. Quicklist nodes each own one ziplist (paper
// Sec. 6.3: "LRANGE uses a quicklist, which stores strings in a linked
// list of ziplists").
//
// Far layout:
//   offset 0: uint32_t used    (bytes of entry data after the header)
//   offset 4: uint32_t count   (number of entries)
//   offset 8: entries: { uint16_t len; uint8_t data[len] }*
#ifndef DILOS_SRC_REDIS_ZIPLIST_H_
#define DILOS_SRC_REDIS_ZIPLIST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ddc_alloc/far_heap.h"

namespace dilos {

inline constexpr uint32_t kZiplistHeader = 8;
// Capacity per ziplist: sized so a ~32-entry list of ~100 B strings fills
// roughly one page, giving LRANGE its page-per-node access pattern.
inline constexpr uint32_t kZiplistCapBytes = 3600;
inline constexpr uint32_t kZiplistMaxEntries = 32;

// Allocates an empty ziplist with kZiplistCapBytes of capacity.
uint64_t ZiplistNew(FarHeap& heap);
void ZiplistFree(FarHeap& heap, uint64_t zl);

uint32_t ZiplistCount(FarRuntime& rt, uint64_t zl);
uint32_t ZiplistUsed(FarRuntime& rt, uint64_t zl);

// Appends an entry; returns false if it would overflow capacity or the
// entry cap (caller then starts a new node).
bool ZiplistAppend(FarRuntime& rt, uint64_t zl, const void* data, uint16_t len);

// Decodes up to `max_entries` entries starting at entry index `start`,
// appending strings to `out`. Returns entries decoded.
uint32_t ZiplistRange(FarRuntime& rt, uint64_t zl, uint32_t start, uint32_t max_entries,
                      std::vector<std::string>* out);

}  // namespace dilos

#endif  // DILOS_SRC_REDIS_ZIPLIST_H_
