// redis-benchmark-style workload driver (paper Sec. 6.2 "In-memory
// key-value store" and Sec. 6.3): GET workloads with fixed and mixed
// (Facebook-photo-like) value sizes, the modified LRANGE_100 benchmark over
// 100k quicklists, and the DEL/GET sequence of the guided-paging
// experiment (Fig. 12).
#ifndef DILOS_SRC_REDIS_REDIS_BENCH_H_
#define DILOS_SRC_REDIS_REDIS_BENCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/redis/redis.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"
#include "src/telemetry/histogram.h"

namespace dilos {

struct RedisBenchResult {
  uint64_t ops = 0;
  uint64_t elapsed_ns = 0;
  // Log-bucketed (constant-memory) latency distribution. Replaced the
  // store-every-sample PercentileRecorder: same Record/Percentile/MeanNs
  // surface, percentiles within ~1.6% bucket width, O(#buckets) memory on
  // million-op runs instead of 8 bytes per op.
  LogHistogram latency;

  double OpsPerSec() const {
    return elapsed_ns == 0 ? 0.0
                           : static_cast<double>(ops) * 1e9 / static_cast<double>(elapsed_ns);
  }
};

// The paper's mixed GET workload: six equally distributed sizes covering
// >80% of Facebook photo-serving objects.
inline const std::vector<uint32_t>& PhotoMixSizes() {
  static const std::vector<uint32_t> kSizes = {4096, 8192, 16384, 32768, 65536, 131072};
  return kSizes;
}

class RedisBench {
 public:
  explicit RedisBench(RedisLite& redis, uint64_t seed = 7) : redis_(redis), rng_(seed) {}

  static std::string KeyName(uint64_t i);

  // Deterministic value payload ('A'..'Z' fill keyed by salt). Public and
  // static: it is also the single value generator behind the bench drivers
  // (BenchValue in bench/common.h), so payload synthesis exists once.
  static std::string MakeValue(uint32_t size, uint64_t salt);

  // SET-populates `nkeys` string keys; key i gets sizes[i % sizes.size()].
  void PopulateStrings(uint64_t nkeys, const std::vector<uint32_t>& sizes);

  // Uniform-random GETs over the live keyspace.
  RedisBenchResult RunGet(uint64_t queries);

  // Zipfian GETs (skewed popularity, like the Facebook photo traces the
  // paper's workload mix derives from). theta ~0.99 is the YCSB default.
  RedisBenchResult RunGetZipf(uint64_t queries, double theta = 0.99);

  // DELs `ndel` distinct random keys (Fig. 12's fragmentation phase).
  RedisBenchResult RunDel(uint64_t ndel);

  // RPUSHes `total_elems` elements of `elem_size` bytes to `nlists` lists
  // in random order (interleaving nodes across pages, as the paper does).
  void PopulateLists(uint64_t nlists, uint64_t total_elems, uint32_t elem_size);

  // LRANGE_100 over random lists.
  RedisBenchResult RunLrange(uint64_t queries, uint32_t count = 100);

  uint64_t live_keys() const { return live_.size(); }

 private:
  RedisLite& redis_;
  Rng rng_;
  std::vector<uint64_t> live_;   // Key indices still present.
  uint64_t nlists_ = 0;
};

}  // namespace dilos

#endif  // DILOS_SRC_REDIS_REDIS_BENCH_H_
