// Redis-lite: an in-memory key-value store whose keyspace, strings, and
// lists live entirely on the far heap (paper Sec. 6.2-6.3). Supports the
// commands the evaluation uses: SET/GET/DEL for strings, RPUSH/LRANGE for
// quicklists.
//
// Quicklist far layout:
//   root (32 B): 0: u64 head; 8: u64 tail; 16: u64 count; 24: u32 nnodes
//   node (32 B): 0: u64 prev; 8: u64 next; 16: u64 ziplist; 24: u32 count
#ifndef DILOS_SRC_REDIS_REDIS_H_
#define DILOS_SRC_REDIS_REDIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ddc_alloc/far_heap.h"
#include "src/redis/dict.h"
#include "src/redis/hooks.h"
#include "src/redis/ziplist.h"

namespace dilos {

struct RedisCosts {
  uint64_t cmd_overhead_ns = 300;  // Parse + dispatch + reply framing.
};

class RedisLite {
 public:
  explicit RedisLite(FarRuntime& rt, uint64_t expected_keys = 1 << 16);

  void Set(const std::string& key, const std::string& value);
  // Returns false if the key is missing or not a string.
  bool Get(const std::string& key, std::string* out);
  bool Del(const std::string& key);

  void Rpush(const std::string& key, const std::string& value);
  // Fills `out` with up to `count` elements from `start`; returns how many.
  uint32_t Lrange(const std::string& key, uint32_t start, uint32_t count,
                  std::vector<std::string>* out);

  void set_hooks(RedisHooks* hooks) { hooks_ = hooks; }

  FarHeap& heap() { return heap_; }
  FarDict& dict() { return dict_; }
  FarRuntime& runtime() { return rt_; }

 private:
  void FreeValue(uint64_t val, uint32_t flags);
  uint64_t NewListNode(uint64_t prev);

  FarRuntime& rt_;
  FarHeap heap_;
  FarDict dict_;
  RedisCosts costs_;
  RedisHooks* hooks_ = nullptr;
};

}  // namespace dilos

#endif  // DILOS_SRC_REDIS_REDIS_H_
