#!/usr/bin/env python3
"""Fault-phase waterfall renderer for archived bench JSON.

Usage: `python3 tools/phase_report.py BENCH_table4_tail_latency.json [more.json]`

Reads the BenchJson array format the bench binaries emit with `--json`
(`[{"bench": ..., "config": {...}, "metrics": {...}}, ...]`), picks out every
record that carries per-fault attribution shares — metrics named
`<prefix>share_<phase>` (bench_table4_tail_latency's `get_share_wire` etc.)
or `<prefix>lane_share` (bench_ablation_hol's SLO record) — and renders each
as an ASCII waterfall: one bar per phase, scaled to its share of attributed
fault time. Stdlib only; exits nonzero when no input file contains a single
attribution record (so CI notices a silently-dropped waterfall).
"""

import json
import os
import re
import sys

BAR_WIDTH = 40
SHARE_METRIC = re.compile(r"^(.*?)(?:share_([\w-]+)|(lane)_share)$")

# Display order mirrors FaultPhase (src/telemetry/attribution.h); unknown
# phase names sort after these, alphabetically.
PHASE_ORDER = [
    "handler", "alloc", "lane-wait", "wire", "backoff", "ec-decode",
    "decompress", "overlap", "park", "map", "stall", "heal",
]


def phase_key(name):
    return (PHASE_ORDER.index(name), "") if name in PHASE_ORDER else (len(PHASE_ORDER), name)


def bar(share):
    n = int(round(share * BAR_WIDTH))
    return "#" * n + "." * (BAR_WIDTH - n)


def waterfalls(record):
    """Yields (group, {phase: share}) per share-metric prefix in the record."""
    groups = {}
    for key, value in record.get("metrics", {}).items():
        m = SHARE_METRIC.match(key)
        if m is None or not isinstance(value, (int, float)):
            continue
        prefix = m.group(1).rstrip("_")
        # Metric names flatten FaultPhaseName's hyphens; "lane_share" is the
        # ablation bench's lane-wait share.
        phase = (m.group(2) or "lane-wait").replace("_", "-")
        groups.setdefault(prefix, {})[phase] = float(value)
    return sorted(groups.items())


def label(record):
    cfg = record.get("config", {})
    parts = [record.get("bench", "?")]
    for key in ("system", "variant", "workload"):
        if key in cfg:
            parts.append(str(cfg[key]))
    return " / ".join(parts)


def render(record):
    rendered = 0
    for group, shares in waterfalls(record):
        print(f"{label(record)}" + (f" [{group}]" if group else ""))
        for phase in sorted(shares, key=phase_key):
            share = shares[phase]
            print(f"  {phase:<10} {100.0 * share:6.2f}%  {bar(share)}")
        total = sum(shares.values())
        print(f"  {'total':<10} {100.0 * total:6.2f}%  (on-path shares shown; "
              "off-path stall/heal excluded from the tiling sum)")
        print()
        rendered += 1
    return rendered


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    rendered = 0
    for path in argv[1:]:
        if not os.path.exists(path):
            print(f"phase_report: no such file: {path}")
            return 1
        with open(path, encoding="utf-8") as fh:
            try:
                records = json.load(fh)
            except json.JSONDecodeError as e:
                print(f"phase_report: {path}: invalid JSON ({e})")
                return 1
        for record in records:
            rendered += render(record)
    if rendered == 0:
        print("phase_report: no attribution share metrics found in the input")
        return 1
    print(f"phase_report: {rendered} waterfall(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
