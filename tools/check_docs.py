#!/usr/bin/env python3
"""Documentation linter: broken intra-repo links and README coverage.

Run from anywhere: `python3 tools/check_docs.py`. Checks, stdlib only:

  1. Every intra-repo markdown link ([text](path) and bare `path` mentions
     of files that look like repo paths) in tracked *.md files resolves to
     an existing file or directory.
  2. Every top-level directory under src/ appears in README.md's
     repository-layout table, so the directory map cannot silently rot.

Exits nonzero with one line per violation.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) — markdown links only; external schemes and anchors skipped.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")


def md_files():
    out = []
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in (".git", "build", "build-asan")]
        for f in files:
            if f.endswith(".md"):
                out.append(os.path.join(root, f))
    return sorted(out)


def check_links(errors):
    for path in md_files():
        rel = os.path.relpath(path, REPO)
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                for target in MD_LINK.findall(line):
                    if "://" in target or target.startswith("mailto:"):
                        continue
                    # Resolve relative to the file, falling back to repo root
                    # (docs commonly link "src/..." from anywhere).
                    cand = [
                        os.path.normpath(os.path.join(os.path.dirname(path), target)),
                        os.path.normpath(os.path.join(REPO, target)),
                    ]
                    if not any(os.path.exists(c) for c in cand):
                        errors.append(f"{rel}:{lineno}: broken link -> {target}")


def check_readme_covers_src(errors):
    readme_path = os.path.join(REPO, "README.md")
    if not os.path.exists(readme_path):
        errors.append("README.md: missing")
        return
    with open(readme_path, encoding="utf-8") as fh:
        readme = fh.read()
    src = os.path.join(REPO, "src")
    for d in sorted(os.listdir(src)):
        if not os.path.isdir(os.path.join(src, d)):
            continue
        if f"src/{d}" not in readme:
            errors.append(
                f"README.md: directory src/{d} missing from the repository layout"
            )


def main():
    errors = []
    check_links(errors)
    check_readme_covers_src(errors)
    for e in errors:
        print(e)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)")
        return 1
    print(f"check_docs: OK ({len(md_files())} markdown files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
