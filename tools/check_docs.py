#!/usr/bin/env python3
"""Documentation linter: broken intra-repo links and README coverage.

Run from anywhere: `python3 tools/check_docs.py`. Checks, stdlib only:

  1. Every intra-repo markdown link ([text](path) and bare `path` mentions
     of files that look like repo paths) in tracked *.md files resolves to
     an existing file or directory.
  2. Every top-level directory under src/ appears in README.md's
     repository-layout table, so the directory map cannot silently rot.
  3. docs/observability.md stays in lockstep with the code: every
     RuntimeStats counter (src/sim/stats.h) has a `counter` row, every
     TraceEvent enumerator (src/sim/trace.h) has a `kName` row, every
     FaultPhase enumerator (src/telemetry/attribution.h) has a `kName` row,
     and every exported SLO / attribution Prometheus series (dilos_slo_*,
     dilos_fault_*) has a row. Documented names that no longer exist in the
     code also fail, so removing an enumerator forces removing its row.
  4. Every benchmark binary (bench/bench_*.cc) is mentioned in
     EXPERIMENTS.md, so each bench stays reproducible from the docs.
  5. Every file under docs/ is a markdown-link target in README.md's doc
     index — a doc nobody can navigate to is a doc that rots.

Exits nonzero with one line per violation.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) — markdown links only; external schemes and anchors skipped.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")


def md_files():
    out = []
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in (".git", "build", "build-asan")]
        for f in files:
            if f.endswith(".md"):
                out.append(os.path.join(root, f))
    return sorted(out)


def check_links(errors):
    for path in md_files():
        rel = os.path.relpath(path, REPO)
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                for target in MD_LINK.findall(line):
                    if "://" in target or target.startswith("mailto:"):
                        continue
                    # Resolve relative to the file, falling back to repo root
                    # (docs commonly link "src/..." from anywhere).
                    cand = [
                        os.path.normpath(os.path.join(os.path.dirname(path), target)),
                        os.path.normpath(os.path.join(REPO, target)),
                    ]
                    if not any(os.path.exists(c) for c in cand):
                        errors.append(f"{rel}:{lineno}: broken link -> {target}")


def check_readme_covers_src(errors):
    readme_path = os.path.join(REPO, "README.md")
    if not os.path.exists(readme_path):
        errors.append("README.md: missing")
        return
    with open(readme_path, encoding="utf-8") as fh:
        readme = fh.read()
    src = os.path.join(REPO, "src")
    for d in sorted(os.listdir(src)):
        if not os.path.isdir(os.path.join(src, d)):
            continue
        if f"src/{d}" not in readme:
            errors.append(
                f"README.md: directory src/{d} missing from the repository layout"
            )


def extract_struct_fields(header_path, struct_name, field_type):
    """uint64_t counter names declared directly inside `struct <name> {...}`."""
    with open(header_path, encoding="utf-8") as fh:
        text = fh.read()
    m = re.search(r"struct\s+%s\s*\{" % struct_name, text)
    if m is None:
        return []
    depth, i = 1, m.end()
    while i < len(text) and depth > 0:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
        i += 1
    body = text[m.end() : i]
    return re.findall(r"^\s*%s\s+(\w+)\s*=" % field_type, body, re.MULTILINE)


def extract_enumerators(header_path, enum_name):
    """Enumerator names of `enum class <name> ... {...}` (kCount excluded)."""
    with open(header_path, encoding="utf-8") as fh:
        text = fh.read()
    m = re.search(r"enum\s+class\s+%s[^{]*\{" % enum_name, text)
    if m is None:
        return []
    body = text[m.end() : text.index("}", m.end())]
    body = re.sub(r"//[^\n]*", "", body)
    names = re.findall(r"\b(k\w+)\b", body)
    return [n for n in names if n != "kCount"]


def check_observability_drift(errors):
    """The stats/trace tables in docs/observability.md must match the code."""
    doc_path = os.path.join(REPO, "docs", "observability.md")
    if not os.path.exists(doc_path):
        errors.append("docs/observability.md: missing")
        return
    with open(doc_path, encoding="utf-8") as fh:
        doc = fh.read()
    documented = set(re.findall(r"`(\w+)`", doc))

    counters = extract_struct_fields(
        os.path.join(REPO, "src", "sim", "stats.h"), "RuntimeStats", "uint64_t"
    )
    if not counters:
        errors.append("check_docs: could not parse RuntimeStats from src/sim/stats.h")
    events = extract_enumerators(os.path.join(REPO, "src", "sim", "trace.h"), "TraceEvent")
    if not events:
        errors.append("check_docs: could not parse TraceEvent from src/sim/trace.h")
    phases = extract_enumerators(
        os.path.join(REPO, "src", "telemetry", "attribution.h"), "FaultPhase"
    )
    if not phases:
        errors.append(
            "check_docs: could not parse FaultPhase from src/telemetry/attribution.h"
        )

    for c in counters:
        if c not in documented:
            errors.append(
                f"docs/observability.md: RuntimeStats counter `{c}` has no row"
            )
    for e in events:
        if e not in documented:
            errors.append(f"docs/observability.md: TraceEvent `{e}` has no row")
    for p in phases:
        if p not in documented:
            errors.append(f"docs/observability.md: FaultPhase `{p}` has no row")

    # Attribution / SLO Prometheus series exported by ToProm() must each have
    # a row; the series names are pinned here so renaming one in the code
    # without updating the doc (or vice versa) fails the lint.
    slo_series = [
        "dilos_fault_phase_ns",
        "dilos_fault_e2e_ns",
        "dilos_slo_faults_total",
        "dilos_slo_bad_total",
        "dilos_slo_alerts_total",
        "dilos_slo_burn_fast",
        "dilos_slo_burn_slow",
        "dilos_slo_budget_used",
        "dilos_slo_threshold_ns",
    ]
    for s in slo_series:
        if s not in documented:
            errors.append(
                f"docs/observability.md: Prometheus series `{s}` has no row"
            )

    # The reverse direction: a table row for `kSomething` that is neither a
    # TraceEvent nor a FaultPhase enumerator is a stale row. Only table rows
    # count — backticked kNames in prose may be other enums (NodeState,
    # WcStatus). Enumerators are kPascalCase; requiring the capital keeps
    # snake_case counters that happen to start with "k" (kv_*) out of this
    # check.
    known = set(events) | set(phases)
    rows = re.findall(r"^\|\s*`(k[A-Z]\w+)`", doc, re.MULTILINE)
    for name in sorted(set(rows)):
        if name not in known:
            errors.append(
                f"docs/observability.md: `{name}` has a row but is neither a "
                "TraceEvent nor a FaultPhase"
            )


def check_experiments_cover_benches(errors):
    """Every bench/bench_*.cc target must be mentioned in EXPERIMENTS.md."""
    exp_path = os.path.join(REPO, "EXPERIMENTS.md")
    if not os.path.exists(exp_path):
        errors.append("EXPERIMENTS.md: missing")
        return
    with open(exp_path, encoding="utf-8") as fh:
        exp = fh.read()
    bench_dir = os.path.join(REPO, "bench")
    for f in sorted(os.listdir(bench_dir)):
        if f.startswith("bench_") and f.endswith(".cc"):
            target = f[: -len(".cc")]
            if target not in exp:
                errors.append(
                    f"EXPERIMENTS.md: bench target `{target}` (bench/{f}) "
                    "has no mention — add a section with its reproduce command"
                )


def check_readme_links_docs(errors):
    """Every docs/*.md must be a markdown-link target in README.md."""
    readme_path = os.path.join(REPO, "README.md")
    if not os.path.exists(readme_path):
        return  # check_readme_covers_src already reported it.
    with open(readme_path, encoding="utf-8") as fh:
        targets = {os.path.normpath(t) for t in MD_LINK.findall(fh.read())}
    docs_dir = os.path.join(REPO, "docs")
    if not os.path.isdir(docs_dir):
        return
    for f in sorted(os.listdir(docs_dir)):
        if f.endswith(".md") and os.path.normpath(f"docs/{f}") not in targets:
            errors.append(
                f"README.md: docs/{f} is not linked from the documentation index"
            )


def main():
    errors = []
    check_links(errors)
    check_readme_covers_src(errors)
    check_observability_drift(errors)
    check_experiments_cover_benches(errors)
    check_readme_links_docs(errors)
    for e in errors:
        print(e)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)")
        return 1
    print(f"check_docs: OK ({len(md_files())} markdown files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
