// dilos_sim: command-line driver for ad-hoc experiments on the simulated
// testbed — pick a system, a workload, a local-memory fraction, and a
// backend, and get completion time plus paging statistics.
//
//   dilos_sim --system=dilos --prefetch=readahead --workload=seqread \
//             --local=0.125 --ws-mb=64 --backend=rdma
//
// Workloads: seqread, seqwrite, quicksort, kmeans, dataframe, pagerank, bc,
//            pointer-chase.
// Systems:   dilos, fastswap.   Prefetch: none, readahead, trend.
// Backends:  rdma, nvme, sata.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/apps/dataframe.h"
#include "src/apps/graph.h"
#include "src/apps/kmeans.h"
#include "src/apps/linked_list.h"
#include "src/apps/quicksort.h"
#include "src/apps/seqrw.h"
#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/dilos/trend.h"
#include "src/fastswap/fastswap.h"

namespace dilos {
namespace {

struct Args {
  std::string system = "dilos";
  std::string prefetch = "readahead";
  std::string workload = "seqread";
  std::string backend = "rdma";
  double local = 0.125;
  uint64_t ws_mb = 64;
  int cores = 1;
  int nodes = 1;
  int replication = 1;
};

bool Parse(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto take = [&](const char* key, std::string* dst) {
      std::string prefix = std::string("--") + key + "=";
      if (arg.rfind(prefix, 0) == 0) {
        *dst = arg.substr(prefix.size());
        return true;
      }
      return false;
    };
    std::string v;
    if (take("system", &out->system) || take("prefetch", &out->prefetch) ||
        take("workload", &out->workload) || take("backend", &out->backend)) {
      continue;
    }
    if (take("local", &v)) {
      out->local = std::stod(v);
    } else if (take("ws-mb", &v)) {
      out->ws_mb = std::stoull(v);
    } else if (take("cores", &v)) {
      out->cores = std::stoi(v);
    } else if (take("nodes", &v)) {
      out->nodes = std::stoi(v);
    } else if (take("replication", &v)) {
      out->replication = std::stoi(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::unique_ptr<Prefetcher> MakePf(const std::string& name) {
  if (name == "none") {
    return std::make_unique<NullPrefetcher>();
  }
  if (name == "trend") {
    return std::make_unique<TrendPrefetcher>();
  }
  return std::make_unique<ReadaheadPrefetcher>();
}

int Run(const Args& args) {
  CostModel cost = CostModel::Default();
  if (args.backend == "nvme") {
    cost = CostModel::Nvme();
  } else if (args.backend == "sata") {
    cost = CostModel::SataSsd();
  }
  Fabric fabric(cost, args.nodes);

  uint64_t ws = args.ws_mb << 20;
  uint64_t local = static_cast<uint64_t>(static_cast<double>(ws) * args.local);
  std::unique_ptr<FarRuntime> rt;
  if (args.system == "fastswap") {
    FastswapConfig cfg;
    cfg.local_mem_bytes = local;
    cfg.num_cores = args.cores;
    cfg.readahead_enabled = args.prefetch != "none";
    rt = std::make_unique<FastswapRuntime>(fabric, cfg);
  } else {
    DilosConfig cfg;
    cfg.local_mem_bytes = local;
    cfg.num_cores = args.cores;
    cfg.replication = args.replication;
    rt = std::make_unique<DilosRuntime>(fabric, cfg, MakePf(args.prefetch));
  }

  std::printf("system=%s prefetch=%s backend=%s workload=%s ws=%lluMB local=%.1f%% "
              "cores=%d nodes=%d repl=%d\n\n",
              args.system.c_str(), args.prefetch.c_str(), args.backend.c_str(),
              args.workload.c_str(), static_cast<unsigned long long>(args.ws_mb),
              args.local * 100, args.cores, args.nodes, args.replication);

  uint64_t elapsed = 0;
  if (args.workload == "seqread" || args.workload == "seqwrite") {
    SeqWorkload wl(*rt, ws);
    SeqResult r = args.workload == "seqread" ? wl.Read() : wl.Write();
    elapsed = r.elapsed_ns;
    std::printf("throughput: %.2f GB/s\n", r.GBps());
  } else if (args.workload == "quicksort") {
    QuicksortWorkload wl(*rt, ws / sizeof(int32_t));
    elapsed = wl.Run();
    std::printf("sorted: %s\n", wl.IsSorted() ? "yes" : "NO (bug!)");
  } else if (args.workload == "kmeans") {
    KmeansWorkload wl(*rt, ws / (4 * sizeof(float)), 4, 10);
    KmeansResult r = wl.Run(8);
    elapsed = r.elapsed_ns;
    std::printf("iterations: %u, inertia/point: %.1f\n", r.iterations,
                r.inertia / static_cast<double>(ws / 16));
  } else if (args.workload == "dataframe") {
    FarDataFrame df(*rt, ws / 36);
    TaxiColumns cols = GenerateTaxi(df);
    TaxiAnalysisResult r = RunTaxiAnalysis(df, cols);
    elapsed = r.elapsed_ns;
    std::printf("mean fare: $%.2f, corr: %.3f\n", r.mean_fare, r.fare_distance_corr);
  } else if (args.workload == "pagerank" || args.workload == "bc") {
    uint64_t n = ws / 80;  // ~16 edges/vertex + rank arrays.
    auto edges = FarGraph::Rmat(n, 16, 4);
    if (args.workload == "pagerank") {
      FarGraph g(*rt, n, FarGraph::Transpose(edges));
      PageRankResult r = RunPageRank(g, FarGraph::OutDegrees(n, edges), 5);
      elapsed = r.elapsed_ns;
      std::printf("rank sum: %.4f\n", r.sum);
    } else {
      FarGraph g(*rt, n, edges);
      BcResult r = RunBetweennessCentrality(g, 4);
      elapsed = r.elapsed_ns;
      std::printf("max centrality: %.1f\n", r.max_centrality);
    }
  } else if (args.workload == "pointer-chase") {
    LinkedListWorkload wl(*rt, ws / kPageSize);
    auto r = wl.Traverse();
    elapsed = r.elapsed_ns;
    std::printf("nodes: %llu, sum ok: %s\n", static_cast<unsigned long long>(r.nodes),
                r.sum == wl.expected_sum() ? "yes" : "NO (bug!)");
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", args.workload.c_str());
    return 1;
  }

  std::printf("completion: %.3f s (simulated)\n\n", static_cast<double>(elapsed) / 1e9);
  std::printf("%s", rt->stats().ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace dilos

int main(int argc, char** argv) {
  dilos::Args args;
  if (!dilos::Parse(argc, argv, &args)) {
    return 1;
  }
  return dilos::Run(args);
}
