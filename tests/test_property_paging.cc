// Property tests over the paged runtimes: for every (system, prefetcher,
// local-memory fraction) combination, the paging subsystem must preserve
// data exactly, keep its fault/byte accounting consistent, and respect its
// structural invariants. These are the invariants the paper's correctness
// rests on, swept with TEST_P.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/dilos/trend.h"
#include "src/fastswap/fastswap.h"
#include "src/memnode/fabric.h"
#include "src/sim/rng.h"

namespace dilos {
namespace {

enum class Sys { kDilos, kFastswap };
enum class Pf { kNone, kReadahead, kTrend };

struct Combo {
  Sys sys;
  Pf pf;
  double local_fraction;
};

std::string ComboName(const ::testing::TestParamInfo<Combo>& info) {
  const Combo& c = info.param;
  std::string s = c.sys == Sys::kDilos ? "Dilos" : "Fastswap";
  s += c.pf == Pf::kNone ? "None" : c.pf == Pf::kReadahead ? "Readahead" : "Trend";
  s += std::to_string(static_cast<int>(c.local_fraction * 1000));
  return s;
}

constexpr uint64_t kPages = 512;
constexpr uint64_t kWs = kPages * kPageSize;

class PagingProperty : public ::testing::TestWithParam<Combo> {
 protected:
  PagingProperty() {
    const Combo& c = GetParam();
    uint64_t local = static_cast<uint64_t>(static_cast<double>(kWs) * c.local_fraction);
    if (c.sys == Sys::kDilos) {
      DilosConfig cfg;
      cfg.local_mem_bytes = local;
      std::unique_ptr<Prefetcher> pf;
      switch (c.pf) {
        case Pf::kNone:
          pf = std::make_unique<NullPrefetcher>();
          break;
        case Pf::kReadahead:
          pf = std::make_unique<ReadaheadPrefetcher>();
          break;
        case Pf::kTrend:
          pf = std::make_unique<TrendPrefetcher>();
          break;
      }
      rt_ = std::make_unique<DilosRuntime>(fabric_, cfg, std::move(pf));
    } else {
      FastswapConfig cfg;
      cfg.local_mem_bytes = local;
      cfg.readahead_enabled = GetParam().pf != Pf::kNone;
      rt_ = std::make_unique<FastswapRuntime>(fabric_, cfg);
    }
  }

  Fabric fabric_;
  std::unique_ptr<FarRuntime> rt_;
};

TEST_P(PagingProperty, SequentialDataIntegrity) {
  uint64_t region = rt_->AllocRegion(kWs);
  for (uint64_t p = 0; p < kPages; ++p) {
    rt_->Write<uint64_t>(region + p * kPageSize + (p % 512) * 8, p * 0x9E3779B9 + 1);
  }
  for (uint64_t p = 0; p < kPages; ++p) {
    ASSERT_EQ(rt_->Read<uint64_t>(region + p * kPageSize + (p % 512) * 8),
              p * 0x9E3779B9 + 1)
        << "page " << p;
  }
}

TEST_P(PagingProperty, RandomAccessDataIntegrity) {
  uint64_t region = rt_->AllocRegion(kWs);
  std::map<uint64_t, uint64_t> shadow;
  Rng rng(GetParam().sys == Sys::kDilos ? 17 : 18);
  for (int i = 0; i < 4000; ++i) {
    uint64_t addr = region + rng.NextBelow(kWs - 8);
    addr &= ~7ULL;
    if (rng.NextDouble() < 0.6 || shadow.empty()) {
      uint64_t v = rng.Next();
      rt_->Write<uint64_t>(addr, v);
      shadow[addr] = v;
    } else {
      auto it = shadow.lower_bound(region + rng.NextBelow(kWs));
      if (it == shadow.end()) {
        it = shadow.begin();
      }
      ASSERT_EQ(rt_->Read<uint64_t>(it->first), it->second);
    }
  }
  for (const auto& [addr, v] : shadow) {
    ASSERT_EQ(rt_->Read<uint64_t>(addr), v);
  }
}

TEST_P(PagingProperty, StridedAndReversePatterns) {
  uint64_t region = rt_->AllocRegion(kWs);
  // Stride-3 write, reverse read: stresses trend detection both ways.
  for (uint64_t p = 0; p < kPages; p += 3) {
    rt_->Write<uint32_t>(region + p * kPageSize, static_cast<uint32_t>(p));
  }
  for (uint64_t p = (kPages - 1) / 3 * 3;; p -= 3) {
    ASSERT_EQ(rt_->Read<uint32_t>(region + p * kPageSize), static_cast<uint32_t>(p));
    if (p < 3) {
      break;
    }
  }
}

TEST_P(PagingProperty, FaultAccountingConsistent) {
  uint64_t region = rt_->AllocRegion(kWs);
  for (uint64_t p = 0; p < kPages; ++p) {
    rt_->Write<uint8_t>(region + p * kPageSize, 1);
  }
  for (uint64_t p = 0; p < kPages; ++p) {
    rt_->Read<uint8_t>(region + p * kPageSize);
  }
  const RuntimeStats& st = rt_->stats();
  // Zero-fill faults happen exactly once per touched page.
  EXPECT_EQ(st.zero_fill_faults, kPages);
  // Fetched bytes are page-granular multiples covering at least the major
  // faults (guides aside, nothing fetches partial pages here).
  EXPECT_EQ(st.bytes_fetched % kPageSize, 0u);
  EXPECT_GE(st.bytes_fetched / kPageSize, st.major_faults);
  // Every write-back moved exactly one page.
  EXPECT_EQ(st.bytes_written, st.writebacks * kPageSize);
  // Prefetch accounting: early-mapped + in-flight-hit pages can't exceed
  // what was issued.
  EXPECT_LE(st.prefetch_mapped_early, st.prefetch_issued);
}

TEST_P(PagingProperty, ClockIsMonotoneAndAdvances) {
  uint64_t region = rt_->AllocRegion(kWs);
  uint64_t last = rt_->clock().now();
  for (uint64_t p = 0; p < kPages; ++p) {
    rt_->Write<uint16_t>(region + p * kPageSize, static_cast<uint16_t>(p));
    ASSERT_GE(rt_->clock().now(), last);
    last = rt_->clock().now();
  }
  EXPECT_GT(last, 0u);
}

TEST_P(PagingProperty, RewriteAfterEvictionKeepsLatestValue) {
  uint64_t region = rt_->AllocRegion(kWs);
  // Three full passes with different values: after evictions, only the
  // last write may survive.
  for (uint64_t pass = 1; pass <= 3; ++pass) {
    for (uint64_t p = 0; p < kPages; ++p) {
      rt_->Write<uint64_t>(region + p * kPageSize, pass * 1000 + p);
    }
  }
  for (uint64_t p = 0; p < kPages; ++p) {
    ASSERT_EQ(rt_->Read<uint64_t>(region + p * kPageSize), 3000 + p);
  }
}

TEST_P(PagingProperty, FreeRegionDiscardsAndZeroRefills) {
  uint64_t region = rt_->AllocRegion(kWs);
  for (uint64_t p = 0; p < kPages; ++p) {
    rt_->Write<uint64_t>(region + p * kPageSize, 0xFF00FF00FF00FF00ULL);
  }
  rt_->FreeRegion(region, kWs);
  // Fresh touch after free must be zero (zero-fill semantics), for a sample
  // of pages including previously evicted ones.
  for (uint64_t p = 0; p < kPages; p += 37) {
    ASSERT_EQ(rt_->Read<uint64_t>(region + p * kPageSize), 0u) << p;
  }
}

TEST_P(PagingProperty, PageCrossingValuesSurvivePressure) {
  uint64_t region = rt_->AllocRegion(kWs);
  // Values straddling every page boundary.
  for (uint64_t p = 1; p < kPages; ++p) {
    rt_->Write<uint64_t>(region + p * kPageSize - 4, p ^ 0xABCD);
  }
  for (uint64_t p = 1; p < kPages; ++p) {
    ASSERT_EQ(rt_->Read<uint64_t>(region + p * kPageSize - 4), p ^ 0xABCD);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PagingProperty,
    ::testing::Values(Combo{Sys::kDilos, Pf::kNone, 0.125}, Combo{Sys::kDilos, Pf::kNone, 0.5},
                      Combo{Sys::kDilos, Pf::kReadahead, 0.125},
                      Combo{Sys::kDilos, Pf::kReadahead, 0.5},
                      Combo{Sys::kDilos, Pf::kTrend, 0.125},
                      Combo{Sys::kDilos, Pf::kTrend, 1.0},
                      Combo{Sys::kFastswap, Pf::kNone, 0.125},
                      Combo{Sys::kFastswap, Pf::kReadahead, 0.125},
                      Combo{Sys::kFastswap, Pf::kReadahead, 0.5}),
    ComboName);

// Cross-system equivalence: the same deterministic program must compute the
// same memory image on every runtime — compatibility as a checkable
// property, not a slogan.
class CrossSystemEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(CrossSystemEquivalence, SameProgramSameBytes) {
  auto run = [&](bool dilos) {
    Fabric fabric;
    std::unique_ptr<FarRuntime> rt;
    uint64_t local = static_cast<uint64_t>(static_cast<double>(kWs) * GetParam());
    if (dilos) {
      DilosConfig cfg;
      cfg.local_mem_bytes = local;
      rt = std::make_unique<DilosRuntime>(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
    } else {
      FastswapConfig cfg;
      cfg.local_mem_bytes = local;
      rt = std::make_unique<FastswapRuntime>(fabric, cfg);
    }
    uint64_t region = rt->AllocRegion(kWs);
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
      uint64_t a = region + (rng.NextBelow(kWs - 16) & ~7ULL);
      rt->Write<uint64_t>(a, rng.Next());
    }
    uint64_t digest = 0;
    for (uint64_t off = 0; off < kWs; off += 64) {
      digest = digest * 1099511628211ULL + rt->Read<uint64_t>(region + off);
    }
    return digest;
  };
  EXPECT_EQ(run(true), run(false));
}

INSTANTIATE_TEST_SUITE_P(Fractions, CrossSystemEquivalence,
                         ::testing::Values(0.0625, 0.125, 0.25, 0.5, 1.0));

}  // namespace
}  // namespace dilos
