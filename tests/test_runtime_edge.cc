// Edge-case tests for the DiLOS runtime: region teardown with in-flight
// IO, guide/replication interplay, shared-queue mode correctness, zero-byte
// and boundary accesses, and stats consistency after mixed activity.
#include <gtest/gtest.h>

#include <memory>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/guides/allocator_guide.h"
#include "src/sim/rng.h"

namespace dilos {
namespace {

TEST(RuntimeEdge, FreeRegionWithInFlightPrefetches) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * 4096;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint8_t>(region + p * kPageSize, 1);
  }
  // Touch the head so readahead has pages in flight, then free everything.
  rt.Read<uint8_t>(region);
  rt.FreeRegion(region, pages * kPageSize);
  // All frames are recoverable and the region reads as zero afterwards.
  for (uint64_t p = 0; p < pages; p += 17) {
    ASSERT_EQ(rt.Read<uint8_t>(region + p * kPageSize), 0u);
  }
}

TEST(RuntimeEdge, FreeRegionReleasesAllFrames) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 128 * 4096;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  uint64_t region = rt.AllocRegion(64 * kPageSize);
  for (uint64_t p = 0; p < 64; ++p) {
    rt.Write<uint8_t>(region + p * kPageSize, 1);
  }
  size_t used_before = rt.frame_pool().used();
  EXPECT_GE(used_before, 64u);
  rt.FreeRegion(region, 64 * kPageSize);
  EXPECT_EQ(rt.frame_pool().used(), used_before - 64);
}

TEST(RuntimeEdge, SharedQueueModeIsCorrectJustSlower) {
  // The HoL ablation config must still produce exact data.
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 32 * 4096;
  cfg.shared_queue = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p * 11);
  }
  for (uint64_t p = 0; p < pages; ++p) {
    ASSERT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p * 11);
  }
}

TEST(RuntimeEdge, GuidedPagingWithReplicationStaysConsistent) {
  // Vectorized cleaning must reach every replica; after failover the live
  // chunks still read back through action PTEs.
  Fabric fabric(CostModel::Default(), 2);
  DilosConfig cfg;
  cfg.local_mem_bytes = 96 * 4096;
  cfg.replication = 2;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  FarHeap heap(rt);
  AllocatorGuide guide(heap);
  rt.set_guide(&guide);

  std::vector<uint64_t> addrs;
  for (int i = 0; i < 8000; ++i) {
    uint64_t a = heap.Malloc(128);
    rt.Write<uint64_t>(a, static_cast<uint64_t>(i) * 5 + 1);
    addrs.push_back(a);
  }
  for (size_t i = 0; i < addrs.size(); ++i) {
    if (i % 4 != 0) {
      heap.Free(addrs[i]);
      addrs[i] = 0;
    }
  }
  // Spill, fail a node, verify the survivors through vectorized re-fetch.
  uint64_t filler = rt.AllocRegion(256 * kPageSize);
  for (int p = 0; p < 256; ++p) {
    rt.Write<uint8_t>(filler + static_cast<uint64_t>(p) * kPageSize, 1);
  }
  rt.router().FailNode(1);
  for (size_t i = 0; i < addrs.size(); ++i) {
    if (addrs[i] != 0) {
      ASSERT_EQ(rt.Read<uint64_t>(addrs[i]), static_cast<uint64_t>(i) * 5 + 1) << i;
    }
  }
}

TEST(RuntimeEdge, SingleByteAndFullPagePins) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 16 * 4096;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  uint64_t region = rt.AllocRegion(4 * kPageSize);
  // A full-page write/read through the byte interface.
  std::vector<uint8_t> page(kPageSize);
  for (size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<uint8_t>(i * 7);
  }
  rt.WriteBytes(region, page.data(), kPageSize);
  std::vector<uint8_t> back(kPageSize);
  rt.ReadBytes(region, back.data(), kPageSize);
  EXPECT_EQ(back, page);
  // Single bytes at the extreme offsets of a page.
  rt.Write<uint8_t>(region + kPageSize, 0xA5);
  rt.Write<uint8_t>(region + 2 * kPageSize - 1, 0x5A);
  EXPECT_EQ(rt.Read<uint8_t>(region + kPageSize), 0xA5);
  EXPECT_EQ(rt.Read<uint8_t>(region + 2 * kPageSize - 1), 0x5A);
}

TEST(RuntimeEdge, StatsConsistentAfterMixedActivity) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 48 * 4096;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  const uint64_t pages = 512;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    uint64_t p = rng.NextBelow(pages);
    if (rng.NextDouble() < 0.5) {
      rt.Write<uint32_t>(region + p * kPageSize, static_cast<uint32_t>(i));
    } else {
      rt.Read<uint32_t>(region + p * kPageSize);
    }
  }
  const RuntimeStats& st = rt.stats();
  // Bytes fetched must cover all majors; evictions can't exceed the pages
  // that ever became resident.
  EXPECT_GE(st.bytes_fetched / kPageSize, st.major_faults);
  EXPECT_LE(st.evictions, st.total_faults() + st.prefetch_issued);
  EXPECT_EQ(st.bytes_written % kPageSize, 0u);  // No guide: page-granular.
  // The breakdown's event count equals the major faults recorded.
  EXPECT_EQ(st.fault_breakdown.events(), st.major_faults);
}

TEST(RuntimeEdge, ManyRegionsInterleaved) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 32 * 4096;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  std::vector<uint64_t> regions;
  for (int r = 0; r < 16; ++r) {
    regions.push_back(rt.AllocRegion(16 * kPageSize));
  }
  for (int round = 0; round < 4; ++round) {
    for (size_t r = 0; r < regions.size(); ++r) {
      for (uint64_t p = 0; p < 16; ++p) {
        rt.Write<uint64_t>(regions[r] + p * kPageSize, (r << 8) | p | (round << 16));
      }
    }
  }
  for (size_t r = 0; r < regions.size(); ++r) {
    for (uint64_t p = 0; p < 16; ++p) {
      ASSERT_EQ(rt.Read<uint64_t>(regions[r] + p * kPageSize), (r << 8) | p | (3u << 16));
    }
  }
}

}  // namespace
}  // namespace dilos
