// Third batch of focused unit tests: the event tracer, FarVector, and the
// huge-page toggle of the memory node.
#include <gtest/gtest.h>

#include <memory>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/sim/far_vector.h"
#include "src/sim/trace.h"

namespace dilos {
namespace {

// ------------------------------------------------------------------ Tracer --

TEST(TracerUnit, DisabledTracerRecordsNothing) {
  Tracer t(0);
  EXPECT_FALSE(t.enabled());
  t.Record(1, TraceEvent::kMajorFault, 0x1000);
  EXPECT_EQ(t.total_recorded(), 0u);
  EXPECT_TRUE(t.Snapshot().empty());
}

TEST(TracerUnit, RingKeepsNewestRecords) {
  Tracer t(4);
  for (uint64_t i = 0; i < 10; ++i) {
    t.Record(i, TraceEvent::kEvict, i * 4096);
  }
  EXPECT_EQ(t.total_recorded(), 10u);
  auto snap = t.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().time_ns, 6u);  // Oldest survivor.
  EXPECT_EQ(snap.back().time_ns, 9u);
  // Chronological order.
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GT(snap[i].time_ns, snap[i - 1].time_ns);
  }
}

TEST(TracerUnit, CountsAndToString) {
  Tracer t(16);
  t.Record(1, TraceEvent::kMajorFault, 0x1000, 2400);
  t.Record(2, TraceEvent::kMajorFault, 0x2000, 2500);
  t.Record(3, TraceEvent::kWriteback, 0x1000, 1);
  EXPECT_EQ(t.Count(TraceEvent::kMajorFault), 2u);
  EXPECT_EQ(t.Count(TraceEvent::kWriteback), 1u);
  EXPECT_EQ(t.Count(TraceEvent::kEvict), 0u);
  std::string s = t.ToString();
  EXPECT_NE(s.find("major-fault"), std::string::npos);
  EXPECT_NE(s.find("writeback"), std::string::npos);
}

TEST(TracerUnit, RuntimeEmitsPagingEvents) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 32 * 4096;
  cfg.trace_capacity = 4096;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p);
  }
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Read<uint64_t>(region + p * kPageSize);
  }
  const Tracer& t = rt.tracer();
  EXPECT_GT(t.Count(TraceEvent::kZeroFill), 0u);
  EXPECT_GT(t.Count(TraceEvent::kMajorFault), 0u);
  EXPECT_GT(t.Count(TraceEvent::kEvict), 0u);
  EXPECT_GT(t.Count(TraceEvent::kWriteback), 0u);
  EXPECT_GT(t.Count(TraceEvent::kPrefetchIssue), 0u);
  // Every recorded event carries a plausible page address.
  for (const TraceRecord& r : t.Snapshot()) {
    EXPECT_GE(r.page_va, kFarBase);
  }
}

TEST(TracerUnit, TracingOffByDefaultCostsNothing) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 1 << 20;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  uint64_t region = rt.AllocRegion(8 * kPageSize);
  rt.Write<uint8_t>(region, 1);
  EXPECT_FALSE(rt.tracer().enabled());
  EXPECT_EQ(rt.tracer().total_recorded(), 0u);
}

// --------------------------------------------------------------- FarVector --

TEST(FarVectorUnit, PushGrowAndReadBack) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 1 << 20;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  FarVector<uint64_t> vec(rt, 4);
  for (uint64_t i = 0; i < 10000; ++i) {
    vec.PushBack(i * 3 + 1);
  }
  EXPECT_EQ(vec.size(), 10000u);
  EXPECT_GE(vec.capacity(), 10000u);
  for (uint64_t i = 0; i < 10000; i += 97) {
    ASSERT_EQ(vec.Get(i), i * 3 + 1) << i;
  }
}

TEST(FarVectorUnit, GrowSurvivesEvictionPressure) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 16 * 4096;  // Much smaller than the vector.
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  FarVector<uint32_t> vec(rt, 2);
  for (uint32_t i = 0; i < 50000; ++i) {
    vec.PushBack(i ^ 0xABCD);
  }
  for (uint32_t i = 0; i < 50000; i += 333) {
    ASSERT_EQ(vec.Get(i), i ^ 0xABCD);
  }
}

TEST(FarVectorUnit, ResizeZeroFillsNewElements) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 1 << 20;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  FarVector<uint64_t> vec(rt, 4);
  vec.PushBack(7);
  vec.Resize(100);
  EXPECT_EQ(vec.size(), 100u);
  EXPECT_EQ(vec.Get(0), 7u);
  EXPECT_EQ(vec.Get(99), 0u);
  vec.Resize(1);
  EXPECT_EQ(vec.size(), 1u);
  vec.PopBack();
  EXPECT_TRUE(vec.empty());
}

TEST(FarVectorUnit, DestructorReleasesRegion) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * 4096;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  {
    FarVector<uint64_t> vec(rt, 4);
    for (int i = 0; i < 5000; ++i) {
      vec.PushBack(static_cast<uint64_t>(i));
    }
  }
  // All frames were given back on destruction.
  EXPECT_EQ(rt.frame_pool().used(), 0u);
}

// -------------------------------------------------------------- Huge pages --

TEST(HugePages, FourKilobytePagesAddWalkPenalty) {
  CostModel huge = CostModel::Default();
  CostModel small = CostModel::Default();
  small.memnode_huge_pages = false;
  // Without huge pages, the RNIC misses its page-table cache and pays host
  // walks (paper Sec. 5 "Memory node").
  EXPECT_EQ(small.ReadLatencyNs(4096) - huge.ReadLatencyNs(4096),
            small.memnode_4k_walk_penalty_ns);
}

}  // namespace
}  // namespace dilos
