// Tests for the workloads: correctness of each algorithm on far memory and
// the memory-system behavior the paper's evaluation relies on.
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/dataframe.h"
#include "src/apps/graph.h"
#include "src/apps/kmeans.h"
#include "src/apps/quicksort.h"
#include "src/apps/seqrw.h"
#include "src/apps/szip.h"
#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/fastswap/fastswap.h"

namespace dilos {
namespace {

std::unique_ptr<DilosRuntime> Dilos(Fabric& fabric, uint64_t local_bytes, bool readahead = false,
                                    int cores = 1) {
  DilosConfig cfg;
  cfg.local_mem_bytes = local_bytes;
  cfg.num_cores = cores;
  std::unique_ptr<Prefetcher> pf;
  if (readahead) {
    pf = std::make_unique<ReadaheadPrefetcher>();
  } else {
    pf = std::make_unique<NullPrefetcher>();
  }
  return std::make_unique<DilosRuntime>(fabric, cfg, std::move(pf));
}

TEST(SeqWorkload, ThroughputOrderingMatchesTable2) {
  // DiLOS no-prefetch < DiLOS readahead; both beat Fastswap (Table 2).
  const uint64_t ws = 8 << 20;   // 8 MB working set.
  const uint64_t local = 1 << 20;  // 12.5% local.
  double fsw_read;
  double dilos_np;
  double dilos_ra;
  {
    Fabric fabric;
    FastswapConfig cfg;
    cfg.local_mem_bytes = local;
    FastswapRuntime rt(fabric, cfg);
    SeqWorkload wl(rt, ws);
    fsw_read = wl.Read().GBps();
  }
  {
    Fabric fabric;
    auto rt = Dilos(fabric, local, false);
    SeqWorkload wl(*rt, ws);
    dilos_np = wl.Read().GBps();
  }
  {
    Fabric fabric;
    auto rt = Dilos(fabric, local, true);
    SeqWorkload wl(*rt, ws);
    dilos_ra = wl.Read().GBps();
  }
  EXPECT_GT(dilos_np, fsw_read);        // Table 2: 1.24 vs 0.98.
  EXPECT_GT(dilos_ra, 2.0 * dilos_np);  // Table 2: 3.74 vs 1.24.
}

TEST(SeqWorkload, WriteSlowerThanReadUnderPressure) {
  Fabric fabric;
  auto rt = Dilos(fabric, 1 << 20, true);
  SeqWorkload wl(*rt, 8 << 20);
  double read = wl.Read().GBps();
  double write = wl.Write().GBps();
  EXPECT_GT(write, 0.0);
  EXPECT_LT(write, read * 1.05);  // Write-back traffic shares the wire.
}

TEST(Quicksort, SortsCorrectlyUnderPressure) {
  Fabric fabric;
  auto rt = Dilos(fabric, 256 * 1024, true);  // 12.5% of 2 MB of ints.
  QuicksortWorkload wl(*rt, 512 * 1024);
  uint64_t ns = wl.Run();
  EXPECT_GT(ns, 0u);
  EXPECT_TRUE(wl.IsSorted());
  EXPECT_GT(rt->stats().evictions, 0u);  // It really ran out of local memory.
}

TEST(Quicksort, LessLocalMemoryIsSlower) {
  uint64_t t_full;
  uint64_t t_eighth;
  const uint64_t n = 256 * 1024;
  {
    Fabric fabric;
    auto rt = Dilos(fabric, n * 4 * 2, true);  // 100%+.
    QuicksortWorkload wl(*rt, n);
    t_full = wl.Run();
  }
  {
    Fabric fabric;
    auto rt = Dilos(fabric, n * 4 / 8, true);  // 12.5%.
    QuicksortWorkload wl(*rt, n);
    t_eighth = wl.Run();
  }
  EXPECT_GT(t_eighth, t_full);
  // Paper Fig. 7(a): DiLOS degrades only ~12% from 100% to 12.5%; allow a
  // loose upper bound to catch pathological slowdowns.
  EXPECT_LT(static_cast<double>(t_eighth) / static_cast<double>(t_full), 2.0);
}

TEST(Kmeans, ConvergesAndClusters) {
  Fabric fabric;
  auto rt = Dilos(fabric, 4 << 20, true);
  KmeansWorkload wl(*rt, 20000, 4, 10);
  KmeansResult res = wl.Run(20);
  EXPECT_GT(res.iterations, 1u);
  EXPECT_GT(res.elapsed_ns, 0u);
  // With well-separated latent centers, inertia per point stays far below
  // the variance of the raw data (~800 for uniform centers in [0,100]^4).
  EXPECT_LT(res.inertia / 20000.0, 400.0);
}

TEST(SzipCodec, RoundTripsArbitraryData) {
  std::vector<uint8_t> src(100000);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<uint8_t>((i * 31) ^ (i >> 3));
  }
  std::vector<uint8_t> comp;
  SzipCompressBlock(src.data(), src.size(), &comp);
  std::vector<uint8_t> back;
  ASSERT_EQ(SzipDecompressBlock(comp.data(), comp.size(), &back), src.size());
  EXPECT_EQ(back, src);
}

TEST(SzipCodec, CompressesRuns) {
  std::vector<uint8_t> src(65536, 'x');
  std::vector<uint8_t> comp;
  SzipCompressBlock(src.data(), src.size(), &comp);
  EXPECT_LT(comp.size(), src.size() / 20);  // Runs collapse dramatically.
  std::vector<uint8_t> back;
  ASSERT_EQ(SzipDecompressBlock(comp.data(), comp.size(), &back), src.size());
  EXPECT_EQ(back, src);
}

TEST(SzipCodec, HandlesEmptyAndTiny) {
  std::vector<uint8_t> comp;
  EXPECT_EQ(SzipCompressBlock(nullptr, 0, &comp), 0u);
  std::vector<uint8_t> one = {42};
  comp.clear();
  SzipCompressBlock(one.data(), 1, &comp);
  std::vector<uint8_t> back;
  EXPECT_EQ(SzipDecompressBlock(comp.data(), comp.size(), &back), 1u);
  EXPECT_EQ(back[0], 42);
}

TEST(SzipCodec, RejectsCorruptStream) {
  std::vector<uint8_t> src(1000, 'a');
  std::vector<uint8_t> comp;
  SzipCompressBlock(src.data(), src.size(), &comp);
  comp[0] ^= 0xFF;  // Corrupt the first tag.
  std::vector<uint8_t> back;
  // Must not crash; either decodes to the wrong size or returns 0.
  size_t got = SzipDecompressBlock(comp.data(), comp.size(), &back);
  EXPECT_NE(got, src.size());
}

TEST(SzipFarStream, RoundTripsThroughFarMemory) {
  Fabric fabric;
  auto rt = Dilos(fabric, 1 << 20, true);
  const uint64_t len = 300000;
  uint64_t src = rt->AllocRegion(len);
  for (uint64_t i = 0; i < len; i += 8) {
    rt->Write<uint64_t>(src + i, (i / 640) * 0x0101010101010101ULL);
  }
  uint64_t dst = rt->AllocRegion(len + len / 2);
  uint64_t back = rt->AllocRegion(len);
  SzipFar szip(*rt);
  SzipResult c = szip.Compress(src, len, dst);
  EXPECT_LT(c.out_bytes, len);
  SzipResult d = szip.Decompress(dst, c.out_bytes, back);
  ASSERT_EQ(d.out_bytes, len);
  for (uint64_t i = 0; i < len; i += 4096) {
    ASSERT_EQ(rt->Read<uint64_t>(back + i), rt->Read<uint64_t>(src + i)) << i;
  }
}

TEST(DataframeApp, TaxiAnalysisStatisticsAreSane) {
  Fabric fabric;
  auto rt = Dilos(fabric, 8 << 20, true);
  FarDataFrame df(*rt, 30000);
  TaxiColumns cols = GenerateTaxi(df);
  TaxiAnalysisResult res = RunTaxiAnalysis(df, cols);
  EXPECT_GT(res.elapsed_ns, 0u);
  EXPECT_GT(res.mean_fare, 2.5);
  EXPECT_GT(res.fare_distance_corr, 0.9);
  EXPECT_EQ(res.fare_by_passengers.size(), 7u);
  EXPECT_EQ(res.duration_by_hour.size(), 24u);
  ASSERT_EQ(res.top_fares.size(), 10u);
  for (size_t i = 1; i < res.top_fares.size(); ++i) {
    EXPECT_GE(res.top_fares[i - 1], res.top_fares[i]);
  }
  // Rush-hour trips take longer per the generator's traffic model.
  EXPECT_GT(res.duration_by_hour[9], res.duration_by_hour[3]);
}

TEST(DataframeApp, MatchesAcrossRuntimes) {
  // Identical (unmodified) app code on DiLOS and Fastswap must produce
  // identical results — the compatibility claim in executable form.
  TaxiAnalysisResult a;
  TaxiAnalysisResult b;
  {
    Fabric fabric;
    auto rt = Dilos(fabric, 2 << 20, true);
    FarDataFrame df(*rt, 10000);
    TaxiColumns cols = GenerateTaxi(df);
    a = RunTaxiAnalysis(df, cols);
  }
  {
    Fabric fabric;
    FastswapConfig cfg;
    cfg.local_mem_bytes = 2 << 20;
    FastswapRuntime rt(fabric, cfg);
    FarDataFrame df(rt, 10000);
    TaxiColumns cols = GenerateTaxi(df);
    b = RunTaxiAnalysis(df, cols);
  }
  EXPECT_EQ(a.long_trips, b.long_trips);
  EXPECT_DOUBLE_EQ(a.mean_fare, b.mean_fare);
  EXPECT_DOUBLE_EQ(a.fare_distance_corr, b.fare_distance_corr);
}

TEST(GraphApp, RmatShapesAndCsr) {
  auto edges = FarGraph::Rmat(1024, 8, 11);
  EXPECT_GT(edges.size(), 1024u * 4);
  Fabric fabric;
  auto rt = Dilos(fabric, 8 << 20, true);
  FarGraph g(*rt, 1024, edges);
  EXPECT_EQ(g.num_edges(), edges.size());
  uint64_t total_degree = 0;
  for (uint32_t v = 0; v < 1024; ++v) {
    total_degree += g.OutDegree(v);
  }
  EXPECT_EQ(total_degree, edges.size());
}

TEST(GraphApp, PageRankSumsToOne) {
  Fabric fabric;
  auto rt = Dilos(fabric, 8 << 20, true);
  auto edges = FarGraph::Rmat(512, 8, 12);
  FarGraph g(*rt, 512, FarGraph::Transpose(edges));
  PageRankResult res = RunPageRank(g, FarGraph::OutDegrees(512, edges), 5);
  EXPECT_NEAR(res.sum, 1.0, 0.02);  // Dangling mass is redistributed.
  EXPECT_EQ(res.iterations, 5u);
  EXPECT_GT(res.elapsed_ns, 0u);
  // Power-law graph: the top rank dominates the average.
  EXPECT_GT(res.top_ranks[0], 2.0 / 512);
}

TEST(GraphApp, BcFindsCentralVertices) {
  Fabric fabric;
  auto rt = Dilos(fabric, 8 << 20, true);
  auto edges = FarGraph::Rmat(512, 8, 13);
  FarGraph g(*rt, 512, edges);
  BcResult res = RunBetweennessCentrality(g, 4);
  EXPECT_EQ(res.sources, 4u);
  EXPECT_GT(res.max_centrality, 0.0);
  EXPECT_GT(res.elapsed_ns, 0u);
}

TEST(GraphApp, MultiCoreFasterThanSingle) {
  auto edges = FarGraph::Rmat(1024, 10, 14);
  uint64_t t1;
  uint64_t t4;
  auto degrees = FarGraph::OutDegrees(1024, edges);
  auto in_edges = FarGraph::Transpose(edges);
  {
    Fabric fabric;
    auto rt = Dilos(fabric, 16 << 20, true, /*cores=*/1);
    FarGraph g(*rt, 1024, in_edges);
    t1 = RunPageRank(g, degrees, 3).elapsed_ns;
  }
  {
    Fabric fabric;
    auto rt = Dilos(fabric, 16 << 20, true, /*cores=*/4);
    FarGraph g(*rt, 1024, in_edges);
    t4 = RunPageRank(g, degrees, 3).elapsed_ns;
  }
  EXPECT_LT(t4, t1);
}

}  // namespace
}  // namespace dilos
