// Tests for the telemetry subsystem (src/telemetry) and the tracer's span
// extension (src/sim/trace.h): log-bucket histogram accuracy against the
// exact PercentileRecorder, per-(node, QP-class) metrics at the fabric
// choke point, causal span nesting + Chrome-trace JSON export, the flight
// recorder's anomaly trigger, the counter-invariant checker, and the
// telemetry-off == bit-identical-stats contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/sim/rng.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/invariants.h"

namespace dilos {
namespace {

// ---------------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------------

TEST(LogHistogram, SmallValuesAreExact) {
  LogHistogram h;
  for (uint64_t v = 0; v < LogHistogram::kSub; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), LogHistogram::kSub);
  EXPECT_EQ(h.MinNs(), 0u);
  EXPECT_EQ(h.MaxNs(), LogHistogram::kSub - 1);
  // Below kSub each value owns its bucket, so percentiles are exact.
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_EQ(h.Percentile(100), LogHistogram::kSub - 1);
  // Nearest rank: round(0.5 * (count - 1)) = 32 for 64 samples 0..63.
  EXPECT_EQ(h.Percentile(50), 32u);
}

TEST(LogHistogram, EmptyAndReset) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_EQ(h.MeanNs(), 0.0);
  h.Record(12345);
  EXPECT_FALSE(h.empty());
  h.Reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MaxNs(), 0u);
  EXPECT_EQ(h.bucket_count(), 0u);
}

TEST(LogHistogram, BucketRoundTripWithinRelativeWidth) {
  // The bucket representative must be within one bucket width (1/kSub
  // relative) of every value keyed into it.
  for (uint64_t v : {1ull, 63ull, 64ull, 65ull, 127ull, 128ull, 1000ull, 4096ull,
                     1ull << 20, (1ull << 20) + 12345, 987654321ull, 1ull << 40}) {
    uint64_t rep = LogHistogram::BucketValue(LogHistogram::BucketIndex(v));
    double rel = std::abs(static_cast<double>(rep) - static_cast<double>(v)) /
                 static_cast<double>(v);
    EXPECT_LE(rel, 1.0 / LogHistogram::kSub) << "v=" << v << " rep=" << rep;
  }
}

TEST(LogHistogram, MergeMatchesCombinedRecording) {
  Rng rng(11);
  LogHistogram a, b, combined;
  for (int i = 0; i < 20'000; ++i) {
    uint64_t v = 100 + rng.NextBelow(1'000'000);
    combined.Record(v);
    (i % 2 == 0 ? a : b).Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.MinNs(), combined.MinNs());
  EXPECT_EQ(a.MaxNs(), combined.MaxNs());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(a.Percentile(p), combined.Percentile(p)) << "p=" << p;
  }
}

double RelErr(uint64_t approx, uint64_t exact) {
  if (exact == 0) {
    return approx == 0 ? 0.0 : 1.0;
  }
  return std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
         static_cast<double>(exact);
}

// The acceptance bound: p50/p99/p99.9 within 3% of the exact recorder on
// >= 1e5 samples, across distribution shapes, at O(#buckets) memory.
void CheckAccuracy(const char* shape, const std::vector<uint64_t>& samples) {
  LogHistogram h;
  PercentileRecorder exact;
  for (uint64_t v : samples) {
    h.Record(v);
    exact.Record(v);
  }
  for (double p : {50.0, 99.0, 99.9}) {
    EXPECT_LE(RelErr(h.Percentile(p), exact.Percentile(p)), 0.03)
        << shape << " p" << p << ": log=" << h.Percentile(p)
        << " exact=" << exact.Percentile(p);
  }
  // Constant memory: bucket slots, not samples. 64 octaves x 64 sub-buckets
  // is the absolute ceiling; any realistic latency range stays far below.
  EXPECT_LT(h.bucket_count(), 64u * LogHistogram::kSub);
  EXPECT_LT(h.bucket_count(), samples.size() / 10);
}

TEST(LogHistogram, AccuracyUniform) {
  Rng rng(101);
  std::vector<uint64_t> s;
  s.reserve(120'000);
  for (int i = 0; i < 120'000; ++i) {
    s.push_back(1'000 + rng.NextBelow(2'000'000));
  }
  CheckAccuracy("uniform", s);
}

TEST(LogHistogram, AccuracyPareto) {
  Rng rng(202);
  std::vector<uint64_t> s;
  s.reserve(120'000);
  for (int i = 0; i < 120'000; ++i) {
    double u = rng.NextDouble();
    if (u < 1e-9) {
      u = 1e-9;
    }
    // Pareto(xm = 500, alpha = 1.3): the heavy tail log-bucketing exists for.
    s.push_back(static_cast<uint64_t>(500.0 / std::pow(u, 1.0 / 1.3)));
  }
  CheckAccuracy("pareto", s);
}

TEST(LogHistogram, AccuracyBimodal) {
  Rng rng(303);
  std::vector<uint64_t> s;
  s.reserve(120'000);
  for (int i = 0; i < 120'000; ++i) {
    if (rng.NextBelow(100) < 80) {
      s.push_back(900 + rng.NextBelow(200));  // Fast mode (hit).
    } else {
      s.push_back(95'000 + rng.NextBelow(10'000));  // Slow mode (miss).
    }
  }
  CheckAccuracy("bimodal", s);
}

// ---------------------------------------------------------------------------
// Tracer ring wraparound
// ---------------------------------------------------------------------------

void RecordN(Tracer& t, uint64_t n, uint64_t t0 = 1) {
  for (uint64_t i = 0; i < n; ++i) {
    t.Record(t0 + i, TraceEvent::kMajorFault, 0x1000 + i, static_cast<uint32_t>(i));
  }
}

TEST(TracerRing, ExactCapacityKeepsEverythingInOrder) {
  Tracer t(8);
  RecordN(t, 8);
  EXPECT_EQ(t.total_recorded(), 8u);
  auto snap = t.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].time_ns, 1 + i);
  }
}

TEST(TracerRing, CapacityPlusOneDropsOnlyTheOldest) {
  Tracer t(8);
  RecordN(t, 9);
  EXPECT_EQ(t.total_recorded(), 9u);
  auto snap = t.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  EXPECT_EQ(snap.front().time_ns, 2u);  // Record at t=1 was overwritten.
  EXPECT_EQ(snap.back().time_ns, 9u);
}

TEST(TracerRing, MultiLapStaysChronological) {
  Tracer t(8);
  RecordN(t, 8 * 3 + 5);
  EXPECT_EQ(t.total_recorded(), 29u);
  auto snap = t.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  EXPECT_EQ(snap.front().time_ns, 22u);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].time_ns, snap[i - 1].time_ns + 1);
  }
}

TEST(TracerRing, SpanRingWrapsByCompletionOrder) {
  Tracer t(0);  // Debug ring off; spans are independent.
  t.EnableSpans(4);
  for (uint32_t i = 0; i < 6; ++i) {
    uint32_t id = t.BeginSpan(SpanKind::kFault, i * 10, 0x2000 + i);
    t.EndSpan(id, i * 10 + 5);
  }
  EXPECT_EQ(t.total_spans(), 6u);
  auto snap = t.SpanSnapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().id, 3u);  // Spans 1 and 2 were overwritten.
  EXPECT_EQ(snap.back().id, 6u);
  for (const SpanRecord& s : snap) {
    EXPECT_EQ(s.end_ns, s.begin_ns + 5);
    EXPECT_EQ(s.parent, 0u);
  }
}

TEST(TracerSpans, DisabledBeginReturnsZeroAndEndIsNoop) {
  Tracer t(4);
  uint32_t id = t.BeginSpan(SpanKind::kFetchAttempt, 10, 0x1000);
  EXPECT_EQ(id, 0u);
  t.EndSpan(id, 20);  // Must not crash or record anything.
  EXPECT_EQ(t.total_spans(), 0u);
}

TEST(TracerSpans, LifoNestingTracksParents) {
  Tracer t(0);
  t.EnableSpans(16);
  uint32_t fault = t.BeginSpan(SpanKind::kFault, 100, 0xA000);
  uint32_t attempt1 = t.BeginSpan(SpanKind::kFetchAttempt, 110, 0xA000, 0);
  t.EndSpan(attempt1, 150);
  uint32_t backoff = t.BeginSpan(SpanKind::kRetryBackoff, 150, 0xA000, 1);
  t.EndSpan(backoff, 180);
  uint32_t attempt2 = t.BeginSpan(SpanKind::kFetchAttempt, 180, 0xA000, 1);
  t.EndSpan(attempt2, 220);
  t.EndSpan(fault, 230);
  EXPECT_EQ(t.open_spans(), 0u);

  auto snap = t.SpanSnapshot();
  ASSERT_EQ(snap.size(), 4u);
  std::map<uint32_t, SpanRecord> by_id;
  for (const SpanRecord& s : snap) {
    by_id[s.id] = s;
  }
  EXPECT_EQ(by_id[fault].parent, 0u);
  EXPECT_EQ(by_id[attempt1].parent, fault);
  EXPECT_EQ(by_id[backoff].parent, fault);
  EXPECT_EQ(by_id[attempt2].parent, fault);
  // Children are contained in the parent's interval.
  for (uint32_t id : {attempt1, backoff, attempt2}) {
    EXPECT_GE(by_id[id].begin_ns, by_id[fault].begin_ns);
    EXPECT_LE(by_id[id].end_ns, by_id[fault].end_ns);
  }
}

// ---------------------------------------------------------------------------
// Chrome trace JSON
// ---------------------------------------------------------------------------

// Minimal structural JSON validator: enough grammar to prove the export is
// machine-parseable (balanced containers, quoted keys, legal values) without
// a JSON library in the repo.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool Valid() {
    Ws();
    if (!Value()) {
      return false;
    }
    Ws();
    return pos_ == s_.size();
  }

 private:
  void Ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool String() {
    if (!Eat('"')) {
      return false;
    }
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
      }
      ++pos_;
    }
    return Eat('"');
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }
  bool Value() {
    Ws();
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    Eat('{');
    Ws();
    if (Eat('}')) {
      return true;
    }
    while (true) {
      Ws();
      if (!String()) {
        return false;
      }
      Ws();
      if (!Eat(':') || !Value()) {
        return false;
      }
      Ws();
      if (Eat('}')) {
        return true;
      }
      if (!Eat(',')) {
        return false;
      }
    }
  }
  bool Array() {
    Eat('[');
    Ws();
    if (Eat(']')) {
      return true;
    }
    while (true) {
      if (!Value()) {
        return false;
      }
      Ws();
      if (Eat(']')) {
        return true;
      }
      if (!Eat(',')) {
        return false;
      }
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

size_t CountSub(const std::string& s, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(ChromeJson, SyntheticScheduleValidatesAndCarriesBothPhases) {
  Tracer t(8);
  t.EnableSpans(16);
  t.Record(50, TraceEvent::kOpTimeout, 0xB000, 1);
  uint32_t fault = t.BeginSpan(SpanKind::kFault, 100, 0xB000);
  uint32_t attempt = t.BeginSpan(SpanKind::kFetchAttempt, 110, 0xB000);
  t.EndSpan(attempt, 160);
  t.EndSpan(fault, 170);

  std::string json = t.ToChromeJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  // Complete (span) events and instant (point) events, each with the keys
  // the Chrome trace-event format requires.
  EXPECT_EQ(CountSub(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(CountSub(json, "\"ph\":\"i\""), 1u);
  EXPECT_EQ(CountSub(json, "\"ph\":\"X\"") + CountSub(json, "\"ph\":\"i\""),
            CountSub(json, "\"pid\":0"));
  EXPECT_EQ(CountSub(json, "\"ph\":\"X\""), CountSub(json, "\"dur\":"));
  EXPECT_NE(json.find("\"name\":\"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fetch-attempt\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"op-timeout\""), std::string::npos);
}

// Round-trip the acceptance schedule: a demand fault that times out against
// a crashed node, backs off, retries, and fails over — exported as loadable
// Chrome trace JSON with the retry nested under its fault.
TEST(ChromeJson, FaultWithRetryScheduleRoundTrips) {
  Fabric fabric(CostModel::Default(), 2);
  DilosConfig cfg;
  cfg.local_mem_bytes = 32 * kPageSize;
  cfg.replication = 2;
  cfg.recovery.enabled = true;
  cfg.trace_capacity = 512;
  cfg.telemetry.span_capacity = 4096;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());

  const uint64_t pages = 128;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p);
  }
  fabric.CrashNode(0);
  for (uint64_t p = 0; p < pages; ++p) {
    EXPECT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p);
  }
  ASSERT_GT(rt.stats().fetch_retries, 0u) << "schedule must contain retries";

  auto spans = rt.tracer().SpanSnapshot();
  ASSERT_FALSE(spans.empty());
  std::map<uint32_t, SpanRecord> by_id;
  for (const SpanRecord& s : spans) {
    by_id[s.id] = s;
  }
  size_t retries = 0;
  for (const SpanRecord& s : spans) {
    if (s.kind == SpanKind::kFault) {
      EXPECT_EQ(s.parent, 0u) << "fault spans are roots";
      continue;
    }
    // Children nest under a fault root (when it still lives in the ring).
    EXPECT_NE(s.parent, 0u) << SpanKindName(s.kind);
    auto it = by_id.find(s.parent);
    if (it != by_id.end()) {
      EXPECT_EQ(it->second.kind, SpanKind::kFault);
      EXPECT_GE(s.begin_ns, it->second.begin_ns);
      EXPECT_LE(s.end_ns, it->second.end_ns);
    }
    if (s.kind == SpanKind::kRetryBackoff) {
      ++retries;
    }
  }
  EXPECT_GT(retries, 0u);

  std::string json = rt.tracer().ToChromeJson();
  EXPECT_TRUE(JsonValidator(json).Valid());
  EXPECT_NE(json.find("\"name\":\"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fetch-attempt\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"retry-backoff\""), std::string::npos);
  EXPECT_EQ(CountSub(json, "\"ph\":\"X\""), spans.size());
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CellsAccumulateAndAggregate) {
  MetricsRegistry reg(2);
  reg.OnOp(0, QpClass::kFault, false, 4096, 3000, true, false);
  reg.OnOp(0, QpClass::kFault, false, 4096, 5000, true, false);
  reg.OnOp(0, QpClass::kCleaner, true, 4096, 4000, true, false);
  reg.OnOp(1, QpClass::kFault, false, 0, 0, false, true);  // Timeout.
  reg.OnOp(1, QpClass::kFault, false, 0, 0, false, false);  // Error.
  reg.OnRetry(1, QpClass::kFault);
  reg.OnOp(7, QpClass::kFault, false, 4096, 1000, true, false);  // Out of range.
  reg.OnOp(-1, QpClass::kFault, false, 4096, 1000, true, false);

  const QpMetrics& f0 = reg.at(0, QpClass::kFault);
  EXPECT_EQ(f0.reads, 2u);
  EXPECT_EQ(f0.read_bytes, 8192u);
  EXPECT_EQ(f0.rtt.count(), 2u);
  EXPECT_EQ(f0.timeouts, 0u);
  const QpMetrics& f1 = reg.at(1, QpClass::kFault);
  EXPECT_EQ(f1.ops(), 0u);  // Failed ops move no payload.
  EXPECT_EQ(f1.timeouts, 1u);
  EXPECT_EQ(f1.errors, 1u);
  EXPECT_EQ(f1.retries, 1u);
  EXPECT_EQ(f1.rtt.count(), 0u);  // Timeouts never pollute the RTT histogram.

  EXPECT_EQ(reg.NodeTotal(0).ops(), 3u);
  EXPECT_EQ(reg.NodeTotal(0).bytes(), 12288u);
  EXPECT_EQ(reg.Total().ops(), 3u);
  EXPECT_EQ(reg.Total().timeouts, 1u);

  reg.Reset();
  EXPECT_EQ(reg.Total().ops(), 0u);
  EXPECT_EQ(reg.Total().timeouts, 0u);
}

TEST(MetricsRegistry, PromExpositionHasCountersAndQuantiles) {
  MetricsRegistry reg(2);
  for (int i = 0; i < 100; ++i) {
    reg.OnOp(0, QpClass::kFault, false, 4096, 2000 + i * 10, true, false);
  }
  reg.OnOp(1, QpClass::kProbe, false, 0, 0, false, true);
  reg.OnRetry(1, QpClass::kFault);

  std::string prom = reg.ToProm();
  EXPECT_NE(prom.find("# TYPE dilos_qp_ops_total counter"), std::string::npos);
  EXPECT_NE(prom.find("dilos_qp_ops_total{node=\"0\",qp=\"fault\",op=\"read\"} 100"),
            std::string::npos);
  EXPECT_NE(prom.find("dilos_qp_bytes_total{node=\"0\",qp=\"fault\",dir=\"read\"} 409600"),
            std::string::npos);
  EXPECT_NE(prom.find("dilos_qp_timeouts_total{node=\"1\",qp=\"probe\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("dilos_qp_retries_total{node=\"1\",qp=\"fault\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("dilos_qp_rtt_ns{node=\"0\",qp=\"fault\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("dilos_qp_rtt_ns_count{node=\"0\",qp=\"fault\"} 100"),
            std::string::npos);
  // Inactive cells are skipped: node 1 never had a successful fault-class op.
  EXPECT_EQ(prom.find("dilos_qp_ops_total{node=\"1\""), std::string::npos);
}

// The per-node acceptance scenario: 3 nodes, replication=2, node 0 crashes
// under load. The registry must show the dead node accumulating fault-QP
// timeouts while the survivors accumulate read bytes, consistent with the
// RuntimeStats the runtime kept on its own.
TEST(MetricsRegistry, PerNodeViewSeesAsymmetricCrash) {
  Fabric fabric(CostModel::Default(), 3);
  DilosConfig cfg;
  cfg.local_mem_bytes = 48 * kPageSize;
  cfg.replication = 2;
  cfg.recovery.enabled = true;
  cfg.telemetry.metrics = true;
  cfg.telemetry.check_invariants = true;  // Shutdown doubles as an audit.
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  ASSERT_NE(rt.metrics(), nullptr);

  const uint64_t pages = 192;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xBEEF);
  }
  fabric.CrashNode(0);
  // Sweep in reverse so the dead node's granule faults before the probe
  // machinery (driven by the clock advancing under the earlier faults)
  // declares it dead — the demand path itself must meet the timeout.
  for (uint64_t p = pages; p-- > 0;) {
    EXPECT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p ^ 0xBEEF);
  }
  EXPECT_EQ(rt.stats().failed_fetches, 0u);

  const MetricsRegistry& reg = *rt.metrics();
  // The dead node: demand fetches against it exhausted RC retransmission.
  EXPECT_GT(reg.at(0, QpClass::kFault).timeouts, 0u);
  // The survivors served the failover reads.
  uint64_t survivor_read_bytes =
      reg.NodeTotal(1).read_bytes + reg.NodeTotal(2).read_bytes;
  EXPECT_GT(survivor_read_bytes, 0u);
  EXPECT_GT(reg.at(1, QpClass::kFault).reads + reg.at(2, QpClass::kFault).reads, 0u);

  // Consistency with RuntimeStats: the choke point sees every runtime-level
  // timeout, and every payload byte the runtime counted as fetched.
  EXPECT_GE(reg.Total().timeouts, rt.stats().op_timeouts);
  EXPECT_GE(reg.Total().read_bytes, rt.stats().bytes_fetched);
  EXPECT_GE(reg.Total().write_bytes, rt.stats().bytes_written);
  // Retry attribution lands on the node the retries were aimed at.
  EXPECT_GE(reg.Total().retries, 1u);

  std::string prom = reg.ToProm();
  EXPECT_NE(prom.find("dilos_qp_timeouts_total{node=\"0\",qp=\"fault\"}"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorder, TriggersOnLossCounterDeltaAndRateLimits) {
  FlightRecorder fr(4, "", 1'000);
  for (uint64_t i = 0; i < 6; ++i) {
    fr.OnTrace({i * 10, TraceEvent::kMajorFault, 0x1000 + i, 0});
  }
  EXPECT_EQ(fr.total_recorded(), 6u);
  EXPECT_EQ(fr.Snapshot().size(), 4u);

  RuntimeStats s;
  EXPECT_FALSE(fr.MaybeTrigger(10, s, nullptr));  // No anomaly yet.
  s.checksum_mismatches = 2;
  EXPECT_TRUE(fr.MaybeTrigger(20, s, nullptr));
  EXPECT_EQ(fr.dumps(), 1u);
  EXPECT_NE(fr.last_dump().find("checksum_mismatches=2"), std::string::npos);
  EXPECT_NE(fr.last_dump().find("major-fault"), std::string::npos);
  EXPECT_NE(fr.last_dump().find("dump #1"), std::string::npos);

  // Same level again: no re-dump.
  EXPECT_FALSE(fr.MaybeTrigger(30, s, nullptr));
  // New anomaly inside the rate-limit window: stays armed, no dump yet.
  s.failed_fetches = 1;
  EXPECT_FALSE(fr.MaybeTrigger(40, s, nullptr));
  EXPECT_EQ(fr.dumps(), 1u);
  // Window passed: the armed anomaly reports.
  EXPECT_TRUE(fr.MaybeTrigger(20 + 1'000, s, nullptr));
  EXPECT_EQ(fr.dumps(), 2u);
  EXPECT_NE(fr.last_dump().find("failed_fetches=1"), std::string::npos);
}

TEST(FlightRecorder, IncludesMetricsWhenProvided) {
  FlightRecorder fr(4, "", 0);
  MetricsRegistry reg(1);
  reg.OnOp(0, QpClass::kFault, false, 4096, 2500, true, false);
  RuntimeStats s;
  s.tier_corrupt_drops = 1;
  EXPECT_TRUE(fr.MaybeTrigger(5, s, &reg));
  EXPECT_NE(fr.last_dump().find("per-node fabric metrics"), std::string::npos);
  EXPECT_NE(fr.last_dump().find("node 0 fault"), std::string::npos);
}

// End to end: a crash with no surviving replica moves failed_fetches, and
// the runtime's background tick fires the recorder — with the debug trace
// ring off, proving the sink tee keeps the recorder fed on its own.
TEST(FlightRecorder, RuntimeDumpsOnRealDataLoss) {
  Fabric fabric(CostModel::Default(), 1);
  DilosConfig cfg;
  cfg.local_mem_bytes = 16 * kPageSize;
  cfg.replication = 1;
  cfg.recovery.enabled = true;
  cfg.telemetry.flight_capacity = 64;
  ASSERT_EQ(cfg.trace_capacity, 0u);
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());

  const uint64_t pages = 64;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p + 7);
  }
  fabric.CrashNode(0);
  for (uint64_t p = 0; p < pages; ++p) {
    (void)rt.Read<uint64_t>(region + p * kPageSize);
  }
  ASSERT_GT(rt.stats().failed_fetches, 0u);

  FlightRecorder* fr = rt.telemetry()->flight();
  ASSERT_NE(fr, nullptr);
  EXPECT_GT(fr->total_recorded(), 0u);
  EXPECT_GE(fr->dumps(), 1u);
  EXPECT_NE(fr->last_dump().find("failed_fetches"), std::string::npos);
  EXPECT_NE(fr->last_dump().find("op-timeout"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Invariant checker
// ---------------------------------------------------------------------------

TEST(Invariants, ConsistentStatsPass) {
  RuntimeStats s;
  s.major_faults = 10;
  s.minor_faults = 5;
  s.probes_sent = 8;
  s.probe_misses = 3;
  s.repairs_issued = 4;
  s.repair_granules = 4;
  EXPECT_TRUE(CheckStatsInvariants(s, false).empty());
  EXPECT_TRUE(CheckStatsInvariants(s, true).empty());
}

TEST(Invariants, ImpossibleCountersAreNamed) {
  RuntimeStats s;
  s.repair_granules = 3;
  s.repairs_issued = 1;
  auto v = CheckStatsInvariants(s, false);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("repair_granules"), std::string::npos);

  RuntimeStats s2;
  s2.tier_hits = 5;  // A tier hit that was never counted as a minor fault.
  EXPECT_TRUE(CheckStatsInvariants(s2, false).empty()) << "tier checks are gated";
  auto v2 = CheckStatsInvariants(s2, true);
  ASSERT_FALSE(v2.empty());
  EXPECT_NE(v2[0].find("tier_hits"), std::string::npos);

  RuntimeStats s3;
  s3.ec_degraded_reads = 2;
  s3.degraded_reads = 1;
  s3.probe_misses = 1;  // And a second violation in the same pass.
  auto v3 = CheckStatsInvariants(s3, false);
  EXPECT_EQ(v3.size(), 2u);
}

// ---------------------------------------------------------------------------
// RuntimeStats::Reset audit + latency distributions
// ---------------------------------------------------------------------------

TEST(RuntimeStatsReset, MemsetPoisonAuditCoversEveryField) {
  // If Reset() ever switches from whole-struct assignment to a hand-kept
  // field list, a forgotten counter keeps its poison and this memcmp fails.
  RuntimeStats s;
  std::memset(&s, 0xAB, sizeof(s));
  // The poison forged the (non-owning) distribution pointer; clear it as the
  // runtime destructor does before anything dereferences it.
  s.fault_breakdown.set_distributions(nullptr);
  s.Reset();
  RuntimeStats fresh{};
  EXPECT_EQ(std::memcmp(&s, &fresh, sizeof(RuntimeStats)), 0);
}

TEST(RuntimeStatsReset, PreservesAndClearsInstalledDistributions) {
  RuntimeStats s;
  LatencyBreakdown::Distributions dist;
  s.fault_breakdown.set_distributions(&dist);
  s.fault_breakdown.Add(LatComp::kFetch, 5'000);
  s.fault_breakdown.CountEvent();
  s.major_faults = 1;
  EXPECT_EQ(dist[static_cast<size_t>(LatComp::kFetch)].count(), 1u);

  s.Reset();
  EXPECT_EQ(s.major_faults, 0u);
  EXPECT_EQ(s.fault_breakdown.events(), 0u);
  // The hook survives and the histograms it points at were cleared.
  EXPECT_EQ(s.fault_breakdown.distributions(), &dist);
  EXPECT_EQ(dist[static_cast<size_t>(LatComp::kFetch)].count(), 0u);
  s.fault_breakdown.Add(LatComp::kFetch, 1'000);
  EXPECT_EQ(dist[static_cast<size_t>(LatComp::kFetch)].count(), 1u);
}

TEST(Telemetry, LatencyDistributionsMirrorTheBreakdown) {
  Fabric fabric(CostModel::Default());
  DilosConfig cfg;
  cfg.local_mem_bytes = 16 * kPageSize;
  cfg.telemetry.latency_distributions = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());

  const uint64_t pages = 64;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p);
  }
  for (uint64_t p = 0; p < pages; ++p) {
    (void)rt.Read<uint64_t>(region + p * kPageSize);
  }
  const LogHistogram& fetch = rt.telemetry()->distribution(LatComp::kFetch);
  ASSERT_GT(fetch.count(), 0u);
  // Every Add() fed both the mean accumulator and the histogram, so the
  // sums agree exactly.
  EXPECT_EQ(fetch.sum(), rt.stats().fault_breakdown.total_ns(LatComp::kFetch));
  EXPECT_GT(fetch.Percentile(99), 0u);
  // Components that never ran stay empty (and reads of them are safe).
  EXPECT_TRUE(rt.telemetry()->distribution(LatComp::kSwapCacheMgmt).empty());
}

// ---------------------------------------------------------------------------
// Telemetry off == telemetry on, stats-wise
// ---------------------------------------------------------------------------

RuntimeStats RunWorkload(const TelemetryConfig& tcfg) {
  Fabric fabric(CostModel::Default(), 2);
  DilosConfig cfg;
  cfg.local_mem_bytes = 32 * kPageSize;
  cfg.replication = 2;
  cfg.recovery.enabled = true;
  cfg.telemetry = tcfg;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());

  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p * 3);
  }
  uint64_t rng = 0x12345;
  for (int i = 0; i < 4'000; ++i) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    (void)rt.Read<uint64_t>(region + (rng % pages) * kPageSize);
  }
  RuntimeStats out = rt.stats();
  out.fault_breakdown.set_distributions(nullptr);  // Normalize the copy.
  return out;
}

TEST(Telemetry, DisabledIsBitIdenticalToFullyEnabled) {
  TelemetryConfig off;
  ASSERT_FALSE(off.enabled());

  TelemetryConfig on;
  on.metrics = true;
  on.latency_distributions = true;
  on.span_capacity = 2048;
  on.flight_capacity = 256;
  on.check_invariants = true;
  on.attribution = true;
  on.slo.enabled = true;
  on.slo.default_objective = SloObjective{99.0, 20'000};
  ASSERT_TRUE(on.enabled());

  RuntimeStats a = RunWorkload(off);
  RuntimeStats b = RunWorkload(on);
  // Telemetry observes; it must never perturb the simulation. Trivially
  // copyable + normalized pointer makes bytewise equality meaningful.
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(RuntimeStats)), 0)
      << "telemetry-on run diverged:\n"
      << a.ToString() << "\nvs\n"
      << b.ToString();
}

TEST(Telemetry, DisabledRuntimeExposesNoInstruments) {
  Fabric fabric(CostModel::Default());
  DilosConfig cfg;
  cfg.local_mem_bytes = 16 * kPageSize;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  EXPECT_EQ(rt.telemetry(), nullptr);
  EXPECT_EQ(rt.metrics(), nullptr);
  EXPECT_EQ(fabric.metrics(), nullptr);
  EXPECT_FALSE(rt.tracer().spans_enabled());
}

}  // namespace
}  // namespace dilos
