// Tests for the mimalloc-style far heap: size classes, bitmaps, reuse,
// large allocations, and the LiveSegments guided-paging query.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/ddc_alloc/far_heap.h"
#include "src/dilos/prefetcher.h"
#include "src/dilos/runtime.h"

namespace dilos {
namespace {

class FarHeapTest : public ::testing::Test {
 protected:
  FarHeapTest() {
    DilosConfig cfg;
    cfg.local_mem_bytes = 8 << 20;
    rt_ = std::make_unique<DilosRuntime>(fabric_, cfg, std::make_unique<NullPrefetcher>());
    heap_ = std::make_unique<FarHeap>(*rt_);
  }

  Fabric fabric_;
  std::unique_ptr<DilosRuntime> rt_;
  std::unique_ptr<FarHeap> heap_;
};

TEST_F(FarHeapTest, DistinctAddresses) {
  std::set<uint64_t> addrs;
  for (int i = 0; i < 1000; ++i) {
    uint64_t a = heap_->Malloc(64);
    EXPECT_TRUE(addrs.insert(a).second) << "duplicate address";
  }
  EXPECT_EQ(heap_->live_chunks(), 1000u);
}

TEST_F(FarHeapTest, SameClassSharesPages) {
  uint64_t a = heap_->Malloc(64);
  uint64_t b = heap_->Malloc(64);
  EXPECT_EQ(a >> 12, b >> 12);  // Same 4 KB page.
  EXPECT_EQ(b - a, 64u);
}

TEST_F(FarHeapTest, DifferentClassesDifferentPages) {
  uint64_t a = heap_->Malloc(64);
  uint64_t b = heap_->Malloc(512);
  EXPECT_NE(a >> 12, b >> 12);
}

TEST_F(FarHeapTest, FreeAndReuse) {
  uint64_t a = heap_->Malloc(128);
  heap_->Free(a);
  EXPECT_EQ(heap_->live_chunks(), 0u);
  uint64_t b = heap_->Malloc(128);
  EXPECT_EQ(a, b);  // First-fit within the page reuses the slot.
}

TEST_F(FarHeapTest, FullyFreedPageIsRecycled) {
  // Fill a page of 2048-byte chunks (2 per page), free both, realloc.
  uint64_t a = heap_->Malloc(2048);
  uint64_t b = heap_->Malloc(2048);
  EXPECT_EQ(a >> 12, b >> 12);
  heap_->Free(a);
  heap_->Free(b);
  uint64_t c = heap_->Malloc(1024);  // Different class; page can be re-carved.
  EXPECT_EQ(c >> 12, a >> 12);
}

TEST_F(FarHeapTest, DoubleFreeIsIgnored) {
  uint64_t a = heap_->Malloc(64);
  heap_->Free(a);
  heap_->Free(a);
  EXPECT_EQ(heap_->live_chunks(), 0u);
  heap_->Malloc(64);
  EXPECT_EQ(heap_->live_chunks(), 1u);
}

TEST_F(FarHeapTest, LargeAllocationWholePages) {
  uint64_t a = heap_->Malloc(3 * 4096 + 100);
  EXPECT_EQ(a & 4095, 0u);  // Page-aligned.
  EXPECT_EQ(heap_->UsableSize(a), 4u * 4096);
  heap_->Free(a);
  EXPECT_EQ(heap_->live_chunks(), 0u);
}

TEST_F(FarHeapTest, UsableSizeRoundsToClass) {
  EXPECT_EQ(heap_->UsableSize(heap_->Malloc(50)), 64u);
  EXPECT_EQ(heap_->UsableSize(heap_->Malloc(16)), 16u);
  EXPECT_EQ(heap_->UsableSize(0xDEAD000), 0u);
}

TEST_F(FarHeapTest, AllocatedMemoryIsUsable) {
  uint64_t a = heap_->Malloc(256);
  rt_->Write<uint64_t>(a, 0x123456789ABCDEFULL);
  rt_->Write<uint64_t>(a + 248, 42);
  EXPECT_EQ(rt_->Read<uint64_t>(a), 0x123456789ABCDEFULL);
  EXPECT_EQ(rt_->Read<uint64_t>(a + 248), 42u);
}

TEST_F(FarHeapTest, LiveSegmentsFullyLivePageReturnsFalse) {
  // 2048-byte class: 2 chunks fill the page.
  uint64_t a = heap_->Malloc(2048);
  heap_->Malloc(2048);
  std::vector<PageSegment> segs;
  EXPECT_FALSE(heap_->LiveSegments(a >> 12 << 12, &segs));
}

TEST_F(FarHeapTest, LiveSegmentsPartialPage) {
  // 64 chunks of 64 B; free every other one.
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 64; ++i) {
    addrs.push_back(heap_->Malloc(64));
  }
  uint64_t page = addrs[0] & ~4095ULL;
  for (size_t i = 1; i < addrs.size(); i += 2) {
    heap_->Free(addrs[i]);
  }
  std::vector<PageSegment> segs;
  ASSERT_TRUE(heap_->LiveSegments(page, &segs, 3));
  ASSERT_LE(segs.size(), 3u);
  // Segments must cover all live chunks.
  for (size_t i = 0; i < addrs.size(); i += 2) {
    uint32_t off = static_cast<uint32_t>(addrs[i] - page);
    bool covered = false;
    for (const PageSegment& s : segs) {
      if (off >= s.offset && off + 64 <= s.offset + s.length) {
        covered = true;
      }
    }
    EXPECT_TRUE(covered) << "chunk at offset " << off;
  }
}

TEST_F(FarHeapTest, LiveSegmentsSavesBytesAfterBulkFree) {
  // One live chunk in an otherwise freed page: the vector should be tiny.
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 32; ++i) {
    addrs.push_back(heap_->Malloc(128));
  }
  uint64_t keep = addrs[7];
  uint64_t page = keep & ~4095ULL;
  for (uint64_t a : addrs) {
    if (a != keep) {
      heap_->Free(a);
    }
  }
  std::vector<PageSegment> segs;
  ASSERT_TRUE(heap_->LiveSegments(page, &segs, 3));
  uint64_t covered = 0;
  for (const PageSegment& s : segs) {
    covered += s.length;
  }
  EXPECT_LE(covered, 256u);  // Far less than a 4 KB page.
}

TEST_F(FarHeapTest, SegmentMergingRespectsCap) {
  // Free a pattern that produces many islands; cap at 2 segments.
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 256; ++i) {
    addrs.push_back(heap_->Malloc(16));
  }
  uint64_t page = addrs[0] & ~4095ULL;
  for (size_t i = 0; i < addrs.size(); ++i) {
    if (i % 3 != 0) {
      heap_->Free(addrs[i]);
    }
  }
  std::vector<PageSegment> segs;
  ASSERT_TRUE(heap_->LiveSegments(page, &segs, 2));
  EXPECT_LE(segs.size(), 2u);
  // Segments are sorted and non-overlapping.
  for (size_t i = 1; i < segs.size(); ++i) {
    EXPECT_GE(segs[i].offset, segs[i - 1].offset + segs[i - 1].length);
  }
}

TEST_F(FarHeapTest, AllSizeClassesWork) {
  for (uint32_t cls : FarHeap::kSizeClasses) {
    uint64_t a = heap_->Malloc(cls);
    EXPECT_EQ(heap_->UsableSize(a), cls);
    rt_->Write<uint8_t>(a + cls - 1, 0x7F);  // Last byte is addressable.
    EXPECT_EQ(rt_->Read<uint8_t>(a + cls - 1), 0x7F);
  }
}

}  // namespace
}  // namespace dilos
