// Tests for the compressed local cold tier (src/tier): codec round-trips
// (random + pathological payloads), slab pool accounting, admission/eviction
// policy, the runtime's tier fault path, durability of tier-resident dirty
// pages (the tier is a cache, never the only copy of written-back content),
// and a 32-seed chaos soak with the tier enabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/memnode/fault_injector.h"
#include "src/tier/comp_pool.h"
#include "src/tier/compress.h"
#include "src/tier/tier.h"

namespace dilos {
namespace {

constexpr uint64_t kMs = 1'000'000;

uint64_t Rng(uint64_t* s) {
  *s ^= *s << 13;
  *s ^= *s >> 7;
  *s ^= *s << 17;
  return *s;
}

// -- Codec --------------------------------------------------------------------

void ExpectRoundTrip(const std::vector<uint8_t>& src, const char* label) {
  std::vector<uint8_t> comp(TierCompressBound(src.size()));
  size_t csize = TierCompress(src.data(), src.size(), comp.data(), comp.size());
  ASSERT_GT(csize, 0u) << label << ": compress failed under the worst-case bound";
  ASSERT_LE(csize, TierCompressBound(src.size())) << label;
  std::vector<uint8_t> out(src.size(), 0xA5);
  ASSERT_EQ(TierDecompress(comp.data(), csize, out.data(), out.size()), src.size()) << label;
  EXPECT_EQ(std::memcmp(out.data(), src.data(), src.size()), 0) << label;
}

TEST(TierCompress, RoundTripsPathologicalPayloads) {
  ExpectRoundTrip(std::vector<uint8_t>(kPageSize, 0x00), "all-zero");
  ExpectRoundTrip(std::vector<uint8_t>(kPageSize, 0xFF), "all-ones");
  ExpectRoundTrip(std::vector<uint8_t>(1, 0x42), "single byte");
  ExpectRoundTrip(std::vector<uint8_t>(3, 0x42), "below min match");

  std::vector<uint8_t> alt(kPageSize);
  for (size_t i = 0; i < alt.size(); ++i) {
    alt[i] = (i & 1) ? 0xAA : 0x55;
  }
  ExpectRoundTrip(alt, "alternating");

  std::vector<uint8_t> ramp(kPageSize);
  for (size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<uint8_t>(i);  // Period 256: long-distance matches.
  }
  ExpectRoundTrip(ramp, "byte ramp");

  std::vector<uint8_t> odd(kPageSize);
  for (size_t i = 0; i < odd.size(); ++i) {
    odd[i] = static_cast<uint8_t>("\x01\x80\x7F\xFE\x33"[i % 5]);  // Odd period,
  }                                                                // overlap copies.
  ExpectRoundTrip(odd, "period-5 motif");

  std::vector<uint8_t> tags(kPageSize, 0x80);  // Bytes that look like match tags.
  ExpectRoundTrip(tags, "tag-like bytes");

  // Far match: a motif at the start repeated at the end of the page, with
  // unique filler between — exercises the 2-byte distance encoding.
  std::vector<uint8_t> far(kPageSize);
  uint64_t s = 7;
  for (size_t i = 0; i < far.size(); ++i) {
    far[i] = static_cast<uint8_t>(Rng(&s));
  }
  std::memcpy(far.data() + kPageSize - 64, far.data(), 64);
  ExpectRoundTrip(far, "page-spanning match");

  std::vector<uint8_t> rnd(kPageSize);
  for (size_t i = 0; i < rnd.size(); ++i) {
    rnd[i] = static_cast<uint8_t>(Rng(&s));
  }
  ExpectRoundTrip(rnd, "incompressible random");
}

TEST(TierCompress, RoundTripsRandomStructuredPages) {
  // Property sweep: pages assembled from zero runs, repeated motifs, and
  // random spans in seed-derived order — the shapes real heaps take.
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    uint64_t s = seed * 0x9E3779B97F4A7C15ULL + 1;
    std::vector<uint8_t> page;
    page.reserve(kPageSize);
    uint8_t motif[16];
    for (uint8_t& b : motif) {
      b = static_cast<uint8_t>(Rng(&s));
    }
    while (page.size() < kPageSize) {
      size_t run = 1 + Rng(&s) % 512;
      if (run > kPageSize - page.size()) {
        run = kPageSize - page.size();
      }
      switch (Rng(&s) % 3) {
        case 0:
          page.insert(page.end(), run, 0);
          break;
        case 1:
          for (size_t i = 0; i < run; ++i) {
            page.push_back(motif[i % sizeof(motif)]);
          }
          break;
        default:
          for (size_t i = 0; i < run; ++i) {
            page.push_back(static_cast<uint8_t>(Rng(&s)));
          }
          break;
      }
    }
    ExpectRoundTrip(page, "structured page");
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "seed=" << seed;
      break;
    }
  }
}

TEST(TierCompress, ZeroPageCompressesToNearNothing) {
  std::vector<uint8_t> page(kPageSize, 0);
  std::vector<uint8_t> comp(TierCompressBound(kPageSize));
  size_t csize = TierCompress(page.data(), page.size(), comp.data(), comp.size());
  ASSERT_GT(csize, 0u);
  EXPECT_LT(csize, 128u) << "an all-zero page should collapse to a run of max-length matches";
}

TEST(TierCompress, RespectsTheOutputCap) {
  uint64_t s = 99;
  std::vector<uint8_t> rnd(kPageSize);
  for (uint8_t& b : rnd) {
    b = static_cast<uint8_t>(Rng(&s));
  }
  std::vector<uint8_t> comp(kPageSize);
  EXPECT_EQ(TierCompress(rnd.data(), rnd.size(), comp.data(), kPageSize / 2), 0u)
      << "random bytes cannot fit half a page; the cap must reject, not overrun";
}

TEST(TierCompress, RejectsMalformedStreams) {
  uint8_t out[kPageSize];
  // Literal run of 1 with no literal byte following.
  const uint8_t trunc_lit[] = {0x00};
  EXPECT_EQ(TierDecompress(trunc_lit, sizeof(trunc_lit), out, sizeof(out)), 0u);
  // Match tag with a truncated distance field.
  const uint8_t trunc_dist[] = {0x80, 0x01};
  EXPECT_EQ(TierDecompress(trunc_dist, sizeof(trunc_dist), out, sizeof(out)), 0u);
  // Match with distance 0.
  const uint8_t zero_dist[] = {0x01, 0x41, 0x42, 0x80, 0x00, 0x00};
  EXPECT_EQ(TierDecompress(zero_dist, sizeof(zero_dist), out, sizeof(out)), 0u);
  // Match reaching before the start of the output.
  const uint8_t far_dist[] = {0x00, 0x41, 0x80, 0x10, 0x00};
  EXPECT_EQ(TierDecompress(far_dist, sizeof(far_dist), out, sizeof(out)), 0u);
  // Literal run overflowing the destination capacity.
  std::vector<uint8_t> big(1 + 128, 0x42);
  big[0] = 0x7F;  // 128 literals...
  EXPECT_EQ(TierDecompress(big.data(), big.size(), out, 64), 0u);  // ...into 64 bytes.
}

// -- Slab pool ----------------------------------------------------------------

TEST(TierCompPool, StoresAndRecyclesBlobs) {
  CompPool pool;
  uint64_t s = 3;
  std::vector<CompHandle> handles;
  std::vector<std::vector<uint8_t>> blobs;
  for (int i = 0; i < 200; ++i) {
    std::vector<uint8_t> blob(1 + Rng(&s) % 2800);
    for (uint8_t& b : blob) {
      b = static_cast<uint8_t>(Rng(&s));
    }
    handles.push_back(pool.Alloc(blob.data(), blob.size()));
    blobs.push_back(std::move(blob));
  }
  EXPECT_EQ(pool.blob_count(), 200u);
  EXPECT_GE(pool.block_bytes(), pool.payload_bytes());
  EXPECT_GE(pool.slab_bytes(), pool.block_bytes());
  for (size_t i = 0; i < handles.size(); ++i) {
    ASSERT_EQ(std::memcmp(pool.Data(handles[i]), blobs[i].data(), blobs[i].size()), 0)
        << "blob " << i << " corrupted in the pool";
  }
  // Free everything; the slabs stay resident (recycled, not returned).
  for (size_t i = 0; i < handles.size(); ++i) {
    pool.Free(handles[i], blobs[i].size());
  }
  EXPECT_EQ(pool.blob_count(), 0u);
  EXPECT_EQ(pool.payload_bytes(), 0u);
  EXPECT_EQ(pool.block_bytes(), 0u);
  uint64_t resident = pool.slab_bytes();
  EXPECT_GT(resident, 0u);
  // A fresh allocation round of a *different* size class reuses the freed
  // slabs instead of growing the footprint.
  std::vector<uint8_t> blob(2000, 0xEE);
  CompHandle h = pool.Alloc(blob.data(), blob.size());
  EXPECT_EQ(pool.slab_bytes(), resident) << "freed slabs must be repurposed, not leaked";
  EXPECT_EQ(std::memcmp(pool.Data(h), blob.data(), blob.size()), 0);
}

TEST(TierCompPool, RoundsBlockSizeUpToTheClassStep) {
  CompPool pool;
  uint8_t byte = 0x7;
  pool.Alloc(&byte, 1);
  EXPECT_EQ(pool.block_bytes(), kTierClassStep);
  EXPECT_EQ(pool.payload_bytes(), 1u);
}

// -- Tier policy --------------------------------------------------------------

std::vector<uint8_t> CompressiblePage(uint8_t tag) {
  std::vector<uint8_t> page(kPageSize, 0);
  for (size_t i = 0; i < 64; ++i) {
    page[i] = static_cast<uint8_t>(tag + i);  // Unique head, zero tail: the
  }                                           // blob fits the smallest class.
  return page;
}

TEST(TierPolicy, AdmitTakeIsExclusiveAndKeepsContentAndDirtyBit) {
  CompressedTier tier(TierConfig{});
  auto page = CompressiblePage(1);
  uint32_t csize = 0;
  ASSERT_EQ(tier.AdmitPage(0x1000, page.data(), /*dirty=*/true, &csize),
            CompressedTier::Admit::kStored);
  EXPECT_GT(csize, 0u);
  EXPECT_LT(csize, kPageSize);
  EXPECT_TRUE(tier.Contains(0x1000));
  EXPECT_EQ(tier.stored_pages(), 1u);

  uint8_t out[kPageSize];
  bool dirty = false;
  ASSERT_TRUE(tier.Take(0x1000, out, &dirty));
  EXPECT_TRUE(dirty);
  EXPECT_EQ(std::memcmp(out, page.data(), kPageSize), 0);
  EXPECT_FALSE(tier.Contains(0x1000)) << "Take is the exclusive promotion path";
  EXPECT_EQ(tier.stored_pages(), 0u);
  EXPECT_FALSE(tier.Take(0x1000, out, &dirty));
}

TEST(TierPolicy, IncompressiblePagesAreRejected) {
  CompressedTier tier(TierConfig{});
  uint64_t s = 11;
  std::vector<uint8_t> rnd(kPageSize);
  for (uint8_t& b : rnd) {
    b = static_cast<uint8_t>(Rng(&s));
  }
  uint32_t csize = 0;
  EXPECT_EQ(tier.AdmitPage(0x1000, rnd.data(), false, &csize),
            CompressedTier::Admit::kIncompressible);
  EXPECT_FALSE(tier.Contains(0x1000));
}

TEST(TierPolicy, OldestFollowsAdmissionOrderAndRequeueDefers) {
  CompressedTier tier(TierConfig{});
  auto page = CompressiblePage(2);
  uint32_t csize = 0;
  tier.AdmitPage(0xA000, page.data(), true, &csize);
  tier.AdmitPage(0xB000, page.data(), false, &csize);
  tier.AdmitPage(0xC000, page.data(), true, &csize);

  uint64_t va = 0;
  bool dirty = false;
  ASSERT_TRUE(tier.Oldest(&va, &dirty));
  EXPECT_EQ(va, 0xA000u);
  EXPECT_TRUE(dirty);

  std::vector<uint64_t> dirty_batch;
  tier.CollectDirty(8, &dirty_batch);
  ASSERT_EQ(dirty_batch.size(), 2u);
  EXPECT_EQ(dirty_batch[0], 0xA000u) << "drain order must be oldest first";
  EXPECT_EQ(dirty_batch[1], 0xC000u);

  tier.Requeue(0xA000);  // Failed write-back: defer, don't spin.
  ASSERT_TRUE(tier.Oldest(&va, &dirty));
  EXPECT_EQ(va, 0xB000u);

  tier.MarkClean(0xC000);
  dirty_batch.clear();
  tier.CollectDirty(8, &dirty_batch);
  ASSERT_EQ(dirty_batch.size(), 1u);
  EXPECT_EQ(dirty_batch[0], 0xA000u);
}

TEST(TierPolicy, ReadmittingAPageReplacesItsContent) {
  CompressedTier tier(TierConfig{});
  auto a = CompressiblePage(3);
  auto b = CompressiblePage(77);
  uint32_t csize = 0;
  tier.AdmitPage(0x1000, a.data(), false, &csize);
  tier.AdmitPage(0x1000, b.data(), true, &csize);
  EXPECT_EQ(tier.stored_pages(), 1u);
  uint8_t out[kPageSize];
  bool dirty = false;
  ASSERT_TRUE(tier.Take(0x1000, out, &dirty));
  EXPECT_TRUE(dirty);
  EXPECT_EQ(std::memcmp(out, b.data(), kPageSize), 0);
}

TEST(TierPolicy, CorruptBlobIsDroppedOnTakeNotLeaked) {
  CompressedTier tier(TierConfig{});
  auto page = CompressiblePage(9);
  uint32_t csize = 0;
  ASSERT_EQ(tier.AdmitPage(0x1000, page.data(), /*dirty=*/true, &csize),
            CompressedTier::Admit::kStored);
  uint32_t n = 0;
  const uint8_t* blob = tier.BlobData(0x1000, &n);
  ASSERT_NE(blob, nullptr);
  // Simulate in-DRAM rot: a run of match tags whose distances reach before
  // the start of the output can never decompress to a full page.
  std::memset(const_cast<uint8_t*>(blob), 0x80, n);

  uint8_t out[kPageSize];
  bool dirty = false;
  EXPECT_FALSE(tier.Take(0x1000, out, &dirty));
  EXPECT_FALSE(tier.Contains(0x1000)) << "a corrupt entry must be dropped, not kept";
  EXPECT_EQ(tier.stored_pages(), 0u);
  EXPECT_EQ(tier.block_bytes(), 0u) << "the corrupt blob's pool blocks leaked";
  // The slot is reusable afterwards.
  ASSERT_EQ(tier.AdmitPage(0x1000, page.data(), false, &csize),
            CompressedTier::Admit::kStored);
  EXPECT_TRUE(tier.Take(0x1000, out, &dirty));
  EXPECT_EQ(std::memcmp(out, page.data(), kPageSize), 0);
}

TEST(TierPolicy, CapacityBudgetTracksBlockBytes) {
  TierConfig cfg;
  cfg.capacity_bytes = 2 * kTierClassStep;
  CompressedTier tier(cfg);
  auto page = CompressiblePage(4);
  uint32_t csize = 0;
  tier.AdmitPage(0x1000, page.data(), false, &csize);
  ASSERT_LE(csize, kTierClassStep) << "test page should land in the smallest class";
  EXPECT_FALSE(tier.OverCapacity());
  tier.AdmitPage(0x2000, page.data(), false, &csize);
  EXPECT_FALSE(tier.OverCapacity());
  tier.AdmitPage(0x3000, page.data(), false, &csize);
  EXPECT_TRUE(tier.OverCapacity());
  tier.Drop(0x1000);
  EXPECT_FALSE(tier.OverCapacity());
}

// -- Runtime integration ------------------------------------------------------

DilosConfig TierConfigured(uint64_t capacity_bytes = 32ULL << 20) {
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.tier.enabled = true;
  cfg.tier.capacity_bytes = capacity_bytes;
  return cfg;
}

void Populate(DilosRuntime& rt, uint64_t region, uint64_t pages, uint64_t salt = 0xD15C0) {
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p ^ salt);
  }
}

uint64_t VerifySweep(DilosRuntime& rt, uint64_t region, uint64_t pages,
                     uint64_t salt = 0xD15C0) {
  uint64_t errors = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    if (rt.Read<uint64_t>(region + p * kPageSize) != (p ^ salt)) {
      ++errors;
    }
  }
  return errors;
}

TEST(TierRuntime, EvictionsLandInTheTierAndFaultsDecompressLocally) {
  Fabric fabric(CostModel::Default(), 1);
  DilosConfig cfg = TierConfigured();
  cfg.trace_capacity = 1 << 16;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  EXPECT_GT(rt.stats().tier_stored_pages, 0u) << "evictions should compress into the tier";
  bool saw_tier_pte = false;
  for (uint64_t p = 0; p < pages && !saw_tier_pte; ++p) {
    saw_tier_pte = PteTagOf(rt.page_table().Get(region + p * kPageSize)) == PteTag::kTier;
  }
  EXPECT_TRUE(saw_tier_pte);

  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);
  EXPECT_GT(rt.stats().tier_hits, 0u) << "the sweep must refault through the tier";
  EXPECT_GT(rt.tracer().Count(TraceEvent::kTierHit), 0u);
  EXPECT_GT(rt.tracer().Count(TraceEvent::kTierAdmit), 0u);
  EXPECT_GT(rt.stats().fault_breakdown.total_ns(LatComp::kDecompress), 0u);
}

TEST(TierRuntime, TierHitResolvesFasterThanARemoteFetch) {
  Fabric fabric(CostModel::Default(), 1);
  // Capacity for only a few compressed pages: old victims spill remote, so
  // the same run holds both tier-resident and remote cold pages to compare.
  DilosConfig cfg = TierConfigured(/*capacity_bytes=*/8 * kTierClassStep);
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  EXPECT_GT(rt.stats().tier_evictions, 0u) << "tier pressure should spill pages remote";

  uint64_t tier_va = 0, remote_va = 0;
  for (uint64_t p = 0; p < pages && (tier_va == 0 || remote_va == 0); ++p) {
    uint64_t va = region + p * kPageSize;
    PteTag tag = PteTagOf(rt.page_table().Get(va));
    if (tag == PteTag::kTier && tier_va == 0) {
      tier_va = va;
    } else if (tag == PteTag::kRemote && remote_va == 0) {
      remote_va = va;
    }
  }
  ASSERT_NE(tier_va, 0u);
  ASSERT_NE(remote_va, 0u);

  uint64_t t0 = rt.clock(0).now();
  rt.Read<uint64_t>(tier_va);
  uint64_t tier_ns = rt.clock(0).now() - t0;
  t0 = rt.clock(0).now();
  rt.Read<uint64_t>(remote_va);
  uint64_t remote_ns = rt.clock(0).now() - t0;
  EXPECT_LT(2 * tier_ns, remote_ns)
      << "tier hit " << tier_ns << " ns vs remote fetch " << remote_ns << " ns";
}

TEST(TierRuntime, IncompressibleVictimsBypassToTheRemotePath) {
  Fabric fabric(CostModel::Default(), 1);
  DilosRuntime rt(fabric, TierConfigured(), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 128;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  // Fill every byte of every page with pseudo-random content.
  uint64_t s = 5;
  for (uint64_t p = 0; p < pages; ++p) {
    for (uint64_t off = 0; off < kPageSize; off += 8) {
      rt.Write<uint64_t>(region + p * kPageSize + off, Rng(&s));
    }
  }
  EXPECT_GT(rt.stats().tier_bypass_incompressible, 0u);
  // And the content still round-trips through the remote path.
  s = 5;
  uint64_t errors = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    for (uint64_t off = 0; off < kPageSize; off += 8) {
      if (rt.Read<uint64_t>(region + p * kPageSize + off) != Rng(&s)) {
        ++errors;
      }
    }
  }
  EXPECT_EQ(errors, 0u);
}

TEST(TierRuntime, TierPressureEvictionsReachRemoteRedundancyBeforeDropping) {
  // Tiny tier: every admitted page is soon pushed remote. Crashing a replica
  // afterwards proves the write-backs really landed — the tier was never the
  // only copy of anything it dropped.
  Fabric fabric(CostModel::Default(), 2);
  DilosConfig cfg = TierConfigured(/*capacity_bytes=*/8 * kTierClassStep);
  cfg.replication = 2;
  cfg.recovery.enabled = true;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  EXPECT_GT(rt.stats().tier_evictions, 0u);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u);

  fabric.CrashNode(0);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u)
      << "dropped tier entries must already sit on every replica";
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

TEST(TierRuntime, PartitionedWriteBacksKeepDirtyPagesInTheTier) {
  // Every write toward the (only) memory node is dropped: the deferred
  // write-backs can never land, so the tier must hold on to its dirty
  // entries (Requeue) instead of dropping its only copy.
  Fabric fabric(CostModel::Default(), 1);
  FaultPlan plan;
  plan.specs.push_back({0, FaultKind::kPartitionIn, 1.0, 1.0, 0, UINT64_MAX});
  fabric.set_fault_plan(plan);
  DilosConfig cfg = TierConfigured(/*capacity_bytes=*/8 * kTierClassStep);
  cfg.fault_seed = 21;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 96;  // Fits in frames + tier, nothing *must* go remote.
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u)
      << "content must survive in the tier when no write-back can land";
  EXPECT_GT(rt.tier()->stored_pages(), 0u);
  EXPECT_TRUE(rt.tier()->OverCapacity())
      << "with every write-back dropped, trimming must stall rather than drop data";
}

TEST(TierRuntime, CorruptBlobFallsBackToRemoteAndCountsTheDrop) {
  Fabric fabric(CostModel::Default(), 1);
  DilosConfig cfg = TierConfigured();
  cfg.trace_capacity = 1 << 16;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  // Pick a tier-resident page whose deferred write-back already drained:
  // its remote copy is current, so the fault must still read correct bytes
  // after the blob rots in DRAM.
  std::vector<uint64_t> dirty_vas;
  rt.tier()->CollectDirty(rt.tier()->stored_pages(), &dirty_vas);
  uint64_t victim = 0;
  for (uint64_t p = 0; p < pages && victim == 0; ++p) {
    uint64_t va = region + p * kPageSize;
    if (PteTagOf(rt.page_table().Get(va)) == PteTag::kTier &&
        std::find(dirty_vas.begin(), dirty_vas.end(), va) == dirty_vas.end()) {
      victim = va;
    }
  }
  ASSERT_NE(victim, 0u) << "expected a clean tier-resident page after populate";
  uint32_t n = 0;
  const uint8_t* blob = rt.tier()->BlobData(victim, &n);
  ASSERT_NE(blob, nullptr);
  std::memset(const_cast<uint8_t*>(blob), 0x80, n);  // In-DRAM rot.

  uint64_t p = (victim - region) / kPageSize;
  EXPECT_EQ(rt.Read<uint64_t>(victim), p ^ 0xD15C0)
      << "the remote copy must serve the fault once the blob is corrupt";
  EXPECT_EQ(rt.stats().tier_corrupt_drops, 1u);
  EXPECT_FALSE(rt.tier()->Contains(victim)) << "the corrupt entry must not linger";
  EXPECT_GT(rt.tracer().Count(TraceEvent::kTierCorrupt), 0u);
  EXPECT_EQ(rt.stats().failed_fetches, 0u);
}

TEST(TierRuntime, FreeRegionDropsTierEntries) {
  Fabric fabric(CostModel::Default(), 1);
  DilosRuntime rt(fabric, TierConfigured(), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  ASSERT_GT(rt.tier()->stored_pages(), 0u);
  rt.FreeRegion(region, pages * kPageSize);
  EXPECT_EQ(rt.tier()->stored_pages(), 0u) << "freed pages must not linger compressed";
}

TEST(TierRuntime, CapacityGainExceedsCompressionFootprint) {
  // Accounting sanity for the headline claim: stored payload is what the
  // tier holds uncompressed; block bytes is the DRAM it actually burns.
  Fabric fabric(CostModel::Default(), 1);
  DilosRuntime rt(fabric, TierConfigured(), std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);
  ASSERT_GT(rt.tier()->stored_pages(), 0u);
  uint64_t logical = rt.tier()->stored_pages() * kPageSize;
  EXPECT_GE(logical, 2 * rt.tier()->block_bytes())
      << "mostly-zero pages should compress at least 2x even after class rounding";
}

// -- Chaos soak with the tier enabled -----------------------------------------

uint64_t SeedBase() {
  const char* env = std::getenv("DILOS_CHAOS_SEED_BASE");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 1;
}

// The replication chaos soak from test_chaos.cc with the tier switched on and
// sized to stay under pressure (admissions, deferred write-backs, and
// tier-pressure evictions all run continuously through the fault windows).
// Asserts no read ever returns wrong bytes and no write is ever lost.
void TierChaosSoak(uint64_t seed) {
  Fabric fabric(CostModel::Default(), 3);
  FaultPlan plan;
  plan.specs.push_back({1, FaultKind::kCrash, 1.0, 1.0, 2 * kMs, 11 * kMs});
  plan.specs.push_back({2, FaultKind::kDelay, 1.0, 8.0, 4 * kMs, 14 * kMs});
  plan.specs.push_back({2, FaultKind::kTransient, 0.02, 1.0, 14'500'000, 17 * kMs});
  plan.specs.push_back({0, FaultKind::kPartitionOut, 1.0, 1.0, 18 * kMs, 20'500'000});
  plan.specs.push_back({-1, FaultKind::kBitFlip, 0.01, 1.0, 0, UINT64_MAX});
  plan.specs.push_back({-1, FaultKind::kStorageRot, 0.0005, 1.0, 12 * kMs, 14'500'000});
  fabric.set_fault_plan(plan);

  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * kPageSize;
  cfg.replication = 2;
  cfg.recovery.enabled = true;
  cfg.fault_seed = seed;
  cfg.pm.scrub_pages_per_tick = 64;
  cfg.tier.enabled = true;
  cfg.tier.capacity_bytes = 24 * kTierClassStep;  // Small: constant tier pressure.
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  Populate(rt, region, pages);

  uint64_t rng = seed * 0x9E3779B97F4A7C15ULL + 1;
  uint64_t wrong_reads = 0;
  uint64_t ops = 0;
  while (rt.clock(0).now() < 22 * kMs && ops < 600'000) {
    uint64_t p = Rng(&rng) % pages;
    if (Rng(&rng) % 4 == 0) {
      rt.Write<uint64_t>(region + p * kPageSize, p ^ 0xD15C0);
    } else if (rt.Read<uint64_t>(region + p * kPageSize) != (p ^ 0xD15C0)) {
      ++wrong_reads;
    }
    ++ops;
  }
  for (uint64_t i = 0; i < 10; ++i) {
    rt.DriveRecovery(1'000'000);
  }
  for (uint64_t i = 0; i < 100 && !rt.RecoveryIdle(); ++i) {
    rt.DriveRecovery(1'000'000);
  }

  EXPECT_EQ(wrong_reads, 0u) << "fault_seed=" << seed << " (tier)";
  EXPECT_EQ(VerifySweep(rt, region, pages), 0u) << "fault_seed=" << seed << " (tier)";
  EXPECT_EQ(rt.stats().failed_fetches, 0u) << "fault_seed=" << seed << " (tier)";
  EXPECT_GT(rt.stats().tier_hits, 0u) << "fault_seed=" << seed;
  EXPECT_GT(rt.stats().tier_evictions, 0u) << "fault_seed=" << seed;
}

TEST(TierChaosSoak, Survives32SeedsOfMixedFaultsWithZeroLostWrites) {
  uint64_t base = SeedBase();
  for (uint64_t s = base; s < base + 32; ++s) {
    TierChaosSoak(s);
    if (::testing::Test::HasFailure()) {
      break;  // First failing seed is the repro; don't bury it.
    }
  }
}

}  // namespace
}  // namespace dilos
