// Second batch of focused unit tests: dict incremental rehashing, Zipfian
// benchmark driver, Fastswap's adaptive readahead, page-manager internals,
// graph algorithms against hand-computed references, dataframe operations
// against host-side recomputation, and quicksort adversarial inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "src/apps/dataframe.h"
#include "src/apps/graph.h"
#include "src/apps/quicksort.h"
#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/fastswap/fastswap.h"
#include "src/redis/dict.h"
#include "src/redis/redis.h"
#include "src/redis/redis_bench.h"

namespace dilos {
namespace {

std::unique_ptr<DilosRuntime> BigRt(Fabric& fabric, uint64_t local = 32 << 20) {
  DilosConfig cfg;
  cfg.local_mem_bytes = local;
  return std::make_unique<DilosRuntime>(fabric, cfg, std::make_unique<NullPrefetcher>());
}

// ---------------------------------------------------------------- FarDict --

TEST(DictRehash, GrowsPastInitialCapacityWithoutLosingKeys) {
  Fabric fabric;
  auto rt = BigRt(fabric);
  FarHeap heap(*rt);
  FarDict dict(heap, 16);  // Tiny initial table.
  for (int i = 0; i < 2000; ++i) {
    dict.Insert("key" + std::to_string(i), static_cast<uint64_t>(i) + 1, kValString);
  }
  EXPECT_EQ(dict.size(), 2000u);
  EXPECT_GT(dict.rehash_steps(), 0u);  // Rehashing actually happened.
  EXPECT_GE(dict.buckets(), 1024u);    // The table grew.
  for (int i = 0; i < 2000; ++i) {
    uint64_t e = dict.Find("key" + std::to_string(i));
    ASSERT_NE(e, 0u) << i;
    EXPECT_EQ(dict.EntryVal(e), static_cast<uint64_t>(i) + 1);
  }
}

TEST(DictRehash, LookupsCorrectMidRehash) {
  Fabric fabric;
  auto rt = BigRt(fabric);
  FarHeap heap(*rt);
  FarDict dict(heap, 8);
  // Insert past the load factor so rehash is in progress, then verify
  // lookups while incrementally migrating.
  for (int i = 0; i < 12; ++i) {
    dict.Insert("k" + std::to_string(i), static_cast<uint64_t>(i), kValString);
  }
  EXPECT_TRUE(dict.rehashing());
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 12; ++i) {
      ASSERT_NE(dict.Find("k" + std::to_string(i)), 0u) << round << "," << i;
    }
  }
  EXPECT_FALSE(dict.rehashing());  // Lookups drove migration to completion.
}

TEST(DictRehash, RemoveDuringRehash) {
  Fabric fabric;
  auto rt = BigRt(fabric);
  FarHeap heap(*rt);
  FarDict dict(heap, 8);
  for (int i = 0; i < 64; ++i) {
    dict.Insert("k" + std::to_string(i), static_cast<uint64_t>(i), kValString);
  }
  uint64_t val = 0;
  uint32_t flags = 0;
  for (int i = 0; i < 64; i += 2) {
    ASSERT_TRUE(dict.Remove("k" + std::to_string(i), &val, &flags)) << i;
    EXPECT_EQ(val, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(dict.size(), 32u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(dict.Find("k" + std::to_string(i)) != 0, i % 2 == 1) << i;
  }
}

// ------------------------------------------------------------- RedisBench --

TEST(RedisZipf, SkewedGetsHitHotKeysAndStayCorrect) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 2 << 20;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  RedisLite redis(rt, 4096);
  RedisBench bench(redis);
  bench.PopulateStrings(4096, {1024});
  RedisBenchResult uni = bench.RunGet(2000);
  RedisBenchResult zipf = bench.RunGetZipf(2000);
  EXPECT_EQ(uni.ops, 2000u);
  EXPECT_EQ(zipf.ops, 2000u);
  // Skew concentrates on few (cached) keys: Zipfian throughput is higher
  // under memory pressure.
  EXPECT_GT(zipf.OpsPerSec(), uni.OpsPerSec());
}

// ------------------------------------------------------ Fastswap readahead --

TEST(FastswapAdaptive, WindowShrinksOnRandomAccess) {
  Fabric fabric;
  FastswapConfig cfg;
  cfg.local_mem_bytes = 64 * 4096;
  FastswapRuntime rt(fabric, cfg);
  const uint64_t pages = 2048;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint8_t>(region + p * kPageSize, 1);
  }
  // Random sweep: most readahead fills die unused; the window must adapt
  // down, so prefetch issue per fault approaches zero.
  Rng rng(7);
  rt.stats().prefetch_issued = 0;
  rt.stats().major_faults = 0;
  for (int i = 0; i < 4000; ++i) {
    rt.Read<uint8_t>(region + rng.NextBelow(pages) * kPageSize);
  }
  double issued_per_major = static_cast<double>(rt.stats().prefetch_issued) /
                            static_cast<double>(rt.stats().major_faults);
  EXPECT_LT(issued_per_major, 3.0);  // Far below the full 7-page cluster.
}

TEST(FastswapAdaptive, WindowStaysWideOnSequentialAccess) {
  Fabric fabric;
  FastswapConfig cfg;
  cfg.local_mem_bytes = 64 * 4096;
  FastswapRuntime rt(fabric, cfg);
  const uint64_t pages = 2048;
  uint64_t region = rt.AllocRegion(pages * kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint8_t>(region + p * kPageSize, 1);
  }
  rt.stats().prefetch_issued = 0;
  rt.stats().major_faults = 0;
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Read<uint8_t>(region + p * kPageSize);
  }
  double issued_per_major = static_cast<double>(rt.stats().prefetch_issued) /
                            static_cast<double>(rt.stats().major_faults);
  EXPECT_GT(issued_per_major, 5.0);  // Near the full cluster.
}

// ------------------------------------------------------------ PageManager --

TEST(PageManagerUnit, CleanerClearsDirtyBitsInBackground) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 256 * 4096;
  DilosRuntime rt(fabric, cfg, std::make_unique<NullPrefetcher>());
  uint64_t region = rt.AllocRegion(128 * kPageSize);
  for (uint64_t p = 0; p < 128; ++p) {
    rt.Write<uint64_t>(region + p * kPageSize, p);
  }
  uint64_t wb0 = rt.stats().writebacks;
  // Touch other memory to trigger background ticks; the cleaner should
  // write back cold dirty pages even without eviction pressure.
  uint64_t other = rt.AllocRegion(512 * kPageSize);
  for (uint64_t p = 0; p < 512; ++p) {
    rt.Write<uint8_t>(other + p * kPageSize, 1);
  }
  EXPECT_GT(rt.stats().writebacks, wb0);
  // Cleaned (now clean) pages are still readable with their data.
  for (uint64_t p = 0; p < 128; ++p) {
    ASSERT_EQ(rt.Read<uint64_t>(region + p * kPageSize), p);
  }
}

TEST(PageManagerUnit, ActionLogSlotsAreRecycled) {
  Fabric fabric;
  auto rt = BigRt(fabric, 1 << 20);
  PageManager& pm = rt->page_manager();
  // Directly exercise the action log API.
  EXPECT_EQ(pm.ActionSegments(999), nullptr);
  pm.ReleaseAction(999);  // Out-of-range release is a no-op.
}

// ------------------------------------------------------------------ Graph --

TEST(GraphReference, BfsDistancesOnHandGraph) {
  // 0->1, 0->2, 1->3, 2->3, 3->4: BC from source 0 must credit vertex 3
  // (the bridge to 4) and vertices 1/2 with half credit each.
  std::vector<std::pair<uint32_t, uint32_t>> edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}};
  Fabric fabric;
  auto rt = BigRt(fabric);
  FarGraph g(*rt, 5, edges);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(3), 1u);
  EXPECT_EQ(g.OutDegree(4), 0u);
  std::vector<uint32_t> nbrs;
  g.Neighbors(0, &nbrs);
  std::sort(nbrs.begin(), nbrs.end());
  EXPECT_EQ(nbrs, (std::vector<uint32_t>{1, 2}));
}

TEST(GraphReference, PageRankOnTwoCliquesFavorsSink) {
  // Star graph: every vertex points at 0. Vertex 0 must dominate.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t v = 1; v < 32; ++v) {
    edges.emplace_back(v, 0);
  }
  Fabric fabric;
  auto rt = BigRt(fabric);
  FarGraph in_csr(*rt, 32, FarGraph::Transpose(edges));
  PageRankResult res = RunPageRank(in_csr, FarGraph::OutDegrees(32, edges), 10);
  EXPECT_NEAR(res.sum, 1.0, 0.01);
  // The sink absorbs far more rank than any leaf (leaves share the rest).
  EXPECT_GT(res.top_ranks[0], 0.35);
  EXPECT_GT(res.top_ranks[0], res.top_ranks[1] * 10);
}

TEST(GraphReference, TransposeReversesEdges) {
  std::vector<std::pair<uint32_t, uint32_t>> edges = {{1, 2}, {3, 4}};
  auto rev = FarGraph::Transpose(edges);
  EXPECT_EQ(rev[0], (std::pair<uint32_t, uint32_t>{2, 1}));
  EXPECT_EQ(rev[1], (std::pair<uint32_t, uint32_t>{4, 3}));
  auto deg = FarGraph::OutDegrees(5, edges);
  EXPECT_EQ(deg[1], 1u);
  EXPECT_EQ(deg[2], 0u);
}

// -------------------------------------------------------------- DataFrame --

TEST(DataFrameReference, OpsMatchHostRecomputation) {
  Fabric fabric;
  auto rt = BigRt(fabric);
  FarDataFrame df(*rt, 1000);
  size_t key = df.AddI32("key");
  size_t val = df.AddF64("val");
  size_t val2 = df.AddF64("val2");
  std::vector<int32_t> keys(1000);
  std::vector<double> vals(1000);
  Rng rng(5);
  for (uint64_t r = 0; r < 1000; ++r) {
    keys[r] = static_cast<int32_t>(rng.NextBelow(4));
    vals[r] = rng.NextDouble() * 10;
    df.SetI32(key, r, keys[r]);
    df.SetF64(val, r, vals[r]);
    df.SetF64(val2, r, vals[r] * 2 + 1);
  }
  // MeanF64.
  double host_mean = std::accumulate(vals.begin(), vals.end(), 0.0) / 1000.0;
  EXPECT_NEAR(df.MeanF64(val), host_mean, 1e-9);
  // CountIfGreater.
  auto host_count = static_cast<uint64_t>(
      std::count_if(vals.begin(), vals.end(), [](double v) { return v > 5.0; }));
  EXPECT_EQ(df.CountIfGreater(val, 5.0), host_count);
  // GroupMean.
  std::vector<double> sums(4, 0);
  std::vector<uint64_t> counts(4, 0);
  for (int r = 0; r < 1000; ++r) {
    sums[static_cast<size_t>(keys[static_cast<size_t>(r)])] += vals[static_cast<size_t>(r)];
    counts[static_cast<size_t>(keys[static_cast<size_t>(r)])]++;
  }
  std::vector<double> gm = df.GroupMean(key, val, 4);
  for (int g = 0; g < 4; ++g) {
    EXPECT_NEAR(gm[static_cast<size_t>(g)],
                sums[static_cast<size_t>(g)] / static_cast<double>(counts[static_cast<size_t>(g)]),
                1e-9);
  }
  // Correlation of val with 2*val+1 is exactly 1.
  EXPECT_NEAR(df.Correlation(val, val2), 1.0, 1e-9);
  // TopK descending.
  std::vector<double> sorted = vals;
  std::sort(sorted.rbegin(), sorted.rend());
  std::vector<double> topk = df.TopK(val, 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(topk[static_cast<size_t>(i)], sorted[static_cast<size_t>(i)]);
  }
  // ColumnIndex resolves by name.
  EXPECT_EQ(df.ColumnIndex("val"), val);
  EXPECT_EQ(df.ColumnIndex("nope"), SIZE_MAX);
}

// -------------------------------------------------------------- Quicksort --

class QuicksortAdversarial : public ::testing::TestWithParam<int> {};

TEST_P(QuicksortAdversarial, SortsHostileInputs) {
  Fabric fabric;
  DilosConfig cfg;
  cfg.local_mem_bytes = 64 * 4096;
  DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
  const uint64_t n = 50'000;
  QuicksortWorkload wl(rt, n);
  // Overwrite the random data with a hostile pattern.
  for (uint64_t i = 0; i < n; ++i) {
    int32_t v = 0;
    switch (GetParam()) {
      case 0:  // Already sorted.
        v = static_cast<int32_t>(i);
        break;
      case 1:  // Reverse sorted.
        v = static_cast<int32_t>(n - i);
        break;
      case 2:  // All equal.
        v = 7;
        break;
      case 3:  // Organ pipe.
        v = static_cast<int32_t>(i < n / 2 ? i : n - i);
        break;
      case 4:  // Few distinct values.
        v = static_cast<int32_t>(i % 3);
        break;
      default:
        break;
    }
    wl.data().Set(i, v);
  }
  wl.Run();
  EXPECT_TRUE(wl.IsSorted());
}

INSTANTIATE_TEST_SUITE_P(Patterns, QuicksortAdversarial, ::testing::Range(0, 5));

}  // namespace
}  // namespace dilos
