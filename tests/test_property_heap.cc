// Randomized property tests of the far heap against a shadow model:
// chunks never overlap, contents survive arbitrary malloc/free interleaving
// under memory pressure, and LiveSegments always covers exactly the live
// chunks while honoring the segment cap.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/ddc_alloc/far_heap.h"
#include "src/dilos/prefetcher.h"
#include "src/dilos/runtime.h"
#include "src/sim/rng.h"

namespace dilos {
namespace {

class HeapFuzz : public ::testing::TestWithParam<uint64_t> {
 protected:
  HeapFuzz() {
    DilosConfig cfg;
    cfg.local_mem_bytes = 1 << 20;  // Pressure: heap >> local memory.
    rt_ = std::make_unique<DilosRuntime>(fabric_, cfg, std::make_unique<NullPrefetcher>());
    heap_ = std::make_unique<FarHeap>(*rt_);
  }

  Fabric fabric_;
  std::unique_ptr<DilosRuntime> rt_;
  std::unique_ptr<FarHeap> heap_;
};

struct Chunk {
  uint64_t size;
  uint64_t stamp;
};

TEST_P(HeapFuzz, MallocFreeInterleavingPreservesContents) {
  Rng rng(GetParam());
  std::map<uint64_t, Chunk> live;  // addr -> {size, stamp}.
  uint64_t next_stamp = 1;

  for (int step = 0; step < 6000; ++step) {
    double roll = rng.NextDouble();
    if (roll < 0.55 || live.empty()) {
      uint64_t size = 8 + rng.NextBelow(300);
      if (rng.NextDouble() < 0.05) {
        size = 3000 + rng.NextBelow(12000);  // Occasional large allocation.
      }
      uint64_t addr = heap_->Malloc(size);
      ASSERT_NE(addr, 0u);
      // No overlap with any live chunk.
      auto next = live.lower_bound(addr);
      if (next != live.end()) {
        ASSERT_LE(addr + heap_->UsableSize(addr), next->first)
            << "overlaps following chunk";
      }
      if (next != live.begin() && !live.empty()) {
        auto prev = std::prev(next);
        ASSERT_LE(prev->first + heap_->UsableSize(prev->first), addr)
            << "overlaps preceding chunk";
      }
      uint64_t stamp = next_stamp++;
      rt_->Write<uint64_t>(addr, stamp);
      if (size >= 16) {
        rt_->Write<uint64_t>(addr + size - 8, ~stamp);
      }
      live[addr] = {size, stamp};
    } else if (roll < 0.85) {
      // Free a pseudo-random live chunk.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(live.size())));
      heap_->Free(it->first);
      live.erase(it);
    } else {
      // Verify a pseudo-random live chunk.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(live.size())));
      ASSERT_EQ(rt_->Read<uint64_t>(it->first), it->second.stamp);
      if (it->second.size >= 16) {
        ASSERT_EQ(rt_->Read<uint64_t>(it->first + it->second.size - 8), ~it->second.stamp);
      }
    }
  }
  // Final sweep: everything still live must be intact.
  EXPECT_EQ(heap_->live_chunks(), live.size());
  for (const auto& [addr, c] : live) {
    ASSERT_EQ(rt_->Read<uint64_t>(addr), c.stamp);
  }
}

TEST_P(HeapFuzz, LiveSegmentsCoverExactlyLiveChunks) {
  Rng rng(GetParam() * 7 + 3);
  // One size class per run, fill several pages, free a random subset.
  uint32_t cls = FarHeap::kSizeClasses[rng.NextBelow(10)];  // <= 384 B.
  std::vector<uint64_t> addrs;
  for (int i = 0; i < 600; ++i) {
    addrs.push_back(heap_->Malloc(cls));
  }
  std::vector<bool> freed(addrs.size(), false);
  for (size_t i = 0; i < addrs.size(); ++i) {
    if (rng.NextDouble() < 0.6) {
      heap_->Free(addrs[i]);
      freed[i] = true;
    }
  }
  // For every page with a mix, segments must cover all live chunks and the
  // cap must hold.
  std::map<uint64_t, std::vector<size_t>> by_page;
  for (size_t i = 0; i < addrs.size(); ++i) {
    by_page[addrs[i] & ~4095ULL].push_back(i);
  }
  for (const auto& [page, idxs] : by_page) {
    std::vector<PageSegment> segs;
    if (!heap_->LiveSegments(page, &segs, 3)) {
      continue;  // Fully live or fully dead: whole-page semantics.
    }
    ASSERT_LE(segs.size(), 3u);
    uint32_t covered_bytes = 0;
    for (size_t k = 0; k < segs.size(); ++k) {
      ASSERT_LE(segs[k].offset + segs[k].length, 4096u);
      if (k > 0) {
        ASSERT_GE(segs[k].offset, segs[k - 1].offset + segs[k - 1].length);
      }
      covered_bytes += segs[k].length;
    }
    for (size_t i : idxs) {
      if (freed[i]) {
        continue;
      }
      uint32_t off = static_cast<uint32_t>(addrs[i] - page);
      bool covered = false;
      for (const PageSegment& s : segs) {
        if (off >= s.offset && off + cls <= s.offset + s.length) {
          covered = true;
          break;
        }
      }
      ASSERT_TRUE(covered) << "live chunk at +" << off << " uncovered";
    }
    EXPECT_LE(covered_bytes, 4096u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dilos
