// Tests for the communication module and the fabric semantics it depends
// on: per-core/per-module queue assignment, the shared-queue ablation, RC
// in-order completion, and full-duplex link behavior.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "src/dilos/comm.h"
#include "src/dilos/readahead.h"
#include "src/dilos/runtime.h"
#include "src/memnode/fabric.h"

namespace dilos {
namespace {

TEST(CommModule, PerModuleQueuesAreDistinct) {
  Fabric fabric;
  CommModule comm(fabric, /*num_cores=*/2);
  std::array<QueuePair*, 8> qps = {
      comm.qp(0, CommChannel::kFault),    comm.qp(0, CommChannel::kPrefetch),
      comm.qp(0, CommChannel::kManager),  comm.qp(0, CommChannel::kGuide),
      comm.qp(1, CommChannel::kFault),    comm.qp(1, CommChannel::kPrefetch),
      comm.qp(1, CommChannel::kManager),  comm.qp(1, CommChannel::kGuide)};
  for (size_t i = 0; i < qps.size(); ++i) {
    for (size_t j = i + 1; j < qps.size(); ++j) {
      EXPECT_NE(qps[i], qps[j]) << i << "," << j;
    }
  }
}

TEST(CommModule, SharedQueueCollapsesChannels) {
  Fabric fabric;
  CommModule comm(fabric, 2, /*shared_queue=*/true);
  EXPECT_EQ(comm.qp(0, CommChannel::kFault), comm.qp(0, CommChannel::kManager));
  EXPECT_EQ(comm.qp(0, CommChannel::kFault), comm.qp(0, CommChannel::kGuide));
  // Cores still get their own queue.
  EXPECT_NE(comm.qp(0, CommChannel::kFault), comm.qp(1, CommChannel::kFault));
}

TEST(QueuePairOrdering, RcCompletionsAreInOrder) {
  Fabric fabric;
  QueuePair* qp = fabric.CreateQp();
  uint8_t buf[4096] = {};
  // A big write followed by a tiny read: the read's own latency is shorter,
  // but RC ordering forbids it from completing first.
  Completion w = qp->PostWrite(1, reinterpret_cast<uint64_t>(buf), kFarBase, 4096, 0);
  Completion r = qp->PostRead(2, reinterpret_cast<uint64_t>(buf), kFarBase, 8, 0);
  EXPECT_GE(r.completion_time_ns, w.completion_time_ns);
}

TEST(QueuePairOrdering, SeparateQpsDoNotBlockEachOther) {
  Fabric fabric;
  QueuePair* a = fabric.CreateQp();
  QueuePair* b = fabric.CreateQp();
  uint8_t buf[4096] = {};
  // Saturate QP a with writes; a read on QP b is unaffected by a's ordering
  // (only shares the duplex wire, and reads use the other direction).
  uint64_t last_w = 0;
  for (int i = 0; i < 20; ++i) {
    last_w = a->PostWrite(static_cast<uint64_t>(i), reinterpret_cast<uint64_t>(buf), kFarBase,
                          4096, 0)
                 .completion_time_ns;
  }
  Completion r = b->PostRead(100, reinterpret_cast<uint64_t>(buf), kFarBase, 4096, 0);
  EXPECT_LT(r.completion_time_ns, last_w);
}

TEST(LinkDuplex, ReadsAndWritesUseIndependentDirections) {
  CostModel cost = CostModel::Default();
  Link link(cost);
  // Saturate TX with writes.
  uint64_t tx_end = 0;
  for (int i = 0; i < 10; ++i) {
    tx_end = link.Occupy(0, 4096, 1, /*is_write=*/true);
  }
  // An RX read issued at t=0 is not delayed by TX traffic.
  uint64_t rx_end = link.Occupy(0, 4096, 1, /*is_write=*/false);
  EXPECT_LT(rx_end, tx_end);
  EXPECT_EQ(link.rx().total_bytes(), 4096u);
  EXPECT_EQ(link.tx().total_bytes(), 10u * 4096);
}

TEST(LinkDuplex, SameDirectionSerializes) {
  CostModel cost = CostModel::Default();
  Link link(cost);
  uint64_t first = link.Occupy(0, 4096, 1, false);
  uint64_t second = link.Occupy(0, 4096, 1, false);
  EXPECT_GT(second, first);
}

TEST(BandwidthMeterTest, BucketsByTime) {
  BandwidthMeter meter(1'000'000);  // 1 ms buckets.
  meter.Add(100, 1000);
  meter.Add(500'000, 2000);
  meter.Add(1'500'000, 4000);
  ASSERT_EQ(meter.buckets().size(), 2u);
  EXPECT_EQ(meter.buckets()[0], 3000u);
  EXPECT_EQ(meter.buckets()[1], 4000u);
  EXPECT_EQ(meter.total_bytes(), 7000u);
  EXPECT_GT(meter.MeanBytesPerSec(), 0.0);
}

TEST(SharedQueueAblation, SharedIsNeverFasterOnReads) {
  auto run = [](bool shared) {
    Fabric fabric;
    DilosConfig cfg;
    cfg.local_mem_bytes = 1 << 20;
    cfg.shared_queue = shared;
    DilosRuntime rt(fabric, cfg, std::make_unique<ReadaheadPrefetcher>());
    const uint64_t pages = 2048;
    uint64_t region = rt.AllocRegion(pages * kPageSize);
    for (uint64_t p = 0; p < pages; ++p) {
      rt.Write<uint64_t>(region + p * kPageSize, p);
    }
    uint64_t t0 = rt.clock().now();
    for (uint64_t p = 0; p < pages; ++p) {
      rt.Read<uint64_t>(region + p * kPageSize);
    }
    return rt.clock().now() - t0;
  };
  EXPECT_LE(run(false), run(true));
}

}  // namespace
}  // namespace dilos
