// Tests for the Fastswap baseline: swap-cache mechanics, the Table-1
// major/minor fault arithmetic, direct reclamation, and data integrity.
#include <gtest/gtest.h>

#include "src/fastswap/fastswap.h"

namespace dilos {
namespace {

FastswapConfig SmallConfig(uint64_t frames, bool readahead = true) {
  FastswapConfig cfg;
  cfg.local_mem_bytes = frames * 4096;
  cfg.readahead_enabled = readahead;
  return cfg;
}

// Populates `pages` pages then evicts them all by touching a scratch region.
uint64_t PopulateAndSpill(FastswapRuntime& rt, uint64_t pages) {
  uint64_t region = rt.AllocRegion(pages * 4096);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint8_t>(region + p * 4096, static_cast<uint8_t>(p));
  }
  uint64_t scratch = rt.AllocRegion(rt.frame_pool().total() * 4096);
  for (uint64_t p = 0; p < rt.frame_pool().total(); ++p) {
    rt.Write<uint8_t>(scratch + p * 4096, 1);
  }
  rt.stats().major_faults = 0;
  rt.stats().minor_faults = 0;
  rt.stats().prefetch_issued = 0;
  rt.stats().fault_breakdown.Reset();
  return region;
}

TEST(Fastswap, DataIntegrityAcrossEviction) {
  Fabric fabric;
  FastswapRuntime rt(fabric, SmallConfig(32));
  const uint64_t pages = 256;
  uint64_t region = rt.AllocRegion(pages * 4096);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint64_t>(region + p * 4096 + 16, p ^ 0xABCDEF);
  }
  for (uint64_t p = 0; p < pages; ++p) {
    ASSERT_EQ(rt.Read<uint64_t>(region + p * 4096 + 16), p ^ 0xABCDEF) << p;
  }
}

TEST(Fastswap, SequentialReadFaultMixMatchesTable1) {
  Fabric fabric;
  FastswapRuntime rt(fabric, SmallConfig(64));
  const uint64_t pages = 512;
  uint64_t region = PopulateAndSpill(rt, pages);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Read<uint8_t>(region + p * 4096);
  }
  uint64_t major = rt.stats().major_faults;
  uint64_t minor = rt.stats().minor_faults;
  // Table 1: with the default cluster of 8, ~12.5% major / ~87.5% minor.
  double major_frac =
      static_cast<double>(major) / static_cast<double>(major + minor);
  EXPECT_NEAR(major_frac, 0.125, 0.05);
  // Every prefetched page takes a minor fault: the swap cache never maps
  // pages ahead of access (DiLOS' key contrast).
  EXPECT_NEAR(static_cast<double>(minor),
              static_cast<double>(rt.stats().prefetch_issued), 16.0);
}

TEST(Fastswap, NoReadaheadMeansAllMajor) {
  Fabric fabric;
  FastswapRuntime rt(fabric, SmallConfig(64, /*readahead=*/false));
  const uint64_t pages = 256;
  uint64_t region = PopulateAndSpill(rt, pages);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Read<uint8_t>(region + p * 4096);
  }
  EXPECT_EQ(rt.stats().minor_faults, 0u);
  EXPECT_GE(rt.stats().major_faults, pages - 64);
}

TEST(Fastswap, MajorFaultLatencyMatchesFig1Shape) {
  Fabric fabric;
  FastswapRuntime rt(fabric, SmallConfig(32, /*readahead=*/false));
  const uint64_t pages = 512;
  uint64_t region = PopulateAndSpill(rt, pages);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Read<uint8_t>(region + p * 4096);
  }
  const LatencyBreakdown& bd = rt.stats().fault_breakdown;
  ASSERT_GT(bd.events(), 0u);
  double total_us = bd.TotalMeanNs() / 1000.0;
  // Fig. 1 average: ~6 us per reclaiming fault; well above DiLOS' ~3.2 us.
  EXPECT_GT(total_us, 5.0);
  EXPECT_LT(total_us, 8.5);
  // Reclamation appears in the fault path (unlike DiLOS).
  EXPECT_GT(bd.MeanNs(LatComp::kReclaim), 0.0);
  // Software overhead beyond exception+fetch is substantial.
  double software = bd.MeanNs(LatComp::kSwapCacheMgmt) + bd.MeanNs(LatComp::kPageAlloc) +
                    bd.MeanNs(LatComp::kSwapEntry);
  EXPECT_GT(software / bd.TotalMeanNs(), 0.15);
}

TEST(Fastswap, DirectReclaimHappensUnderPressure) {
  Fabric fabric;
  FastswapRuntime rt(fabric, SmallConfig(32, /*readahead=*/false));
  uint64_t region = rt.AllocRegion(512 * 4096);
  for (uint64_t p = 0; p < 512; ++p) {
    rt.Write<uint8_t>(region + p * 4096, 1);
  }
  EXPECT_GT(rt.direct_reclaims(), 0u);
}

TEST(Fastswap, DirtyEvictionWritesBack) {
  Fabric fabric;
  FastswapRuntime rt(fabric, SmallConfig(16, /*readahead=*/false));
  uint64_t region = rt.AllocRegion(64 * 4096);
  for (uint64_t p = 0; p < 64; ++p) {
    rt.Write<uint8_t>(region + p * 4096, 7);
  }
  EXPECT_GT(rt.stats().writebacks, 0u);
  EXPECT_GT(rt.stats().bytes_written, 0u);
}

TEST(Fastswap, CleanRereadDoesNotWriteBack) {
  Fabric fabric;
  FastswapRuntime rt(fabric, SmallConfig(16, /*readahead=*/false));
  const uint64_t pages = 64;
  uint64_t region = rt.AllocRegion(pages * 4096);
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Write<uint8_t>(region + p * 4096, 7);
  }
  uint64_t wb_after_populate = rt.stats().writebacks;
  // Two clean re-read sweeps: evictions happen but pages are clean.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (uint64_t p = 0; p < pages; ++p) {
      rt.Read<uint8_t>(region + p * 4096);
    }
  }
  // A few stragglers from the populate phase may still be dirty; the bulk
  // of the re-read traffic must be write-back free.
  EXPECT_LE(rt.stats().writebacks - wb_after_populate, pages / 4);
}

TEST(Fastswap, SlowerThanDilosShapedFault) {
  // The central claim: identical access pattern, Fastswap's per-fault cost
  // is roughly 2x DiLOS' (Fig. 6). Here: Fastswap only, sanity-bounded; the
  // cross-system comparison lives in the benches.
  Fabric fabric;
  FastswapRuntime rt(fabric, SmallConfig(32, /*readahead=*/false));
  const uint64_t pages = 256;
  uint64_t region = PopulateAndSpill(rt, pages);
  uint64_t t0 = rt.clock().now();
  for (uint64_t p = 0; p < pages; ++p) {
    rt.Read<uint8_t>(region + p * 4096);
  }
  double per_fault_us =
      static_cast<double>(rt.clock().now() - t0) / 1000.0 / static_cast<double>(pages);
  EXPECT_GT(per_fault_us, 4.5);
}

TEST(Fastswap, ZeroFillNeedsNoNetwork) {
  Fabric fabric;
  FastswapRuntime rt(fabric, SmallConfig(64));
  uint64_t region = rt.AllocRegion(8 * 4096);
  EXPECT_EQ(rt.Read<uint64_t>(region), 0u);
  EXPECT_EQ(rt.stats().bytes_fetched, 0u);
  EXPECT_EQ(rt.stats().zero_fill_faults, 1u);
}

}  // namespace
}  // namespace dilos
